// Command flowerd runs a Flower-managed data analytics flow: it
// materialises a flow definition (a JSON file written by cmd/flowctl, or
// the built-in click-stream default), drives it for the requested
// simulated duration under elasticity management, and reports the outcome
// plus the consolidated dashboard — the command-line equivalent of the
// demo's "run the service ... and observe its performance live" (§4).
//
// Usage:
//
//	flowerd [-spec flow.json] [-for 2h] [-step 10s] [-seed 1] [-peak 3000] [-csv out.csv]
//	flowerd -http :8080 [-pace 60]    serve the control plane + dashboard
//
// With -http, flowerd serves the HTTP control plane (internal/httpapi): a
// JSON API (flow definition, live status, per-layer controller tuning,
// metric queries, dependency analysis, POST /api/advance) and an HTML
// dashboard at /. The -pace flag advances simulated time continuously at
// that many simulated seconds per wall second; with -pace 0 time only
// moves through POST /api/advance.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/flow"
	"repro/internal/httpapi"
	"repro/internal/persist"
	"repro/internal/sim"

	flower "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("flowerd: ")

	specPath := flag.String("spec", "", "path to a JSON flow definition (default: built-in click-stream flow)")
	duration := flag.Duration("for", 2*time.Hour, "simulated duration to run")
	step := flag.Duration("step", 10*time.Second, "simulation tick")
	seed := flag.Int64("seed", 1, "simulation seed")
	peak := flag.Float64("peak", 3000, "peak click rate for the built-in flow (records/s)")
	csvPath := flag.String("csv", "", "export the full metric history to this CSV file")
	window := flag.Duration("window", 30*time.Minute, "dashboard window")
	httpAddr := flag.String("http", "", "serve the HTTP control plane on this address instead of a batch run")
	pace := flag.Float64("pace", 60, "with -http: simulated seconds advanced per wall second (0 = manual)")
	journalPath := flag.String("journal", "", "append every metric datapoint to this journal file (replayable with flowmon -replay)")
	flag.Parse()

	var spec flower.Spec
	var err error
	if *specPath != "" {
		data, readErr := os.ReadFile(*specPath)
		if readErr != nil {
			log.Fatalf("read spec: %v", readErr)
		}
		spec, err = flower.DecodeSpec(data)
	} else {
		spec, err = flower.DefaultClickstream(*peak)
	}
	if err != nil {
		log.Fatalf("flow definition: %v", err)
	}

	mgr, err := flower.New(spec, sim.Options{Step: *step, Seed: *seed})
	if err != nil {
		log.Fatalf("manager: %v", err)
	}

	if *journalPath != "" {
		j, err := persist.OpenFileJournal(*journalPath)
		if err != nil {
			log.Fatalf("journal: %v", err)
		}
		j.Attach(mgr.Store())
		defer func() {
			if err := j.Close(); err != nil {
				log.Printf("journal close: %v", err)
			} else {
				fmt.Printf("\n%d datapoints journaled to %s\n", j.Records(), *journalPath)
			}
		}()
	}

	if *httpAddr != "" {
		srv := httpapi.NewServer(mgr)
		if *pace > 0 {
			srv.StartPacing(*pace, 250*time.Millisecond)
			defer srv.StopPacing()
		}
		fmt.Printf("flower: serving flow %q on %s (pace %.0f sim-s per wall-s)\n", spec.Name, *httpAddr, *pace)
		fmt.Printf("  dashboard:  http://%s/\n  api:        http://%s/api/status\n", *httpAddr, *httpAddr)

		httpSrv := &http.Server{Addr: *httpAddr, Handler: srv}
		// Serve until interrupted; a clean shutdown lets the deferred
		// journal close and pacer stop run, so no recorded datapoints are
		// lost on ctrl-c.
		errCh := make(chan error, 1)
		go func() { errCh <- httpSrv.ListenAndServe() }()
		sigCh := make(chan os.Signal, 1)
		signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
		select {
		case err := <-errCh:
			log.Printf("serve: %v", err)
		case sig := <-sigCh:
			fmt.Printf("\nflower: %v — shutting down\n", sig)
			httpSrv.Close()
		}
		return
	}

	fmt.Printf("flower: managing flow %q for %v (step %v, seed %d)\n", spec.Name, *duration, *step, *seed)
	res, err := mgr.Run(*duration)
	if err != nil {
		log.Fatalf("run: %v", err)
	}

	fmt.Printf("\n=== run summary ===\n")
	fmt.Printf("records offered:    %d (rejected %d)\n", res.Offered, res.Rejected)
	fmt.Printf("violation rate:     %.2f%% of ticks\n", 100*res.ViolationRate)
	for _, kind := range []flow.LayerKind{flow.Ingestion, flow.Analytics, flow.Storage} {
		fmt.Printf("  %-10s mean util %.1f%%, violations %d ticks, resize actions %d\n",
			kind, res.MeanUtil[kind], res.Violations[kind], res.Actions[kind])
	}
	fmt.Printf("total cost:         $%.4f (peak run rate $%.4f/h)\n", res.TotalCost, res.PeakRunRate)
	fmt.Printf("final allocation:   %d shards, %d VMs, %.0f WCU\n\n",
		res.FinalAllocation.Shards, res.FinalAllocation.VMs, res.FinalAllocation.WCU)

	if err := mgr.RenderDashboard(os.Stdout, *window); err != nil {
		log.Fatalf("dashboard: %v", err)
	}

	if deps, err := mgr.AnalyzeDependencies(); err == nil && len(deps) > 0 {
		fmt.Printf("\n=== learned workload dependencies (Eq. 1) ===\n")
		for _, d := range deps {
			fmt.Printf("  %s\n", d)
		}
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatalf("csv: %v", err)
		}
		defer f.Close()
		if err := mgr.WriteCSV(f, time.Minute); err != nil {
			log.Fatalf("csv: %v", err)
		}
		fmt.Printf("\nmetric history written to %s\n", *csvPath)
	}
}
