// Command flowerd runs Flower-managed data analytics flows: it
// materialises flow definitions (JSON files written by cmd/flowctl, or the
// built-in click-stream default), drives them under elasticity management,
// and reports the outcome plus the consolidated dashboard — the
// command-line equivalent of the demo's "run the service ... and observe
// its performance live" (§4).
//
// Usage:
//
//	flowerd [-spec flow.json] [-for 2h] [-step 10s] [-seed 1] [-peak 3000] [-csv out.csv]
//	flowerd -http :8080 [-pace 60] [-spec a.json -spec b.json] [-flows 4]
//	        [-sched-shards 8] [-sched-workers 2]
//
// With -http, flowerd serves the multi-flow v1 control plane
// (internal/httpapi): the /v1/flows collection, per-flow status, controller
// tuning, paginated metric queries, dependency analysis, advance and
// pacing, plus per-flow HTML dashboards — and the Scenario Lab's
// /v1/experiments farm, which fans declarative experiment grids out as
// scheduler jobs. All execution — every flow's pacer tick, every
// experiment trial — runs on one sharded tick scheduler (internal/sched),
// sized by -sched-shards and -sched-workers and observable at
// GET /v1/scheduler; goroutine count stays O(shards) no matter how many
// flows are paced, and a weighted-fairness policy keeps big experiment
// grids from starving live flows. On SIGINT/SIGTERM the daemon shuts
// down in order: HTTP drained, experiments settled, pacers stopped,
// scheduler drained, journal flushed. The streaming read plane rides
// along: SSE/NDJSON watch endpoints (/v1/flows/{id}/watch,
// /v1/experiments/{id}/watch, /v1/watch) and the columnar
// POST /v1/metrics:batchQuery — see API.md ("Read plane"), `flowctl
// watch` and `flowmon -follow`. -spec may repeat to serve several
// flows at once, and -flows N serves N independently-seeded replicas of the
// built-in flow; more flows can be created at runtime with POST /v1/flows
// (see API.md, or use the repro/client SDK / flowctl's remote
// subcommands). The -pace flag advances every initial flow's simulated time
// continuously at that many simulated seconds per wall second; with
// -pace 0, time only moves through POST /v1/flows/{id}/advance.
//
// With -data-dir, the control plane is durable: every mutation (flow
// create/pace/tune/delete, experiment submit/cancel/finish) is appended
// to a write-ahead log under the directory before it is acknowledged, and
// periodically compacted into a checkpoint. On boot flowerd replays
// checkpoint + WAL: flows come back with their tuned controllers, pacers
// re-arm on the scheduler, and experiments that were running when the
// process died are marked "interrupted" (-resume-experiments resubmits
// them instead). If the WAL ever fails to write, the plane degrades to
// read-only: mutations return 503 with code "unavailable" while reads and
// watch streams keep serving. See API.md, "Durability & recovery".
//
// Without -http, flowerd performs a single-flow batch run and prints the
// summary and dashboard. flowerd exits non-zero when a durability
// boundary fails at shutdown — a journal or WAL that cannot be flushed is
// an error, not a log line.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/flow"
	"repro/internal/httpapi"
	"repro/internal/lab"
	"repro/internal/persist"
	"repro/internal/registry"
	"repro/internal/sched"
	"repro/internal/sim"

	flower "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("flowerd: ")

	var specPaths []string
	flag.Func("spec", "path to a JSON flow definition (repeatable with -http; default: built-in click-stream flow)",
		func(v string) error { specPaths = append(specPaths, v); return nil })
	duration := flag.Duration("for", 2*time.Hour, "simulated duration to run (batch mode)")
	step := flag.Duration("step", 10*time.Second, "simulation tick")
	seed := flag.Int64("seed", 1, "simulation seed")
	peak := flag.Float64("peak", 3000, "peak click rate for the built-in flow (records/s)")
	csvPath := flag.String("csv", "", "export the full metric history to this CSV file (batch mode)")
	window := flag.Duration("window", 30*time.Minute, "dashboard window (batch mode)")
	httpAddr := flag.String("http", "", "serve the HTTP control plane on this address instead of a batch run")
	pace := flag.Float64("pace", 60, "with -http: simulated seconds advanced per wall second (0 = manual)")
	replicas := flag.Int("flows", 1, "with -http and no -spec: serve this many independently-seeded replicas of the built-in flow")
	schedShards := flag.Int("sched-shards", 0, "with -http: shards of the execution-plane scheduler (0: GOMAXPROCS, max 64)")
	schedWorkers := flag.Int("sched-workers", 0, "with -http: workers per scheduler shard (0: 1); shards x workers is the whole server's execution capacity")
	labWorkers := flag.Int("lab-workers", 0, "deprecated: experiments now share the execution plane; use -sched-shards/-sched-workers")
	journalPath := flag.String("journal", "", "append the default flow's metric datapoints to this journal file (replayable with flowmon -replay)")
	pprofOn := flag.Bool("pprof", false, "with -http: expose net/http/pprof under /debug/pprof/ on the same listener")
	selfScrape := flag.Duration("selfscrape", 0, "with -http: ingest flowerd's own telemetry into the reserved "+httpapi.SelfScrapeFlow+" flow every interval (0 = off)")
	dataDir := flag.String("data-dir", "", "with -http: durable control-plane directory (write-ahead log + checkpoint); flows, pacers and experiments survive restarts")
	resumeExperiments := flag.Bool("resume-experiments", false, "with -data-dir: resubmit experiments interrupted by a crash instead of leaving them marked \"interrupted\"")
	flag.Parse()

	loadSpec := func(path string) flower.Spec {
		data, err := os.ReadFile(path)
		if err != nil {
			log.Fatalf("read spec: %v", err)
		}
		spec, err := flower.DecodeSpec(data)
		if err != nil {
			log.Fatalf("flow definition %s: %v", path, err)
		}
		return spec
	}

	if *httpAddr != "" {
		if *labWorkers != 0 {
			log.Printf("-lab-workers is deprecated and ignored: experiments run on the shared execution plane (size it with -sched-shards/-sched-workers)")
		}
		os.Exit(serveHTTP(*httpAddr, serveConfig{
			specPaths: specPaths, loadSpec: loadSpec,
			peak: *peak, step: *step, seed: *seed, pace: *pace,
			replicas: *replicas, schedShards: *schedShards, schedWorkers: *schedWorkers,
			journalPath: *journalPath, pprof: *pprofOn, selfScrape: *selfScrape,
			dataDir: *dataDir, resumeExperiments: *resumeExperiments,
		}))
	}

	// Batch mode: one flow, run to completion.
	var spec flower.Spec
	var err error
	switch len(specPaths) {
	case 0:
		spec, err = flower.DefaultClickstream(*peak)
		if err != nil {
			log.Fatalf("flow definition: %v", err)
		}
	case 1:
		spec = loadSpec(specPaths[0])
	default:
		log.Fatalf("batch mode manages one flow; %d -spec flags given (use -http for many)", len(specPaths))
	}

	mgr, err := flower.New(spec, sim.Options{Step: *step, Seed: *seed})
	if err != nil {
		log.Fatalf("manager: %v", err)
	}

	var journal *persist.Journal
	if *journalPath != "" {
		j, err := persist.OpenFileJournal(*journalPath)
		if err != nil {
			log.Fatalf("journal: %v", err)
		}
		j.Attach(mgr.Store())
		journal = j
	}

	fmt.Printf("flower: managing flow %q for %v (step %v, seed %d)\n", spec.Name, *duration, *step, *seed)
	res, err := mgr.Run(*duration)
	if err != nil {
		log.Fatalf("run: %v", err)
	}

	fmt.Printf("\n=== run summary ===\n")
	fmt.Printf("records offered:    %d (rejected %d)\n", res.Offered, res.Rejected)
	fmt.Printf("violation rate:     %.2f%% of ticks\n", 100*res.ViolationRate)
	for _, kind := range []flow.LayerKind{flow.Ingestion, flow.Analytics, flow.Storage} {
		fmt.Printf("  %-10s mean util %.1f%%, violations %d ticks, resize actions %d\n",
			kind, res.MeanUtil[kind], res.Violations[kind], res.Actions[kind])
	}
	fmt.Printf("total cost:         $%.4f (peak run rate $%.4f/h)\n", res.TotalCost, res.PeakRunRate)
	fmt.Printf("final allocation:   %d shards, %d VMs, %.0f WCU\n\n",
		res.FinalAllocation.Shards, res.FinalAllocation.VMs, res.FinalAllocation.WCU)

	if err := mgr.RenderDashboard(os.Stdout, *window); err != nil {
		log.Fatalf("dashboard: %v", err)
	}

	if deps, err := mgr.AnalyzeDependencies(); err == nil && len(deps) > 0 {
		fmt.Printf("\n=== learned workload dependencies (Eq. 1) ===\n")
		for _, d := range deps {
			fmt.Printf("  %s\n", d)
		}
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatalf("csv: %v", err)
		}
		defer f.Close()
		if err := mgr.WriteCSV(f, time.Minute); err != nil {
			log.Fatalf("csv: %v", err)
		}
		fmt.Printf("\nmetric history written to %s\n", *csvPath)
	}

	// A journal that cannot be flushed means datapoints were lost: that is
	// a failed run, not a footnote.
	if journal != nil {
		if err := journal.Close(); err != nil {
			log.Fatalf("journal close: %v", err)
		}
		fmt.Printf("\n%d datapoints journaled to %s\n", journal.Records(), *journalPath)
	}
}

type serveConfig struct {
	specPaths         []string
	loadSpec          func(string) flower.Spec
	peak              float64
	step              time.Duration
	seed              int64
	pace              float64
	replicas          int
	schedShards       int
	schedWorkers      int
	journalPath       string
	pprof             bool
	selfScrape        time.Duration
	dataDir           string
	resumeExperiments bool
}

// walCompactEvery is how often the serve loop checks whether the control
// WAL has grown enough to fold into a fresh checkpoint.
const walCompactEvery = 15 * time.Second

// serveHTTP registers the initial flows and serves the v1 control plane
// until interrupted, returning the process exit code. One scheduler — the
// unified execution plane — paces every flow and runs every experiment
// trial: -sched-shards and -sched-workers are the whole server's capacity
// knob. With cfg.dataDir, state is recovered from the control WAL before
// any initial flow is created, and every subsequent mutation is logged.
func serveHTTP(addr string, cfg serveConfig) int {
	plane := sched.New(sched.Config{Shards: cfg.schedShards, Workers: cfg.schedWorkers})
	reg := registry.New(registry.WithScheduler(plane))
	engine := lab.NewEngineOn(plane)

	// Recovery runs before the WAL hooks attach and before any -spec
	// flow is registered: replayed mutations must not be re-logged, and a
	// recovered flow wins over the initial spec of the same id.
	var clog *persist.ControlLog
	checkpoint := func() *persist.ControlCheckpoint { return persist.CaptureControlState(reg, engine) }
	if cfg.dataDir != "" {
		var state *persist.RecoveredState
		var err error
		clog, state, err = persist.OpenControlLog(cfg.dataDir, persist.ControlLogOptions{})
		if err != nil {
			log.Fatalf("control log %s: %v", cfg.dataDir, err)
		}
		rep := persist.RecoverControlPlane(state, reg, engine, cfg.resumeExperiments)
		if state.TornTail {
			log.Printf("recovery: control WAL ended mid-record (torn tail); the unacknowledged final record was dropped")
		}
		for _, e := range rep.Errors {
			log.Printf("recovery: %s", e)
		}
		if rep.ReplayedRecords > 0 || rep.FlowsRestored > 0 {
			fmt.Printf("flower: recovered %d flows (%d pacers re-armed, %d tunes) and %d interrupted experiments from %s (%d WAL records)\n",
				rep.FlowsRestored, rep.PacersRearmed, rep.TunesApplied, rep.ExperimentsInterrupted, cfg.dataDir, rep.ReplayedRecords)
		}
		// Fold the recovered state into a fresh checkpoint so the next
		// crash replays from here, not from the old tail.
		if err := clog.CompactWith(checkpoint); err != nil {
			log.Printf("boot checkpoint: %v", err)
		}
		reg.SetWAL(clog)
		engine.SetWAL(clog)
		for _, r := range rep.Resumable {
			if _, err := engine.Submit(r.ID, r.Spec); err != nil {
				log.Printf("resume experiment %q: %v", r.ID, err)
			} else {
				fmt.Printf("flower: resumed interrupted experiment %q\n", r.ID)
			}
		}
	}

	var specs []flower.Spec
	for _, path := range cfg.specPaths {
		specs = append(specs, cfg.loadSpec(path))
	}
	if len(specs) == 0 {
		base, err := flower.DefaultClickstream(cfg.peak)
		if err != nil {
			log.Fatalf("flow definition: %v", err)
		}
		if cfg.replicas <= 1 {
			specs = append(specs, base)
		} else {
			for i := 1; i <= cfg.replicas; i++ {
				s := base
				s.Name = fmt.Sprintf("%s-%d", base.Name, i)
				specs = append(specs, s)
			}
		}
	}

	defaultID := ""
	for i, spec := range specs {
		if f, ok := reg.Get(spec.Name); ok {
			// Recovered from the WAL: keep its state (including whether
			// it was paced) rather than resetting it to the -spec file.
			if defaultID == "" {
				defaultID = f.ID()
			}
			continue
		}
		f, err := reg.Create(spec.Name, spec, sim.Options{Step: cfg.step, Seed: cfg.seed + int64(i)})
		if err != nil {
			log.Fatalf("register flow %q: %v", spec.Name, err)
		}
		if defaultID == "" {
			defaultID = f.ID()
		}
		if cfg.pace > 0 {
			if err := f.StartPacing(cfg.pace, 250*time.Millisecond); err != nil {
				log.Fatalf("pace flow %q: %v", f.ID(), err)
			}
		}
	}

	var journal *persist.Journal
	if cfg.journalPath != "" {
		j, err := persist.OpenFileJournal(cfg.journalPath)
		if err != nil {
			log.Fatalf("journal: %v", err)
		}
		if f, ok := reg.Get(defaultID); ok {
			f.View(func(m *flower.Manager) { j.Attach(m.Store()) })
		}
		journal = j
	}

	// Background compaction: fold the WAL into a checkpoint once it has
	// accumulated enough records. Runs as a batch-class periodic job on
	// the same execution plane as everything else.
	var compactTicket *sched.Ticket
	if clog != nil {
		tk, err := plane.Periodic("persist/wal-compact", sched.ClassBatch, walCompactEvery, func(int) error {
			if clog.ShouldCompact() {
				if err := clog.CompactWith(checkpoint); err != nil {
					log.Printf("wal compact: %v", err)
				}
			}
			return nil
		}, nil)
		if err != nil {
			log.Printf("wal compact job: %v", err)
		} else {
			compactTicket = tk
		}
	}

	srvOpts := []httpapi.Option{
		httpapi.WithDefaultFlow(defaultID),
		httpapi.WithLab(engine),
		httpapi.WithLogger(log.New(os.Stderr, "flowerd: http: ", 0)),
	}
	if cfg.pprof {
		srvOpts = append(srvOpts, httpapi.WithPprof())
	}
	if cfg.selfScrape > 0 {
		srvOpts = append(srvOpts, httpapi.WithSelfScrape(cfg.selfScrape))
	}
	srv := httpapi.NewServer(reg, srvOpts...)

	fmt.Printf("flower: serving %d flows on %s (pace %.0f sim-s per wall-s)\n", reg.Len(), addr, cfg.pace)
	for _, f := range reg.List() {
		fmt.Printf("  flow %-24s dashboard http://%s/v1/flows/%s/dashboard\n", f.ID(), addr, f.ID())
	}
	fmt.Printf("  api:         http://%s/v1/flows\n  experiments: http://%s/v1/experiments\n  scheduler:   http://%s/v1/scheduler (%d shards x %d workers)\n  telemetry:   http://%s/v1/telemetry\n  dashboard:   http://%s/\n",
		addr, addr, addr, plane.Shards(), plane.Workers(), addr, addr)
	if cfg.pprof {
		fmt.Printf("  pprof:       http://%s/debug/pprof/\n", addr)
	}
	if cfg.selfScrape > 0 {
		fmt.Printf("  self-scrape: every %v into flow %q\n", cfg.selfScrape, httpapi.SelfScrapeFlow)
	}
	if clog != nil {
		fmt.Printf("  durability:  WAL + checkpoint in %s (seq %d)\n", cfg.dataDir, clog.Seq())
	}

	httpSrv := &http.Server{Addr: addr, Handler: srv}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		log.Printf("serve: %v", err)
	case sig := <-sigCh:
		fmt.Printf("\nflower: %v — shutting down\n", sig)
	}

	// Graceful teardown, producers before the plane they produce onto:
	// stop accepting HTTP (bounded drain of in-flight requests — watch
	// streams are force-closed when the deadline lapses), settle the lab's
	// experiments while workers still run, stop every pacer, and only then
	// drain the scheduler. The journal and WAL close after all of it, so
	// every datapoint and mutation recorded by the final ticks is flushed
	// — and a close that fails is a non-zero exit, not a log line.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		httpSrv.Close() // long-lived watch streams: cut them
	}
	fmt.Println("flower: http drained")
	// The final self-scrape runs after the drain so its snapshot counts
	// every served request, and before the registry closes so the reserved
	// flow's store is still writable. Close also releases the query plan
	// cache's event subscription.
	srv.Close()
	// Checkpoint the final state while mutations are quiesced but pacers
	// and experiments are still live: a graceful restart then replays
	// paced flows as paced. The engine's finish records land in the WAL
	// tail after this checkpoint, so cancelled experiments stay settled.
	if compactTicket != nil {
		compactTicket.Stop()
	}
	if clog != nil {
		if err := clog.CompactWith(checkpoint); err != nil {
			log.Printf("final checkpoint: %v", err)
		}
	}
	engine.Close()
	fmt.Println("flower: experiments settled")
	reg.Close()
	fmt.Println("flower: pacers stopped")
	plane.Close()
	fmt.Println("flower: scheduler drained")

	exit := 0
	if clog != nil {
		if err := clog.Close(); err != nil {
			log.Printf("wal close: %v", err)
			exit = 1
		}
	}
	if journal != nil {
		if err := journal.Close(); err != nil {
			log.Printf("journal close: %v", err)
			exit = 1
		} else {
			fmt.Printf("\n%d datapoints journaled to %s\n", journal.Records(), cfg.journalPath)
		}
	}
	return exit
}
