package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"testing"
	"time"

	apiv1 "repro/api/v1"
	"repro/internal/persist"
)

// TestCrashRecovery is the durability plane's integration test: a real
// flowerd process with -data-dir is SIGKILLed mid-experiment — no
// graceful shutdown, no flushing, plus a hand-torn WAL tail — and a
// second incarnation over the same directory must recover every flow,
// re-arm the pacers, and mark the in-flight experiment interrupted.
//
// On failure the data directory is copied to crashtest-artifacts/ (or
// $CRASHTEST_ARTIFACT_DIR) so CI can upload the WAL that failed to
// recover.
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	bin := buildFlowerd(t)
	dataDir := t.TempDir()
	defer preserveOnFailure(t, dataDir)

	// --- first incarnation: create state, then die hard ---
	addr := freeAddr(t)
	first := startFlowerd(t, bin, addr, dataDir)
	waitReady(t, addr)

	mustPost(t, addr, "/v1/flows", `{"id":"crashflow","peak":1200,"pace":60,"step":"10s"}`)
	mustPost(t, addr, "/v1/flows/crashflow/layers/ingestion/controller", `{"ref":82.5}`)
	// A grid big enough that it is still running when the SIGKILL lands:
	// each trial simulates 12h of flow.
	mustPost(t, addr, "/v1/experiments",
		`{"id":"doomed","spec":{"name":"doomed","peak":2000,"duration":"12h","step":"10s",
		  "workloads":[{"name":"w","workload":{"pattern":"constant","base":900}}],
		  "seeds":[1,2,3,4]}}`)

	before := flowIDs(t, addr)
	if err := first.Process.Kill(); err != nil { // SIGKILL: no shutdown path runs
		t.Fatalf("kill: %v", err)
	}
	first.Wait()

	// A crash can also tear the final WAL record mid-append; recovery
	// must shrug it off.
	wal := filepath.Join(dataDir, persist.WALFileName)
	fh, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatalf("open wal: %v", err)
	}
	if _, err := fh.WriteString(`w1 0000beef {"v":1,"seq":9999,"op":"flow.cre`); err != nil {
		t.Fatalf("tear wal: %v", err)
	}
	fh.Close()

	// --- second incarnation: recover ---
	addr2 := freeAddr(t)
	second := startFlowerd(t, bin, addr2, dataDir)
	defer func() {
		second.Process.Signal(syscall.SIGTERM)
		second.Wait()
	}()
	waitReady(t, addr2)

	after := flowIDs(t, addr2)
	if strings.Join(after, ",") != strings.Join(before, ",") {
		t.Fatalf("flows after recovery = %v, want %v", after, before)
	}

	// The recovered flow is paced and simulated time is actually moving.
	var st1, st2 apiv1.Status
	mustGet(t, addr2, "/v1/flows/crashflow/status", &st1)
	time.Sleep(1200 * time.Millisecond)
	mustGet(t, addr2, "/v1/flows/crashflow/status", &st2)
	if st2.Ticks <= st1.Ticks {
		t.Fatalf("recovered pacer not advancing: ticks %d -> %d", st1.Ticks, st2.Ticks)
	}
	var fd apiv1.FlowList
	mustGet(t, addr2, "/v1/flows", &fd)
	for _, f := range fd.Flows {
		if f.ID == "crashflow" && (!f.Paced || f.Pace != 60) {
			t.Fatalf("crashflow pacer = (paced %v, pace %v), want (true, 60)", f.Paced, f.Pace)
		}
	}

	// The controller tuning survived.
	var layers []apiv1.Layer
	mustGet(t, addr2, "/v1/flows/crashflow/layers", &layers)
	tuned := false
	for _, l := range layers {
		if string(l.Kind) == "ingestion" {
			if l.Controller == nil || l.Controller.Ref != 82.5 {
				t.Fatalf("recovered ingestion controller = %+v, want ref 82.5", l.Controller)
			}
			tuned = true
		}
	}
	if !tuned {
		t.Fatal("no ingestion layer in recovered flow")
	}

	// The in-flight experiment recovered as interrupted, terminal, with
	// its grid intact.
	var xs apiv1.ExperimentSummary
	mustGet(t, addr2, "/v1/experiments/doomed", &xs)
	if string(xs.Status) != "interrupted" {
		t.Fatalf("experiment status = %q, want interrupted", xs.Status)
	}
	if xs.Trials != 4 {
		t.Fatalf("experiment trials = %d, want 4", xs.Trials)
	}

	// Telemetry: the WAL metrics exist and the torn tail was counted.
	tel := mustGetBody(t, addr2, "/v1/telemetry")
	for _, metric := range []string{
		"flower_persist_wal_records_total",
		"flower_persist_wal_replayed_records_total",
		"flower_persist_wal_checkpoints_total",
	} {
		if !strings.Contains(tel, metric) {
			t.Fatalf("telemetry missing %s", metric)
		}
	}
	if !tornTailCounted(tel) {
		t.Fatalf("flower_persist_wal_torn_tails_total not >= 1 in telemetry:\n%s", grepLines(tel, "torn_tails"))
	}
}

// --- harness helpers ---

func buildFlowerd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "flowerd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func startFlowerd(t *testing.T, bin, addr, dataDir string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, "-http", addr, "-data-dir", dataDir, "-pace", "60", "-flows", "1")
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatalf("start flowerd: %v", err)
	}
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("flowerd %s output:\n%s", addr, out.String())
		}
		cmd.Process.Kill()
		cmd.Wait()
	})
	return cmd
}

func waitReady(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/v1/flows")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("flowerd on %s never became ready", addr)
}

func mustPost(t *testing.T, addr, path, body string) {
	t.Helper()
	resp, err := http.Post("http://"+addr+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST %s: %d: %s", path, resp.StatusCode, data)
	}
}

func mustGet(t *testing.T, addr, path string, out any) {
	t.Helper()
	body := mustGetBody(t, addr, path)
	if err := json.Unmarshal([]byte(body), out); err != nil {
		t.Fatalf("GET %s: decode: %v (body %q)", path, err, body)
	}
}

func mustGetBody(t *testing.T, addr, path string) string {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d, %v", path, resp.StatusCode, err)
	}
	return string(data)
}

func flowIDs(t *testing.T, addr string) []string {
	t.Helper()
	var list apiv1.FlowList
	mustGet(t, addr, "/v1/flows", &list)
	ids := make([]string, 0, len(list.Flows))
	for _, f := range list.Flows {
		ids = append(ids, f.ID)
	}
	sort.Strings(ids)
	return ids
}

// tornTailCounted scans the exposition text for
// flower_persist_wal_torn_tails_total with a value >= 1.
func tornTailCounted(tel string) bool {
	for _, line := range strings.Split(tel, "\n") {
		if strings.HasPrefix(line, "#") || !strings.Contains(line, "flower_persist_wal_torn_tails_total") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) >= 2 && fields[len(fields)-1] != "0" {
			return true
		}
	}
	return false
}

func grepLines(text, substr string) string {
	var hits []string
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, substr) {
			hits = append(hits, line)
		}
	}
	return strings.Join(hits, "\n")
}

// preserveOnFailure copies the data dir where CI can upload it.
func preserveOnFailure(t *testing.T, dataDir string) {
	if !t.Failed() {
		return
	}
	dest := os.Getenv("CRASHTEST_ARTIFACT_DIR")
	if dest == "" {
		dest = filepath.Join("..", "..", "crashtest-artifacts")
	}
	dest = filepath.Join(dest, fmt.Sprintf("%s-%d", t.Name(), os.Getpid()))
	if err := os.MkdirAll(dest, 0o755); err != nil {
		t.Logf("artifact dir: %v", err)
		return
	}
	entries, err := os.ReadDir(dataDir)
	if err != nil {
		t.Logf("artifact read: %v", err)
		return
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dataDir, e.Name()))
		if err != nil {
			continue
		}
		os.WriteFile(filepath.Join(dest, e.Name()), data, 0o644)
	}
	t.Logf("preserved data dir in %s", dest)
}
