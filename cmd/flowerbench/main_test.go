package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestReportSuitesNeverNull pins the report's JSON shape: suites and
// suites_run marshal as arrays even when no lab suite ran — a
// measurement-only invocation (-suite perf,obs) used to emit
// "suites": null, which broke consumers that range over the list.
func TestReportSuitesNeverNull(t *testing.T) {
	var rep report
	rep.finalize(nil)
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if strings.Contains(s, `"suites":null`) {
		t.Fatalf("suites marshalled as null: %s", s)
	}
	if !strings.Contains(s, `"suites":[]`) {
		t.Fatalf("empty suites not marshalled as []: %s", s)
	}
	if !strings.Contains(s, `"suites_run":[]`) {
		t.Fatalf("empty suites_run not marshalled as []: %s", s)
	}
}

// TestReportRecordsSuitesRun asserts the suites-run list round-trips in
// execution order and that existing suite rows survive finalize.
func TestReportRecordsSuitesRun(t *testing.T) {
	rep := report{Suites: []suiteReport{{Name: "controllers"}}}
	rep.finalize([]string{"controllers", "sched", "obs"})
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		SuitesRun []string      `json:"suites_run"`
		Suites    []suiteReport `json:"suites"`
	}
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	want := []string{"controllers", "sched", "obs"}
	if len(got.SuitesRun) != len(want) {
		t.Fatalf("suites_run = %v, want %v", got.SuitesRun, want)
	}
	for i := range want {
		if got.SuitesRun[i] != want[i] {
			t.Fatalf("suites_run = %v, want %v", got.SuitesRun, want)
		}
	}
	if len(got.Suites) != 1 || got.Suites[0].Name != "controllers" {
		t.Fatalf("suites lost through finalize: %v", got.Suites)
	}
}
