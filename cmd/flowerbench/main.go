// Command flowerbench is the Scenario Lab's benchmark farm: it fans the
// repository's standard evaluation suites — controller shoot-out,
// monitoring-window and elasticity-speed sweeps, the workload zoo, and
// the §3.2 budget-share Pareto study — out over all cores through
// internal/lab, prints the per-trial tables, and emits a
// machine-readable JSON report so the bench trajectory can be tracked
// across commits. The per-paper-artefact tables (Fig. 2, Eq. 2, …)
// remain available as Go benchmarks (`go test -bench . ./...`), which
// call the same internal/exper functions.
//
// Usage:
//
//	flowerbench                          run every suite, write BENCH_REPORT.json
//	flowerbench -suite controllers       one suite: controllers|windows|gamma|workloads|pareto|perf|sched|obs|query
//	flowerbench -suite perf,sched        comma-separated selection
//	flowerbench -suite perf              metric-pipeline micro-benchmarks only (ns/op, B/op,
//	                                     allocs/op + speedups vs the pre-rebuild implementations)
//	flowerbench -suite sched             execution-plane throughput: 1000 flows paced on the
//	                                     sharded scheduler vs the goroutine-per-flow baseline,
//	                                     plus the scale lab grids — a -sched-flows (default
//	                                     100k) thundering-herd/sustain run and a skewed-duration
//	                                     steal A/B — each asserted against recorded pass/fail
//	                                     thresholds (a miss exits non-zero)
//	flowerbench -sched-flows 50000       scale-grid size (CI smoke uses 50k)
//	flowerbench -sched-min-factor 1.2    scaled-down threshold overrides for noisy runners
//	flowerbench -sched-min-fidelity 0.8
//	flowerbench -suite obs               self-telemetry plane cost: scrape ns/op plus hot-path
//	                                     allocation budgets (counter update/read: 0 and <=1
//	                                     allocs/op, asserted — over-budget exits non-zero);
//	                                     writes the final telemetry snapshot to -telemetry-o
//	flowerbench -suite query             query plane: the streaming iterator engine vs the
//	                                     frozen materialize-everything evaluator on the same
//	                                     16-series scan and join+aggregate queries
//	flowerbench -workers 8 -seed 7       pool width and experiment seed
//	flowerbench -o report.json           report path ('-' for stdout, '' to skip)
//
// Report shape (one object per suite, the same lab.Results the
// /v1/experiments API serves):
//
//	{"generated": ..., "seed": 42, "workers": 8, "wall_seconds": ...,
//	 "suites_run": ["controllers", ...],
//	 "suites": [{"name": "controllers", "status": "completed",
//	             "wall_seconds": ..., "progress": {...},
//	             "results": {"trials": [...], "aggregates": {...}}}]}
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/exper"
	"repro/internal/lab"
	"repro/internal/perfbench"
	"repro/internal/telemetry"
)

// report is the machine-readable output.
type report struct {
	Generated   time.Time `json:"generated"`
	Seed        int64     `json:"seed"`
	Workers     int       `json:"workers"`
	WallSeconds float64   `json:"wall_seconds"`
	// SuitesRun names every suite this invocation executed, lab and
	// measurement alike, in execution order — so a report consumer can
	// tell "suite skipped" apart from "suite ran and found nothing".
	SuitesRun []string      `json:"suites_run"`
	Suites    []suiteReport `json:"suites"`
	// Perf holds the metric-pipeline micro-benchmarks (suite "perf"):
	// ns/op, B/op and allocs/op per benchmark, with speedup ratios against
	// the frozen pre-rebuild implementations — the repository's perf
	// trajectory, tracked commit over commit.
	Perf *perfReport `json:"perf,omitempty"`
	// Sched holds the execution-plane throughput suite (suite "sched"):
	// flows-paced-per-second and goroutine counts on the sharded scheduler
	// versus the retired goroutine-per-flow baseline.
	Sched *schedReport `json:"sched,omitempty"`
	// Obs holds the self-telemetry plane's cost suite (suite "obs"):
	// scrape cost and the allocation budgets of the hot-path instruments
	// (counter updates and reads must stay allocation-free).
	Obs *obsReport `json:"obs,omitempty"`
	// Query holds the query-plane suite (suite "query"): the streaming
	// iterator engine versus the frozen materialize-everything evaluator
	// on the same 16-series queries, with speedup and B/op / allocs/op
	// factors (the two evaluators are proven bit-for-bit equivalent by
	// internal/perfbench's tests).
	Query *perfReport `json:"query,omitempty"`
}

// finalize stamps the suites-run list and pins the report's JSON shape:
// list-valued fields marshal as [] when empty, never null.
func (r *report) finalize(suitesRun []string) {
	if suitesRun == nil {
		suitesRun = []string{}
	}
	r.SuitesRun = suitesRun
	if r.Suites == nil {
		r.Suites = []suiteReport{}
	}
}

// obsReport is the obs suite's section of the report.
type obsReport struct {
	WallSeconds float64          `json:"wall_seconds"`
	Benchmarks  []obsBenchResult `json:"benchmarks"`
	// BudgetsMet is false when any budgeted benchmark exceeded its
	// allocs/op budget; flowerbench also exits non-zero in that case, so
	// CI fails loudly instead of shipping a hot-path regression.
	BudgetsMet bool `json:"budgets_met"`
}

// obsBenchResult is one observability benchmark measurement.
type obsBenchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// MaxAllocs is the asserted allocs/op budget (-1: unbudgeted).
	MaxAllocs int64 `json:"max_allocs"`
	// WithinBudget reports AllocsPerOp <= MaxAllocs (true when unbudgeted).
	WithinBudget bool `json:"within_budget"`
}

// runObsSuite executes the observability benchmarks and asserts the
// allocation budgets.
func runObsSuite() *obsReport {
	start := time.Now()
	fmt.Println("=== suite obs: self-telemetry plane cost ===")
	rep := &obsReport{BudgetsMet: true}
	for _, bench := range perfbench.ObsSuite() {
		r := testing.Benchmark(bench.F)
		br := obsBenchResult{
			Name:         bench.Name,
			NsPerOp:      float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:   r.AllocedBytesPerOp(),
			AllocsPerOp:  r.AllocsPerOp(),
			MaxAllocs:    bench.MaxAllocs,
			WithinBudget: bench.MaxAllocs < 0 || r.AllocsPerOp() <= bench.MaxAllocs,
		}
		if !br.WithinBudget {
			rep.BudgetsMet = false
		}
		line := fmt.Sprintf("  %-26s %12.1f ns/op %8d B/op %6d allocs/op",
			br.Name, br.NsPerOp, br.BytesPerOp, br.AllocsPerOp)
		if bench.MaxAllocs >= 0 {
			verdict := "ok"
			if !br.WithinBudget {
				verdict = "OVER BUDGET"
			}
			line += fmt.Sprintf("   budget <=%d (%s)", bench.MaxAllocs, verdict)
		}
		fmt.Println(line)
		rep.Benchmarks = append(rep.Benchmarks, br)
	}
	rep.WallSeconds = time.Since(start).Seconds()
	fmt.Printf("  obs suite completed in %.1fs\n\n", rep.WallSeconds)
	return rep
}

// schedThresholds are the sched suite's pass/fail bars, recorded in the
// report so a scale regression fails CI with the numbers next to it.
type schedThresholds struct {
	// MinAdvancesFactor is the minimum sched/legacy advances-per-second
	// ratio for the 1000-flow pacing pair.
	MinAdvancesFactor float64 `json:"min_advances_factor"`
	// MinFidelity is the minimum delivered/demanded tick ratio for the
	// scale and skew grids.
	MinFidelity float64 `json:"min_fidelity"`
	// MaxHerdSetupSeconds bounds the thundering-herd registration burst.
	MaxHerdSetupSeconds float64 `json:"max_herd_setup_seconds"`
}

// schedReport is the sched suite's section of the report.
type schedReport struct {
	WallSeconds float64 `json:"wall_seconds"`
	Flows       int     `json:"flows"`
	// Benchmarks holds the pacing pair: pace_flows_sched (the unified
	// execution plane) and pace_flows_legacy (the frozen goroutine-per-flow
	// baseline), same flow count, pace and window — run in the
	// tick-pressure regime (1ms per-flow ticks) where the design of the
	// pacing plane, not the cost of the simulation steps, is what is
	// measured.
	Benchmarks []perfbench.PaceBenchResult `json:"benchmarks"`
	// AdvancesFactor is sched advances/sec divided by legacy advances/sec
	// (>1: the scheduler paces more simulation per second).
	AdvancesFactor float64 `json:"advances_factor_vs_legacy"`
	// GoroutineFactor is legacy goroutines divided by sched goroutines
	// (>1: the scheduler needs fewer goroutines; expect ~flows/shards).
	GoroutineFactor float64 `json:"goroutine_factor_vs_legacy"`
	// ScaleFlows is the -sched-flows axis: how many synthetic paced jobs
	// the scale and herd grids drive.
	ScaleFlows int `json:"scale_flows"`
	// Scale holds the lab grids: scale_<N> (sustained pacing at ScaleFlows
	// jobs, registered in one thundering-herd burst) and the
	// skew_steal/skew_nosteal pair (2% of jobs burn CPU every fire, with
	// work stealing on and off).
	Scale []perfbench.ScaleBenchResult `json:"scale"`
	// Thresholds are the pass/fail bars; ThresholdsMet reports whether
	// every measurement cleared them (false also makes flowerbench exit
	// non-zero).
	Thresholds    schedThresholds `json:"thresholds"`
	ThresholdsMet bool            `json:"thresholds_met"`
}

// runSchedSuite measures the 1000-flow pacing pair, the -sched-flows
// scale/herd grid and the skewed-duration steal pair, asserting each
// against the recorded thresholds.
func runSchedSuite(scaleFlows int, th schedThresholds) *schedReport {
	start := time.Now()
	fmt.Println("=== suite sched: execution-plane pacing throughput (1000 flows) ===")
	// 1ms per-flow ticks: demand outruns what per-flow ticker goroutines
	// can wake for, so the pair measures the pacing plane itself. The
	// coarser 50ms default regime scores ~1.0x — both designs just meet
	// demand — which is a statement about the workload, not the scheduler.
	cfg := perfbench.PaceBenchConfig{Pace: 800, WallTick: time.Millisecond}
	unified, err := perfbench.RunSchedPaceBench(cfg)
	if err != nil {
		log.Fatalf("sched suite: %v", err)
	}
	legacy, err := perfbench.RunLegacyPaceBench(cfg)
	if err != nil {
		log.Fatalf("sched suite: %v", err)
	}
	rep := &schedReport{
		Flows:         unified.Flows,
		Benchmarks:    []perfbench.PaceBenchResult{unified, legacy},
		ScaleFlows:    scaleFlows,
		Thresholds:    th,
		ThresholdsMet: true,
	}
	if legacy.AdvancesPerSec > 0 {
		rep.AdvancesFactor = unified.AdvancesPerSec / legacy.AdvancesPerSec
	}
	if unified.Goroutines > 0 {
		rep.GoroutineFactor = float64(legacy.Goroutines) / float64(unified.Goroutines)
	}
	for _, r := range rep.Benchmarks {
		fmt.Printf("  %-20s %6d flows %10.0f advances/s %6d goroutines", r.Name, r.Flows, r.AdvancesPerSec, r.Goroutines)
		if r.SkippedTicks > 0 || r.LateRuns > 0 {
			fmt.Printf("   (%d late runs, %d ticks dropped by catch-up cap)", r.LateRuns, r.SkippedTicks)
		}
		fmt.Println()
	}
	verdict := "ok"
	if rep.AdvancesFactor < th.MinAdvancesFactor {
		rep.ThresholdsMet = false
		verdict = "BELOW THRESHOLD"
	}
	fmt.Printf("  vs legacy: %.2fx advances/sec (threshold >=%.2fx: %s), %.0fx fewer goroutines\n",
		rep.AdvancesFactor, th.MinAdvancesFactor, verdict, rep.GoroutineFactor)

	// Scale + thundering herd: scaleFlows jobs registered in one burst,
	// then sustained pacing measured.
	scale, err := perfbench.RunSchedScaleBench(fmt.Sprintf("scale_%d", scaleFlows), perfbench.ScaleBenchConfig{
		Jobs: scaleFlows, Interval: time.Second, Wall: 3 * time.Second,
	})
	if err != nil {
		log.Fatalf("sched suite: %v", err)
	}
	// Skewed durations: 2% of jobs burn 300µs of CPU every fire, with
	// stealing on and off. The steal counter is the mechanism check; the
	// fidelity pair prices the imbalance.
	skewCfg := perfbench.ScaleBenchConfig{
		Jobs: 2000, Interval: 100 * time.Millisecond, Wall: 2 * time.Second,
		Shards: 4, HeavyFrac: 0.02, HeavyWork: 300 * time.Microsecond,
	}
	skewSteal, err := perfbench.RunSchedScaleBench("skew_steal", skewCfg)
	if err != nil {
		log.Fatalf("sched suite: %v", err)
	}
	skewCfg.NoSteal = true
	skewNoSteal, err := perfbench.RunSchedScaleBench("skew_nosteal", skewCfg)
	if err != nil {
		log.Fatalf("sched suite: %v", err)
	}
	rep.Scale = []perfbench.ScaleBenchResult{scale, skewSteal, skewNoSteal}
	for _, r := range rep.Scale {
		ok := r.Fidelity >= th.MinFidelity
		if r.Name == scale.Name {
			ok = ok && r.SetupSeconds <= th.MaxHerdSetupSeconds
		}
		if !ok {
			rep.ThresholdsMet = false
		}
		verdict := "ok"
		if !ok {
			verdict = "BELOW THRESHOLD"
		}
		fmt.Printf("  %-16s %7d jobs %10.0f ticks/s  fidelity %.3f (>=%.2f: %s)  herd setup %.2fs  steals %d  mean batch %.1f  %d goroutines\n",
			r.Name, r.Jobs, r.TicksPerSec, r.Fidelity, th.MinFidelity, verdict, r.SetupSeconds, r.Steals, r.MeanBatch, r.Goroutines)
	}
	rep.WallSeconds = time.Since(start).Seconds()
	fmt.Printf("  sched suite completed in %.1fs\n\n", rep.WallSeconds)
	return rep
}

// perfReport is the perf suite's section of the report.
type perfReport struct {
	WallSeconds float64       `json:"wall_seconds"`
	Benchmarks  []benchResult `json:"benchmarks"`
}

// benchResult is one micro-benchmark measurement.
type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Baseline names the legacy benchmark the ratios compare against.
	Baseline string `json:"baseline,omitempty"`
	// Speedup is baseline ns/op divided by this ns/op (>1: faster).
	Speedup float64 `json:"speedup_vs_baseline,omitempty"`
	// AllocReductionPct is the percentage of baseline allocs/op removed.
	AllocReductionPct float64 `json:"alloc_reduction_pct_vs_baseline,omitempty"`
	// BytesFactor / AllocsFactor are baseline B/op and allocs/op divided
	// by this benchmark's (>1: lighter) — the read-plane acceptance bars
	// ("batch query ≥4x fewer bytes and allocs than N single queries")
	// are stated in these.
	BytesFactor  float64 `json:"bytes_factor_vs_baseline,omitempty"`
	AllocsFactor float64 `json:"allocs_factor_vs_baseline,omitempty"`
}

// runPerfSuite executes the perfbench micro-benchmarks through
// testing.Benchmark and derives the vs-legacy ratios.
func runPerfSuite() *perfReport {
	return runBenchSuite("perf: metric-pipeline micro-benchmarks", perfbench.Suite())
}

// runQuerySuite executes the query-plane benchmarks: the streaming
// engine against the materialize-everything baseline evaluator.
func runQuerySuite() *perfReport {
	return runBenchSuite("query: streaming engine vs materializing baseline", perfbench.QuerySuite())
}

// runBenchSuite executes one named set of micro-benchmarks and derives
// the vs-baseline ratio columns.
func runBenchSuite(title string, benches []perfbench.Bench) *perfReport {
	start := time.Now()
	fmt.Printf("=== suite %s ===\n", title)
	byName := map[string]benchResult{}
	rep := &perfReport{}
	for _, bench := range benches {
		r := testing.Benchmark(bench.F)
		br := benchResult{
			Name:        bench.Name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			Baseline:    bench.Baseline,
		}
		if bench.Baseline != "" {
			base, ok := byName[bench.Baseline]
			if !ok {
				// A baseline must precede its comparisons in the suite;
				// a silent miss would drop the vs-legacy columns from the
				// trajectory artifact.
				log.Fatalf("bench suite: benchmark %q names baseline %q, which has not run", bench.Name, bench.Baseline)
			}
			if br.NsPerOp > 0 {
				br.Speedup = base.NsPerOp / br.NsPerOp
			}
			if base.AllocsPerOp > 0 {
				br.AllocReductionPct = 100 * float64(base.AllocsPerOp-br.AllocsPerOp) / float64(base.AllocsPerOp)
			}
			if br.BytesPerOp > 0 {
				br.BytesFactor = float64(base.BytesPerOp) / float64(br.BytesPerOp)
			}
			if br.AllocsPerOp > 0 {
				br.AllocsFactor = float64(base.AllocsPerOp) / float64(br.AllocsPerOp)
			}
		}
		byName[bench.Name] = br
		rep.Benchmarks = append(rep.Benchmarks, br)
		line := fmt.Sprintf("  %-32s %12.1f ns/op %8d B/op %6d allocs/op",
			br.Name, br.NsPerOp, br.BytesPerOp, br.AllocsPerOp)
		if br.Speedup > 0 {
			line += fmt.Sprintf("   %5.1fx vs %s", br.Speedup, br.Baseline)
			if br.AllocReductionPct > 0 {
				line += fmt.Sprintf(", -%.0f%% allocs", br.AllocReductionPct)
			}
		}
		fmt.Println(line)
	}
	rep.WallSeconds = time.Since(start).Seconds()
	fmt.Printf("  suite completed in %.1fs\n\n", rep.WallSeconds)
	return rep
}

type suiteReport struct {
	Name        string       `json:"name"`
	Status      lab.Status   `json:"status"`
	WallSeconds float64      `json:"wall_seconds"`
	Progress    lab.Progress `json:"progress"`
	Results     lab.Results  `json:"results"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("flowerbench: ")

	suite := flag.String("suite", "all", "comma-separated suites: all|controllers|windows|gamma|workloads|pareto|perf|sched|obs|query")
	telemetryOut := flag.String("telemetry-o", "TELEMETRY_SNAPSHOT.prom", "with the obs suite: write the process's final telemetry snapshot (Prometheus text) to this path ('' to skip)")
	seed := flag.Int64("seed", 42, "experiment seed")
	workers := flag.Int("workers", 0, "worker pool width (0: GOMAXPROCS)")
	out := flag.String("o", "BENCH_REPORT.json", "JSON report path ('-' for stdout, '' to skip)")
	budget := flag.Float64("budget", 0.29, "hourly budget of the pareto suite's share problem")
	schedFlows := flag.Int("sched-flows", 100000, "sched suite: synthetic paced jobs in the scale/herd grid")
	schedMinFactor := flag.Float64("sched-min-factor", 1.5, "sched suite: minimum advances/sec ratio vs the legacy baseline")
	schedMinFidelity := flag.Float64("sched-min-fidelity", 0.9, "sched suite: minimum delivered/demanded tick ratio in the scale and skew grids")
	flag.Parse()

	suites := map[string]func(int64) (lab.Spec, error){
		"controllers": func(s int64) (lab.Spec, error) { return exper.ControllerShootoutSpec(s), nil },
		"windows":     func(s int64) (lab.Spec, error) { return exper.WindowSweepSpec(s), nil },
		"gamma":       func(s int64) (lab.Spec, error) { return exper.GammaSweepSpec(s), nil },
		"workloads":   func(s int64) (lab.Spec, error) { return exper.WorkloadZooSpec(s), nil },
		"pareto": func(s int64) (lab.Spec, error) {
			spec, plans, err := exper.SharePlanSpec(s, *budget)
			if err != nil {
				return lab.Spec{}, err
			}
			fmt.Printf("pareto: share analyzer found %d Pareto-optimal plans under $%.2f/h\n", len(plans), *budget)
			return spec, nil
		},
	}
	order := []string{"controllers", "windows", "gamma", "workloads", "pareto"}

	// Parse the comma-separated selection; "all" is every lab suite plus
	// the perf and sched measurement suites.
	runPerf, runSched, runObs, runQuery := false, false, false, false
	var selected []string
	for _, name := range strings.Split(*suite, ",") {
		switch name = strings.TrimSpace(name); name {
		case "":
		case "all":
			selected = append(selected, order...)
			runPerf, runSched, runObs, runQuery = true, true, true, true
		case "perf":
			runPerf = true
		case "sched":
			runSched = true
		case "obs":
			runObs = true
		case "query":
			runQuery = true
		default:
			if _, ok := suites[name]; !ok {
				fmt.Fprintf(os.Stderr, "flowerbench: unknown suite %q (want all|%s)\n", name, "controllers|windows|gamma|workloads|pareto|perf|sched|obs|query")
				os.Exit(2)
			}
			selected = append(selected, name)
		}
	}

	// The lab engine exists only when a lab suite runs: a perf- or
	// sched-only invocation must not carry an idle scheduler whose
	// goroutines would pollute the sched suite's peak-goroutine column.
	reportWorkers := *workers
	var engine *lab.Engine
	if len(selected) > 0 {
		engine = lab.NewEngine(*workers)
		defer engine.Close()
		reportWorkers = engine.Workers()
		fmt.Printf("benchmark farm: %d suite(s) on %d workers (seed %d)\n\n",
			len(selected), engine.Workers(), *seed)
	}

	start := time.Now()
	// Submit every suite up front: the engine's pool interleaves their
	// trials, so one long suite cannot leave cores idle.
	type running struct {
		name string
		x    *lab.Experiment
		at   time.Time
	}
	var farm []running
	for _, name := range selected {
		spec, err := suites[name](*seed)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		x, err := engine.Submit(name, spec)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		farm = append(farm, running{name: name, x: x, at: time.Now()})
	}

	// One waiter per suite, so each wall time is submit-to-completion —
	// observing suites in submission order would charge early finishers
	// for their slower siblings' runtime.
	walls := make([]float64, len(farm))
	var wg sync.WaitGroup
	for i, r := range farm {
		wg.Add(1)
		go func(i int, r running) {
			defer wg.Done()
			<-r.x.Done()
			walls[i] = time.Since(r.at).Seconds()
		}(i, r)
	}
	wg.Wait()

	rep := report{Generated: start, Seed: *seed, Workers: reportWorkers}
	var suitesRun []string
	for i, r := range farm {
		sr := suiteReport{
			Name:        r.name,
			Status:      r.x.Status(),
			WallSeconds: walls[i],
			Progress:    r.x.Progress(),
			Results:     r.x.Results(),
		}
		rep.Suites = append(rep.Suites, sr)
		suitesRun = append(suitesRun, r.name)
		printSuite(sr)
	}
	if runPerf {
		rep.Perf = runPerfSuite()
		suitesRun = append(suitesRun, "perf")
	}
	if runSched {
		rep.Sched = runSchedSuite(*schedFlows, schedThresholds{
			MinAdvancesFactor:   *schedMinFactor,
			MinFidelity:         *schedMinFidelity,
			MaxHerdSetupSeconds: 10,
		})
		suitesRun = append(suitesRun, "sched")
	}
	if runObs {
		rep.Obs = runObsSuite()
		suitesRun = append(suitesRun, "obs")
	}
	if runQuery {
		rep.Query = runQuerySuite()
		suitesRun = append(suitesRun, "query")
	}
	rep.finalize(suitesRun)
	rep.WallSeconds = time.Since(start).Seconds()
	fmt.Printf("farm completed in %v\n", time.Since(start).Round(time.Millisecond))

	if runObs && *telemetryOut != "" {
		// The artifact is the process's own telemetry after the whole run —
		// every instrumented package's counters as exercised by the suites —
		// in Prometheus text, uploadable next to the JSON report.
		var buf bytes.Buffer
		if err := telemetry.Default().Snapshot().WriteProm(&buf); err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*telemetryOut, buf.Bytes(), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("telemetry snapshot written to %s\n", *telemetryOut)
	}

	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		data = append(data, '\n')
		if *out == "-" {
			os.Stdout.Write(data)
		} else {
			if err := os.WriteFile(*out, data, 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("report written to %s\n", *out)
		}
	}

	if rep.Obs != nil && !rep.Obs.BudgetsMet {
		log.Fatal("obs suite: allocation budget exceeded (see report)")
	}
	if rep.Sched != nil && !rep.Sched.ThresholdsMet {
		log.Fatal("sched suite: scale threshold missed (see report)")
	}
}

// printSuite renders one suite's table and aggregates.
func printSuite(sr suiteReport) {
	fmt.Printf("=== suite %s: %s (%d/%d trials, max %d concurrent, %.1fs wall) ===\n",
		sr.Name, sr.Status, sr.Progress.Done, sr.Progress.Total,
		sr.Progress.MaxConcurrent, sr.WallSeconds)
	fmt.Printf("  %-28s %10s %10s %8s %10s\n", "trial", "cost ($)", "viol.rate", "actions", "|err| mean")
	for _, tr := range sr.Results.Trials {
		if tr.Status != lab.TrialDone {
			fmt.Printf("  %-28s %s %s\n", tr.Name, tr.Status, tr.Error)
			continue
		}
		actions := 0
		for _, n := range tr.Actions {
			actions += n
		}
		fmt.Printf("  %-28s %10.4f %10.3f %8d %10.2f\n",
			tr.Name, tr.TotalCost, tr.ViolationRate, actions, tr.MeanAbsError)
	}
	agg := sr.Results.Aggregates
	if agg.Completed > 0 {
		if agg.BestCost != nil && agg.BestViolation != nil {
			fmt.Printf("  best cost %s ($%.4f); best violations %s (%.3f)\n",
				agg.BestCost.Name, agg.BestCost.Value, agg.BestViolation.Name, agg.BestViolation.Value)
		}
		if len(agg.Pareto) > 0 {
			fmt.Printf("  measured Pareto front (cost, viol.rate):")
			for _, p := range agg.Pareto {
				fmt.Printf("  %s ($%.4f, %.3f)", p.Name, p.TotalCost, p.ViolationRate)
			}
			fmt.Println()
		}
	}
	fmt.Println()
}
