// Command flowerbench regenerates the paper's quantitative artefacts: one
// experiment per figure/equation/claim, each printing the table recorded
// in EXPERIMENTS.md. The repository-level Go benchmarks call the same
// experiment functions, so the two outputs always agree.
//
// Usage:
//
//	flowerbench -exp all            run every experiment
//	flowerbench -exp fig2           E1: Fig. 2 ingestion↔CPU correlation
//	flowerbench -exp eq2            E2: Eq. 2 regression
//	flowerbench -exp fig4           E3: Fig. 4 Pareto front
//	flowerbench -exp controllers    E4: adaptive vs fixed/quasi/rule
//	flowerbench -exp cost           E5: multi- vs single-tier saving
//	flowerbench -exp rules          E6: flash-crowd, rules vs adaptive
//	flowerbench -exp monitor        E7: all-in-one-place coverage
//	flowerbench -exp predictive     E8: reactive vs predictive elasticity
//	flowerbench -exp gainmem        ablation: Eq. 7 gain memory on/off
//	flowerbench -exp windows        sweep: monitoring window vs SLOs
//	flowerbench -exp gamma          sweep: gain adaptation rate vs SLOs
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/exper"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("flowerbench: ")

	exp := flag.String("exp", "all", "experiment: all|fig2|eq2|fig4|controllers|cost|rules|monitor|predictive|gainmem|windows|gamma")
	seed := flag.Int64("seed", 42, "experiment seed")
	flag.Parse()

	runners := map[string]func(int64) (string, error){
		"fig2": func(s int64) (string, error) {
			r, err := exper.Fig2(s)
			return r.Table(), err
		},
		"eq2": func(s int64) (string, error) {
			r, err := exper.Eq2(s)
			return r.Table(), err
		},
		"fig4": func(s int64) (string, error) {
			r, err := exper.Fig4(s)
			return r.Table(), err
		},
		"controllers": func(s int64) (string, error) {
			r, err := exper.Controllers(s)
			return r.Table(), err
		},
		"cost": func(s int64) (string, error) {
			r, err := exper.CostSaving(s)
			return r.Table(), err
		},
		"rules": func(s int64) (string, error) {
			r, err := exper.RuleVsAdaptive(s)
			return r.Table(), err
		},
		"monitor": func(s int64) (string, error) {
			r, err := exper.Monitor(s)
			return r.Table(), err
		},
		"predictive": func(s int64) (string, error) {
			r, err := exper.Predictive(s)
			return r.Table(), err
		},
		"gainmem": func(s int64) (string, error) {
			r, err := exper.GainMemory(s)
			return r.Table(), err
		},
		"windows": func(s int64) (string, error) {
			r, err := exper.WindowSweep(s)
			return r.Table(), err
		},
		"gamma": func(s int64) (string, error) {
			r, err := exper.GammaSweep(s)
			return r.Table(), err
		},
	}
	order := []string{"fig2", "eq2", "fig4", "controllers", "cost", "rules", "monitor", "predictive", "gainmem", "windows", "gamma"}

	var selected []string
	if *exp == "all" {
		selected = order
	} else if _, ok := runners[*exp]; ok {
		selected = []string{*exp}
	} else {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}

	for _, name := range selected {
		start := time.Now()
		table, err := runners[name](*seed)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println(table)
		fmt.Printf("  [%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}
