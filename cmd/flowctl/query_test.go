package main

import (
	"strings"
	"testing"

	apiv1 "repro/api/v1"
)

// TestRunExitCodes pins the dispatch contract: unknown subcommands and a
// missing subcommand fail with exit code 2 and print the usage (which
// must enumerate query), while requested help succeeds.
func TestRunExitCodes(t *testing.T) {
	var stdout, stderr strings.Builder

	if code := run([]string{"frobnicate"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown subcommand: exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), `unknown subcommand "frobnicate"`) {
		t.Errorf("stderr missing diagnostic:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "query") {
		t.Errorf("usage does not enumerate the query subcommand:\n%s", stderr.String())
	}

	stdout.Reset()
	stderr.Reset()
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatalf("missing subcommand: exit %d, want 2", code)
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"help"}, &stdout, &stderr); code != 0 {
		t.Fatalf("help: exit %d, want 0", code)
	}
	for _, want := range []string{"query", "sched", "experiments"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("help output missing %q:\n%s", want, stdout.String())
		}
	}
}

func TestRenderQueryTable(t *testing.T) {
	resp := apiv1.QueryResponse{
		Results: []apiv1.QuerySeries{
			{
				Flow: "web", Namespace: "Ingestion/Stream", Name: "IncomingRecords",
				Dims: map[string]string{"StreamName": "web"},
				Ts:   []int64{1_700_000_000_000_000_000, 1_700_000_060_000_000_000},
				Vs:   []float64{12.5, 14.25},
			},
			{
				Flow: "web", Namespace: "Analytics/Compute", Name: "CPUUtilization",
				Right: "Ingestion/Stream/IncomingRecords",
				Ts:    []int64{1_700_000_000_000_000_000},
				Vs:    []float64{70},
				Vs2:   []float64{12.5},
			},
		},
		Stats: apiv1.QueryStats{Series: 2, Rows: 3, PlanNanos: 1000, ExecNanos: 2000},
	}
	var out strings.Builder
	renderQueryTable(&out, resp, 10)
	got := out.String()
	for _, want := range []string{
		"web  Ingestion/Stream/IncomingRecords{StreamName=web}  (2 points)",
		"joined Ingestion/Stream/IncomingRecords",
		"14.2500",
		"2 series, 3 rows",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("table missing %q in:\n%s", want, got)
		}
	}
	// The dual-column join row carries both values.
	if !strings.Contains(got, "70.0000") || !strings.Contains(got, "12.5000") {
		t.Errorf("join columns missing:\n%s", got)
	}

	// Tail elision: only the trailing point plus a marker.
	out.Reset()
	renderQueryTable(&out, resp, 1)
	if !strings.Contains(out.String(), "1 earlier points elided") {
		t.Errorf("tail elision marker missing:\n%s", out.String())
	}
}
