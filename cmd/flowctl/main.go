// Command flowctl creates, validates and inspects flow definitions — the
// command-line Flow Builder and Configuration Wizard (§4 steps 1–2) — and
// drives a running flowerd control plane through the repro/client SDK.
//
// Local usage:
//
//	flowctl init [-peak 3000] [-o flow.json]   write the default click-stream flow
//	flowctl validate flow.json                 check a definition
//	flowctl show flow.json                     summarise a definition
//	flowctl plan [-budget 0.29] flow.json      Pareto-optimal resource shares (§3.2)
//
// Remote usage (against `flowerd -http`):
//
//	flowctl create -url http://host:8080 [-id web] [-spec flow.json | -peak 3000] [-pace 60]
//	flowctl list -url http://host:8080
//	flowctl status -url http://host:8080 -flow web
//	flowctl advance -url http://host:8080 -flow web -d 30m
//	flowctl tune -url http://host:8080 -flow web -layer analytics [-ref 70] [-window 4m] [-dead-band 5]
//	flowctl delete -url http://host:8080 -flow web
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	apiv1 "repro/api/v1"
	"repro/client"
	"repro/internal/flow"
	"repro/internal/nsga2"
	"repro/internal/sim"

	flower "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("flowctl: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "init":
		cmdInit(os.Args[2:])
	case "validate":
		cmdValidate(os.Args[2:])
	case "show":
		cmdShow(os.Args[2:])
	case "plan":
		cmdPlan(os.Args[2:])
	case "create":
		cmdCreate(os.Args[2:])
	case "list":
		cmdList(os.Args[2:])
	case "status":
		cmdStatus(os.Args[2:])
	case "advance":
		cmdAdvance(os.Args[2:])
	case "tune":
		cmdTune(os.Args[2:])
	case "delete":
		cmdDelete(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: flowctl <command> [args]
local:   init | validate | show | plan
remote:  create | list | status | advance | tune | delete   (all take -url)`)
	os.Exit(2)
}

func cmdInit(args []string) {
	fs := flag.NewFlagSet("init", flag.ExitOnError)
	peak := fs.Float64("peak", 3000, "peak click rate (records/s)")
	out := fs.String("o", "flow.json", "output path ('-' for stdout)")
	fs.Parse(args)

	spec, err := flower.DefaultClickstream(*peak)
	if err != nil {
		log.Fatal(err)
	}
	data, err := spec.Encode()
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func load(args []string) flower.Spec {
	if len(args) != 1 {
		usage()
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		log.Fatal(err)
	}
	spec, err := flower.DecodeSpec(data)
	if err != nil {
		log.Fatal(err)
	}
	return spec
}

// cmdPlan runs the resource-share analyzer (§3.2) over a flow definition:
// given the budget and the spec's allocation ranges and prices, NSGA-II
// returns the Pareto-optimal (shards, VMs, WCU) plans. A -budget flag
// overrides the spec's budget_per_hour.
func cmdPlan(args []string) {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	budget := fs.Float64("budget", 0, "hourly budget (overrides the spec's budget_per_hour)")
	seed := fs.Int64("seed", 42, "NSGA-II seed")
	fs.Parse(args)

	spec := load(fs.Args())
	if *budget > 0 {
		spec.BudgetPerHour = *budget
	}
	mgr, err := flower.New(spec, sim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	plans, err := mgr.AnalyzeShares(nil, nsga2.Config{PopSize: 120, Generations: 250, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Pareto-optimal resource shares for %q at $%.3f/hour (%d plans):\n",
		spec.Name, spec.BudgetPerHour, len(plans))
	fmt.Printf("  %-10s %-10s %-10s %-10s\n", "shards(I)", "vms(A)", "wcu(S)", "$/hour")
	for _, plan := range plans {
		fmt.Printf("  %-10.0f %-10.0f %-10.0f %-10.4f\n",
			plan.Amounts[0], plan.Amounts[1], plan.Amounts[2], plan.HourlyCost)
	}
	fmt.Println("pick one manually or at random (§3.2); feed it back as the layers' max allocations")
}

func cmdValidate(args []string) {
	spec := load(args)
	fmt.Printf("%s: valid flow definition (%d layers)\n", args[0], len(spec.Layers))
}

func cmdShow(args []string) {
	spec := load(args)
	fmt.Printf("flow %q\n", spec.Name)
	fmt.Printf("  workload: %s base=%.0f peak=%.0f poisson=%v\n",
		spec.Workload.Pattern, spec.Workload.Base, spec.Workload.Peak, spec.Workload.Poisson)
	for _, l := range spec.Layers {
		fmt.Printf("  %-10s %-14s resource=%-7s alloc=[%g..%g] init=%g controller=%s",
			l.Kind, l.System, l.Resource, l.Min, l.Max, l.Initial, l.Controller.Type)
		if l.Controller.Type != flow.ControllerNone {
			fmt.Printf(" ref=%.0f%% window=%v", l.Controller.Ref, l.Controller.Window.D())
		}
		fmt.Println()
	}
	if spec.BudgetPerHour > 0 {
		fmt.Printf("  budget: $%.3f/hour\n", spec.BudgetPerHour)
	}
	fmt.Printf("  prices: shard $%.4g/h, VM $%.4g/h, WCU $%.4g/h, RCU $%.4g/h\n",
		spec.Prices.ShardHour, spec.Prices.VMHour, spec.Prices.WCUHour, spec.Prices.RCUHour)
}

// --- remote subcommands (client SDK) ---

// remoteFlags returns a flag set pre-populated with the flags every remote
// subcommand shares.
func remoteFlags(name string) (*flag.FlagSet, *string) {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	url := fs.String("url", "", "base URL of a running flowerd control plane (required)")
	return fs, url
}

func dial(url string) *client.Client {
	if url == "" {
		log.Fatal("-url is required for remote commands")
	}
	return client.New(url)
}

func cmdCreate(args []string) {
	fs, url := remoteFlags("create")
	id := fs.String("id", "", "flow id (default: the spec's name)")
	specPath := fs.String("spec", "", "JSON flow definition to register (default: built-in click-stream flow)")
	peak := fs.Float64("peak", 3000, "peak click rate for the built-in flow (records/s)")
	step := fs.Duration("step", 0, "simulation tick (0: server default)")
	seed := fs.Int64("seed", 0, "simulation seed")
	pace := fs.Float64("pace", 0, "start pacing at this many simulated seconds per wall second")
	fs.Parse(args)

	req := apiv1.CreateFlowRequest{ID: *id, Seed: *seed, Pace: *pace}
	if *specPath != "" {
		spec := load([]string{*specPath})
		req.Spec = &spec
	} else {
		req.Peak = *peak
	}
	if *step > 0 {
		req.Step = step.String()
	}
	f, err := dial(*url).CreateFlow(context.Background(), req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("created flow %q (name %q, paced=%v)\n", f.ID, f.Name, f.Paced)
}

func cmdList(args []string) {
	fs, url := remoteFlags("list")
	fs.Parse(args)
	flows, err := dial(*url).ListFlows(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-24s %-20s %8s %6s %s\n", "ID", "SIM TIME", "TICKS", "PACE", "ELAPSED")
	for _, f := range flows {
		pace := "-"
		if f.Paced {
			pace = fmt.Sprintf("%.0f", f.Pace)
		}
		fmt.Printf("%-24s %-20s %8d %6s %s\n",
			f.ID, f.SimTime.Format("2006-01-02 15:04:05"), f.Ticks, pace, f.Elapsed)
	}
}

// flowArg extracts the required -flow value.
func flowArg(fs *flag.FlagSet) *string {
	return fs.String("flow", "", "flow id (required)")
}

func needFlow(id string) string {
	if id == "" {
		log.Fatal("-flow is required")
	}
	return id
}

func cmdStatus(args []string) {
	fs, url := remoteFlags("status")
	id := flowArg(fs)
	fs.Parse(args)
	st, err := dial(*url).Status(context.Background(), needFlow(*id))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flow %q: sim time %s (elapsed %s, %d ticks)\n",
		st.Flow, st.SimTime.Format("2006-01-02 15:04:05"), st.Elapsed, st.Ticks)
	fmt.Printf("  offered %d records (rejected %d), violation rate %.2f%%\n",
		st.Offered, st.Rejected, 100*st.ViolationRate)
	fmt.Printf("  cost $%.4f (peak run rate $%.4f/h)\n", st.TotalCost, st.PeakRunRate)
	fmt.Printf("  allocation: %d shards, %d VMs, %.0f WCU, %.0f RCU\n",
		st.Allocation.Shards, st.Allocation.VMs, st.Allocation.WCU, st.Allocation.RCU)
}

func cmdAdvance(args []string) {
	fs, url := remoteFlags("advance")
	id := flowArg(fs)
	d := fs.Duration("d", 10*time.Minute, "simulated duration to advance")
	fs.Parse(args)
	res, err := dial(*url).Advance(context.Background(), needFlow(*id), *d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("advanced %s: %d ticks total, violation rate %.2f%%, cost $%.4f\n",
		res.Advanced, res.Ticks, 100*res.ViolationRate, res.TotalCost)
}

func cmdTune(args []string) {
	fs, url := remoteFlags("tune")
	id := flowArg(fs)
	layer := fs.String("layer", "", "layer kind: ingestion, analytics, storage, storage-reads (required)")
	ref := fs.Float64("ref", 0, "target utilisation percent (0: unchanged)")
	window := fs.Duration("window", 0, "monitoring window (0: unchanged)")
	deadBand := fs.Float64("dead-band", -1, "dead band percent (-1: unchanged)")
	fs.Parse(args)
	if *layer == "" {
		log.Fatal("-layer is required")
	}
	var req apiv1.TuneRequest
	if *ref > 0 {
		req.Ref = ref
	}
	if *window > 0 {
		w := window.String()
		req.Window = &w
	}
	if *deadBand >= 0 {
		req.DeadBand = deadBand
	}
	ctrl, err := dial(*url).TuneController(context.Background(), needFlow(*id), *layer, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s controller: type=%s ref=%.0f%% window=%s dead_band=%.1f (%d actions)\n",
		*layer, ctrl.Type, ctrl.Ref, ctrl.Window, ctrl.DeadBand, ctrl.Actions)
}

func cmdDelete(args []string) {
	fs, url := remoteFlags("delete")
	id := flowArg(fs)
	fs.Parse(args)
	if err := dial(*url).DeleteFlow(context.Background(), needFlow(*id)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deleted flow %q\n", *id)
}
