// Command flowctl creates, validates and inspects flow definitions — the
// command-line Flow Builder and Configuration Wizard (§4 steps 1–2) — and
// drives a running flowerd control plane through the repro/client SDK,
// including the Scenario Lab's experiment farm.
//
// Local usage:
//
//	flowctl init [-peak 3000] [-o flow.json]   write the default click-stream flow
//	flowctl validate flow.json                 check a definition
//	flowctl show flow.json                     summarise a definition
//	flowctl plan [-budget 0.29] flow.json      Pareto-optimal resource shares (§3.2)
//
// Remote usage (against `flowerd -http`):
//
//	flowctl create -url http://host:8080 [-id web] [-spec flow.json | -peak 3000] [-pace 60]
//	flowctl list -url http://host:8080
//	flowctl status -url http://host:8080 -flow web
//	flowctl advance -url http://host:8080 -flow web -d 30m
//	flowctl tune -url http://host:8080 -flow web -layer analytics [-ref 70] [-window 4m] [-dead-band 5]
//	flowctl delete -url http://host:8080 -flow web
//	flowctl watch -url http://host:8080 [-flow web | -experiment sweep | -flows a,b -experiments x]
//	              [-types flow.advanced,flow.decision] [-after 0] [-json]
//	flowctl query -url http://host:8080 [-explain] [-json] 'select flow=web ns=Ingestion/Stream name=IncomingRecords | window 30m | resample 1m avg'
//	flowctl sched -url http://host:8080 [-json]    execution-plane stats (GET /v1/scheduler)
//	flowctl top -url http://host:8080 [-interval 2s] [-once]   live self-telemetry view
//
// Experiment farm (Scenario Lab, /v1/experiments):
//
//	flowctl experiments create -url http://host:8080 -spec exp.json [-id sweep] [-wait]
//	flowctl experiments list -url http://host:8080
//	flowctl experiments get -url http://host:8080 -id sweep
//	flowctl experiments results -url http://host:8080 -id sweep [-json]
//	flowctl experiments cancel -url http://host:8080 -id sweep
//	flowctl experiments delete -url http://host:8080 -id sweep
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	apiv1 "repro/api/v1"
	"repro/client"
	"repro/internal/flow"
	"repro/internal/lab"
	"repro/internal/nsga2"
	"repro/internal/sim"

	flower "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("flowctl: ")
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run dispatches one invocation and returns the process exit code. It is
// the testable seam: the usage paths (missing, unknown and requested
// help) never call os.Exit themselves, so tests can pin the exit-code
// contract — unknown subcommands must fail — without forking a process.
// Individual subcommands still exit directly via log.Fatal on errors.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		fmt.Fprintln(stderr, "flowctl: a subcommand is required")
		printUsage(stderr)
		return 2
	}
	switch args[0] {
	case "init":
		cmdInit(args[1:])
	case "validate":
		cmdValidate(args[1:])
	case "show":
		cmdShow(args[1:])
	case "plan":
		cmdPlan(args[1:])
	case "create":
		cmdCreate(args[1:])
	case "list":
		cmdList(args[1:])
	case "status":
		cmdStatus(args[1:])
	case "advance":
		cmdAdvance(args[1:])
	case "tune":
		cmdTune(args[1:])
	case "delete":
		cmdDelete(args[1:])
	case "watch":
		cmdWatch(args[1:])
	case "query":
		cmdQuery(args[1:])
	case "sched":
		cmdSched(args[1:])
	case "top":
		cmdTop(args[1:])
	case "experiments":
		cmdExperiments(args[1:])
	case "help", "-h", "-help", "--help":
		printUsage(stdout) // requested help is a success
	default:
		fmt.Fprintf(stderr, "flowctl: unknown subcommand %q\n", args[0])
		printUsage(stderr)
		return 2
	}
	return 0
}

// usage enumerates every subcommand on stderr and exits non-zero, so
// scripts and typos never silently succeed; requested help goes through
// printUsage directly and exits 0.
func usage() {
	printUsage(os.Stderr)
	os.Exit(2)
}

func printUsage(w io.Writer) {
	fmt.Fprintln(w, `usage: flowctl <command> [args]

local (flow definitions):
  init        write the default click-stream flow definition
  validate    check a flow definition file
  show        summarise a flow definition file
  plan        Pareto-optimal resource shares for a definition (§3.2)

remote (against flowerd -http; all take -url):
  create      register a flow on the control plane
  list        list registered flows
  status      one flow's live run summary
  advance     move one flow's simulated time forward
  tune        adjust a layer controller at runtime
  delete      stop and remove a flow
  watch       stream live events (flows, experiments) to the terminal
  query       run one streaming pipeline query across every flow (-explain, -json)
  sched       execution-plane stats: shards, capacity, queues, tick latency
  top         live self-telemetry view: HTTP, scheduler, bus, store, lab

experiment farm (Scenario Lab; all take -url):
  experiments create     submit an experiment grid (-spec exp.json)
  experiments list       list experiments
  experiments get        one experiment's progress and trial grid
  experiments results    per-trial summaries and cross-trial aggregates
  experiments cancel     stop a running experiment
  experiments delete     cancel and remove an experiment

run 'flowctl <command> -h' for the command's flags`)
}

func cmdInit(args []string) {
	fs := flag.NewFlagSet("init", flag.ExitOnError)
	peak := fs.Float64("peak", 3000, "peak click rate (records/s)")
	out := fs.String("o", "flow.json", "output path ('-' for stdout)")
	fs.Parse(args)

	spec, err := flower.DefaultClickstream(*peak)
	if err != nil {
		log.Fatal(err)
	}
	data, err := spec.Encode()
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func load(args []string) flower.Spec {
	if len(args) != 1 {
		usage()
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		log.Fatal(err)
	}
	spec, err := flower.DecodeSpec(data)
	if err != nil {
		log.Fatal(err)
	}
	return spec
}

// cmdPlan runs the resource-share analyzer (§3.2) over a flow definition:
// given the budget and the spec's allocation ranges and prices, NSGA-II
// returns the Pareto-optimal (shards, VMs, WCU) plans. A -budget flag
// overrides the spec's budget_per_hour.
func cmdPlan(args []string) {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	budget := fs.Float64("budget", 0, "hourly budget (overrides the spec's budget_per_hour)")
	seed := fs.Int64("seed", 42, "NSGA-II seed")
	fs.Parse(args)

	spec := load(fs.Args())
	if *budget > 0 {
		spec.BudgetPerHour = *budget
	}
	mgr, err := flower.New(spec, sim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	plans, err := mgr.AnalyzeShares(nil, nsga2.Config{PopSize: 120, Generations: 250, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Pareto-optimal resource shares for %q at $%.3f/hour (%d plans):\n",
		spec.Name, spec.BudgetPerHour, len(plans))
	fmt.Printf("  %-10s %-10s %-10s %-10s\n", "shards(I)", "vms(A)", "wcu(S)", "$/hour")
	for _, plan := range plans {
		fmt.Printf("  %-10.0f %-10.0f %-10.0f %-10.4f\n",
			plan.Amounts[0], plan.Amounts[1], plan.Amounts[2], plan.HourlyCost)
	}
	fmt.Println("pick one manually or at random (§3.2); feed it back as the layers' max allocations")
}

func cmdValidate(args []string) {
	spec := load(args)
	fmt.Printf("%s: valid flow definition (%d layers)\n", args[0], len(spec.Layers))
}

func cmdShow(args []string) {
	spec := load(args)
	fmt.Printf("flow %q\n", spec.Name)
	fmt.Printf("  workload: %s base=%.0f peak=%.0f poisson=%v\n",
		spec.Workload.Pattern, spec.Workload.Base, spec.Workload.Peak, spec.Workload.Poisson)
	for _, l := range spec.Layers {
		fmt.Printf("  %-10s %-14s resource=%-7s alloc=[%g..%g] init=%g controller=%s",
			l.Kind, l.System, l.Resource, l.Min, l.Max, l.Initial, l.Controller.Type)
		if l.Controller.Type != flow.ControllerNone {
			fmt.Printf(" ref=%.0f%% window=%v", l.Controller.Ref, l.Controller.Window.D())
		}
		fmt.Println()
	}
	if spec.BudgetPerHour > 0 {
		fmt.Printf("  budget: $%.3f/hour\n", spec.BudgetPerHour)
	}
	fmt.Printf("  prices: shard $%.4g/h, VM $%.4g/h, WCU $%.4g/h, RCU $%.4g/h\n",
		spec.Prices.ShardHour, spec.Prices.VMHour, spec.Prices.WCUHour, spec.Prices.RCUHour)
}

// --- remote subcommands (client SDK) ---

// remoteFlags returns a flag set pre-populated with the flags every remote
// subcommand shares.
func remoteFlags(name string) (*flag.FlagSet, *string) {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	url := fs.String("url", "", "base URL of a running flowerd control plane (required)")
	return fs, url
}

func dial(url string) *client.Client {
	if url == "" {
		log.Fatal("-url is required for remote commands")
	}
	return client.New(url)
}

func cmdCreate(args []string) {
	fs, url := remoteFlags("create")
	id := fs.String("id", "", "flow id (default: the spec's name)")
	specPath := fs.String("spec", "", "JSON flow definition to register (default: built-in click-stream flow)")
	peak := fs.Float64("peak", 3000, "peak click rate for the built-in flow (records/s)")
	step := fs.Duration("step", 0, "simulation tick (0: server default)")
	seed := fs.Int64("seed", 0, "simulation seed")
	pace := fs.Float64("pace", 0, "start pacing at this many simulated seconds per wall second")
	fs.Parse(args)

	req := apiv1.CreateFlowRequest{ID: *id, Seed: *seed, Pace: *pace}
	if *specPath != "" {
		spec := load([]string{*specPath})
		req.Spec = &spec
	} else {
		req.Peak = *peak
	}
	if *step > 0 {
		req.Step = step.String()
	}
	f, err := dial(*url).CreateFlow(context.Background(), req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("created flow %q (name %q, paced=%v)\n", f.ID, f.Name, f.Paced)
}

func cmdList(args []string) {
	fs, url := remoteFlags("list")
	fs.Parse(args)
	flows, err := dial(*url).ListFlows(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-24s %-20s %8s %6s %s\n", "ID", "SIM TIME", "TICKS", "PACE", "ELAPSED")
	for _, f := range flows {
		pace := "-"
		if f.Paced {
			pace = fmt.Sprintf("%.0f", f.Pace)
		}
		fmt.Printf("%-24s %-20s %8d %6s %s\n",
			f.ID, f.SimTime.Format("2006-01-02 15:04:05"), f.Ticks, pace, f.Elapsed)
	}
}

// flowArg extracts the required -flow value.
func flowArg(fs *flag.FlagSet) *string {
	return fs.String("flow", "", "flow id (required)")
}

func needFlow(id string) string {
	if id == "" {
		log.Fatal("-flow is required")
	}
	return id
}

func cmdStatus(args []string) {
	fs, url := remoteFlags("status")
	id := flowArg(fs)
	fs.Parse(args)
	st, err := dial(*url).Status(context.Background(), needFlow(*id))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flow %q: sim time %s (elapsed %s, %d ticks)\n",
		st.Flow, st.SimTime.Format("2006-01-02 15:04:05"), st.Elapsed, st.Ticks)
	fmt.Printf("  offered %d records (rejected %d), violation rate %.2f%%\n",
		st.Offered, st.Rejected, 100*st.ViolationRate)
	fmt.Printf("  cost $%.4f (peak run rate $%.4f/h)\n", st.TotalCost, st.PeakRunRate)
	fmt.Printf("  allocation: %d shards, %d VMs, %.0f WCU, %.0f RCU\n",
		st.Allocation.Shards, st.Allocation.VMs, st.Allocation.WCU, st.Allocation.RCU)
}

func cmdAdvance(args []string) {
	fs, url := remoteFlags("advance")
	id := flowArg(fs)
	d := fs.Duration("d", 10*time.Minute, "simulated duration to advance")
	fs.Parse(args)
	res, err := dial(*url).Advance(context.Background(), needFlow(*id), *d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("advanced %s: %d ticks total, violation rate %.2f%%, cost $%.4f\n",
		res.Advanced, res.Ticks, 100*res.ViolationRate, res.TotalCost)
}

func cmdTune(args []string) {
	fs, url := remoteFlags("tune")
	id := flowArg(fs)
	layer := fs.String("layer", "", "layer kind: ingestion, analytics, storage, storage-reads (required)")
	ref := fs.Float64("ref", 0, "target utilisation percent (0: unchanged)")
	window := fs.Duration("window", 0, "monitoring window (0: unchanged)")
	deadBand := fs.Float64("dead-band", -1, "dead band percent (-1: unchanged)")
	fs.Parse(args)
	if *layer == "" {
		log.Fatal("-layer is required")
	}
	var req apiv1.TuneRequest
	if *ref > 0 {
		req.Ref = ref
	}
	if *window > 0 {
		w := window.String()
		req.Window = &w
	}
	if *deadBand >= 0 {
		req.DeadBand = deadBand
	}
	ctrl, err := dial(*url).TuneController(context.Background(), needFlow(*id), *layer, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s controller: type=%s ref=%.0f%% window=%s dead_band=%.1f (%d actions)\n",
		*layer, ctrl.Type, ctrl.Ref, ctrl.Window, ctrl.DeadBand, ctrl.Actions)
}

func cmdDelete(args []string) {
	fs, url := remoteFlags("delete")
	id := flowArg(fs)
	fs.Parse(args)
	if err := dial(*url).DeleteFlow(context.Background(), needFlow(*id)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deleted flow %q\n", *id)
}

// cmdWatch streams control-plane events to the terminal: one flow
// (-flow), one experiment (-experiment), or the multiplexed stream
// (-flows/-experiments lists, empty for everything). The SDK iterator
// reconnects with resume on its own, so the stream survives daemon
// restarts with at most a dropped-events marker.
func cmdWatch(args []string) {
	fs, url := remoteFlags("watch")
	flowID := fs.String("flow", "", "watch one flow")
	expID := fs.String("experiment", "", "watch one experiment")
	flows := fs.String("flows", "", "multiplexed stream: comma-separated flow ids ('*' for all)")
	exps := fs.String("experiments", "", "multiplexed stream: comma-separated experiment ids ('*' for all)")
	types := fs.String("types", "", "comma-separated event type filter (e.g. flow.advanced,flow.decision)")
	after := fs.String("after", "", "resume cursor ('0' replays the server's retained history)")
	asJSON := fs.Bool("json", false, "print raw event JSON, one object per line")
	fs.Parse(args)

	var typeList []string
	if *types != "" {
		typeList = strings.Split(*types, ",")
	}
	c := dial(*url)
	var w *client.Watch
	switch {
	case *flowID != "" && *expID != "":
		log.Fatal("-flow and -experiment are mutually exclusive; use -flows/-experiments for a mixed stream")
	case *flowID != "":
		w = c.WatchFlow(*flowID, client.WatchOptions{Types: typeList, After: *after})
	case *expID != "":
		w = c.WatchExperiment(*expID, client.WatchOptions{Types: typeList, After: *after})
	default:
		q := client.WatchQuery{Types: typeList, After: *after}
		switch {
		case *flows == "*":
			q.AllFlows = true
		case *flows != "":
			q.Flows = strings.Split(*flows, ",")
		}
		switch {
		case *exps == "*":
			q.AllExperiments = true
		case *exps != "":
			q.Experiments = strings.Split(*exps, ",")
		}
		w = c.Watch(q)
	}
	defer w.Close()

	ctx := context.Background()
	enc := json.NewEncoder(os.Stdout)
	for {
		ev, err := w.Next(ctx)
		if err != nil {
			log.Fatalf("watch: %v", err)
		}
		if *asJSON {
			if err := enc.Encode(ev); err != nil {
				log.Fatal(err)
			}
			continue
		}
		at := ""
		if !ev.At.IsZero() {
			at = ev.At.Format("15:04:05") + " "
		}
		fmt.Printf("%s%-26s %-16s %s\n", at, ev.Type, ev.Topic, ev.Data)
	}
}

// cmdSched prints the execution plane's live stats: the scheduler's
// shape, the per-shard queues and timers, and the run-latency summary.
func cmdSched(args []string) {
	fs, url := remoteFlags("sched")
	asJSON := fs.Bool("json", false, "print the raw JSON stats")
	fs.Parse(args)
	st, err := dial(*url).SchedulerStats(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(st); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("execution plane: %d shards x %d workers (capacity %d), wheel tick %s\n",
		st.Shards, st.WorkersPerShard, st.Capacity, st.WheelTick)
	fmt.Printf("  fairness: %d flow jobs per batch job; catch-up cap %d intervals\n",
		st.FlowWeight, st.MaxCatchUp)
	fmt.Printf("  process goroutines: %d (O(shards), not O(flows))\n", st.Goroutines)
	fmt.Printf("  totals: %d timers armed, queue depth %d, executed %d flow / %d batch, %d late runs, %d skipped ticks\n",
		st.Timers, st.QueueDepth, st.ExecutedFlow, st.ExecutedBatch, st.LateRuns, st.SkippedTicks)
	fmt.Printf("  batching: %d batches, %d jobs, mean %.1f jobs/batch (max %d); %d batches stolen by idle workers\n",
		st.Batches, st.BatchJobs, st.MeanBatch, st.MaxBatch, st.Steals)
	fmt.Printf("  %-6s %7s %6s %6s %10s %10s %6s %8s %7s %7s %8s %9s %10s %10s\n",
		"SHARD", "TIMERS", "FLOWQ", "BATCHQ", "EXEC.FLOW", "EXEC.BATCH", "LATE", "SKIPPED", "STEALS", "STOLEN", "BATCHES", "MAXBATCH", "MEAN(us)", "MAX(us)")
	for _, row := range st.PerShard {
		fmt.Printf("  %-6d %7d %6d %6d %10d %10d %6d %8d %7d %7d %8d %9d %10.1f %10.1f\n",
			row.Shard, row.Timers, row.FlowQueue, row.BatchQueue,
			row.ExecutedFlow, row.ExecutedBatch, row.LateRuns, row.SkippedTicks,
			row.Steals, row.Stolen, row.Batches, row.MaxBatch,
			row.Latency.MeanUS, row.Latency.MaxUS)
	}
}

// --- experiment farm (Scenario Lab) ---

func cmdExperiments(args []string) {
	if len(args) < 1 {
		fmt.Fprintln(os.Stderr, "flowctl: experiments needs an action: create | list | get | results | cancel | delete")
		os.Exit(2)
	}
	switch args[0] {
	case "create":
		cmdExperimentsCreate(args[1:])
	case "list":
		cmdExperimentsList(args[1:])
	case "get":
		cmdExperimentsGet(args[1:])
	case "results":
		cmdExperimentsResults(args[1:])
	case "cancel":
		cmdExperimentsCancel(args[1:])
	case "delete":
		cmdExperimentsDelete(args[1:])
	default:
		fmt.Fprintf(os.Stderr, "flowctl: unknown experiments action %q (want create | list | get | results | cancel | delete)\n", args[0])
		os.Exit(2)
	}
}

// experimentID extracts the required -id value.
func experimentID(fs *flag.FlagSet) *string {
	return fs.String("id", "", "experiment id (required)")
}

func needExperiment(id string) string {
	if id == "" {
		log.Fatal("-id is required")
	}
	return id
}

func cmdExperimentsCreate(args []string) {
	fs, url := remoteFlags("experiments create")
	id := fs.String("id", "", "experiment id (default: the spec's name)")
	specPath := fs.String("spec", "", "JSON experiment definition (lab.Spec) to submit (required)")
	wait := fs.Bool("wait", false, "poll until the experiment settles, then print its results")
	poll := fs.Duration("poll", 500*time.Millisecond, "poll interval with -wait")
	fs.Parse(args)
	if *specPath == "" {
		log.Fatal("-spec is required (a JSON lab.Spec experiment definition)")
	}
	data, err := os.ReadFile(*specPath)
	if err != nil {
		log.Fatal(err)
	}
	var spec lab.Spec
	if err := json.Unmarshal(data, &spec); err != nil {
		log.Fatalf("experiment definition %s: %v", *specPath, err)
	}
	if err := spec.Validate(); err != nil {
		log.Fatalf("experiment definition %s: %v", *specPath, err)
	}

	c := dial(*url)
	ctx := context.Background()
	sum, err := c.CreateExperiment(ctx, apiv1.CreateExperimentRequest{ID: *id, Spec: spec})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted experiment %q (%d trials)\n", sum.ID, sum.Trials)
	if !*wait {
		fmt.Printf("follow it with: flowctl experiments get -url %s -id %s\n", *url, sum.ID)
		return
	}
	final, err := c.WaitExperiment(ctx, sum.ID, *poll)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("experiment %q %s (%d/%d trials done, max %d concurrent)\n",
		final.ID, final.Status, final.Progress.Done, final.Progress.Total, final.Progress.MaxConcurrent)
	res, err := c.ExperimentResults(ctx, sum.ID)
	if err != nil {
		log.Fatal(err)
	}
	printExperimentResults(res)
}

func cmdExperimentsList(args []string) {
	fs, url := remoteFlags("experiments list")
	fs.Parse(args)
	exps, err := dial(*url).ListExperiments(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-20s %-10s %7s %6s %6s %6s %6s\n", "ID", "STATUS", "TRIALS", "DONE", "RUN", "FAIL", "CANCEL")
	for _, x := range exps {
		fmt.Printf("%-20s %-10s %7d %6d %6d %6d %6d\n",
			x.ID, x.Status, x.Trials, x.Progress.Done, x.Progress.Running,
			x.Progress.Failed, x.Progress.Cancelled)
	}
}

func cmdExperimentsGet(args []string) {
	fs, url := remoteFlags("experiments get")
	id := experimentID(fs)
	fs.Parse(args)
	x, err := dial(*url).GetExperiment(context.Background(), needExperiment(*id))
	if err != nil {
		log.Fatal(err)
	}
	p := x.Progress
	fmt.Printf("experiment %q: %s (%d trials: %d done, %d running, %d pending, %d failed, %d cancelled; max %d concurrent)\n",
		x.ID, x.Status, p.Total, p.Done, p.Running, p.Pending, p.Failed, p.Cancelled, p.MaxConcurrent)
	fmt.Printf("  duration %s per trial, step %s, %d seed(s)\n",
		x.Spec.Duration.D(), x.Spec.Step.D(), len(x.Spec.Seeds))
	for _, tr := range x.Grid {
		fmt.Printf("  trial %-3d %s (sim seed %d)\n", tr.Index, tr.Name, tr.SimSeed)
	}
}

func cmdExperimentsResults(args []string) {
	fs, url := remoteFlags("experiments results")
	id := experimentID(fs)
	asJSON := fs.Bool("json", false, "print the raw JSON results instead of tables")
	fs.Parse(args)
	res, err := dial(*url).ExperimentResults(context.Background(), needExperiment(*id))
	if err != nil {
		log.Fatal(err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("experiment %q: %s (%d/%d trials done)\n",
		res.ID, res.Status, res.Progress.Done, res.Progress.Total)
	printExperimentResults(res)
}

// printExperimentResults renders the per-trial table and the aggregates.
func printExperimentResults(res apiv1.ExperimentResults) {
	fmt.Printf("  %-32s %-10s %10s %10s %8s %10s\n", "trial", "status", "cost ($)", "viol.rate", "actions", "|err| mean")
	for _, tr := range res.Results.Trials {
		actions := 0
		for _, n := range tr.Actions {
			actions += n
		}
		fmt.Printf("  %-32s %-10s %10.4f %10.3f %8d %10.2f\n",
			tr.Name, tr.Status, tr.TotalCost, tr.ViolationRate, actions, tr.MeanAbsError)
	}
	agg := res.Results.Aggregates
	if agg.Completed == 0 {
		return
	}
	fmt.Printf("aggregates over %d completed trials:\n", agg.Completed)
	fmt.Printf("  mean cost $%.4f, mean violation rate %.3f\n", agg.MeanCost, agg.MeanViolationRate)
	if agg.BestCost != nil && agg.WorstCost != nil {
		fmt.Printf("  cost:       best %s ($%.4f), worst %s ($%.4f)\n",
			agg.BestCost.Name, agg.BestCost.Value, agg.WorstCost.Name, agg.WorstCost.Value)
	}
	if agg.BestViolation != nil && agg.WorstViolation != nil {
		fmt.Printf("  violations: best %s (%.3f), worst %s (%.3f)\n",
			agg.BestViolation.Name, agg.BestViolation.Value, agg.WorstViolation.Name, agg.WorstViolation.Value)
	}
	if len(agg.Pareto) > 0 {
		fmt.Printf("  Pareto front over (cost, violation rate):\n")
		for _, p := range agg.Pareto {
			fmt.Printf("    %-32s $%.4f  %.3f\n", p.Name, p.TotalCost, p.ViolationRate)
		}
	}
	if len(agg.Deltas) > 0 {
		fmt.Printf("  deltas vs baseline %q:\n", agg.Baseline)
		for _, d := range agg.Deltas {
			fmt.Printf("    %-32s cost %+.1f%%  viol %+.3f\n", d.Name, d.CostPct, d.ViolationDelta)
		}
	}
}

func cmdExperimentsCancel(args []string) {
	fs, url := remoteFlags("experiments cancel")
	id := experimentID(fs)
	fs.Parse(args)
	sum, err := dial(*url).CancelExperiment(context.Background(), needExperiment(*id))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cancelled experiment %q (%d trials done before the cancel)\n", sum.ID, sum.Progress.Done)
}

func cmdExperimentsDelete(args []string) {
	fs, url := remoteFlags("experiments delete")
	id := experimentID(fs)
	fs.Parse(args)
	if err := dial(*url).DeleteExperiment(context.Background(), needExperiment(*id)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deleted experiment %q\n", *id)
}
