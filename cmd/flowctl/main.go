// Command flowctl creates, validates and inspects flow definitions — the
// command-line Flow Builder and Configuration Wizard (§4 steps 1–2).
//
// Usage:
//
//	flowctl init [-peak 3000] [-o flow.json]   write the default click-stream flow
//	flowctl validate flow.json                 check a definition
//	flowctl show flow.json                     summarise a definition
//	flowctl plan [-budget 0.29] flow.json      Pareto-optimal resource shares (§3.2)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/flow"
	"repro/internal/nsga2"
	"repro/internal/sim"

	flower "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("flowctl: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "init":
		cmdInit(os.Args[2:])
	case "validate":
		cmdValidate(os.Args[2:])
	case "show":
		cmdShow(os.Args[2:])
	case "plan":
		cmdPlan(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: flowctl <init|validate|show|plan> [args]")
	os.Exit(2)
}

func cmdInit(args []string) {
	fs := flag.NewFlagSet("init", flag.ExitOnError)
	peak := fs.Float64("peak", 3000, "peak click rate (records/s)")
	out := fs.String("o", "flow.json", "output path ('-' for stdout)")
	fs.Parse(args)

	spec, err := flower.DefaultClickstream(*peak)
	if err != nil {
		log.Fatal(err)
	}
	data, err := spec.Encode()
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func load(args []string) flower.Spec {
	if len(args) != 1 {
		usage()
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		log.Fatal(err)
	}
	spec, err := flower.DecodeSpec(data)
	if err != nil {
		log.Fatal(err)
	}
	return spec
}

// cmdPlan runs the resource-share analyzer (§3.2) over a flow definition:
// given the budget and the spec's allocation ranges and prices, NSGA-II
// returns the Pareto-optimal (shards, VMs, WCU) plans. A -budget flag
// overrides the spec's budget_per_hour.
func cmdPlan(args []string) {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	budget := fs.Float64("budget", 0, "hourly budget (overrides the spec's budget_per_hour)")
	seed := fs.Int64("seed", 42, "NSGA-II seed")
	fs.Parse(args)

	spec := load(fs.Args())
	if *budget > 0 {
		spec.BudgetPerHour = *budget
	}
	mgr, err := flower.New(spec, sim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	plans, err := mgr.AnalyzeShares(nil, nsga2.Config{PopSize: 120, Generations: 250, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Pareto-optimal resource shares for %q at $%.3f/hour (%d plans):\n",
		spec.Name, spec.BudgetPerHour, len(plans))
	fmt.Printf("  %-10s %-10s %-10s %-10s\n", "shards(I)", "vms(A)", "wcu(S)", "$/hour")
	for _, plan := range plans {
		fmt.Printf("  %-10.0f %-10.0f %-10.0f %-10.4f\n",
			plan.Amounts[0], plan.Amounts[1], plan.Amounts[2], plan.HourlyCost)
	}
	fmt.Println("pick one manually or at random (§3.2); feed it back as the layers' max allocations")
}

func cmdValidate(args []string) {
	spec := load(args)
	fmt.Printf("%s: valid flow definition (%d layers)\n", args[0], len(spec.Layers))
}

func cmdShow(args []string) {
	spec := load(args)
	fmt.Printf("flow %q\n", spec.Name)
	fmt.Printf("  workload: %s base=%.0f peak=%.0f poisson=%v\n",
		spec.Workload.Pattern, spec.Workload.Base, spec.Workload.Peak, spec.Workload.Poisson)
	for _, l := range spec.Layers {
		fmt.Printf("  %-10s %-14s resource=%-7s alloc=[%g..%g] init=%g controller=%s",
			l.Kind, l.System, l.Resource, l.Min, l.Max, l.Initial, l.Controller.Type)
		if l.Controller.Type != flow.ControllerNone {
			fmt.Printf(" ref=%.0f%% window=%v", l.Controller.Ref, l.Controller.Window.D())
		}
		fmt.Println()
	}
	if spec.BudgetPerHour > 0 {
		fmt.Printf("  budget: $%.3f/hour\n", spec.BudgetPerHour)
	}
	fmt.Printf("  prices: shard $%.4g/h, VM $%.4g/h, WCU $%.4g/h, RCU $%.4g/h\n",
		spec.Prices.ShardHour, spec.Prices.VMHour, spec.Prices.WCUHour, spec.Prices.RCUHour)
}
