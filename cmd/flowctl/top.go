package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"time"

	apiv1 "repro/api/v1"
)

// cmdTop renders a live terminal view of the control plane's self-telemetry
// (GET /v1/telemetry): per-route HTTP traffic with request rates, the
// execution plane's tick counters, event-bus throughput and loss, metric
// store occupancy, registry and lab activity, and process vitals. The
// screen refreshes every -interval; -once prints a single frame and exits
// (usable in scripts and pipes).
func cmdTop(args []string) {
	fs, url := remoteFlags("top")
	interval := fs.Duration("interval", 2*time.Second, "refresh interval")
	once := fs.Bool("once", false, "print one frame and exit instead of refreshing")
	fs.Parse(args)
	if *interval <= 0 {
		log.Fatal("-interval must be positive")
	}

	c := dial(*url)
	ctx := context.Background()
	var prev *apiv1.Telemetry
	for {
		cur, err := c.Telemetry(ctx)
		if err != nil {
			log.Fatalf("telemetry: %v", err)
		}
		if !*once {
			fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		}
		renderTop(os.Stdout, cur, prev)
		if *once {
			return
		}
		prev = &cur
		time.Sleep(*interval)
	}
}

// topView indexes a telemetry snapshot for rendering.
type topView struct {
	fams map[string]*apiv1.MetricFamily
}

func newTopView(t apiv1.Telemetry) topView {
	v := topView{fams: make(map[string]*apiv1.MetricFamily, len(t.Families))}
	for i := range t.Families {
		v.fams[t.Families[i].Name] = &t.Families[i]
	}
	return v
}

// total sums every series of a family (0 when absent).
func (v topView) total(name string) float64 {
	f, ok := v.fams[name]
	if !ok {
		return 0
	}
	var sum float64
	for _, m := range f.Metrics {
		sum += m.Value
	}
	return sum
}

// labeled returns a family's series keyed by one chosen label value.
func (v topView) labeled(name string, label int) map[string]float64 {
	out := map[string]float64{}
	f, ok := v.fams[name]
	if !ok {
		return out
	}
	for _, m := range f.Metrics {
		if label < len(m.LabelValues) {
			out[m.LabelValues[label]] += m.Value
		}
	}
	return out
}

// histMean returns a histogram family's overall mean in microseconds.
func (v topView) histMean(name string) (mean float64, count uint64) {
	f, ok := v.fams[name]
	if !ok {
		return 0, 0
	}
	var weighted float64
	for _, m := range f.Metrics {
		if m.Histogram == nil {
			continue
		}
		weighted += m.Histogram.MeanUS * float64(m.Histogram.Count)
		count += m.Histogram.Count
	}
	if count > 0 {
		mean = weighted / float64(count)
	}
	return mean, count
}

// renderTop writes one frame. prev (the previous frame's snapshot) enables
// per-interval rates; nil renders totals only.
func renderTop(w io.Writer, t apiv1.Telemetry, prev *apiv1.Telemetry) {
	cur := newTopView(t)
	var old topView
	elapsed := 0.0
	if prev != nil {
		old = newTopView(*prev)
		elapsed = t.At.Sub(prev.At).Seconds()
	}
	// rate renders a counter's per-second rate over the refresh interval,
	// or "-" on the first frame.
	rate := func(name string) string {
		if prev == nil || elapsed <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f/s", (cur.total(name)-old.total(name))/elapsed)
	}

	fmt.Fprintf(w, "flower top — %s\n\n", t.At.Format("15:04:05"))

	upt := cur.total("flower_process_uptime_seconds")
	fmt.Fprintf(w, "process    goroutines %-6.0f uptime %s\n",
		cur.total("flower_process_goroutines"), (time.Duration(upt) * time.Second).String())

	fmt.Fprintf(w, "registry   flows %-5.0f pacing %-5.0f advances %-10.0f (%s)\n",
		cur.total("flower_registry_flows"), cur.total("flower_registry_flows_pacing"),
		cur.total("flower_registry_advances_total"), rate("flower_registry_advances_total"))

	schedMean, _ := cur.histMean("flower_sched_run_seconds")
	fmt.Fprintf(w, "scheduler  executed %-10.0f (%s) late %-6.0f skipped %-6.0f timers %-6.0f queue %-5.0f mean %.0fus\n",
		cur.total("flower_sched_executed_total"), rate("flower_sched_executed_total"),
		cur.total("flower_sched_late_runs_total"), cur.total("flower_sched_skipped_ticks_total"),
		cur.total("flower_sched_timers"), cur.total("flower_sched_queue_depth"), schedMean)

	fmt.Fprintf(w, "eventbus   published %-10.0f (%s) dropped %-8.0f subscribers %-4.0f ring %-6.0f\n",
		cur.total("flower_eventbus_publishes_total"), rate("flower_eventbus_publishes_total"),
		cur.total("flower_eventbus_dropped_total"), cur.total("flower_eventbus_subscribers"),
		cur.total("flower_eventbus_ring_entries"))

	fmt.Fprintf(w, "store      appends %-12.0f (%s) entries %-8.0f retention-dropped %-10.0f\n",
		cur.total("flower_store_appends_total"), rate("flower_store_appends_total"),
		cur.total("flower_store_entries"), cur.total("flower_store_retention_dropped_total"))

	fmt.Fprintf(w, "lab        experiments %-5.0f trials running %-5.0f settled %-8.0f\n",
		cur.total("flower_lab_experiments_total"), cur.total("flower_lab_trials_running"),
		cur.total("flower_lab_trials_total"))

	gin, gout := cur.total("flower_http_gzip_uncompressed_bytes_total"), cur.total("flower_http_gzip_compressed_bytes_total")
	saved := "-"
	if gin > 0 {
		saved = fmt.Sprintf("%.0f%%", 100*(1-gout/gin))
	}
	httpMean, _ := cur.histMean("flower_http_request_seconds")
	fmt.Fprintf(w, "http       requests %-10.0f (%s) in-flight %-4.0f mean %.0fus gzip-saved %s\n\n",
		cur.total("flower_http_requests_total"), rate("flower_http_requests_total"),
		cur.total("flower_http_in_flight"), httpMean, saved)

	// Per-route table, busiest first.
	routes := cur.labeled("flower_http_requests_total", 0)
	bytes := cur.labeled("flower_http_response_bytes_total", 0)
	names := make([]string, 0, len(routes))
	for r := range routes {
		names = append(names, r)
	}
	sort.Slice(names, func(i, j int) bool {
		if routes[names[i]] != routes[names[j]] {
			return routes[names[i]] > routes[names[j]]
		}
		return names[i] < names[j]
	})
	if len(names) > 0 {
		fmt.Fprintf(w, "%-44s %10s %12s\n", "ROUTE", "REQUESTS", "BYTES")
		for _, r := range names {
			fmt.Fprintf(w, "%-44s %10.0f %12.0f\n", truncRoute(r), routes[r], bytes[r])
		}
	}
}

// truncRoute bounds a route label to the table column.
func truncRoute(r string) string {
	const max = 44
	if len(r) <= max {
		return r
	}
	return r[:max-1] + "…"
}
