package main

import (
	"strings"
	"testing"
	"time"

	apiv1 "repro/api/v1"
)

func topSnapshot(at time.Time, requests float64) apiv1.Telemetry {
	return apiv1.Telemetry{
		At: at,
		Families: []apiv1.MetricFamily{
			{
				Name: "flower_http_requests_total", Kind: "counter",
				Labels: []string{"route", "method", "code"},
				Metrics: []apiv1.Metric{
					{LabelValues: []string{"/v1/flows", "GET", "200"}, Value: requests},
					{LabelValues: []string{"/v1/telemetry", "GET", "200"}, Value: 2},
				},
			},
			{
				Name: "flower_http_request_seconds", Kind: "histogram",
				Labels: []string{"route"},
				Metrics: []apiv1.Metric{{
					LabelValues: []string{"/v1/flows"},
					Histogram:   &apiv1.LatencyHistogram{Count: 10, MeanUS: 250},
				}},
			},
			{Name: "flower_registry_flows", Kind: "gauge", Metrics: []apiv1.Metric{{Value: 3}}},
			{Name: "flower_process_goroutines", Kind: "gauge", Metrics: []apiv1.Metric{{Value: 12}}},
			{Name: "flower_sched_executed_total", Kind: "counter",
				Labels:  []string{"class"},
				Metrics: []apiv1.Metric{{LabelValues: []string{"flow"}, Value: 100}}},
		},
	}
}

func TestRenderTop(t *testing.T) {
	at := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	first := topSnapshot(at, 40)
	var out strings.Builder
	renderTop(&out, first, nil)
	got := out.String()
	for _, want := range []string{"flower top", "goroutines", "/v1/flows", "ROUTE"} {
		if !strings.Contains(got, want) {
			t.Errorf("first frame missing %q in:\n%s", want, got)
		}
	}
	// First frame has no rates.
	if !strings.Contains(got, "(-)") {
		t.Errorf("first frame should render '-' rates:\n%s", got)
	}

	// Second frame: 60 more requests over 2s → 30.0/s.
	second := topSnapshot(at.Add(2*time.Second), 100)
	out.Reset()
	renderTop(&out, second, &first)
	if !strings.Contains(out.String(), "30.0/s") {
		t.Errorf("rate not computed:\n%s", out.String())
	}
}

func TestTruncRoute(t *testing.T) {
	long := strings.Repeat("x", 60)
	if got := truncRoute(long); len([]rune(got)) != 44 {
		t.Errorf("truncRoute length %d", len([]rune(got)))
	}
	if got := truncRoute("/v1/flows"); got != "/v1/flows" {
		t.Errorf("short route altered: %q", got)
	}
}
