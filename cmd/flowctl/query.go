package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	apiv1 "repro/api/v1"
)

// flowctl query: one streaming pipeline query against the control plane's
// query engine (POST /v1/query). The default rendering is a per-series
// table; -json prints the raw response and -explain prints the plan
// instead of executing it.

func cmdQuery(args []string) {
	fs, url := remoteFlags("query")
	explain := fs.Bool("explain", false, "print the query plan instead of executing it")
	asJSON := fs.Bool("json", false, "print the raw JSON response")
	tail := fs.Int("tail", 10, "points shown per series in table mode (0: all)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		log.Fatal(`query: exactly one pipeline argument is required, e.g. 'select flow=web ns=Ingestion/Stream name=IncomingRecords | resample 1m avg'`)
	}
	q := fs.Arg(0)
	c := dial(*url)

	if *explain {
		ex, err := c.QueryExplain(context.Background(), q)
		if err != nil {
			log.Fatal(err)
		}
		if *asJSON {
			writeIndented(os.Stdout, ex)
			return
		}
		fmt.Print(ex.Text)
		return
	}

	resp, err := c.Query(context.Background(), q)
	if err != nil {
		log.Fatal(err)
	}
	if *asJSON {
		writeIndented(os.Stdout, resp)
		return
	}
	renderQueryTable(os.Stdout, resp, *tail)
}

func writeIndented(w io.Writer, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Fatal(err)
	}
}

// renderQueryTable prints one block per result series: an identity
// header, then the trailing `tail` points as aligned timestamp/value
// rows (joins with no expression carry a second value column).
func renderQueryTable(w io.Writer, resp apiv1.QueryResponse, tail int) {
	for i, ser := range resp.Results {
		if i > 0 {
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "%s  %s/%s%s%s  (%d points)\n",
			ser.Flow, ser.Namespace, ser.Name, formatDims(ser.Dims), formatJoin(ser.Right), len(ser.Ts))
		start := 0
		if tail > 0 && len(ser.Ts) > tail {
			start = len(ser.Ts) - tail
			fmt.Fprintf(w, "  ... %d earlier points elided (-tail 0 shows all)\n", start)
		}
		for j := start; j < len(ser.Ts); j++ {
			t := time.Unix(0, ser.Ts[j]).UTC().Format(time.RFC3339)
			if ser.Vs2 != nil {
				fmt.Fprintf(w, "  %s  %14.4f  %14.4f\n", t, ser.Vs[j], ser.Vs2[j])
				continue
			}
			fmt.Fprintf(w, "  %s  %14.4f\n", t, ser.Vs[j])
		}
	}
	fmt.Fprintf(w, "%d series, %d rows (plan %s, exec %s)\n",
		resp.Stats.Series, resp.Stats.Rows,
		time.Duration(resp.Stats.PlanNanos), time.Duration(resp.Stats.ExecNanos))
}

func formatDims(dims map[string]string) string {
	if len(dims) == 0 {
		return ""
	}
	keys := make([]string, 0, len(dims))
	for k := range dims {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + dims[k]
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func formatJoin(right string) string {
	if right == "" {
		return ""
	}
	return "  joined " + right
}
