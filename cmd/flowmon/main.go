// Command flowmon runs a managed flow and renders Flower's
// all-in-one-place monitoring view (§3.4): one consolidated dashboard over
// every platform of the flow, optionally exporting the full history as
// CSV for offline plotting.
//
// Usage:
//
//	flowmon [-spec flow.json] [-for 1h] [-window 30m] [-csv out.csv]
//	flowmon -replay metrics.jsonl [-window 30m]   render from a recorded journal
//	flowmon -url http://host:8080 -flow web       render a live remote flow
//	flowmon -url http://host:8080 -flow web -follow   re-render on every advance
//
// With -replay, flowmon renders the dashboard from a metric journal
// recorded by `flowerd -journal` (internal/persist) instead of running a
// simulation — monitoring a run after the fact, CloudWatch-style.
//
// With -url, flowmon fetches the named flow's consolidated snapshot from a
// running flowerd control plane through the repro/client SDK and renders
// it, so any flow of a multi-flow daemon can be watched from another
// machine. Adding -follow subscribes to the flow's watch stream instead of
// polling: the dashboard re-renders whenever the flow actually advances (a
// pacer tick, a manual advance), throttled to at most one render per
// -refresh interval, and survives daemon restarts through the SDK's
// auto-reconnect.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	apiv1 "repro/api/v1"
	"repro/client"
	"repro/internal/metricstore"
	"repro/internal/monitor"
	"repro/internal/persist"
	"repro/internal/sim"
	"repro/internal/timeseries"

	flower "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("flowmon: ")

	specPath := flag.String("spec", "", "path to a JSON flow definition (default: built-in click-stream flow)")
	duration := flag.Duration("for", time.Hour, "simulated duration to run before snapshotting")
	window := flag.Duration("window", 30*time.Minute, "dashboard window")
	seed := flag.Int64("seed", 1, "simulation seed")
	csvPath := flag.String("csv", "", "export the metric history to this CSV file")
	replayPath := flag.String("replay", "", "render from this metric journal instead of running a simulation")
	baseURL := flag.String("url", "", "render a flow served by this flowerd control plane instead of running a simulation")
	flowID := flag.String("flow", "", "with -url: the remote flow id")
	follow := flag.Bool("follow", false, "with -url: stream the flow's watch events and re-render on every advance")
	refresh := flag.Duration("refresh", time.Second, "with -follow: minimum interval between renders")
	flag.Parse()

	if *baseURL != "" {
		if *flowID == "" {
			log.Fatal("-flow is required with -url")
		}
		c := client.New(*baseURL)
		ctx := context.Background()
		render := func() error {
			snap, err := c.Snapshot(ctx, *flowID, *window)
			if err != nil {
				return fmt.Errorf("snapshot: %w", err)
			}
			if *follow {
				fmt.Print("\033[H\033[2J") // clear for the live view
			}
			fmt.Printf("flow %q on %s\n\n", *flowID, *baseURL)
			if err := monitor.Render(os.Stdout, snap); err != nil {
				return fmt.Errorf("dashboard: %w", err)
			}
			return nil
		}
		if err := render(); err != nil && !*follow {
			log.Fatal(err)
		} else if err != nil {
			log.Printf("%v (retrying on next event)", err)
		}
		if !*follow {
			return
		}
		// Follow mode: one watch stream instead of snapshot polling. Each
		// flow.advanced event invalidates the view; renders are throttled
		// so a fast pacer does not melt the terminal.
		w := c.WatchFlow(*flowID, client.WatchOptions{
			Types: []string{apiv1.EventFlowAdvanced, apiv1.EventFlowDeleted},
		})
		defer w.Close()
		last := time.Now()
		for {
			ev, err := w.Next(ctx)
			if err != nil {
				log.Fatalf("watch: %v", err)
			}
			if ev.Type == apiv1.EventFlowDeleted {
				fmt.Printf("\nflow %q was deleted; exiting\n", *flowID)
				return
			}
			// Throttle by waiting out the remainder of the interval rather
			// than dropping the event: the render after a burst's LAST
			// advance must happen, or the terminal would stay stale until
			// some future event arrived.
			if since := time.Since(last); since < *refresh {
				time.Sleep(*refresh - since)
			}
			last = time.Now()
			// A transient snapshot failure (daemon restarting mid-stream)
			// must not kill the live view: the watch iterator is already
			// reconnecting, so just try again on the next event.
			if err := render(); err != nil {
				log.Printf("%v (retrying on next event)", err)
			}
		}
	}

	if *replayPath != "" {
		store := metricstore.NewStore()
		n, err := persist.ReplayFile(*replayPath, store)
		switch {
		case err == nil:
		case errors.Is(err, persist.ErrTornTail):
			// A crash mid-append leaves a truncated final line; every
			// complete record before it replayed fine.
			log.Printf("replay: %v (replayed the %d complete records)", err, n)
		default:
			log.Fatalf("replay: %v", err)
		}
		// Anchor the dashboard at the journal's last observation.
		var last time.Time
		store.Each(func(id metricstore.MetricID, v timeseries.View) {
			if p, ok := v.Last(); ok && p.T.After(last) {
				last = p.T
			}
		})
		fmt.Printf("replayed %d datapoints from %s\n\n", n, *replayPath)
		snap := monitor.Collect(store, last, *window)
		if err := monitor.Render(os.Stdout, snap); err != nil {
			log.Fatalf("dashboard: %v", err)
		}
		return
	}

	var spec flower.Spec
	var err error
	if *specPath != "" {
		data, readErr := os.ReadFile(*specPath)
		if readErr != nil {
			log.Fatalf("read spec: %v", readErr)
		}
		spec, err = flower.DecodeSpec(data)
	} else {
		spec, err = flower.DefaultClickstream(3000)
	}
	if err != nil {
		log.Fatalf("flow definition: %v", err)
	}

	mgr, err := flower.New(spec, sim.Options{Seed: *seed})
	if err != nil {
		log.Fatalf("manager: %v", err)
	}
	if _, err := mgr.Run(*duration); err != nil {
		log.Fatalf("run: %v", err)
	}
	if err := mgr.RenderDashboard(os.Stdout, *window); err != nil {
		log.Fatalf("dashboard: %v", err)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := mgr.WriteCSV(f, time.Minute); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("metric history written to %s\n", *csvPath)
	}
}
