// Command flowervet runs the repo's static-analysis suite: the machine
// checks for the control plane's concurrency and hot-path contracts
// (lock ordering, per-tick handle discipline, virtual-time purity,
// resource stop/close reachability, wire-struct JSON hygiene).
//
// Usage:
//
//	flowervet [-list] [packages]
//
// Packages default to ./... resolved from the current directory.
// Findings print one per line as "file:line: analyzer: message"; the
// exit status is 1 when there are findings, 2 when the suite itself
// could not run.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "print registered analyzers with their one-line docs and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: flowervet [-list] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Machine-checks the control plane's concurrency and hot-path contracts.\nPackages default to ./... from the current directory.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name(), a.Doc())
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "flowervet:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flowervet:", err)
		os.Exit(2)
	}
	findings := analysis.Run(pkgs, analyzers)
	for _, f := range findings {
		fmt.Println(f.String())
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
