package flower_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"

	flower "repro"
)

// These tests exercise the public facade exactly the way README's
// quickstart does.

func TestQuickstartPath(t *testing.T) {
	spec, err := flower.DefaultClickstream(2000)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := flower.New(spec, flower.Options{Step: 10 * time.Second, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := mgr.Run(30 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered == 0 || res.TotalCost <= 0 {
		t.Fatalf("run produced no work or no cost: %+v", res)
	}
	var buf bytes.Buffer
	if err := mgr.RenderDashboard(&buf, 15*time.Minute); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "all-in-one-place") {
		t.Fatal("dashboard missing")
	}
}

func TestBuilderPath(t *testing.T) {
	spec, err := flower.NewBuilder("custom").
		WithWorkload(flower.WorkloadSpec{Pattern: "constant", Base: 500}).
		WithIngestion(1, 1, 10, flower.DefaultAdaptive(60, time.Minute, 2)).
		WithAnalytics(1, 1, 10, flower.DefaultAdaptive(60, time.Minute, 2)).
		WithStorage(100, 50, 5000, flower.DefaultAdaptive(60, time.Minute, 100)).
		WithBudget(0.5).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "custom" {
		t.Fatal("builder lost the name")
	}
	// JSON round trip through the public API.
	data, err := spec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := flower.DecodeSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != spec.Name {
		t.Fatal("decode lost the name")
	}
}

func TestAnalysisPath(t *testing.T) {
	spec, err := flower.DefaultClickstream(2000)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := flower.New(spec, sim.Options{Step: 10 * time.Second, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Run(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	refs := mgr.StandardRefs()
	dep, err := mgr.AnalyzeDependency(refs[0], refs[1])
	if err != nil {
		t.Fatal(err)
	}
	if dep.Model.N == 0 {
		t.Fatal("dependency fitted on no samples")
	}
	plans, err := mgr.AnalyzeShares(nil, flower.NSGA2Config{PopSize: 40, Generations: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) == 0 {
		t.Fatal("no provisioning plans")
	}
}

func TestPredictiveOptionThroughFacade(t *testing.T) {
	spec, err := flower.DefaultClickstream(2000)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := flower.New(spec, flower.Options{
		Step: 10 * time.Second, Seed: 3,
		Predictive: sim.PredictiveOptions{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	// Diurnal rise from the floor: the trend forecaster should have fired
	// at least once within the hour.
	if mgr.Harness().PreScaleActions() == 0 {
		t.Log("no pre-scale actions within an hour (acceptable on flat early diurnal)")
	}
}
