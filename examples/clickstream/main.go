// Clickstream: the full demo walk-through of §4 — build a custom flow with
// the Flow Builder, configure each layer's controller with the wizard
// defaults, drive it with a diurnal click-stream that suffers a lunchtime
// flash crowd, and watch the three controllers resize their layers.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/flow"
	"repro/internal/sim"
	"repro/internal/timeseries"

	flower "repro"
)

func main() {
	log.SetFlags(0)

	// Step 1 — Flow Builder: assemble the three platforms.
	window := 2 * time.Minute
	spec, err := flower.NewBuilder("webshop-clicks").
		WithWorkload(flower.WorkloadSpec{
			Pattern: "spike", // diurnal day with a flash crowd
			Base:    300,
			Peak:    2500,
			Period:  flower.Duration(24 * time.Hour),
			At:      flower.Duration(5 * time.Hour),
			Length:  flower.Duration(40 * time.Minute),
			Factor:  3,
			Poisson: true,
			Seed:    7,
		}).
		// Step 2 — Configuration Wizard: desired reference value 60%,
		// two-minute monitoring window, gains scaled per layer.
		WithIngestion(2, 1, 40, flower.DefaultAdaptive(60, window, 4)).
		WithAnalytics(2, 1, 40, flower.DefaultAdaptive(60, window, 4)).
		WithStorage(150, 50, 10000, flower.DefaultAdaptive(60, window, 300)).
		WithBudget(1.5).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	mgr, err := flower.New(spec, sim.Options{Step: 10 * time.Second, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// Step 3 — Controller Performance Monitor: run hour by hour and print
	// how the controllers track the day, including through the spike.
	fmt.Println("hour  rate(r/s)  shards  vms  wcu     ing%   cpu%   wcu%   viol  cost($)")
	var prev flower.Result
	for hour := 1; hour <= 10; hour++ {
		res, err := mgr.Run(time.Hour)
		if err != nil {
			log.Fatal(err)
		}
		h := mgr.Harness()
		var rate timeseries.Point
		if mh, ok := h.Store.Lookup("Workload/Generator", "TargetRate", map[string]string{"Generator": "clickstream"}); ok {
			rate, _ = mh.Latest()
		}
		fmt.Printf("%4d  %9.0f  %6d  %3d  %6.0f  %5.1f  %5.1f  %5.1f  %5d  %7.4f\n",
			hour, rate.V,
			res.FinalAllocation.Shards, res.FinalAllocation.VMs, res.FinalAllocation.WCU,
			res.MeanUtil[flow.Ingestion], res.MeanUtil[flow.Analytics], res.MeanUtil[flow.Storage],
			sumViolations(res)-sumViolations(prev), res.TotalCost)
		prev = res
	}

	// Learned dependencies after a day of history (§3.1).
	depsFound, err := mgr.AnalyzeDependencies()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nlearned cross-layer dependencies:")
	for _, d := range depsFound {
		fmt.Printf("  %s\n", d)
	}
}

func sumViolations(r flower.Result) int {
	t := 0
	for _, v := range r.Violations {
		t += v
	}
	return t
}
