// Pareto: reproduce the Resource Share Analysis of §3.2 / Fig. 4 — given
// a budget and the paper's assumptive dependency constraints, find the
// Pareto-optimal resource shares of the three layers with NSGA-II — and
// then go one step further than the paper: submit every plan as an
// allocation variant of one Scenario Lab experiment, run all of them
// concurrently under management, and extract the *measured* Pareto front
// over (cost, violation rate) from the trial outcomes. Where the paper
// leaves picking a plan "either manually by the user or randomly by the
// system", the farm answers it with data.
package main

import (
	"fmt"
	"log"

	"repro/internal/exper"
	"repro/internal/lab"
)

func main() {
	log.SetFlags(0)

	// The paper's example: r(I)=shards, r(A)=VMs, r(S)=write capacity,
	// subject to 5·r(A) ≥ r(I), 2·r(A) ≤ r(I), 2·r(I) ≤ r(S) and a
	// budget. SharePlanSpec solves it and encodes each plan as one trial.
	spec, plans, err := exper.SharePlanSpec(42, 0.29)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Pareto-optimal resource shares under a $0.29/h budget (paper finds 6):\n")
	fmt.Printf("  %-8s %-6s %-6s %-8s\n", "shards", "vms", "wcu", "$/hour")
	for _, p := range plans {
		fmt.Printf("  %-8.0f %-6.0f %-6.0f %-8.4f\n", p.Amounts[0], p.Amounts[1], p.Amounts[2], p.HourlyCost)
	}

	engine := lab.NewEngine(0)
	defer engine.Close()
	x, err := engine.Submit(spec.Name, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrunning all %d plans for %v each under management (%d workers)...\n",
		len(plans), spec.Duration.D(), engine.Workers())
	<-x.Done()

	res := x.Results()
	fmt.Printf("\n%-20s %-22s %-10s %-12s\n", "plan", "final allocation", "cost ($)", "viol. rate")
	for _, tr := range res.Trials {
		if tr.Status != lab.TrialDone {
			fmt.Printf("%-20s %s: %s\n", tr.Allocation, tr.Status, tr.Error)
			continue
		}
		alloc := fmt.Sprintf("%dsh/%dvm/%.0fwcu", tr.Final.Shards, tr.Final.VMs, tr.Final.WCU)
		fmt.Printf("%-20s %-22s %-10.4f %-12.3f\n", tr.Allocation, alloc, tr.TotalCost, tr.ViolationRate)
	}

	fmt.Printf("\nmeasured Pareto front over (cost, violation rate):\n")
	for _, p := range res.Aggregates.Pareto {
		fmt.Printf("  %-20s $%.4f  %.3f\n", p.Name, p.TotalCost, p.ViolationRate)
	}
	fmt.Printf("pick from the measured front instead of \"manually or randomly\" (§3.2)\n")
}
