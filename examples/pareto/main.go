// Pareto: reproduce the Resource Share Analysis of §3.2 / Fig. 4 — given a
// budget and the paper's assumptive dependency constraints, find the
// Pareto-optimal resource shares of the three layers with NSGA-II, then
// pick one plan and apply it as the initial allocation of a managed flow.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/nsga2"
	"repro/internal/share"
	"repro/internal/sim"

	flower "repro"
)

func main() {
	log.SetFlags(0)

	// The paper's example: r(I)=shards, r(A)=VMs, r(S)=write capacity,
	// subject to 5·r(A) ≥ r(I), 2·r(A) ≤ r(I), 2·r(I) ≤ r(S) and a budget.
	problem := share.PaperExampleProblem(0.29, 0.015, 0.10, 0.00065)
	plans, err := share.Analyze(problem, nsga2.Config{PopSize: 120, Generations: 250, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Pareto-optimal resource shares under a $%.2f/h budget (paper finds 6):\n", problem.Budget)
	fmt.Printf("  %-8s %-6s %-6s %-8s\n", "shards", "vms", "wcu", "$/hour")
	for _, p := range plans {
		fmt.Printf("  %-8.0f %-6.0f %-6.0f %-8.4f\n", p.Amounts[0], p.Amounts[1], p.Amounts[2], p.HourlyCost)
	}

	// "One solution which is best suited to the problem in practice must be
	// identified either manually by the user or randomly by the system" —
	// take the plan with the most analytics VMs and run the flow with it.
	best := plans[0]
	for _, p := range plans {
		if p.Amounts[1] > best.Amounts[1] {
			best = p
		}
	}
	fmt.Printf("\napplying plan %v as the initial allocation...\n", best.Amounts)

	window := 2 * time.Minute
	spec, err := flower.NewBuilder("clickstream").
		WithWorkload(flower.WorkloadSpec{Pattern: "constant", Base: 1800, Seed: 3}).
		WithIngestion(best.Amounts[0], 1, 50, flower.DefaultAdaptive(60, window, 4)).
		WithAnalytics(best.Amounts[1], 1, 50, flower.DefaultAdaptive(60, window, 4)).
		WithStorage(best.Amounts[2], 10, 20000, flower.DefaultAdaptive(60, window, 400)).
		WithBudget(problem.Budget).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	mgr, err := flower.New(spec, sim.Options{Step: 10 * time.Second, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	res, err := mgr.Run(90 * time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after 90 min under management: %d shards / %d VMs / %.0f WCU, cost $%.4f, violations %.1f%%\n",
		res.FinalAllocation.Shards, res.FinalAllocation.VMs, res.FinalAllocation.WCU,
		res.TotalCost, 100*res.ViolationRate)
}
