// Forecast: pair Flower's reactive controllers with workload prediction —
// pre-provisioning each layer for the trend-forecast load so that a steep
// traffic ramp is absorbed instead of merely reacted to. This exercises
// the internal/forecast predictors (Holt trend, Holt-Winters seasonality)
// and the harness's predictive mode (experiment E8).
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"repro/internal/forecast"
	"repro/internal/sim"

	flower "repro"
)

func main() {
	log.SetFlags(0)

	// 1. Model selection: which predictor tracks a diurnal click-stream
	//    best one step ahead? (Holt-Winters should win on seasonal data.)
	series := make([]float64, 24*7)
	for i := range series {
		series[i] = 1500 + 1200*math.Sin(2*math.Pi*float64(i%24)/24)
	}
	models := []struct {
		name string
		mk   func() forecast.Predictor
	}{
		{"SES(0.5)", func() forecast.Predictor { p, _ := forecast.NewSES(0.5); return p }},
		{"Holt(0.6,0.3)", func() forecast.Predictor { p, _ := forecast.NewHolt(0.6, 0.3); return p }},
		{"HoltWinters(24)", func() forecast.Predictor { p, _ := forecast.NewHoltWinters(0.4, 0.1, 0.4, 24); return p }},
		{"AR1", func() forecast.Predictor { p, _ := forecast.NewAR1(128); return p }},
	}
	fmt.Println("one-step-ahead MAPE on a synthetic diurnal day (hourly buckets):")
	for _, m := range models {
		fmt.Printf("  %-18s %.1f%%\n", m.name, forecast.Evaluate(m.mk, series))
	}

	// 2. Run the same ramp twice: reactive-only vs reactive+predictive.
	window := 2 * time.Minute
	build := func() flower.Spec {
		spec, err := flower.NewBuilder("clickstream").
			WithWorkload(flower.WorkloadSpec{
				Pattern: "ramp", Base: 1000, Peak: 6000,
				At: flower.Duration(30 * time.Minute), Length: flower.Duration(time.Hour),
			}).
			WithIngestion(2, 1, 50, flower.DefaultAdaptive(60, window, 4)).
			WithAnalytics(2, 1, 50, flower.DefaultAdaptive(60, window, 4)).
			WithStorage(200, 50, 20000, flower.DefaultAdaptive(60, window, 400)).
			Build()
		if err != nil {
			log.Fatal(err)
		}
		return spec
	}

	run := func(predictive bool) {
		opts := sim.Options{Step: 10 * time.Second, Seed: 1}
		label := "reactive only        "
		if predictive {
			opts.Predictive = sim.PredictiveOptions{Enabled: true}
			label = "reactive + predictive"
		}
		h, err := sim.New(build(), opts)
		if err != nil {
			log.Fatal(err)
		}
		res, err := h.Run(3 * time.Hour)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s  violations %.2f%%  cost $%.3f  pre-scale actions %d\n",
			label, 100*res.ViolationRate, res.TotalCost, h.PreScaleActions())
	}
	fmt.Println("\n6× ramp over one hour, three simulated hours total:")
	run(false)
	run(true)
}
