// Quickstart: manage the paper's click-stream flow (Fig. 1) for two
// simulated hours and print what the elasticity manager did.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/sim"

	flower "repro"
)

func main() {
	log.SetFlags(0)

	// 1. Build the default flow: Kinesis-like stream → Storm-like topology
	//    → DynamoDB-like table, each under an adaptive controller holding
	//    60% utilisation, fed by a diurnal click-stream peaking at 3000
	//    clicks/second.
	spec, err := flower.DefaultClickstream(3000)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Attach the manager and run.
	mgr, err := flower.New(spec, sim.Options{Step: 10 * time.Second, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	res, err := mgr.Run(2 * time.Hour)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Inspect the outcome.
	fmt.Printf("processed %d click events (%d rejected at ingestion)\n", res.Offered, res.Rejected)
	fmt.Printf("SLO violations on %.1f%% of ticks\n", 100*res.ViolationRate)
	fmt.Printf("spend: $%.4f; final allocation: %d shards / %d VMs / %.0f WCU\n\n",
		res.TotalCost, res.FinalAllocation.Shards, res.FinalAllocation.VMs, res.FinalAllocation.WCU)

	// 4. The cross-platform dashboard (§3.4) over the last 30 minutes.
	if err := mgr.RenderDashboard(os.Stdout, 30*time.Minute); err != nil {
		log.Fatal(err)
	}
}
