// Dependency: reproduce the Workload Dependency Analysis of §3.1 — run the
// click-stream flow with static resources, then fit the Eq. 1/Eq. 2 linear
// model between the ingestion arrival rate and the analytics CPU load, the
// relationship Fig. 2 plots with correlation 0.95.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/deps"
	"repro/internal/share"
	"repro/internal/sim"

	flower "repro"
)

func main() {
	log.SetFlags(0)

	// Static, amply provisioned flow: the load signal passes through the
	// layers without saturation, exactly the regime of Fig. 2.
	spec, err := flower.NewBuilder("clickstream").
		WithWorkload(flower.WorkloadSpec{
			Pattern: "sine",
			Base:    1500,
			Peak:    2800,
			Period:  flower.Duration(3 * time.Hour),
			Poisson: true,
			Seed:    11,
		}).
		WithIngestion(50, 1, 50, flower.ControllerSpec{Type: flower.ControllerNone}).
		WithAnalytics(50, 1, 50, flower.ControllerSpec{Type: flower.ControllerNone}).
		WithStorage(2000, 50, 20000, flower.ControllerSpec{Type: flower.ControllerNone}).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	mgr, err := flower.New(spec, sim.Options{Step: 10 * time.Second, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	// The paper's trace spans ~550 minutes.
	if _, err := mgr.Run(550 * time.Minute); err != nil {
		log.Fatal(err)
	}

	// Fit every cross-layer pair of the standard measures.
	found, err := mgr.AnalyzeDependencies()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("dependencies with |correlation| >= 0.7:")
	for _, d := range found {
		fmt.Printf("  %s\n", d)
	}

	// The headline pair, in the paper's own formulation.
	refs := mgr.StandardRefs()
	d, err := mgr.AnalyzeDependency(refs[0], refs[1]) // ingestion → analytics
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFig. 2 analogue: correlation = %.3f (paper: 0.95)\n", d.Correlation)
	fmt.Printf("Eq. 2 analogue:  CPU ≈ %.6g·InputRecords + %.3g\n", d.Model.Slope, d.Model.Intercept)

	// §3.1's worked example: CPU needed to absorb a full shard's writes
	// (1,000 records/second = 10,000 records per 10s tick).
	fmt.Printf("CPU to absorb one full shard: %.1f%%\n", d.Model.Predict(10000))

	// The learned dependency becomes an Eq. 5 constraint for the share
	// analyzer (§3.2).
	cs := share.FromDependency(d.Model.Intercept, d.Model.Slope, 0, 1, 3, 5)
	fmt.Printf("\nas share-analysis constraints: %d inequalities sandwiching the fit\n", len(cs))
	_ = deps.Ingestion // package reference for readers navigating the API
}
