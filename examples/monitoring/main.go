// Monitoring: the §3.4 walk-through — run the managed click-stream flow,
// define CloudWatch-style alarms on two different platforms, and render
// the all-in-one-place dashboard plus an ASCII chart of the analytics CPU
// under control (the terminal analogue of the demo's Fig. 6).
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/compute"
	"repro/internal/metricstore"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/timeseries"

	flower "repro"
)

func main() {
	log.SetFlags(0)

	spec, err := flower.DefaultClickstream(2500)
	if err != nil {
		log.Fatal(err)
	}
	mgr, err := flower.New(spec, sim.Options{Step: 10 * time.Second, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}

	// Cross-platform alarms: one on the analytics layer, one on storage —
	// both visible in the single consolidated view.
	store := mgr.Store()
	alarms := []*metricstore.Alarm{
		{
			Name: "analytics-cpu-high", Namespace: "Analytics/Compute",
			Metric: "CPUUtilization", Dimensions: map[string]string{"Topology": spec.Name},
			Period: time.Minute, Stat: timeseries.AggMean,
			Threshold: 85, Compare: metricstore.GreaterThan, EvalPeriods: 3,
		},
		{
			Name: "storage-throttling", Namespace: "Storage/KVStore",
			Metric: "WriteThrottleEvents", Dimensions: map[string]string{"TableName": spec.Name},
			Period: time.Minute, Stat: timeseries.AggSum,
			Threshold: 0, Compare: metricstore.GreaterThan, EvalPeriods: 2,
		},
	}
	for _, a := range alarms {
		if err := store.PutAlarm(a); err != nil {
			log.Fatal(err)
		}
	}

	if _, err := mgr.Run(90 * time.Minute); err != nil {
		log.Fatal(err)
	}

	// The consolidated dashboard: every platform, one place.
	if err := mgr.RenderDashboard(os.Stdout, 30*time.Minute); err != nil {
		log.Fatal(err)
	}

	// A chart of the controlled CPU signal (cf. the demo's Fig. 6).
	var cpu *timeseries.Series
	if mh, ok := store.Lookup(compute.Namespace, compute.MetricCPUUtilization,
		map[string]string{"Topology": spec.Name}); ok {
		cpu = mh.Window(metricstore.WindowQuery{})
	}
	fmt.Println()
	if err := monitor.Chart(os.Stdout, "analytics CPU under adaptive control (%)", cpu, 72, 12); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nalarm states:")
	for _, a := range alarms {
		fmt.Printf("  %-22s %s (transitions: %d)\n", a.Name, a.State(), a.Transitions())
	}
}
