// The dashboard example drives Flower's HTTP control plane — the
// programmatic form of the demo's three steps (§4): build a flow, run it
// under management, watch it through the all-in-one-place view, and tune a
// controller live.
//
// By default it runs a scripted session against an in-process server and
// exits. Pass -serve to keep the server up for a browser:
//
//	go run ./examples/dashboard -serve
//	open http://127.0.0.1:8080/
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/httpapi"
	"repro/internal/sim"

	flower "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dashboard: ")
	serve := flag.Bool("serve", false, "keep serving on :8080 for a browser (pace 60 sim-s/s)")
	flag.Parse()

	// Step 1 — Flow Builder: the paper's click-stream flow.
	spec, err := flower.DefaultClickstream(3000)
	if err != nil {
		log.Fatal(err)
	}
	mgr, err := core.NewManager(spec, sim.Options{Step: 10 * time.Second, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	srv := httpapi.NewServer(mgr)

	if *serve {
		srv.StartPacing(60, 250*time.Millisecond)
		defer srv.StopPacing()
		fmt.Println("serving on http://127.0.0.1:8080/ — ctrl-c to stop")
		log.Fatal(http.ListenAndServe("127.0.0.1:8080", srv))
	}

	// Scripted session over a real TCP socket.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	// Step 2 — run the flow for two simulated hours.
	post(base+"/api/advance?d=2h", "")
	fmt.Println("== status after 2 simulated hours ==")
	fmt.Println(get(base + "/api/status"))

	// Step 3 — Controller Performance Monitor: inspect the layers...
	fmt.Println("== layers ==")
	fmt.Println(get(base + "/api/layers"))

	// ...tune the analytics controller live ("adjust parameters of the
	// controllers, such as elasticity speed, monitoring period")...
	fmt.Println("== tune analytics controller: ref 70%, window 4m ==")
	fmt.Println(post(base+"/api/layers/analytics/controller", `{"ref": 70, "window": "4m"}`))

	// ...and keep running under the new settings.
	post(base+"/api/advance?d=1h", "")

	// The learned Eq. 1 dependencies, from the same API.
	fmt.Println("== learned dependencies ==")
	fmt.Println(get(base + "/api/dependencies"))

	// The HTML dashboard is one GET away.
	page := get(base + "/")
	fmt.Printf("== dashboard page: %d bytes of HTML, %d sparklines ==\n",
		len(page), strings.Count(page, "<svg"))
}

func get(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	return readBody(resp)
}

func post(url, body string) string {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	return readBody(resp)
}

func readBody(resp *http.Response) string {
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("%s: %s", resp.Status, data)
	}
	// Compact JSON for terminal readability; HTML passes through.
	var buf map[string]any
	if json.Unmarshal(data, &buf) == nil {
		out, _ := json.Marshal(buf)
		return string(out)
	}
	var arr []any
	if json.Unmarshal(data, &arr) == nil {
		out, _ := json.Marshal(arr)
		return string(out)
	}
	return string(data)
}
