// The dashboard example drives Flower's v1 HTTP control plane — the
// programmatic form of the demo's three steps (§4): build flows, run them
// under management, watch them through the all-in-one-place view, and tune
// a controller live. It serves two flows from one process and drives both
// through the typed Go SDK (repro/client), including the streaming read
// plane: a watch subscription replaces status polling, and one columnar
// batch query fetches every panel's sparkline series in a single round
// trip.
//
// By default it runs a scripted session against an in-process server and
// exits. Pass -serve to keep the server up for a browser:
//
//	go run ./examples/dashboard -serve
//	open http://127.0.0.1:8080/
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	apiv1 "repro/api/v1"
	"repro/client"
	"repro/internal/httpapi"
	"repro/internal/registry"
	"repro/internal/sim"

	flower "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dashboard: ")
	serve := flag.Bool("serve", false, "keep serving on :8080 for a browser (pace 60 sim-s/s)")
	flag.Parse()

	// Step 1 — Flow Builder: two click-stream flows of different sizes,
	// registered in one control plane.
	reg := registry.New()
	defer reg.Close()
	for i, peak := range []float64{3000, 1200} {
		spec, err := flower.DefaultClickstream(peak)
		if err != nil {
			log.Fatal(err)
		}
		spec.Name = fmt.Sprintf("clicks-%d", i+1)
		f, err := reg.Create(spec.Name, spec, sim.Options{Step: 10 * time.Second, Seed: int64(7 + i)})
		if err != nil {
			log.Fatal(err)
		}
		if *serve {
			if err := f.StartPacing(60, 250*time.Millisecond); err != nil {
				log.Fatal(err)
			}
		}
	}
	srv := httpapi.NewServer(reg, httpapi.WithDefaultFlow("clicks-1"))

	if *serve {
		fmt.Println("serving on http://127.0.0.1:8080/ — ctrl-c to stop")
		log.Fatal(http.ListenAndServe("127.0.0.1:8080", srv))
	}

	// Scripted session over a real TCP socket, through the SDK.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()

	ctx := context.Background()
	c := client.New("http://" + ln.Addr().String())

	// The watch stream sees every advance the session performs — server
	// push instead of request/response polling. After "0" replays the
	// server's retained history, so events published before the stream
	// connects still arrive.
	w := c.Watch(client.WatchQuery{AllFlows: true, Types: []string{apiv1.EventFlowAdvanced}, After: "0"})
	defer w.Close()

	// Step 2 — run both flows for two simulated hours, independently.
	for _, id := range []string{"clicks-1", "clicks-2"} {
		if _, err := c.Advance(ctx, id, 2*time.Hour); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("== watch events ==")
	for i := 0; i < 2; i++ {
		ev, err := w.Next(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s %s %s\n", ev.Type, ev.Topic, ev.Data)
	}
	flows, err := c.ListFlows(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== flows after 2 simulated hours ==")
	for _, f := range flows {
		st, err := c.Status(ctx, f.ID)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d ticks, %d records, cost $%.4f, violations %.2f%%\n",
			f.ID, st.Ticks, st.Offered, st.TotalCost, 100*st.ViolationRate)
	}

	// Step 3 — Controller Performance Monitor: inspect the layers...
	layers, err := c.Layers(ctx, "clicks-1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== clicks-1 layers ==")
	for _, l := range layers {
		fmt.Printf("%-10s %4.0f %-7s util %.1f%% (controller %s)\n",
			l.Kind, l.Allocation, l.Resource, l.Utilization, l.Controller.Type)
	}

	// ...tune the analytics controller live ("adjust parameters of the
	// controllers, such as elasticity speed, monitoring period")...
	ref, window := 70.0, "4m"
	ctrl, err := c.TuneController(ctx, "clicks-1", "analytics",
		apiv1.TuneRequest{Ref: &ref, Window: &window})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== tuned analytics controller: ref %.0f%%, window %s ==\n", ctrl.Ref, ctrl.Window)

	// ...and keep running under the new settings.
	if _, err := c.Advance(ctx, "clicks-1", time.Hour); err != nil {
		log.Fatal(err)
	}

	// The learned Eq. 1 dependencies, from the same API.
	deps, err := c.Dependencies(ctx, "clicks-1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== learned dependencies ==")
	for _, d := range deps {
		fmt.Printf("%s\n", d.Equation)
	}

	// Every sparkline of a custom dashboard in ONE round trip: a columnar
	// batch query over both flows, instead of one /metrics/query call per
	// panel.
	batch := []client.BatchQuery{
		{Flow: "clicks-1", Namespace: "Ingestion/Stream", Name: "IncomingRecords",
			Dimensions: map[string]string{"StreamName": "clicks-1"}, Window: time.Hour},
		{Flow: "clicks-1", Namespace: "Analytics/Compute", Name: "CPUUtilization",
			Dimensions: map[string]string{"Topology": "clicks-1"}, Window: time.Hour, Stat: "p90"},
		{Flow: "clicks-2", Namespace: "Storage/KVStore", Name: "ConsumedWriteCapacityUnits",
			Dimensions: map[string]string{"TableName": "clicks-2"}, Window: time.Hour},
	}
	cols, err := c.BatchQueryMetrics(ctx, batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== one batch query, three sparkline series ==")
	for i, res := range cols {
		if res.Error != nil {
			log.Fatalf("selector %d: %s", i, res.Error.Message)
		}
		if len(res.Vs) == 0 {
			fmt.Printf("%s %s/%s: no data in window\n", res.Flow, res.Namespace, res.Name)
			continue
		}
		last := res.Vs[len(res.Vs)-1]
		fmt.Printf("%s %s/%s: %d columnar points, last %.1f\n",
			res.Flow, res.Namespace, res.Name, len(res.Ts), last)
	}

	// The HTML dashboard is one GET away, per flow.
	page, err := c.Dashboard(ctx, "clicks-2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== clicks-2 dashboard page: %d bytes of HTML, %d sparklines ==\n",
		len(page), strings.Count(page, "<svg"))
}
