// Controllers: shoot-out between Flower's adaptive-gain controller
// (Eq. 6–7) and the baselines — fixed-gain [12], quasi-adaptive [14],
// provider-style rules [1], and the gain-memory ablation — on a 4× step
// workload. The companion paper [9] reports the adaptive controller
// outperforming the baselines; this example lets you watch it do so.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"repro/internal/compute"
	"repro/internal/flow"
	"repro/internal/sim"
	"repro/internal/timeseries"

	flower "repro"
)

func main() {
	log.SetFlags(0)

	kinds := []flower.ControllerSpec{
		flower.DefaultAdaptive(60, 2*time.Minute, 4),
		memoryless(),
		{Type: flower.ControllerFixedGain, Ref: 60, Window: flower.Duration(2 * time.Minute), DeadBand: 5, L: 0.02},
		{Type: flower.ControllerQuasiAdaptive, Ref: 60, Window: flower.Duration(2 * time.Minute), DeadBand: 5, Forgetting: 0.95},
		{Type: flower.ControllerRule, Ref: 60, Window: flower.Duration(2 * time.Minute), High: 80, Low: 35, UpFactor: 1.5, DownFactor: 0.8, Cooldown: 2},
	}

	fmt.Printf("%-20s %-14s %-12s %-12s\n", "controller", "settle (min)", "viol. rate", "mean |err|")
	for _, ctrl := range kinds {
		settle, viol, absErr := run(ctrl)
		settleStr := "never"
		if !math.IsInf(settle, 1) {
			settleStr = fmt.Sprintf("%.0f", settle)
		}
		fmt.Printf("%-20s %-14s %-12.3f %-12.1f\n", ctrl.Type, settleStr, viol, absErr)
	}
}

func memoryless() flower.ControllerSpec {
	c := flower.DefaultAdaptive(60, 2*time.Minute, 4)
	c.Type = flower.ControllerMemoryless
	return c
}

// run drives a step workload (1000 → 4000 rec/s at t=40min) under the given
// analytics controller and reports settling time, violation rate, and mean
// |CPU − 60| after the step.
func run(ctrl flower.ControllerSpec) (settleMin, violRate, absErr float64) {
	spec, err := flower.NewBuilder("clickstream").
		WithWorkload(flower.WorkloadSpec{
			Pattern: "step", Base: 1000, Peak: 4000, At: flower.Duration(40 * time.Minute),
		}).
		WithIngestion(2, 1, 50, scale(ctrl, 1)).
		WithAnalytics(2, 1, 50, scale(ctrl, 1)).
		WithStorage(200, 50, 20000, scale(ctrl, 100)).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	h, err := sim.New(spec, sim.Options{Step: 10 * time.Second, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	res, err := h.Run(4 * time.Hour)
	if err != nil {
		log.Fatal(err)
	}

	cpu := h.Store.Raw(compute.Namespace, compute.MetricCPUUtilization,
		map[string]string{"Topology": spec.Name})
	vals := cpu.Resample(time.Minute, timeseries.AggMean).Values()
	const stepMin, ref = 40, 60.0

	settleMin = math.Inf(1)
	for i := stepMin; i < len(vals); i++ {
		ok := true
		for _, v := range vals[i:] {
			if math.Abs(v-ref) > 10 {
				ok = false
				break
			}
		}
		if ok {
			settleMin = float64(i - stepMin)
			break
		}
	}
	var sum float64
	for _, v := range vals[stepMin:] {
		sum += math.Abs(v - ref)
	}
	absErr = sum / float64(len(vals)-stepMin)
	return settleMin, res.ViolationRate, absErr
}

// scale multiplies the gain parameters of ctrl for layers with larger
// allocation magnitudes (the storage layer holds hundreds of WCU).
func scale(ctrl flower.ControllerSpec, factor float64) flower.ControllerSpec {
	out := ctrl
	out.L0 *= factor
	out.Gamma *= factor
	out.LMin *= factor
	out.LMax *= factor
	out.L *= factor
	_ = flow.Storage
	return out
}
