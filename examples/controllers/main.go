// Controllers: shoot-out between Flower's adaptive-gain controller
// (Eq. 6–7) and the baselines — fixed-gain [12], quasi-adaptive [14],
// provider-style rules [1], and the gain-memory ablation — on a 4× step
// workload. The companion paper [9] reports the adaptive controller
// outperforming the baselines; this example submits the comparison as
// one Scenario Lab experiment, so the five variants run concurrently on
// the worker pool instead of the serial loop this program used to be.
package main

import (
	"fmt"
	"log"

	"repro/internal/exper"
	"repro/internal/lab"
)

func main() {
	log.SetFlags(0)

	engine := lab.NewEngine(0)
	defer engine.Close()

	spec := exper.ControllerShootoutSpec(1)
	x, err := engine.Submit(spec.Name, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("running %d controller variants for %v each on %d workers...\n",
		len(spec.Controllers), spec.Duration.D(), engine.Workers())
	<-x.Done()

	// The tail error answers the original shoot-out's settling question:
	// a controller that settled after the step tracks the reference
	// tightly over the final quarter of the run, one still hunting does
	// not.
	res := x.Results()
	fmt.Printf("\n%-28s %-12s %-10s %-12s %-12s %-10s\n", "controller", "viol. rate", "actions", "|err| mean", "|err| tail", "cost ($)")
	for _, tr := range res.Trials {
		if tr.Status != lab.TrialDone {
			fmt.Printf("%-28s %s: %s\n", tr.Controller, tr.Status, tr.Error)
			continue
		}
		actions := 0
		for _, n := range tr.Actions {
			actions += n
		}
		fmt.Printf("%-28s %-12.3f %-10d %-12.1f %-12.1f %-10.3f\n",
			tr.Controller, tr.ViolationRate, actions, tr.MeanAbsError, tr.TailAbsError, tr.TotalCost)
	}

	agg := res.Aggregates
	if agg.Completed == 0 {
		log.Fatal("no trial completed")
	}
	fmt.Printf("\nbest tracking: %s (viol. rate %.3f); cheapest: %s ($%.3f)\n",
		agg.BestViolation.Name, agg.BestViolation.Value, agg.BestCost.Name, agg.BestCost.Value)
	fmt.Printf("deltas vs the %q baseline:\n", agg.Baseline)
	for _, d := range agg.Deltas {
		fmt.Printf("  %-28s cost %+.1f%%  viol %+.3f\n", d.Name, d.CostPct, d.ViolationDelta)
	}
}
