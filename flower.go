// Package flower is the public API of this reproduction of "Flower: A
// Data Analytics Flow Elasticity Manager" (Khoshkbarforoushha, Ranjan,
// Wang, Friedrich — PVLDB 10(12), 2017).
//
// Flower manages the elasticity of a three-layer cloud data analytics
// flow — ingestion (a Kinesis-like sharded stream), analytics (a Storm-like
// topology on a VM cluster) and storage (a DynamoDB-like provisioned-
// throughput table) — holistically: it learns cross-layer workload
// dependencies with linear regression, splits a budget into per-layer
// resource shares with NSGA-II, keeps each layer at its desired
// utilisation with adaptive-gain feedback controllers, and consolidates
// all platforms' metrics in one monitoring view.
//
// The cloud substrates are simulated (this module is offline and
// stdlib-only). Many flows can be managed concurrently by one process
// through a Registry, which backs the versioned HTTP control plane served
// by cmd/flowerd (see API.md for the v1 REST routes and repro/client for
// the typed Go SDK).
//
// Quickstart:
//
//	spec, err := flower.DefaultClickstream(3000) // 3000 clicks/s peak
//	if err != nil { ... }
//	mgr, err := flower.New(spec, flower.Options{})
//	if err != nil { ... }
//	res, err := mgr.Run(2 * time.Hour)
//	if err != nil { ... }
//	fmt.Printf("cost $%.2f, violations %.1f%%\n", res.TotalCost, 100*res.ViolationRate)
//	mgr.RenderDashboard(os.Stdout, 30*time.Minute)
//
// # Scenario Lab
//
// Beyond managing one flow at a time, the Scenario Lab (internal/lab)
// turns whole evaluation studies into first-class experiments: a
// declarative grid of workload patterns × controller knob sets ×
// initial-allocation plans × seeds expands into trials, which an engine
// fans out over a bounded worker pool with deterministic per-trial
// seeds, progress tracking and cancellation. Results come back as
// per-trial summaries (cost, violation rate, utilisation) plus
// cross-trial aggregates — best/worst, baseline deltas, and the Pareto
// front over (cost, violation rate). The lab is also served remotely at
// /v1/experiments (see API.md), driven by `flowctl experiments`, and
// powers cmd/flowerbench's benchmark farm.
//
// Lab quickstart — compare two monitoring windows across two workload
// patterns, eight simulated hours each, all cores busy:
//
//	engine := flower.NewLab(0) // 0: one worker per core
//	defer engine.Close()
//	x, err := engine.Submit("sweep", flower.ExperimentSpec{
//		Name:     "sweep",
//		Peak:     3000,
//		Duration: flower.Duration(8 * time.Hour),
//		Workloads: []flower.WorkloadVariant{
//			{Name: "diurnal", Workload: flower.WorkloadSpec{Pattern: "diurnal", Base: 500, Peak: 3000, Period: flower.Duration(9 * time.Hour), Poisson: true}},
//			{Name: "spike", Workload: flower.WorkloadSpec{Pattern: "spike", Base: 400, Peak: 1500, Period: flower.Duration(24 * time.Hour), At: flower.Duration(3 * time.Hour), Length: flower.Duration(45 * time.Minute), Factor: 5}},
//		},
//		Controllers: []flower.ControllerVariant{
//			{Name: "fast", Layers: map[flower.LayerKind]flower.ControllerSpec{flower.Analytics: flower.DefaultAdaptive(60, time.Minute, 4)}},
//			{Name: "slow", Layers: map[flower.LayerKind]flower.ControllerSpec{flower.Analytics: flower.DefaultAdaptive(60, 5*time.Minute, 4)}},
//		},
//	})
//	if err != nil { ... }
//	<-x.Done()
//	res := x.Results()
//	for _, p := range res.Aggregates.Pareto {
//		fmt.Printf("%s: $%.2f at %.1f%% violations\n", p.Name, p.TotalCost, 100*p.ViolationRate)
//	}
//
// # Execution plane
//
// All recurring and queued work — every paced flow's wall-clock tick,
// every Scenario Lab trial — executes on one sharded tick scheduler
// (internal/sched): per-shard hashed timer wheels arm periodic jobs in
// O(1), per-shard run queues feed a fixed worker pool, and the process
// goroutine count stays O(shards) no matter how many flows are paced.
// Execution is batched: each wheel advance drains everything it fired
// into per-class run batches handed to workers in one queue operation,
// so the shard lock is taken per advance rather than per fired job, and
// a batch's stats flush back in one acquisition — the drain loop is
// allocation-free at steady state. Batches are capped (256 jobs by
// default) so thundering herds split into chunks that idle workers
// steal from the hottest sibling shard before sleeping; stolen periodic
// batches still re-arm on their home shard, so timer ownership never
// migrates. First fires are hash-spread across each job's interval,
// which keeps 100k co-created paced flows from colliding in one wheel
// slot. Flow pacing and experiment grids are co-scheduled under a
// weighted fairness policy (a big grid cannot starve live flows),
// pacers that fall behind wall time degrade via a bounded catch-up
// policy (dropped ticks are counted, backlogs never grow), and the
// whole plane is observable — queue depths, late and skipped ticks,
// steal and batch-shape counters, run-latency histograms — at
// GET /v1/scheduler, `flowctl sched`, and Scheduler.Stats. Size it with
// flowerd's -sched-shards/-sched-workers; shards × workers is the one
// capacity knob of the whole server. The `flowerbench -suite sched`
// benchmark pair records advances/sec and goroutine count against the
// retired goroutine-per-flow pacing design in BENCH_REPORT.json, and
// its scale grid registers 100k paced jobs (the -sched-flows axis) with
// recorded setup-time, delivered-tick-fidelity and steal thresholds
// that fail the run when missed.
//
// # Metric pipeline
//
// The metric store at the centre of every flow (internal/metricstore, the
// CloudWatch analogue of Fig. 3) is columnar and handle-based: series are
// stored as parallel int64 unix-nano / float64 columns, and hot-path
// callers — per-tick publishers in the simulated substrates, control-loop
// sensors, SLO accounting — resolve a *metricstore.Handle once at build
// time and then append or aggregate through it allocation-free, under a
// per-metric lock. Windowed statistics are answered by binary search plus
// a single streaming pass over a zero-copy view; retention pruning is an
// amortised head drop, never a copy of the surviving points. The map-keyed
// Put/GetStatistics calls remain as compatibility wrappers for callers
// whose metric identity is per-request (HTTP queries, journal replay).
// See API.md ("Metric store: handle-based hot path") for the performance
// model, and internal/perfbench — or `flowerbench -suite perf` — for the
// measured speedups versus the pre-rebuild implementation.
//
// # Read plane
//
// Observation is push-and-batch, not poll-and-point. Every control-plane
// state change — flow lifecycle, advances, per-layer controller
// decisions, pacer transitions, experiment and trial state — is published
// on bounded event buses (internal/eventbus; Registry.Events and the lab
// engine's Events) and streamed over HTTP as Server-Sent Events or NDJSON
// at /v1/flows/{id}/watch, /v1/experiments/{id}/watch and the
// multiplexed /v1/watch, with Last-Event-ID resume, heartbeats, and
// explicit dropped-event markers for slow consumers (publishing never
// blocks the simulation tick). Bulk series reads go through
// POST /v1/metrics:batchQuery: many (flow, metric, window, resample)
// selectors per request, answered as columnar ts/vs arrays serialized
// straight from the store — the SDK's BatchQueryMetrics fetches 16 series
// with several-fold fewer bytes and allocations than 16 per-point
// queries (see BENCH_REPORT.json's batch_query_x16). The SDK's
// WatchFlow/WatchExperiment/Watch iterators reconnect and resume on
// their own, WaitExperiment waits on a watch stream with zero
// steady-state polls (falling back to polling on pre-watch servers), and
// `flowctl watch` / `flowmon -follow` bring the streams to the terminal.
// See API.md ("Read plane").
//
// # Query plane
//
// Ad-hoc analysis goes through a streaming query engine (internal/query)
// exposed at POST /v1/query: composable pipelines — select (flow/ns/name
// globs + exact dimensions), window, filter, map, epoch-aligned
// resample, cross-flow/cross-metric join on bucket starts, topk, limit
// and agg — written in a pipe syntax or the equivalent JSON AST.
// Operator chains iterate zero-copy views of the columnar store under
// each flow's lock (timeseries.View.Align yields per-bucket sub-views
// without copying), a terminal aggregate fuses into the streaming pass,
// and a greedy planner resolves selects once, pushes window/resample
// down to the View layer and evaluates the more selective join side
// first — ?explain=1 reports every decision without running. The
// planner's glob-to-flow resolution is memoised per server and
// invalidated by flow lifecycle events, so repeated queries do not
// re-walk large registries at plan time. batchQuery
// and the single-metric route are now sugar over the same executor, so
// every read surface agrees bucket for bucket. The SDK exposes
// Query/QueryPlan/QueryExplain, `flowctl query` renders the tables, and
// `flowerbench -suite query` holds the bar: the engine must beat the
// frozen materialize-everything evaluator on bytes and allocations for
// the 16-series join+aggregate query while staying bit-for-bit
// identical to it. See API.md ("Query plane").
//
// # Self-telemetry
//
// The plane watches itself with a zero-dependency metrics registry
// (internal/telemetry): atomic counters, gauges and fixed-bucket latency
// histograms, labeled families, allocation-free on the write path — the
// budgets are asserted by `flowerbench -suite obs` in CI. Every layer is
// instrumented (HTTP middleware, scheduler, event bus, metric store,
// registry, lab, persistence), and GET /v1/telemetry serves the snapshot
// as JSON or, via Accept/?format negotiation, as the Prometheus text
// exposition. One flow advance in every N is traced end to end —
// scheduler fire → controller decision → metric append → event publish →
// SSE delivery, with per-stage durations — at GET /v1/telemetry/trace.
// Every response carries an X-Request-ID; SSE heartbeats carry bus-wide
// publish/drop totals. flowerd's -pprof flag mounts net/http/pprof, and
// -selfscrape feeds the daemon's own snapshots into its metric store as
// the reserved flow "plane.self" (namespace Flower/Telemetry), so
// forecasting and the batch query plane can watch the plane itself. The
// SDK exposes client.Telemetry and client.TelemetryTrace; `flowctl top`
// renders the live terminal view. See API.md ("Telemetry").
//
// # Durability
//
// With `flowerd -data-dir`, the control plane survives crashes
// (internal/persist): every mutation — flow create/pace/tune/delete,
// experiment submit/cancel/finish — is appended to a CRC-framed,
// fsynced write-ahead log before it is acknowledged, and periodically
// compacted into a JSON checkpoint. On boot the daemon replays
// checkpoint + WAL: flows come back with their tunings, pacers re-arm
// on the scheduler, and experiments that were running at the crash are
// marked interrupted (or resubmitted with -resume-experiments). A torn
// final record — the residue of dying mid-append — is dropped and
// counted; if the log itself ever fails to append, the plane degrades
// to read-only (mutations answer 503 unavailable, reads and watch
// streams keep serving) rather than acknowledge anything it cannot
// make durable. The kill -9 crash-recovery integration test in
// cmd/flowerd and the fault-injection filesystem (internal/injectfs)
// keep the contract honest. See API.md ("Durability & recovery").
//
// # Static analysis
//
// The invariants above are machine-checked. internal/analysis is a
// stdlib-only static-analysis suite (a `go list -json -deps -export`
// driver plus go/parser and go/types — no dependencies) with five
// analyzers: lockorder (the whole-program acquired-while-held lock
// graph must stay acyclic and respect the documented orders), hotpath
// (per-tick packages must use build-time metric handles — no map-keyed
// store wrappers, no handle resolution or MetricID construction in
// loops), wallclock (time.Now/Sleep/timers are banned outside simtime,
// perfbench, telemetry, commands, examples and tests — the simulation is
// single-clocked and wall time belongs to the packages that measure it),
// stopleak (every created Scheduler, Ticket,
// Subscription, lab Engine, Registry or persist WAL handle must reach
// Stop/Close or escape to a new owner), and wirejson (exported fields of wire structs must
// carry json tags; interface-typed fields are rejected). Run it with
// `go run ./cmd/flowervet ./...` (exit non-zero on findings,
// -list enumerates analyzers); `go test ./internal/analysis` runs the
// same suite over the repo's own source plus a golden-package corpus,
// and CI runs the binary on every push. Deliberate exceptions carry
// `//flowervet:allow <analyzer>(<reason>)` pragmas. See API.md
// ("Static analysis").
package flower

import (
	"repro/internal/core"
	"repro/internal/deps"
	"repro/internal/flow"
	"repro/internal/lab"
	"repro/internal/monitor"
	"repro/internal/nsga2"
	"repro/internal/registry"
	"repro/internal/sched"
	"repro/internal/share"
	"repro/internal/sim"
)

// Manager is a Flower instance managing one flow; see core.Manager.
type Manager = core.Manager

// Registry is a concurrency-safe collection of named managed flows — the
// multi-tenant layer underneath the v1 HTTP control plane; see
// registry.Registry.
type Registry = registry.Registry

// ManagedFlow is one registered flow: a Manager plus its own lock and
// wall-clock pacer; see registry.Flow.
type ManagedFlow = registry.Flow

// Options tunes the simulation harness underneath a manager.
type Options = sim.Options

// Result summarises a managed run.
type Result = sim.Result

// Flow-definition types (the programmatic Flow Builder and Configuration
// Wizard).
type (
	// Spec is a complete flow definition.
	Spec = flow.Spec
	// Builder assembles a Spec fluently.
	Builder = flow.Builder
	// LayerSpec configures one layer.
	LayerSpec = flow.LayerSpec
	// ControllerSpec configures a layer's controller.
	ControllerSpec = flow.ControllerSpec
	// WorkloadSpec selects the generator pattern.
	WorkloadSpec = flow.WorkloadSpec
	// Duration is a JSON-friendly duration.
	Duration = flow.Duration
)

// Layer kinds.
const (
	Ingestion = flow.Ingestion
	Analytics = flow.Analytics
	Storage   = flow.Storage
)

// Controller types.
const (
	ControllerNone          = flow.ControllerNone
	ControllerAdaptive      = flow.ControllerAdaptive
	ControllerMemoryless    = flow.ControllerMemoryless
	ControllerFixedGain     = flow.ControllerFixedGain
	ControllerQuasiAdaptive = flow.ControllerQuasiAdaptive
	ControllerRule          = flow.ControllerRule
)

// Analysis result types.
type (
	// Dependency is a learned cross-layer relationship (Eq. 1).
	Dependency = deps.Dependency
	// MetricRef names one monitored measure of one layer.
	MetricRef = deps.MetricRef
	// Plan is one Pareto-optimal provisioning plan (Fig. 4).
	Plan = share.Plan
	// ShareProblem is the Eq. 3–5 program.
	ShareProblem = share.Problem
	// ShareConstraint is one linear constraint of the program.
	ShareConstraint = share.Constraint
	// NSGA2Config tunes the genetic search.
	NSGA2Config = nsga2.Config
	// Snapshot is one all-in-one-place monitoring view.
	Snapshot = monitor.Snapshot
)

// Scenario Lab types (the experiment farm; see internal/lab).
type (
	// Lab executes experiments on a bounded worker pool.
	Lab = lab.Engine
	// Experiment is one submitted experiment with live results.
	Experiment = lab.Experiment
	// ExperimentSpec is a declarative experiment grid.
	ExperimentSpec = lab.Spec
	// WorkloadVariant is one point on an experiment's workload axis.
	WorkloadVariant = lab.WorkloadVariant
	// ControllerVariant is one point on the controller-knobs axis.
	ControllerVariant = lab.ControllerVariant
	// AllocationVariant is one point on the initial-allocation axis.
	AllocationVariant = lab.AllocationVariant
	// TrialSummary is one trial's outcome.
	TrialSummary = lab.TrialSummary
	// ExperimentResults holds per-trial summaries plus aggregates.
	ExperimentResults = lab.Results
)

// Execution-plane types (the sharded tick scheduler; see internal/sched).
type (
	// Scheduler is the unified execution plane running pacers and trials.
	Scheduler = sched.Scheduler
	// SchedulerConfig sizes a scheduler (shards, workers, fairness).
	SchedulerConfig = sched.Config
	// SchedulerStats is a point-in-time view of the plane.
	SchedulerStats = sched.Stats
)

// NewScheduler starts a sharded tick scheduler; the zero config selects
// GOMAXPROCS shards with one worker each.
func NewScheduler(cfg SchedulerConfig) *Scheduler { return sched.New(cfg) }

// WithScheduler makes NewRegistry pace its flows on a shared scheduler
// instead of a private one.
var WithScheduler = registry.WithScheduler

// NewLab returns an experiment engine with the given execution capacity
// (workers <= 0 selects one worker per core) on a private scheduler.
func NewLab(workers int) *Lab { return lab.NewEngine(workers) }

// NewLabOn returns an experiment engine running its trials on s — the
// unified-plane wiring, where one scheduler (and one capacity knob)
// governs flow pacing and experiments alike.
func NewLabOn(s *Scheduler) *Lab { return lab.NewEngineOn(s) }

// New materialises a flow and attaches the elasticity manager.
func New(spec Spec, opts Options) (*Manager, error) {
	return core.NewManager(spec, opts)
}

// NewRegistry returns an empty flow registry; pass WithScheduler to run
// its pacers on a shared execution plane.
func NewRegistry(opts ...registry.Option) *Registry { return registry.New(opts...) }

// NewBuilder starts a flow definition.
func NewBuilder(name string) *Builder { return flow.NewBuilder(name) }

// DefaultClickstream builds the paper's Fig. 1 click-stream flow with
// adaptive controllers on all three layers.
func DefaultClickstream(peak float64) (Spec, error) {
	return flow.DefaultClickstream(peak)
}

// DefaultAdaptive returns the wizard's default adaptive-controller
// configuration for a layer with allocations of magnitude scale.
var DefaultAdaptive = flow.DefaultAdaptive

// DecodeSpec parses and validates a JSON flow definition.
func DecodeSpec(data []byte) (Spec, error) { return flow.Decode(data) }
