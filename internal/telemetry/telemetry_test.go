package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("reqs_total", "requests"); again != c {
		t.Fatal("Counter is not get-or-create")
	}
	g := r.Gauge("inflight", "in flight")
	g.Set(7)
	g.Inc()
	g.Dec()
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestVecInternsChildren(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("http_requests_total", "by route", "route", "code")
	a := v.With("/v1/flows", "200")
	b := v.With("/v1/flows", "200")
	if a != b {
		t.Fatal("same label values returned different children")
	}
	v.With("/v1/flows", "500").Add(2)
	a.Inc()
	snap := r.Snapshot()
	fam := snap.Find("http_requests_total")
	if fam == nil || len(fam.Metrics) != 2 {
		t.Fatalf("family = %+v, want 2 children", fam)
	}
}

func TestVecSteadyStateAllocs(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("c", "", "a", "b")
	v.With("x", "y") // intern
	allocs := testing.AllocsPerRun(100, func() {
		v.With("x", "y").Inc()
	})
	if allocs > 0 {
		t.Fatalf("steady-state With allocated %.1f/op, want 0", allocs)
	}
}

func TestLabelArityPanics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("c", "", "a")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label arity did not panic")
		}
	}()
	v.With("x", "y")
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("m", "")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []time.Duration{time.Millisecond, 10 * time.Millisecond})
	h.Observe(500 * time.Microsecond) // bucket 0
	h.Observe(time.Millisecond)       // bucket 0 (le is inclusive)
	h.Observe(2 * time.Millisecond)   // bucket 1
	h.Observe(time.Second)            // overflow
	snap := r.Snapshot().Find("lat").Metrics[0].Histogram
	want := []uint64{2, 1, 1}
	for i, w := range want {
		if snap.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, snap.Counts[i], w, snap.Counts)
		}
	}
	if snap.Count != 4 {
		t.Fatalf("count = %d, want 4", snap.Count)
	}
	if snap.MaxNanos != int64(time.Second) {
		t.Fatalf("max = %d, want 1s", snap.MaxNanos)
	}
	if mean := snap.Mean(); mean <= 0 || mean > time.Second {
		t.Fatalf("mean = %v out of range", mean)
	}
}

func TestGaugeFuncSums(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("workers", "", func() int64 { return 3 })
	r.GaugeFunc("workers", "", func() int64 { return 4 })
	fam := r.Snapshot().Find("workers")
	if len(fam.Metrics) != 1 || fam.Metrics[0].Value != 7 {
		t.Fatalf("gauge funcs = %+v, want one metric of 7", fam.Metrics)
	}
}

func TestSnapshotSortedByName(t *testing.T) {
	r := NewRegistry()
	r.Counter("zzz", "")
	r.Counter("aaa", "")
	r.Counter("mmm", "")
	snap := r.Snapshot()
	var names []string
	for _, f := range snap.Families {
		names = append(names, f.Name)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Fatalf("families not sorted: %v", names)
		}
	}
	if snap.At.IsZero() {
		t.Fatal("snapshot has zero timestamp")
	}
}

func TestWriteProm(t *testing.T) {
	r := NewRegistry()
	r.Counter("flows_total", "flows created").Add(3)
	r.CounterVec("http_requests_total", "", "route", "code").With(`a"b\c`, "200").Inc()
	h := r.Histogram("req_seconds", "latency", []time.Duration{time.Millisecond})
	h.Observe(500 * time.Microsecond)
	h.Observe(time.Second)

	var sb strings.Builder
	if err := r.Snapshot().WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	wants := []string{
		"# HELP flows_total flows created",
		"# TYPE flows_total counter",
		"flows_total 3",
		`http_requests_total{route="a\"b\\c",code="200"} 1`,
		"# TYPE req_seconds histogram",
		`req_seconds_bucket{le="0.001"} 1`,
		`req_seconds_bucket{le="+Inf"} 2`,
		"req_seconds_count 2",
		"req_seconds_sum 1.0005",
	}
	for _, want := range wants {
		if !strings.Contains(out, want) {
			t.Fatalf("prom output missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentInstrumentsRaceClean(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("c", "", "k")
	h := r.Histogram("h", "", nil)
	g := r.Gauge("g", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			keys := []string{"a", "b", "c"}
			for n := 0; n < 500; n++ {
				v.With(keys[n%3]).Inc()
				h.Observe(time.Duration(n) * time.Microsecond)
				g.Add(1)
				if n%50 == 0 {
					_ = r.Snapshot()
				}
			}
		}(i)
	}
	wg.Wait()
	var sum uint64
	for _, m := range r.Snapshot().Find("c").Metrics {
		sum += uint64(m.Value)
	}
	if sum != 8*500 {
		t.Fatalf("counter sum = %d, want %d", sum, 8*500)
	}
	if h.Count() != 8*500 {
		t.Fatalf("hist count = %d, want %d", h.Count(), 8*500)
	}
}

func TestTracerSamplingAndLifecycle(t *testing.T) {
	tr := NewTracer()
	tr.SetEvery(1) // sample everything

	tc := tr.Begin("flow-1")
	if tc == nil {
		t.Fatal("Begin with every=1 returned nil")
	}
	if tr.Active() != tc {
		t.Fatal("Active != begun trace")
	}
	tc.Mark(StageSchedFire)
	tc.Mark(StageController)
	tr.Active().AddAppend(1234)
	tr.Publish(tc, 42)
	if tr.Active() != nil {
		t.Fatal("Active not cleared after Publish")
	}

	// Wrong seq does not deliver.
	tr.MarkDelivered(41)
	if n := len(tr.Snapshot()); n != 0 {
		t.Fatalf("trace finalized on wrong seq: %d snapshots", n)
	}
	tr.MarkDelivered(42)
	snaps := tr.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("snapshots = %d, want 1", len(snaps))
	}
	s := snaps[0]
	if !s.Delivered || s.EventSeq != 42 || s.FlowID != "flow-1" {
		t.Fatalf("snapshot = %+v", s)
	}
	stageNames := map[string]bool{}
	for _, st := range s.Stages {
		stageNames[st.Name] = true
	}
	for _, want := range []string{StageSchedFire, StageController, StagePublish, StageDelivery, StageAppend} {
		if !stageNames[want] {
			t.Fatalf("missing stage %s in %+v", want, s.Stages)
		}
	}
	if s.AppendCount != 1 {
		t.Fatalf("append count = %d, want 1", s.AppendCount)
	}
}

func TestTracerStalePendingFinalizedUndelivered(t *testing.T) {
	tr := NewTracer()
	tr.SetEvery(1)
	a := tr.Begin("a")
	tr.Publish(a, 1)
	// Next sampled Begin evicts the stale pending trace as undelivered.
	b := tr.Begin("b")
	if b == nil {
		t.Fatal("second Begin returned nil")
	}
	snaps := tr.Snapshot()
	if len(snaps) != 1 || snaps[0].FlowID != "a" || snaps[0].Delivered {
		t.Fatalf("stale pending not finalized undelivered: %+v", snaps)
	}
	tr.Abandon(b)
	if len(tr.Snapshot()) != 2 {
		t.Fatal("Abandon did not finalize")
	}
}

func TestTracerSamplingRate(t *testing.T) {
	tr := NewTracer()
	tr.SetEvery(10)
	sampled := 0
	for i := 0; i < 100; i++ {
		if tc := tr.Begin("f"); tc != nil {
			sampled++
			tr.Abandon(tc)
		}
	}
	if sampled != 10 {
		t.Fatalf("sampled %d of 100 with every=10", sampled)
	}
	tr.SetEvery(0)
	if tr.Begin("f") != nil {
		t.Fatal("Begin with every=0 sampled")
	}
}

func TestTracerRingBounded(t *testing.T) {
	tr := NewTracer()
	tr.SetEvery(1)
	for i := 0; i < traceRingSize*2; i++ {
		tr.Abandon(tr.Begin("f"))
	}
	snaps := tr.Snapshot()
	if len(snaps) != traceRingSize {
		t.Fatalf("ring holds %d, want %d", len(snaps), traceRingSize)
	}
	// Newest first.
	if snaps[0].ID < snaps[len(snaps)-1].ID {
		t.Fatalf("snapshot not newest-first: %d .. %d", snaps[0].ID, snaps[len(snaps)-1].ID)
	}
}

func TestNilTraceMethodsNoop(t *testing.T) {
	var tc *Trace
	tc.Mark("x")
	tc.AddAppend(1)
	tr := NewTracer()
	tr.Publish(nil, 1)
	tr.Abandon(nil)
}

func TestSinceNanos(t *testing.T) {
	start := Now()
	if d := SinceNanos(start); d < 0 {
		t.Fatalf("SinceNanos went backwards: %d", d)
	}
}
