// Package telemetry is the control plane's self-metrics layer: a
// zero-dependency, allocation-conscious registry of counters, gauges and
// fixed-bucket histograms that every subsystem of the elasticity manager
// (httpapi, sched, eventbus, metricstore, registry, lab, persist)
// instruments itself with, plus a sampled per-tick tracer that follows one
// flow advance from scheduler fire to SSE delivery.
//
// The design constraints come from where the instruments sit:
//
//   - Hot-path writes are single atomic operations. Handle.Append must stay
//     at 0 allocs/op with its counter increment in place, and the
//     scheduler's per-execution accounting must cost a few nanoseconds —
//     so Counter.Inc, Gauge.Add and Histogram.Observe never lock, never
//     allocate, and never touch a map.
//   - Instruments are process-wide aggregates. A labeled family
//     (CounterVec) resolves each label combination to an interned child
//     once; steady-state lookups with an existing key do not allocate, and
//     callers on per-request paths cache the child.
//   - Exposition is pull-based and cold: Snapshot materialises the whole
//     registry (that path may allocate freely), and the snapshot renders as
//     JSON wire structs (api/v1) or Prometheus text (WriteProm).
//
// The package deliberately owns the wall clock for the rest of the
// instrumented code: Now and SinceNanos wrap time.Now so tick-driven
// packages can measure real durations without importing the banned
// time.Now themselves (the flowervet wallclock analyzer exempts
// internal/telemetry — measuring real time is this package's purpose).
//
// One process-wide registry, Default(), backs every built-in instrument;
// isolated registries can be built with NewRegistry for tests.
package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is a metric family's type.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE keyword for the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing counter. The zero value is ready
// to use; all methods are safe for concurrent use and allocation-free.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an integer gauge (a level, not a rate). The zero value is
// ready to use; all methods are allocation-free.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket duration distribution: counts[i] observations
// were at most bounds[i], with one extra overflow bucket. Observations are
// lock-free atomic increments; bounds are immutable after construction.
type Histogram struct {
	bounds []time.Duration
	counts []atomic.Uint64 // len(bounds)+1, last is overflow
	count  atomic.Uint64
	sum    atomic.Int64 // nanoseconds
	max    atomic.Int64 // nanoseconds
}

func newHistogram(bounds []time.Duration) *Histogram {
	b := append([]time.Duration(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	i := 0
	for i < len(h.bounds) && d > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Merge folds a locally-accumulated distribution into the histogram in a
// handful of atomic adds: counts must align with the histogram's buckets
// (len(bounds)+1 entries, the last being overflow). Hot loops that execute
// work in batches accumulate per-bucket counts on the stack and flush once
// per batch through Merge instead of paying one Observe per item.
func (h *Histogram) Merge(counts []uint64, sum, max time.Duration) {
	if len(counts) != len(h.counts) {
		panic(fmt.Sprintf("telemetry: Merge with %d buckets into a %d-bucket histogram", len(counts), len(h.counts)))
	}
	var total uint64
	for i, n := range counts {
		if n == 0 {
			continue
		}
		h.counts[i].Add(n)
		total += n
	}
	if total == 0 {
		return
	}
	h.count.Add(total)
	h.sum.Add(int64(sum))
	for {
		cur := h.max.Load()
		if int64(max) <= cur || h.max.CompareAndSwap(cur, int64(max)) {
			return
		}
	}
}

// snapshot freezes the histogram's state.
func (h *Histogram) snapshot() *HistogramSnapshot {
	s := &HistogramSnapshot{
		Bounds: h.bounds, // immutable, shared
		Counts: make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		s.Count += s.Counts[i]
	}
	s.SumNanos = h.sum.Load()
	s.MaxNanos = h.max.Load()
	return s
}

// DefLatencyBounds is the default histogram bucket ladder for request and
// flush latencies: 100µs to 10s, roughly 1-2.5-5 per decade.
var DefLatencyBounds = []time.Duration{
	100 * time.Microsecond, 250 * time.Microsecond, 500 * time.Microsecond,
	time.Millisecond, 2500 * time.Microsecond, 5 * time.Millisecond,
	10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond,
	time.Second, 2500 * time.Millisecond, 5 * time.Second, 10 * time.Second,
}

// family is one named metric family: a fixed kind, label names, and the
// interned children per label-value combination.
type family struct {
	name   string
	help   string
	kind   Kind
	labels []string
	bounds []time.Duration // histogram families only

	mu       sync.RWMutex
	order    []*child
	byKey    map[string]*child
	gaugeFns []func() int64 // callback gauges, appended after static children
}

// child is one metric of a family (one label-value combination).
type child struct {
	labelVals []string
	counter   *Counter
	gauge     *Gauge
	hist      *Histogram
}

// get interns the child for the given label values, creating it on first
// use. The key is the label values joined with 0x1f; a steady-state lookup
// of an existing child performs no allocation (map lookup via string([]byte)
// does not escape).
func (f *family) get(vals []string) *child {
	if len(vals) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: family %s has %d labels, got %d values", f.name, len(f.labels), len(vals)))
	}
	var scratch [128]byte
	key := scratch[:0]
	for i, v := range vals {
		if i > 0 {
			key = append(key, 0x1f)
		}
		key = append(key, v...)
	}
	f.mu.RLock()
	c := f.byKey[string(key)]
	f.mu.RUnlock()
	if c != nil {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c = f.byKey[string(key)]; c != nil {
		return c
	}
	c = &child{labelVals: append([]string(nil), vals...)}
	switch f.kind {
	case KindCounter:
		c.counter = &Counter{}
	case KindGauge:
		c.gauge = &Gauge{}
	case KindHistogram:
		c.hist = newHistogram(f.bounds)
	}
	f.byKey[string(key)] = c
	f.order = append(f.order, c)
	return c
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// With returns the counter for the given label values, interning it on
// first use. Cache the result on per-tick paths.
func (v *CounterVec) With(labelValues ...string) *Counter { return v.f.get(labelValues).counter }

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge { return v.f.get(labelValues).gauge }

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram { return v.f.get(labelValues).hist }

// Registry is a set of named metric families. Families are get-or-create:
// asking twice for the same name returns the same family, and asking with
// a conflicting kind or label set panics (a wiring bug, not a runtime
// condition).
type Registry struct {
	mu       sync.RWMutex
	order    []*family
	families map[string]*family
}

// NewRegistry returns an empty registry. Most code should use Default.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// defaultRegistry is the process-wide registry every built-in instrument
// registers against.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry: the one flowerd exposes at
// /v1/telemetry and every internal package instruments itself against.
func Default() *Registry { return defaultRegistry }

// familyFor interns a family, validating kind and labels on re-use.
func (r *Registry) familyFor(name, help string, kind Kind, labels []string, bounds []time.Duration) *family {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		if f = r.families[name]; f == nil {
			f = &family{
				name: name, help: help, kind: kind,
				labels: append([]string(nil), labels...),
				bounds: append([]time.Duration(nil), bounds...),
				byKey:  make(map[string]*child),
			}
			r.families[name] = f
			r.order = append(r.order, f)
		}
		r.mu.Unlock()
	}
	if f.kind != kind || len(f.labels) != len(labels) {
		panic(fmt.Sprintf("telemetry: family %s re-registered as %s with %d labels (was %s with %d)",
			name, kind, len(labels), f.kind, len(f.labels)))
	}
	for i := range labels {
		if f.labels[i] != labels[i] {
			panic(fmt.Sprintf("telemetry: family %s re-registered with label %q (was %q)", name, labels[i], f.labels[i]))
		}
	}
	return f
}

// Counter returns the registry's unlabeled counter with the given name,
// creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.familyFor(name, help, KindCounter, nil, nil).get(nil).counter
}

// CounterVec returns the labeled counter family with the given name.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.familyFor(name, help, KindCounter, labels, nil)}
}

// Gauge returns the unlabeled gauge with the given name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.familyFor(name, help, KindGauge, nil, nil).get(nil).gauge
}

// GaugeVec returns the labeled gauge family with the given name.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.familyFor(name, help, KindGauge, labels, nil)}
}

// GaugeFunc registers a callback gauge: fn is evaluated at snapshot time.
// Multiple registrations under one name sum — additive gauges let several
// instances (e.g. schedulers) contribute to one plane-wide level.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	f := r.familyFor(name, help, KindGauge, nil, nil)
	f.mu.Lock()
	f.gaugeFns = append(f.gaugeFns, fn)
	f.mu.Unlock()
}

// Histogram returns the unlabeled histogram with the given name; bounds
// apply on first registration only (nil selects DefLatencyBounds).
func (r *Registry) Histogram(name, help string, bounds []time.Duration) *Histogram {
	if bounds == nil {
		bounds = DefLatencyBounds
	}
	return r.familyFor(name, help, KindHistogram, nil, bounds).get(nil).hist
}

// HistogramVec returns the labeled histogram family with the given name.
func (r *Registry) HistogramVec(name, help string, bounds []time.Duration, labels ...string) *HistogramVec {
	if bounds == nil {
		bounds = DefLatencyBounds
	}
	return &HistogramVec{r.familyFor(name, help, KindHistogram, labels, bounds)}
}

// Snapshot is a frozen view of a whole registry.
type Snapshot struct {
	At       time.Time
	Families []FamilySnapshot
}

// FamilySnapshot is one family's frozen view.
type FamilySnapshot struct {
	Name    string
	Help    string
	Kind    Kind
	Labels  []string
	Metrics []MetricSnapshot
}

// MetricSnapshot is one metric's frozen view: Value for counters and
// gauges, Histogram for histograms.
type MetricSnapshot struct {
	LabelValues []string
	Value       float64
	Histogram   *HistogramSnapshot
}

// HistogramSnapshot is a frozen distribution. Bounds is shared and must
// not be mutated.
type HistogramSnapshot struct {
	Bounds   []time.Duration
	Counts   []uint64 // len(Bounds)+1; last is overflow
	Count    uint64
	SumNanos int64
	MaxNanos int64
}

// Mean returns the average observation (0 with no samples).
func (h *HistogramSnapshot) Mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return time.Duration(h.SumNanos / int64(h.Count))
}

// Snapshot materialises every family sorted by name. Families are locked
// one at a time: the snapshot is per-family consistent, which is all
// exposition needs. This is the cold path — it allocates freely.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{At: time.Now()}
	r.mu.RLock()
	fams := append([]*family(nil), r.order...)
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		fs := FamilySnapshot{Name: f.name, Help: f.help, Kind: f.kind, Labels: f.labels}
		f.mu.RLock()
		children := append([]*child(nil), f.order...)
		fns := append([]func() int64(nil), f.gaugeFns...)
		f.mu.RUnlock()
		for _, c := range children {
			m := MetricSnapshot{LabelValues: c.labelVals}
			switch f.kind {
			case KindCounter:
				m.Value = float64(c.counter.Value())
			case KindGauge:
				m.Value = float64(c.gauge.Value())
			case KindHistogram:
				m.Histogram = c.hist.snapshot()
			}
			fs.Metrics = append(fs.Metrics, m)
		}
		if len(fns) > 0 {
			var sum int64
			for _, fn := range fns {
				sum += fn()
			}
			// Callback gauges fold into one unlabeled row, summed with any
			// static child so a family can mix both.
			if len(fs.Metrics) == 1 && len(f.labels) == 0 {
				fs.Metrics[0].Value += float64(sum)
			} else {
				fs.Metrics = append(fs.Metrics, MetricSnapshot{Value: float64(sum)})
			}
		}
		snap.Families = append(snap.Families, fs)
	}
	return snap
}

// Find returns the family snapshot with the given name (nil when absent) —
// a convenience for tests and the self-scrape bridge.
func (s Snapshot) Find(name string) *FamilySnapshot {
	for i := range s.Families {
		if s.Families[i].Name == name {
			return &s.Families[i]
		}
	}
	return nil
}

// Now returns the wall clock. It exists so instrumented tick-driven
// packages (metricstore, persist) can measure real durations without
// calling time.Now themselves, which the flowervet wallclock analyzer
// bans outside this package and the other wall-time owners.
func Now() time.Time {
	return time.Now()
}

// SinceNanos returns the nanoseconds elapsed since start (a Now result).
func SinceNanos(start time.Time) int64 {
	return int64(time.Since(start))
}
