package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Stage names of a tick trace, in causal order. metric_append overlaps
// controller_decision rather than following it: appends happen inside the
// advance while the controller step runs, so its time is accumulated
// separately, not a segment of the timeline.
const (
	StageSchedFire  = "sched_fire"          // scheduler fire → flow lock acquired
	StageController = "controller_decision" // elasticity controller step
	StageAppend     = "metric_append"       // metric store appends (accumulated)
	StagePublish    = "event_publish"       // flow.advanced published on the bus
	StageDelivery   = "sse_delivery"        // publish → watch transport flushed it
)

// TraceStage is one timed segment of a tick trace.
type TraceStage struct {
	Name  string
	Nanos int64
}

// Trace follows one sampled flow advance from scheduler fire to SSE
// delivery. All methods are nil-safe: the unsampled common case costs one
// nil check, so instrumentation sites never branch on sampling themselves.
//
// A trace is owned by the advancing goroutine until Publish; afterwards
// only the Tracer (under its lock) touches it. AddAppend is atomic because
// appends from concurrently advancing flows can land while this trace is
// active — a sampled trace's append time is plane-wide during its window,
// which is the honest measurement for a shared store.
type Trace struct {
	ID     uint64
	FlowID string
	// At is the wall-clock begin time; mark is the running monotonic
	// reference for stage durations.
	At   time.Time
	mark time.Time

	EventSeq    uint64
	Stages      []TraceStage
	appendNanos atomic.Int64
	appendCount atomic.Int64
	Delivered   bool
}

// Mark closes the current stage: the time since Begin (or the previous
// Mark) is recorded under name.
func (t *Trace) Mark(name string) {
	if t == nil {
		return
	}
	now := time.Now()
	t.Stages = append(t.Stages, TraceStage{Name: name, Nanos: int64(now.Sub(t.mark))})
	t.mark = now
}

// AddAppend accumulates one metric-store append's duration into the trace.
// Safe to call from any goroutine while the trace is active.
func (t *Trace) AddAppend(nanos int64) {
	if t == nil {
		return
	}
	t.appendNanos.Add(nanos)
	t.appendCount.Add(1)
}

// TraceSnapshot is a frozen, completed (or abandoned) trace.
type TraceSnapshot struct {
	ID          uint64
	FlowID      string
	At          time.Time
	EventSeq    uint64
	Stages      []TraceStage
	AppendCount int64
	TotalNanos  int64
	Delivered   bool
}

// traceRingSize bounds how many completed traces the tracer retains.
const traceRingSize = 64

// defaultTraceEvery samples one advance in 64 — frequent enough that a
// paced flow set always has fresh traces, rare enough to be free.
const defaultTraceEvery = 64

// Tracer samples flow advances and carries each sampled trace through its
// pipeline stages. One tracer serves the whole process (see Traces); the
// fast path — the unsampled Begin — is one atomic add and a modulo.
type Tracer struct {
	every atomic.Int64
	n     atomic.Uint64

	// active is the trace currently being advanced, visible to the metric
	// store via Active for append accumulation.
	active atomic.Pointer[Trace]

	mu      sync.Mutex
	pending *Trace // published, awaiting SSE delivery
	ring    [traceRingSize]TraceSnapshot
	len     int
	next    int
}

// Traces is the process-wide tracer, paired with Default().
var Traces = NewTracer()

// NewTracer returns a tracer with the default sampling rate.
func NewTracer() *Tracer {
	tr := &Tracer{}
	tr.every.Store(defaultTraceEvery)
	return tr
}

// Every returns the current sampling rate (one advance in Every; <= 0
// means sampling is disabled).
func (tr *Tracer) Every() int { return int(tr.every.Load()) }

// SetEvery samples one advance in n (n == 1 samples every advance; n <= 0
// disables sampling).
func (tr *Tracer) SetEvery(n int) {
	tr.every.Store(int64(n))
	if n <= 0 {
		tr.active.Store(nil)
	}
}

// Begin starts a trace for this flow advance when the sampling counter
// selects it, returning nil otherwise. A previous trace still awaiting
// delivery is finalized as undelivered — at most one trace is in flight.
func (tr *Tracer) Begin(flowID string) *Trace {
	every := tr.every.Load()
	if every <= 0 {
		return nil
	}
	id := tr.n.Add(1)
	if every > 1 && id%uint64(every) != 1 {
		return nil
	}
	if tr.active.Load() != nil {
		return nil // previous sample still advancing (overlapping shards)
	}
	now := time.Now()
	t := &Trace{ID: id, FlowID: flowID, At: now, mark: now}
	tr.mu.Lock()
	if p := tr.pending; p != nil {
		tr.pending = nil
		tr.finishLocked(p)
	}
	tr.mu.Unlock()
	tr.active.Store(t)
	return t
}

// Active returns the trace currently being advanced, or nil. The metric
// store calls this on every append: one atomic load when no trace is live.
func (tr *Tracer) Active() *Trace {
	return tr.active.Load()
}

// Publish closes the event_publish stage, records the published event's
// bus sequence, and parks the trace to await SSE delivery.
func (tr *Tracer) Publish(t *Trace, seq uint64) {
	if t == nil {
		return
	}
	t.Mark(StagePublish)
	t.EventSeq = seq
	tr.active.CompareAndSwap(t, nil)
	tr.mu.Lock()
	if p := tr.pending; p != nil {
		tr.finishLocked(p)
	}
	tr.pending = t
	tr.mu.Unlock()
}

// Abandon finalizes a trace whose advance failed before publishing.
func (tr *Tracer) Abandon(t *Trace) {
	if t == nil {
		return
	}
	tr.active.CompareAndSwap(t, nil)
	tr.mu.Lock()
	tr.finishLocked(t)
	tr.mu.Unlock()
}

// MarkDelivered stamps the sse_delivery stage onto the pending trace when
// the watch transport flushes the event with the given bus sequence. The
// unmatched common case is one lock and two compares.
func (tr *Tracer) MarkDelivered(seq uint64) {
	tr.mu.Lock()
	if p := tr.pending; p != nil && p.EventSeq == seq {
		tr.pending = nil
		p.Mark(StageDelivery)
		p.Delivered = true
		tr.finishLocked(p)
	}
	tr.mu.Unlock()
}

// finishLocked freezes t into the ring. Caller holds tr.mu.
func (tr *Tracer) finishLocked(t *Trace) {
	appendNanos := t.appendNanos.Load()
	stages := make([]TraceStage, 0, len(t.Stages)+1)
	var total int64
	for _, st := range t.Stages {
		stages = append(stages, st)
		total += st.Nanos
	}
	stages = append(stages, TraceStage{Name: StageAppend, Nanos: appendNanos})
	snap := TraceSnapshot{
		ID: t.ID, FlowID: t.FlowID, At: t.At, EventSeq: t.EventSeq,
		Stages: stages, AppendCount: t.appendCount.Load(),
		TotalNanos: total, Delivered: t.Delivered,
	}
	tr.ring[tr.next] = snap
	tr.next = (tr.next + 1) % traceRingSize
	if tr.len < traceRingSize {
		tr.len++
	}
}

// Snapshot returns the completed traces, newest first.
func (tr *Tracer) Snapshot() []TraceSnapshot {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]TraceSnapshot, 0, tr.len)
	for i := 0; i < tr.len; i++ {
		idx := (tr.next - 1 - i + 2*traceRingSize) % traceRingSize
		out = append(out, tr.ring[idx])
	}
	return out
}
