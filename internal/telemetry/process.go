package telemetry

import "runtime"

// processStart anchors the uptime gauge.
var processStart = Now()

func init() {
	Default().GaugeFunc("flower_process_goroutines",
		"Goroutines in the process.",
		func() int64 { return int64(runtime.NumGoroutine()) })
	Default().GaugeFunc("flower_process_uptime_seconds",
		"Seconds since the process started.",
		func() int64 { return SinceNanos(processStart) / 1e9 })
}
