package telemetry

import (
	"bufio"
	"io"
	"math"
	"strconv"
	"strings"
)

// WriteProm renders the snapshot in the Prometheus text exposition format
// (version 0.0.4): one HELP/TYPE header per family, durations in seconds,
// histograms as cumulative <name>_bucket{le="..."} series plus _sum and
// _count. Returns the first write error.
func (s Snapshot) WriteProm(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range s.Families {
		if f.Help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.Name)
			bw.WriteByte(' ')
			bw.WriteString(promEscape(f.Help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.Name)
		bw.WriteByte(' ')
		bw.WriteString(f.Kind.String())
		bw.WriteByte('\n')
		for _, m := range f.Metrics {
			if f.Kind == KindHistogram && m.Histogram != nil {
				writePromHist(bw, f.Name, f.Labels, m.LabelValues, m.Histogram)
				continue
			}
			bw.WriteString(f.Name)
			writePromLabels(bw, f.Labels, m.LabelValues, "", "")
			bw.WriteByte(' ')
			bw.WriteString(promFloat(m.Value))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// writePromHist renders one histogram child: cumulative buckets in seconds,
// the +Inf bucket, _sum and _count.
func writePromHist(bw *bufio.Writer, name string, labels, vals []string, h *HistogramSnapshot) {
	var cum uint64
	for i, b := range h.Bounds {
		cum += h.Counts[i]
		bw.WriteString(name)
		bw.WriteString("_bucket")
		writePromLabels(bw, labels, vals, "le", promFloat(b.Seconds()))
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatUint(cum, 10))
		bw.WriteByte('\n')
	}
	cum += h.Counts[len(h.Bounds)]
	bw.WriteString(name)
	bw.WriteString("_bucket")
	writePromLabels(bw, labels, vals, "le", "+Inf")
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatUint(cum, 10))
	bw.WriteByte('\n')

	bw.WriteString(name)
	bw.WriteString("_sum")
	writePromLabels(bw, labels, vals, "", "")
	bw.WriteByte(' ')
	bw.WriteString(promFloat(float64(h.SumNanos) / 1e9))
	bw.WriteByte('\n')

	bw.WriteString(name)
	bw.WriteString("_count")
	writePromLabels(bw, labels, vals, "", "")
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatUint(h.Count, 10))
	bw.WriteByte('\n')
}

// writePromLabels renders {k="v",...}; extraKey/extraVal append one more
// pair (the histogram le label). Writes nothing when there are no pairs.
func writePromLabels(bw *bufio.Writer, labels, vals []string, extraKey, extraVal string) {
	if len(labels) == 0 && extraKey == "" {
		return
	}
	bw.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(l)
		bw.WriteString(`="`)
		bw.WriteString(promEscapeLabel(vals[i]))
		bw.WriteByte('"')
	}
	if extraKey != "" {
		if len(labels) > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(extraKey)
		bw.WriteString(`="`)
		bw.WriteString(extraVal)
		bw.WriteByte('"')
	}
	bw.WriteByte('}')
}

// promFloat renders a sample value the way Prometheus expects: integral
// values without an exponent, +Inf/-Inf/NaN spelled out.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promEscape escapes a HELP string (backslash and newline).
func promEscape(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// promEscapeLabel escapes a label value (backslash, quote, newline).
func promEscapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}
