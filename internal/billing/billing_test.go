package billing

import (
	"math"
	"testing"
	"time"

	"repro/internal/metricstore"
)

var t0 = time.Date(2017, 8, 28, 0, 0, 0, 0, time.UTC)

func TestDefaultPriceBookValid(t *testing.T) {
	if err := DefaultPriceBook().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := PriceBook{ShardHour: 0.01} // others zero
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid price book accepted")
	}
}

func TestHourlyCost(t *testing.T) {
	p := PriceBook{ShardHour: 0.015, VMHour: 0.10, WCUHour: 0.00065, RCUHour: 0.00013}
	a := Allocation{Shards: 2, VMs: 3, WCU: 1000, RCU: 500}
	want := 2*0.015 + 3*0.10 + 1000*0.00065 + 500*0.00013
	if got := p.HourlyCost(a); math.Abs(got-want) > 1e-12 {
		t.Fatalf("HourlyCost = %v, want %v", got, want)
	}
}

func TestMeterAccrual(t *testing.T) {
	alloc := Allocation{Shards: 1, VMs: 1, WCU: 100, RCU: 100}
	m, err := NewMeter(DefaultPriceBook(), AllocationFunc(func() Allocation { return alloc }), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		m.Tick(t0.Add(time.Duration(i)*time.Minute), time.Minute)
	}
	want := DefaultPriceBook().HourlyCost(alloc) // one hour at constant allocation
	if got := m.Total(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Total after 1h = %v, want %v", got, want)
	}
}

func TestMeterTracksChangingAllocationAndPeak(t *testing.T) {
	vms := 1
	m, err := NewMeter(DefaultPriceBook(), AllocationFunc(func() Allocation {
		return Allocation{Shards: 1, VMs: vms, WCU: 1, RCU: 1}
	}), nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Tick(t0, time.Hour)
	lowRate := m.PeakRunRate()
	vms = 10
	m.Tick(t0.Add(time.Hour), time.Hour)
	if m.PeakRunRate() <= lowRate {
		t.Fatalf("peak run rate did not rise: %v -> %v", lowRate, m.PeakRunRate())
	}
	cheap := DefaultPriceBook().HourlyCost(Allocation{Shards: 1, VMs: 1, WCU: 1, RCU: 1})
	rich := DefaultPriceBook().HourlyCost(Allocation{Shards: 1, VMs: 10, WCU: 1, RCU: 1})
	if got := m.Total(); math.Abs(got-(cheap+rich)) > 1e-9 {
		t.Fatalf("Total = %v, want %v", got, cheap+rich)
	}
}

func TestMeterPublishesMetrics(t *testing.T) {
	ms := metricstore.NewStore()
	m, err := NewMeter(DefaultPriceBook(), AllocationFunc(func() Allocation {
		return Allocation{Shards: 2, VMs: 2, WCU: 10, RCU: 10}
	}), ms)
	if err != nil {
		t.Fatal(err)
	}
	m.Tick(t0, time.Minute)
	d := map[string]string{"Meter": "flow"}
	if _, ok := storeLatest(ms, Namespace, MetricTickCost, d); !ok {
		t.Fatal("TickCost not published")
	}
	rr, ok := storeLatest(ms, Namespace, MetricRunRate, d)
	want := DefaultPriceBook().HourlyCost(Allocation{Shards: 2, VMs: 2, WCU: 10, RCU: 10})
	if !ok || math.Abs(rr.V-want) > 1e-12 {
		t.Fatalf("RunRate = %v, want %v", rr.V, want)
	}
}

func TestNewMeterValidation(t *testing.T) {
	if _, err := NewMeter(PriceBook{}, AllocationFunc(func() Allocation { return Allocation{} }), nil); err == nil {
		t.Fatal("invalid prices accepted")
	}
	if _, err := NewMeter(DefaultPriceBook(), nil, nil); err == nil {
		t.Fatal("nil reader accepted")
	}
}
