// Package billing implements the price book and cost meter of the
// reproduction. The paper's resource-share optimizer (§3.2, Eq. 4) needs a
// cost dimension c_d for every resource type across the three layers, and
// the cost-saving experiment (E5, motivated by [15]) needs running cost
// accounting of a managed flow.
//
// Prices are expressed per resource-hour, mirroring AWS's billing model
// for the three services the paper uses (shard-hours for Kinesis,
// instance-hours for EC2/Storm, capacity-unit-hours for DynamoDB).
package billing

import (
	"fmt"
	"time"

	"repro/internal/metricstore"
)

// Namespace is the metric namespace the meter publishes under.
const Namespace = "Billing"

// Metric names published each tick.
const (
	MetricTickCost       = "TickCost"       // dollars accrued this tick
	MetricCumulativeCost = "CumulativeCost" // dollars since start
	MetricRunRate        = "HourlyRunRate"  // dollars/hour at current allocation
)

// PriceBook maps resource kinds to a dollar price per resource-hour.
// Defaults follow the 2017-era us-east-1 public prices the paper's demo
// would have paid.
type PriceBook struct {
	ShardHour float64 // Kinesis shard-hour
	VMHour    float64 // EC2 m4.large-class instance-hour
	WCUHour   float64 // DynamoDB write-capacity-unit-hour
	RCUHour   float64 // DynamoDB read-capacity-unit-hour
}

// DefaultPriceBook returns 2017-era public on-demand prices (USD).
func DefaultPriceBook() PriceBook {
	return PriceBook{
		ShardHour: 0.015,
		VMHour:    0.10,
		WCUHour:   0.00065,
		RCUHour:   0.00013,
	}
}

// Validate rejects non-positive prices.
func (p PriceBook) Validate() error {
	if p.ShardHour <= 0 || p.VMHour <= 0 || p.WCUHour <= 0 || p.RCUHour <= 0 {
		return fmt.Errorf("billing: all prices must be positive: %+v", p)
	}
	return nil
}

// Allocation is a point-in-time resource allocation across the three
// layers of a flow.
type Allocation struct {
	Shards int
	VMs    int
	WCU    float64
	RCU    float64
}

// HourlyCost prices an allocation per hour.
func (p PriceBook) HourlyCost(a Allocation) float64 {
	return float64(a.Shards)*p.ShardHour +
		float64(a.VMs)*p.VMHour +
		a.WCU*p.WCUHour +
		a.RCU*p.RCUHour
}

// AllocationReader reports the current allocation; the simulation harness
// implements it over the live substrates.
type AllocationReader interface {
	Allocation() Allocation
}

// AllocationFunc adapts a function to AllocationReader.
type AllocationFunc func() Allocation

// Allocation calls f.
func (f AllocationFunc) Allocation() Allocation { return f() }

// Meter accrues cost over simulated time.
type Meter struct {
	prices PriceBook
	src    AllocationReader
	ms     *metricstore.Store
	dims   map[string]string

	// Per-tick publish handles, resolved once at construction (nil when ms
	// is nil).
	mTickCost *metricstore.Handle
	mCumCost  *metricstore.Handle
	mRunRate  *metricstore.Handle

	total float64
	peak  float64 // highest hourly run rate observed
}

// NewMeter builds a meter reading allocations from src each tick.
func NewMeter(prices PriceBook, src AllocationReader, ms *metricstore.Store) (*Meter, error) {
	if err := prices.Validate(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("billing: allocation reader is required")
	}
	m := &Meter{
		prices: prices,
		src:    src,
		ms:     ms,
		dims:   map[string]string{"Meter": "flow"},
	}
	if ms != nil {
		m.mTickCost = ms.MustHandle(Namespace, MetricTickCost, m.dims)
		m.mCumCost = ms.MustHandle(Namespace, MetricCumulativeCost, m.dims)
		m.mRunRate = ms.MustHandle(Namespace, MetricRunRate, m.dims)
	}
	return m, nil
}

// Total reports the cumulative cost in dollars.
func (m *Meter) Total() float64 { return m.total }

// PeakRunRate reports the highest hourly run rate seen.
func (m *Meter) PeakRunRate() float64 { return m.peak }

// Prices returns the meter's price book.
func (m *Meter) Prices() PriceBook { return m.prices }

// Tick accrues one step of cost at the current allocation.
func (m *Meter) Tick(now time.Time, step time.Duration) {
	rate := m.prices.HourlyCost(m.src.Allocation())
	cost := rate * step.Hours()
	m.total += cost
	if rate > m.peak {
		m.peak = rate
	}
	if m.ms != nil {
		m.mTickCost.MustAppend(now, cost)
		m.mCumCost.MustAppend(now, m.total)
		m.mRunRate.MustAppend(now, rate)
	}
}
