package persist

import (
	"repro/internal/metricstore"
	"repro/internal/timeseries"
)

// storeRaw reads a copy of a metric's full stored series through the
// handle tier, or nil when the metric has never been published.
func storeRaw(s *metricstore.Store, ns, name string, dims map[string]string) *timeseries.Series {
	h, ok := s.Lookup(ns, name, dims)
	if !ok {
		return nil
	}
	return h.Window(metricstore.WindowQuery{})
}
