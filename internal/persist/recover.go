package persist

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/lab"
	"repro/internal/registry"
	"repro/internal/sim"
)

// This file is the bridge between the storage engine (wal.go) and the
// live control plane: the op payloads, the ControlLog methods that make
// it a registry.WAL and a lab.WAL (both planes hook one log), state
// capture for checkpoints, and crash recovery — reduce the
// checkpoint+tail into final state, then materialise it through the
// registry and engine's ordinary entry points (with no WAL attached
// yet, so replay never re-logs itself).

// --- op payloads ---

// FlowCreateOp is the payload of OpFlowCreate.
type FlowCreateOp struct {
	ID   string    `json:"id"`
	Spec flow.Spec `json:"spec"`
	// StepNS and Seed are the sim.Options the flow materialises under —
	// the only options the control plane's create paths set.
	StepNS int64 `json:"step_ns,omitempty"`
	Seed   int64 `json:"seed,omitempty"`
}

// FlowPaceOp is the payload of OpFlowPace; Pace 0 records a stop.
type FlowPaceOp struct {
	ID         string  `json:"id"`
	Pace       float64 `json:"pace"`
	WallTickNS int64   `json:"wall_tick_ns,omitempty"`
}

// FlowTuneOp is the payload of OpFlowTune; nil fields were not touched.
type FlowTuneOp struct {
	ID       string   `json:"id"`
	Layer    string   `json:"layer"`
	Ref      *float64 `json:"ref,omitempty"`
	WindowNS *int64   `json:"window_ns,omitempty"`
	DeadBand *float64 `json:"dead_band,omitempty"`
}

// FlowDeleteOp is the payload of OpFlowDelete.
type FlowDeleteOp struct {
	ID string `json:"id"`
}

// ExperimentSubmitOp is the payload of OpExperimentSubmit; lab.Spec is
// already a declarative JSON document, so it rides whole.
type ExperimentSubmitOp struct {
	ID   string   `json:"id"`
	Spec lab.Spec `json:"spec"`
}

// ExperimentOp is the payload of OpExperimentCancel / OpExperimentDelete.
type ExperimentOp struct {
	ID string `json:"id"`
}

// ExperimentFinishOp is the payload of OpExperimentFinish.
type ExperimentFinishOp struct {
	ID     string `json:"id"`
	Status string `json:"status"`
}

// --- ControlLog as the planes' durability hook ---

// FlowCreated implements registry.WAL.
func (l *ControlLog) FlowCreated(id string, spec flow.Spec, opts sim.Options) error {
	return l.Append(OpFlowCreate, FlowCreateOp{ID: id, Spec: spec, StepNS: int64(opts.Step), Seed: opts.Seed})
}

// FlowPaced implements registry.WAL; pace 0 records a stop.
func (l *ControlLog) FlowPaced(id string, pace float64, wallTick time.Duration) error {
	return l.Append(OpFlowPace, FlowPaceOp{ID: id, Pace: pace, WallTickNS: int64(wallTick)})
}

// FlowTuned implements registry.WAL.
func (l *ControlLog) FlowTuned(id string, kind flow.LayerKind, ref, deadBand *float64, window *time.Duration) error {
	op := FlowTuneOp{ID: id, Layer: string(kind), Ref: ref, DeadBand: deadBand}
	if window != nil {
		ns := int64(*window)
		op.WindowNS = &ns
	}
	return l.Append(OpFlowTune, op)
}

// FlowDeleted implements registry.WAL.
func (l *ControlLog) FlowDeleted(id string) error {
	return l.Append(OpFlowDelete, FlowDeleteOp{ID: id})
}

// ExperimentSubmitted implements lab.WAL.
func (l *ControlLog) ExperimentSubmitted(id string, spec lab.Spec) error {
	return l.Append(OpExperimentSubmit, ExperimentSubmitOp{ID: id, Spec: spec})
}

// ExperimentCancelled implements lab.WAL.
func (l *ControlLog) ExperimentCancelled(id string) error {
	return l.Append(OpExperimentCancel, ExperimentOp{ID: id})
}

// ExperimentFinished implements lab.WAL.
func (l *ControlLog) ExperimentFinished(id string, status lab.Status) error {
	return l.Append(OpExperimentFinish, ExperimentFinishOp{ID: id, Status: string(status)})
}

// ExperimentDeleted implements lab.WAL.
func (l *ControlLog) ExperimentDeleted(id string) error {
	return l.Append(OpExperimentDelete, ExperimentOp{ID: id})
}

// --- checkpoint capture ---

// CaptureControlState snapshots the live control plane as a checkpoint
// document: every flow's definition, sim options, pacer state and
// controller tunings, plus every *unfinished* experiment. It takes
// registry and engine locks flow-by-flow (never the ControlLog's), so
// it is safe to call from CompactWith's capture callback.
func CaptureControlState(reg *registry.Registry, eng *lab.Engine) *ControlCheckpoint {
	ckpt := &ControlCheckpoint{}
	if reg != nil {
		for _, f := range reg.List() {
			fc := FlowCheckpoint{ID: f.ID()}
			opts := f.Options()
			fc.StepNS, fc.Seed = int64(opts.Step), opts.Seed
			f.View(func(m *core.Manager) {
				if data, err := json.Marshal(m.Spec()); err == nil {
					fc.Spec = data
				}
				loops := m.Harness().Loops
				if len(loops) > 0 {
					fc.Controllers = make(map[string]ControllerCheckpoint, len(loops))
					for kind, loop := range loops {
						fc.Controllers[string(kind)] = ControllerCheckpoint{
							Ref: loop.Ref(), WindowNS: int64(loop.Window()), DeadBand: loop.DeadBand(),
						}
					}
				}
			})
			if pace, wallTick, running := f.Pacing(); running {
				fc.Pace, fc.WallTickNS = pace, int64(wallTick)
			}
			ckpt.Flows = append(ckpt.Flows, fc)
		}
	}
	if eng != nil {
		for _, x := range eng.List() {
			switch x.Status() {
			case lab.StatusRunning, lab.StatusInterrupted:
				// Unfinished: must survive the next crash too.
			default:
				continue
			}
			data, err := json.Marshal(x.Spec())
			if err != nil {
				continue
			}
			ckpt.Experiments = append(ckpt.Experiments, ExperimentCheckpoint{ID: x.ID(), Spec: data})
		}
	}
	return ckpt
}

// --- recovery ---

// ResumableExperiment is an unfinished experiment recovery found; with
// -resume-experiments the daemon resubmits it instead of marking it
// interrupted.
type ResumableExperiment struct {
	ID   string
	Spec lab.Spec
}

// RecoveryReport summarises what RecoverControlPlane rebuilt.
type RecoveryReport struct {
	FlowsRestored          int
	PacersRearmed          int
	TunesApplied           int
	ExperimentsInterrupted int
	// Resumable lists the unfinished experiments handed back for
	// resubmission instead of being marked interrupted.
	Resumable []ResumableExperiment
	// ReplayedRecords counts WAL tail records folded into the state.
	ReplayedRecords int
	// TornTail reports that the WAL ended mid-record (tolerated).
	TornTail bool
	// Errors lists per-item failures (a spec that no longer
	// materialises, a pacer that could not arm). Recovery restores
	// everything else rather than failing the boot.
	Errors []string
}

// flowRebuild is one flow's reduced target state.
type flowRebuild struct {
	id       string
	spec     flow.Spec
	opts     sim.Options
	pace     float64
	wallTick time.Duration
	tunes    []FlowTuneOp
}

// RecoverControlPlane folds state (checkpoint + WAL tail) into final
// control-plane state and materialises it: flows re-created through
// reg.Create, controller tunings re-applied, pacers re-armed on the
// registry's scheduler, unfinished experiments marked interrupted via
// eng.Restore — or, with resume set, returned in Report.Resumable for
// the caller to resubmit once the WAL hook is attached. Call it before
// reg.SetWAL/eng.SetWAL so replay does not re-log itself.
func RecoverControlPlane(state *RecoveredState, reg *registry.Registry, eng *lab.Engine, resume bool) RecoveryReport {
	var rep RecoveryReport
	if state == nil {
		return rep
	}
	rep.TornTail = state.TornTail
	rep.ReplayedRecords = len(state.Tail)

	flows := map[string]*flowRebuild{}
	var flowOrder []string
	exps := map[string]lab.Spec{}
	var expOrder []string
	fail := func(format string, args ...any) {
		rep.Errors = append(rep.Errors, fmt.Sprintf(format, args...))
	}

	if ckpt := state.Checkpoint; ckpt != nil {
		for _, fc := range ckpt.Flows {
			fr := &flowRebuild{
				id:       fc.ID,
				opts:     sim.Options{Step: time.Duration(fc.StepNS), Seed: fc.Seed},
				pace:     fc.Pace,
				wallTick: time.Duration(fc.WallTickNS),
			}
			if err := json.Unmarshal(fc.Spec, &fr.spec); err != nil {
				fail("checkpoint flow %q: decode spec: %v", fc.ID, err)
				continue
			}
			// Controller tunings from the checkpoint become the first
			// tunes, fully specified.
			kinds := make([]string, 0, len(fc.Controllers))
			for kind := range fc.Controllers {
				kinds = append(kinds, kind)
			}
			sort.Strings(kinds)
			for _, kind := range kinds {
				cc := fc.Controllers[kind]
				ref, dead, win := cc.Ref, cc.DeadBand, cc.WindowNS
				fr.tunes = append(fr.tunes, FlowTuneOp{
					ID: fc.ID, Layer: kind, Ref: &ref, DeadBand: &dead, WindowNS: &win,
				})
			}
			flows[fc.ID] = fr
			flowOrder = append(flowOrder, fc.ID)
		}
		for _, xc := range ckpt.Experiments {
			var spec lab.Spec
			if err := json.Unmarshal(xc.Spec, &spec); err != nil {
				fail("checkpoint experiment %q: decode spec: %v", xc.ID, err)
				continue
			}
			exps[xc.ID] = spec
			expOrder = append(expOrder, xc.ID)
		}
	}

	// Fold the WAL tail, newest state wins.
	for _, rec := range state.Tail {
		switch rec.Op {
		case OpFlowCreate:
			var op FlowCreateOp
			if err := rec.Decode(&op); err != nil {
				fail("wal seq %d: %v", rec.Seq, err)
				continue
			}
			if _, dup := flows[op.ID]; !dup {
				flowOrder = append(flowOrder, op.ID)
			}
			flows[op.ID] = &flowRebuild{
				id: op.ID, spec: op.Spec,
				opts: sim.Options{Step: time.Duration(op.StepNS), Seed: op.Seed},
			}
		case OpFlowPace:
			var op FlowPaceOp
			if err := rec.Decode(&op); err != nil {
				fail("wal seq %d: %v", rec.Seq, err)
				continue
			}
			if fr, ok := flows[op.ID]; ok {
				fr.pace, fr.wallTick = op.Pace, time.Duration(op.WallTickNS)
			}
		case OpFlowTune:
			var op FlowTuneOp
			if err := rec.Decode(&op); err != nil {
				fail("wal seq %d: %v", rec.Seq, err)
				continue
			}
			if fr, ok := flows[op.ID]; ok {
				fr.tunes = append(fr.tunes, op)
			}
		case OpFlowDelete:
			var op FlowDeleteOp
			if err := rec.Decode(&op); err != nil {
				fail("wal seq %d: %v", rec.Seq, err)
				continue
			}
			delete(flows, op.ID)
		case OpExperimentSubmit:
			var op ExperimentSubmitOp
			if err := rec.Decode(&op); err != nil {
				fail("wal seq %d: %v", rec.Seq, err)
				continue
			}
			if _, dup := exps[op.ID]; !dup {
				expOrder = append(expOrder, op.ID)
			}
			exps[op.ID] = op.Spec
		case OpExperimentCancel:
			// A cancel that reached its finish record is handled below;
			// one that didn't leaves the experiment unfinished — it
			// recovers as interrupted like any other.
		case OpExperimentFinish, OpExperimentDelete:
			var op ExperimentOp
			if err := rec.Decode(&op); err != nil {
				fail("wal seq %d: %v", rec.Seq, err)
				continue
			}
			delete(exps, op.ID)
		default:
			fail("wal seq %d: unknown op %q (skipped)", rec.Seq, rec.Op)
		}
	}
	telWALReplayed.Add(uint64(len(state.Tail)))

	// Materialise, creation order preserved.
	for _, id := range flowOrder {
		fr, ok := flows[id]
		if !ok {
			continue // deleted later in the log
		}
		f, err := reg.Create(fr.id, fr.spec, fr.opts)
		if err != nil {
			fail("restore flow %q: %v", fr.id, err)
			continue
		}
		rep.FlowsRestored++
		for _, t := range fr.tunes {
			var window *time.Duration
			if t.WindowNS != nil {
				d := time.Duration(*t.WindowNS)
				window = &d
			}
			found, err := f.Tune(flow.LayerKind(t.Layer), t.Ref, t.DeadBand, window)
			if err != nil || !found {
				fail("restore flow %q: tune layer %q: found=%v err=%v", fr.id, t.Layer, found, err)
				continue
			}
			rep.TunesApplied++
		}
		if fr.pace > 0 {
			if err := f.StartPacing(fr.pace, fr.wallTick); err != nil {
				fail("restore flow %q: pace: %v", fr.id, err)
				continue
			}
			rep.PacersRearmed++
		}
	}
	for _, id := range expOrder {
		spec, ok := exps[id]
		if !ok {
			continue // finished or deleted later in the log
		}
		if resume {
			rep.Resumable = append(rep.Resumable, ResumableExperiment{ID: id, Spec: spec})
			continue
		}
		if eng == nil {
			fail("restore experiment %q: no engine", id)
			continue
		}
		if _, err := eng.Restore(id, spec); err != nil {
			fail("restore experiment %q: %v", id, err)
			continue
		}
		rep.ExperimentsInterrupted++
	}
	return rep
}
