package persist

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/injectfs"
)

func TestWALFramingRoundTrip(t *testing.T) {
	f := injectfs.New()
	w := NewWAL(f, WALOptions{})
	ops := []struct {
		op      string
		payload any
	}{
		{OpFlowCreate, FlowCreateOp{ID: "a"}},
		{OpFlowPace, FlowPaceOp{ID: "a", Pace: 60}},
		{OpFlowDelete, FlowDeleteOp{ID: "a"}},
	}
	for i, o := range ops {
		seq, err := w.Append(o.op, o.payload)
		if err != nil {
			t.Fatalf("Append %s: %v", o.op, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("Append %s seq = %d, want %d", o.op, seq, i+1)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	recs, err := ReadWAL(bytes.NewReader(f.Bytes()))
	if err != nil {
		t.Fatalf("ReadWAL: %v", err)
	}
	if len(recs) != len(ops) {
		t.Fatalf("read %d records, want %d", len(recs), len(ops))
	}
	for i, rec := range recs {
		if rec.Op != ops[i].op || rec.Seq != uint64(i+1) || rec.V != walVersion {
			t.Fatalf("record %d = {op %q seq %d v %d}", i, rec.Op, rec.Seq, rec.V)
		}
		if rec.T == 0 {
			t.Fatalf("record %d missing timestamp", i)
		}
	}
	var pace FlowPaceOp
	if err := recs[1].Decode(&pace); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if pace.ID != "a" || pace.Pace != 60 {
		t.Fatalf("decoded pace op = %+v", pace)
	}
}

func TestReadWALTornTail(t *testing.T) {
	f := injectfs.New()
	w := NewWAL(f, WALOptions{})
	for range 3 {
		if _, err := w.Append(OpFlowCreate, FlowCreateOp{ID: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	full := f.Bytes()
	// Cut the log mid-final-record at every possible torn length, from
	// "lost the final byte before the newline" back to "only the first
	// byte of the frame made it". Every cut must yield the two complete
	// records plus ErrTornTail. (Losing just the trailing newline is not
	// torn: the frame itself is intact and still parses.)
	lastStart := bytes.LastIndexByte(full[:len(full)-1], '\n') + 1
	for cut := len(full) - 2; cut > lastStart; cut-- {
		recs, err := ReadWAL(bytes.NewReader(full[:cut]))
		if !errors.Is(err, ErrTornTail) {
			t.Fatalf("cut %d: err = %v, want ErrTornTail", cut, err)
		}
		if len(recs) != 2 {
			t.Fatalf("cut %d: read %d records, want 2", cut, len(recs))
		}
	}
	// The untouched log reads clean.
	if recs, err := ReadWAL(bytes.NewReader(full)); err != nil || len(recs) != 3 {
		t.Fatalf("clean log: %d records, err %v", len(recs), err)
	}
}

func TestReadWALMidFileCorruptionFailsHard(t *testing.T) {
	f := injectfs.New()
	w := NewWAL(f, WALOptions{})
	for range 3 {
		if _, err := w.Append(OpFlowCreate, FlowCreateOp{ID: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	full := f.Bytes()
	// Flip one byte inside the SECOND record's envelope: the CRC catches
	// it, and because records follow, it is corruption — not a torn tail.
	lines := bytes.SplitAfter(full, []byte{'\n'})
	mut := append([]byte(nil), full...)
	off := len(lines[0]) + len(lines[1])/2
	mut[off] ^= 0x01
	_, err := ReadWAL(bytes.NewReader(mut))
	if err == nil {
		t.Fatal("mid-file corruption accepted")
	}
	if errors.Is(err, ErrTornTail) {
		t.Fatalf("mid-file corruption reported as torn tail: %v", err)
	}
}

func TestWALDegradesOnWriteFailure(t *testing.T) {
	f := injectfs.New()
	w := NewWAL(f, WALOptions{})
	if _, err := w.Append(OpFlowCreate, FlowCreateOp{ID: "ok"}); err != nil {
		t.Fatal(err)
	}
	f.FailWritesAfter(0, nil)
	if _, err := w.Append(OpFlowCreate, FlowCreateOp{ID: "lost"}); !errors.Is(err, ErrDegraded) {
		t.Fatalf("append on failing disk = %v, want ErrDegraded", err)
	}
	// Sticky: the fault stays even though the disk "recovered".
	f.FailWritesAfter(-1, nil)
	if _, err := w.Append(OpFlowCreate, FlowCreateOp{ID: "still-lost"}); !errors.Is(err, ErrDegraded) {
		t.Fatalf("append after degradation = %v, want sticky ErrDegraded", err)
	}
	if w.Err() == nil {
		t.Fatal("Err() nil on a degraded WAL")
	}
	if err := w.Close(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Close on degraded WAL = %v, want the sticky error", err)
	}
	// The surviving prefix replays clean: only acknowledged records exist.
	recs, err := ReadWAL(bytes.NewReader(f.Bytes()))
	if err != nil || len(recs) != 1 {
		t.Fatalf("surviving log: %d records, err %v", len(recs), err)
	}
}

func TestWALDegradesOnSyncFailure(t *testing.T) {
	f := injectfs.New()
	w := NewWAL(f, WALOptions{})
	f.FailSync(nil)
	if _, err := w.Append(OpFlowCreate, FlowCreateOp{ID: "x"}); !errors.Is(err, ErrDegraded) {
		t.Fatalf("append with failing fsync = %v, want ErrDegraded", err)
	}
}

func TestWALTornWriteLeavesRecoverableLog(t *testing.T) {
	f := injectfs.New()
	w := NewWAL(f, WALOptions{})
	if _, err := w.Append(OpFlowCreate, FlowCreateOp{ID: "acked"}); err != nil {
		t.Fatal(err)
	}
	// The next frame tears 10 bytes in — a crash mid-append.
	f.FailWritesAfter(10, nil)
	if _, err := w.Append(OpFlowCreate, FlowCreateOp{ID: "torn"}); !errors.Is(err, ErrDegraded) {
		t.Fatalf("torn append = %v, want ErrDegraded", err)
	}
	recs, err := ReadWAL(bytes.NewReader(f.Bytes()))
	if !errors.Is(err, ErrTornTail) {
		t.Fatalf("replaying torn log: err = %v, want ErrTornTail", err)
	}
	if len(recs) != 1 {
		t.Fatalf("replayed %d records, want the 1 acknowledged one", len(recs))
	}
}

func TestControlLogReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	l, state, err := OpenControlLog(dir, ControlLogOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if state.Checkpoint != nil || len(state.Tail) != 0 || state.TornTail {
		t.Fatalf("fresh dir recovered state: %+v", state)
	}
	for _, id := range []string{"a", "b"} {
		if err := l.Append(OpFlowCreate, FlowCreateOp{ID: id}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, state, err := OpenControlLog(dir, ControlLogOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(state.Tail) != 2 {
		t.Fatalf("recovered tail %d records, want 2", len(state.Tail))
	}
	if err := l2.Append(OpFlowCreate, FlowCreateOp{ID: "c"}); err != nil {
		t.Fatal(err)
	}
	if got := l2.Seq(); got != 3 {
		t.Fatalf("seq after reopen+append = %d, want 3 (monotonic across restarts)", got)
	}
}

func TestControlLogCompaction(t *testing.T) {
	dir := t.TempDir()
	l, _, err := OpenControlLog(dir, ControlLogOptions{NoSync: true, CompactEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b"} {
		if err := l.Append(OpFlowCreate, FlowCreateOp{ID: id}); err != nil {
			t.Fatal(err)
		}
	}
	if l.ShouldCompact() {
		t.Fatal("ShouldCompact before threshold")
	}
	if err := l.Append(OpFlowCreate, FlowCreateOp{ID: "c"}); err != nil {
		t.Fatal(err)
	}
	if !l.ShouldCompact() {
		t.Fatal("ShouldCompact at threshold = false")
	}
	if err := l.CompactWith(func() *ControlCheckpoint {
		return &ControlCheckpoint{Flows: []FlowCheckpoint{{ID: "a"}, {ID: "b"}, {ID: "c"}}}
	}); err != nil {
		t.Fatalf("CompactWith: %v", err)
	}
	if l.ShouldCompact() {
		t.Fatal("ShouldCompact true right after compaction")
	}
	// The WAL was rotated: everything under the watermark is gone.
	if recs, err := ReadWALFile(filepath.Join(dir, WALFileName)); err != nil || len(recs) != 0 {
		t.Fatalf("rotated WAL: %d records, err %v", len(recs), err)
	}
	// Post-compaction appends land in the rotated file with their
	// sequence numbers continuing past the watermark.
	if err := l.Append(OpFlowDelete, FlowDeleteOp{ID: "b"}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, state, err := OpenControlLog(dir, ControlLogOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if state.Checkpoint == nil || state.Checkpoint.LastSeq != 3 || len(state.Checkpoint.Flows) != 3 {
		t.Fatalf("recovered checkpoint: %+v", state.Checkpoint)
	}
	if len(state.Tail) != 1 || state.Tail[0].Op != OpFlowDelete || state.Tail[0].Seq != 4 {
		t.Fatalf("recovered tail: %+v", state.Tail)
	}
}

func TestControlLogToleratesTornTailOnOpen(t *testing.T) {
	dir := t.TempDir()
	l, _, err := OpenControlLog(dir, ControlLogOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b"} {
		if err := l.Append(OpFlowCreate, FlowCreateOp{ID: id}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash mid-append: append a torn half-frame by hand.
	walPath := filepath.Join(dir, WALFileName)
	fh, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fh.WriteString(`w1 00000000 {"v":1,"seq":3,"op":"flow.cre`); err != nil {
		t.Fatal(err)
	}
	fh.Close()

	l2, state, err := OpenControlLog(dir, ControlLogOptions{NoSync: true})
	if err != nil {
		t.Fatalf("open over torn tail: %v", err)
	}
	defer l2.Close()
	if !state.TornTail {
		t.Fatal("TornTail not flagged")
	}
	if len(state.Tail) != 2 {
		t.Fatalf("tail %d records, want the 2 complete ones", len(state.Tail))
	}
	// The next append must not collide with the torn fragment's claimed
	// sequence number space.
	if err := l2.Append(OpFlowCreate, FlowCreateOp{ID: "c"}); err != nil {
		t.Fatal(err)
	}
	if got := l2.Seq(); got != 3 {
		t.Fatalf("seq after torn-tail recovery = %d, want 3", got)
	}
}
