package persist

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/lab"
	"repro/internal/registry"
	"repro/internal/sched"
	"repro/internal/sim"
)

// newPlane builds a registry+engine pair on a small scheduler, cleaned up
// in reverse order.
func newPlane(t *testing.T) (*registry.Registry, *lab.Engine) {
	t.Helper()
	plane := sched.New(sched.Config{Shards: 2, Workers: 1})
	reg := registry.New(registry.WithScheduler(plane))
	eng := lab.NewEngineOn(plane)
	t.Cleanup(func() {
		eng.Close()
		reg.Close()
		plane.Close()
	})
	return reg, eng
}

func labSpec(name string) lab.Spec {
	return lab.Spec{
		Name:     name,
		Peak:     600,
		Duration: flow.Duration(time.Minute),
		Step:     flow.Duration(10 * time.Second),
		Workloads: []lab.WorkloadVariant{{
			Name:     "constant",
			Workload: flow.WorkloadSpec{Pattern: "constant", Base: 300},
		}},
	}
}

// ingestionRef reads the live ref of a flow's ingestion controller loop.
func ingestionRef(t *testing.T, f *registry.Flow) float64 {
	t.Helper()
	var ref float64
	f.View(func(m *core.Manager) {
		loop, ok := m.Harness().Loops[flow.Ingestion]
		if !ok {
			t.Fatal("no ingestion loop")
		}
		ref = loop.Ref()
	})
	return ref
}

// TestRecoverFromWALTail drives a live, WAL-hooked control plane through
// create/pace/tune/delete, "crashes" it, and recovers a fresh plane from
// the log alone: the kill -9 path minus the process boundary.
func TestRecoverFromWALTail(t *testing.T) {
	dir := t.TempDir()
	clog, _, err := OpenControlLog(dir, ControlLogOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}

	reg, eng := newPlane(t)
	reg.SetWAL(clog)
	eng.SetWAL(clog)

	spec, err := flow.DefaultClickstream(1500)
	if err != nil {
		t.Fatal(err)
	}
	a, err := reg.Create("alpha", spec, sim.Options{Step: 10 * time.Second, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create("beta", spec, sim.Options{Step: 10 * time.Second, Seed: 8}); err != nil {
		t.Fatal(err)
	}
	if err := a.StartPacing(42, 50*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	ref := 77.0
	if found, err := a.Tune(flow.Ingestion, &ref, nil, nil); err != nil || !found {
		t.Fatalf("Tune: found=%v err=%v", found, err)
	}
	if err := reg.Delete("beta"); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: abandon the plane without a graceful stop-pace
	// (the registry cleanup in newPlane stops pacers quietly, exactly as
	// a crash leaves no stop record).
	reg.SetWAL(nil)
	eng.SetWAL(nil)
	if err := clog.Close(); err != nil {
		t.Fatal(err)
	}

	// Reboot: a fresh plane recovered from the directory.
	clog2, state, err := OpenControlLog(dir, ControlLogOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer clog2.Close()
	if state.TornTail {
		t.Fatal("clean log flagged torn")
	}
	reg2, eng2 := newPlane(t)
	rep := RecoverControlPlane(state, reg2, eng2, false)
	if len(rep.Errors) != 0 {
		t.Fatalf("recovery errors: %v", rep.Errors)
	}
	if rep.FlowsRestored != 1 || rep.PacersRearmed != 1 || rep.TunesApplied != 1 {
		t.Fatalf("report = %+v", rep)
	}

	if _, ok := reg2.Get("beta"); ok {
		t.Fatal("deleted flow came back")
	}
	a2, ok := reg2.Get("alpha")
	if !ok {
		t.Fatal("flow alpha not recovered")
	}
	if got := ingestionRef(t, a2); got != ref {
		t.Fatalf("recovered ingestion ref = %v, want %v", got, ref)
	}
	pace, wallTick, running := a2.Pacing()
	if !running || pace != 42 || wallTick != 50*time.Millisecond {
		t.Fatalf("recovered pacing = (%v, %v, %v), want (42, 50ms, true)", pace, wallTick, running)
	}
	if opts := a2.Options(); opts.Seed != 7 || opts.Step != 10*time.Second {
		t.Fatalf("recovered options = %+v", opts)
	}
}

// TestRecoverCheckpointRoundTrip captures a live plane (including an
// interrupted experiment) as a checkpoint and recovers a fresh plane from
// the checkpoint alone.
func TestRecoverCheckpointRoundTrip(t *testing.T) {
	reg, eng := newPlane(t)
	spec, err := flow.DefaultClickstream(1500)
	if err != nil {
		t.Fatal(err)
	}
	f, err := reg.Create("alpha", spec, sim.Options{Step: 10 * time.Second, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.StartPacing(60, 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	ref, dead := 85.5, 7.5
	win := 4 * time.Minute
	if found, err := f.Tune(flow.Ingestion, &ref, &dead, &win); err != nil || !found {
		t.Fatalf("Tune: found=%v err=%v", found, err)
	}
	// An experiment recovered as interrupted is still unfinished — it
	// must be captured so it survives the *next* crash too.
	if _, err := eng.Restore("halfway", labSpec("halfway")); err != nil {
		t.Fatal(err)
	}

	ckpt := CaptureControlState(reg, eng)
	if len(ckpt.Flows) != 1 || len(ckpt.Experiments) != 1 {
		t.Fatalf("captured %d flows, %d experiments", len(ckpt.Flows), len(ckpt.Experiments))
	}

	reg2, eng2 := newPlane(t)
	rep := RecoverControlPlane(&RecoveredState{Checkpoint: ckpt}, reg2, eng2, false)
	if len(rep.Errors) != 0 {
		t.Fatalf("recovery errors: %v", rep.Errors)
	}
	f2, ok := reg2.Get("alpha")
	if !ok {
		t.Fatal("flow not recovered")
	}
	f2.View(func(m *core.Manager) {
		loop := m.Harness().Loops[flow.Ingestion]
		if loop.Ref() != ref || loop.DeadBand() != dead || loop.Window() != win {
			t.Errorf("recovered loop = (ref %v, dead %v, win %v)", loop.Ref(), loop.DeadBand(), loop.Window())
		}
	})
	if pace, _, running := f2.Pacing(); !running || pace != 60 {
		t.Fatalf("recovered pacing = (%v, %v)", pace, running)
	}
	x, ok := eng2.Get("halfway")
	if !ok {
		t.Fatal("experiment not recovered")
	}
	if x.Status() != lab.StatusInterrupted {
		t.Fatalf("recovered experiment status = %q, want interrupted", x.Status())
	}
	if rep.ExperimentsInterrupted != 1 {
		t.Fatalf("report = %+v", rep)
	}
}

// TestRecoverExperimentSemantics: a finished experiment leaves nothing to
// recover; an unfinished one recovers interrupted with every trial
// cancelled — or, with resume, is handed back for resubmission.
func TestRecoverExperimentSemantics(t *testing.T) {
	dir := t.TempDir()
	clog, _, err := OpenControlLog(dir, ControlLogOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	appendOps := []struct {
		op      string
		payload any
	}{
		{OpExperimentSubmit, ExperimentSubmitOp{ID: "done", Spec: labSpec("done")}},
		{OpExperimentSubmit, ExperimentSubmitOp{ID: "crashy", Spec: labSpec("crashy")}},
		{OpExperimentFinish, ExperimentFinishOp{ID: "done", Status: string(lab.StatusCompleted)}},
	}
	for _, o := range appendOps {
		if err := clog.Append(o.op, o.payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := clog.Close(); err != nil {
		t.Fatal(err)
	}

	open := func() *RecoveredState {
		t.Helper()
		l, state, err := OpenControlLog(dir, ControlLogOptions{NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		l.Close()
		return state
	}

	// Default: interrupted, all trials cancelled, terminal immediately.
	reg, eng := newPlane(t)
	rep := RecoverControlPlane(open(), reg, eng, false)
	if len(rep.Errors) != 0 {
		t.Fatalf("recovery errors: %v", rep.Errors)
	}
	if _, ok := eng.Get("done"); ok {
		t.Fatal("finished experiment recovered; its results died with the process")
	}
	x, ok := eng.Get("crashy")
	if !ok {
		t.Fatal("unfinished experiment not recovered")
	}
	if x.Status() != lab.StatusInterrupted {
		t.Fatalf("status = %q, want interrupted", x.Status())
	}
	select {
	case <-x.Done():
	default:
		t.Fatal("interrupted experiment's Done channel still open")
	}
	for _, tr := range x.Results().Trials {
		if tr.Status != lab.TrialCancelled {
			t.Fatalf("trial %q status = %q, want cancelled", tr.Name, tr.Status)
		}
	}

	// Resume: handed back, not restored.
	reg2, eng2 := newPlane(t)
	rep = RecoverControlPlane(open(), reg2, eng2, true)
	if _, ok := eng2.Get("crashy"); ok {
		t.Fatal("resumable experiment restored as interrupted")
	}
	if len(rep.Resumable) != 1 || rep.Resumable[0].ID != "crashy" {
		t.Fatalf("resumable = %+v", rep.Resumable)
	}
}
