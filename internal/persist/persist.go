// Package persist makes the metric store durable: an append-only journal
// of every datapoint, full-store snapshots, and replay of either back into
// a live store.
//
// The real Flower reads CloudWatch, whose data outlives any one process;
// this reproduction's metric store is in-memory, so cross-run workflows —
// learning Eq. 1 dependencies from last week's logs, re-rendering a
// dashboard after the run, feeding a recorded trace to the share analyzer —
// need the store to persist. Two complementary forms, the classic
// log+checkpoint pair:
//
//   - Journal: a line-delimited JSON log written through the store's
//     on-put hook as the simulation runs. Crash-safe up to the last flush,
//     append-only, replayable with Replay.
//   - Snapshot: a complete point-in-time dump of the store, much denser
//     than the journal (one record per series, not per point) and the
//     natural checkpoint format.
//
// Both formats are versioned plain JSON: debuggable with standard tools
// and forward-extensible.
package persist

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/metricstore"
	"repro/internal/telemetry"
	"repro/internal/timeseries"
)

// Process-wide durability telemetry: journal write volume, flush latency,
// and snapshot count — the signals that tell an operator what persistence
// costs the plane. Timing goes through the telemetry package's wall-clock
// helpers (this package is otherwise tick-driven and wall-clock-free).
var (
	telJournalRecords = telemetry.Default().Counter("flower_persist_journal_records_total",
		"Datapoints journaled.")
	telJournalBytes = telemetry.Default().Counter("flower_persist_journal_bytes_total",
		"Bytes appended to journals (before OS buffering).")
	telFlushSeconds = telemetry.Default().Histogram("flower_persist_flush_seconds",
		"Journal flush latency.", nil)
	telSnapshots = telemetry.Default().Counter("flower_persist_snapshots_total",
		"Store snapshots written.")
)

// journalVersion tags journal records for forward compatibility.
const journalVersion = 1

// Record is one journaled datapoint.
type Record struct {
	// V is the format version (see journalVersion).
	V int `json:"v"`
	// NS and Name identify the metric; Dims its dimension set.
	NS   string            `json:"ns"`
	Name string            `json:"name"`
	Dims map[string]string `json:"dims,omitempty"`
	// T is the observation time in nanoseconds since the Unix epoch
	// (compact, lossless, and sortable).
	T int64 `json:"t"`
	// Val is the observation value.
	Val float64 `json:"val"`
}

// Journal appends metric datapoints to a writer as line-delimited JSON.
// It is safe for concurrent use. Writes are buffered; call Flush (or
// Close, for file-backed journals) to make them durable.
type Journal struct {
	mu  sync.Mutex
	w   *bufio.Writer
	f   *os.File // non-nil when file-backed; synced on Close
	err error    // first write error, made sticky
	n   int      // records written
}

// NewJournal journals onto w.
func NewJournal(w io.Writer) *Journal {
	return &Journal{w: bufio.NewWriter(w)}
}

// OpenFileJournal opens (creating or appending to) a file-backed journal.
func OpenFileJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: open journal: %w", err)
	}
	j := NewJournal(f)
	j.f = f
	return j, nil
}

// Record appends one datapoint. The first error encountered is returned
// from every subsequent call (and from Flush/Close), so a full disk is not
// silently ignored.
func (j *Journal) Record(id metricstore.MetricID, t time.Time, v float64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	rec := Record{
		V: journalVersion, NS: id.Namespace, Name: id.Name, Dims: id.Dimensions,
		T: t.UnixNano(), Val: v,
	}
	data, err := json.Marshal(rec)
	if err != nil {
		j.err = err
		return err
	}
	data = append(data, '\n')
	if _, err := j.w.Write(data); err != nil {
		j.err = fmt.Errorf("persist: journal write: %w", err)
		return j.err
	}
	j.n++
	telJournalRecords.Inc()
	telJournalBytes.Add(uint64(len(data)))
	return nil
}

// Records reports how many datapoints have been journaled.
func (j *Journal) Records() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// Err returns the sticky error, if any.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Flush forces buffered records down to the underlying writer.
func (j *Journal) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	start := telemetry.Now()
	if err := j.w.Flush(); err != nil {
		j.err = err
		return err
	}
	telFlushSeconds.Observe(time.Duration(telemetry.SinceNanos(start)))
	return nil
}

// Close flushes and, for file-backed journals, syncs and closes the file.
func (j *Journal) Close() error {
	if err := j.Flush(); err != nil {
		if j.f != nil {
			j.f.Close()
		}
		return err
	}
	if j.f == nil {
		return nil
	}
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return fmt.Errorf("persist: journal sync: %w", err)
	}
	return j.f.Close()
}

// Attach wires the journal to a store: every Put is journaled from now on.
// Detach by calling store.SetOnPut(nil). Journal errors are sticky and
// surfaced by Flush/Close rather than interrupting the simulation.
func (j *Journal) Attach(store *metricstore.Store) {
	store.SetOnPut(func(id metricstore.MetricID, t time.Time, v float64) {
		_ = j.Record(id, t, v) // sticky; surfaced on Flush/Close
	})
}

// Replay reads a journal and applies every record to the store, returning
// the number of datapoints applied. Blank lines are skipped. A malformed
// *final* line is tolerated: an append-only journal cut off by a crash or
// kill legitimately ends mid-record, and recovery up to the last complete
// record is the expected WAL semantics. The applied count is returned
// together with a wrapped ErrTornTail (and the event counted in
// telemetry) so callers can log the truncation instead of losing it
// silently. Malformed content followed by more records — mid-file
// corruption — still aborts with an error identifying the offending
// line, as does an unsupported version.
func Replay(r io.Reader, store *metricstore.Store) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	applied := 0
	line := 0
	var pending error // parse failure awaiting the torn-tail / corruption verdict
	// Journals repeat a small set of metric identities record after
	// record; interning each identity once and appending through the
	// handle skips the per-record key rebuild the map-keyed Put would do.
	handles := map[string]*metricstore.Handle{}
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		if pending != nil {
			// Content after a malformed line: that line was not a torn
			// tail but corruption.
			return applied, pending
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			pending = fmt.Errorf("persist: journal line %d: %w", line, err)
			continue
		}
		if rec.V != journalVersion {
			return applied, fmt.Errorf("persist: journal line %d: unsupported version %d", line, rec.V)
		}
		id := metricstore.MetricID{Namespace: rec.NS, Name: rec.Name, Dimensions: rec.Dims}
		h, ok := handles[id.Key()]
		if !ok {
			var err error
			h, err = store.Handle(rec.NS, rec.Name, rec.Dims)
			if err != nil {
				return applied, fmt.Errorf("persist: journal line %d: %w", line, err)
			}
			handles[id.Key()] = h
		}
		if err := h.Append(time.Unix(0, rec.T), rec.Val); err != nil {
			return applied, fmt.Errorf("persist: journal line %d: %w", line, err)
		}
		applied++
	}
	if err := sc.Err(); err != nil {
		return applied, fmt.Errorf("persist: journal read: %w", err)
	}
	if pending != nil {
		telTornTails.Inc()
		return applied, fmt.Errorf("%v: %w", pending, ErrTornTail)
	}
	return applied, nil
}

// ReplayFile is Replay over a file.
func ReplayFile(path string, store *metricstore.Store) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("persist: open journal: %w", err)
	}
	defer f.Close()
	return Replay(f, store)
}

// snapshotVersion tags snapshot documents.
const snapshotVersion = 1

// snapshotDoc is the on-disk snapshot layout.
type snapshotDoc struct {
	Version int              `json:"version"`
	TakenAt int64            `json:"taken_at"` // Unix nanoseconds
	Series  []snapshotSeries `json:"series"`
}

type snapshotSeries struct {
	NS     string            `json:"ns"`
	Name   string            `json:"name"`
	Dims   map[string]string `json:"dims,omitempty"`
	Times  []int64           `json:"t"` // Unix nanoseconds, ascending
	Values []float64         `json:"v"`
}

// ErrEmptySnapshot reports a snapshot with no series.
var ErrEmptySnapshot = errors.New("persist: snapshot contains no series")

// Snapshot writes a complete point-in-time dump of the store. The store's
// columns are copied straight into the snapshot document — the timestamps
// are already unix nanoseconds — without materialising intermediate series.
func Snapshot(store *metricstore.Store, now time.Time, w io.Writer) error {
	doc := snapshotDoc{Version: snapshotVersion, TakenAt: now.UnixNano()}
	store.Each(func(id metricstore.MetricID, v timeseries.View) {
		ss := snapshotSeries{NS: id.Namespace, Name: id.Name, Dims: id.Dimensions}
		ss.Times, ss.Values = v.CopyColumns(
			make([]int64, 0, v.Len()), make([]float64, 0, v.Len()))
		doc.Series = append(doc.Series, ss)
	})
	enc := json.NewEncoder(w)
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("persist: snapshot encode: %w", err)
	}
	telSnapshots.Inc()
	return nil
}

// SnapshotFile writes a snapshot atomically: to a temp file in the target
// directory, synced, then renamed over the destination, so a crash never
// leaves a torn snapshot behind.
func SnapshotFile(store *metricstore.Store, now time.Time, path string) error {
	tmp, err := os.CreateTemp(dirOf(path), ".snapshot-*")
	if err != nil {
		return fmt.Errorf("persist: snapshot temp: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if err := Snapshot(store, now, tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: snapshot sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("persist: snapshot close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("persist: snapshot rename: %w", err)
	}
	return nil
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}

// Restore reads a snapshot into the store and returns the number of
// datapoints restored and the snapshot's capture time.
func Restore(r io.Reader, store *metricstore.Store) (points int, takenAt time.Time, err error) {
	var doc snapshotDoc
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return 0, time.Time{}, fmt.Errorf("persist: snapshot decode: %w", err)
	}
	if doc.Version != snapshotVersion {
		return 0, time.Time{}, fmt.Errorf("persist: unsupported snapshot version %d", doc.Version)
	}
	if len(doc.Series) == 0 {
		return 0, time.Time{}, ErrEmptySnapshot
	}
	for _, ss := range doc.Series {
		if len(ss.Times) != len(ss.Values) {
			return points, time.Time{}, fmt.Errorf("persist: series %s/%s: %d times vs %d values",
				ss.NS, ss.Name, len(ss.Times), len(ss.Values))
		}
		// One handle per series: the metric identity is interned once and
		// the datapoints append through it.
		h, err := store.Handle(ss.NS, ss.Name, ss.Dims)
		if err != nil {
			return points, time.Time{}, fmt.Errorf("persist: restore %s/%s: %w", ss.NS, ss.Name, err)
		}
		for i := range ss.Times {
			if err := h.Append(time.Unix(0, ss.Times[i]), ss.Values[i]); err != nil {
				return points, time.Time{}, fmt.Errorf("persist: restore %s/%s: %w", ss.NS, ss.Name, err)
			}
			points++
		}
	}
	return points, time.Unix(0, doc.TakenAt), nil
}

// RestoreFile is Restore over a file.
func RestoreFile(path string, store *metricstore.Store) (int, time.Time, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, time.Time{}, fmt.Errorf("persist: open snapshot: %w", err)
	}
	defer f.Close()
	return Restore(f, store)
}
