package persist

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/metricstore"
	"repro/internal/registry"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/timeseries"
)

func base() time.Time { return time.Unix(1700000000, 0).UTC() }

// fill puts a small deterministic data set into a fresh store.
func fill(t *testing.T) *metricstore.Store {
	t.Helper()
	s := metricstore.NewStore()
	dims := map[string]string{"StreamName": "clicks"}
	for i := 0; i < 50; i++ {
		at := base().Add(time.Duration(i) * 10 * time.Second)
		s.MustPut("Ingestion/Stream", "IncomingRecords", dims, at, float64(i*100))
		s.MustPut("Analytics/Compute", "CPUUtilization",
			map[string]string{"Topology": "clicks"}, at, 4.8+0.1*float64(i))
	}
	return s
}

// storesEqual compares every series of two stores.
func storesEqual(t *testing.T, a, b *metricstore.Store) {
	t.Helper()
	nsA, nsB := a.Namespaces(), b.Namespaces()
	if len(nsA) != len(nsB) {
		t.Fatalf("namespaces %v vs %v", nsA, nsB)
	}
	for _, ns := range nsA {
		idsA := a.ListMetrics(ns)
		if len(idsA) != len(b.ListMetrics(ns)) {
			t.Fatalf("%s: metric counts differ", ns)
		}
		for _, id := range idsA {
			sa := storeRaw(a, id.Namespace, id.Name, id.Dimensions)
			sb := storeRaw(b, id.Namespace, id.Name, id.Dimensions)
			if sa.Len() != sb.Len() {
				t.Fatalf("%s: %d vs %d points", id, sa.Len(), sb.Len())
			}
			for i := 0; i < sa.Len(); i++ {
				pa, pb := sa.At(i), sb.At(i)
				if !pa.T.Equal(pb.T) || pa.V != pb.V {
					t.Fatalf("%s point %d: %v=%v vs %v=%v", id, i, pa.T, pa.V, pb.T, pb.V)
				}
			}
		}
	}
}

func TestJournalReplayRoundTrip(t *testing.T) {
	src := fill(t)

	// Re-journal the whole store through a fresh journal by replaying its
	// snapshot through an attached store.
	var buf bytes.Buffer
	j := NewJournal(&buf)
	dst := metricstore.NewStore()
	j.Attach(dst)
	var snap bytes.Buffer
	if err := Snapshot(src, base(), &snap); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Restore(&snap, dst); err != nil {
		t.Fatal(err)
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	if j.Records() != 100 {
		t.Fatalf("journaled %d records, want 100", j.Records())
	}

	replayed := metricstore.NewStore()
	n, err := Replay(&buf, replayed)
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("replayed %d records, want 100", n)
	}
	storesEqual(t, src, replayed)
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	src := fill(t)
	var buf bytes.Buffer
	if err := Snapshot(src, base().Add(time.Hour), &buf); err != nil {
		t.Fatal(err)
	}
	dst := metricstore.NewStore()
	n, takenAt, err := Restore(&buf, dst)
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("restored %d points, want 100", n)
	}
	if !takenAt.Equal(base().Add(time.Hour)) {
		t.Fatalf("takenAt = %v", takenAt)
	}
	storesEqual(t, src, dst)
}

func TestFileJournalAppendAndReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "metrics.jsonl")

	write := func(vals []float64, offset int) {
		j, err := OpenFileJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		id := metricstore.MetricID{Namespace: "NS", Name: "M"}
		for i, v := range vals {
			at := base().Add(time.Duration(offset+i) * time.Second)
			if err := j.Record(id, at, v); err != nil {
				t.Fatal(err)
			}
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
	}
	write([]float64{1, 2, 3}, 0)
	write([]float64{4, 5}, 3) // append across process restarts

	store := metricstore.NewStore()
	n, err := ReplayFile(path, store)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("replayed %d, want 5", n)
	}
	series := storeRaw(store, "NS", "M", nil)
	want := []float64{1, 2, 3, 4, 5}
	got := series.Values()
	if len(got) != len(want) {
		t.Fatalf("values = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("values = %v, want %v", got, want)
		}
	}
}

func TestSnapshotFileAtomicWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.json")
	src := fill(t)
	if err := SnapshotFile(src, base(), path); err != nil {
		t.Fatal(err)
	}
	dst := metricstore.NewStore()
	if _, _, err := RestoreFile(path, dst); err != nil {
		t.Fatal(err)
	}
	storesEqual(t, src, dst)

	// No temp litter left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory not clean: %v", names)
	}
}

func TestReplayRejectsMidFileCorruption(t *testing.T) {
	store := metricstore.NewStore()
	if _, err := Replay(strings.NewReader(`{"v":99,"ns":"a","name":"b","t":1,"val":2}`+"\n"), store); err == nil {
		t.Error("unknown version accepted")
	}
	// Garbage followed by more records is corruption, not a torn tail.
	in := `{"v":1,"ns":"a","name":"b","t":1,"val":2}` + "\nBROKEN\n" +
		`{"v":1,"ns":"a","name":"b","t":2,"val":3}` + "\n"
	n, err := Replay(strings.NewReader(in), store)
	if err == nil {
		t.Error("mid-file garbage accepted")
	}
	if n != 1 {
		t.Errorf("applied %d before failure, want 1", n)
	}
}

func TestReplayToleratesTornTail(t *testing.T) {
	// A journal cut off mid-record by a crash replays up to the last
	// complete record — standard write-ahead-log recovery semantics. The
	// torn tail is reported via the ErrTornTail sentinel so callers can
	// distinguish "recovered after a crash" from a pristine replay, but
	// every complete record is still applied and counted.
	store := metricstore.NewStore()
	in := `{"v":1,"ns":"a","name":"b","t":1,"val":2}` + "\n" +
		`{"v":1,"ns":"a","name":"b","t":2,"val":3}` + "\n" +
		`{"v":1,"ns":"a","name":"b","t":3,"va` // torn by the crash
	n, err := Replay(strings.NewReader(in), store)
	if !errors.Is(err, ErrTornTail) {
		t.Fatalf("err = %v, want ErrTornTail", err)
	}
	if n != 2 {
		t.Errorf("applied %d, want 2 complete records", n)
	}
}

func TestReplaySkipsBlankLines(t *testing.T) {
	store := metricstore.NewStore()
	in := "\n" + `{"v":1,"ns":"a","name":"b","t":1,"val":2}` + "\n\n"
	n, err := Replay(strings.NewReader(in), store)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("applied %d, want 1", n)
	}
}

func TestRestoreRejectsBadDocs(t *testing.T) {
	store := metricstore.NewStore()
	if _, _, err := Restore(strings.NewReader("{"), store); err == nil {
		t.Error("truncated snapshot accepted")
	}
	if _, _, err := Restore(strings.NewReader(`{"version":9,"series":[{"ns":"a"}]}`), store); err == nil {
		t.Error("unknown version accepted")
	}
	if _, _, err := Restore(strings.NewReader(`{"version":1,"series":[]}`), store); err != ErrEmptySnapshot {
		t.Errorf("empty snapshot: err = %v, want ErrEmptySnapshot", err)
	}
	bad := `{"version":1,"series":[{"ns":"a","name":"b","t":[1,2],"v":[1]}]}`
	if _, _, err := Restore(strings.NewReader(bad), store); err == nil {
		t.Error("mismatched times/values accepted")
	}
}

func TestJournalStickyError(t *testing.T) {
	j := NewJournal(failWriter{})
	id := metricstore.MetricID{Namespace: "NS", Name: "M"}
	// The bufio layer absorbs small writes; force enough volume to hit the
	// underlying writer, then confirm the error is sticky.
	for i := 0; i < 10000 && j.Err() == nil; i++ {
		_ = j.Record(id, base(), 1)
	}
	if j.Err() == nil {
		t.Fatal("no error surfaced")
	}
	if err := j.Record(id, base(), 1); err == nil {
		t.Error("record after failure succeeded")
	}
	if err := j.Flush(); err == nil {
		t.Error("flush after failure succeeded")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, os.ErrClosed }

// TestJournalQuickRoundTrip drives random metric streams through
// journal→replay and asserts lossless reconstruction.
func TestJournalQuickRoundTrip(t *testing.T) {
	f := func(vals []float64, dimVal string) bool {
		src := metricstore.NewStore()
		var buf bytes.Buffer
		j := NewJournal(&buf)
		j.Attach(src)
		dims := map[string]string{"D": dimVal}
		for i, v := range vals {
			if math.IsNaN(v) {
				v = 0 // JSON cannot carry NaN; the store never produces one
			}
			src.MustPut("NS", "M", dims, base().Add(time.Duration(i)*time.Second), v)
		}
		if err := j.Flush(); err != nil {
			return false
		}
		dst := metricstore.NewStore()
		n, err := Replay(&buf, dst)
		if err != nil || n != len(vals) {
			return false
		}
		if len(vals) == 0 {
			return true // nothing journaled, nothing to compare
		}
		got := storeRaw(dst, "NS", "M", dims)
		if got.Len() != len(vals) {
			return false
		}
		for i := 0; i < got.Len(); i++ {
			want := vals[i]
			if math.IsNaN(want) {
				want = 0
			}
			if got.At(i).V != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestReplayIntoStoreWithRetention replays a journal into a store whose
// retention window is shorter than the journaled history: replay must
// succeed, apply every record, and leave each series pruned to the
// retention window — the "recover a bounded live store from an unbounded
// log" path a restarting daemon takes.
func TestReplayIntoStoreWithRetention(t *testing.T) {
	src := fill(t) // 50 points per series, 10s apart (490s of history)
	var buf bytes.Buffer
	j := NewJournal(&buf)
	dims := map[string]string{"StreamName": "clicks"}
	src.Each(func(id metricstore.MetricID, v timeseries.View) {
		for i := 0; i < v.Len(); i++ {
			p := v.At(i)
			if err := j.Record(id, p.T, p.V); err != nil {
				t.Fatal(err)
			}
		}
	})
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}

	dst := metricstore.NewStore()
	retention := 2 * time.Minute
	dst.SetRetention(retention)
	n, err := Replay(bytes.NewReader(buf.Bytes()), dst)
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("replayed %d records, want 100", n)
	}

	series := storeRaw(dst, "Ingestion/Stream", "IncomingRecords", dims)
	if series.Len() == 0 {
		t.Fatal("retention pruned the whole series")
	}
	if series.Len() >= 50 {
		t.Fatalf("retention kept all %d points; window is %v of a 490s history", series.Len(), retention)
	}
	last := series.At(series.Len() - 1)
	first := series.At(0)
	if last.T.Sub(first.T) > retention {
		t.Fatalf("surviving span %v exceeds retention %v", last.T.Sub(first.T), retention)
	}
	// The newest journaled point must have survived verbatim.
	wantLast := base().Add(49 * 10 * time.Second)
	if !last.T.Equal(wantLast) || last.V != 4900 {
		t.Fatalf("tail point = %v/%v, want %v/4900", last.T, last.V, wantLast)
	}
}

// TestSnapshotRestoreSchedulerPacedFlow round-trips the metric store of a
// flow created through the registry and advanced by the execution plane's
// pacer (the scheduler path), not by direct Run calls: snapshot the live
// store mid-lifecycle, restore into a fresh store, and require bit-equal
// series.
func TestSnapshotRestoreSchedulerPacedFlow(t *testing.T) {
	plane := sched.New(sched.Config{Shards: 2, Workers: 1})
	defer plane.Close()
	reg := registry.New(registry.WithScheduler(plane))
	defer reg.Close()

	spec, err := flow.DefaultClickstream(1500)
	if err != nil {
		t.Fatal(err)
	}
	spec.Name = "paced"
	f, err := reg.Create("paced", spec, sim.Options{Step: 10 * time.Second, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// Advance through the pacer (a scheduler job), not Run: 20 simulated
	// minutes per wall second at a 10ms tick.
	if err := f.StartPacing(1200, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Minute)
	for {
		ticks := 0
		f.View(func(m *core.Manager) { ticks = m.Harness().Result().Ticks })
		if ticks >= 30 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pacer never advanced the flow")
		}
		time.Sleep(2 * time.Millisecond)
	}
	f.StopPacing()

	var buf bytes.Buffer
	var now time.Time
	var src *metricstore.Store
	f.View(func(m *core.Manager) {
		src = m.Store()
		now = m.Harness().Clock.Now()
		if err := Snapshot(src, now, &buf); err != nil {
			t.Fatal(err)
		}
	})

	dst := metricstore.NewStore()
	points, takenAt, err := Restore(bytes.NewReader(buf.Bytes()), dst)
	if err != nil {
		t.Fatal(err)
	}
	if points == 0 {
		t.Fatal("restored no datapoints")
	}
	if !takenAt.Equal(now) {
		t.Fatalf("takenAt = %v, want %v", takenAt, now)
	}
	f.View(func(m *core.Manager) { storesEqual(t, m.Store(), dst) })
}
