package persist

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// The control-plane WAL makes the plane's *mutations* durable the same
// way the metric journal makes its *observations* durable: an
// append-only, line-delimited log plus a periodic checkpoint. Unlike the
// journal, WAL records are CRC-framed — a flow definition is worth more
// than a datapoint, so a torn or bit-rotted record must be detected, not
// replayed as garbage — and every record is appended (and fsynced)
// before the mutation is acknowledged to the caller.
//
// Frame format, one record per line:
//
//	w1 <crc32c-hex8> <envelope-json>\n
//
// where the CRC covers exactly the envelope bytes. The envelope carries
// a format version, a monotonic sequence number (the compaction
// watermark), a wall-clock timestamp and the op payload. Everything is
// plain JSON: debuggable with grep and jq, forward-extensible by adding
// fields.

// Control-plane durability telemetry. The journal metrics above count
// datapoints; these count mutations, the WAL's unit of work, plus the
// recovery-side counters the crashtest asserts on.
var (
	telWALRecords = telemetry.Default().Counter("flower_persist_wal_records_total",
		"Control-plane WAL records appended.")
	telWALBytes = telemetry.Default().Counter("flower_persist_wal_bytes_total",
		"Bytes appended to the control-plane WAL.")
	telWALSyncSeconds = telemetry.Default().Histogram("flower_persist_wal_sync_seconds",
		"Control-plane WAL append+sync latency.", nil)
	telWALAppendFailures = telemetry.Default().Counter("flower_persist_wal_append_failures_total",
		"Control-plane WAL appends that failed (the plane degrades to read-only).")
	telWALDegraded = telemetry.Default().Gauge("flower_persist_wal_degraded",
		"1 when a control-plane WAL has degraded to read-only after a write failure.")
	telWALCheckpoints = telemetry.Default().Counter("flower_persist_wal_checkpoints_total",
		"Control-plane checkpoints written (WAL compactions).")
	telWALReplayed = telemetry.Default().Counter("flower_persist_wal_replayed_records_total",
		"Control-plane WAL records replayed at recovery.")
	telWALTornTails = telemetry.Default().Counter("flower_persist_wal_torn_tails_total",
		"Control-plane WAL recoveries that found (and tolerated) a torn final record.")
	telTornTails = telemetry.Default().Counter("flower_persist_journal_torn_tails_total",
		"Metric-journal replays that ended in a torn final record.")
)

// ErrTornTail reports that an append-only log ended mid-record — the
// expected shape of a crash during an append. It is advisory: replay
// applied every complete record, and the torn fragment carried a
// mutation that was never acknowledged. Callers treat it as a warning,
// not a failure.
var ErrTornTail = errors.New("torn tail: log ends mid-record")

// ErrDegraded reports that the control-plane WAL can no longer make
// mutations durable (a write or sync failed). The plane flips read-only:
// every subsequent mutation is refused with this error — mapped to HTTP
// 503 by the API layer — while reads and watch streams keep serving.
// The condition is sticky until the process restarts against healthy
// storage; silently dropping durability is the one behaviour this
// explicitly replaces.
var ErrDegraded = errors.New("control plane degraded: WAL writes failing, mutations disabled")

// walVersion tags WAL envelopes for forward compatibility.
const walVersion = 1

// walMagic prefixes every WAL line; a file that doesn't open with it is
// not a control WAL.
const walMagic = "w1"

// crcTable is the Castagnoli polynomial, hardware-accelerated on the
// platforms that matter.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// WAL op codes: one per control-plane mutation.
const (
	OpFlowCreate       = "flow.create"
	OpFlowPace         = "flow.pace" // pace 0 records a stop
	OpFlowTune         = "flow.tune"
	OpFlowDelete       = "flow.delete"
	OpExperimentSubmit = "experiment.submit"
	OpExperimentCancel = "experiment.cancel"
	OpExperimentFinish = "experiment.finish"
	OpExperimentDelete = "experiment.delete"
)

// WALRecord is the envelope every WAL line carries.
type WALRecord struct {
	// V is the format version (see walVersion).
	V int `json:"v"`
	// Seq is the record's monotonic sequence number; the checkpoint's
	// LastSeq watermark is expressed in this space.
	Seq uint64 `json:"seq"`
	// T is the append time in nanoseconds since the Unix epoch.
	T int64 `json:"t"`
	// Op is the mutation kind (Op* constants); Data its payload.
	Op   string          `json:"op"`
	Data json.RawMessage `json:"data"`
}

// Decode unmarshals the record's payload into out.
func (r WALRecord) Decode(out any) error {
	if err := json.Unmarshal(r.Data, out); err != nil {
		return fmt.Errorf("persist: wal %s payload: %w", r.Op, err)
	}
	return nil
}

// SyncWriter is what a WAL writes through: an append-only byte sink
// with explicit durability. *os.File satisfies it; so does
// injectfs.File, which is how the fault-injection tests script short
// writes, sync errors and torn tails.
type SyncWriter interface {
	io.Writer
	Sync() error
	Close() error
}

// WALOptions configure a WAL.
type WALOptions struct {
	// NoSync skips the per-append fsync. Appends are still unbuffered
	// single writes; only the durability barrier is elided. For tests
	// and benchmarks — a production control plane wants every mutation
	// synced before it is acknowledged.
	NoSync bool
	// NextSeq seeds the sequence counter when continuing an existing
	// log: the last sequence number already used. The first record
	// appended gets NextSeq+1; zero starts a fresh log at 1.
	NextSeq uint64
}

// WAL appends CRC-framed control-plane records to a SyncWriter. Every
// Append is one unbuffered write followed by a sync (unless NoSync), so
// an acknowledged mutation is on stable storage. The first write or
// sync failure is sticky and wraps ErrDegraded: a WAL that lost a write
// refuses everything after it rather than leaving silent holes in the
// log. Safe for concurrent use.
type WAL struct {
	mu     sync.Mutex
	w      SyncWriter
	noSync bool
	seq    uint64 // last sequence number assigned
	n      int    // records appended by this instance
	err    error  // sticky, wraps ErrDegraded
}

// NewWAL returns a WAL appending to w.
func NewWAL(w SyncWriter, opts WALOptions) *WAL {
	return &WAL{w: w, noSync: opts.NoSync, seq: opts.NextSeq}
}

// OpenFileWAL opens (creating or appending to) a file-backed WAL.
func OpenFileWAL(path string, opts WALOptions) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: open wal: %w", err)
	}
	return NewWAL(f, opts), nil
}

// degrade records the WAL's first failure and flips it read-only.
// w.mu must be held.
func (w *WAL) degrade(cause error) error {
	w.err = fmt.Errorf("persist: %w: %w", ErrDegraded, cause)
	telWALAppendFailures.Inc()
	telWALDegraded.Set(1)
	return w.err
}

// Append frames op+payload as the next record and makes it durable.
// It returns the record's sequence number; on any failure the WAL
// degrades (sticky ErrDegraded) and the mutation must not be applied.
func (w *WAL) Append(op string, payload any) (uint64, error) {
	data, err := json.Marshal(payload)
	if err != nil {
		return 0, fmt.Errorf("persist: wal %s payload: %w", op, err)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	rec := WALRecord{
		V: walVersion, Seq: w.seq + 1,
		T:  telemetry.Now().UnixNano(),
		Op: op, Data: data,
	}
	frame, err := frameRecord(rec)
	if err != nil {
		return 0, err
	}

	start := telemetry.Now()
	// One Write call per frame: the kernel appends atomically enough
	// that a crash tears at most the final frame, which recovery
	// tolerates as ErrTornTail.
	if _, err := w.w.Write(frame); err != nil {
		return 0, w.degrade(fmt.Errorf("wal write: %w", err))
	}
	if !w.noSync {
		if err := w.w.Sync(); err != nil {
			return 0, w.degrade(fmt.Errorf("wal sync: %w", err))
		}
	}
	telWALSyncSeconds.Observe(time.Duration(telemetry.SinceNanos(start)))
	w.seq = rec.Seq
	w.n++
	telWALRecords.Inc()
	telWALBytes.Add(uint64(len(frame)))
	return rec.Seq, nil
}

// Seq returns the last sequence number assigned.
func (w *WAL) Seq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// Records reports how many records this instance appended.
func (w *WAL) Records() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// Err returns the sticky degradation error, if any.
func (w *WAL) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Close syncs and closes the underlying writer. A WAL that degraded
// reports its sticky error (the close still happens), so shutdown paths
// can propagate lost durability to their exit code.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		w.w.Close()
		return w.err
	}
	if err := w.w.Sync(); err != nil {
		w.w.Close()
		return w.degrade(fmt.Errorf("wal sync: %w", err))
	}
	if err := w.w.Close(); err != nil {
		return fmt.Errorf("persist: wal close: %w", err)
	}
	return nil
}

// frameRecord renders one record as its on-disk line: magic, CRC over
// the envelope bytes, envelope, newline.
func frameRecord(rec WALRecord) ([]byte, error) {
	env, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("persist: wal envelope: %w", err)
	}
	frame := make([]byte, 0, len(env)+16)
	frame = fmt.Appendf(frame, "%s %08x ", walMagic, crc32.Checksum(env, crcTable))
	frame = append(frame, env...)
	frame = append(frame, '\n')
	return frame, nil
}

// parseWALLine checks one line's magic and CRC and unmarshals its
// envelope.
func parseWALLine(line []byte) (WALRecord, error) {
	var rec WALRecord
	rest, ok := bytes.CutPrefix(line, []byte(walMagic+" "))
	if !ok {
		return rec, fmt.Errorf("bad magic")
	}
	crcHex, env, ok := bytes.Cut(rest, []byte(" "))
	if !ok || len(crcHex) != 8 {
		return rec, fmt.Errorf("bad frame")
	}
	var want uint32
	if _, err := fmt.Sscanf(string(crcHex), "%08x", &want); err != nil {
		return rec, fmt.Errorf("bad crc field: %w", err)
	}
	if got := crc32.Checksum(env, crcTable); got != want {
		return rec, fmt.Errorf("crc mismatch: %08x != %08x", got, want)
	}
	if err := json.Unmarshal(env, &rec); err != nil {
		return rec, fmt.Errorf("bad envelope: %w", err)
	}
	if rec.V != walVersion {
		return rec, fmt.Errorf("unsupported wal version %d", rec.V)
	}
	return rec, nil
}

// ReadWAL parses a control-plane WAL. A malformed *final* line — torn
// magic, failed CRC, truncated JSON, missing newline — is the expected
// residue of a crash mid-append: the complete records are returned
// together with a wrapped ErrTornTail. Malformed content *followed by
// more records* is mid-file corruption and fails hard, identifying the
// offending line.
func ReadWAL(r io.Reader) ([]WALRecord, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("persist: wal read: %w", err)
	}
	lines := bytes.Split(data, []byte{'\n'})
	// A well-formed log ends with '\n', leaving one empty trailing
	// element; drop it so "last line" means the last frame.
	if n := len(lines); n > 0 && len(lines[n-1]) == 0 {
		lines = lines[:n-1]
	}
	var recs []WALRecord
	for i, line := range lines {
		if len(line) == 0 {
			continue
		}
		rec, err := parseWALLine(line)
		if err != nil {
			if i == len(lines)-1 {
				return recs, fmt.Errorf("persist: wal line %d: %v: %w", i+1, err, ErrTornTail)
			}
			return recs, fmt.Errorf("persist: wal line %d: corrupt mid-file: %w", i+1, err)
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

// ReadWALFile is ReadWAL over a file; a missing file is an empty log.
func ReadWALFile(path string) ([]WALRecord, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("persist: open wal: %w", err)
	}
	defer f.Close()
	return ReadWAL(f)
}

// --- checkpoint ---

// controlCheckpointVersion tags checkpoint documents.
const controlCheckpointVersion = 1

// ControlCheckpoint is the periodic compaction target: the complete
// control-plane state (flow definitions, pacer state, controller
// tunings, unfinished experiments) at a sequence watermark. Recovery
// rebuilds from the checkpoint and replays only WAL records with
// Seq > LastSeq.
type ControlCheckpoint struct {
	Version int   `json:"version"`
	TakenAt int64 `json:"taken_at"` // Unix nanoseconds
	// LastSeq is the WAL watermark: every mutation with Seq <= LastSeq
	// is already reflected in this document.
	LastSeq     uint64                 `json:"last_seq"`
	Flows       []FlowCheckpoint       `json:"flows,omitempty"`
	Experiments []ExperimentCheckpoint `json:"experiments,omitempty"`
}

// ControllerCheckpoint is one controller loop's tunable state.
type ControllerCheckpoint struct {
	Ref      float64 `json:"ref"`
	WindowNS int64   `json:"window_ns"`
	DeadBand float64 `json:"dead_band"`
}

// FlowCheckpoint is one flow's durable state: definition, simulation
// options, pacer state, and the live controller tunings.
type FlowCheckpoint struct {
	ID string `json:"id"`
	// Spec is the flow definition (already JSON-native).
	Spec json.RawMessage `json:"spec"`
	// StepNS and Seed are the sim.Options the flow was materialised
	// under (the only options the control plane sets).
	StepNS int64 `json:"step_ns,omitempty"`
	Seed   int64 `json:"seed,omitempty"`
	// Pace/WallTickNS, when Pace > 0, re-arm the pacer at recovery.
	Pace       float64 `json:"pace,omitempty"`
	WallTickNS int64   `json:"wall_tick_ns,omitempty"`
	// Controllers maps layer kind to tuned controller state.
	Controllers map[string]ControllerCheckpoint `json:"controllers,omitempty"`
}

// ExperimentCheckpoint is one *unfinished* experiment: enough to mark
// it interrupted (or resubmit it) after a crash. Finished experiments
// are not checkpointed — their results lived in memory and are gone;
// see API.md's recovery semantics.
type ExperimentCheckpoint struct {
	ID   string          `json:"id"`
	Spec json.RawMessage `json:"spec"`
}

// WriteControlCheckpoint writes the checkpoint atomically: temp file in
// the target directory, synced, renamed over the destination — the same
// crash discipline SnapshotFile uses, so a crash never leaves a torn
// checkpoint.
func WriteControlCheckpoint(path string, ckpt *ControlCheckpoint) error {
	ckpt.Version = controlCheckpointVersion
	tmp, err := os.CreateTemp(dirOf(path), ".ckpt-*")
	if err != nil {
		return fmt.Errorf("persist: checkpoint temp: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	enc := json.NewEncoder(tmp)
	if err := enc.Encode(ckpt); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: checkpoint encode: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: checkpoint sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("persist: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("persist: checkpoint rename: %w", err)
	}
	return nil
}

// ReadControlCheckpoint reads a checkpoint; a missing file returns
// (nil, nil) — a data dir with no checkpoint yet is a fresh plane.
func ReadControlCheckpoint(path string) (*ControlCheckpoint, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("persist: open checkpoint: %w", err)
	}
	defer f.Close()
	var ckpt ControlCheckpoint
	if err := json.NewDecoder(f).Decode(&ckpt); err != nil {
		return nil, fmt.Errorf("persist: checkpoint decode: %w", err)
	}
	if ckpt.Version != controlCheckpointVersion {
		return nil, fmt.Errorf("persist: unsupported checkpoint version %d", ckpt.Version)
	}
	return &ckpt, nil
}

// --- control log: WAL + checkpoint under one directory ---

// File names inside a control-plane data directory.
const (
	WALFileName        = "control.wal"
	CheckpointFileName = "control.ckpt"
)

// DefaultCompactEvery is how many WAL records accumulate before
// ShouldCompact asks for a checkpoint.
const DefaultCompactEvery = 1024

// ControlLog is the durable control plane's storage engine: the WAL and
// its checkpoint under one data directory, with compaction that rotates
// acknowledged records into the checkpoint. It implements both
// registry.WAL and lab.WAL, so one handle hooks the whole plane.
type ControlLog struct {
	dir          string
	compactEvery int

	mu        sync.Mutex
	wal       *WAL
	noSync    bool
	sinceCkpt int // records appended since the last checkpoint
}

// RecoveredState is what OpenControlLog found on disk: the latest
// checkpoint (nil on a fresh directory), the WAL records newer than its
// watermark, and whether the WAL ended in a torn record.
type RecoveredState struct {
	Checkpoint *ControlCheckpoint
	Tail       []WALRecord
	TornTail   bool
}

// ControlLogOptions configure OpenControlLog.
type ControlLogOptions struct {
	// NoSync elides the per-append fsync (tests).
	NoSync bool
	// CompactEvery overrides DefaultCompactEvery; <= 0 keeps the default.
	CompactEvery int
}

// OpenControlLog opens (creating if needed) the control-plane log under
// dir and returns it together with the state recovered from any prior
// incarnation. A torn WAL tail is tolerated (counted in telemetry and
// flagged in the state); mid-file corruption fails the open — operator
// intervention beats silently dropping acknowledged mutations.
func OpenControlLog(dir string, opts ControlLogOptions) (*ControlLog, *RecoveredState, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("persist: data dir: %w", err)
	}
	ckpt, err := ReadControlCheckpoint(filepath.Join(dir, CheckpointFileName))
	if err != nil {
		return nil, nil, err
	}
	recs, err := ReadWALFile(filepath.Join(dir, WALFileName))
	state := &RecoveredState{Checkpoint: ckpt}
	switch {
	case errors.Is(err, ErrTornTail):
		state.TornTail = true
		telWALTornTails.Inc()
	case err != nil:
		return nil, nil, err
	}
	var lastSeq uint64
	if ckpt != nil {
		lastSeq = ckpt.LastSeq
	}
	nextSeq := lastSeq
	for _, rec := range recs {
		if rec.Seq > lastSeq {
			state.Tail = append(state.Tail, rec)
		}
		if rec.Seq > nextSeq {
			nextSeq = rec.Seq
		}
	}
	wal, err := OpenFileWAL(filepath.Join(dir, WALFileName), WALOptions{NoSync: opts.NoSync, NextSeq: nextSeq})
	if err != nil {
		return nil, nil, err
	}
	l := &ControlLog{dir: dir, compactEvery: opts.CompactEvery, wal: wal, noSync: opts.NoSync}
	if l.compactEvery <= 0 {
		l.compactEvery = DefaultCompactEvery
	}
	l.sinceCkpt = len(state.Tail)
	return l, state, nil
}

// Dir returns the data directory the log lives in.
func (l *ControlLog) Dir() string { return l.dir }

// Append frames and durably appends one mutation record.
func (l *ControlLog) Append(op string, payload any) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.wal.Append(op, payload); err != nil {
		return err
	}
	l.sinceCkpt++
	return nil
}

// Err returns the sticky degradation error, if any.
func (l *ControlLog) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.wal.Err()
}

// Seq returns the last WAL sequence number assigned.
func (l *ControlLog) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.wal.Seq()
}

// ShouldCompact reports whether enough records accumulated since the
// last checkpoint to be worth compacting.
func (l *ControlLog) ShouldCompact() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sinceCkpt >= l.compactEvery && l.wal.Err() == nil
}

// CompactWith compacts through a caller-supplied state capture: the
// current sequence number is observed *first*, then capture() runs (it
// may take registry/engine locks — the log's lock is NOT held), then
// the checkpoint is written at that watermark and the WAL rotated.
// Records appended concurrently with the capture keep Seq > watermark
// and survive the rotation; replay is idempotent, so a mutation both
// captured and retained is harmless.
func (l *ControlLog) CompactWith(capture func() *ControlCheckpoint) error {
	seq := l.Seq()
	ckpt := capture()
	ckpt.LastSeq = seq
	ckpt.TakenAt = telemetry.Now().UnixNano()
	return l.compact(ckpt)
}

// compact writes the checkpoint, then rewrites the WAL keeping only
// records past its watermark. Checkpoint-then-rotate is the crash-safe
// order: dying in between leaves pre-watermark records in the WAL,
// which recovery filters out by sequence number.
func (l *ControlLog) compact(ckpt *ControlCheckpoint) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.wal.Err(); err != nil {
		return err
	}
	walPath := filepath.Join(l.dir, WALFileName)
	recs, err := ReadWALFile(walPath)
	if err != nil && !errors.Is(err, ErrTornTail) {
		return err
	}
	if err := WriteControlCheckpoint(filepath.Join(l.dir, CheckpointFileName), ckpt); err != nil {
		return err
	}
	// Rewrite the tail atomically: temp, sync, rename, then swing the
	// append handle to the new file.
	tmp, err := os.CreateTemp(l.dir, ".wal-*")
	if err != nil {
		return fmt.Errorf("persist: wal rotate temp: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	// Retained records are rewritten verbatim — original sequence
	// numbers and timestamps — so the checkpoint watermark still
	// partitions them correctly on the next recovery.
	kept := 0
	for _, rec := range recs {
		if rec.Seq <= ckpt.LastSeq {
			continue
		}
		frame, err := frameRecord(rec)
		if err != nil {
			tmp.Close()
			return err
		}
		if _, err := tmp.Write(frame); err != nil {
			tmp.Close()
			return fmt.Errorf("persist: wal rotate write: %w", err)
		}
		kept++
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: wal rotate sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("persist: wal rotate close: %w", err)
	}
	if err := os.Rename(tmp.Name(), walPath); err != nil {
		return fmt.Errorf("persist: wal rotate rename: %w", err)
	}
	// The old handle points at the unlinked inode; reopen on the
	// rotated file, preserving the sequence counter.
	old := l.wal
	nwal, err := OpenFileWAL(walPath, WALOptions{NoSync: l.noSync, NextSeq: old.Seq()})
	if err != nil {
		return err
	}
	old.Close()
	l.wal = nwal
	l.sinceCkpt = kept
	telWALCheckpoints.Inc()
	return nil
}

// Close syncs and closes the WAL, reporting any sticky degradation so
// shutdown can propagate lost durability to the exit code.
func (l *ControlLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.wal.Close()
}
