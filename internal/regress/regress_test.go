package regress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestFitExactLine(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{7, 9, 11, 13, 15} // y = 2x + 5
	m, err := Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(m.Slope, 2, 1e-12) || !approx(m.Intercept, 5, 1e-12) {
		t.Fatalf("fit = %+v, want slope 2 intercept 5", m)
	}
	if !approx(m.R2, 1, 1e-12) || !approx(m.R, 1, 1e-12) {
		t.Fatalf("R=%v R2=%v, want 1", m.R, m.R2)
	}
	if !approx(m.Predict(10), 25, 1e-12) {
		t.Fatalf("Predict(10) = %v, want 25", m.Predict(10))
	}
	if m.N != 5 {
		t.Fatalf("N = %d", m.N)
	}
}

func TestFitNoisyLineRecoversParameters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Paper's Eq. 2 shape: CPU ≈ 0.0002·WriteCapacity + 4.8.
	n := 500
	x := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = rng.Float64() * 100000
		y[i] = 0.0002*x[i] + 4.8 + rng.NormFloat64()*0.5
	}
	m, err := Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(m.Slope, 0.0002, 2e-5) {
		t.Fatalf("slope = %v, want ≈0.0002", m.Slope)
	}
	if !approx(m.Intercept, 4.8, 0.3) {
		t.Fatalf("intercept = %v, want ≈4.8", m.Intercept)
	}
	if m.R < 0.99 {
		t.Fatalf("R = %v, want > 0.99", m.R)
	}
	if m.TStat < 10 {
		t.Fatalf("slope t-stat = %v, want strongly significant", m.TStat)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Fit([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Fatal("two points accepted")
	}
	if _, err := Fit([]float64{3, 3, 3}, []float64{1, 2, 3}); err == nil {
		t.Fatal("zero x-variance accepted")
	}
	if _, err := Fit([]float64{1, 2, math.NaN()}, []float64{1, 2, 3}); err == nil {
		t.Fatal("NaN accepted")
	}
}

func TestModelString(t *testing.T) {
	m := Model{Slope: 0.0002, Intercept: 4.8, R: 0.95, R2: 0.9, N: 550}
	s := m.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}

func TestPearsonMatchesFitR(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 200
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64() * 10
		y[i] = 3*x[i] + rng.NormFloat64()
	}
	m, err := Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if p := Pearson(x, y); !approx(p, m.R, 1e-12) {
		t.Fatalf("Pearson %v != Fit R %v", p, m.R)
	}
}

func TestCrossCorrelationFindsLag(t *testing.T) {
	// y is x delayed by 3 samples.
	n := 120
	rng := rand.New(rand.NewSource(3))
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(i)/7) + rng.NormFloat64()*0.05
	}
	y := make([]float64, n)
	for i := range y {
		if i >= 3 {
			y[i] = x[i-3]
		}
	}
	lag, corr := BestLag(x, y, 10)
	if lag != 3 {
		t.Fatalf("BestLag = %d (corr %v), want 3", lag, corr)
	}
	if corr < 0.9 {
		t.Fatalf("corr at best lag = %v, want > 0.9", corr)
	}
	// Symmetric case: x delayed relative to y gives negative lag.
	lag2, _ := BestLag(y, x, 10)
	if lag2 != -3 {
		t.Fatalf("reverse BestLag = %d, want -3", lag2)
	}
}

func TestCrossCorrelationEdges(t *testing.T) {
	if !math.IsNaN(CrossCorrelation([]float64{1, 2}, []float64{1, 2}, 5)) {
		t.Fatal("lag beyond series should be NaN")
	}
	if _, c := BestLag([]float64{1}, []float64{1}, 2); !math.IsNaN(c) {
		t.Fatal("degenerate BestLag should be NaN")
	}
}

// Property: fitting y = a·x + b exactly recovers a and b for random a, b.
func TestFitRecoveryProperty(t *testing.T) {
	f := func(aRaw, bRaw int16, seed int64) bool {
		a := float64(aRaw) / 100
		b := float64(bRaw) / 100
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, 10)
		y := make([]float64, 10)
		for i := range x {
			x[i] = rng.Float64()*100 + float64(i) // guarantees variance
			y[i] = a*x[i] + b
		}
		m, err := Fit(x, y)
		if err != nil {
			return false
		}
		return approx(m.Slope, a, 1e-6) && approx(m.Intercept, b, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: R² of any fit is at most 1, and residual error is non-negative.
func TestFitDiagnosticsBoundsProperty(t *testing.T) {
	f := func(ys []int8, seed int64) bool {
		if len(ys) < 3 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, len(ys))
		y := make([]float64, len(ys))
		for i := range ys {
			x[i] = float64(i) + rng.Float64()
			y[i] = float64(ys[i])
		}
		m, err := Fit(x, y)
		if err != nil {
			return true
		}
		return m.R2 <= 1+1e-9 && m.StdErr >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFitMultipleExact(t *testing.T) {
	// y = 1 + 2·x1 − 3·x2.
	X := [][]float64{
		{1, 1}, {2, 1}, {3, 5}, {4, 2}, {0, 7}, {6, 1}, {2, 9},
	}
	y := make([]float64, len(X))
	for i, row := range X {
		y[i] = 1 + 2*row[0] - 3*row[1]
	}
	m, err := FitMultiple(X, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, -3}
	for i, w := range want {
		if !approx(m.Coefficients[i], w, 1e-9) {
			t.Fatalf("coef[%d] = %v, want %v", i, m.Coefficients[i], w)
		}
	}
	if !approx(m.R2, 1, 1e-9) {
		t.Fatalf("R2 = %v, want 1", m.R2)
	}
	pred, err := m.Predict([]float64{10, 10})
	if err != nil || !approx(pred, 1+20-30, 1e-9) {
		t.Fatalf("Predict = %v err=%v, want -9", pred, err)
	}
	if _, err := m.Predict([]float64{1}); err == nil {
		t.Fatal("wrong predictor count accepted")
	}
}

func TestFitMultipleNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 300
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		X[i] = []float64{rng.Float64() * 10, rng.Float64() * 5}
		y[i] = 2 + 0.5*X[i][0] + 1.5*X[i][1] + rng.NormFloat64()*0.1
	}
	m, err := FitMultiple(X, y)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(m.Coefficients[1], 0.5, 0.05) || !approx(m.Coefficients[2], 1.5, 0.05) {
		t.Fatalf("coefs = %v", m.Coefficients)
	}
	if m.R2 < 0.98 {
		t.Fatalf("R2 = %v", m.R2)
	}
}

func TestFitMultipleErrors(t *testing.T) {
	if _, err := FitMultiple(nil, nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := FitMultiple([][]float64{{1}, {2}}, []float64{1}); err == nil {
		t.Fatal("row mismatch accepted")
	}
	if _, err := FitMultiple([][]float64{{1, 2}, {2, 3}, {3, 5}}, []float64{1, 2, 3}); err == nil {
		t.Fatal("too few observations accepted")
	}
	// Collinear predictors: x2 = 2·x1.
	X := [][]float64{{1, 2}, {2, 4}, {3, 6}, {4, 8}, {5, 10}}
	if _, err := FitMultiple(X, []float64{1, 2, 3, 4, 5}); err == nil {
		t.Fatal("collinear design accepted")
	}
	// Ragged matrix.
	if _, err := FitMultiple([][]float64{{1, 2}, {3}}, []float64{1, 2}); err == nil {
		t.Fatal("ragged matrix accepted")
	}
}

func TestFitMultipleMatchesSimpleFit(t *testing.T) {
	x := []float64{1, 3, 4, 7, 9, 12}
	y := []float64{2, 5, 9, 13, 18, 24}
	simple, err := Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	X := make([][]float64, len(x))
	for i, v := range x {
		X[i] = []float64{v}
	}
	multi, err := FitMultiple(X, y)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(multi.Coefficients[0], simple.Intercept, 1e-9) ||
		!approx(multi.Coefficients[1], simple.Slope, 1e-9) {
		t.Fatalf("multiple %v vs simple (%v, %v)", multi.Coefficients, simple.Intercept, simple.Slope)
	}
}
