package regress

import (
	"fmt"
	"math"
)

// MultipleModel is a fitted multiple linear regression
// y = β0 + Σ βj·xj + ε, used when a layer's resource usage depends on
// measures from more than one other layer.
type MultipleModel struct {
	Coefficients []float64 // β0 first, then one per predictor column
	R2           float64
	StdErr       float64
	N            int
}

// Predict evaluates the fitted hyperplane at the predictor vector x.
func (m MultipleModel) Predict(x []float64) (float64, error) {
	if len(x) != len(m.Coefficients)-1 {
		return 0, fmt.Errorf("regress: predict with %d predictors, model has %d", len(x), len(m.Coefficients)-1)
	}
	y := m.Coefficients[0]
	for j, v := range x {
		y += m.Coefficients[j+1] * v
	}
	return y, nil
}

// FitMultiple estimates OLS coefficients for y on the predictor matrix X
// (one row per observation) by solving the normal equations with
// Gaussian elimination and partial pivoting.
func FitMultiple(X [][]float64, y []float64) (MultipleModel, error) {
	n := len(X)
	if n != len(y) {
		return MultipleModel{}, fmt.Errorf("regress: X rows %d != y length %d", n, len(y))
	}
	if n == 0 {
		return MultipleModel{}, fmt.Errorf("regress: empty design matrix")
	}
	p := len(X[0])
	if p == 0 {
		return MultipleModel{}, fmt.Errorf("regress: zero predictors")
	}
	if n < p+2 {
		return MultipleModel{}, fmt.Errorf("regress: need at least %d observations for %d predictors, got %d", p+2, p, n)
	}
	for i, row := range X {
		if len(row) != p {
			return MultipleModel{}, fmt.Errorf("regress: ragged design matrix at row %d", i)
		}
		for _, v := range row {
			if bad(v) {
				return MultipleModel{}, fmt.Errorf("regress: non-finite predictor at row %d", i)
			}
		}
		if bad(y[i]) {
			return MultipleModel{}, fmt.Errorf("regress: non-finite response at row %d", i)
		}
	}

	// Build the augmented design with an intercept column: Z is n×(p+1).
	k := p + 1
	// Normal equations: (ZᵀZ)β = Zᵀy.
	ztz := make([][]float64, k)
	zty := make([]float64, k)
	for i := range ztz {
		ztz[i] = make([]float64, k)
	}
	zrow := make([]float64, k)
	for i := 0; i < n; i++ {
		zrow[0] = 1
		copy(zrow[1:], X[i])
		for a := 0; a < k; a++ {
			zty[a] += zrow[a] * y[i]
			for b := 0; b < k; b++ {
				ztz[a][b] += zrow[a] * zrow[b]
			}
		}
	}

	beta, err := solve(ztz, zty)
	if err != nil {
		return MultipleModel{}, err
	}

	// Diagnostics.
	var my float64
	for _, v := range y {
		my += v
	}
	my /= float64(n)
	var rss, tss float64
	for i := 0; i < n; i++ {
		pred := beta[0]
		for j := 0; j < p; j++ {
			pred += beta[j+1] * X[i][j]
		}
		r := y[i] - pred
		rss += r * r
		d := y[i] - my
		tss += d * d
	}
	r2 := 0.0
	if tss > 0 {
		r2 = 1 - rss/tss
	}
	return MultipleModel{
		Coefficients: beta,
		R2:           r2,
		StdErr:       math.Sqrt(rss / float64(n-k)),
		N:            n,
	}, nil
}

// solve performs in-place Gaussian elimination with partial pivoting on a
// copy of A·x = b.
func solve(A [][]float64, b []float64) ([]float64, error) {
	n := len(A)
	// Copy to avoid mutating the caller's matrices.
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n+1)
		copy(m[i], A[i])
		m[i][n] = b[i]
	}
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return nil, fmt.Errorf("regress: singular design matrix (collinear predictors)")
		}
		m[col], m[pivot] = m[pivot], m[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	// Back-substitute.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := m[i][n]
		for j := i + 1; j < n; j++ {
			sum -= m[i][j] * x[j]
		}
		x[i] = sum / m[i][i]
	}
	return x, nil
}
