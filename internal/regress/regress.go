// Package regress implements the statistical machinery behind Flower's
// Workload Dependency Analysis (§3.1): ordinary-least-squares linear
// regression ("Flower uses linear regression model to estimate
// relationships between resources in different layers", Eq. 1), Pearson
// correlation (the 0.95 coefficient quoted for Fig. 2), and lagged
// cross-correlation for discovering delayed dependencies between layers.
package regress

import (
	"fmt"
	"math"
)

// Model is a fitted simple linear regression y = Intercept + Slope·x + ε.
type Model struct {
	Intercept float64 // β0 in Eq. 1
	Slope     float64 // β1 in Eq. 1
	R         float64 // Pearson correlation between x and y
	R2        float64 // coefficient of determination
	StdErr    float64 // residual standard error
	SlopeSE   float64 // standard error of the slope estimate
	TStat     float64 // t statistic of the slope (slope / slopeSE)
	N         int     // observations used
}

// Predict evaluates the fitted line at x.
func (m Model) Predict(x float64) float64 { return m.Intercept + m.Slope*x }

// String renders the model the way the paper writes Eq. 2.
func (m Model) String() string {
	return fmt.Sprintf("y ≈ %.6g·x + %.4g (r=%.3f, R²=%.3f, n=%d)", m.Slope, m.Intercept, m.R, m.R2, m.N)
}

// Fit estimates a simple OLS regression of y on x. It requires at least
// three observations and non-zero variance in x.
func Fit(x, y []float64) (Model, error) {
	if len(x) != len(y) {
		return Model{}, fmt.Errorf("regress: length mismatch %d vs %d", len(x), len(y))
	}
	n := len(x)
	if n < 3 {
		return Model{}, fmt.Errorf("regress: need at least 3 observations, got %d", n)
	}
	var mx, my float64
	for i := 0; i < n; i++ {
		if bad(x[i]) || bad(y[i]) {
			return Model{}, fmt.Errorf("regress: non-finite observation at index %d", i)
		}
		mx += x[i]
		my += y[i]
	}
	mx /= float64(n)
	my /= float64(n)

	var sxx, syy, sxy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		syy += dy * dy
		sxy += dx * dy
	}
	if sxx == 0 {
		return Model{}, fmt.Errorf("regress: x has zero variance")
	}

	slope := sxy / sxx
	intercept := my - slope*mx

	// Residual sum of squares and derived diagnostics.
	var rss float64
	for i := 0; i < n; i++ {
		r := y[i] - (intercept + slope*x[i])
		rss += r * r
	}
	r2 := 0.0
	if syy > 0 {
		r2 = 1 - rss/syy
	}
	r := 0.0
	if syy > 0 {
		r = sxy / math.Sqrt(sxx*syy)
	}
	stderr := math.Sqrt(rss / float64(n-2))
	slopeSE := stderr / math.Sqrt(sxx)
	tstat := math.Inf(1)
	if slopeSE > 0 {
		tstat = slope / slopeSE
	}
	return Model{
		Intercept: intercept,
		Slope:     slope,
		R:         r,
		R2:        r2,
		StdErr:    stderr,
		SlopeSE:   slopeSE,
		TStat:     tstat,
		N:         n,
	}, nil
}

// Pearson computes the Pearson correlation coefficient of x and y, or NaN
// for degenerate inputs.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return math.NaN()
	}
	n := len(x)
	var mx, my float64
	for i := 0; i < n; i++ {
		mx += x[i]
		my += y[i]
	}
	mx /= float64(n)
	my /= float64(n)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// CrossCorrelation computes Pearson correlation between x and y with y
// shifted by lag samples: positive lag correlates x[i] with y[i+lag]
// (x leads y). It returns NaN when the overlap is shorter than 2.
func CrossCorrelation(x, y []float64, lag int) float64 {
	if lag >= 0 {
		if lag >= len(y) {
			return math.NaN()
		}
		n := len(x)
		if len(y)-lag < n {
			n = len(y) - lag
		}
		return Pearson(x[:n], y[lag:lag+n])
	}
	// Negative lag: y leads x.
	return CrossCorrelation(y, x, -lag)
}

// BestLag scans lags in [-maxLag, maxLag] and returns the lag with the
// highest absolute cross-correlation, together with that correlation.
// The dependency analyzer uses it to discover that ingestion-layer load
// leads analytics-layer CPU.
func BestLag(x, y []float64, maxLag int) (lag int, corr float64) {
	best := math.Inf(-1)
	for l := -maxLag; l <= maxLag; l++ {
		c := CrossCorrelation(x, y, l)
		if math.IsNaN(c) {
			continue
		}
		if a := math.Abs(c); a > best {
			best = a
			lag = l
			corr = c
		}
	}
	if math.IsInf(best, -1) {
		return 0, math.NaN()
	}
	return lag, corr
}

func bad(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }
