package query

import (
	"sync"
	"time"

	"repro/internal/eventbus"
	"repro/internal/metricstore"
	"repro/internal/registry"
)

// flowMatcher is an optional Source refinement: a source that answers
// "which flows match this glob" directly. resolveSelect uses it when
// present instead of filtering FlowIDs() per select — the hook PlanCache
// plugs its memoised resolution into.
type flowMatcher interface {
	FlowsMatching(glob string) []string
}

// PlanCache wraps a Source and memoises the planner's flow-glob
// resolution: which flow IDs each select glob matches. Planning used to
// re-walk every registered flow per request; with tens of thousands of
// flows that walk — and its glob match per flow — dominated plan time for
// the common case of a repeated dashboard query. The flow set only
// changes on flow creation and deletion, so the cache subscribes to those
// eventbus events and invalidates wholesale on each one; per-flow series
// resolution stays live (metrics appear at runtime without any flow
// lifecycle event), which keeps the cache safe by construction.
//
// A PlanCache is safe for concurrent use. Close releases its bus
// subscription, after which the cache degrades to a pass-through (every
// lookup recomputes) rather than serving sets nothing can invalidate.
type PlanCache struct {
	src Source
	sub *eventbus.Subscription

	mu       sync.Mutex
	gen      uint64 // bumped on every invalidation
	disabled bool   // no bus, or the bus closed: recompute every time
	flows    map[string][]string
}

// NewPlanCache wraps src with glob-resolution memoisation invalidated by
// flow.created/flow.deleted events on bus. A nil bus yields a permanent
// pass-through (valid, but caching nothing).
func NewPlanCache(src Source, bus *eventbus.Bus) *PlanCache {
	c := &PlanCache{src: src, flows: map[string][]string{}}
	if bus == nil {
		c.disabled = true
		return c
	}
	c.sub = bus.Subscribe(256, eventbus.Live, func(ev eventbus.Event) bool {
		return ev.Type == registry.EventFlowCreated || ev.Type == registry.EventFlowDeleted
	})
	return c
}

// Close releases the cache's bus subscription. The cache remains usable
// as a pass-through afterwards.
func (c *PlanCache) Close() {
	if c.sub == nil {
		return
	}
	c.mu.Lock()
	c.disabled = true
	c.flows = map[string][]string{}
	c.mu.Unlock()
	c.sub.Close()
}

// FlowIDs delegates to the wrapped source.
func (c *PlanCache) FlowIDs() []string { return c.src.FlowIDs() }

// WithFlow delegates to the wrapped source.
func (c *PlanCache) WithFlow(id string, fn func(store *metricstore.Store, now time.Time)) bool {
	return c.src.WithFlow(id, fn)
}

// FlowsMatching returns the flow IDs matching glob, from cache when the
// entry is still valid. Invalidation events (and any subscription drops —
// a drop means an unknown invalidation may have been missed) are drained
// first, so a lookup never returns a set older than the last observed
// lifecycle event.
func (c *PlanCache) FlowsMatching(glob string) []string {
	c.mu.Lock()
	c.drainLocked()
	if ids, ok := c.flows[glob]; ok {
		c.mu.Unlock()
		telPlanCacheHits.Inc()
		return ids
	}
	gen := c.gen
	disabled := c.disabled
	c.mu.Unlock()
	telPlanCacheMisses.Inc()

	// Compute outside the cache lock: FlowIDs takes registry locks, and a
	// slow walk must not block concurrent cached lookups.
	var ids []string
	for _, id := range c.src.FlowIDs() {
		if matchGlob(glob, id) {
			ids = append(ids, id)
		}
	}
	if ids == nil {
		ids = []string{}
	}
	if disabled {
		return ids
	}
	c.mu.Lock()
	// Store only if no invalidation raced the walk — a flow created or
	// deleted mid-walk may or may not be in ids, so caching it would pin a
	// set no event will ever invalidate again.
	if c.drainLocked(); c.gen == gen && !c.disabled {
		c.flows[glob] = ids
	}
	c.mu.Unlock()
	return ids
}

// drainLocked consumes pending invalidation events without blocking and
// clears the cache if any arrived (or were dropped); c.mu must be held.
func (c *PlanCache) drainLocked() {
	if c.disabled {
		return
	}
	invalidate := false
drain:
	for {
		select {
		case _, ok := <-c.sub.Events():
			invalidate = true
			if !ok {
				// Subscription closed (Close raced this lookup): no further
				// invalidations will ever arrive, so serving from cache
				// would mean serving stale sets forever.
				c.disabled = true
				break drain
			}
		default:
			break drain
		}
	}
	if c.sub.Dropped() > 0 {
		invalidate = true
	}
	if invalidate {
		c.flows = map[string][]string{}
		c.gen++
	}
}
