package query

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/metricstore"
	"repro/internal/telemetry"
)

// Plan is a compiled, resolved, ready-to-run query. Planning is greedy
// and cheap: resolve each select against the source (one flow lock per
// flow, handles interned once for the whole query), count the matches,
// and order a join so the most selective side evaluates first — if it
// streams zero points the other side is never touched, because the join
// is inner. The window and resample stages are pushed down to the View
// layer at execution time; Explain reports all of it without running.
type Plan struct {
	src  Source
	prog *program

	left, right side // right is zero-valued when there is no join

	rightFirst bool
	explain    Explain
}

// side is one resolved pipeline side.
type side struct {
	groups []flowGroup
	series int
}

// flowGroup is the per-flow evaluation unit: all of one flow's matched
// series, answered under one flow-lock acquisition.
type flowGroup struct {
	flow   string
	series []resolved
}

// resolved is one matched series: its identity and the interned handle.
type resolved struct {
	id metricstore.MetricID
	h  *metricstore.Handle
}

// Explain is the plan rendered for humans and tools: ordered steps with
// the planner's decisions (match counts, join order, pushdowns, fusions).
type Explain struct {
	Steps []ExplainStep `json:"steps"`
}

// ExplainStep is one explain line.
type ExplainStep struct {
	Op     string `json:"op"`
	Detail string `json:"detail"`
}

// Text renders the explain output as numbered lines.
func (e *Explain) Text() string {
	var b strings.Builder
	for i, s := range e.Steps {
		fmt.Fprintf(&b, "%2d. %-10s %s\n", i+1, s.Op, s.Detail)
	}
	return b.String()
}

// Prepare parses (when q is non-empty; otherwise ast is the query),
// compiles and plans in one call — the entry point the HTTP handler, the
// batch endpoint and the SDK route through. Every rejection is an *Error.
func Prepare(src Source, q string, ast *Pipeline) (*Plan, error) {
	start := telemetry.Now()
	pl, err := prepare(src, q, ast)
	telPlanSeconds.Observe(time.Duration(telemetry.SinceNanos(start)))
	if err != nil {
		telQueries.With("invalid").Inc()
	}
	return pl, err
}

func prepare(src Source, q string, ast *Pipeline) (*Plan, error) {
	if q != "" {
		parsed, err := Parse(q)
		if err != nil {
			return nil, err
		}
		ast = parsed
	}
	prog, err := Compile(ast)
	if err != nil {
		return nil, err
	}
	pl := &Plan{src: src, prog: prog}
	pl.left, err = resolveSelect(src, prog.sel)
	if err != nil {
		return nil, err
	}
	if prog.join != nil {
		pl.right, err = resolveSelect(src, prog.join.right.sel)
		if err != nil {
			return nil, fmt.Errorf("join side: %w", err)
		}
		// Greedy order: the side matching fewer series runs first; an
		// inner join with an empty side is empty, so the other side is
		// skipped entirely.
		pl.rightFirst = pl.right.series < pl.left.series
	}
	return pl, nil
}

// Explain returns the plan description without executing anything. The
// step list is built on demand: a plan that only runs never pays for its
// own description.
func (p *Plan) Explain() *Explain {
	if len(p.explain.Steps) == 0 {
		p.buildExplain()
	}
	return &p.explain
}

// resolveSelect matches one select stage against the source: flows by
// glob, then each flow's published metrics by ns/name glob and dimension
// subset, interning one handle per matched series. A source that
// implements flowMatcher (the PlanCache) answers the flow-glob step
// directly — memoised across queries — so only the per-flow series
// resolution runs per request.
func resolveSelect(src Source, sel selectSpec) (side, error) {
	var sd side
	exactNS := sel.ns != "" && !strings.ContainsRune(sel.ns, '*')
	flowIDs, prefiltered := []string(nil), false
	if fm, ok := src.(flowMatcher); ok {
		flowIDs, prefiltered = fm.FlowsMatching(sel.flow), true
	} else {
		flowIDs = src.FlowIDs()
	}
	for _, flowID := range flowIDs {
		if !prefiltered && !matchGlob(sel.flow, flowID) {
			continue
		}
		var g flowGroup
		var overflow error
		src.WithFlow(flowID, func(store *metricstore.Store, _ time.Time) {
			listNS := ""
			if exactNS {
				listNS = sel.ns
			}
			for _, id := range store.ListMetrics(listNS) {
				if !matchGlob(sel.ns, id.Namespace) || !matchGlob(sel.name, id.Name) || !dimsMatch(sel.dims, id.Dimensions) {
					continue
				}
				if sd.series+len(g.series) >= MaxSeries {
					overflow = errf("select matches more than %d series; narrow flow/ns/name", MaxSeries)
					return
				}
				h, ok := store.Lookup(id.Namespace, id.Name, id.Dimensions) //flowervet:allow hotpath(plan-time resolution interns each matched series once per query, not per row; execution reuses the handles)
				if !ok {
					continue
				}
				g.series = append(g.series, resolved{id: id, h: h})
			}
		})
		if overflow != nil {
			return side{}, overflow
		}
		if len(g.series) > 0 {
			g.flow = flowID
			sd.groups = append(sd.groups, g)
			sd.series += len(g.series)
		}
	}
	return sd, nil
}

// dimsMatch reports whether every required dimension is present with the
// exact value (the metric may carry extra dimensions).
func dimsMatch(want, have map[string]string) bool {
	for k, v := range want {
		if have[k] != v {
			return false
		}
	}
	return true
}

// --- explain construction ---

func (p *Plan) buildExplain() {
	p.addSideExplain("", p.prog, p.left)
	if js := p.prog.join; js != nil {
		order := "left"
		a, b := p.left.series, p.right.series
		if p.rightFirst {
			order = "right"
			a, b = b, a
		}
		mode := "dual-column (l, r)"
		if js.expr != nil {
			mode = "expr over (l, r)"
		}
		p.step("join", fmt.Sprintf("period %v, %s; evaluate %s side first (%d ≤ %d series), short-circuit the other if it streams nothing; inner merge on epoch-aligned bucket starts",
			js.period, mode, order, a, b))
		p.addSideExplain("join side: ", js.right, p.right)
	}
	fused := p.fusedAgg()
	for _, op := range p.prog.post {
		switch op.kind {
		case 'k':
			p.step("topk", fmt.Sprintf("keep %d series by last value, descending", op.n))
		case 'l':
			p.step("limit", fmt.Sprintf("keep the newest %d points per series", op.n))
		case 'a':
			detail := fmt.Sprintf("collapse each series to one %s point", op.stat)
			if fused {
				detail += " — fused into the streaming pass, no intermediate columns"
			}
			p.step("agg", detail)
		}
	}
}

func (p *Plan) addSideExplain(prefix string, pr *program, sd side) {
	p.step(prefix+"select", fmt.Sprintf("%s → %d flows, %d series (one lock pass per flow)",
		renderSelect(pr.sel), len(sd.groups), sd.series))
	p.step(prefix+"window", fmt.Sprintf("[pushdown] last %v → binary-search View.Slice at the store, zero-copy", pr.window))
	pre := 0
	for _, op := range pr.chain {
		switch op.kind {
		case 'f':
			p.step(prefix+"filter", fmt.Sprintf("keep points with v %s %v (streaming)", op.cmp, op.val))
			pre++
		case 'm':
			p.step(prefix+"map", "arithmetic over v per point (streaming)")
			pre++
		case 'r':
			path := "View.Align fast path: per-bucket zero-copy sub-views"
			if pre > 0 {
				path = "streaming bucket accumulator after the filter/map chain"
			}
			p.step(prefix+"resample", fmt.Sprintf("[pushdown] %v %s, epoch-aligned — %s", op.period, op.stat, path))
		}
	}
}

// fusedAgg reports whether the first sink is an agg the executor fuses
// into the streaming pass (always, unless topk/limit reorder before it).
func (p *Plan) fusedAgg() bool {
	return len(p.prog.post) > 0 && p.prog.post[0].kind == 'a'
}

func (p *Plan) step(op, detail string) {
	p.explain.Steps = append(p.explain.Steps, ExplainStep{Op: op, Detail: detail})
}

func renderSelect(sel selectSpec) string {
	var b strings.Builder
	add := func(k, v string) {
		if v == "" {
			v = "*"
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(v)
	}
	add("flow", sel.flow)
	add("ns", sel.ns)
	add("name", sel.name)
	keys := make([]string, 0, len(sel.dims))
	for k := range sel.dims {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		add("dim."+k, sel.dims[k])
	}
	return b.String()
}
