// Package query is the streaming query engine over the metric plane: the
// composable read layer that turns the columnar stores of many flows into
// one queryable surface, served at POST /v1/query and `flowctl query`.
//
// A query is a pipeline of stages — select (flow/metric/dimension
// predicates with * globs), window, filter, map, resample, join, topk,
// limit, agg — written either in a small pipe syntax
//
//	select flow=web-* ns=Analytics/Cluster name=RequestLatencyMs
//	  | window 30m | resample 10s p99
//	  | join 10s l/r (select flow=web-* name=AllocatedVMs | resample 10s avg)
//	  | topk 5
//
// or as the equivalent JSON AST (Pipeline/Stage). A greedy planner
// resolves the selects against the registry (most-selective join side
// first), groups evaluation so each flow's lock is taken once, and pushes
// the window and resample stages down into the timeseries.View layer:
// execution is an iterator chain over zero-copy views — binary-search
// window slicing, streaming filter/map, epoch-aligned bucket aggregation
// via View.Align with the store's reusable percentile scratch — that
// materialises only each operator chain's final output, never an
// intermediate series. Plan.Explain reports the chosen order and the
// pushdowns without running anything.
//
// Joins align both sides on epoch-anchored buckets of the join period
// (timeseries.BucketStart), pair series flow-by-flow (a single-series
// side broadcasts), and inner-merge on bucket start times; `join p expr
// (sub)` combines the sides per bucket with an l/r arithmetic expression,
// while an expression-less join returns both columns. The batch endpoint
// POST /v1/metrics:batchQuery is sugar over the same executor: each
// selector compiles to a one-select pipeline program.
package query

import (
	"fmt"
	"time"

	"repro/internal/timeseries"
)

// Engine limits. Exceeding any of them is an *Error (invalid argument),
// never a truncated answer.
const (
	// MaxStages bounds one pipeline (join sides count separately).
	MaxStages = 16
	// MaxSeries bounds how many series one select may match.
	MaxSeries = 256
	// MaxQueryLen bounds the pipe-syntax source text.
	MaxQueryLen = 4096
	// MaxTopK bounds the topk sink.
	MaxTopK = MaxSeries
	// MaxLimit bounds the per-series limit sink.
	MaxLimit = 1_000_000
	// DefaultWindow applies when a pipeline has no window stage.
	DefaultWindow = 30 * time.Minute
)

// Error is a query-rejection error: syntax, stage order, unknown names,
// or an exceeded limit. Handlers map it to HTTP 400 invalid_argument;
// anything else escaping the engine is a server bug.
type Error struct{ msg string }

func (e *Error) Error() string { return e.msg }

func errf(format string, args ...any) *Error {
	return &Error{msg: fmt.Sprintf(format, args...)}
}

// Pipeline is the query AST: an ordered list of stages. It is the wire
// form — api/v1 embeds it verbatim — and the input to Compile.
type Pipeline struct {
	Stages []Stage `json:"stages"`
}

// Stage is one pipeline stage. Op selects the operator; the other fields
// are per-operator (durations travel as Go duration strings, matching the
// batch query API):
//
//	select    Flow/Namespace/Name glob patterns (empty: any), Dims exact
//	window    Window, e.g. "30m"
//	filter    Cmp (> >= < <= == !=) and Value, applied per point
//	map       Expr over v, e.g. "v*2+1"
//	resample  Period + Stat (epoch-aligned buckets)
//	join      Period, optional Expr over l and r, Right sub-pipeline
//	topk      K series by last value, descending
//	limit     N newest points per series
//	agg       Stat collapsing each series to one point
type Stage struct {
	Op string `json:"op"`

	Flow      string            `json:"flow,omitempty"`
	Namespace string            `json:"ns,omitempty"`
	Name      string            `json:"name,omitempty"`
	Dims      map[string]string `json:"dims,omitempty"`

	Window string `json:"window,omitempty"`

	Cmp   string  `json:"cmp,omitempty"`
	Value float64 `json:"value,omitempty"`

	Expr string `json:"expr,omitempty"`

	Period string `json:"period,omitempty"`
	Stat   string `json:"stat,omitempty"`

	Right *Pipeline `json:"right,omitempty"`

	K int `json:"k,omitempty"`
	N int `json:"n,omitempty"`
}

// --- compiled form ---

// cmpOp is a compiled filter comparison.
type cmpOp byte

const (
	cmpGT cmpOp = iota
	cmpGE
	cmpLT
	cmpLE
	cmpEQ
	cmpNE
)

func parseCmp(s string) (cmpOp, bool) {
	switch s {
	case ">":
		return cmpGT, true
	case ">=":
		return cmpGE, true
	case "<":
		return cmpLT, true
	case "<=":
		return cmpLE, true
	case "==":
		return cmpEQ, true
	case "!=":
		return cmpNE, true
	}
	return 0, false
}

func (c cmpOp) String() string {
	return [...]string{">", ">=", "<", "<=", "==", "!="}[c]
}

func (c cmpOp) keep(v, threshold float64) bool {
	switch c {
	case cmpGT:
		return v > threshold
	case cmpGE:
		return v >= threshold
	case cmpLT:
		return v < threshold
	case cmpLE:
		return v <= threshold
	case cmpEQ:
		return v == threshold
	default:
		return v != threshold
	}
}

// chainOp is one compiled per-series streaming operator.
type chainOp struct {
	kind byte // 'f' filter, 'm' map, 'r' resample

	cmp cmpOp   // filter
	val float64 // filter threshold

	expr *exprNode // map

	period time.Duration // resample
	stat   timeseries.Agg
}

// postOp is one compiled result-set operator.
type postOp struct {
	kind byte // 'k' topk, 'l' limit, 'a' agg
	n    int
	stat timeseries.Agg
}

// selectSpec is a compiled select stage.
type selectSpec struct {
	flow, ns, name string // glob patterns; empty matches anything
	dims           map[string]string
}

// joinSpec is a compiled join stage.
type joinSpec struct {
	period time.Duration
	expr   *exprNode // nil: dual-column output
	right  *program
}

// program is one compiled pipeline side: select → window → per-series
// chain, optionally joined against a right program, then the result-set
// sinks.
type program struct {
	sel    selectSpec
	window time.Duration
	chain  []chainOp
	join   *joinSpec
	post   []postOp
}

// resamplePeriod returns the chain's resample period (0 if none).
func (pr *program) resamplePeriod() time.Duration {
	for _, op := range pr.chain {
		if op.kind == 'r' {
			return op.period
		}
	}
	return 0
}

// ParseStat maps the statistic names of the HTTP read plane (avg, sum,
// min, max, count, p50, p90, p99, plus their CloudWatch-flavoured
// aliases) to the timeseries aggregation.
func ParseStat(s string) (timeseries.Agg, bool) {
	switch s {
	case "", "avg", "mean", "average", "Average":
		return timeseries.AggMean, true
	case "sum", "Sum":
		return timeseries.AggSum, true
	case "min", "minimum", "Minimum":
		return timeseries.AggMin, true
	case "max", "maximum", "Maximum":
		return timeseries.AggMax, true
	case "count", "samplecount", "SampleCount":
		return timeseries.AggCount, true
	case "p50", "P50":
		return timeseries.AggP50, true
	case "p90", "P90":
		return timeseries.AggP90, true
	case "p99", "P99":
		return timeseries.AggP99, true
	}
	return 0, false
}

// Compile validates a pipeline AST and lowers it to the executable form.
// Stage-order rules: a pipeline starts with exactly one select; window /
// filter / map / resample follow in any order (window and resample at
// most once); then at most one join whose Right sub-pipeline holds only
// select/window/filter/map/resample; then topk / limit / agg, each at
// most once, applied in written order. agg after an expression-less join
// is rejected — a dual-column result has no single value to aggregate.
func Compile(p *Pipeline) (*program, error) {
	return compile(p, false)
}

func compile(p *Pipeline, isJoinSide bool) (*program, error) {
	if p == nil || len(p.Stages) == 0 {
		return nil, errf("empty pipeline: a query starts with a select stage")
	}
	if len(p.Stages) > MaxStages {
		return nil, errf("%d stages exceed the %d-stage limit", len(p.Stages), MaxStages)
	}
	pr := &program{window: DefaultWindow}
	// phase tracks the stage-order state machine: 0 expects select,
	// 1 accepts the per-series chain, 2 accepts join, 3 accepts sinks.
	phase := 0
	sawWindow, sawResample := false, false
	sawPost := map[byte]bool{}
	for i, st := range p.Stages {
		if phase == 0 {
			if st.Op != "select" {
				return nil, errf("stage %d: pipeline must start with select, got %q", i+1, st.Op)
			}
			pr.sel = selectSpec{flow: st.Flow, ns: st.Namespace, name: st.Name, dims: st.Dims}
			phase = 1
			continue
		}
		switch st.Op {
		case "select":
			return nil, errf("stage %d: select is only valid as the first stage", i+1)
		case "window":
			if phase > 1 || sawWindow {
				return nil, errf("stage %d: window must appear once, before join and the sinks", i+1)
			}
			d, err := parseDur(st.Window, "window")
			if err != nil {
				return nil, err
			}
			pr.window, sawWindow = d, true
		case "filter":
			if phase > 1 {
				return nil, errf("stage %d: filter must precede join and the sinks", i+1)
			}
			cmp, ok := parseCmp(st.Cmp)
			if !ok {
				return nil, errf("stage %d: unknown comparison %q (want > >= < <= == !=)", i+1, st.Cmp)
			}
			pr.chain = append(pr.chain, chainOp{kind: 'f', cmp: cmp, val: st.Value})
		case "map":
			if phase > 1 {
				return nil, errf("stage %d: map must precede join and the sinks", i+1)
			}
			e, err := parseExpr(st.Expr, exprVarsV)
			if err != nil {
				return nil, err
			}
			pr.chain = append(pr.chain, chainOp{kind: 'm', expr: e})
		case "resample":
			if phase > 1 || sawResample {
				return nil, errf("stage %d: resample must appear once, before join and the sinks", i+1)
			}
			d, err := parseDur(st.Period, "resample period")
			if err != nil {
				return nil, err
			}
			stat, ok := ParseStat(st.Stat)
			if !ok {
				return nil, errf("stage %d: unknown stat %q", i+1, st.Stat)
			}
			pr.chain = append(pr.chain, chainOp{kind: 'r', period: d, stat: stat})
			sawResample = true
		case "join":
			if isJoinSide {
				return nil, errf("stage %d: join inside a join side is not supported", i+1)
			}
			if phase > 1 {
				return nil, errf("stage %d: only one join per pipeline, before the sinks", i+1)
			}
			d, err := parseDur(st.Period, "join period")
			if err != nil {
				return nil, err
			}
			js := &joinSpec{period: d}
			if st.Expr != "" {
				e, err := parseExpr(st.Expr, exprVarsLR)
				if err != nil {
					return nil, err
				}
				js.expr = e
			}
			right, err := compile(st.Right, true)
			if err != nil {
				return nil, fmt.Errorf("join side: %w", err)
			}
			js.right = right
			if err := alignSide(pr, d); err != nil {
				return nil, err
			}
			if err := alignSide(right, d); err != nil {
				return nil, fmt.Errorf("join side: %w", err)
			}
			pr.join = js
			phase = 3
		case "topk":
			if st.K < 1 || st.K > MaxTopK {
				return nil, errf("stage %d: topk k must be in [1, %d], got %d", i+1, MaxTopK, st.K)
			}
			if err := postOnce(sawPost, 'k', i); err != nil {
				return nil, err
			}
			pr.post = append(pr.post, postOp{kind: 'k', n: st.K})
			phase = 3
		case "limit":
			if st.N < 1 || st.N > MaxLimit {
				return nil, errf("stage %d: limit n must be in [1, %d], got %d", i+1, MaxLimit, st.N)
			}
			if err := postOnce(sawPost, 'l', i); err != nil {
				return nil, err
			}
			pr.post = append(pr.post, postOp{kind: 'l', n: st.N})
			phase = 3
		case "agg":
			stat, ok := ParseStat(st.Stat)
			if !ok {
				return nil, errf("stage %d: unknown stat %q", i+1, st.Stat)
			}
			if pr.join != nil && pr.join.expr == nil {
				return nil, errf("stage %d: agg after an expression-less join — a dual-column result has no single value; give the join an l/r expression", i+1)
			}
			if err := postOnce(sawPost, 'a', i); err != nil {
				return nil, err
			}
			pr.post = append(pr.post, postOp{kind: 'a', stat: stat})
			phase = 3
		default:
			return nil, errf("stage %d: unknown op %q", i+1, st.Op)
		}
		if isJoinSide && phase > 1 {
			return nil, errf("stage %d: a join side holds only select/window/filter/map/resample", i+1)
		}
	}
	return pr, nil
}

func postOnce(seen map[byte]bool, kind byte, i int) error {
	if seen[kind] {
		return errf("stage %d: duplicate sink stage", i+1)
	}
	seen[kind] = true
	return nil
}

// alignSide makes one join side emit buckets of the join period: an
// existing resample must already use it (the per-side stat is the point —
// p99 left, avg right); a side with no resample gets an implicit
// `resample period avg` appended after its filters and maps.
func alignSide(pr *program, period time.Duration) error {
	if p := pr.resamplePeriod(); p != 0 {
		if p != period {
			return errf("join period %v does not match the side's resample period %v", period, p)
		}
		return nil
	}
	pr.chain = append(pr.chain, chainOp{kind: 'r', period: period, stat: timeseries.AggMean})
	return nil
}

func parseDur(s, what string) (time.Duration, error) {
	if s == "" {
		return 0, errf("%s is required", what)
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return 0, errf("invalid %s %q", what, s)
	}
	return d, nil
}
