package query

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/eventbus"
	"repro/internal/metricstore"
	"repro/internal/registry"
)

// cacheSource is a mutable StaticSource stand-in whose flow set the tests
// change between lookups to prove what the cache does (and does not)
// re-read.
type cacheSource struct {
	flows StaticSource
	walks int // FlowIDs calls: how often the cache paid for a full walk
}

func (s *cacheSource) FlowIDs() []string { s.walks++; return s.flows.FlowIDs() }
func (s *cacheSource) WithFlow(id string, fn func(store *metricstore.Store, now time.Time)) bool {
	return s.flows.WithFlow(id, fn)
}

func testFlows(ids ...string) StaticSource {
	src := StaticSource{}
	for _, id := range ids {
		src[id] = StaticFlow{Store: metricstore.NewStore(), Now: time.Unix(0, 0)}
	}
	return src
}

// TestPlanCacheMemoises: the second identical lookup is served without
// walking the source, and distinct globs are cached independently.
func TestPlanCacheMemoises(t *testing.T) {
	src := &cacheSource{flows: testFlows("api", "api-eu", "batch")}
	bus := eventbus.New(0)
	c := NewPlanCache(src, bus)
	defer c.Close()

	want := []string{"api", "api-eu"}
	if got := c.FlowsMatching("api*"); !reflect.DeepEqual(got, want) {
		t.Fatalf("FlowsMatching(api*) = %v, want %v", got, want)
	}
	walks := src.walks
	if got := c.FlowsMatching("api*"); !reflect.DeepEqual(got, want) {
		t.Fatalf("cached FlowsMatching(api*) = %v, want %v", got, want)
	}
	if src.walks != walks {
		t.Fatalf("cache hit walked the source (%d -> %d walks)", walks, src.walks)
	}
	if got := c.FlowsMatching("batch"); !reflect.DeepEqual(got, []string{"batch"}) {
		t.Fatalf("FlowsMatching(batch) = %v", got)
	}
	if got := c.FlowsMatching("nothing-*"); len(got) != 0 {
		t.Fatalf("FlowsMatching(nothing-*) = %v, want empty", got)
	}
	if src.walks != walks+2 {
		t.Fatalf("distinct globs should each walk once: %d -> %d", walks, src.walks)
	}
}

// TestPlanCacheInvalidation: flow lifecycle events clear the cache so the
// next lookup sees the changed flow set; unrelated events do not.
func TestPlanCacheInvalidation(t *testing.T) {
	src := &cacheSource{flows: testFlows("api")}
	bus := eventbus.New(0)
	c := NewPlanCache(src, bus)
	defer c.Close()

	if got := c.FlowsMatching("*"); !reflect.DeepEqual(got, []string{"api"}) {
		t.Fatalf("initial FlowsMatching = %v", got)
	}

	// An unrelated event must not evict: the subscription filter drops it.
	bus.Publish("experiment.started", "lab", nil)
	walks := src.walks
	c.FlowsMatching("*")
	if src.walks != walks {
		t.Fatal("unrelated event invalidated the plan cache")
	}

	src.flows["api-eu"] = StaticFlow{Store: metricstore.NewStore(), Now: time.Unix(0, 0)}
	bus.Publish(registry.EventFlowCreated, "api-eu", nil)
	if got := c.FlowsMatching("*"); !reflect.DeepEqual(got, []string{"api", "api-eu"}) {
		t.Fatalf("after flow.created, FlowsMatching = %v", got)
	}

	delete(src.flows, "api")
	bus.Publish(registry.EventFlowDeleted, "api", nil)
	if got := c.FlowsMatching("*"); !reflect.DeepEqual(got, []string{"api-eu"}) {
		t.Fatalf("after flow.deleted, FlowsMatching = %v", got)
	}
}

// TestPlanCacheOverflowResyncs: an event storm larger than the
// subscription buffer still invalidates — the Dropped() check catches
// what the channel could not hold — and the cache then re-caches cleanly.
func TestPlanCacheOverflowResyncs(t *testing.T) {
	src := &cacheSource{flows: testFlows("a")}
	bus := eventbus.New(0)
	c := NewPlanCache(src, bus)
	defer c.Close()

	c.FlowsMatching("*")
	for i := 0; i < 600; i++ { // subscription buffer is 256
		id := fmt.Sprintf("f%03d", i)
		src.flows[id] = StaticFlow{Store: metricstore.NewStore(), Now: time.Unix(0, 0)}
		bus.Publish(registry.EventFlowCreated, id, nil)
	}
	if got := c.FlowsMatching("f*"); len(got) != 600 {
		t.Fatalf("after storm, matched %d flows, want 600", len(got))
	}
	walks := src.walks
	if got := c.FlowsMatching("f*"); len(got) != 600 || src.walks != walks {
		t.Fatalf("post-storm lookup not served from cache (%d flows, %d -> %d walks)",
			len(got), walks, src.walks)
	}
}

// TestPlanCacheClosed: once closed, no invalidation can ever arrive, so
// the cache must stop serving cached sets rather than go stale — it
// degrades to a correct pass-through.
func TestPlanCacheClosed(t *testing.T) {
	src := &cacheSource{flows: testFlows("a")}
	bus := eventbus.New(0)
	c := NewPlanCache(src, bus)

	c.FlowsMatching("*")
	c.Close()
	src.flows["b"] = StaticFlow{Store: metricstore.NewStore(), Now: time.Unix(0, 0)}
	if got := c.FlowsMatching("*"); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("after Close, FlowsMatching = %v (stale cache?)", got)
	}
	walks := src.walks
	c.FlowsMatching("*")
	if src.walks != walks+1 {
		t.Fatal("closed cache should walk the source every time")
	}
}

// TestPlanCacheNilBus: a cache without a bus is a valid pass-through.
func TestPlanCacheNilBus(t *testing.T) {
	src := &cacheSource{flows: testFlows("a")}
	c := NewPlanCache(src, nil)
	defer c.Close()
	if got := c.FlowsMatching("*"); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("FlowsMatching = %v", got)
	}
	src.flows["b"] = StaticFlow{Store: metricstore.NewStore(), Now: time.Unix(0, 0)}
	if got := c.FlowsMatching("*"); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("pass-through served stale set: %v", got)
	}
}

// TestPlannerUsesFlowMatcher: Prepare routes its flow-glob step through a
// flowMatcher source, and plans built through the cache resolve the same
// series as plans built on the raw source.
func TestPlannerUsesFlowMatcher(t *testing.T) {
	now := time.Unix(1_700_000_000, 0).UTC()
	flows := testFlows("api", "batch")
	st := flows["api"].Store
	st.MustPut("sys", "cpu", nil, now, 0.5)
	flows["api"] = StaticFlow{Store: st, Now: now}
	bus := eventbus.New(0)
	c := NewPlanCache(&cacheSource{flows: flows}, bus)
	defer c.Close()

	const q = `select flow=api ns=sys name=cpu | window 1m`
	for i := 0; i < 2; i++ { // second iteration plans entirely from cache
		pl, err := Prepare(c, q, nil)
		if err != nil {
			t.Fatalf("Prepare: %v", err)
		}
		res, err := pl.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if len(res.Series) != 1 || res.Series[0].Flow != "api" {
			t.Fatalf("iteration %d: got %d series %+v", i, len(res.Series), res.Series)
		}
	}
}
