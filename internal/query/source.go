package query

import (
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/metricstore"
	"repro/internal/registry"
)

// Source is where a plan's select stages resolve and execute: a set of
// flows, each owning a metric store and a simulated "now" that anchors
// relative windows. The engine holds one flow at a time — WithFlow must
// provide the same exclusion Flow.View does — which is what lets a query
// stream over live stores while pacers append.
type Source interface {
	// FlowIDs lists the flow identifiers in deterministic (sorted) order.
	FlowIDs() []string
	// WithFlow runs fn with the flow's store and clock under the flow's
	// lock, returning false if the flow no longer exists. fn must not
	// retain the store past the call.
	WithFlow(id string, fn func(store *metricstore.Store, now time.Time)) bool
}

// FromRegistry adapts the flow registry — the control plane's Source.
func FromRegistry(reg *registry.Registry) Source { return registrySource{reg: reg} }

type registrySource struct{ reg *registry.Registry }

func (s registrySource) FlowIDs() []string {
	flows := s.reg.List()
	ids := make([]string, len(flows))
	for i, f := range flows {
		ids[i] = f.ID()
	}
	sort.Strings(ids)
	return ids
}

func (s registrySource) WithFlow(id string, fn func(store *metricstore.Store, now time.Time)) bool {
	f, ok := s.reg.Get(id)
	if !ok {
		return false
	}
	f.View(func(m *core.Manager) {
		fn(m.Store(), m.Harness().Clock.Now())
	})
	return true
}

// StaticFlow is one fixed flow of a StaticSource.
type StaticFlow struct {
	Store *metricstore.Store
	Now   time.Time
}

// StaticSource serves fixed stores without a registry — the Source used
// by the engine's tests and the flowerbench query suite, where the data
// is built once and no pacers run.
type StaticSource map[string]StaticFlow

func (s StaticSource) FlowIDs() []string {
	ids := make([]string, 0, len(s))
	for id := range s {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

func (s StaticSource) WithFlow(id string, fn func(store *metricstore.Store, now time.Time)) bool {
	f, ok := s[id]
	if !ok {
		return false
	}
	fn(f.Store, f.Now)
	return true
}
