package query

import (
	"strconv"
	"strings"
)

// The pipe syntax: stages separated by | at parenthesis depth zero, each
// stage an op name followed by its arguments. It is a thin concrete
// syntax over the Pipeline AST — Parse produces the same AST a client
// could POST as JSON, and Compile treats both identically.
//
//	select flow=web-* ns=Ingestion/Stream name=IncomingRecords dim.StreamName=clicks
//	window 30m
//	filter v > 100          (also: filter v>100)
//	map v*2+1
//	resample 10s p99        (stat defaults to avg)
//	join 10s l/r (select ... | resample 10s avg)   (expr optional)
//	topk 5
//	limit 100
//	agg p99

// Parse parses the pipe syntax into the Pipeline AST. The result still
// goes through Compile, which owns all semantic validation; Parse only
// rejects what cannot be represented.
func Parse(q string) (*Pipeline, error) {
	if len(q) > MaxQueryLen {
		return nil, errf("query text of %d bytes exceeds the %d-byte limit", len(q), MaxQueryLen)
	}
	if strings.TrimSpace(q) == "" {
		return nil, errf("empty query")
	}
	return parsePipeline(q)
}

func parsePipeline(q string) (*Pipeline, error) {
	parts, err := splitTop(q, '|')
	if err != nil {
		return nil, err
	}
	p := &Pipeline{}
	for _, part := range parts {
		st, err := parseStage(part)
		if err != nil {
			return nil, err
		}
		p.Stages = append(p.Stages, st)
	}
	return p, nil
}

// splitTop splits s on sep at parenthesis depth zero, trimming each part
// and rejecting empties and unbalanced parens.
func splitTop(s string, sep byte) ([]string, error) {
	var parts []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
			if depth < 0 {
				return nil, errf("unbalanced ) at offset %d", i)
			}
		case sep:
			if depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	if depth != 0 {
		return nil, errf("unbalanced ( in %q", s)
	}
	parts = append(parts, s[start:])
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
		if parts[i] == "" {
			return nil, errf("empty stage (stray |?) in %q", s)
		}
	}
	return parts, nil
}

func parseStage(s string) (Stage, error) {
	op, rest, _ := strings.Cut(s, " ")
	rest = strings.TrimSpace(rest)
	switch op {
	case "select":
		return parseSelect(rest)
	case "window":
		if rest == "" {
			return Stage{}, errf("window needs a duration, e.g. `window 30m`")
		}
		return Stage{Op: "window", Window: rest}, nil
	case "filter":
		return parseFilter(rest)
	case "map":
		if rest == "" {
			return Stage{}, errf("map needs an expression over v, e.g. `map v*2+1`")
		}
		return Stage{Op: "map", Expr: rest}, nil
	case "resample":
		fields := strings.Fields(rest)
		switch len(fields) {
		case 1:
			return Stage{Op: "resample", Period: fields[0], Stat: "avg"}, nil
		case 2:
			return Stage{Op: "resample", Period: fields[0], Stat: fields[1]}, nil
		default:
			return Stage{}, errf("resample wants `resample <period> [stat]`, got %q", s)
		}
	case "join":
		return parseJoin(rest)
	case "topk":
		k, err := strconv.Atoi(rest)
		if err != nil {
			return Stage{}, errf("topk wants an integer, got %q", rest)
		}
		return Stage{Op: "topk", K: k}, nil
	case "limit":
		n, err := strconv.Atoi(rest)
		if err != nil {
			return Stage{}, errf("limit wants an integer, got %q", rest)
		}
		return Stage{Op: "limit", N: n}, nil
	case "agg":
		return Stage{Op: "agg", Stat: rest}, nil
	default:
		return Stage{}, errf("unknown stage %q (want select, window, filter, map, resample, join, topk, limit, agg)", op)
	}
}

func parseSelect(rest string) (Stage, error) {
	st := Stage{Op: "select"}
	for _, f := range strings.Fields(rest) {
		k, v, ok := strings.Cut(f, "=")
		if !ok || v == "" {
			return Stage{}, errf("select argument %q is not key=value", f)
		}
		switch {
		case k == "flow":
			st.Flow = v
		case k == "ns":
			st.Namespace = v
		case k == "name":
			st.Name = v
		case strings.HasPrefix(k, "dim."):
			dim := strings.TrimPrefix(k, "dim.")
			if dim == "" {
				return Stage{}, errf("select dimension %q has no name", f)
			}
			if st.Dims == nil {
				st.Dims = make(map[string]string)
			}
			st.Dims[dim] = v
		default:
			return Stage{}, errf("unknown select key %q (want flow, ns, name, dim.<K>)", k)
		}
	}
	return st, nil
}

// parseFilter accepts `v > 100` in any spacing, including `v>100`.
func parseFilter(rest string) (Stage, error) {
	compact := strings.ReplaceAll(strings.ReplaceAll(rest, " ", ""), "\t", "")
	if !strings.HasPrefix(compact, "v") {
		return Stage{}, errf("filter wants `filter v <cmp> <number>`, got %q", rest)
	}
	compact = compact[1:]
	var cmp string
	for _, c := range []string{">=", "<=", "==", "!=", ">", "<"} {
		if strings.HasPrefix(compact, c) {
			cmp = c
			break
		}
	}
	if cmp == "" {
		return Stage{}, errf("filter %q: no comparison operator (want > >= < <= == !=)", rest)
	}
	val, err := strconv.ParseFloat(compact[len(cmp):], 64)
	if err != nil {
		return Stage{}, errf("filter %q: bad threshold %q", rest, compact[len(cmp):])
	}
	return Stage{Op: "filter", Cmp: cmp, Value: val}, nil
}

// parseJoin accepts `join <period> [expr] (<pipeline>)`.
func parseJoin(rest string) (Stage, error) {
	open := strings.IndexByte(rest, '(')
	if open < 0 || !strings.HasSuffix(rest, ")") {
		return Stage{}, errf("join wants `join <period> [expr] (select ...)`, got %q", rest)
	}
	sub := rest[open+1 : len(rest)-1]
	head := strings.Fields(rest[:open])
	st := Stage{Op: "join"}
	switch len(head) {
	case 1:
		st.Period = head[0]
	case 2:
		st.Period, st.Expr = head[0], head[1]
	default:
		return Stage{}, errf("join wants `join <period> [expr] (select ...)`, got %q", rest)
	}
	right, err := parsePipeline(sub)
	if err != nil {
		return Stage{}, err
	}
	st.Right = right
	return st, nil
}
