package query

import (
	"math"
	"sort"
	"time"

	"repro/internal/metricstore"
	"repro/internal/telemetry"
	"repro/internal/timeseries"
)

// Execution. A plan runs as one pass per matched series inside
// Handle.ViewWindow — window slicing by binary search, then the compiled
// chain streaming point by point (filters, maps, epoch-aligned bucket
// accumulation) straight into presized output columns. Only each chain's
// final output is materialised; with a fused agg sink not even that. The
// join then merge-scans the (already small, already aligned) bucketed
// columns of both sides. Nothing in the executor holds two flows' locks
// at once: sides evaluate sequentially, flow by flow.

// Result is an executed query: the output series in plan order and the
// total number of result rows (points) across them.
type Result struct {
	Series []Series
	Rows   int
}

// Series is one result series. Ts/Vs are parallel columns owned by the
// result. Vs2 is set only for an expression-less join (the right side's
// column); Right names the joined right series as "ns/name".
type Series struct {
	Flow      string
	Namespace string
	Name      string
	Dims      map[string]string
	Right     string
	Ts        []int64
	Vs        []float64
	Vs2       []float64
}

// execScratch is the single-threaded per-run scratch: percentile buffers
// for work done outside any store lock (join fusion, post-agg).
type execScratch struct {
	sc  timeseries.AggScratch
	buf []float64
}

// Run executes the plan and records the flower_query_* telemetry. It
// never fails on data (a deleted flow or empty window yields an empty
// series); the error return exists for future resource limits.
func (p *Plan) Run() (*Result, error) {
	start := telemetry.Now()
	res := p.run()
	telExecSeconds.Observe(time.Duration(telemetry.SinceNanos(start)))
	telQueries.With("ok").Inc()
	telRows.Add(uint64(res.Rows))
	return res, nil
}

func (p *Plan) run() *Result {
	scr := &execScratch{}
	var out []Series
	if js := p.prog.join; js != nil {
		// Most selective side first; an inner join against nothing is
		// nothing, so the bigger side is skipped when the first side
		// streams zero points.
		first, second := p.left, p.right
		firstProg, secondProg := p.prog, js.right
		if p.rightFirst {
			first, second = second, first
			firstProg, secondProg = secondProg, firstProg
		}
		firstOut := evalSide(p.src, first, firstProg, nil)
		if totalPoints(firstOut) == 0 {
			out = nil
		} else {
			secondOut := evalSide(p.src, second, secondProg, nil)
			left, right := firstOut, secondOut
			if p.rightFirst {
				left, right = secondOut, firstOut
			}
			out = mergeJoin(left, right, js, p.chainFuse(), scr)
		}
	} else {
		out = evalSide(p.src, p.left, p.prog, p.chainFuse())
	}
	out = p.applyPost(out, scr)
	res := &Result{Series: out, Rows: totalPoints(out)}
	return res
}

// chainFuse returns the agg sink to fuse into the streaming pass, if the
// first sink is an agg (otherwise topk/limit must see the full columns).
func (p *Plan) chainFuse() *postOp {
	if len(p.prog.post) > 0 && p.prog.post[0].kind == 'a' {
		return &p.prog.post[0]
	}
	return nil
}

func totalPoints(series []Series) int {
	n := 0
	for i := range series {
		n += len(series[i].Ts)
	}
	return n
}

// evalSide evaluates one pipeline side: for each flow group, one flow
// lock, and inside it one ViewWindow pass per series. fuse, when set,
// collapses each series to a single aggregated point without
// materialising its columns (nil when a join consumes this side).
func evalSide(src Source, sd side, pr *program, fuse *postOp) []Series {
	out := make([]Series, 0, sd.series)
	for _, g := range sd.groups {
		src.WithFlow(g.flow, func(_ *metricstore.Store, now time.Time) {
			from := now.Add(-pr.window)
			to := now.Add(time.Nanosecond)
			for _, r := range g.series {
				ser := Series{Flow: g.flow, Namespace: r.id.Namespace, Name: r.id.Name, Dims: r.id.Dimensions}
				r.h.ViewWindow(from, to, func(v timeseries.View, sc *timeseries.AggScratch) {
					ser.Ts, ser.Vs = runChain(v, sc, pr, fuse)
				})
				out = append(out, ser)
			}
		})
		// A flow deleted between plan and run simply contributes nothing.
	}
	return out
}

// splitChain separates the compiled chain into the ops before the
// resample, the resample itself, and the ops after it.
func splitChain(chain []chainOp) (pre []chainOp, res *chainOp, post []chainOp) {
	for i := range chain {
		if chain[i].kind == 'r' {
			return chain[:i], &chain[i], chain[i+1:]
		}
	}
	return chain, nil, nil
}

// runChain streams one series' view through the compiled chain and
// returns the materialised output columns (one point, for a fused agg;
// nil columns for an empty result). It runs under the entry lock: v and
// sc are only valid here, and everything returned is freshly owned.
func runChain(v timeseries.View, sc *timeseries.AggScratch, pr *program, fuse *postOp) ([]int64, []float64) {
	pre, res, post := splitChain(pr.chain)

	var sink chainSink
	switch {
	case fuse != nil:
		sink.initAgg(fuse.stat)
	case res != nil:
		sink.initColumns(bucketEstimate(v, res.period))
	default:
		sink.initColumns(v.Len())
	}
	sink.post = post

	switch {
	case res == nil:
		// No resample: filters and maps stream straight into the sink.
		for i, n := 0, v.Len(); i < n; i++ {
			val, keep := applyOps(pre, v.ValueAt(i))
			if keep {
				sink.emit(v.NanoAt(i), val)
			}
		}
	case len(pre) == 0:
		// Resample with a clean prefix: the Align fast path aggregates
		// each epoch bucket over a zero-copy sub-view, percentiles
		// sorting into the entry's reusable scratch.
		it := v.Align(res.period)
		for {
			start, sub, ok := it.Next()
			if !ok {
				break
			}
			sink.emit(start, sub.Aggregate(res.stat, sc))
		}
	default:
		// Filters or maps precede the resample: stream the transformed
		// points through a bucket accumulator (percentile buckets gather
		// into the entry scratch's sibling buffer).
		var acc bucketAcc
		_, isPct := percentileP(res.stat)
		per := res.period
		cur, open := int64(0), false
		var pctBuf []float64
		flush := func() {
			if !open {
				return
			}
			if isPct {
				if len(pctBuf) > 0 {
					sink.emit(cur, res.stat.ApplyWith(pctBuf, sc))
					pctBuf = pctBuf[:0]
				}
				return
			}
			if acc.n > 0 {
				sink.emit(cur, acc.value(res.stat))
				acc = bucketAcc{}
			}
		}
		for i, n := 0, v.Len(); i < n; i++ {
			val, keep := applyOps(pre, v.ValueAt(i))
			if !keep {
				continue
			}
			b := timeseries.BucketStart(v.NanoAt(i), per)
			if !open || b != cur {
				flush()
				cur, open = b, true
			}
			if isPct {
				pctBuf = append(pctBuf, val)
			} else {
				acc.add(val)
			}
		}
		flush()
	}
	return sink.finish(sc)
}

// applyOps runs the filter/map prefix over one value.
func applyOps(ops []chainOp, val float64) (float64, bool) {
	for i := range ops {
		if ops[i].kind == 'f' {
			if !ops[i].cmp.keep(val, ops[i].val) {
				return 0, false
			}
			continue
		}
		val = ops[i].expr.eval(val, 0)
	}
	return val, true
}

// bucketEstimate presizes resample output: the bucket count the window
// span implies, capped by the point count (resampling never grows).
func bucketEstimate(v timeseries.View, period time.Duration) int {
	n := v.Len()
	if n > 1 {
		if span := v.NanoAt(n-1) - v.NanoAt(0); span >= 0 {
			if b := int(span/int64(period)) + 1; b < n {
				return b
			}
		}
	}
	return n
}

// chainSink terminates a series' stream: either into presized output
// columns or into a fused aggregation.
type chainSink struct {
	post []chainOp // post-resample filters/maps

	ts []int64
	vs []float64

	agg     bool
	aggStat timeseries.Agg
	aggAcc  bucketAcc
	aggPct  bool
	aggBuf  []float64
	lastT   int64
	any     bool
}

func (s *chainSink) initColumns(capHint int) {
	s.ts = make([]int64, 0, capHint)
	s.vs = make([]float64, 0, capHint)
}

func (s *chainSink) initAgg(stat timeseries.Agg) {
	s.agg = true
	s.aggStat = stat
	_, s.aggPct = percentileP(stat)
}

func (s *chainSink) emit(tn int64, val float64) {
	val, keep := applyOps(s.post, val)
	if !keep {
		return
	}
	if s.agg {
		s.any, s.lastT = true, tn
		if s.aggPct {
			s.aggBuf = append(s.aggBuf, val)
		} else {
			s.aggAcc.add(val)
		}
		return
	}
	s.ts = append(s.ts, tn)
	s.vs = append(s.vs, val)
}

func (s *chainSink) finish(sc *timeseries.AggScratch) ([]int64, []float64) {
	if !s.agg {
		return s.ts, s.vs
	}
	if !s.any {
		return nil, nil
	}
	var val float64
	if s.aggPct {
		val = s.aggStat.ApplyWith(s.aggBuf, sc)
	} else {
		val = s.aggAcc.value(s.aggStat)
	}
	return []int64{s.lastT}, []float64{val}
}

// bucketAcc is the streaming accumulator for the non-percentile
// aggregations, bit-compatible with Agg.Apply over the materialised
// bucket (the sum accumulates in the same left-to-right order).
type bucketAcc struct {
	n        int
	sum      float64
	min, max float64
}

func (b *bucketAcc) add(v float64) {
	if b.n == 0 {
		b.min, b.max = v, v
	} else {
		if v < b.min {
			b.min = v
		}
		if v > b.max {
			b.max = v
		}
	}
	b.n++
	b.sum += v
}

func (b *bucketAcc) value(a timeseries.Agg) float64 {
	switch a {
	case timeseries.AggCount:
		return float64(b.n)
	case timeseries.AggSum:
		return b.sum
	}
	if b.n == 0 {
		return math.NaN()
	}
	switch a {
	case timeseries.AggMean:
		return b.sum / float64(b.n)
	case timeseries.AggMin:
		return b.min
	case timeseries.AggMax:
		return b.max
	default:
		return math.NaN()
	}
}

// percentileP mirrors Agg.percentile for the compiled chain.
func percentileP(a timeseries.Agg) (float64, bool) {
	switch a {
	case timeseries.AggP50:
		return 50, true
	case timeseries.AggP90:
		return 90, true
	case timeseries.AggP99:
		return 99, true
	}
	return 0, false
}

// --- join ---

// mergeJoin pairs left and right series and inner-merges each pair on
// their (epoch-aligned, sorted) bucket start times. Pairing is by flow —
// every left series against every right series of the same flow — except
// that a right side matching exactly one series broadcasts to all left
// series. With an expression, each matched bucket yields expr(l, r)
// (fused directly into an agg sink when one follows); without, the
// result carries both columns.
func mergeJoin(left, right []Series, js *joinSpec, fuse *postOp, scr *execScratch) []Series {
	if fuse != nil && js.expr == nil {
		fuse = nil // compile rejects this; belt and braces
	}
	byFlow := make(map[string][]*Series, len(right))
	for i := range right {
		byFlow[right[i].Flow] = append(byFlow[right[i].Flow], &right[i])
	}
	broadcast := len(right) == 1

	var out []Series
	for li := range left {
		l := &left[li]
		var candidates []*Series
		if broadcast {
			candidates = []*Series{&right[0]}
		} else {
			candidates = byFlow[l.Flow]
		}
		for _, r := range candidates {
			if ser, ok := mergeOne(l, r, js, fuse, scr); ok {
				out = append(out, ser)
			}
		}
	}
	return out
}

func mergeOne(l, r *Series, js *joinSpec, fuse *postOp, scr *execScratch) (Series, bool) {
	ser := Series{Flow: l.Flow, Namespace: l.Namespace, Name: l.Name, Dims: l.Dims,
		Right: r.Namespace + "/" + r.Name}
	n := len(l.Ts)
	if len(r.Ts) < n {
		n = len(r.Ts)
	}
	var acc bucketAcc
	var anyAgg bool
	var lastT int64
	aggPct := false
	if fuse != nil {
		_, aggPct = percentileP(fuse.stat)
		scr.buf = scr.buf[:0]
	} else {
		ser.Ts = make([]int64, 0, n)
		ser.Vs = make([]float64, 0, n)
		if js.expr == nil {
			ser.Vs2 = make([]float64, 0, n)
		}
	}
	i, j := 0, 0
	for i < len(l.Ts) && j < len(r.Ts) {
		switch {
		case l.Ts[i] == r.Ts[j]:
			lv, rv := l.Vs[i], r.Vs[j]
			if js.expr != nil {
				v := js.expr.eval(lv, rv)
				if fuse != nil {
					anyAgg, lastT = true, l.Ts[i]
					if aggPct {
						scr.buf = append(scr.buf, v)
					} else {
						acc.add(v)
					}
				} else {
					ser.Ts = append(ser.Ts, l.Ts[i])
					ser.Vs = append(ser.Vs, v)
				}
			} else {
				ser.Ts = append(ser.Ts, l.Ts[i])
				ser.Vs = append(ser.Vs, lv)
				ser.Vs2 = append(ser.Vs2, rv)
			}
			i++
			j++
		case l.Ts[i] < r.Ts[j]:
			i++
		default:
			j++
		}
	}
	if fuse != nil {
		if !anyAgg {
			return ser, true // empty joined series, kept for visibility
		}
		var val float64
		if aggPct {
			val = fuse.stat.ApplyWith(scr.buf, &scr.sc)
		} else {
			val = acc.value(fuse.stat)
		}
		ser.Ts = []int64{lastT}
		ser.Vs = []float64{val}
	}
	return ser, true
}

// --- sinks ---

// applyPost runs the result-set sinks in written order, skipping the agg
// the chain already fused.
func (p *Plan) applyPost(series []Series, scr *execScratch) []Series {
	fused := p.chainFuse()
	for oi := range p.prog.post {
		op := &p.prog.post[oi]
		switch op.kind {
		case 'k':
			series = topK(series, op.n)
		case 'l':
			for i := range series {
				if cut := len(series[i].Ts) - op.n; cut > 0 {
					series[i].Ts = series[i].Ts[cut:]
					series[i].Vs = series[i].Vs[cut:]
					if series[i].Vs2 != nil {
						series[i].Vs2 = series[i].Vs2[cut:]
					}
				}
			}
		case 'a':
			if op == fused {
				continue
			}
			for i := range series {
				s := &series[i]
				if len(s.Ts) == 0 {
					continue
				}
				val := op.stat.ApplyWith(s.Vs, &scr.sc)
				s.Ts = []int64{s.Ts[len(s.Ts)-1]}
				s.Vs = []float64{val}
				s.Vs2 = nil
			}
		}
	}
	return series
}

// EvalSelector evaluates one (metric, window, resample) selector with the
// engine's streaming executor — the primitive POST /v1/metrics:batchQuery
// is sugar over: a batch selector is a one-select pipeline with a window
// and an optional resample, run through the same chain (zero period
// returns the raw window). Buckets are epoch-aligned like every engine
// resample. The returned columns are freshly owned.
func EvalSelector(h *metricstore.Handle, from, to time.Time, period time.Duration, stat timeseries.Agg) (ts []int64, vs []float64) {
	pr := &program{}
	if period > 0 {
		pr.chain = []chainOp{{kind: 'r', period: period, stat: stat}}
	}
	h.ViewWindow(from, to, func(v timeseries.View, sc *timeseries.AggScratch) {
		ts, vs = runChain(v, sc, pr, nil)
	})
	return ts, vs
}

// topK keeps the k series with the largest last value, ordered by rank
// descending (ties keep plan order; series with no points or a NaN last
// value rank lowest).
func topK(series []Series, k int) []Series {
	if len(series) <= k {
		// Still rank: topk is also "order by last value".
		k = len(series)
	}
	keys := make([]float64, len(series))
	for i := range series {
		keys[i] = math.Inf(-1)
		if n := len(series[i].Ts); n > 0 && !math.IsNaN(series[i].Vs[n-1]) {
			keys[i] = series[i].Vs[n-1]
		}
	}
	ord := make([]int, len(series))
	for i := range ord {
		ord[i] = i
	}
	sort.SliceStable(ord, func(a, b int) bool { return keys[ord[a]] > keys[ord[b]] })
	out := make([]Series, 0, k)
	for _, i := range ord[:k] {
		out = append(out, series[i])
	}
	return out
}
