package query

import (
	"strconv"
	"strings"
)

// Arithmetic expressions for the map stage (over v, the point value) and
// the join stage (over l and r, the two sides' bucket values). The
// grammar is + - * / with unary minus and parentheses; an expression
// compiles once at plan time to a small tree evaluated per point with no
// allocation.

var (
	exprVarsV  = []string{"v"}
	exprVarsLR = []string{"l", "r"}
)

// exprNode is one compiled expression node.
type exprNode struct {
	op   byte // 'n' literal, 'v' variable, '+', '-', '*', '/', 'g' negate
	val  float64
	idx  int // variable index: 0 = v or l, 1 = r
	l, r *exprNode
}

// eval computes the expression; a is v (map) or l (join), b is r (join).
func (e *exprNode) eval(a, b float64) float64 {
	switch e.op {
	case 'n':
		return e.val
	case 'v':
		if e.idx == 0 {
			return a
		}
		return b
	case 'g':
		return -e.l.eval(a, b)
	case '+':
		return e.l.eval(a, b) + e.r.eval(a, b)
	case '-':
		return e.l.eval(a, b) - e.r.eval(a, b)
	case '*':
		return e.l.eval(a, b) * e.r.eval(a, b)
	default: // '/'
		return e.l.eval(a, b) / e.r.eval(a, b)
	}
}

// exprParser is a recursive-descent parser over a byte cursor.
type exprParser struct {
	src  string
	pos  int
	vars []string
}

func parseExpr(src string, vars []string) (*exprNode, error) {
	p := &exprParser{src: src, vars: vars}
	if strings.TrimSpace(src) == "" {
		return nil, errf("empty expression (variables: %s)", strings.Join(vars, ", "))
	}
	n, err := p.addSub()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, errf("expression %q: unexpected %q at offset %d", src, p.src[p.pos:], p.pos)
	}
	return n, nil
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *exprParser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *exprParser) addSub() (*exprNode, error) {
	n, err := p.mulDiv()
	if err != nil {
		return nil, err
	}
	for {
		c := p.peek()
		if c != '+' && c != '-' {
			return n, nil
		}
		p.pos++
		r, err := p.mulDiv()
		if err != nil {
			return nil, err
		}
		n = &exprNode{op: c, l: n, r: r}
	}
}

func (p *exprParser) mulDiv() (*exprNode, error) {
	n, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		c := p.peek()
		if c != '*' && c != '/' {
			return n, nil
		}
		p.pos++
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		n = &exprNode{op: c, l: n, r: r}
	}
}

func (p *exprParser) unary() (*exprNode, error) {
	if p.peek() == '-' {
		p.pos++
		n, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &exprNode{op: 'g', l: n}, nil
	}
	return p.primary()
}

func (p *exprParser) primary() (*exprNode, error) {
	c := p.peek()
	switch {
	case c == '(':
		p.pos++
		n, err := p.addSub()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, errf("expression %q: missing )", p.src)
		}
		p.pos++
		return n, nil
	case c >= '0' && c <= '9' || c == '.':
		start := p.pos
		for p.pos < len(p.src) {
			c := p.src[p.pos]
			if c >= '0' && c <= '9' || c == '.' || c == 'e' || c == 'E' {
				p.pos++
				continue
			}
			// exponent sign
			if (c == '+' || c == '-') && p.pos > start && (p.src[p.pos-1] == 'e' || p.src[p.pos-1] == 'E') {
				p.pos++
				continue
			}
			break
		}
		v, err := strconv.ParseFloat(p.src[start:p.pos], 64)
		if err != nil {
			return nil, errf("expression %q: bad number %q", p.src, p.src[start:p.pos])
		}
		return &exprNode{op: 'n', val: v}, nil
	case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
		start := p.pos
		for p.pos < len(p.src) {
			c := p.src[p.pos]
			if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' {
				p.pos++
				continue
			}
			break
		}
		name := p.src[start:p.pos]
		for i, v := range p.vars {
			if name == v {
				return &exprNode{op: 'v', idx: i}, nil
			}
		}
		return nil, errf("expression %q: unknown variable %q (have: %s)", p.src, name, strings.Join(p.vars, ", "))
	case c == 0:
		return nil, errf("expression %q: unexpected end", p.src)
	default:
		return nil, errf("expression %q: unexpected %q", p.src, string(c))
	}
}

// matchGlob matches s against a pattern where * matches any (possibly
// empty) run of characters; an empty pattern matches everything. It is
// the only wildcard the select stage supports.
func matchGlob(pattern, s string) bool {
	if pattern == "" || pattern == "*" {
		return true
	}
	px, sx := 0, 0
	star, mark := -1, 0
	for sx < len(s) {
		switch {
		case px < len(pattern) && (pattern[px] == s[sx]):
			px++
			sx++
		case px < len(pattern) && pattern[px] == '*':
			star, mark = px, sx
			px++
		case star >= 0:
			px = star + 1
			mark++
			sx = mark
		default:
			return false
		}
	}
	for px < len(pattern) && pattern[px] == '*' {
		px++
	}
	return px == len(pattern)
}
