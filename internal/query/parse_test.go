package query

import (
	"strings"
	"testing"
)

func TestParsePipeline(t *testing.T) {
	q := `select flow=web-* ns=Ingestion/Stream name=IncomingRecords dim.StreamName=clicks | window 30m | filter v > 100 | map v*2+1 | resample 10s p99 | topk 5 | limit 100`
	p, err := Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	ops := make([]string, len(p.Stages))
	for i, s := range p.Stages {
		ops[i] = s.Op
	}
	want := []string{"select", "window", "filter", "map", "resample", "topk", "limit"}
	if strings.Join(ops, ",") != strings.Join(want, ",") {
		t.Fatalf("ops %v, want %v", ops, want)
	}
	sel := p.Stages[0]
	if sel.Flow != "web-*" || sel.Namespace != "Ingestion/Stream" || sel.Name != "IncomingRecords" || sel.Dims["StreamName"] != "clicks" {
		t.Fatalf("select parsed as %+v", sel)
	}
	if p.Stages[2].Cmp != ">" || p.Stages[2].Value != 100 {
		t.Fatalf("filter parsed as %+v", p.Stages[2])
	}
	if p.Stages[4].Period != "10s" || p.Stages[4].Stat != "p99" {
		t.Fatalf("resample parsed as %+v", p.Stages[4])
	}
	if p.Stages[5].K != 5 || p.Stages[6].N != 100 {
		t.Fatalf("sinks parsed as %+v %+v", p.Stages[5], p.Stages[6])
	}
	if _, err := Compile(p); err != nil {
		t.Fatalf("compile: %v", err)
	}
}

func TestParseJoin(t *testing.T) {
	q := `select flow=a name=lat | resample 10s p99 | join 10s l/r (select flow=a name=vms | resample 10s avg) | agg avg`
	p, err := Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	var join *Stage
	for i := range p.Stages {
		if p.Stages[i].Op == "join" {
			join = &p.Stages[i]
		}
	}
	if join == nil {
		t.Fatal("no join stage parsed")
	}
	if join.Period != "10s" || join.Expr != "l/r" {
		t.Fatalf("join parsed as %+v", join)
	}
	if join.Right == nil || len(join.Right.Stages) != 2 {
		t.Fatalf("join right side parsed as %+v", join.Right)
	}
	if _, err := Compile(p); err != nil {
		t.Fatalf("compile: %v", err)
	}
}

func TestParseFilterSpacing(t *testing.T) {
	for _, q := range []string{
		"select flow=a | filter v>100",
		"select flow=a | filter v > 100",
		"select flow=a | filter v >=100",
	} {
		if _, err := Parse(q); err != nil {
			t.Errorf("%q: %v", q, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ q, wantSub string }{
		{"", "empty query"},
		{"select flow=a | | window 3m", "empty stage"},
		{"frobnicate", "unknown stage"},
		{"select flow=a | filter v ~ 3", "comparison"},
		{"select flow=a | join 10s (select flow=b", "unbalanced"},
		{"select bogus", "not key=value"},
		{"select k=v", "unknown select key"},
		{strings.Repeat("x", MaxQueryLen+1), "byte limit"},
	}
	for _, c := range cases {
		_, err := Parse(c.q)
		if err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Parse(%.40q) = %v, want error containing %q", c.q, err, c.wantSub)
		}
		if err != nil {
			var qe *Error
			if !errorAs(err, &qe) {
				t.Errorf("Parse(%.40q) error is %T, want *query.Error", c.q, err)
			}
		}
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct{ q, wantSub string }{
		{"window 3m", "must start with select"},
		{"select flow=a | select flow=b", "first stage"},
		{"select flow=a | window 3m | window 4m", "once"},
		{"select flow=a | topk 0", "topk k"},
		{"select flow=a | limit 0", "limit n"},
		{"select flow=a | resample 10s bogus", "unknown stat"},
		{"select flow=a | resample 5s avg | join 10s (select flow=b)", "does not match"},
		{"select flow=a | join 10s (select flow=b | join 5s (select flow=c))", "join inside a join side"},
		{"select flow=a | join 10s (select flow=b | topk 3)", "join side"},
		{"select flow=a | join 10s (select flow=b) | agg avg", "expression-less join"},
		{"select flow=a | topk 3 | join 10s (select flow=b)", "one join per pipeline"},
		{"select flow=a | agg avg | agg sum", "duplicate sink"},
		{"select flow=a | map v+q", "unknown variable"},
	}
	for _, c := range cases {
		p, err := Parse(c.q)
		if err == nil {
			_, err = Compile(p)
		}
		if err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Compile(%q) = %v, want error containing %q", c.q, err, c.wantSub)
		}
	}
}

func TestExpr(t *testing.T) {
	cases := []struct {
		src  string
		a, b float64
		want float64
	}{
		{"v", 3, 0, 3},
		{"v*2+1", 3, 0, 7},
		{"-v", 3, 0, -3},
		{"(v+1)*(v-1)", 3, 0, 8},
		{"1e3 + v", 2, 0, 1002},
		{"l/r", 10, 4, 2.5},
		{"l - r*2", 10, 4, 2},
	}
	for _, c := range cases {
		vars := exprVarsV
		if strings.ContainsAny(c.src, "lr") && !strings.Contains(c.src, "v") {
			vars = exprVarsLR
		}
		e, err := parseExpr(c.src, vars)
		if err != nil {
			t.Fatalf("parseExpr(%q): %v", c.src, err)
		}
		if got := e.eval(c.a, c.b); got != c.want {
			t.Errorf("%q eval(%v,%v) = %v, want %v", c.src, c.a, c.b, got, c.want)
		}
	}
	for _, bad := range []string{"", "v+", "(v", "v x", "1.2.3", "v**2"} {
		if _, err := parseExpr(bad, exprVarsV); err == nil {
			t.Errorf("parseExpr(%q) succeeded, want error", bad)
		}
	}
}

func TestMatchGlob(t *testing.T) {
	cases := []struct {
		pat, s string
		want   bool
	}{
		{"", "anything", true},
		{"*", "anything", true},
		{"web-*", "web-01", true},
		{"web-*", "db-01", false},
		{"*latency*", "request_latency_ms", true},
		{"a*b*c", "aXXbYYc", true},
		{"a*b*c", "aXXbYY", false},
		{"exact", "exact", true},
		{"exact", "exac", false},
	}
	for _, c := range cases {
		if got := matchGlob(c.pat, c.s); got != c.want {
			t.Errorf("matchGlob(%q, %q) = %v, want %v", c.pat, c.s, got, c.want)
		}
	}
}

// errorAs avoids importing errors just for one assertion.
func errorAs(err error, target **Error) bool {
	for err != nil {
		if e, ok := err.(*Error); ok {
			*target = e
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
