package query

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/metricstore"
	"repro/internal/timeseries"
)

// testSource builds a StaticSource of nFlows flows, each with a latency
// metric (values i, i+1, ... per second) and a vms metric (constant
// per-flow allocation), 600 points each ending at now.
func testSource(t testing.TB, nFlows int) (StaticSource, time.Time) {
	t.Helper()
	now := time.Unix(1_700_000_000, 0).UTC()
	src := make(StaticSource, nFlows)
	for f := 0; f < nFlows; f++ {
		st := metricstore.NewStore()
		base := now.Add(-599 * time.Second)
		for i := 0; i < 600; i++ {
			ts := base.Add(time.Duration(i) * time.Second)
			st.MustPut("Analytics/Cluster", "RequestLatencyMs", map[string]string{"Cluster": "main"},
				ts, float64(100*(f+1)+i%10))
			st.MustPut("Analytics/Cluster", "AllocatedVMs", nil, ts, float64(f+2))
		}
		src[flowName(f)] = StaticFlow{Store: st, Now: now}
	}
	return src, now
}

func flowName(i int) string {
	return "web-" + string(rune('a'+i))
}

func mustRun(t *testing.T, src Source, q string) *Result {
	t.Helper()
	pl, err := Prepare(src, q, nil)
	if err != nil {
		t.Fatalf("Prepare(%q): %v", q, err)
	}
	res, err := pl.Run()
	if err != nil {
		t.Fatalf("Run(%q): %v", q, err)
	}
	return res
}

func TestSelectWindowRaw(t *testing.T) {
	src, now := testSource(t, 2)
	res := mustRun(t, src, "select flow=web-a name=RequestLatencyMs | window 1m")
	if len(res.Series) != 1 {
		t.Fatalf("%d series, want 1", len(res.Series))
	}
	s := res.Series[0]
	if s.Flow != "web-a" || s.Namespace != "Analytics/Cluster" || s.Name != "RequestLatencyMs" {
		t.Fatalf("series identity %+v", s)
	}
	// Window [now-1m, now]: 61 one-second points.
	if len(s.Ts) != 61 {
		t.Fatalf("%d points, want 61", len(s.Ts))
	}
	if s.Ts[len(s.Ts)-1] != now.UnixNano() {
		t.Fatalf("last ts %d, want %d", s.Ts[len(s.Ts)-1], now.UnixNano())
	}
	if res.Rows != 61 {
		t.Fatalf("rows %d, want 61", res.Rows)
	}
}

func TestSelectGlobAndDims(t *testing.T) {
	src, _ := testSource(t, 3)
	res := mustRun(t, src, "select flow=web-* name=*Latency* dim.Cluster=main | window 1m")
	if len(res.Series) != 3 {
		t.Fatalf("%d series, want 3 (one latency per flow)", len(res.Series))
	}
	// A dimension that matches nothing selects nothing — empty result, no error.
	res = mustRun(t, src, "select flow=web-* name=*Latency* dim.Cluster=backup | window 1m")
	if len(res.Series) != 0 {
		t.Fatalf("%d series, want 0", len(res.Series))
	}
}

func TestFilterMapResample(t *testing.T) {
	src, _ := testSource(t, 1)
	// Latency values cycle 100..109; filter >= 105 keeps half, map doubles.
	res := mustRun(t, src, "select flow=web-a name=RequestLatencyMs | window 100s | filter v >= 105 | map v*2 | resample 10s max")
	if len(res.Series) != 1 {
		t.Fatalf("%d series, want 1", len(res.Series))
	}
	s := res.Series[0]
	if len(s.Ts) == 0 {
		t.Fatal("no buckets")
	}
	for i, v := range s.Vs {
		if v != 218 { // max of doubled 105..109 = 218
			t.Fatalf("bucket %d: max %v, want 218", i, v)
		}
		if s.Ts[i]%int64(10*time.Second) != 0 {
			t.Fatalf("bucket %d start %d not epoch-aligned", i, s.Ts[i])
		}
	}
}

func TestResampleP99MatchesScratchlessPercentile(t *testing.T) {
	src, now := testSource(t, 1)
	res := mustRun(t, src, "select flow=web-a name=RequestLatencyMs | window 100s | resample 20s p99")
	s := res.Series[0]
	if len(s.Ts) == 0 {
		t.Fatal("no buckets")
	}
	// Recompute one bucket naively.
	var f StaticFlow = src["web-a"]
	h, ok := f.Store.Lookup("Analytics/Cluster", "RequestLatencyMs", map[string]string{"Cluster": "main"})
	if !ok {
		t.Fatal("lookup failed")
	}
	w := h.Window(metricstore.WindowQuery{From: now.Add(-100 * time.Second), To: now.Add(time.Nanosecond)})
	ts, vs := w.Columns()
	var bucket []float64
	for i := range ts {
		if timeseries.BucketStart(ts[i], 20*time.Second) == s.Ts[0] {
			bucket = append(bucket, vs[i])
		}
	}
	want := timeseries.Percentile(bucket, 99)
	if math.Float64bits(s.Vs[0]) != math.Float64bits(want) {
		t.Fatalf("p99 bucket %v, want %v", s.Vs[0], want)
	}
}

func TestAggFused(t *testing.T) {
	src, _ := testSource(t, 1)
	res := mustRun(t, src, "select flow=web-a name=AllocatedVMs | window 1m | agg sum")
	s := res.Series[0]
	if len(s.Ts) != 1 {
		t.Fatalf("%d points, want 1", len(s.Ts))
	}
	if s.Vs[0] != 61*2 { // 61 points of value 2
		t.Fatalf("sum %v, want %v", s.Vs[0], 61*2)
	}
}

func TestJoinExprAndBroadcast(t *testing.T) {
	src, _ := testSource(t, 2)
	// Per-flow join: latency p99 / allocated VMs.
	res := mustRun(t, src, "select flow=web-* name=RequestLatencyMs | window 1m | resample 10s p99 | join 10s l/r (select flow=web-* name=AllocatedVMs | resample 10s avg)")
	if len(res.Series) != 2 {
		t.Fatalf("%d joined series, want 2", len(res.Series))
	}
	for _, s := range res.Series {
		if s.Right != "Analytics/Cluster/AllocatedVMs" {
			t.Fatalf("right label %q", s.Right)
		}
		if len(s.Ts) == 0 || s.Vs2 != nil {
			t.Fatalf("expr join shape: %d pts, vs2=%v", len(s.Ts), s.Vs2)
		}
	}
	// web-a: p99 latency ≈ 109ish / 2 VMs; just sanity-check division happened.
	if res.Series[0].Vs[0] <= 0 || res.Series[0].Vs[0] >= res.Series[1].Vs[0]*10 {
		t.Fatalf("join values look wrong: %v vs %v", res.Series[0].Vs[0], res.Series[1].Vs[0])
	}

	// Broadcast: right side pinned to one flow matches every left series.
	res = mustRun(t, src, "select flow=web-* name=RequestLatencyMs | window 1m | resample 10s avg | join 10s l/r (select flow=web-a name=AllocatedVMs | resample 10s avg)")
	if len(res.Series) != 2 {
		t.Fatalf("broadcast: %d series, want 2", len(res.Series))
	}
}

func TestJoinDualColumn(t *testing.T) {
	src, _ := testSource(t, 1)
	res := mustRun(t, src, "select flow=web-a name=RequestLatencyMs | window 1m | resample 10s p99 | join 10s (select flow=web-a name=AllocatedVMs | resample 10s avg)")
	if len(res.Series) != 1 {
		t.Fatalf("%d series, want 1", len(res.Series))
	}
	s := res.Series[0]
	if len(s.Vs2) != len(s.Vs) || len(s.Vs) != len(s.Ts) {
		t.Fatalf("dual columns misaligned: %d/%d/%d", len(s.Ts), len(s.Vs), len(s.Vs2))
	}
	for _, v := range s.Vs2 {
		if v != 2 {
			t.Fatalf("right column %v, want 2", v)
		}
	}
}

func TestJoinAggFused(t *testing.T) {
	src, _ := testSource(t, 2)
	res := mustRun(t, src, "select flow=web-* name=RequestLatencyMs | window 1m | resample 10s avg | join 10s l/r (select flow=web-* name=AllocatedVMs | resample 10s avg) | agg avg")
	if len(res.Series) != 2 {
		t.Fatalf("%d series, want 2", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Ts) != 1 {
			t.Fatalf("fused agg left %d points", len(s.Ts))
		}
	}
}

func TestTopKAndLimit(t *testing.T) {
	src, _ := testSource(t, 3)
	// AllocatedVMs is f+2: web-c (4) > web-b (3) > web-a (2).
	res := mustRun(t, src, "select flow=web-* name=AllocatedVMs | window 1m | resample 10s avg | topk 2 | limit 3")
	if len(res.Series) != 2 {
		t.Fatalf("%d series, want 2", len(res.Series))
	}
	if res.Series[0].Flow != "web-c" || res.Series[1].Flow != "web-b" {
		t.Fatalf("topk order %s, %s", res.Series[0].Flow, res.Series[1].Flow)
	}
	for _, s := range res.Series {
		if len(s.Ts) != 3 {
			t.Fatalf("limit left %d points, want 3", len(s.Ts))
		}
	}
}

func TestJoinShortCircuit(t *testing.T) {
	src, _ := testSource(t, 2)
	// Right side matches nothing: inner join is empty regardless of left.
	res := mustRun(t, src, "select flow=web-* name=RequestLatencyMs | window 1m | join 10s l/r (select flow=web-* name=NoSuchMetric)")
	if len(res.Series) != 0 {
		t.Fatalf("%d series, want 0", len(res.Series))
	}
}

func TestExplain(t *testing.T) {
	src, _ := testSource(t, 2)
	pl, err := Prepare(src, "select flow=web-* name=RequestLatencyMs | window 1m | resample 10s p99 | join 10s l/r (select flow=web-a name=AllocatedVMs | resample 10s avg) | agg avg", nil)
	if err != nil {
		t.Fatal(err)
	}
	text := pl.Explain().Text()
	for _, want := range []string{
		"2 flows, 2 series",
		"[pushdown]",
		"View.Align",
		"evaluate right side first (1 ≤ 2 series)",
		"fused into the streaming pass",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("explain text missing %q:\n%s", want, text)
		}
	}
}

func TestMissingFlowIsEmptyNotError(t *testing.T) {
	src, _ := testSource(t, 1)
	res := mustRun(t, src, "select flow=nope-* name=RequestLatencyMs")
	if len(res.Series) != 0 || res.Rows != 0 {
		t.Fatalf("got %d series / %d rows, want empty", len(res.Series), res.Rows)
	}
}

func TestMaxSeriesLimit(t *testing.T) {
	now := time.Unix(1_700_000_000, 0).UTC()
	st := metricstore.NewStore()
	for i := 0; i < MaxSeries+1; i++ {
		st.MustPut("NS", "m", map[string]string{"i": string(rune('a' + i%26)), "j": string(rune('a' + i/26))}, now, 1)
	}
	src := StaticSource{"f": {Store: st, Now: now}}
	_, err := Prepare(src, "select flow=f ns=NS", nil)
	if err == nil || !strings.Contains(err.Error(), "series") {
		t.Fatalf("Prepare over-matching select = %v, want series-limit error", err)
	}
}
