package query

import "repro/internal/telemetry"

// The flower_query_* family: every query counted by outcome, every result
// row accounted, and plan/exec latency as histograms. All instruments are
// process-wide (one engine surface per process) and allocation-free on
// the observation path, like the rest of the telemetry plane.
var (
	telQueries = telemetry.Default().CounterVec("flower_query_queries_total",
		"Queries handled by the query engine, by outcome (ok, invalid).", "outcome")
	telRows = telemetry.Default().Counter("flower_query_rows_total",
		"Result rows (points) streamed out of the query engine.")
	telPlanSeconds = telemetry.Default().Histogram("flower_query_plan_seconds",
		"Query parse+compile+plan latency.", telemetry.DefLatencyBounds)
	telExecSeconds = telemetry.Default().Histogram("flower_query_exec_seconds",
		"Query execution latency.", telemetry.DefLatencyBounds)
	telPlanCacheHits = telemetry.Default().Counter("flower_query_plan_cache_hits_total",
		"Plan-time flow-glob resolutions served from the plan cache.")
	telPlanCacheMisses = telemetry.Default().Counter("flower_query_plan_cache_misses_total",
		"Plan-time flow-glob resolutions that walked the flow set (cold, invalidated, or uncached source).")
)
