// Package flow defines the declarative model of a managed data analytics
// flow: the three layers, their simulated systems, resources, controllers
// and workload. It is the programmatic equivalent of the demo's Flow
// Builder ("drag and drop multiple platforms and create a data analytics
// flow", §4 step 1) and Flow Configuration Wizard ("configure the
// controllers with information such as resource name, desired reference
// value, and monitoring period", §4 step 2).
//
// Specs marshal to and from JSON so cmd/flowctl can persist and validate
// flow definitions, and the simulation harness (internal/sim) materialises
// a Spec into live substrates.
package flow

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/billing"
	"repro/internal/workload"
)

// LayerKind identifies one of the three layers of a flow.
type LayerKind string

// The three layers (§1): every flow has exactly one of each.
const (
	Ingestion LayerKind = "ingestion"
	Analytics LayerKind = "analytics"
	Storage   LayerKind = "storage"
)

// StorageReads labels the storage layer's second elastic resource — read
// capacity, controlled when DashboardSpec is enabled. It is a reporting
// key (violations, actions, utilisation), not a fourth layer: a Spec still
// has exactly the three layers above.
const StorageReads LayerKind = "storage-reads"

// ControllerType selects the provisioning policy for a layer.
type ControllerType string

// Available controllers (§3.3 and baselines).
const (
	ControllerNone          ControllerType = "none"           // static allocation
	ControllerAdaptive      ControllerType = "adaptive"       // the paper's Eq. 6–7
	ControllerMemoryless    ControllerType = "adaptive-nomem" // ablation: Eq. 6–7 without gain memory
	ControllerFixedGain     ControllerType = "fixed-gain"     // Lim et al. [12]
	ControllerQuasiAdaptive ControllerType = "quasi-adaptive" // Padala et al. [14]
	ControllerRule          ControllerType = "rule"           // provider-style thresholds [1]
)

// ControllerSpec is the wizard's per-layer controller configuration.
type ControllerSpec struct {
	Type ControllerType `json:"type"`
	// Ref is the desired reference sensor value yr (percent utilisation).
	Ref float64 `json:"ref"`
	// Window is the monitoring window / control period.
	Window Duration `json:"window"`
	// DeadBand suppresses actions for |error| below it.
	DeadBand float64 `json:"dead_band,omitempty"`

	// Adaptive (Eq. 6–7) parameters.
	L0    float64 `json:"l0,omitempty"`
	Gamma float64 `json:"gamma,omitempty"`
	LMin  float64 `json:"l_min,omitempty"`
	LMax  float64 `json:"l_max,omitempty"`

	// FixedGain parameter.
	L float64 `json:"l,omitempty"`

	// QuasiAdaptive parameter.
	Forgetting float64 `json:"forgetting,omitempty"`

	// Rule parameters.
	High       float64 `json:"high,omitempty"`
	Low        float64 `json:"low,omitempty"`
	UpFactor   float64 `json:"up_factor,omitempty"`
	DownFactor float64 `json:"down_factor,omitempty"`
	Cooldown   int     `json:"cooldown,omitempty"`
}

// LayerSpec configures one layer of the flow.
type LayerSpec struct {
	Kind LayerKind `json:"kind"`
	// System is the display name of the simulated platform (e.g.
	// "kinesis-sim", "storm-sim", "dynamodb-sim").
	System string `json:"system"`
	// Resource is the elastic resource's display name ("shards", "vms",
	// "wcu").
	Resource string `json:"resource"`
	// Initial, Min and Max bound the allocation.
	Initial float64 `json:"initial"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`

	Controller ControllerSpec `json:"controller"`

	// Analytics-layer tuning (ignored elsewhere).
	VMCapacityMsPerSec float64  `json:"vm_capacity_ms_per_sec,omitempty"`
	ProvisionDelay     Duration `json:"provision_delay,omitempty"`
	CPUNoiseStd        float64  `json:"cpu_noise_std,omitempty"`
	BaseCPUPct         float64  `json:"base_cpu_pct,omitempty"`

	// Storage-layer tuning (ignored elsewhere).
	RCU float64 `json:"rcu,omitempty"`
	// Partitions enables the storage hot-partition model (see
	// internal/kvstore); zero or one keeps a single throughput pool.
	Partitions int `json:"partitions,omitempty"`
}

// WorkloadSpec selects a generator pattern by name with parameters, so the
// whole flow definition stays JSON-serialisable.
type WorkloadSpec struct {
	// Pattern is one of "constant", "step", "ramp", "sine", "diurnal",
	// "spike" (diurnal base with a flash crowd).
	Pattern string `json:"pattern"`
	// Base/Peak interpretation depends on the pattern; see ToPattern.
	Base float64 `json:"base"`
	Peak float64 `json:"peak,omitempty"`
	// At and Length position steps, ramps and spikes.
	At     Duration `json:"at,omitempty"`
	Length Duration `json:"length,omitempty"`
	// Period drives sine and diurnal cycles.
	Period Duration `json:"period,omitempty"`
	// Factor multiplies the base during a spike.
	Factor float64 `json:"factor,omitempty"`
	// Poisson selects stochastic arrivals.
	Poisson bool `json:"poisson,omitempty"`
	// Seed drives the generator RNG.
	Seed int64 `json:"seed,omitempty"`
}

// ToPattern materialises the spec into a workload pattern.
func (w WorkloadSpec) ToPattern() (workload.Pattern, error) {
	switch w.Pattern {
	case "constant":
		return workload.Constant(w.Base), nil
	case "step":
		return workload.Step{Before: w.Base, After: w.Peak, At: w.At.D()}, nil
	case "ramp":
		return workload.Ramp{From: w.Base, To: w.Peak, Start: w.At.D(), Length: w.Length.D()}, nil
	case "sine":
		return workload.Sine{Base: w.Base, Amplitude: w.Peak - w.Base, Period: w.Period.D()}, nil
	case "diurnal":
		return workload.Diurnal{Floor: w.Base, Peak: w.Peak, Day: w.Period.D()}, nil
	case "spike":
		factor := w.Factor
		if factor <= 0 {
			factor = 3
		}
		return workload.Spike{
			Base:   workload.Diurnal{Floor: w.Base, Peak: w.Peak, Day: w.Period.D()},
			At:     w.At.D(),
			Length: w.Length.D(),
			Factor: factor,
		}, nil
	default:
		return nil, fmt.Errorf("flow: unknown workload pattern %q", w.Pattern)
	}
}

// DashboardSpec models the read side of the reference click-stream
// architecture [7]: a real-time dashboard querying the storage layer's
// aggregated results. Enabling it gives the storage layer its second
// elastic resource — read capacity units — with its own control loop,
// completing the paper's "DynamoDB read/write units" sensor/actuator
// surface (§2).
type DashboardSpec struct {
	Enabled bool `json:"enabled,omitempty"`
	// Workload is the query-rate pattern (queries/second).
	Workload WorkloadSpec `json:"workload"`
	// ItemBytes is the average read size (default 1024; one strongly
	// consistent read of up to 4 KiB costs one RCU).
	ItemBytes int `json:"item_bytes,omitempty"`
	// InitialRCU, MinRCU and MaxRCU bound the read-capacity allocation.
	InitialRCU float64 `json:"initial_rcu"`
	MinRCU     float64 `json:"min_rcu"`
	MaxRCU     float64 `json:"max_rcu"`
	// Controller drives the read-capacity loop.
	Controller ControllerSpec `json:"controller"`
}

// Spec is a complete flow definition.
type Spec struct {
	Name     string            `json:"name"`
	Layers   []LayerSpec       `json:"layers"`
	Workload WorkloadSpec      `json:"workload"`
	Prices   billing.PriceBook `json:"prices"`
	// BudgetPerHour is the Eq. 4 budget used by the share analyzer.
	BudgetPerHour float64 `json:"budget_per_hour,omitempty"`
	// Dashboard optionally attaches the read-side query workload and its
	// read-capacity controller to the storage layer.
	Dashboard DashboardSpec `json:"dashboard,omitempty"`
}

// Layer returns the layer of the given kind.
func (s Spec) Layer(kind LayerKind) (LayerSpec, bool) {
	for _, l := range s.Layers {
		if l.Kind == kind {
			return l, true
		}
	}
	return LayerSpec{}, false
}

// Validate checks the spec is complete and internally consistent.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("flow: name is required")
	}
	seen := map[LayerKind]bool{}
	for _, l := range s.Layers {
		switch l.Kind {
		case Ingestion, Analytics, Storage:
		default:
			return fmt.Errorf("flow: unknown layer kind %q", l.Kind)
		}
		if seen[l.Kind] {
			return fmt.Errorf("flow: duplicate %s layer", l.Kind)
		}
		seen[l.Kind] = true
		if l.System == "" || l.Resource == "" {
			return fmt.Errorf("flow: %s layer needs system and resource names", l.Kind)
		}
		if l.Min <= 0 || l.Min > l.Max {
			return fmt.Errorf("flow: %s layer allocation range [%v, %v] invalid", l.Kind, l.Min, l.Max)
		}
		if l.Initial < l.Min || l.Initial > l.Max {
			return fmt.Errorf("flow: %s layer initial %v outside [%v, %v]", l.Kind, l.Initial, l.Min, l.Max)
		}
		if err := l.Controller.validate(l.Kind); err != nil {
			return err
		}
	}
	for _, kind := range []LayerKind{Ingestion, Analytics, Storage} {
		if !seen[kind] {
			return fmt.Errorf("flow: missing %s layer", kind)
		}
	}
	if _, err := s.Workload.ToPattern(); err != nil {
		return err
	}
	if err := s.Prices.Validate(); err != nil {
		return err
	}
	if s.Dashboard.Enabled {
		if _, err := s.Dashboard.Workload.ToPattern(); err != nil {
			return fmt.Errorf("flow: dashboard workload: %w", err)
		}
		if s.Dashboard.MinRCU <= 0 || s.Dashboard.MinRCU > s.Dashboard.MaxRCU {
			return fmt.Errorf("flow: dashboard RCU range [%v, %v] invalid",
				s.Dashboard.MinRCU, s.Dashboard.MaxRCU)
		}
		if s.Dashboard.InitialRCU < s.Dashboard.MinRCU || s.Dashboard.InitialRCU > s.Dashboard.MaxRCU {
			return fmt.Errorf("flow: dashboard initial RCU %v outside [%v, %v]",
				s.Dashboard.InitialRCU, s.Dashboard.MinRCU, s.Dashboard.MaxRCU)
		}
		if s.Dashboard.ItemBytes < 0 {
			return fmt.Errorf("flow: dashboard item bytes must be non-negative")
		}
		if err := s.Dashboard.Controller.validate(Storage); err != nil {
			return fmt.Errorf("flow: dashboard controller: %w", err)
		}
	}
	return nil
}

func (c ControllerSpec) validate(kind LayerKind) error {
	switch c.Type {
	case ControllerNone:
		return nil
	case ControllerAdaptive, ControllerMemoryless:
		if c.L0 <= 0 || c.Gamma <= 0 || c.LMin <= 0 || c.LMax < c.LMin {
			return fmt.Errorf("flow: %s adaptive controller needs l0, gamma, l_min <= l_max > 0", kind)
		}
	case ControllerFixedGain:
		if c.L <= 0 {
			return fmt.Errorf("flow: %s fixed-gain controller needs l > 0", kind)
		}
	case ControllerQuasiAdaptive:
		if c.Forgetting <= 0 || c.Forgetting > 1 {
			return fmt.Errorf("flow: %s quasi-adaptive controller needs forgetting in (0, 1]", kind)
		}
	case ControllerRule:
		if c.High <= c.Low || c.UpFactor <= 1 || c.DownFactor <= 0 || c.DownFactor >= 1 {
			return fmt.Errorf("flow: %s rule controller thresholds/factors invalid", kind)
		}
	default:
		return fmt.Errorf("flow: %s layer has unknown controller type %q", kind, c.Type)
	}
	if c.Ref <= 0 && c.Type != ControllerRule && c.Type != ControllerNone {
		return fmt.Errorf("flow: %s controller needs a positive reference value", kind)
	}
	if c.Window.D() <= 0 {
		return fmt.Errorf("flow: %s controller needs a positive monitoring window", kind)
	}
	return nil
}

// MarshalJSON and friends: Duration wraps time.Duration with string JSON
// encoding ("5m", "30s") so flow files stay human-editable.
type Duration time.Duration

// D converts to time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler, accepting either a duration
// string or a number of nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		parsed, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("flow: bad duration %q: %w", s, err)
		}
		*d = Duration(parsed)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("flow: duration must be a string or integer nanoseconds")
	}
	*d = Duration(n)
	return nil
}

// Encode renders the spec as indented JSON.
func (s Spec) Encode() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Decode parses a JSON spec and validates it.
func Decode(data []byte) (Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return Spec{}, fmt.Errorf("flow: decode: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}
