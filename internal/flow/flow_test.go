package flow

import (
	"strings"
	"testing"
	"time"

	"repro/internal/billing"
	"repro/internal/workload"
)

func validSpec(t *testing.T) Spec {
	t.Helper()
	s, err := DefaultClickstream(3000)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDefaultClickstreamIsValid(t *testing.T) {
	s := validSpec(t)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Layers) != 3 {
		t.Fatalf("layers = %d, want 3", len(s.Layers))
	}
	for _, kind := range []LayerKind{Ingestion, Analytics, Storage} {
		l, ok := s.Layer(kind)
		if !ok {
			t.Fatalf("missing %s layer", kind)
		}
		if l.Controller.Type != ControllerAdaptive {
			t.Fatalf("%s controller = %s, want adaptive", kind, l.Controller.Type)
		}
	}
	if _, ok := s.Layer(LayerKind("nope")); ok {
		t.Fatal("bogus layer lookup succeeded")
	}
}

func TestValidateRejectsBrokenSpecs(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Spec)
	}{
		{"no name", func(s *Spec) { s.Name = "" }},
		{"missing layer", func(s *Spec) { s.Layers = s.Layers[:2] }},
		{"duplicate layer", func(s *Spec) { s.Layers = append(s.Layers, s.Layers[0]) }},
		{"bad kind", func(s *Spec) { s.Layers[0].Kind = "cache" }},
		{"no system", func(s *Spec) { s.Layers[0].System = "" }},
		{"zero min", func(s *Spec) { s.Layers[0].Min = 0 }},
		{"initial out of range", func(s *Spec) { s.Layers[0].Initial = 9999 }},
		{"bad controller type", func(s *Spec) { s.Layers[0].Controller.Type = "pid" }},
		{"adaptive without gains", func(s *Spec) { s.Layers[0].Controller.L0 = 0 }},
		{"zero window", func(s *Spec) { s.Layers[0].Controller.Window = 0 }},
		{"zero ref", func(s *Spec) { s.Layers[0].Controller.Ref = 0 }},
		{"bad workload", func(s *Spec) { s.Workload.Pattern = "chaos" }},
		{"bad prices", func(s *Spec) { s.Prices = billing.PriceBook{} }},
	}
	for _, m := range mutations {
		s := validSpec(t)
		m.mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", m.name)
		}
	}
}

func TestControllerSpecVariants(t *testing.T) {
	s := validSpec(t)

	s.Layers[0].Controller = ControllerSpec{Type: ControllerFixedGain, L: 0.05, Ref: 60, Window: Duration(time.Minute)}
	if err := s.Validate(); err != nil {
		t.Fatalf("fixed-gain: %v", err)
	}
	s.Layers[0].Controller = ControllerSpec{Type: ControllerQuasiAdaptive, Forgetting: 0.95, Ref: 60, Window: Duration(time.Minute)}
	if err := s.Validate(); err != nil {
		t.Fatalf("quasi-adaptive: %v", err)
	}
	s.Layers[0].Controller = ControllerSpec{Type: ControllerRule, High: 70, Low: 30, UpFactor: 1.5, DownFactor: 0.7, Window: Duration(time.Minute)}
	if err := s.Validate(); err != nil {
		t.Fatalf("rule: %v", err)
	}
	s.Layers[0].Controller = ControllerSpec{Type: ControllerNone}
	if err := s.Validate(); err != nil {
		t.Fatalf("none: %v", err)
	}

	s.Layers[0].Controller = ControllerSpec{Type: ControllerFixedGain, Ref: 60, Window: Duration(time.Minute)}
	if err := s.Validate(); err == nil {
		t.Fatal("fixed-gain without L accepted")
	}
	s.Layers[0].Controller = ControllerSpec{Type: ControllerQuasiAdaptive, Forgetting: 2, Ref: 60, Window: Duration(time.Minute)}
	if err := s.Validate(); err == nil {
		t.Fatal("bad forgetting accepted")
	}
	s.Layers[0].Controller = ControllerSpec{Type: ControllerRule, High: 30, Low: 70, UpFactor: 1.5, DownFactor: 0.7, Window: Duration(time.Minute)}
	if err := s.Validate(); err == nil {
		t.Fatal("inverted rule thresholds accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := validSpec(t)
	data, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"window": "2m0s"`) {
		t.Fatalf("durations not human-readable in JSON:\n%s", data)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != s.Name || len(back.Layers) != len(s.Layers) {
		t.Fatal("round trip lost data")
	}
	l0, _ := back.Layer(Ingestion)
	orig, _ := s.Layer(Ingestion)
	if l0.Controller.Window.D() != orig.Controller.Window.D() {
		t.Fatalf("window round trip: %v vs %v", l0.Controller.Window.D(), orig.Controller.Window.D())
	}
}

func TestDecodeRejectsInvalid(t *testing.T) {
	if _, err := Decode([]byte(`{not json`)); err == nil {
		t.Fatal("bad JSON accepted")
	}
	if _, err := Decode([]byte(`{"name":""}`)); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestDurationJSON(t *testing.T) {
	var d Duration
	if err := d.UnmarshalJSON([]byte(`"5m"`)); err != nil {
		t.Fatal(err)
	}
	if d.D() != 5*time.Minute {
		t.Fatalf("parsed %v", d.D())
	}
	if err := d.UnmarshalJSON([]byte(`60000000000`)); err != nil {
		t.Fatal(err)
	}
	if d.D() != time.Minute {
		t.Fatalf("parsed int %v", d.D())
	}
	if err := d.UnmarshalJSON([]byte(`"nonsense"`)); err == nil {
		t.Fatal("bad duration string accepted")
	}
	if err := d.UnmarshalJSON([]byte(`true`)); err == nil {
		t.Fatal("bool duration accepted")
	}
}

func TestWorkloadSpecToPattern(t *testing.T) {
	cases := []WorkloadSpec{
		{Pattern: "constant", Base: 100},
		{Pattern: "step", Base: 100, Peak: 500, At: Duration(time.Hour)},
		{Pattern: "ramp", Base: 100, Peak: 500, At: Duration(time.Hour), Length: Duration(time.Hour)},
		{Pattern: "sine", Base: 100, Peak: 200, Period: Duration(time.Hour)},
		{Pattern: "diurnal", Base: 100, Peak: 1000, Period: Duration(24 * time.Hour)},
		{Pattern: "spike", Base: 100, Peak: 500, Period: Duration(24 * time.Hour), At: Duration(time.Hour), Length: Duration(10 * time.Minute), Factor: 4},
	}
	for _, ws := range cases {
		p, err := ws.ToPattern()
		if err != nil {
			t.Fatalf("%s: %v", ws.Pattern, err)
		}
		if err := workload.Validate(p, 24*time.Hour); err != nil {
			t.Fatalf("%s: %v", ws.Pattern, err)
		}
	}
	// Spike defaults factor to 3 when unset.
	ws := WorkloadSpec{Pattern: "spike", Base: 100, Peak: 200, Period: Duration(time.Hour), At: Duration(time.Minute), Length: Duration(time.Minute)}
	p, err := ws.ToPattern()
	if err != nil {
		t.Fatal(err)
	}
	inSpike := p.Rate(90 * time.Second)
	if inSpike <= p.Rate(0) {
		t.Fatal("default spike factor not applied")
	}
}

func TestBuilderOverrides(t *testing.T) {
	spec, err := NewBuilder("custom").
		WithWorkload(WorkloadSpec{Pattern: "constant", Base: 800}).
		WithIngestion(4, 1, 10, DefaultAdaptive(50, time.Minute, 4)).
		WithAnalytics(4, 1, 10, DefaultAdaptive(50, time.Minute, 4)).
		WithStorage(500, 100, 5000, DefaultAdaptive(50, time.Minute, 500)).
		WithPrices(billing.PriceBook{ShardHour: 1, VMHour: 2, WCUHour: 0.01, RCUHour: 0.01}).
		WithBudget(42).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if spec.BudgetPerHour != 42 || spec.Prices.VMHour != 2 {
		t.Fatal("overrides not applied")
	}
	ing, _ := spec.Layer(Ingestion)
	if ing.Initial != 4 || ing.Max != 10 {
		t.Fatal("ingestion config not applied")
	}
}

func TestBuilderRejectsIncomplete(t *testing.T) {
	_, err := NewBuilder("incomplete").
		WithIngestion(1, 1, 10, DefaultAdaptive(60, time.Minute, 4)).
		Build()
	if err == nil {
		t.Fatal("incomplete flow accepted")
	}
}

func TestDefaultAdaptiveScales(t *testing.T) {
	small := DefaultAdaptive(60, time.Minute, 4)
	large := DefaultAdaptive(60, time.Minute, 400)
	if large.L0 <= small.L0 {
		t.Fatal("gain did not scale with allocation magnitude")
	}
	if small.LMin >= small.LMax {
		t.Fatal("gain bounds inverted")
	}
}
