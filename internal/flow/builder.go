package flow

import (
	"time"

	"repro/internal/billing"
)

// Builder assembles a Spec fluently — the programmatic Flow Builder. Each
// With* method returns the builder for chaining; Build validates the
// result.
type Builder struct {
	spec Spec
}

// NewBuilder starts a flow definition with default prices and the
// reference click-stream workload.
func NewBuilder(name string) *Builder {
	return &Builder{spec: Spec{
		Name:   name,
		Prices: billing.DefaultPriceBook(),
		Workload: WorkloadSpec{
			Pattern: "diurnal",
			Base:    500,
			Peak:    3000,
			Period:  Duration(9 * time.Hour),
			Poisson: true,
			Seed:    1,
		},
	}}
}

// WithIngestion adds the ingestion layer (stream shards).
func (b *Builder) WithIngestion(initial, min, max float64, ctrl ControllerSpec) *Builder {
	b.spec.Layers = append(b.spec.Layers, LayerSpec{
		Kind:       Ingestion,
		System:     "kinesis-sim",
		Resource:   "shards",
		Initial:    initial,
		Min:        min,
		Max:        max,
		Controller: ctrl,
	})
	return b
}

// WithAnalytics adds the analytics layer (cluster VMs).
func (b *Builder) WithAnalytics(initial, min, max float64, ctrl ControllerSpec) *Builder {
	b.spec.Layers = append(b.spec.Layers, LayerSpec{
		Kind:               Analytics,
		System:             "storm-sim",
		Resource:           "vms",
		Initial:            initial,
		Min:                min,
		Max:                max,
		Controller:         ctrl,
		VMCapacityMsPerSec: 1000,
		CPUNoiseStd:        1.5,
		BaseCPUPct:         4.8,
	})
	return b
}

// WithStorage adds the storage layer (table write capacity units).
func (b *Builder) WithStorage(initial, min, max float64, ctrl ControllerSpec) *Builder {
	b.spec.Layers = append(b.spec.Layers, LayerSpec{
		Kind:       Storage,
		System:     "dynamodb-sim",
		Resource:   "wcu",
		Initial:    initial,
		Min:        min,
		Max:        max,
		Controller: ctrl,
		RCU:        100,
	})
	return b
}

// EditLayer applies fn to the named layer's spec, if present — the hook
// for the wizard's "internal settings" (provisioning delay, CPU noise, VM
// capacity, partitions) that have sensible defaults but are tunable per
// flow. Unknown layers are ignored; Build's validation still runs.
func (b *Builder) EditLayer(kind LayerKind, fn func(*LayerSpec)) *Builder {
	for i := range b.spec.Layers {
		if b.spec.Layers[i].Kind == kind {
			fn(&b.spec.Layers[i])
		}
	}
	return b
}

// WithProvisionDelay sets how long the named layer's resize actions take
// to become effective (VM boot time, cluster rebalance). The layer must
// already have been added.
func (b *Builder) WithProvisionDelay(kind LayerKind, d time.Duration) *Builder {
	return b.EditLayer(kind, func(l *LayerSpec) { l.ProvisionDelay = Duration(d) })
}

// WithDashboard attaches the read-side query workload to the storage
// layer: a dashboard issuing reads at the given query-rate pattern, with a
// dedicated read-capacity controller.
func (b *Builder) WithDashboard(initialRCU, minRCU, maxRCU float64, qps WorkloadSpec, ctrl ControllerSpec) *Builder {
	b.spec.Dashboard = DashboardSpec{
		Enabled:    true,
		Workload:   qps,
		InitialRCU: initialRCU,
		MinRCU:     minRCU,
		MaxRCU:     maxRCU,
		Controller: ctrl,
	}
	return b
}

// WithWorkload replaces the workload spec.
func (b *Builder) WithWorkload(w WorkloadSpec) *Builder {
	b.spec.Workload = w
	return b
}

// WithPrices replaces the price book.
func (b *Builder) WithPrices(p billing.PriceBook) *Builder {
	b.spec.Prices = p
	return b
}

// WithBudget sets the hourly budget for share analysis.
func (b *Builder) WithBudget(perHour float64) *Builder {
	b.spec.BudgetPerHour = perHour
	return b
}

// Build validates and returns the spec.
func (b *Builder) Build() (Spec, error) {
	if err := b.spec.Validate(); err != nil {
		return Spec{}, err
	}
	return b.spec, nil
}

// DefaultAdaptive returns the wizard's default adaptive-controller
// configuration (Eq. 6–7) for a layer whose allocation is of magnitude
// `scale` units: gains are scaled so that a 10-point utilisation error at
// the initial gain moves the allocation by roughly 5% of scale, with the
// gain free to grow 15× under sustained error (the paper's rapid
// elasticity) and to fall to half under over-provisioning.
func DefaultAdaptive(ref float64, window time.Duration, scale float64) ControllerSpec {
	l0 := 0.005 * scale
	return ControllerSpec{
		Type:     ControllerAdaptive,
		Ref:      ref,
		Window:   Duration(window),
		DeadBand: 5,
		L0:       l0,
		Gamma:    l0 / 2,
		LMin:     l0 / 2,
		LMax:     l0 * 15,
	}
}

// DefaultClickstream builds the paper's Fig. 1 flow with adaptive
// controllers on all three layers, a 9-hour diurnal click-stream workload
// peaking at `peak` records/second, and 2017-era prices. It is both the
// quickstart configuration and the basis of the experiments.
func DefaultClickstream(peak float64) (Spec, error) {
	window := 2 * time.Minute
	return NewBuilder("clickstream").
		WithWorkload(WorkloadSpec{
			Pattern: "diurnal",
			Base:    peak / 6,
			Peak:    peak,
			Period:  Duration(9 * time.Hour),
			Poisson: true,
			Seed:    1,
		}).
		WithIngestion(2, 1, 50, DefaultAdaptive(60, window, 4)).
		WithAnalytics(2, 1, 50, DefaultAdaptive(60, window, 4)).
		WithStorage(200, 50, 20000, DefaultAdaptive(60, window, 400)).
		WithBudget(1.0).
		Build()
}
