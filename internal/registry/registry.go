// Package registry is the multi-flow heart of the v1 control plane: a
// concurrency-safe collection of named, independently-managed flows. Where
// the original HTTP server wrapped exactly one core.Manager behind one
// server-wide mutex, the registry gives every flow its own lock, so one
// daemon can create, advance, pace and delete many flows concurrently —
// the prerequisite for the ROADMAP's many-tenants north star.
//
// Pacing runs on the shared execution plane (internal/sched): StartPacing
// registers a periodic schedulable on the registry's scheduler instead of
// spawning a goroutine, so ten thousand paced flows cost ten thousand
// timer-wheel entries — not ten thousand goroutines — and flow advances
// are co-scheduled (and weighted-fairness-arbitrated) with the Scenario
// Lab's experiment trials when both share one scheduler.
package registry

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/eventbus"
	"repro/internal/flow"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// WAL is the registry's durability hook: every control-plane mutation is
// appended — and made durable — through it *before* the mutation is
// applied and acknowledged. An append error aborts the mutation and is
// returned to the caller (the HTTP layer maps persist.ErrDegraded onto
// 503). The registry defines the interface rather than importing the
// persist package, so persist can depend on registry for recovery
// without a cycle; persist.ControlLog is the production implementation.
// Reads, advances and watch streams never touch the WAL: only mutations
// of control-plane *state* (what exists, how it is paced, how its
// controllers are tuned) are durable.
type WAL interface {
	FlowCreated(id string, spec flow.Spec, opts sim.Options) error
	// FlowPaced records a pacing change; pace 0 is a stop.
	FlowPaced(id string, pace float64, wallTick time.Duration) error
	// FlowTuned records a controller tuning; nil fields were untouched.
	FlowTuned(id string, kind flow.LayerKind, ref, deadBand *float64, window *time.Duration) error
	FlowDeleted(id string) error
}

// walBox wraps the WAL for atomic.Pointer publication: SetWAL is called
// once at boot after recovery, possibly while pacers already tick, so
// readers must not need a lock.
type walBox struct{ w WAL }

// Errors returned by registry operations; the HTTP layer maps them onto
// status codes (409, 404, 400).
var (
	ErrExists   = errors.New("flow already exists")
	ErrNotFound = errors.New("flow not found")
	ErrBadID    = errors.New("invalid flow id")
	ErrDeleted  = errors.New("flow deleted")
)

// MaxIDLength bounds flow identifiers so they stay usable as URL path
// segments and log fields.
const MaxIDLength = 64

// ValidateID checks that id is non-empty, within length bounds, and made of
// URL-path-safe characters (letters, digits, '.', '_', '-').
func ValidateID(id string) error {
	if id == "" {
		return fmt.Errorf("%w: empty", ErrBadID)
	}
	if len(id) > MaxIDLength {
		return fmt.Errorf("%w: %q longer than %d bytes", ErrBadID, id, MaxIDLength)
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return fmt.Errorf("%w: %q contains %q (allowed: letters, digits, '.', '_', '-')", ErrBadID, id, r)
		}
	}
	return nil
}

// Flow is one registered flow: a core.Manager plus the lock that serialises
// all simulation access to it and the state of its optional pacer. Two
// different flows never contend on each other's locks.
type Flow struct {
	id      string
	created time.Time
	bus     *eventbus.Bus    // the owning registry's event bus (nil in tests that build flows directly)
	sched   *sched.Scheduler // the owning registry's execution plane (nil likewise)
	reg     *Registry        // the owning registry, for its WAL hook (nil likewise)
	opts    sim.Options      // the options the flow was materialised under (for checkpoints)

	// mu serialises every touch of mgr (the simulation harness is
	// single-threaded by design). deleting rides under it so Delete can
	// fence event publication: once set, Advance stops publishing and
	// StartPacing refuses, which is what lets Delete guarantee that no
	// flow event follows flow.deleted on the bus.
	mu       sync.Mutex
	mgr      *core.Manager
	deleting bool

	// pacerMu guards the pacer fields below. It is separate from mu so
	// pacer lifecycle calls can wait on the scheduler ticket, whose tick
	// function itself acquires mu through Advance.
	pacerMu  sync.Mutex
	ticket   *sched.Ticket
	pace     float64
	wallTick time.Duration
	// pacerErr records why the last pacer died on its own (an Advance
	// failure); cleared when a new pacer starts.
	pacerErr error
}

// ID returns the flow's registry identifier.
func (f *Flow) ID() string { return f.id }

// Created returns when the flow was registered (wall clock).
func (f *Flow) Created() time.Time { return f.created }

// Options returns the sim.Options the flow was materialised under —
// what a checkpoint needs to re-create it faithfully.
func (f *Flow) Options() sim.Options { return f.opts }

// walHook returns the owning registry's WAL, or nil.
func (f *Flow) walHook() WAL {
	if f.reg == nil {
		return nil
	}
	return f.reg.walHook()
}

// View runs fn with exclusive access to the flow's manager. The manager and
// everything reachable from it (harness, store, loops) must only be touched
// inside fn.
func (f *Flow) View(fn func(m *core.Manager)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	fn(f.mgr)
}

// Advance runs the flow's simulation forward by d under the flow lock and
// publishes the advance — and every controller decision it produced — on
// the registry's event bus. Publication happens while f.mu is still held
// (the lock is deferred, so a panicking run — caught by the HTTP recovery
// middleware — cannot leak it): concurrent advances of the same flow thus
// publish in the same order they mutated the simulation, and watch
// consumers never see the tick counter move backwards. Publish never
// blocks (bounded subscriber buffers), so the flow lock is not held
// hostage to slow consumers. On a flow being deleted the simulation still
// runs (an advance in flight when Delete lands finishes harmlessly), but
// nothing is published: flow.deleted is final on the stream.
func (f *Flow) Advance(d time.Duration) (sim.Result, error) {
	return f.advance(d, telemetry.Traces.Begin(f.id))
}

// advance is Advance plus tick-trace stamping: tr, when non-nil, is the
// sampled trace the pacer began for this advance, and the stage marks
// (flow lock acquired, controller step done, event published) land here.
// All trace calls are nil-safe, so the untraced path pays nothing.
func (f *Flow) advance(d time.Duration, tr *telemetry.Trace) (sim.Result, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	tr.Mark(telemetry.StageSchedFire)
	marks := markDecisions(f.mgr)
	res, err := f.mgr.Run(d)
	tr.Mark(telemetry.StageController)
	if err != nil {
		telemetry.Traces.Abandon(tr)
		return res, err
	}
	if f.deleting {
		telemetry.Traces.Abandon(tr)
		return res, nil
	}
	seq := f.publishAdvance(d, res, f.mgr.Harness().Clock.Now(), newDecisions(f.mgr, marks))
	telemetry.Traces.Publish(tr, seq)
	telAdvances.Inc()
	return res, nil
}

// StartPacing advances the flow continuously: every wallTick of wall time,
// the flow moves pace simulated seconds per wall second. The pacer is a
// periodic job on the registry's scheduler — no goroutine or timer is
// owned by the flow — with the scheduler's bounded catch-up policy: a flow
// that cannot keep up (slow simulation, saturated workers) drops ticks and
// lags wall time instead of accumulating an unbounded advance backlog. A
// pacer already running is replaced. Safe to call concurrently with
// StopPacing.
func (f *Flow) StartPacing(pace float64, wallTick time.Duration) error {
	if pace <= 0 {
		return fmt.Errorf("pace %v must be positive", pace)
	}
	if wallTick <= 0 {
		return fmt.Errorf("wall tick %v must be positive", wallTick)
	}
	if f.sched == nil {
		return fmt.Errorf("flow %q has no scheduler (not registered through a registry)", f.id)
	}
	f.mu.Lock()
	simStep := f.mgr.Harness().Scheduler.Step()
	f.mu.Unlock()

	f.pacerMu.Lock()
	defer f.pacerMu.Unlock()
	// Durability first: the pace change is appended to the WAL before
	// the old pacer is disturbed or the new one armed, so a WAL failure
	// (degraded plane) leaves the running state exactly as it was. A
	// record logged just before a racing Delete's fence is harmless:
	// replay ignores pace records for deleted flows.
	if w := f.walHook(); w != nil {
		if err := w.FlowPaced(f.id, pace, wallTick); err != nil {
			return err
		}
	}
	f.stopPacerLocked()
	// Re-read the delete fence now that pacerMu is held: Delete sets it
	// (under f.mu) strictly before draining the pacer under pacerMu, so a
	// fence observed false here guarantees a racing Delete has not passed
	// its StopPacing yet and will stop — and un-publish-order — whatever
	// is registered below. Checking before taking pacerMu would leave a
	// window for a whole Delete to slip through and an orphan pacer to
	// outlive its flow. (Taking f.mu under pacerMu is safe: no path holds
	// f.mu while acquiring pacerMu.)
	f.mu.Lock()
	deleting := f.deleting
	f.mu.Unlock()
	if deleting {
		return fmt.Errorf("%w: %q", ErrDeleted, f.id)
	}

	perWallTick := time.Duration(pace * float64(wallTick))
	var debt time.Duration // simulated time owed but not yet advanced
	var ticket *sched.Ticket
	tick := func(n int) error {
		// The scheduler advances in whole simulation steps, so carry
		// sub-step remainders forward instead of losing them. n > 1 means
		// the scheduler is catching this flow up after falling behind.
		telPaceTicks.Add(uint64(n))
		debt += time.Duration(n) * perWallTick
		if due := debt / simStep * simStep; due > 0 {
			debt -= due
			// Begin the (sampled) tick trace before taking the flow lock so
			// the sched_fire stage measures fire-to-lock latency.
			if _, err := f.advance(due, telemetry.Traces.Begin(f.id)); err != nil {
				return err
			}
		}
		return nil
	}
	onStop := func(err error) {
		// The pacer died on its own (an Advance failure). Clear the pacer
		// state if nobody has replaced it yet, and tell watch consumers
		// pacing stopped — StopPacing never ran, so nobody else will.
		// Published under pacerMu so it cannot interleave with a
		// concurrent StartPacing's event.
		f.pacerMu.Lock()
		defer f.pacerMu.Unlock()
		if f.ticket != ticket {
			return
		}
		f.ticket = nil
		f.pace, f.wallTick = 0, 0
		f.pacerErr = err
		telFlowsPacing.Dec()
		if f.bus != nil {
			f.bus.Publish(EventFlowPace, f.id, FlowPace{ID: f.id, Running: false, Error: err.Error()})
		}
	}
	t, err := f.sched.Periodic("flow/"+f.id, sched.ClassFlow, wallTick, tick, onStop)
	if err != nil {
		return fmt.Errorf("pace flow %q: %w", f.id, err)
	}
	// onStop reads `ticket` under pacerMu, which this call still holds, so
	// the assignment is visible before any callback can observe it.
	ticket = t
	f.ticket = t
	f.pace, f.wallTick = pace, wallTick
	f.pacerErr = nil
	telFlowsPacing.Inc()
	if f.bus != nil {
		f.bus.Publish(EventFlowPace, f.id, FlowPace{ID: f.id, Running: true, Pace: pace})
	}
	return nil
}

// StopPacing halts the flow's pacer, if any, and waits for any in-flight
// pacer tick to finish: after it returns, the pacer will never advance the
// flow or publish again. The pace event is published under pacerMu, like
// StartPacing's, so the stream's pace events appear in the order the
// transitions happened. Stopping a flow that is not pacing is a no-op.
// Like every control-plane mutation, the stop is WAL-appended before it
// is applied; a degraded WAL refuses it and the pacer keeps running.
func (f *Flow) StopPacing() error {
	f.pacerMu.Lock()
	defer f.pacerMu.Unlock()
	if f.ticket == nil {
		return nil // nothing running: no state change to make durable
	}
	if w := f.walHook(); w != nil {
		if err := w.FlowPaced(f.id, 0, 0); err != nil {
			return err
		}
	}
	f.stopPacerLocked()
	if f.bus != nil {
		f.bus.Publish(EventFlowPace, f.id, FlowPace{ID: f.id, Running: false})
	}
	return nil
}

// stopPacingQuiet stops the pacer without a WAL append: Delete's record
// subsumes the stop, and Close is a process shutdown, not a mutation —
// a paced flow must still be paced after recovery. The stop event is
// still published for live watchers.
func (f *Flow) stopPacingQuiet() {
	f.pacerMu.Lock()
	defer f.pacerMu.Unlock()
	had := f.ticket != nil
	f.stopPacerLocked()
	if had && f.bus != nil {
		f.bus.Publish(EventFlowPace, f.id, FlowPace{ID: f.id, Running: false})
	}
}

// stopPacerLocked clears the pacer state and stops the scheduler job,
// waiting for an in-flight tick; pacerMu must be held. The ticket-swap
// under pacerMu guarantees exactly one caller retires a given pacer.
func (f *Flow) stopPacerLocked() {
	t := f.ticket
	f.ticket = nil
	f.pace, f.wallTick = 0, 0
	if t != nil {
		t.Stop()
		telFlowsPacing.Dec()
	}
}

// Pacing reports whether a pacer is running and at what pace.
func (f *Flow) Pacing() (pace float64, wallTick time.Duration, running bool) {
	f.pacerMu.Lock()
	defer f.pacerMu.Unlock()
	return f.pace, f.wallTick, f.ticket != nil
}

// PaceError returns why the last pacer died on its own (an Advance
// failure), or nil. Starting a new pacer clears it.
func (f *Flow) PaceError() error {
	f.pacerMu.Lock()
	defer f.pacerMu.Unlock()
	return f.pacerErr
}

// Tune atomically updates the controller parameters of one layer's loop;
// nil arguments leave that parameter unchanged. It reports whether the
// layer has a controller at all (found false: nothing to tune), and —
// because a tuning is control-plane state that must survive a restart —
// appends the change to the WAL before applying it: a degraded WAL
// refuses the tune with the loop untouched. Callers validate ranges
// before calling; the registry only orders durability against
// application.
func (f *Flow) Tune(kind flow.LayerKind, ref, deadBand *float64, window *time.Duration) (found bool, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	loop, ok := f.mgr.Harness().Loops[kind]
	if !ok {
		return false, nil
	}
	if ref == nil && deadBand == nil && window == nil {
		return true, nil // nothing changes: nothing to log
	}
	if w := f.walHook(); w != nil {
		if err := w.FlowTuned(f.id, kind, ref, deadBand, window); err != nil {
			return true, err
		}
	}
	if ref != nil {
		loop.SetRef(*ref)
	}
	if window != nil {
		loop.SetWindow(*window)
	}
	if deadBand != nil {
		loop.SetDeadBand(*deadBand)
	}
	return true, nil
}

// Registry is a concurrency-safe collection of named flows sharing one
// execution plane.
type Registry struct {
	mu       sync.RWMutex
	flows    map[string]*Flow
	bus      *eventbus.Bus
	sched    *sched.Scheduler
	ownSched bool // New created the scheduler, so Close releases it

	// wal, once set, makes every mutation durable-before-acknowledged.
	// Atomic (not under mu) because boot attaches it after recovery
	// replay while recovered pacers may already be ticking.
	wal atomic.Pointer[walBox]
}

// Option configures a Registry.
type Option func(*Registry)

// WithScheduler runs the registry's pacers on s instead of a private
// scheduler — the unified-execution-plane wiring: hand the same scheduler
// to the registry and the lab engine and one capacity knob governs both.
// The caller owns s's lifecycle (the registry never closes it).
func WithScheduler(s *sched.Scheduler) Option {
	return func(r *Registry) { r.sched = s }
}

// New returns an empty registry. Without WithScheduler it creates a
// private default-sized scheduler for its pacers.
func New(opts ...Option) *Registry {
	r := &Registry{flows: make(map[string]*Flow), bus: eventbus.New(0)}
	for _, o := range opts {
		o(r)
	}
	if r.sched == nil {
		r.sched = sched.New(sched.Config{})
		r.ownSched = true
	}
	return r
}

// Scheduler returns the execution plane the registry's pacers run on.
func (r *Registry) Scheduler() *sched.Scheduler { return r.sched }

// SetWAL attaches the durability hook: from now on every mutation
// (create, pace, tune, delete) is appended to w before it is applied.
// Attach after recovery replay — replaying through a registry with the
// WAL already attached would re-log every record. Passing nil detaches.
func (r *Registry) SetWAL(w WAL) {
	if w == nil {
		r.wal.Store(nil)
		return
	}
	r.wal.Store(&walBox{w: w})
}

// walHook returns the attached WAL, or nil.
func (r *Registry) walHook() WAL {
	if b := r.wal.Load(); b != nil {
		return b.w
	}
	return nil
}

// Create materialises spec under opts and registers it as id. It fails with
// ErrBadID for unusable ids, ErrExists for duplicates, and passes through
// materialisation errors (invalid specs).
func (r *Registry) Create(id string, spec flow.Spec, opts sim.Options) (*Flow, error) {
	if err := ValidateID(id); err != nil {
		return nil, err
	}
	// Materialise outside the registry lock: sim.New is the expensive part
	// and must not serialise unrelated creates.
	mgr, err := core.NewManager(spec, opts)
	if err != nil {
		return nil, err
	}
	//flowervet:allow wallclock(flow creation timestamps are operator metadata, not simulation state)
	f := &Flow{id: id, created: time.Now(), bus: r.bus, sched: r.sched, reg: r, opts: opts, mgr: mgr}

	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.flows[id]; dup {
		return nil, fmt.Errorf("%w: %q", ErrExists, id)
	}
	// Durable before acknowledged: the create is WAL-appended under r.mu
	// — after the duplicate check, before the map insert — so the log's
	// create/delete order for one id matches the registry's, and a WAL
	// failure refuses the create with nothing registered.
	if w := r.walHook(); w != nil {
		if err := w.FlowCreated(id, spec, opts); err != nil {
			return nil, fmt.Errorf("flow %q: %w", id, err)
		}
	}
	r.flows[id] = f
	telFlows.Inc()
	telFlowsCreated.Inc()
	// Published under r.mu, like Delete's event: watch consumers must
	// never see flow.deleted precede flow.created for the same id.
	r.bus.Publish(EventFlowCreated, id, FlowLifecycle{ID: id, Name: spec.Name})
	return f, nil
}

// Get returns the flow registered as id.
func (r *Registry) Get(id string) (*Flow, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.flows[id]
	return f, ok
}

// List returns all flows sorted by id.
func (r *Registry) List() []*Flow {
	r.mu.RLock()
	out := make([]*Flow, 0, len(r.flows))
	for _, f := range r.flows {
		out = append(out, f)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// Len returns the number of registered flows.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.flows)
}

// Delete stops the flow's pacer and removes it from the registry, in an
// order that makes flow.deleted final on the event stream: first the flow
// is fenced (advances stop publishing, new pacers are refused), then the
// pacer is stopped and drained, and only then is flow.deleted published —
// so no flow.pace or flow.advanced can trail it. An Advance already in
// flight when the fence lands finishes on the detached flow harmlessly,
// publishing nothing.
func (r *Registry) Delete(id string) error {
	r.mu.RLock()
	f, ok := r.flows[id]
	r.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}

	// Durable before destructive: the delete is WAL-appended before the
	// fence lands, so a WAL failure refuses the delete with the flow
	// fully intact. (Two racing Deletes may both append; replaying a
	// delete of an absent flow is a no-op.)
	if w := r.walHook(); w != nil {
		if err := w.FlowDeleted(id); err != nil {
			return fmt.Errorf("flow %q: %w", id, err)
		}
	}

	// Fence under f.mu: any Advance that already holds the flow lock
	// publishes before this acquires it; every later one sees the flag.
	f.mu.Lock()
	f.deleting = true
	f.mu.Unlock()

	// Quiet stop: the delete record subsumes the pace stop in the log.
	f.stopPacingQuiet() // waits for an in-flight pacer tick; publishes the stop

	r.mu.Lock()
	if _, still := r.flows[id]; !still {
		// A concurrent Delete got here first and already published.
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	delete(r.flows, id)
	telFlows.Dec()
	telFlowsDeleted.Inc()
	// Under r.mu, so the lifecycle order matches the map's: created before
	// deleted, always.
	r.bus.Publish(EventFlowDeleted, id, FlowLifecycle{ID: id})
	r.mu.Unlock()
	return nil
}

// Close stops every flow's pacer and, when the registry created its own
// scheduler (no WithScheduler), drains and releases it — so a registry
// built with plain New leaks nothing. A shared scheduler is left running
// for its owner to close after every producer is quiet. Flows remain
// readable after Close; pacing a privately-scheduled registry again
// fails with the scheduler's ErrClosed.
func (r *Registry) Close() {
	for _, f := range r.List() {
		// Quiet: shutdown is not a mutation — a flow paced at crash or
		// shutdown must come back paced after recovery.
		f.stopPacingQuiet()
	}
	if r.ownSched {
		r.sched.Close()
	}
}
