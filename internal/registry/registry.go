// Package registry is the multi-flow heart of the v1 control plane: a
// concurrency-safe collection of named, independently-managed flows. Where
// the original HTTP server wrapped exactly one core.Manager behind one
// server-wide mutex, the registry gives every flow its own lock and its own
// optional wall-clock pacer, so one daemon can create, advance, pace and
// delete many flows concurrently — the prerequisite for the ROADMAP's
// many-tenants north star.
package registry

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/eventbus"
	"repro/internal/flow"
	"repro/internal/sim"
)

// Errors returned by registry operations; the HTTP layer maps them onto
// status codes (409, 404, 400).
var (
	ErrExists   = errors.New("flow already exists")
	ErrNotFound = errors.New("flow not found")
	ErrBadID    = errors.New("invalid flow id")
)

// MaxIDLength bounds flow identifiers so they stay usable as URL path
// segments and log fields.
const MaxIDLength = 64

// ValidateID checks that id is non-empty, within length bounds, and made of
// URL-path-safe characters (letters, digits, '.', '_', '-').
func ValidateID(id string) error {
	if id == "" {
		return fmt.Errorf("%w: empty", ErrBadID)
	}
	if len(id) > MaxIDLength {
		return fmt.Errorf("%w: %q longer than %d bytes", ErrBadID, id, MaxIDLength)
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return fmt.Errorf("%w: %q contains %q (allowed: letters, digits, '.', '_', '-')", ErrBadID, id, r)
		}
	}
	return nil
}

// Flow is one registered flow: a core.Manager plus the lock that serialises
// all simulation access to it and the state of its optional pacer. Two
// different flows never contend on each other's locks.
type Flow struct {
	id      string
	created time.Time
	bus     *eventbus.Bus // the owning registry's event bus (nil in tests that build flows directly)

	// mu serialises every touch of mgr (the simulation harness is
	// single-threaded by design).
	mu  sync.Mutex
	mgr *core.Manager

	// pacerMu guards the pacer fields below. It is separate from mu so
	// stopping a pacer can wait for the pacer goroutine, which itself
	// acquires mu through Advance.
	pacerMu   sync.Mutex
	pacerStop chan struct{}
	pacerDone chan struct{}
	pace      float64
	wallTick  time.Duration
	// pacerErr records why the last pacer died on its own (an Advance
	// failure); cleared when a new pacer starts.
	pacerErr error
}

// ID returns the flow's registry identifier.
func (f *Flow) ID() string { return f.id }

// Created returns when the flow was registered (wall clock).
func (f *Flow) Created() time.Time { return f.created }

// View runs fn with exclusive access to the flow's manager. The manager and
// everything reachable from it (harness, store, loops) must only be touched
// inside fn.
func (f *Flow) View(fn func(m *core.Manager)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	fn(f.mgr)
}

// Advance runs the flow's simulation forward by d under the flow lock and
// publishes the advance — and every controller decision it produced — on
// the registry's event bus. Publication happens while f.mu is still held
// (the lock is deferred, so a panicking run — caught by the HTTP recovery
// middleware — cannot leak it): concurrent advances of the same flow thus
// publish in the same order they mutated the simulation, and watch
// consumers never see the tick counter move backwards. Publish never
// blocks (bounded subscriber buffers), so the flow lock is not held
// hostage to slow consumers.
func (f *Flow) Advance(d time.Duration) (sim.Result, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	marks := markDecisions(f.mgr)
	res, err := f.mgr.Run(d)
	if err != nil {
		return res, err
	}
	f.publishAdvance(d, res, f.mgr.Harness().Clock.Now(), newDecisions(f.mgr, marks))
	return res, nil
}

// StartPacing advances the flow continuously: every wallTick of wall time,
// the flow moves pace simulated seconds per wall second. A pacer already
// running is replaced. Safe to call concurrently with StopPacing — the
// pacer state has its own lock, fixing the double-close race of the old
// single-flow server.
func (f *Flow) StartPacing(pace float64, wallTick time.Duration) error {
	if pace <= 0 {
		return fmt.Errorf("pace %v must be positive", pace)
	}
	if wallTick <= 0 {
		return fmt.Errorf("wall tick %v must be positive", wallTick)
	}
	f.mu.Lock()
	simStep := f.mgr.Harness().Scheduler.Step()
	f.mu.Unlock()

	f.pacerMu.Lock()
	defer f.pacerMu.Unlock()
	f.stopPacerLocked()

	stop := make(chan struct{})
	done := make(chan struct{})
	f.pacerStop, f.pacerDone = stop, done
	f.pace, f.wallTick = pace, wallTick
	f.pacerErr = nil
	perWallTick := time.Duration(pace * float64(wallTick))
	go func() {
		var failure error
		// On an Advance failure the pacer dies on its own: close done
		// FIRST (a concurrent StopPacing may be waiting on it while
		// holding pacerMu), then clear the pacer state if nobody has
		// replaced it yet, so the flow doesn't report a dead pacer as
		// running.
		defer func() {
			close(done)
			f.pacerMu.Lock()
			if f.pacerDone == done {
				f.pacerStop, f.pacerDone = nil, nil
				f.pace, f.wallTick = 0, 0
				f.pacerErr = failure
				// A pacer that died on its own (an Advance failure) must
				// tell watch consumers pacing stopped — StopPacing never
				// ran, so nobody else will. Published under pacerMu so it
				// cannot interleave with a concurrent StartPacing's event.
				if failure != nil && f.bus != nil {
					f.bus.Publish(EventFlowPace, f.id, FlowPace{ID: f.id, Running: false, Error: failure.Error()})
				}
			}
			f.pacerMu.Unlock()
		}()
		t := time.NewTicker(wallTick)
		defer t.Stop()
		var debt time.Duration // simulated time owed but not yet advanced
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				// The scheduler advances in whole simulation steps, so
				// carry sub-step remainders forward instead of losing them.
				debt += perWallTick
				if due := debt / simStep * simStep; due > 0 {
					debt -= due
					if _, err := f.Advance(due); err != nil {
						failure = err
						return
					}
				}
			}
		}
	}()
	if f.bus != nil {
		f.bus.Publish(EventFlowPace, f.id, FlowPace{ID: f.id, Running: true, Pace: pace})
	}
	return nil
}

// StopPacing halts the flow's pacer, if any, and waits for it to exit.
// The pace event is published under pacerMu, like StartPacing's, so the
// stream's pace events appear in the order the transitions happened.
func (f *Flow) StopPacing() {
	f.pacerMu.Lock()
	defer f.pacerMu.Unlock()
	had := f.pacerStop != nil
	f.stopPacerLocked()
	if had && f.bus != nil {
		f.bus.Publish(EventFlowPace, f.id, FlowPace{ID: f.id, Running: false})
	}
}

// stopPacerLocked swaps the pacer channels out under pacerMu, so exactly
// one caller ever closes a given stop channel.
func (f *Flow) stopPacerLocked() {
	stop, done := f.pacerStop, f.pacerDone
	f.pacerStop, f.pacerDone = nil, nil
	f.pace, f.wallTick = 0, 0
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// Pacing reports whether a pacer is running and at what pace.
func (f *Flow) Pacing() (pace float64, wallTick time.Duration, running bool) {
	f.pacerMu.Lock()
	defer f.pacerMu.Unlock()
	return f.pace, f.wallTick, f.pacerStop != nil
}

// PaceError returns why the last pacer died on its own (an Advance
// failure), or nil. Starting a new pacer clears it.
func (f *Flow) PaceError() error {
	f.pacerMu.Lock()
	defer f.pacerMu.Unlock()
	return f.pacerErr
}

// Registry is a concurrency-safe collection of named flows.
type Registry struct {
	mu    sync.RWMutex
	flows map[string]*Flow
	bus   *eventbus.Bus
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{flows: make(map[string]*Flow), bus: eventbus.New(0)}
}

// Create materialises spec under opts and registers it as id. It fails with
// ErrBadID for unusable ids, ErrExists for duplicates, and passes through
// materialisation errors (invalid specs).
func (r *Registry) Create(id string, spec flow.Spec, opts sim.Options) (*Flow, error) {
	if err := ValidateID(id); err != nil {
		return nil, err
	}
	// Materialise outside the registry lock: sim.New is the expensive part
	// and must not serialise unrelated creates.
	mgr, err := core.NewManager(spec, opts)
	if err != nil {
		return nil, err
	}
	f := &Flow{id: id, created: time.Now(), bus: r.bus, mgr: mgr}

	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.flows[id]; dup {
		return nil, fmt.Errorf("%w: %q", ErrExists, id)
	}
	r.flows[id] = f
	// Published under r.mu, like Delete's event: watch consumers must
	// never see flow.deleted precede flow.created for the same id.
	r.bus.Publish(EventFlowCreated, id, FlowLifecycle{ID: id, Name: spec.Name})
	return f, nil
}

// Get returns the flow registered as id.
func (r *Registry) Get(id string) (*Flow, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.flows[id]
	return f, ok
}

// List returns all flows sorted by id.
func (r *Registry) List() []*Flow {
	r.mu.RLock()
	out := make([]*Flow, 0, len(r.flows))
	for _, f := range r.flows {
		out = append(out, f)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// Len returns the number of registered flows.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.flows)
}

// Delete stops the flow's pacer and removes it from the registry. An
// Advance already in flight finishes on the detached flow harmlessly.
func (r *Registry) Delete(id string) error {
	r.mu.Lock()
	f, ok := r.flows[id]
	delete(r.flows, id)
	if ok {
		// Under r.mu so the event order matches the map's: created before
		// deleted, always. (The pacer below may still emit one trailing
		// flow.pace while winding down; lifecycle order is what matters.)
		r.bus.Publish(EventFlowDeleted, id, FlowLifecycle{ID: id})
	}
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	f.StopPacing()
	return nil
}

// Close stops every flow's pacer. The registry remains usable.
func (r *Registry) Close() {
	for _, f := range r.List() {
		f.StopPacing()
	}
}
