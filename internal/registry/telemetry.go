package registry

import "repro/internal/telemetry"

// Process-wide registry telemetry. The pacing gauge transitions exactly
// where the pacer state machine does — StartPacing's install, every
// stopPacerLocked retirement, and the onStop self-death path — so it can
// never drift from Pacing()'s truth.
var (
	telFlows = telemetry.Default().Gauge("flower_registry_flows",
		"Flows currently registered.")
	telFlowsPacing = telemetry.Default().Gauge("flower_registry_flows_pacing",
		"Flows with a live pacer.")
	telFlowsCreated = telemetry.Default().Counter("flower_registry_flows_created_total",
		"Flows ever created.")
	telFlowsDeleted = telemetry.Default().Counter("flower_registry_flows_deleted_total",
		"Flows ever deleted.")
	telAdvances = telemetry.Default().Counter("flower_registry_advances_total",
		"Flow advances completed (manual and pacer-driven).")
	telPaceTicks = telemetry.Default().Counter("flower_registry_pace_ticks_total",
		"Pacer intervals delivered by the scheduler (including catch-up intervals).")
)
