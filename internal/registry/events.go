package registry

import (
	"time"

	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/eventbus"
	"repro/internal/flow"
	"repro/internal/sim"
)

// Watch event types published on the registry's bus. The topic of every
// event is the flow's registry id, so subscribers filter per flow.
const (
	EventFlowCreated  = "flow.created"
	EventFlowDeleted  = "flow.deleted"
	EventFlowAdvanced = "flow.advanced"
	EventFlowDecision = "flow.decision"
	EventFlowPace     = "flow.pace"
)

// FlowLifecycle is the payload of flow.created / flow.deleted.
type FlowLifecycle struct {
	ID   string `json:"id"`
	Name string `json:"name,omitempty"`
}

// FlowAdvanced is the payload of flow.advanced: one completed Advance
// (manual or pacer tick) with the flow's cumulative run counters.
type FlowAdvanced struct {
	ID            string    `json:"id"`
	Advanced      string    `json:"advanced"`
	SimTime       time.Time `json:"sim_time"`
	Ticks         int       `json:"ticks"`
	ViolationRate float64   `json:"violation_rate"`
	TotalCost     float64   `json:"total_cost_usd"`
}

// FlowDecision is the payload of flow.decision: one control action a
// layer's controller took during an advance.
type FlowDecision struct {
	ID       string    `json:"id"`
	Layer    string    `json:"layer"`
	At       time.Time `json:"at"`
	Measured float64   `json:"measured"`
	Ref      float64   `json:"ref"`
	OldU     float64   `json:"old_allocation"`
	NewU     float64   `json:"new_allocation"`
	Applied  bool      `json:"applied"`
	Note     string    `json:"note,omitempty"`
}

// FlowPace is the payload of flow.pace: the pacer was started or stopped.
// Error is set when the pacer died on its own because advancing failed.
type FlowPace struct {
	ID      string  `json:"id"`
	Running bool    `json:"running"`
	Pace    float64 `json:"pace,omitempty"`
	Error   string  `json:"error,omitempty"`
}

// Events returns the registry's event bus: every flow lifecycle change,
// advance, controller decision and pacer transition is published on it,
// with the flow id as the topic. The HTTP watch endpoints subscribe here.
func (r *Registry) Events() *eventbus.Bus { return r.bus }

// decisionMark snapshots how many decisions each control loop has
// recorded, so the new ones an advance produced can be published after it.
type decisionMark map[flow.LayerKind]int

// markDecisions must run under f.mu.
func markDecisions(m *core.Manager) decisionMark {
	loops := m.Harness().Loops
	marks := make(decisionMark, len(loops))
	for kind, loop := range loops {
		marks[kind] = len(loop.Decisions())
	}
	return marks
}

// newDecisions must run under f.mu; it copies the decisions recorded since
// the mark so they can be published outside the lock.
func newDecisions(m *core.Manager, marks decisionMark) map[flow.LayerKind][]control.Decision {
	var out map[flow.LayerKind][]control.Decision
	for kind, loop := range m.Harness().Loops {
		all := loop.Decisions()
		if from := marks[kind]; len(all) > from {
			if out == nil {
				out = make(map[flow.LayerKind][]control.Decision)
			}
			out[kind] = append([]control.Decision(nil), all[from:]...)
		}
	}
	return out
}

// publishAdvance emits the flow.advanced event plus one flow.decision per
// control action the advance produced, returning the flow.advanced event's
// bus sequence (0 when the flow has no bus) so the tick tracer can match
// the event's SSE delivery. Advance calls it under f.mu so concurrent
// advances publish in simulation order; that is safe because Publish never
// blocks on subscribers.
func (f *Flow) publishAdvance(d time.Duration, res sim.Result, simTime time.Time, decided map[flow.LayerKind][]control.Decision) uint64 {
	if f.bus == nil {
		return 0
	}
	seq := f.bus.Publish(EventFlowAdvanced, f.id, FlowAdvanced{
		ID:            f.id,
		Advanced:      d.String(),
		SimTime:       simTime,
		Ticks:         res.Ticks,
		ViolationRate: res.ViolationRate,
		TotalCost:     res.TotalCost,
	})
	for kind, ds := range decided {
		for _, dec := range ds {
			f.bus.Publish(EventFlowDecision, f.id, FlowDecision{
				ID:       f.id,
				Layer:    string(kind),
				At:       dec.At,
				Measured: dec.Measured,
				Ref:      dec.Ref,
				OldU:     dec.OldU,
				NewU:     dec.NewU,
				Applied:  dec.Applied,
				Note:     dec.Note,
			})
		}
	}
	return seq
}
