package registry

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/flow"
	"repro/internal/sched"
	"repro/internal/sim"
)

// logEntry is one recorded WAL call.
type logEntry struct {
	op string
	id string
}

// fakeWAL records every hook call and can be told to fail, standing in
// for a degraded persist.ControlLog.
type fakeWAL struct {
	mu      sync.Mutex
	entries []logEntry
	err     error
}

func (w *fakeWAL) log(op, id string) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	w.entries = append(w.entries, logEntry{op, id})
	return nil
}

func (w *fakeWAL) fail(err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.err = err
}

func (w *fakeWAL) ops() []logEntry {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]logEntry(nil), w.entries...)
}

func (w *fakeWAL) FlowCreated(id string, spec flow.Spec, opts sim.Options) error {
	return w.log("create", id)
}
func (w *fakeWAL) FlowPaced(id string, pace float64, wallTick time.Duration) error {
	return w.log("pace", id)
}
func (w *fakeWAL) FlowTuned(id string, kind flow.LayerKind, ref, deadBand *float64, window *time.Duration) error {
	return w.log("tune", id)
}
func (w *fakeWAL) FlowDeleted(id string) error { return w.log("delete", id) }

func TestWALHookSeesEveryMutation(t *testing.T) {
	plane := sched.New(sched.Config{Shards: 1, Workers: 1})
	defer plane.Close()
	r := New(WithScheduler(plane))
	defer r.Close()
	w := &fakeWAL{}
	r.SetWAL(w)

	f, err := r.Create("a", testSpec(t, "a"), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.StartPacing(10, 50*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	ref := 80.0
	if found, err := f.Tune(flow.Ingestion, &ref, nil, nil); err != nil || !found {
		t.Fatalf("Tune: found=%v err=%v", found, err)
	}
	if err := f.StopPacing(); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete("a"); err != nil {
		t.Fatal(err)
	}

	want := []logEntry{{"create", "a"}, {"pace", "a"}, {"tune", "a"}, {"pace", "a"}, {"delete", "a"}}
	got := w.ops()
	if len(got) != len(want) {
		t.Fatalf("WAL saw %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("WAL saw %v, want %v", got, want)
		}
	}
}

func TestWALFailureAbortsMutation(t *testing.T) {
	plane := sched.New(sched.Config{Shards: 1, Workers: 1})
	defer plane.Close()
	r := New(WithScheduler(plane))
	defer r.Close()
	w := &fakeWAL{}
	r.SetWAL(w)

	f, err := r.Create("a", testSpec(t, "a"), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}

	boom := errors.New("disk full")
	w.fail(boom)

	// Create: refused, nothing registered.
	if _, err := r.Create("b", testSpec(t, "b"), sim.Options{}); !errors.Is(err, boom) {
		t.Fatalf("Create on failing WAL = %v, want the WAL error", err)
	}
	if _, ok := r.Get("b"); ok {
		t.Fatal("unlogged flow was registered")
	}

	// Pace: refused, pacer not armed.
	if err := f.StartPacing(10, 50*time.Millisecond); !errors.Is(err, boom) {
		t.Fatalf("StartPacing on failing WAL = %v", err)
	}
	if _, _, running := f.Pacing(); running {
		t.Fatal("unlogged pacer is running")
	}

	// Tune: refused, ref untouched.
	ref := 99.0
	if _, err := f.Tune(flow.Ingestion, &ref, nil, nil); !errors.Is(err, boom) {
		t.Fatalf("Tune on failing WAL = %v", err)
	}

	// Delete: refused, flow still present.
	if err := r.Delete("a"); !errors.Is(err, boom) {
		t.Fatalf("Delete on failing WAL = %v", err)
	}
	if _, ok := r.Get("a"); !ok {
		t.Fatal("flow vanished despite the WAL refusing the delete")
	}

	// Reads keep working while mutations are refused.
	if len(r.List()) != 1 {
		t.Fatalf("List len = %d", len(r.List()))
	}

	// Detaching the hook restores an ephemeral (pre-WAL) registry.
	r.SetWAL(nil)
	if err := f.StartPacing(10, 50*time.Millisecond); err != nil {
		t.Fatalf("StartPacing after detach: %v", err)
	}
}

func TestStopPacingIdleIsNotAMutation(t *testing.T) {
	r := New()
	defer r.Close()
	w := &fakeWAL{}
	r.SetWAL(w)
	f, err := r.Create("a", testSpec(t, "a"), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Stopping an idle pacer is a no-op and must not log a record.
	if err := f.StopPacing(); err != nil {
		t.Fatal(err)
	}
	got := w.ops()
	if len(got) != 1 || got[0].op != "create" {
		t.Fatalf("WAL saw %v, want only the create", got)
	}
}
