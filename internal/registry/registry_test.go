package registry

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/sched"
	"repro/internal/sim"
)

func testSpec(t *testing.T, name string) flow.Spec {
	t.Helper()
	spec, err := flow.DefaultClickstream(2000)
	if err != nil {
		t.Fatal(err)
	}
	spec.Name = name
	return spec
}

func TestCreateGetListDelete(t *testing.T) {
	r := New()
	if _, err := r.Create("a", testSpec(t, "a"), sim.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create("b", testSpec(t, "b"), sim.Options{}); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("len = %d, want 2", r.Len())
	}
	if f, ok := r.Get("a"); !ok || f.ID() != "a" {
		t.Fatalf("Get(a) = %v, %v", f, ok)
	}
	if _, ok := r.Get("nope"); ok {
		t.Error("Get(nope) found a flow")
	}
	flows := r.List()
	if len(flows) != 2 || flows[0].ID() != "a" || flows[1].ID() != "b" {
		t.Fatalf("List not sorted by id: %v, %v", flows[0].ID(), flows[1].ID())
	}
	if err := r.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete("a"); !errors.Is(err, ErrNotFound) {
		t.Errorf("second delete err = %v, want ErrNotFound", err)
	}
	if r.Len() != 1 {
		t.Fatalf("len after delete = %d, want 1", r.Len())
	}
}

func TestCreateRejectsDuplicatesAndBadIDs(t *testing.T) {
	r := New()
	if _, err := r.Create("dup", testSpec(t, "dup"), sim.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create("dup", testSpec(t, "dup"), sim.Options{}); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate err = %v, want ErrExists", err)
	}
	for _, id := range []string{"", "has space", "slash/y", "q?x", string(make([]byte, MaxIDLength+1))} {
		if _, err := r.Create(id, testSpec(t, "x"), sim.Options{}); !errors.Is(err, ErrBadID) {
			t.Errorf("Create(%q) err = %v, want ErrBadID", id, err)
		}
	}
	if err := ValidateID("ok-id_1.2"); err != nil {
		t.Errorf("ValidateID(ok-id_1.2) = %v", err)
	}
}

func TestCreateRejectsInvalidSpec(t *testing.T) {
	r := New()
	if _, err := r.Create("bad", flow.Spec{Name: "bad"}, sim.Options{}); err == nil {
		t.Error("empty spec materialised")
	}
	if r.Len() != 0 {
		t.Errorf("failed create left %d flows registered", r.Len())
	}
}

func TestFlowsAdvanceIndependently(t *testing.T) {
	r := New()
	a, err := r.Create("a", testSpec(t, "a"), sim.Options{Step: 10 * time.Second, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Create("b", testSpec(t, "b"), sim.Options{Step: 10 * time.Second, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Advance(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Advance(20 * time.Minute); err != nil {
		t.Fatal(err)
	}
	ticks := func(f *Flow) (n int) {
		f.View(func(m *core.Manager) { n = m.Harness().Result().Ticks })
		return
	}
	if got := ticks(a); got != 60 {
		t.Errorf("a ticks = %d, want 60", got)
	}
	if got := ticks(b); got != 120 {
		t.Errorf("b ticks = %d, want 120", got)
	}
}

// TestConcurrentAdvanceAcrossFlows drives many flows from many goroutines;
// run with -race to prove per-flow locking suffices.
func TestConcurrentAdvanceAcrossFlows(t *testing.T) {
	r := New()
	const flows = 4
	for i := 0; i < flows; i++ {
		id := fmt.Sprintf("f%d", i)
		if _, err := r.Create(id, testSpec(t, id), sim.Options{Step: 10 * time.Second, Seed: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for _, f := range r.List() {
		for w := 0; w < 3; w++ {
			wg.Add(1)
			go func(f *Flow) {
				defer wg.Done()
				if _, err := f.Advance(5 * time.Minute); err != nil {
					t.Errorf("%s: %v", f.ID(), err)
				}
			}(f)
		}
	}
	wg.Wait()
	for _, f := range r.List() {
		var ticks int
		f.View(func(m *core.Manager) { ticks = m.Harness().Result().Ticks })
		if ticks != 90 { // 3 goroutines x 5 minutes at 10s ticks
			t.Errorf("%s: ticks = %d, want 90", f.ID(), ticks)
		}
	}
}

func TestPacerAdvancesAndStops(t *testing.T) {
	r := New()
	f, err := r.Create("paced", testSpec(t, "paced"), sim.Options{Step: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ticks := func() (n int) {
		f.View(func(m *core.Manager) { n = m.Harness().Result().Ticks })
		return
	}
	// 20 simulated minutes per wall second, ticking every 10ms: each wall
	// tick owes 12s of simulated time, comfortably above the 10s sim step.
	if err := f.StartPacing(1200, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, _, running := f.Pacing(); !running {
		t.Error("pacer not reported running")
	}
	time.Sleep(120 * time.Millisecond)
	f.StopPacing()
	after := ticks()
	if after == 0 {
		t.Error("pacer did not advance")
	}
	if _, _, running := f.Pacing(); running {
		t.Error("pacer reported running after stop")
	}
	// After StopPacing, time must stand still.
	time.Sleep(50 * time.Millisecond)
	if later := ticks(); later != after {
		t.Errorf("pacer still running after stop: %d -> %d ticks", after, later)
	}
}

func TestStopPacingWithoutStartIsNoop(t *testing.T) {
	r := New()
	f, err := r.Create("idle", testSpec(t, "idle"), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f.StopPacing() // must not panic
}

func TestPacingRejectsBadArguments(t *testing.T) {
	r := New()
	f, err := r.Create("x", testSpec(t, "x"), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.StartPacing(0, time.Millisecond); err == nil {
		t.Error("pace 0 accepted")
	}
	if err := f.StartPacing(60, 0); err == nil {
		t.Error("wall tick 0 accepted")
	}
}

// TestConcurrentStartStopPacing hammers the pacer lifecycle from many
// goroutines. The old single-flow server read pacerStop/pacerDone without
// a lock, so concurrent calls could double-close the stop channel and
// panic; with -race this test proves the per-flow pacer state is safe.
func TestConcurrentStartStopPacing(t *testing.T) {
	r := New()
	f, err := r.Create("hammer", testSpec(t, "hammer"), sim.Options{Step: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				if i%2 == 0 {
					if err := f.StartPacing(600, 5*time.Millisecond); err != nil {
						t.Error(err)
					}
				} else {
					f.StopPacing()
				}
			}
		}(i)
	}
	wg.Wait()
	f.StopPacing()
	if _, _, running := f.Pacing(); running {
		t.Error("pacer running after final stop")
	}
}

func TestPaceErrorNilAcrossLifecycle(t *testing.T) {
	r := New()
	f, err := r.Create("ok", testSpec(t, "ok"), sim.Options{Step: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.StartPacing(1200, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	time.Sleep(40 * time.Millisecond)
	f.StopPacing()
	if err := f.PaceError(); err != nil {
		t.Errorf("PaceError after clean stop = %v", err)
	}
	// Restarting clears any recorded failure and runs again.
	if err := f.StartPacing(1200, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	f.StopPacing()
	if err := f.PaceError(); err != nil {
		t.Errorf("PaceError after restart = %v", err)
	}
}

func TestDeleteStopsPacer(t *testing.T) {
	r := New()
	f, err := r.Create("doomed", testSpec(t, "doomed"), sim.Options{Step: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.StartPacing(1200, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete("doomed"); err != nil {
		t.Fatal(err)
	}
	if _, _, running := f.Pacing(); running {
		t.Error("pacer running after delete")
	}
}

func TestCloseStopsAllPacers(t *testing.T) {
	r := New()
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("p%d", i)
		f, err := r.Create(id, testSpec(t, id), sim.Options{Step: 10 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		if err := f.StartPacing(1200, 10*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	r.Close()
	for _, f := range r.List() {
		if _, _, running := f.Pacing(); running {
			t.Errorf("%s: pacer running after Close", f.ID())
		}
	}
}

// lightSpec is a minimal three-layer flow for scale tests: constant
// workload, small windows, no dashboard — the cheapest spec that still
// exercises the full advance path.
func lightSpec(t testing.TB, name string) flow.Spec {
	t.Helper()
	spec, err := flow.NewBuilder(name).
		WithWorkload(flow.WorkloadSpec{Pattern: "constant", Base: 1000}).
		WithIngestion(2, 1, 50, flow.DefaultAdaptive(60, 2*time.Minute, 4)).
		WithAnalytics(2, 1, 50, flow.DefaultAdaptive(60, 2*time.Minute, 4)).
		WithStorage(200, 50, 20000, flow.DefaultAdaptive(60, 2*time.Minute, 400)).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestDeleteMidPacePublishesNothingAfterDeleted deletes an actively pacing
// flow and asserts flow.deleted is the final event for that flow on the
// bus: the pacer is fenced and drained before the lifecycle event goes
// out, so no flow.pace or flow.advanced can trail it. Run with -race.
func TestDeleteMidPacePublishesNothingAfterDeleted(t *testing.T) {
	r := New()
	sub := r.Events().Subscribe(8192, 0, nil)
	defer sub.Close()

	f, err := r.Create("doomed", testSpec(t, "doomed"), sim.Options{Step: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.StartPacing(2400, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Let the pacer publish advances, then delete mid-pace.
	deadline := time.Now().Add(time.Minute)
	for {
		var ticks int
		f.View(func(m *core.Manager) { ticks = m.Harness().Result().Ticks })
		if ticks > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pacer never advanced")
		}
		time.Sleep(time.Millisecond)
	}
	if err := r.Delete("doomed"); err != nil {
		t.Fatal(err)
	}
	// Any straggling publication would land within a tick or two.
	time.Sleep(50 * time.Millisecond)

	var types []string
	for {
		select {
		case ev := <-sub.Events():
			types = append(types, ev.Type)
			continue
		default:
		}
		break
	}
	if n := sub.Dropped(); n > 0 {
		t.Fatalf("subscriber dropped %d events; buffer too small for the test", n)
	}
	deletedAt := -1
	for i, typ := range types {
		if typ == EventFlowDeleted {
			deletedAt = i
		}
	}
	if deletedAt < 0 {
		t.Fatalf("no flow.deleted on the stream: %v", types)
	}
	if rest := types[deletedAt+1:]; len(rest) > 0 {
		t.Fatalf("events published after flow.deleted: %v", rest)
	}
	// And the deletion must have stopped the clock.
	var before int
	f.View(func(m *core.Manager) { before = m.Harness().Result().Ticks })
	time.Sleep(30 * time.Millisecond)
	var after int
	f.View(func(m *core.Manager) { after = m.Harness().Result().Ticks })
	if after != before {
		t.Fatalf("detached flow still pacing: %d -> %d ticks", before, after)
	}
}

// TestDeleteRacesPacerHammer repeats delete-mid-pace with a fast tick many
// times; -race proves the fence/drain/publish order holds under load.
func TestDeleteRacesPacerHammer(t *testing.T) {
	r := New()
	sub := r.Events().Subscribe(16384, 0, nil)
	defer sub.Close()
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("flow-%d", i)
		f, err := r.Create(id, lightSpec(t, id), sim.Options{Step: 10 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		if err := f.StartPacing(6000, 2*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		go func() { _ = r.Delete(id) }()
	}
	deadline := time.Now().Add(time.Minute)
	for r.Len() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("deletes never finished")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(30 * time.Millisecond)
	lastOfFlow := map[string]string{}
	for {
		select {
		case ev := <-sub.Events():
			lastOfFlow[ev.Topic] = ev.Type
			continue
		default:
		}
		break
	}
	for id, typ := range lastOfFlow {
		if typ != EventFlowDeleted {
			t.Errorf("flow %s: final event %q, want %q", id, typ, EventFlowDeleted)
		}
	}
}

// TestThousandFlowsPacedGoroutineBound paces 1000 flows concurrently on
// the shared scheduler and asserts the goroutine count stays O(shards),
// not O(flows) — the defining property of the unified execution plane.
// Run with -race (the acceptance bar of the scheduler refactor).
func TestThousandFlowsPacedGoroutineBound(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-flow scale test")
	}
	base := runtime.NumGoroutine()
	s := sched.New(sched.Config{Shards: 8, Workers: 1})
	defer s.Close()
	r := New(WithScheduler(s))

	spec := lightSpec(t, "scale")
	const flows = 1000
	for i := 0; i < flows; i++ {
		id := fmt.Sprintf("f-%04d", i)
		sp := spec
		sp.Name = id
		f, err := r.Create(id, sp, sim.Options{Step: 10 * time.Second, Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		// 240 sim-seconds per wall second at a 50ms tick: 12s owed per
		// tick, one-plus sim steps each — heavily oversubscribed on
		// purpose; the bounded catch-up policy absorbs the overload.
		if err := f.StartPacing(240, 50*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}

	// O(shards) not O(flows): 8 shards contribute ~16 scheduler
	// goroutines. Anything near the flow count means pacers spawned
	// goroutines again.
	if g := runtime.NumGoroutine(); g > base+flows/4 {
		t.Fatalf("goroutine count O(flows): %d for %d paced flows (base %d)", g, flows, base)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		total := 0
		for _, f := range r.List() {
			f.View(func(m *core.Manager) { total += m.Harness().Result().Ticks })
			if total > 50 {
				break
			}
		}
		if total > 50 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("1000 paced flows made no progress")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > base+flows/4 {
		t.Fatalf("goroutine count grew towards O(flows) while pacing: %d (base %d)", g, base)
	}
	st := s.Stats()
	if st.ExecutedFlow == 0 {
		t.Fatal("scheduler executed no flow ticks")
	}
	r.Close()
}

// TestStartPacingRacingDeleteNeverOrphansPacer races StartPacing against
// Delete: whatever the interleaving, once both return the flow must not
// be pacing (an orphan pacer would advance an unreachable flow forever),
// and the final event for the flow must still be flow.deleted. Run with
// -race.
func TestStartPacingRacingDeleteNeverOrphansPacer(t *testing.T) {
	r := New()
	sub := r.Events().Subscribe(16384, 0, nil)
	defer sub.Close()
	for i := 0; i < 25; i++ {
		id := fmt.Sprintf("race-%d", i)
		f, err := r.Create(id, lightSpec(t, id), sim.Options{Step: 10 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			_ = r.Delete(id)
		}()
		go func() {
			defer wg.Done()
			// Either outcome is legal; an orphan pacer is not.
			_ = f.StartPacing(600, 5*time.Millisecond)
		}()
		wg.Wait()
		// Delete has returned: it either fenced before the pacer
		// registered (StartPacing failed) or stopped the one that won.
		if _, _, running := f.Pacing(); running {
			t.Fatalf("iteration %d: pacer running after Delete returned", i)
		}
	}
	time.Sleep(30 * time.Millisecond)
	lastOfFlow := map[string]string{}
	for {
		select {
		case ev := <-sub.Events():
			lastOfFlow[ev.Topic] = ev.Type
			continue
		default:
		}
		break
	}
	for id, typ := range lastOfFlow {
		if typ != EventFlowDeleted {
			t.Errorf("flow %s: final event %q, want %q", id, typ, EventFlowDeleted)
		}
	}
}
