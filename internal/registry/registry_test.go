package registry

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/sim"
)

func testSpec(t *testing.T, name string) flow.Spec {
	t.Helper()
	spec, err := flow.DefaultClickstream(2000)
	if err != nil {
		t.Fatal(err)
	}
	spec.Name = name
	return spec
}

func TestCreateGetListDelete(t *testing.T) {
	r := New()
	if _, err := r.Create("a", testSpec(t, "a"), sim.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create("b", testSpec(t, "b"), sim.Options{}); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("len = %d, want 2", r.Len())
	}
	if f, ok := r.Get("a"); !ok || f.ID() != "a" {
		t.Fatalf("Get(a) = %v, %v", f, ok)
	}
	if _, ok := r.Get("nope"); ok {
		t.Error("Get(nope) found a flow")
	}
	flows := r.List()
	if len(flows) != 2 || flows[0].ID() != "a" || flows[1].ID() != "b" {
		t.Fatalf("List not sorted by id: %v, %v", flows[0].ID(), flows[1].ID())
	}
	if err := r.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete("a"); !errors.Is(err, ErrNotFound) {
		t.Errorf("second delete err = %v, want ErrNotFound", err)
	}
	if r.Len() != 1 {
		t.Fatalf("len after delete = %d, want 1", r.Len())
	}
}

func TestCreateRejectsDuplicatesAndBadIDs(t *testing.T) {
	r := New()
	if _, err := r.Create("dup", testSpec(t, "dup"), sim.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create("dup", testSpec(t, "dup"), sim.Options{}); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate err = %v, want ErrExists", err)
	}
	for _, id := range []string{"", "has space", "slash/y", "q?x", string(make([]byte, MaxIDLength+1))} {
		if _, err := r.Create(id, testSpec(t, "x"), sim.Options{}); !errors.Is(err, ErrBadID) {
			t.Errorf("Create(%q) err = %v, want ErrBadID", id, err)
		}
	}
	if err := ValidateID("ok-id_1.2"); err != nil {
		t.Errorf("ValidateID(ok-id_1.2) = %v", err)
	}
}

func TestCreateRejectsInvalidSpec(t *testing.T) {
	r := New()
	if _, err := r.Create("bad", flow.Spec{Name: "bad"}, sim.Options{}); err == nil {
		t.Error("empty spec materialised")
	}
	if r.Len() != 0 {
		t.Errorf("failed create left %d flows registered", r.Len())
	}
}

func TestFlowsAdvanceIndependently(t *testing.T) {
	r := New()
	a, err := r.Create("a", testSpec(t, "a"), sim.Options{Step: 10 * time.Second, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Create("b", testSpec(t, "b"), sim.Options{Step: 10 * time.Second, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Advance(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Advance(20 * time.Minute); err != nil {
		t.Fatal(err)
	}
	ticks := func(f *Flow) (n int) {
		f.View(func(m *core.Manager) { n = m.Harness().Result().Ticks })
		return
	}
	if got := ticks(a); got != 60 {
		t.Errorf("a ticks = %d, want 60", got)
	}
	if got := ticks(b); got != 120 {
		t.Errorf("b ticks = %d, want 120", got)
	}
}

// TestConcurrentAdvanceAcrossFlows drives many flows from many goroutines;
// run with -race to prove per-flow locking suffices.
func TestConcurrentAdvanceAcrossFlows(t *testing.T) {
	r := New()
	const flows = 4
	for i := 0; i < flows; i++ {
		id := fmt.Sprintf("f%d", i)
		if _, err := r.Create(id, testSpec(t, id), sim.Options{Step: 10 * time.Second, Seed: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for _, f := range r.List() {
		for w := 0; w < 3; w++ {
			wg.Add(1)
			go func(f *Flow) {
				defer wg.Done()
				if _, err := f.Advance(5 * time.Minute); err != nil {
					t.Errorf("%s: %v", f.ID(), err)
				}
			}(f)
		}
	}
	wg.Wait()
	for _, f := range r.List() {
		var ticks int
		f.View(func(m *core.Manager) { ticks = m.Harness().Result().Ticks })
		if ticks != 90 { // 3 goroutines x 5 minutes at 10s ticks
			t.Errorf("%s: ticks = %d, want 90", f.ID(), ticks)
		}
	}
}

func TestPacerAdvancesAndStops(t *testing.T) {
	r := New()
	f, err := r.Create("paced", testSpec(t, "paced"), sim.Options{Step: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ticks := func() (n int) {
		f.View(func(m *core.Manager) { n = m.Harness().Result().Ticks })
		return
	}
	// 20 simulated minutes per wall second, ticking every 10ms: each wall
	// tick owes 12s of simulated time, comfortably above the 10s sim step.
	if err := f.StartPacing(1200, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, _, running := f.Pacing(); !running {
		t.Error("pacer not reported running")
	}
	time.Sleep(120 * time.Millisecond)
	f.StopPacing()
	after := ticks()
	if after == 0 {
		t.Error("pacer did not advance")
	}
	if _, _, running := f.Pacing(); running {
		t.Error("pacer reported running after stop")
	}
	// After StopPacing, time must stand still.
	time.Sleep(50 * time.Millisecond)
	if later := ticks(); later != after {
		t.Errorf("pacer still running after stop: %d -> %d ticks", after, later)
	}
}

func TestStopPacingWithoutStartIsNoop(t *testing.T) {
	r := New()
	f, err := r.Create("idle", testSpec(t, "idle"), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f.StopPacing() // must not panic
}

func TestPacingRejectsBadArguments(t *testing.T) {
	r := New()
	f, err := r.Create("x", testSpec(t, "x"), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.StartPacing(0, time.Millisecond); err == nil {
		t.Error("pace 0 accepted")
	}
	if err := f.StartPacing(60, 0); err == nil {
		t.Error("wall tick 0 accepted")
	}
}

// TestConcurrentStartStopPacing hammers the pacer lifecycle from many
// goroutines. The old single-flow server read pacerStop/pacerDone without
// a lock, so concurrent calls could double-close the stop channel and
// panic; with -race this test proves the per-flow pacer state is safe.
func TestConcurrentStartStopPacing(t *testing.T) {
	r := New()
	f, err := r.Create("hammer", testSpec(t, "hammer"), sim.Options{Step: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				if i%2 == 0 {
					if err := f.StartPacing(600, 5*time.Millisecond); err != nil {
						t.Error(err)
					}
				} else {
					f.StopPacing()
				}
			}
		}(i)
	}
	wg.Wait()
	f.StopPacing()
	if _, _, running := f.Pacing(); running {
		t.Error("pacer running after final stop")
	}
}

func TestPaceErrorNilAcrossLifecycle(t *testing.T) {
	r := New()
	f, err := r.Create("ok", testSpec(t, "ok"), sim.Options{Step: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.StartPacing(1200, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	time.Sleep(40 * time.Millisecond)
	f.StopPacing()
	if err := f.PaceError(); err != nil {
		t.Errorf("PaceError after clean stop = %v", err)
	}
	// Restarting clears any recorded failure and runs again.
	if err := f.StartPacing(1200, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	f.StopPacing()
	if err := f.PaceError(); err != nil {
		t.Errorf("PaceError after restart = %v", err)
	}
}

func TestDeleteStopsPacer(t *testing.T) {
	r := New()
	f, err := r.Create("doomed", testSpec(t, "doomed"), sim.Options{Step: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.StartPacing(1200, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete("doomed"); err != nil {
		t.Fatal(err)
	}
	if _, _, running := f.Pacing(); running {
		t.Error("pacer running after delete")
	}
}

func TestCloseStopsAllPacers(t *testing.T) {
	r := New()
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("p%d", i)
		f, err := r.Create(id, testSpec(t, id), sim.Options{Step: 10 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		if err := f.StartPacing(1200, 10*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	r.Close()
	for _, f := range r.List() {
		if _, _, running := f.Pacing(); running {
			t.Errorf("%s: pacer running after Close", f.ID())
		}
	}
}
