// Package deps implements Flower's Workload Dependency Analysis (§3.1):
// it mines the metric store for statistical relationships between
// resource-usage measures of *different* layers of a data analytics flow,
// fitting the paper's linear dependency model
//
//	r(L1) = β0 + β1·r(L2) + ε                                (Eq. 1)
//
// e.g. the Fig. 2 finding that ingestion arrival rate and analytics CPU
// are correlated with coefficient 0.95, summarised as
// CPU ≈ 0.0002·WriteCapacity + 4.8 (Eq. 2).
//
// Because layers react with a delay (records queue before they consume
// CPU), the analyzer also scans a configurable lag range and reports the
// lag with the strongest cross-correlation.
package deps

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/metricstore"
	"repro/internal/regress"
	"repro/internal/timeseries"
)

// Layer identifies which of the paper's three layers a measure belongs to.
type Layer string

// The three layers of a data analytics flow (§1).
const (
	Ingestion Layer = "ingestion"
	Analytics Layer = "analytics"
	Storage   Layer = "storage"
)

// MetricRef names one monitored measure of one layer.
type MetricRef struct {
	Layer      Layer
	Namespace  string
	Name       string
	Dimensions map[string]string
}

// String renders the ref for reports.
func (r MetricRef) String() string {
	return fmt.Sprintf("%s:%s/%s", r.Layer, r.Namespace, r.Name)
}

// Dependency is a discovered cross-layer relationship: To ≈ β0 + β1·From
// with From shifted Lag periods earlier.
type Dependency struct {
	From, To    MetricRef
	Model       regress.Model
	Correlation float64 // Pearson correlation at the chosen lag
	Lag         int     // periods by which From leads To (>= 0)
	Period      time.Duration
	Samples     int
}

// String renders the dependency the way §3.1 writes Eq. 2.
func (d Dependency) String() string {
	lag := ""
	if d.Lag != 0 {
		lag = fmt.Sprintf(" (lag %d×%v)", d.Lag, d.Period)
	}
	return fmt.Sprintf("%s ≈ %.6g·%s + %.4g  [r=%.3f, n=%d]%s",
		d.To, d.Model.Slope, d.From, d.Model.Intercept, d.Correlation, d.Samples, lag)
}

// Analyzer mines dependencies from a metric store.
type Analyzer struct {
	// Store is the metric repository to read.
	Store *metricstore.Store
	// Period is the resampling period used to align the two series
	// (default 1 minute, matching the paper's per-minute plots).
	Period time.Duration
	// MaxLag bounds the lag scan in periods (default 5; 0 disables).
	MaxLag int
	// MinCorrelation is the |r| threshold below which AnalyzeAll drops a
	// pair as "not dependent" — the paper notes "not all the layers are
	// dependent on each other" (default 0.7).
	MinCorrelation float64
	// MinSamples is the minimum aligned observations required (default 10).
	MinSamples int
}

func (a *Analyzer) defaults() Analyzer {
	d := *a
	if d.Period <= 0 {
		d.Period = time.Minute
	}
	if d.MaxLag < 0 {
		d.MaxLag = 0
	} else if d.MaxLag == 0 {
		d.MaxLag = 5
	}
	if d.MinCorrelation <= 0 {
		d.MinCorrelation = 0.7
	}
	if d.MinSamples <= 0 {
		d.MinSamples = 10
	}
	return d
}

// rawSeries reads the full stored series of a measure through the handle
// tier, or nil when the metric has never been published.
func rawSeries(s *metricstore.Store, ref MetricRef) *timeseries.Series {
	h, ok := s.Lookup(ref.Namespace, ref.Name, ref.Dimensions)
	if !ok {
		return nil
	}
	return h.Window(metricstore.WindowQuery{})
}

// Analyze fits the Eq. 1 model of `to` on `from`. It aligns both series on
// the analyzer period, finds the best non-negative lag (From leading To),
// and regresses the lag-shifted values.
func (a *Analyzer) Analyze(from, to MetricRef) (Dependency, error) {
	cfg := a.defaults()
	if cfg.Store == nil {
		return Dependency{}, fmt.Errorf("deps: analyzer store is required")
	}
	fromSeries := rawSeries(cfg.Store, from)
	if fromSeries == nil {
		return Dependency{}, fmt.Errorf("deps: metric %s not found", from)
	}
	toSeries := rawSeries(cfg.Store, to)
	if toSeries == nil {
		return Dependency{}, fmt.Errorf("deps: metric %s not found", to)
	}
	xs, ys := timeseries.AlignedValues(fromSeries, toSeries, cfg.Period)
	if len(xs) < cfg.MinSamples {
		return Dependency{}, fmt.Errorf("deps: only %d aligned samples for %s vs %s, need %d",
			len(xs), from, to, cfg.MinSamples)
	}

	// Scan non-negative lags only: the upstream layer leads.
	bestLag := 0
	bestCorr := regress.Pearson(xs, ys)
	for lag := 1; lag <= cfg.MaxLag; lag++ {
		c := regress.CrossCorrelation(xs, ys, lag)
		if abs(c) > abs(bestCorr) {
			bestCorr = c
			bestLag = lag
		}
	}

	// Shift by the chosen lag and fit.
	x, y := xs, ys
	if bestLag > 0 {
		x = xs[:len(xs)-bestLag]
		y = ys[bestLag:]
	}
	model, err := regress.Fit(x, y)
	if err != nil {
		return Dependency{}, fmt.Errorf("deps: fit %s on %s: %w", to, from, err)
	}
	return Dependency{
		From:        from,
		To:          to,
		Model:       model,
		Correlation: bestCorr,
		Lag:         bestLag,
		Period:      cfg.Period,
		Samples:     len(x),
	}, nil
}

// AnalyzeAll analyzes every ordered cross-layer pair of refs and returns
// the dependencies whose |correlation| clears MinCorrelation, strongest
// first. Same-layer pairs are skipped: Eq. 1 is defined for L1 ≠ L2.
func (a *Analyzer) AnalyzeAll(refs []MetricRef) ([]Dependency, error) {
	cfg := a.defaults()
	var out []Dependency
	for _, from := range refs {
		for _, to := range refs {
			if from.Layer == to.Layer {
				continue
			}
			d, err := a.Analyze(from, to)
			if err != nil {
				// Missing metrics or degenerate series are data
				// conditions, not failures of the scan.
				continue
			}
			if abs(d.Correlation) >= cfg.MinCorrelation {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if ci, cj := abs(out[i].Correlation), abs(out[j].Correlation); ci != cj {
			return ci > cj
		}
		return out[i].String() < out[j].String()
	})
	return out, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// MultiDependency is a multiple-regression dependency: one layer's measure
// explained jointly by several other layers' measures,
// to ≈ β0 + Σ βj·from[j]. Useful when a layer's resource usage responds to
// more than one upstream signal (e.g. storage write volume driven by both
// ingest rate and analytics emit rate).
type MultiDependency struct {
	From    []MetricRef
	To      MetricRef
	Model   regress.MultipleModel
	Period  time.Duration
	Samples int
}

// String renders the fitted hyperplane.
func (d MultiDependency) String() string {
	var b []byte
	b = fmt.Appendf(b, "%s ≈ %.4g", d.To, d.Model.Coefficients[0])
	for j, from := range d.From {
		b = fmt.Appendf(b, " + %.6g·%s", d.Model.Coefficients[j+1], from)
	}
	b = fmt.Appendf(b, "  [R²=%.3f, n=%d]", d.Model.R2, d.Samples)
	return string(b)
}

// AnalyzeMultiple fits `to` on all `from` measures jointly. All series are
// aligned pairwise against `to` on the analyzer period; rows where any
// predictor is missing are dropped by truncating to the shortest aligned
// length.
func (a *Analyzer) AnalyzeMultiple(from []MetricRef, to MetricRef) (MultiDependency, error) {
	cfg := a.defaults()
	if cfg.Store == nil {
		return MultiDependency{}, fmt.Errorf("deps: analyzer store is required")
	}
	if len(from) == 0 {
		return MultiDependency{}, fmt.Errorf("deps: at least one predictor is required")
	}
	toSeries := rawSeries(cfg.Store, to)
	if toSeries == nil {
		return MultiDependency{}, fmt.Errorf("deps: metric %s not found", to)
	}
	cols := make([][]float64, len(from))
	var y []float64
	n := -1
	for j, f := range from {
		fs := rawSeries(cfg.Store, f)
		if fs == nil {
			return MultiDependency{}, fmt.Errorf("deps: metric %s not found", f)
		}
		xs, ys := timeseries.AlignedValues(fs, toSeries, cfg.Period)
		if n < 0 || len(xs) < n {
			n = len(xs)
		}
		cols[j] = xs
		if j == 0 {
			y = ys
		}
	}
	if n < cfg.MinSamples {
		return MultiDependency{}, fmt.Errorf("deps: only %d aligned samples, need %d", n, cfg.MinSamples)
	}
	// Truncate all columns to the common tail of length n.
	X := make([][]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, len(cols))
		for j := range cols {
			row[j] = cols[j][len(cols[j])-n+i]
		}
		X[i] = row
	}
	y = y[len(y)-n:]
	model, err := regress.FitMultiple(X, y)
	if err != nil {
		return MultiDependency{}, fmt.Errorf("deps: multiple fit: %w", err)
	}
	return MultiDependency{From: from, To: to, Model: model, Period: cfg.Period, Samples: n}, nil
}
