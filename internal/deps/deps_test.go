package deps

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/metricstore"
)

var t0 = time.Date(2017, 8, 28, 0, 0, 0, 0, time.UTC)

// seedStore populates a store with a synthetic Fig.-2-like pair: ingestion
// input records driving analytics CPU linearly (cpu = slope·in + off +
// noise), with an optional lag in minutes.
func seedStore(t *testing.T, minutes, lag int, slope, off, noiseStd float64) *metricstore.Store {
	t.Helper()
	ms := metricstore.NewStore()
	rng := rand.New(rand.NewSource(11))
	rates := make([]float64, minutes)
	for i := range rates {
		rates[i] = 2000 + 1500*math.Sin(float64(i)/40) + rng.NormFloat64()*50
	}
	for i := 0; i < minutes; i++ {
		now := t0.Add(time.Duration(i) * time.Minute)
		ms.MustPut("Ingestion/Stream", "IncomingRecords", nil, now, rates[i])
		src := rates[0]
		if i >= lag {
			src = rates[i-lag]
		}
		cpu := slope*src + off + rng.NormFloat64()*noiseStd
		ms.MustPut("Analytics/Compute", "CPUUtilization", nil, now, cpu)
	}
	return ms
}

func refs() (MetricRef, MetricRef) {
	from := MetricRef{Layer: Ingestion, Namespace: "Ingestion/Stream", Name: "IncomingRecords"}
	to := MetricRef{Layer: Analytics, Namespace: "Analytics/Compute", Name: "CPUUtilization"}
	return from, to
}

func TestAnalyzeRecoversLinearDependency(t *testing.T) {
	ms := seedStore(t, 550, 0, 0.01, 4.8, 0.8)
	a := &Analyzer{Store: ms}
	from, to := refs()
	d, err := a.Analyze(from, to)
	if err != nil {
		t.Fatal(err)
	}
	if d.Correlation < 0.95 {
		t.Fatalf("correlation = %v, want >= 0.95 (the paper's Fig. 2 coefficient)", d.Correlation)
	}
	if math.Abs(d.Model.Slope-0.01) > 0.002 {
		t.Fatalf("slope = %v, want ≈0.01", d.Model.Slope)
	}
	if math.Abs(d.Model.Intercept-4.8) > 2 {
		t.Fatalf("intercept = %v, want ≈4.8", d.Model.Intercept)
	}
	if d.Lag != 0 {
		t.Fatalf("lag = %d, want 0", d.Lag)
	}
	if d.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestAnalyzeDetectsLag(t *testing.T) {
	ms := seedStore(t, 550, 3, 0.01, 4.8, 0.3)
	a := &Analyzer{Store: ms, MaxLag: 6}
	from, to := refs()
	d, err := a.Analyze(from, to)
	if err != nil {
		t.Fatal(err)
	}
	if d.Lag != 3 {
		t.Fatalf("lag = %d, want 3", d.Lag)
	}
	if d.Correlation < 0.95 {
		t.Fatalf("correlation at lag = %v, want >= 0.95", d.Correlation)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	a := &Analyzer{}
	from, to := refs()
	if _, err := a.Analyze(from, to); err == nil {
		t.Fatal("nil store accepted")
	}
	ms := metricstore.NewStore()
	a = &Analyzer{Store: ms}
	if _, err := a.Analyze(from, to); err == nil {
		t.Fatal("missing metrics accepted")
	}
	// Too few samples.
	ms.MustPut(from.Namespace, from.Name, nil, t0, 1)
	ms.MustPut(to.Namespace, to.Name, nil, t0, 1)
	if _, err := a.Analyze(from, to); err == nil {
		t.Fatal("insufficient samples accepted")
	}
}

func TestAnalyzeAllFiltersWeakAndSameLayer(t *testing.T) {
	ms := seedStore(t, 300, 0, 0.01, 4.8, 0.5)
	// Add an uncorrelated storage metric — the paper "witnessed no
	// correlation between the write capacity in Kinesis and write capacity
	// in DynamoDB".
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		ms.MustPut("Storage/KVStore", "ConsumedWriteCapacityUnits", nil,
			t0.Add(time.Duration(i)*time.Minute), rng.Float64()*100)
	}
	from, to := refs()
	storageRef := MetricRef{Layer: Storage, Namespace: "Storage/KVStore", Name: "ConsumedWriteCapacityUnits"}
	a := &Analyzer{Store: ms, MinCorrelation: 0.7}
	found, err := a.AnalyzeAll([]MetricRef{from, to, storageRef})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range found {
		if d.From.Layer == d.To.Layer {
			t.Fatalf("same-layer dependency reported: %s", d)
		}
		if (d.From.Name == storageRef.Name || d.To.Name == storageRef.Name) && math.Abs(d.Correlation) < 0.7 {
			t.Fatalf("weak dependency reported: %s", d)
		}
	}
	// The strong ingestion→analytics pair must be present and first.
	if len(found) == 0 {
		t.Fatal("no dependencies found")
	}
	if found[0].From.Layer != Ingestion || found[0].To.Layer != Analytics {
		// The reverse direction is equally correlated; accept either order
		// as long as it is the ingestion↔analytics pair.
		if found[0].From.Layer != Analytics || found[0].To.Layer != Ingestion {
			t.Fatalf("strongest dependency is %s, want ingestion↔analytics", found[0])
		}
	}
	// No dependency involving the random storage metric should appear.
	for _, d := range found {
		if d.From.Name == storageRef.Name || d.To.Name == storageRef.Name {
			t.Fatalf("uncorrelated storage metric reported as dependent: %s", d)
		}
	}
}

func TestMetricRefString(t *testing.T) {
	r := MetricRef{Layer: Ingestion, Namespace: "ns", Name: "m"}
	if r.String() != "ingestion:ns/m" {
		t.Fatalf("String = %q", r.String())
	}
}

func TestDependencyPredictSupportsEq2Reasoning(t *testing.T) {
	// §3.1: "how much CPU we require in the analytics layer to support the
	// maximum write capacity of a Kinesis Shard ... 1,000 records/second".
	ms := seedStore(t, 400, 0, 0.01, 4.8, 0.5)
	a := &Analyzer{Store: ms}
	from, to := refs()
	d, err := a.Analyze(from, to)
	if err != nil {
		t.Fatal(err)
	}
	cpuAtShardMax := d.Model.Predict(1000)
	if math.Abs(cpuAtShardMax-(0.01*1000+4.8)) > 2 {
		t.Fatalf("Predict(1000) = %v, want ≈14.8", cpuAtShardMax)
	}
}

func TestAnalyzeMultipleJointFit(t *testing.T) {
	// to = 2 + 0.01·x1 + 0.05·x2 + noise, with x1 and x2 independent.
	ms := metricstore.NewStore()
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 400; i++ {
		now := t0.Add(time.Duration(i) * time.Minute)
		x1 := 1000 + 500*math.Sin(float64(i)/30) + rng.NormFloat64()*20
		x2 := 200 + 100*math.Cos(float64(i)/17) + rng.NormFloat64()*10
		y := 2 + 0.01*x1 + 0.05*x2 + rng.NormFloat64()*0.3
		ms.MustPut("Ingestion/Stream", "IncomingRecords", nil, now, x1)
		ms.MustPut("Analytics/Compute", "EmittedTuples", nil, now, x2)
		ms.MustPut("Storage/KVStore", "ConsumedWriteCapacityUnits", nil, now, y)
	}
	a := &Analyzer{Store: ms}
	from := []MetricRef{
		{Layer: Ingestion, Namespace: "Ingestion/Stream", Name: "IncomingRecords"},
		{Layer: Analytics, Namespace: "Analytics/Compute", Name: "EmittedTuples"},
	}
	to := MetricRef{Layer: Storage, Namespace: "Storage/KVStore", Name: "ConsumedWriteCapacityUnits"}
	d, err := a.AnalyzeMultiple(from, to)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Model.Coefficients[1]-0.01) > 0.002 {
		t.Fatalf("β1 = %v, want ≈0.01", d.Model.Coefficients[1])
	}
	if math.Abs(d.Model.Coefficients[2]-0.05) > 0.01 {
		t.Fatalf("β2 = %v, want ≈0.05", d.Model.Coefficients[2])
	}
	if d.Model.R2 < 0.95 {
		t.Fatalf("R² = %v, want ≥ 0.95", d.Model.R2)
	}
	if d.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestAnalyzeMultipleErrors(t *testing.T) {
	a := &Analyzer{Store: metricstore.NewStore()}
	to := MetricRef{Layer: Storage, Namespace: "ns", Name: "y"}
	if _, err := a.AnalyzeMultiple(nil, to); err == nil {
		t.Fatal("no predictors accepted")
	}
	from := []MetricRef{{Layer: Ingestion, Namespace: "ns", Name: "x"}}
	if _, err := a.AnalyzeMultiple(from, to); err == nil {
		t.Fatal("missing metrics accepted")
	}
	if _, err := (&Analyzer{}).AnalyzeMultiple(from, to); err == nil {
		t.Fatal("nil store accepted")
	}
}
