package lab

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/flow"
	"repro/internal/registry"
)

func TestSubmitValidation(t *testing.T) {
	e := NewEngine(2)
	defer e.Close()
	if _, err := e.Submit("bad id!", quickSpec("x", 1, time.Minute)); err == nil {
		t.Fatal("Submit accepted an invalid id")
	} else if !strings.Contains(err.Error(), registry.ErrBadID.Error()) {
		t.Fatalf("invalid id error = %v, want ErrBadID", err)
	}
	if _, err := e.Submit("x", Spec{Name: "x"}); err == nil {
		t.Fatal("Submit accepted a spec without duration")
	}
	if _, err := e.Submit("x", quickSpec("x", 1, time.Minute)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit("x", quickSpec("x", 1, time.Minute)); err == nil {
		t.Fatal("Submit accepted a duplicate id")
	}
}

func TestExperimentRunsTrialsConcurrently(t *testing.T) {
	e := NewEngine(4)
	defer e.Close()
	x, err := e.Submit("overlap", quickSpec("overlap", 8, 10*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := x.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	p := x.Progress()
	if p.Done != 8 || p.Failed != 0 || p.Cancelled != 0 {
		t.Fatalf("progress after completion: %+v", p)
	}
	if p.MaxConcurrent < 2 {
		t.Fatalf("no observable overlap: max concurrent = %d", p.MaxConcurrent)
	}
	if x.Status() != StatusCompleted {
		t.Fatalf("status = %q, want completed", x.Status())
	}
	res := x.Results()
	if res.Aggregates.Completed != 8 {
		t.Fatalf("aggregates cover %d trials, want 8", res.Aggregates.Completed)
	}
	if len(res.Aggregates.Pareto) == 0 {
		t.Fatal("no Pareto front extracted")
	}
}

func TestCancelMidRunAndResultsAfterCancel(t *testing.T) {
	// One worker and a long duration: the first trial simulates while
	// the rest queue, so a cancel catches the farm mid-run.
	e := NewEngine(1)
	defer e.Close()
	x, err := e.Submit("cancel", quickSpec("cancel", 6, 12*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the first trial to actually start.
	deadline := time.Now().Add(time.Minute)
	for x.Progress().Running == 0 && x.Progress().Done == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no trial started")
		}
		time.Sleep(time.Millisecond)
	}
	x.Cancel()
	select {
	case <-x.Done():
	case <-time.After(time.Minute):
		t.Fatal("cancelled experiment did not settle")
	}
	if x.Status() != StatusCancelled {
		t.Fatalf("status = %q, want cancelled", x.Status())
	}
	p := x.Progress()
	if p.Cancelled == 0 {
		t.Fatalf("no trials recorded as cancelled: %+v", p)
	}
	if p.Running != 0 || p.Pending != 0 {
		t.Fatalf("unsettled trials after cancel: %+v", p)
	}
	// Results are still served after a cancel: every trial reports a
	// terminal status, and the aggregates cover whatever completed.
	res := x.Results()
	if len(res.Trials) != 6 {
		t.Fatalf("results cover %d trials, want 6", len(res.Trials))
	}
	for _, tr := range res.Trials {
		if tr.Status != TrialDone && tr.Status != TrialCancelled {
			t.Fatalf("trial %q in non-terminal state %q", tr.Name, tr.Status)
		}
	}
	if res.Aggregates.Completed != p.Done {
		t.Fatalf("aggregates cover %d trials, progress says %d done",
			res.Aggregates.Completed, p.Done)
	}
	// Cancel is idempotent.
	x.Cancel()
}

func TestTwoExperimentsShareTheWorkerPool(t *testing.T) {
	e := NewEngine(4)
	defer e.Close()
	var wg sync.WaitGroup
	results := make([]Results, 2)
	for i, id := range []string{"alpha", "beta"} {
		x, err := e.Submit(id, quickSpec(id, 4, 10*time.Minute))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, x *Experiment) {
			defer wg.Done()
			<-x.Done()
			results[i] = x.Results()
		}(i, x)
	}
	wg.Wait()
	for i, res := range results {
		if res.Aggregates.Completed != 4 {
			t.Fatalf("experiment %d completed %d trials, want 4", i, res.Aggregates.Completed)
		}
	}
	// Both experiments remain addressable and listed in id order.
	list := e.List()
	if len(list) != 2 || list[0].ID() != "alpha" || list[1].ID() != "beta" {
		t.Fatalf("List = %v", list)
	}
	if err := e.Delete("alpha"); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Get("alpha"); ok {
		t.Fatal("deleted experiment still addressable")
	}
	if err := e.Delete("alpha"); err == nil {
		t.Fatal("double delete did not fail")
	}
}

func TestTrialSummariesCarryDomainMetrics(t *testing.T) {
	e := NewEngine(2)
	defer e.Close()
	x, err := e.Submit("metrics", quickSpec("metrics", 1, 20*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	<-x.Done()
	res := x.Results()
	tr := res.Trials[0]
	if tr.Status != TrialDone {
		t.Fatalf("trial status %q: %s", tr.Status, tr.Error)
	}
	if tr.Ticks != 120 {
		t.Fatalf("20 min at 10s step should be 120 ticks, got %d", tr.Ticks)
	}
	if tr.TotalCost <= 0 || tr.Offered <= 0 {
		t.Fatalf("degenerate summary: cost %v, offered %d", tr.TotalCost, tr.Offered)
	}
	if tr.Final.Shards <= 0 || tr.Final.VMs <= 0 || tr.Final.WCU <= 0 {
		t.Fatalf("final allocation missing: %+v", tr.Final)
	}
	if len(tr.MeanUtil) == 0 {
		t.Fatal("no per-layer utilisation recorded")
	}
	if tr.WallSeconds <= 0 || tr.StartedAt.IsZero() {
		t.Fatalf("wall timing missing: started %v, %vs", tr.StartedAt, tr.WallSeconds)
	}
}

func TestSeedAxisDecorrelatesReplicates(t *testing.T) {
	s := quickSpec("seeds", 1, 15*time.Minute)
	s.Seeds = []int64{1, 2, 3}
	e := NewEngine(3)
	defer e.Close()
	x, err := e.Submit("seeds", s)
	if err != nil {
		t.Fatal(err)
	}
	<-x.Done()
	res := x.Results()
	if len(res.Trials) != 3 {
		t.Fatalf("expanded %d trials, want 3", len(res.Trials))
	}
	// Poisson arrivals under different seeds must differ.
	if res.Trials[0].Offered == res.Trials[1].Offered &&
		res.Trials[1].Offered == res.Trials[2].Offered {
		t.Fatalf("replicates identical: offered %d/%d/%d",
			res.Trials[0].Offered, res.Trials[1].Offered, res.Trials[2].Offered)
	}
}

func TestVariantOverridesLandInSimulation(t *testing.T) {
	// A controller variant with no controller at all (static allocation)
	// must produce zero actions, unlike the adaptive variant.
	s := Spec{
		Name:     "variants",
		Peak:     2000,
		Duration: flow.Duration(30 * time.Minute),
		Workloads: []WorkloadVariant{{
			Name:     "step",
			Workload: flow.WorkloadSpec{Pattern: "step", Base: 300, Peak: 2000, At: flow.Duration(5 * time.Minute)},
		}},
		Controllers: []ControllerVariant{
			{Name: "adaptive"}, // base spec's controllers
			{Name: "static", Layers: map[flow.LayerKind]flow.ControllerSpec{
				flow.Ingestion: {Type: flow.ControllerNone},
				flow.Analytics: {Type: flow.ControllerNone},
				flow.Storage:   {Type: flow.ControllerNone},
			}},
		},
	}
	e := NewEngine(2)
	defer e.Close()
	x, err := e.Submit("variants", s)
	if err != nil {
		t.Fatal(err)
	}
	<-x.Done()
	byName := map[string]TrialSummary{}
	for _, tr := range x.Results().Trials {
		byName[tr.Name] = tr
	}
	static := byName["step/static"]
	adaptive := byName["step/adaptive"]
	if static.Status != TrialDone || adaptive.Status != TrialDone {
		t.Fatalf("trials did not complete: %+v / %+v", static.Status, adaptive.Status)
	}
	if n := len(static.Actions); n != 0 {
		for k, v := range static.Actions {
			if v != 0 {
				t.Fatalf("static variant acted: %s resized %d times", k, v)
			}
		}
	}
	acted := 0
	for _, v := range adaptive.Actions {
		acted += v
	}
	if acted == 0 {
		t.Fatal("adaptive variant never resized under a 6x step")
	}
}
