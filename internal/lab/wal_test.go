package lab

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeWAL records hook calls and can be told to fail, standing in for a
// degraded persist.ControlLog.
type fakeWAL struct {
	mu      sync.Mutex
	ops     []string
	entries map[string]string // id -> last finish status
	err     error
}

func newFakeWAL() *fakeWAL { return &fakeWAL{entries: map[string]string{}} }

func (w *fakeWAL) log(op string) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	w.ops = append(w.ops, op)
	return nil
}

func (w *fakeWAL) fail(err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.err = err
}

func (w *fakeWAL) seen() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]string(nil), w.ops...)
}

func (w *fakeWAL) finishStatus(id string) (string, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	s, ok := w.entries[id]
	return s, ok
}

func (w *fakeWAL) ExperimentSubmitted(id string, spec Spec) error { return w.log("submit:" + id) }
func (w *fakeWAL) ExperimentCancelled(id string) error            { return w.log("cancel:" + id) }
func (w *fakeWAL) ExperimentFinished(id string, status Status) error {
	if err := w.log("finish:" + id); err != nil {
		return err
	}
	w.mu.Lock()
	w.entries[id] = string(status)
	w.mu.Unlock()
	return nil
}
func (w *fakeWAL) ExperimentDeleted(id string) error { return w.log("delete:" + id) }

func TestEngineWALLifecycle(t *testing.T) {
	e := NewEngine(2)
	defer e.Close()
	w := newFakeWAL()
	e.SetWAL(w)

	x, err := e.Submit("run", quickSpec("run", 1, time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := x.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	// The supervisor appends the finish record before Done closes... it
	// closes Done after the append, so by here it is visible.
	if status, ok := w.finishStatus("run"); !ok || status != string(StatusCompleted) {
		t.Fatalf("finish record = (%q, %v), want completed", status, ok)
	}
	if err := e.Delete("run"); err != nil {
		t.Fatal(err)
	}
	seen := w.seen()
	if len(seen) != 3 || seen[0] != "submit:run" || seen[1] != "finish:run" || seen[2] != "delete:run" {
		t.Fatalf("WAL saw %v", seen)
	}
}

func TestEngineWALFailureAbortsSubmit(t *testing.T) {
	e := NewEngine(2)
	defer e.Close()
	w := newFakeWAL()
	e.SetWAL(w)
	boom := errors.New("disk full")
	w.fail(boom)

	if _, err := e.Submit("x", quickSpec("x", 1, time.Minute)); !errors.Is(err, boom) {
		t.Fatalf("Submit on failing WAL = %v, want the WAL error", err)
	}
	if _, ok := e.Get("x"); ok {
		t.Fatal("unlogged experiment was registered")
	}
	if len(e.List()) != 0 {
		t.Fatal("List shows the refused experiment")
	}
}

func TestEngineCancelIsLogged(t *testing.T) {
	e := NewEngine(1)
	defer e.Close()
	w := newFakeWAL()
	e.SetWAL(w)
	// Plenty of trials so the cancel lands while the grid is still going.
	if _, err := e.Submit("big", quickSpec("big", 6, 30*time.Minute)); err != nil {
		t.Fatal(err)
	}
	x, err := e.Cancel("big")
	if err != nil {
		t.Fatal(err)
	}
	<-x.Done()
	seen := w.seen()
	if len(seen) < 2 || seen[0] != "submit:big" || seen[1] != "cancel:big" {
		t.Fatalf("WAL saw %v, want submit then cancel", seen)
	}
	if _, err := e.Cancel("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Cancel(ghost) = %v, want ErrNotFound", err)
	}
}

func TestRestoreIsNotLogged(t *testing.T) {
	e := NewEngine(1)
	defer e.Close()
	w := newFakeWAL()
	e.SetWAL(w)
	x, err := e.Restore("ghosted", quickSpec("ghosted", 2, time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if x.Status() != StatusInterrupted {
		t.Fatalf("restored status = %q", x.Status())
	}
	// Restore replays history; replay must never re-log itself.
	if seen := w.seen(); len(seen) != 0 {
		t.Fatalf("WAL saw %v during restore", seen)
	}
	// Terminal invariant: every trial is terminal too.
	for _, tr := range x.Results().Trials {
		if tr.Status != TrialCancelled {
			t.Fatalf("trial %q = %q, want cancelled", tr.Name, tr.Status)
		}
	}
	// A restored id still collides like a live one.
	if _, err := e.Restore("ghosted", quickSpec("ghosted", 1, time.Minute)); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate Restore = %v, want ErrExists", err)
	}
}
