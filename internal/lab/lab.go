// Package lab is Flower's Scenario Lab: a declarative experiment farm
// that turns the hand-written serial evaluation programs of examples/
// into first-class, parallel, cancellable experiments.
//
// An experiment (Spec) names a grid of variants — workload patterns ×
// controller/planner knob sets × initial-allocation plans × seeds — over
// one base flow definition. Expansion crosses the axes into trials, each
// a fully materialised flow.Spec with a deterministic RNG seed derived
// via randx.DeriveSeed, so re-running the same experiment reproduces the
// same numbers trial for trial. The Engine executes trials on a bounded
// worker pool (one goroutine per trial, gated by a semaphore), tracks
// progress, supports cancellation mid-run, and keeps an in-memory
// results store with per-trial summaries (cost, violation rate,
// utilisation) plus cross-trial aggregates (best/worst, Pareto front via
// nsga2.NonDominated, baseline deltas).
//
// The subsystem is exposed end to end: /v1/experiments in
// internal/httpapi, wire types in api/v1, methods in repro/client, the
// `flowctl experiments` subcommand, and cmd/flowerbench's benchmark
// farm.
package lab

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/flow"
	"repro/internal/randx"
)

// MaxTrials bounds one experiment's grid so a typo'd axis cannot ask one
// daemon for millions of simulations.
const MaxTrials = 1024

// WorkloadVariant is one point on the workload axis: a named generator
// pattern substituted for the base flow's workload.
type WorkloadVariant struct {
	Name     string            `json:"name"`
	Workload flow.WorkloadSpec `json:"workload"`
}

// ControllerVariant is one point on the controller axis: named
// per-layer controller overrides (the demo's "adjust parameters of the
// controllers" knob sets). Layers absent from the map keep the base
// spec's controller. The flow.StorageReads key targets the dashboard's
// read-capacity controller.
type ControllerVariant struct {
	Name   string                                 `json:"name"`
	Layers map[flow.LayerKind]flow.ControllerSpec `json:"layers,omitempty"`
}

// AllocationVariant is one point on the allocation axis: named initial
// allocations per layer, the shape the §3.2 share analyzer's Pareto
// plans take when fed back into the farm. Layers absent from the map
// keep the base spec's initial allocation.
type AllocationVariant struct {
	Name    string                     `json:"name"`
	Initial map[flow.LayerKind]float64 `json:"initial"`
}

// Spec is a declarative experiment: one base flow crossed with variant
// axes. Empty axes contribute a single pass-through point, so the
// minimal experiment (all axes empty, one seed) is one trial of the base
// flow.
type Spec struct {
	// Name labels the experiment (and is the default registry id).
	Name string `json:"name"`
	// Base is the flow definition the variants mutate; nil selects the
	// built-in click-stream flow at Peak records/s.
	Base *flow.Spec `json:"base,omitempty"`
	// Peak sizes the built-in flow when Base is nil (default 3000).
	Peak float64 `json:"peak,omitempty"`
	// Duration is the simulated time each trial runs (required).
	Duration flow.Duration `json:"duration"`
	// Step is the simulation tick (default 10s).
	Step flow.Duration `json:"step,omitempty"`
	// Seeds is the replicate axis: one trial per seed per grid point
	// (default [0]). Every trial's simulation seed is derived from its
	// seed and grid coordinates, so replicates are decorrelated but
	// reproducible.
	Seeds []int64 `json:"seeds,omitempty"`

	// The grid axes.
	Workloads   []WorkloadVariant   `json:"workloads,omitempty"`
	Controllers []ControllerVariant `json:"controllers,omitempty"`
	Allocations []AllocationVariant `json:"allocations,omitempty"`

	// Baseline optionally names the trial the aggregates compute deltas
	// against (default: the first trial).
	Baseline string `json:"baseline,omitempty"`
}

// Trial is one expanded grid point: a materialised flow spec plus the
// variant names that produced it.
type Trial struct {
	Index int `json:"index"`
	// Name is the slash-joined variant path, e.g. "spike/adaptive/s1".
	Name string `json:"name"`
	// Workload, Controller and Allocation name the variants this trial
	// was built from (empty for a pass-through axis).
	Workload   string `json:"workload,omitempty"`
	Controller string `json:"controller,omitempty"`
	Allocation string `json:"allocation,omitempty"`
	// Seed is the replicate seed; SimSeed the derived simulation seed.
	Seed    int64 `json:"seed"`
	SimSeed int64 `json:"sim_seed"`

	// Spec is the trial's materialised flow definition. It is not
	// serialised: trial payloads stay small, and the spec is a pure
	// function of the experiment spec and the trial coordinates.
	Spec flow.Spec `json:"-"`
}

// withDefaults resolves the spec's optional fields.
func (s Spec) withDefaults() Spec {
	if s.Peak <= 0 {
		s.Peak = 3000
	}
	if s.Step.D() <= 0 {
		s.Step = flow.Duration(10 * time.Second)
	}
	if len(s.Seeds) == 0 {
		s.Seeds = []int64{0}
	}
	return s
}

// Validate checks the experiment is well-formed without expanding it.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("lab: experiment name is required")
	}
	if s.Duration.D() <= 0 {
		return fmt.Errorf("lab: experiment duration must be positive")
	}
	if s.Step.D() < 0 {
		return fmt.Errorf("lab: step must be non-negative")
	}
	// A duration shorter than one step runs zero ticks: the trial would
	// report cost 0 / violations 0 and Pareto-dominate every real one.
	if step := s.withDefaults().Step.D(); s.Duration.D() < step {
		return fmt.Errorf("lab: duration %v is shorter than the %v simulation step — trials would run zero ticks",
			s.Duration.D(), step)
	}
	if s.Base != nil {
		if err := s.Base.Validate(); err != nil {
			return fmt.Errorf("lab: base flow: %w", err)
		}
	}
	if err := uniqueNames("workload", len(s.Workloads), func(i int) string { return s.Workloads[i].Name }); err != nil {
		return err
	}
	if err := uniqueNames("controller", len(s.Controllers), func(i int) string { return s.Controllers[i].Name }); err != nil {
		return err
	}
	if err := uniqueNames("allocation", len(s.Allocations), func(i int) string { return s.Allocations[i].Name }); err != nil {
		return err
	}
	// A variant keyed by a layer the flow doesn't have would silently
	// run the unmodified base flow while reporting a distinct variant.
	for _, c := range s.Controllers {
		for kind := range c.Layers {
			switch kind {
			case flow.Ingestion, flow.Analytics, flow.Storage, flow.StorageReads:
			default:
				return fmt.Errorf("lab: controller variant %q targets unknown layer %q", c.Name, kind)
			}
		}
	}
	for _, a := range s.Allocations {
		for kind := range a.Initial {
			switch kind {
			case flow.Ingestion, flow.Analytics, flow.Storage:
			default:
				return fmt.Errorf("lab: allocation variant %q targets unknown layer %q", a.Name, kind)
			}
		}
	}
	seeds := make(map[int64]bool, len(s.Seeds))
	for _, seed := range s.Seeds {
		if seeds[seed] {
			return fmt.Errorf("lab: duplicate seed %d — replicates would be byte-identical", seed)
		}
		seeds[seed] = true
	}
	if s.TrialCount() > MaxTrials {
		return fmt.Errorf("lab: grid expands to more than the %d-trial limit", MaxTrials)
	}
	if s.Baseline != "" && !s.hasTrialNamed(s.Baseline) {
		return fmt.Errorf("lab: baseline %q names no trial of the grid", s.Baseline)
	}
	return nil
}

// hasTrialNamed reports whether the grid expands to a trial with the
// given name, walking the name grid without materialising specs.
func (s Spec) hasTrialNamed(name string) bool {
	s = s.withDefaults()
	axis := func(names []string) []string {
		if len(names) == 0 {
			return []string{""}
		}
		return names
	}
	var w, c, a []string
	for _, v := range s.Workloads {
		w = append(w, v.Name)
	}
	for _, v := range s.Controllers {
		c = append(c, v.Name)
	}
	for _, v := range s.Allocations {
		a = append(a, v.Name)
	}
	for _, wn := range axis(w) {
		for _, cn := range axis(c) {
			for _, an := range axis(a) {
				for si := range s.Seeds {
					if trialName(wn, cn, an, si, len(s.Seeds)) == name {
						return true
					}
				}
			}
		}
	}
	return false
}

// uniqueNames requires every axis point to be named, uniquely and
// without the '/' separator, so the slash-joined trial names (and the
// Baseline reference) are unambiguous.
func uniqueNames(axis string, n int, name func(int) string) error {
	seen := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		v := name(i)
		if v == "" {
			return fmt.Errorf("lab: %s variant %d has no name", axis, i)
		}
		if strings.ContainsRune(v, '/') {
			return fmt.Errorf("lab: %s variant %q contains '/', the trial-name separator", axis, v)
		}
		if seen[v] {
			return fmt.Errorf("lab: duplicate %s variant %q", axis, v)
		}
		seen[v] = true
	}
	return nil
}

// TrialCount returns the size of the expanded grid, saturating at
// MaxTrials+1: beyond the cap the exact count no longer matters, and
// saturating keeps the product from overflowing int on absurd axis
// lengths (which would otherwise slip past the cap check as a negative
// number).
func (s Spec) TrialCount() int {
	s = s.withDefaults()
	n := len(s.Seeds)
	for _, axis := range []int{len(s.Workloads), len(s.Controllers), len(s.Allocations)} {
		if n > MaxTrials {
			return MaxTrials + 1
		}
		if axis > 0 {
			n *= axis
		}
	}
	if n > MaxTrials {
		return MaxTrials + 1
	}
	return n
}

// baseSpec resolves the flow definition the variants mutate.
func (s Spec) baseSpec() (flow.Spec, error) {
	if s.Base != nil {
		return *s.Base, nil
	}
	return flow.DefaultClickstream(s.Peak)
}

// Expand crosses the axes into the full trial list. Every trial's spec
// is validated, so an axis point that mutates the base flow into an
// invalid definition fails the whole experiment up front rather than at
// run time.
func (s Spec) Expand() ([]Trial, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	s = s.withDefaults()
	base, err := s.baseSpec()
	if err != nil {
		return nil, fmt.Errorf("lab: base flow: %w", err)
	}

	// A nil axis still contributes one pass-through point.
	workloads := s.Workloads
	if len(workloads) == 0 {
		workloads = []WorkloadVariant{{}}
	}
	controllers := s.Controllers
	if len(controllers) == 0 {
		controllers = []ControllerVariant{{}}
	}
	allocations := s.Allocations
	if len(allocations) == 0 {
		allocations = []AllocationVariant{{}}
	}

	trials := make([]Trial, 0, s.TrialCount())
	for wi, w := range workloads {
		for ci, c := range controllers {
			for ai, a := range allocations {
				for si, seed := range s.Seeds {
					spec := base
					spec.Layers = append([]flow.LayerSpec(nil), base.Layers...)
					if w.Name != "" {
						spec.Workload = w.Workload
					}
					for li := range spec.Layers {
						kind := spec.Layers[li].Kind
						if c.Layers != nil {
							if ctrl, ok := c.Layers[kind]; ok {
								spec.Layers[li].Controller = ctrl
							}
						}
						if a.Initial != nil {
							if init, ok := a.Initial[kind]; ok {
								spec.Layers[li].Initial = init
							}
						}
					}
					if c.Layers != nil {
						if ctrl, ok := c.Layers[flow.StorageReads]; ok {
							if !spec.Dashboard.Enabled {
								return nil, fmt.Errorf("lab: controller variant %q targets %s, but the flow has no dashboard read workload",
									c.Name, flow.StorageReads)
							}
							spec.Dashboard.Controller = ctrl
						}
					}
					if err := spec.Validate(); err != nil {
						return nil, fmt.Errorf("lab: trial %s: %w",
							trialName(w.Name, c.Name, a.Name, si, len(s.Seeds)), err)
					}
					trials = append(trials, Trial{
						Index:      len(trials),
						Name:       trialName(w.Name, c.Name, a.Name, si, len(s.Seeds)),
						Workload:   w.Name,
						Controller: c.Name,
						Allocation: a.Name,
						Seed:       seed,
						SimSeed:    randx.DeriveSeed(seed, int64(wi), int64(ci), int64(ai)),
						Spec:       spec,
					})
				}
			}
		}
	}
	return trials, nil
}

// trialName joins the variant names into a stable, human-readable trial
// identifier; the seed suffix appears only when the experiment has
// several replicates.
func trialName(workload, controller, allocation string, seedIdx, seeds int) string {
	name := ""
	for _, part := range []string{workload, controller, allocation} {
		if part == "" {
			continue
		}
		if name != "" {
			name += "/"
		}
		name += part
	}
	if seeds > 1 {
		if name != "" {
			name += "/"
		}
		name += fmt.Sprintf("s%d", seedIdx)
	}
	if name == "" {
		name = "base"
	}
	return name
}
