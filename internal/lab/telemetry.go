package lab

import "repro/internal/telemetry"

// Process-wide Scenario Lab telemetry. Trials count when they settle in a
// terminal state, labeled with that state, so the families answer "how
// much experiment work has the plane done and how did it end" without a
// per-experiment cardinality explosion.
var (
	telExperiments = telemetry.Default().Counter("flower_lab_experiments_total",
		"Experiments ever submitted.")
	telTrialsRunning = telemetry.Default().Gauge("flower_lab_trials_running",
		"Trials executing right now.")
	telTrials = telemetry.Default().CounterVec("flower_lab_trials_total",
		"Trials settled, by terminal status.", "status")

	telTrialsDone      = telTrials.With(string(TrialDone))
	telTrialsFailed    = telTrials.With(string(TrialFailed))
	telTrialsCancelled = telTrials.With(string(TrialCancelled))
)

// countTrialSettled records one trial reaching a terminal state.
func countTrialSettled(st TrialStatus) {
	switch st {
	case TrialDone:
		telTrialsDone.Inc()
	case TrialFailed:
		telTrialsFailed.Inc()
	case TrialCancelled:
		telTrialsCancelled.Inc()
	default:
		telTrials.With(string(st)).Inc()
	}
}
