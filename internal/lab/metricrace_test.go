package lab

import (
	"sync"
	"testing"
	"time"

	"repro/internal/metricstore"
	"repro/internal/simtime"
	"repro/internal/timeseries"
)

// TestConcurrentMetricPipelineUnderLabLoad drives the handle-based hot
// paths — Handle.Append, Handle.Stat, Store.GetStatistics, Store.Latest,
// Store.Each — concurrently against one shared store while a lab
// experiment saturates the worker pool with real trials (each trial's
// harness hammering its own store the same way). Run under -race (CI's
// test job always is), this is the concurrency-correctness check for the
// per-entry locking design.
func TestConcurrentMetricPipelineUnderLabLoad(t *testing.T) {
	engine := NewEngine(2)
	defer engine.Close()
	x, err := engine.Submit("race", quickSpec("race", 2, 10*time.Minute))
	if err != nil {
		t.Fatal(err)
	}

	store := metricstore.NewStore()
	store.SetRetention(5 * time.Minute)
	dims := map[string]string{"StreamName": "shared"}
	names := []string{"IncomingRecords", "WriteUtilization", "ThrottleEvents", "BacklogRecords"}

	const pointsPerWriter = 2000

	// Writers: one handle per goroutine, each on its own metric (per-metric
	// appends must stay ordered), appending a monotonic 4 Hz clock.
	var writers sync.WaitGroup
	for _, name := range names {
		writers.Add(1)
		go func(name string) {
			defer writers.Done()
			h := store.MustHandle("Ingestion/Stream", name, dims)
			now := simtime.Epoch
			for i := 0; i < pointsPerWriter; i++ {
				now = now.Add(250 * time.Millisecond)
				h.MustAppend(now, float64(i))
			}
		}(name)
	}

	// Readers: compat queries, handle stats, latest reads and full-store
	// walks race the writers until they finish.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch r {
				case 0:
					_, _ = store.GetStatistics(metricstore.Query{
						Namespace: "Ingestion/Stream", Name: "IncomingRecords", Dimensions: dims,
						Period: time.Minute, Stat: timeseries.AggP90,
					})
					storeLatest(store, "Ingestion/Stream", "WriteUtilization", dims)
				case 1:
					if h, ok := store.Lookup("Ingestion/Stream", "ThrottleEvents", dims); ok {
						h.Stat(time.Time{}, time.Time{}, timeseries.AggMean)
						h.Latest()
					}
				default:
					store.Each(func(id metricstore.MetricID, v timeseries.View) {
						v.Aggregate(timeseries.AggMax, nil)
					})
					store.ListMetrics("")
				}
			}
		}(r)
	}

	writers.Wait()
	close(stop)
	readers.Wait()

	<-x.Done()
	if st := x.Status(); st != StatusCompleted {
		t.Fatalf("experiment status %v, want completed", st)
	}

	// Retention stayed consistent: every shared metric retained exactly the
	// 5-minute window of its 4 Hz appends.
	for _, name := range names {
		h, ok := store.Lookup("Ingestion/Stream", name, dims)
		if !ok {
			t.Fatalf("metric %s missing", name)
		}
		if got, want := h.Len(), 4*300+1; got != want {
			t.Fatalf("%s retained %d points, want %d", name, got, want)
		}
	}
}
