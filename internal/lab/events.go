package lab

import (
	"repro/internal/eventbus"
)

// Watch event types published on the engine's bus. The topic of every
// event is the experiment's engine id.
const (
	EventExperimentCreated = "experiment.created"
	EventExperimentState   = "experiment.state"
	EventExperimentDeleted = "experiment.deleted"
	EventTrialStarted      = "experiment.trial.started"
	EventTrialFinished     = "experiment.trial.finished"
)

// ExperimentEvent is the payload of experiment.created / experiment.state
// / experiment.deleted: the experiment's lifecycle state plus its progress
// counters at the moment of the event.
type ExperimentEvent struct {
	ID       string   `json:"id"`
	Name     string   `json:"name,omitempty"`
	Status   Status   `json:"status"`
	Trials   int      `json:"trials"`
	Progress Progress `json:"progress"`
}

// TrialEvent is the payload of experiment.trial.started /
// experiment.trial.finished.
type TrialEvent struct {
	ID     string      `json:"id"`
	Index  int         `json:"index"`
	Trial  string      `json:"trial"`
	Status TrialStatus `json:"status"`
	// Set on finished trials that completed.
	TotalCost     float64 `json:"total_cost_usd,omitempty"`
	ViolationRate float64 `json:"violation_rate,omitempty"`
	WallSeconds   float64 `json:"wall_seconds,omitempty"`
	Error         string  `json:"error,omitempty"`
}

// Events returns the engine's event bus: experiment lifecycle transitions
// and per-trial start/finish events are published on it, with the
// experiment id as the topic. The HTTP watch endpoints subscribe here.
func (e *Engine) Events() *eventbus.Bus { return e.bus }

// publishState emits the experiment's current status and progress in one
// consistent cut.
func (x *Experiment) publishState(typ string) {
	if x.bus == nil {
		return
	}
	status, progress := x.Snapshot()
	x.bus.Publish(typ, x.id, ExperimentEvent{
		ID:       x.id,
		Name:     x.spec.Name,
		Status:   status,
		Trials:   len(x.trials),
		Progress: progress,
	})
}

// publishTrial emits one trial transition.
func (x *Experiment) publishTrial(typ string, i int, status TrialStatus, sum *TrialSummary) {
	if x.bus == nil {
		return
	}
	ev := TrialEvent{ID: x.id, Index: i, Trial: x.trials[i].Name, Status: status}
	if sum != nil {
		ev.TotalCost = sum.TotalCost
		ev.ViolationRate = sum.ViolationRate
		ev.WallSeconds = sum.WallSeconds
		ev.Error = sum.Error
	}
	x.bus.Publish(typ, x.id, ev)
}
