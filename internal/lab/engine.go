package lab

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/eventbus"
	"repro/internal/registry"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Errors returned by engine operations; the HTTP layer maps them onto
// status codes (409, 404, 400 — invalid ids surface as
// registry.ErrBadID, the shared id grammar of the control plane).
var (
	ErrExists   = errors.New("experiment already exists")
	ErrNotFound = errors.New("experiment not found")
)

// Status is an experiment's lifecycle state.
type Status string

const (
	StatusRunning   Status = "running"
	StatusCompleted Status = "completed"
	StatusCancelled Status = "cancelled"
	// StatusInterrupted marks an experiment recovered after a crash:
	// it was unfinished when the process died, its in-memory results
	// are gone, and it is settled terminally with every trial
	// cancelled. Resubmit it (or boot with -resume-experiments) to run
	// it again.
	StatusInterrupted Status = "interrupted"
)

// WAL is the engine's durability hook, mirroring registry.WAL: every
// experiment mutation is appended — and made durable — before it is
// applied and acknowledged. The engine defines the interface rather
// than importing persist (persist imports lab for recovery);
// persist.ControlLog implements both hooks.
type WAL interface {
	ExperimentSubmitted(id string, spec Spec) error
	ExperimentCancelled(id string) error
	// ExperimentFinished records a terminal status. It is appended
	// best-effort by the supervisor after the fact (a finish is an
	// outcome, not a request to acknowledge), so errors are not
	// propagated anywhere — a missed finish record merely recovers the
	// experiment as interrupted.
	ExperimentFinished(id string, status Status) error
	ExperimentDeleted(id string) error
}

// walBox wraps the WAL for atomic publication; see registry.walBox.
type walBox struct{ w WAL }

// Engine executes experiments on the shared execution plane
// (internal/sched): every trial is a chunked batch-class scheduler job,
// not a goroutine. Submitting is asynchronous — trials queue immediately
// and the scheduler's workers interleave their chunks, bounded by the
// scheduler's capacity (its one knob governs pacers and trials alike when
// the engine shares the control plane's scheduler via NewEngineOn), with
// the weighted-fairness drain keeping a big grid from starving live flow
// pacing.
type Engine struct {
	sched    *sched.Scheduler
	ownSched bool // NewEngine created the scheduler, so Close releases it
	bus      *eventbus.Bus

	mu   sync.Mutex
	exps map[string]*Experiment

	// wal, once set, makes every experiment mutation durable before it
	// is acknowledged; attached at boot after recovery replay.
	wal atomic.Pointer[walBox]
}

// NewEngine returns an engine on a private scheduler with the given
// execution capacity; workers <= 0 selects GOMAXPROCS. Use NewEngineOn to
// co-schedule experiments with the rest of the control plane.
func NewEngine(workers int) *Engine {
	// One worker per shard up to the shard cap; beyond it, widths round
	// DOWN to a multiple of the cap (never above the requested bound).
	cfg := sched.Config{Shards: workers, Workers: 1}
	if workers > 64 {
		cfg.Shards = 64
		cfg.Workers = workers / 64
	}
	e := NewEngineOn(sched.New(cfg))
	e.ownSched = true
	return e
}

// NewEngineOn returns an engine running its trials on s. The caller owns
// s's lifecycle: close the engine (settling every trial) before closing
// the scheduler, never the other way around.
func NewEngineOn(s *sched.Scheduler) *Engine {
	return &Engine{
		sched: s,
		bus:   eventbus.New(0),
		exps:  make(map[string]*Experiment),
	}
}

// SetWAL attaches the durability hook: from now on every experiment
// mutation (submit, cancel, finish, delete) is appended to w before it
// is applied. Attach after recovery replay. Passing nil detaches.
func (e *Engine) SetWAL(w WAL) {
	if w == nil {
		e.wal.Store(nil)
		return
	}
	e.wal.Store(&walBox{w: w})
}

// walHook returns the attached WAL, or nil.
func (e *Engine) walHook() WAL {
	if b := e.wal.Load(); b != nil {
		return b.w
	}
	return nil
}

// Workers returns the execution capacity trials draw on: the scheduler's
// shard × worker pool width.
func (e *Engine) Workers() int { return e.sched.Capacity() }

// Scheduler returns the execution plane trials run on.
func (e *Engine) Scheduler() *sched.Scheduler { return e.sched }

// Submit expands the experiment and starts running it under id. It
// fails with registry.ErrBadID for unusable ids, ErrExists for
// duplicates, and validation/expansion errors for bad specs.
func (e *Engine) Submit(id string, spec Spec) (*Experiment, error) {
	if err := registry.ValidateID(id); err != nil {
		return nil, err
	}
	trials, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	spec = spec.withDefaults()

	ctx, cancel := context.WithCancel(context.Background())
	x := &Experiment{
		id:      id,
		spec:    spec,
		created: time.Now(), //flowervet:allow wallclock(experiment creation timestamps are operator metadata)
		trials:  trials,
		bus:     e.bus,
		cancel:  cancel,
		done:    make(chan struct{}),
		status:  StatusRunning,
		results: make([]TrialSummary, len(trials)),
	}
	for i, t := range trials {
		x.results[i] = TrialSummary{Trial: t, Status: TrialPending}
	}

	e.mu.Lock()
	if _, dup := e.exps[id]; dup {
		e.mu.Unlock()
		cancel()
		return nil, fmt.Errorf("%w: %q", ErrExists, id)
	}
	// Durable before acknowledged, under e.mu after the duplicate check
	// — mirroring registry.Create — so the log's submit/delete order
	// matches the engine's and a WAL failure refuses the submission
	// with nothing registered and no trial queued.
	if w := e.walHook(); w != nil {
		if err := w.ExperimentSubmitted(id, spec); err != nil {
			e.mu.Unlock()
			cancel()
			return nil, fmt.Errorf("experiment %q: %w", id, err)
		}
	}
	e.exps[id] = x
	telExperiments.Inc()
	// Under e.mu, like Delete's event, so experiment.deleted can never
	// precede experiment.created for the same id on the stream.
	x.publishState(EventExperimentCreated)
	e.mu.Unlock()

	var wg sync.WaitGroup
	wg.Add(len(trials))
	for i := range trials {
		// onStop settles the trial if the scheduler abandons the job
		// between chunks (a plane closed out of order); the normal paths
		// all settle inside the chunk function itself.
		abandoned := func(i int) func(error) {
			return func(err error) {
				x.setStatus(i, TrialFailed, err)
				wg.Done()
			}
		}(i)
		if _, err := e.sched.Submit(fmt.Sprintf("exp/%s/%d", id, i), sched.ClassBatch, x.trialJob(ctx, i, &wg), abandoned); err != nil {
			// The scheduler is closing down; settle the trial here since
			// no worker ever will.
			x.setStatus(i, TrialFailed, err)
			wg.Done()
		}
	}
	// The supervisor settles the final status once every trial job has
	// finished, then releases the context.
	go func() {
		wg.Wait()
		x.mu.Lock()
		if ctx.Err() != nil {
			x.status = StatusCancelled
		} else {
			x.status = StatusCompleted
		}
		status := x.status
		x.mu.Unlock()
		// Best-effort finish record: recovery drops finished
		// experiments from the durable state (their results lived in
		// memory); a missed record only re-recovers this one as
		// interrupted.
		if w := e.walHook(); w != nil {
			_ = w.ExperimentFinished(id, status)
		}
		cancel()
		close(x.done)
		x.publishState(EventExperimentState)
	}()
	return x, nil
}

// Cancel durably cancels the experiment registered as id: the cancel is
// WAL-appended before the experiment's context is cut, so a degraded
// plane refuses it (the HTTP layer maps the error onto 503) rather than
// cancelling un-durably. Prefer this over Experiment.Cancel wherever
// the caller serves the control plane.
func (e *Engine) Cancel(id string) (*Experiment, error) {
	x, ok := e.Get(id)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	if w := e.walHook(); w != nil {
		if err := w.ExperimentCancelled(id); err != nil {
			return nil, fmt.Errorf("experiment %q: %w", id, err)
		}
	}
	x.Cancel()
	return x, nil
}

// Restore registers a crash-recovered experiment in the terminal
// StatusInterrupted state without running anything: the grid is
// re-expanded so the trial list is faithful, but every trial settles as
// cancelled (the original results lived in memory and died with the
// process). Used by persist's recovery; submit anew — or boot with
// -resume-experiments — to actually re-run the grid.
func (e *Engine) Restore(id string, spec Spec) (*Experiment, error) {
	if err := registry.ValidateID(id); err != nil {
		return nil, err
	}
	trials, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	spec = spec.withDefaults()

	_, cancel := context.WithCancel(context.Background())
	cancel() // settled on arrival: nothing may ever run
	x := &Experiment{
		id:      id,
		spec:    spec,
		created: time.Now(), //flowervet:allow wallclock(experiment creation timestamps are operator metadata)
		trials:  trials,
		bus:     e.bus,
		cancel:  cancel,
		done:    make(chan struct{}),
		status:  StatusInterrupted,
		results: make([]TrialSummary, len(trials)),
	}
	for i, t := range trials {
		x.results[i] = TrialSummary{Trial: t, Status: TrialCancelled, Error: "interrupted: process crashed mid-run"}
	}
	close(x.done)

	e.mu.Lock()
	if _, dup := e.exps[id]; dup {
		e.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrExists, id)
	}
	e.exps[id] = x
	x.publishState(EventExperimentCreated)
	e.mu.Unlock()
	return x, nil
}

// Get returns the experiment registered as id.
func (e *Engine) Get(id string) (*Experiment, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	x, ok := e.exps[id]
	return x, ok
}

// List returns all experiments sorted by id.
func (e *Engine) List() []*Experiment {
	e.mu.Lock()
	out := make([]*Experiment, 0, len(e.exps))
	for _, x := range e.exps {
		out = append(out, x)
	}
	e.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// Delete cancels the experiment and removes it from the store. Trials
// already simulating notice the cancellation at their next chunk
// boundary and exit harmlessly on the detached experiment. The delete
// is WAL-appended before anything is removed, so a degraded plane
// refuses it with the experiment intact.
func (e *Engine) Delete(id string) error {
	e.mu.Lock()
	x, ok := e.exps[id]
	if ok {
		if w := e.walHook(); w != nil {
			if err := w.ExperimentDeleted(id); err != nil {
				e.mu.Unlock()
				return fmt.Errorf("experiment %q: %w", id, err)
			}
		}
		delete(e.exps, id)
		x.publishState(EventExperimentDeleted)
	}
	e.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	x.Cancel()
	return nil
}

// Close cancels every experiment, waits for all trials to settle, and —
// when the engine created its own scheduler (NewEngine) — drains and
// releases it, so a plain NewEngine leaks nothing. A shared scheduler
// (NewEngineOn) keeps running for its owner to close after every
// producer is quiet; submitting to a closed private engine fails its
// trials with the scheduler's ErrClosed.
func (e *Engine) Close() {
	for _, x := range e.List() {
		x.Cancel()
		<-x.done
	}
	if e.ownSched {
		e.sched.Close()
	}
}

// Experiment is one submitted experiment: its expanded trials, live
// per-trial results, and progress counters.
type Experiment struct {
	id      string
	spec    Spec
	created time.Time
	trials  []Trial
	bus     *eventbus.Bus // the owning engine's event bus (nil when built outside an engine)
	cancel  context.CancelFunc
	done    chan struct{}

	mu      sync.Mutex
	status  Status
	results []TrialSummary
	running int
	maxConc int
}

// ID returns the experiment's engine identifier.
func (x *Experiment) ID() string { return x.id }

// Spec returns the experiment definition (with defaults resolved).
func (x *Experiment) Spec() Spec { return x.spec }

// Created returns when the experiment was submitted (wall clock).
func (x *Experiment) Created() time.Time { return x.created }

// Trials returns the expanded grid in trial order.
func (x *Experiment) Trials() []Trial { return x.trials }

// Status returns the experiment's lifecycle state.
func (x *Experiment) Status() Status {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.status
}

// Cancel stops the experiment: trials are marked cancelled as the
// scheduler reaches their next chunk, so running trials stop at a chunk
// boundary and queued ones never simulate. Safe to call repeatedly.
func (x *Experiment) Cancel() { x.cancel() }

// Done returns a channel closed once every trial has settled and the
// final status is recorded.
func (x *Experiment) Done() <-chan struct{} { return x.done }

// Wait blocks until the experiment settles or ctx expires.
func (x *Experiment) Wait(ctx context.Context) error {
	select {
	case <-x.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// progressLocked counts the trials by state; x.mu must be held.
func (x *Experiment) progressLocked() Progress {
	p := Progress{Total: len(x.results), MaxConcurrent: x.maxConc}
	for i := range x.results {
		switch x.results[i].Status {
		case TrialPending:
			p.Pending++
		case TrialRunning:
			p.Running++
		case TrialDone:
			p.Done++
		case TrialFailed:
			p.Failed++
		case TrialCancelled:
			p.Cancelled++
		}
	}
	return p
}

// Progress counts the trials by state.
func (x *Experiment) Progress() Progress {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.progressLocked()
}

// Snapshot reads the status and progress under one lock acquisition, so
// the pair cannot contradict each other (a status of "completed" always
// comes with every trial counted in a terminal state).
func (x *Experiment) Snapshot() (Status, Progress) {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.status, x.progressLocked()
}

// ResultsSnapshot reads status, progress and every trial's summary in
// one consistent cut, then computes aggregates outside the lock.
// Callable at any time — mid-run it reports the trials finished so far,
// and after a cancellation it still serves what completed before the
// cancel.
func (x *Experiment) ResultsSnapshot() (Status, Progress, Results) {
	x.mu.Lock()
	st := x.status
	p := x.progressLocked()
	trials := append([]TrialSummary(nil), x.results...)
	baseline := x.spec.Baseline
	x.mu.Unlock()
	return st, p, Results{Trials: trials, Aggregates: aggregate(trials, baseline)}
}

// Results snapshots every trial's summary plus aggregates over the
// completed ones.
func (x *Experiment) Results() Results {
	_, _, res := x.ResultsSnapshot()
	return res
}

// trialChunks splits a trial's duration so cancellation stays responsive
// and sibling jobs interleave: chunks are whole steps, at most
// maxTrialChunks per trial, and never more than maxChunkSim of simulated
// time — the chunk is the unit the scheduler's workers run without
// yielding, so its cost bounds how long a co-scheduled pacer tick can
// wait behind a trial.
const maxTrialChunks = 16

const maxChunkSim = 15 * time.Minute

// trialJob builds the chunked scheduler job driving trial i: the first
// chunk materialises the simulation, each following chunk advances it one
// slice, and the final chunk summarises. Returning false re-queues the
// job on the least-loaded shard, which is what interleaves trials and
// lets them migrate toward idle capacity. wg is decremented exactly once,
// when the trial settles in a terminal state.
func (x *Experiment) trialJob(ctx context.Context, i int, wg *sync.WaitGroup) sched.ChunkFunc {
	var (
		h         *sim.Harness
		res       sim.Result
		remaining time.Duration
		chunk     time.Duration
		start     time.Time
		started   bool
	)
	step := x.spec.Step.D()
	finish := func(st TrialStatus, err error) bool {
		x.setStatus(i, st, err)
		wg.Done()
		return true
	}
	return func() bool {
		if ctx.Err() != nil {
			return finish(TrialCancelled, nil)
		}
		if !started {
			started = true
			start = time.Now() //flowervet:allow wallclock(trial wall-clock cost reporting is the point of WallSeconds)
			x.markRunning(i, start)
			t := x.trials[i]
			var err error
			h, err = sim.New(t.Spec, sim.Options{Step: step, Seed: t.SimSeed})
			if err != nil {
				return finish(TrialFailed, err)
			}
			remaining = x.spec.Duration.D()
			chunk = remaining / maxTrialChunks
			if chunk > maxChunkSim {
				chunk = maxChunkSim
			}
			chunk = chunk / step * step
			if chunk < step {
				chunk = step
			}
			// Yield before the first simulation slice so a whole grid
			// reaches Running quickly and interleaves from the start.
			return false
		}
		d := chunk
		if d > remaining {
			d = remaining
		}
		var err error
		if res, err = h.Run(d); err != nil {
			return finish(TrialFailed, err)
		}
		remaining -= d
		if remaining > 0 {
			return false
		}

		sum := summarize(x.trials[i], h, res)
		sum.StartedAt = start
		sum.WallSeconds = time.Since(start).Seconds() //flowervet:allow wallclock(trial wall-clock cost reporting is the point of WallSeconds)

		x.mu.Lock()
		sum.Trial = x.results[i].Trial
		x.results[i] = sum
		x.running--
		x.mu.Unlock()
		telTrialsRunning.Dec()
		countTrialSettled(sum.Status)
		x.publishTrial(EventTrialFinished, i, sum.Status, &sum)
		wg.Done()
		return true
	}
}

// markRunning flips a trial to running and tracks the in-flight overlap.
func (x *Experiment) markRunning(i int, start time.Time) {
	x.mu.Lock()
	x.results[i].Status = TrialRunning
	x.results[i].StartedAt = start
	x.running++
	if x.running > x.maxConc {
		x.maxConc = x.running
	}
	x.mu.Unlock()
	telTrialsRunning.Inc()
	x.publishTrial(EventTrialStarted, i, TrialRunning, nil)
}

// setStatus settles a trial in a terminal non-done state.
func (x *Experiment) setStatus(i int, st TrialStatus, err error) {
	x.mu.Lock()
	if x.results[i].Status == TrialRunning {
		x.running--
		telTrialsRunning.Dec()
		if !x.results[i].StartedAt.IsZero() {
			//flowervet:allow wallclock(trial wall-clock cost reporting is the point of WallSeconds)
			x.results[i].WallSeconds = time.Since(x.results[i].StartedAt).Seconds()
		}
	}
	x.results[i].Status = st
	if err != nil {
		x.results[i].Error = err.Error()
	}
	sum := x.results[i]
	x.mu.Unlock()
	countTrialSettled(st)
	x.publishTrial(EventTrialFinished, i, st, &sum)
}
