package lab

import (
	"testing"
	"time"
)

// BenchmarkFarm8Trials measures one full Scenario Lab experiment — the
// acceptance-sized farm: 8 controller variants × 10 simulated minutes on
// the shared worker pool. ns/op is the wall cost of the whole farm, so
// pool-width or harness regressions show up directly.
func BenchmarkFarm8Trials(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine(0)
		x, err := e.Submit("bench", quickSpec("bench", 8, 10*time.Minute))
		if err != nil {
			b.Fatal(err)
		}
		<-x.Done()
		res := x.Results()
		if res.Aggregates.Completed != 8 {
			b.Fatalf("completed %d/8 trials", res.Aggregates.Completed)
		}
		b.ReportMetric(float64(x.Progress().MaxConcurrent), "max_concurrent")
		e.Close()
	}
}

// BenchmarkExpandGrid measures pure grid expansion (no simulation): a
// 4×4×4×4 = 256-trial grid with per-trial spec materialisation and
// validation.
func BenchmarkExpandGrid(b *testing.B) {
	s := quickSpec("grid", 4, time.Minute)
	s.Seeds = []int64{0, 1, 2, 3}
	s.Workloads = append(s.Workloads,
		WorkloadVariant{Name: "w2", Workload: s.Workloads[0].Workload},
		WorkloadVariant{Name: "w3", Workload: s.Workloads[0].Workload},
		WorkloadVariant{Name: "w4", Workload: s.Workloads[0].Workload})
	s.Allocations = []AllocationVariant{
		{Name: "a1"}, {Name: "a2"}, {Name: "a3"}, {Name: "a4"},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trials, err := s.Expand()
		if err != nil {
			b.Fatal(err)
		}
		if len(trials) != 256 {
			b.Fatalf("expanded %d trials", len(trials))
		}
	}
}
