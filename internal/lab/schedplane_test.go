package lab

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/registry"
	"repro/internal/sched"
	"repro/internal/sim"
)

// TestPacersAndExperimentShareExecutionPlane is the unified-plane
// acceptance test, run with -race in CI: 200 flows pace on the same
// scheduler an experiment grid runs on. The experiment must complete
// (batch work is not starved by the pacer flood), the flows must keep
// advancing (the weighted-fairness drain keeps the grid from starving
// them), and both kinds of work must show up in the scheduler's stats.
func TestPacersAndExperimentShareExecutionPlane(t *testing.T) {
	if testing.Short() {
		t.Skip("200-flow co-scheduling test")
	}
	s := sched.New(sched.Config{Shards: 4, Workers: 2})
	defer s.Close()
	r := registry.New(registry.WithScheduler(s))
	defer r.Close()
	e := NewEngineOn(s)
	defer e.Close()

	spec, err := flow.NewBuilder("co").
		WithWorkload(flow.WorkloadSpec{Pattern: "constant", Base: 1000}).
		WithIngestion(2, 1, 50, flow.DefaultAdaptive(60, 2*time.Minute, 4)).
		WithAnalytics(2, 1, 50, flow.DefaultAdaptive(60, 2*time.Minute, 4)).
		WithStorage(200, 50, 20000, flow.DefaultAdaptive(60, 2*time.Minute, 400)).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	const flows = 200
	for i := 0; i < flows; i++ {
		id := fmt.Sprintf("paced-%03d", i)
		sp := spec
		sp.Name = id
		f, err := r.Create(id, sp, sim.Options{Step: 10 * time.Second, Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if err := f.StartPacing(600, 20*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}

	x, err := e.Submit("grid", quickSpec("grid", 6, 5*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	if err := x.Wait(ctx); err != nil {
		t.Fatalf("experiment did not complete while flows paced: %v", err)
	}
	p := x.Progress()
	if p.Done != 6 || p.Failed != 0 {
		t.Fatalf("experiment progress under co-scheduling: %+v", p)
	}

	// The flows must be advancing too (a fast experiment may settle before
	// the first wall tick, so poll briefly rather than sampling once).
	deadline := time.Now().Add(time.Minute)
	for {
		total := 0
		for _, f := range r.List() {
			f.View(func(m *core.Manager) { total += m.Harness().Result().Ticks })
			if total > 0 {
				break
			}
		}
		if total > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no flow advanced around the experiment run: pacers starved")
		}
		time.Sleep(2 * time.Millisecond)
	}
	st := s.Stats()
	if st.ExecutedFlow == 0 || st.ExecutedBatch == 0 {
		t.Fatalf("scheduler stats missing a class: flow=%d batch=%d", st.ExecutedFlow, st.ExecutedBatch)
	}
}
