package lab

import (
	"math"
	"time"

	"repro/internal/compute"
	"repro/internal/flow"
	"repro/internal/metricstore"
	"repro/internal/nsga2"
	"repro/internal/sim"
	"repro/internal/timeseries"
)

// TrialStatus is one trial's lifecycle state.
type TrialStatus string

const (
	TrialPending   TrialStatus = "pending"
	TrialRunning   TrialStatus = "running"
	TrialDone      TrialStatus = "done"
	TrialFailed    TrialStatus = "failed"
	TrialCancelled TrialStatus = "cancelled"
)

// Allocation is a trial's final per-layer resource allocation.
type Allocation struct {
	Shards int     `json:"shards"`
	VMs    int     `json:"vms"`
	WCU    float64 `json:"wcu"`
	RCU    float64 `json:"rcu"`
}

// TrialSummary is one trial's outcome: the trial coordinates plus the
// SLO-facing metrics of its run. Metric fields are meaningful only when
// Status is TrialDone.
type TrialSummary struct {
	Trial
	Status TrialStatus `json:"status"`
	// Error records why a failed trial died.
	Error string `json:"error,omitempty"`
	// StartedAt/WallSeconds time the trial's execution (wall clock);
	// overlapping intervals across trials are the worker pool's
	// concurrency made visible.
	StartedAt   time.Time `json:"started_at,omitzero"`
	WallSeconds float64   `json:"wall_seconds,omitempty"`

	// Simulated outcome.
	Ticks         int                        `json:"ticks,omitempty"`
	TotalCost     float64                    `json:"total_cost_usd"`
	PeakRunRate   float64                    `json:"peak_run_rate_usd_per_h"`
	ViolationRate float64                    `json:"violation_rate"`
	Violations    map[flow.LayerKind]int     `json:"violations,omitempty"`
	MeanUtil      map[flow.LayerKind]float64 `json:"mean_utilization_pct,omitempty"`
	Actions       map[flow.LayerKind]int     `json:"actions,omitempty"`
	// MeanAbsError is the mean |analytics CPU − ref| per minute — the
	// tracking-quality measure the controller sweeps report.
	MeanAbsError float64 `json:"mean_abs_error"`
	// TailAbsError is the same measure over only the final quarter of
	// the run: a controller that settled reports a small tail error
	// whatever its transient looked like, while one still oscillating at
	// the end reports a large one — the generic form of the shoot-out's
	// settling-time question.
	TailAbsError float64    `json:"tail_abs_error"`
	Offered      int64      `json:"offered_records"`
	Rejected     int64      `json:"rejected_records"`
	Final        Allocation `json:"final_allocation"`
}

// summarize condenses a finished harness run into the trial's summary
// metrics.
func summarize(t Trial, h *sim.Harness, res sim.Result) TrialSummary {
	out := TrialSummary{
		Trial:         t,
		Status:        TrialDone,
		Ticks:         res.Ticks,
		TotalCost:     res.TotalCost,
		PeakRunRate:   res.PeakRunRate,
		ViolationRate: res.ViolationRate,
		Violations:    res.Violations,
		MeanUtil:      res.MeanUtil,
		Actions:       res.Actions,
		Offered:       res.Offered,
		Rejected:      res.Rejected,
		Final: Allocation{
			Shards: res.FinalAllocation.Shards,
			VMs:    res.FinalAllocation.VMs,
			WCU:    res.FinalAllocation.WCU,
			RCU:    res.FinalAllocation.RCU,
		},
	}
	out.MeanAbsError, out.TailAbsError = analyticsAbsError(t.Spec, h)
	return out
}

// analyticsAbsError measures how well the analytics layer tracked its
// reference: mean |CPU − ref| over per-minute samples, over the whole
// run and over its final quarter. Flows without an analytics controller
// are measured against the default 60% reference.
func analyticsAbsError(spec flow.Spec, h *sim.Harness) (mean, tail float64) {
	ref := 60.0
	if ana, ok := spec.Layer(flow.Analytics); ok && ana.Controller.Ref > 0 {
		ref = ana.Controller.Ref
	}
	cpu, ok := h.Store.Lookup(compute.Namespace, compute.MetricCPUUtilization,
		map[string]string{"Topology": spec.Name})
	if !ok {
		return 0, 0
	}
	vals := cpu.Window(metricstore.WindowQuery{Period: time.Minute, Stat: timeseries.AggMean}).Values()
	if len(vals) == 0 {
		return 0, 0
	}
	over := func(vs []float64) float64 {
		sum := 0.0
		for _, v := range vs {
			sum += math.Abs(v - ref)
		}
		return sum / float64(len(vs))
	}
	return over(vals), over(vals[len(vals)-(len(vals)+3)/4:])
}

// Progress counts an experiment's trials by state. MaxConcurrent is the
// highest number of this experiment's trials that were in flight
// (started, not yet settled) simultaneously. Trials interleave as chunked
// scheduler jobs, so in-flight overlap typically spans the whole grid
// while the instantaneous execution overlap stays bounded by the
// scheduler's capacity.
type Progress struct {
	Total         int `json:"total"`
	Pending       int `json:"pending"`
	Running       int `json:"running"`
	Done          int `json:"done"`
	Failed        int `json:"failed"`
	Cancelled     int `json:"cancelled"`
	MaxConcurrent int `json:"max_concurrent"`
}

// TrialRef points at one trial with the value that ranked it.
type TrialRef struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// ParetoPoint is one trial on the cross-trial Pareto front over
// (cost, violation rate), both minimised.
type ParetoPoint struct {
	Name          string  `json:"name"`
	TotalCost     float64 `json:"total_cost_usd"`
	ViolationRate float64 `json:"violation_rate"`
}

// Delta compares one trial against the experiment's baseline trial.
type Delta struct {
	Name string `json:"name"`
	// CostPct is the cost change relative to the baseline in percent
	// (negative: cheaper than baseline).
	CostPct float64 `json:"cost_pct"`
	// ViolationDelta is the absolute violation-rate difference.
	ViolationDelta float64 `json:"violation_delta"`
}

// Aggregates are the cross-trial statistics over completed trials.
type Aggregates struct {
	Completed         int       `json:"completed"`
	MeanCost          float64   `json:"mean_cost_usd"`
	MeanViolationRate float64   `json:"mean_violation_rate"`
	BestCost          *TrialRef `json:"best_cost,omitempty"`
	WorstCost         *TrialRef `json:"worst_cost,omitempty"`
	BestViolation     *TrialRef `json:"best_violation,omitempty"`
	WorstViolation    *TrialRef `json:"worst_violation,omitempty"`
	// Pareto is the non-dominated set over (cost, violation rate),
	// extracted with nsga2.NonDominated — the §3.2 front idea applied to
	// measured outcomes instead of planned allocations.
	Pareto []ParetoPoint `json:"pareto,omitempty"`
	// Baseline names the trial Deltas compare against.
	Baseline string  `json:"baseline,omitempty"`
	Deltas   []Delta `json:"deltas,omitempty"`
}

// Results is an experiment's full outcome: every trial's summary (in
// grid order, whatever its state) plus aggregates over the completed
// ones. A cancelled experiment still reports the trials that finished
// before the cancellation.
type Results struct {
	Trials     []TrialSummary `json:"trials"`
	Aggregates Aggregates     `json:"aggregates"`
}

// aggregate computes the cross-trial statistics. baseline is the
// requested baseline trial name ("" selects the first completed trial).
func aggregate(trials []TrialSummary, baseline string) Aggregates {
	var done []TrialSummary
	for _, t := range trials {
		if t.Status == TrialDone {
			done = append(done, t)
		}
	}
	agg := Aggregates{Completed: len(done)}
	if len(done) == 0 {
		return agg
	}

	objs := make([][]float64, len(done))
	for i, t := range done {
		agg.MeanCost += t.TotalCost
		agg.MeanViolationRate += t.ViolationRate
		objs[i] = []float64{t.TotalCost, t.ViolationRate}
	}
	agg.MeanCost /= float64(len(done))
	agg.MeanViolationRate /= float64(len(done))

	best := func(better func(a, b TrialSummary) bool, value func(TrialSummary) float64) *TrialRef {
		pick := done[0]
		for _, t := range done[1:] {
			if better(t, pick) {
				pick = t
			}
		}
		return &TrialRef{Name: pick.Name, Value: value(pick)}
	}
	cost := func(t TrialSummary) float64 { return t.TotalCost }
	viol := func(t TrialSummary) float64 { return t.ViolationRate }
	agg.BestCost = best(func(a, b TrialSummary) bool { return a.TotalCost < b.TotalCost }, cost)
	agg.WorstCost = best(func(a, b TrialSummary) bool { return a.TotalCost > b.TotalCost }, cost)
	agg.BestViolation = best(func(a, b TrialSummary) bool { return a.ViolationRate < b.ViolationRate }, viol)
	agg.WorstViolation = best(func(a, b TrialSummary) bool { return a.ViolationRate > b.ViolationRate }, viol)

	for _, i := range nsga2.NonDominated(objs) {
		agg.Pareto = append(agg.Pareto, ParetoPoint{
			Name:          done[i].Name,
			TotalCost:     done[i].TotalCost,
			ViolationRate: done[i].ViolationRate,
		})
	}

	// The delta reference is the named baseline, defaulting to the
	// grid-first trial — pinned by grid position, not completion order —
	// and deltas are withheld until it completes, so mid-run polls never
	// compare against whichever trial happened to finish first and flip
	// reference later. Spec validation guarantees a named baseline
	// exists in the grid.
	if baseline == "" {
		baseline = trials[0].Name
	}
	var base TrialSummary
	found := false
	for _, t := range done {
		if t.Name == baseline {
			base, found = t, true
			break
		}
	}
	if !found {
		return agg
	}
	agg.Baseline = base.Name
	for _, t := range done {
		if t.Name == base.Name {
			continue
		}
		d := Delta{Name: t.Name, ViolationDelta: t.ViolationRate - base.ViolationRate}
		if base.TotalCost > 0 {
			d.CostPct = (t.TotalCost/base.TotalCost - 1) * 100
		}
		agg.Deltas = append(agg.Deltas, d)
	}
	return agg
}
