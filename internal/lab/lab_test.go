package lab

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/flow"
)

// quickSpec is a small, fast experiment: constant low-rate workload,
// short duration, n controller variants.
func quickSpec(name string, variants int, dur time.Duration) Spec {
	s := Spec{
		Name:     name,
		Peak:     600,
		Duration: flow.Duration(dur),
		Step:     flow.Duration(10 * time.Second),
		Workloads: []WorkloadVariant{{
			Name:     "constant",
			Workload: flow.WorkloadSpec{Pattern: "constant", Base: 300, Poisson: true, Seed: 7},
		}},
	}
	for i := 0; i < variants; i++ {
		window := time.Duration(i+1) * time.Minute
		s.Controllers = append(s.Controllers, ControllerVariant{
			Name: fmt.Sprintf("w%d", i+1),
			Layers: map[flow.LayerKind]flow.ControllerSpec{
				flow.Analytics: flow.DefaultAdaptive(60, window, 4),
			},
		})
	}
	return s
}

// seedRange returns n distinct seeds (duplicates are themselves a
// validation error).
func seedRange(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"no name", func(s *Spec) { s.Name = "" }},
		{"no duration", func(s *Spec) { s.Duration = 0 }},
		{"unnamed variant", func(s *Spec) { s.Controllers[0].Name = "" }},
		{"duplicate variant", func(s *Spec) { s.Controllers[1].Name = s.Controllers[0].Name }},
		{"oversized grid", func(s *Spec) { s.Seeds = seedRange(MaxTrials + 1) }},
		{"unknown baseline", func(s *Spec) { s.Baseline = "constant/w1/s0" }}, // seed suffix only with >1 seeds
		{"slash in variant name", func(s *Spec) { s.Controllers[0].Name = "a/b" }},
		{"duplicate seeds", func(s *Spec) { s.Seeds = []int64{7, 7} }},
		{"typo'd controller layer", func(s *Spec) {
			s.Controllers[0].Layers["analytcs"] = s.Controllers[0].Layers[flow.Analytics]
		}},
		{"typo'd allocation layer", func(s *Spec) {
			s.Allocations = []AllocationVariant{{Name: "a", Initial: map[flow.LayerKind]float64{"storge": 5}}}
		}},
		{"sub-step duration", func(s *Spec) { s.Duration = flow.Duration(5 * time.Second) }}, // 10s step: zero ticks
	}
	for _, tc := range cases {
		s := quickSpec("x", 2, time.Minute)
		tc.mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid spec", tc.name)
		}
	}
	s := quickSpec("x", 2, time.Minute)
	if err := s.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	s.Baseline = "constant/w2"
	if err := s.Validate(); err != nil {
		t.Fatalf("valid baseline rejected: %v", err)
	}
}

func TestDeltasWaitForNamedBaseline(t *testing.T) {
	mk := func(name string, st TrialStatus, cost float64) TrialSummary {
		return TrialSummary{Trial: Trial{Name: name}, Status: st, TotalCost: cost}
	}
	// The named baseline has not completed yet: no deltas, rather than a
	// silent fallback that would flip reference once it finishes.
	agg := aggregate([]TrialSummary{
		mk("a", TrialDone, 1),
		mk("b", TrialRunning, 0),
	}, "b")
	if agg.Baseline != "" || len(agg.Deltas) != 0 {
		t.Fatalf("deltas reported against a fallback baseline: %+v", agg)
	}
	agg = aggregate([]TrialSummary{
		mk("a", TrialDone, 1),
		mk("b", TrialDone, 2),
	}, "b")
	if agg.Baseline != "b" || len(agg.Deltas) != 1 {
		t.Fatalf("baseline not honoured once completed: %+v", agg)
	}
}

func TestExpandCrossesAxesDeterministically(t *testing.T) {
	s := quickSpec("grid", 3, time.Minute)
	s.Seeds = []int64{0, 1}
	s.Allocations = []AllocationVariant{
		{Name: "small", Initial: map[flow.LayerKind]float64{flow.Analytics: 2}},
		{Name: "large", Initial: map[flow.LayerKind]float64{flow.Analytics: 8}},
	}
	if got, want := s.TrialCount(), 1*3*2*2; got != want {
		t.Fatalf("TrialCount = %d, want %d", got, want)
	}
	trials, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) != 12 {
		t.Fatalf("expanded %d trials, want 12", len(trials))
	}
	// Names are unique and stable.
	seen := map[string]bool{}
	for _, tr := range trials {
		if seen[tr.Name] {
			t.Fatalf("duplicate trial name %q", tr.Name)
		}
		seen[tr.Name] = true
	}
	if trials[0].Name != "constant/w1/small/s0" {
		t.Fatalf("trial 0 name = %q", trials[0].Name)
	}
	// Allocation variants land in the materialised specs.
	ana, _ := trials[0].Spec.Layer(flow.Analytics)
	if ana.Initial != 2 {
		t.Fatalf("allocation variant not applied: initial VMs = %v", ana.Initial)
	}
	// Same spec expands to identical seeds; different grid coordinates
	// get decorrelated seeds.
	again, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for i := range trials {
		if trials[i].SimSeed != again[i].SimSeed {
			t.Fatalf("expansion is not deterministic at trial %d", i)
		}
	}
	if trials[0].SimSeed == trials[1].SimSeed {
		t.Fatal("distinct grid points share a sim seed")
	}
}

func TestExpandRejectsInvalidVariant(t *testing.T) {
	s := quickSpec("bad", 1, time.Minute)
	// An allocation outside the layer's [min, max] must fail expansion.
	s.Allocations = []AllocationVariant{
		{Name: "oob", Initial: map[flow.LayerKind]float64{flow.Analytics: 1e9}},
	}
	if _, err := s.Expand(); err == nil {
		t.Fatal("Expand accepted an out-of-range allocation variant")
	}
	// A storage-reads controller needs the dashboard read workload.
	s = quickSpec("noreads", 1, time.Minute)
	s.Controllers[0].Layers[flow.StorageReads] = flow.DefaultAdaptive(60, time.Minute, 40)
	if _, err := s.Expand(); err == nil {
		t.Fatal("Expand accepted a storage-reads variant on a flow without a dashboard")
	}
}

func TestMinimalSpecIsOneBaseTrial(t *testing.T) {
	s := Spec{Name: "one", Duration: flow.Duration(time.Minute)}
	trials, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) != 1 || trials[0].Name != "base" {
		t.Fatalf("minimal spec expanded to %+v", trials)
	}
}

func TestRunDeterminism(t *testing.T) {
	run := func() Results {
		e := NewEngine(2)
		defer e.Close()
		x, err := e.Submit("det", quickSpec("det", 2, 10*time.Minute))
		if err != nil {
			t.Fatal(err)
		}
		<-x.Done()
		return x.Results()
	}
	a, b := run(), run()
	if len(a.Trials) != len(b.Trials) {
		t.Fatalf("trial counts differ: %d vs %d", len(a.Trials), len(b.Trials))
	}
	for i := range a.Trials {
		at, bt := a.Trials[i], b.Trials[i]
		if at.TotalCost != bt.TotalCost || at.ViolationRate != bt.ViolationRate ||
			at.Offered != bt.Offered {
			t.Fatalf("trial %q not reproducible: cost %v vs %v, viol %v vs %v, offered %d vs %d",
				at.Name, at.TotalCost, bt.TotalCost, at.ViolationRate, bt.ViolationRate,
				at.Offered, bt.Offered)
		}
	}
}

func TestAggregatesRankAndExtractPareto(t *testing.T) {
	mk := func(name string, cost, viol float64) TrialSummary {
		return TrialSummary{
			Trial:         Trial{Name: name},
			Status:        TrialDone,
			TotalCost:     cost,
			ViolationRate: viol,
		}
	}
	trials := []TrialSummary{
		mk("cheap-bad", 1.0, 0.30),
		mk("dear-good", 4.0, 0.01),
		mk("balanced", 2.0, 0.05),
		mk("dominated", 3.0, 0.40), // worse than balanced on both axes
		{Trial: Trial{Name: "failed"}, Status: TrialFailed},
	}
	agg := aggregate(trials, "balanced")
	if agg.Completed != 4 {
		t.Fatalf("Completed = %d, want 4", agg.Completed)
	}
	if agg.BestCost.Name != "cheap-bad" || agg.WorstCost.Name != "dear-good" {
		t.Fatalf("cost ranking wrong: best %q worst %q", agg.BestCost.Name, agg.WorstCost.Name)
	}
	if agg.BestViolation.Name != "dear-good" || agg.WorstViolation.Name != "dominated" {
		t.Fatalf("violation ranking wrong: best %q worst %q", agg.BestViolation.Name, agg.WorstViolation.Name)
	}
	front := map[string]bool{}
	for _, p := range agg.Pareto {
		front[p.Name] = true
	}
	if !front["cheap-bad"] || !front["dear-good"] || !front["balanced"] || front["dominated"] {
		t.Fatalf("Pareto front wrong: %v", agg.Pareto)
	}
	if agg.Baseline != "balanced" {
		t.Fatalf("Baseline = %q, want balanced", agg.Baseline)
	}
	var vsBase map[string]Delta
	vsBase = map[string]Delta{}
	for _, d := range agg.Deltas {
		vsBase[d.Name] = d
	}
	if d := vsBase["cheap-bad"]; d.CostPct != -50 {
		t.Fatalf("cheap-bad cost delta = %v%%, want -50%%", d.CostPct)
	}
	if d := vsBase["dear-good"]; d.CostPct != 100 {
		t.Fatalf("dear-good cost delta = %v%%, want 100%%", d.CostPct)
	}
}
