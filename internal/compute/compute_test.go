package compute

import (
	"math"
	"testing"
	"time"

	"repro/internal/metricstore"
	"repro/internal/stream"
)

var t0 = time.Date(2017, 8, 28, 0, 0, 0, 0, time.UTC)

func topo() Topology {
	return Topology{
		Name: "clickstream",
		Stages: []Stage{
			{Name: "parse", CostMs: 0.2, Selectivity: 1.0},
			{Name: "sessionize", CostMs: 0.5, Selectivity: 1.0},
			{Name: "aggregate", CostMs: 0.3, Selectivity: 0.1},
		},
	}
}

func cfg() Config {
	return Config{
		Topology:           topo(),
		VMCapacityMsPerSec: 1000,
		InitialVMs:         2,
		MinVMs:             1,
		MaxVMs:             20,
	}
}

func mustCluster(t *testing.T, c Config, src Source, sink Sink, ms *metricstore.Store) *Cluster {
	t.Helper()
	cl, err := NewCluster(c, src, sink, ms)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestTopologyValidate(t *testing.T) {
	if err := (Topology{}).Validate(); err == nil {
		t.Fatal("empty topology accepted")
	}
	if err := (Topology{Name: "t"}).Validate(); err == nil {
		t.Fatal("stage-less topology accepted")
	}
	bad := Topology{Name: "t", Stages: []Stage{{Name: "s", CostMs: -1}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative cost accepted")
	}
	if err := topo().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTopologyCostAndSelectivity(t *testing.T) {
	tp := topo()
	// parse 0.2 + sessionize 0.5 (selectivity 1 upstream) + aggregate 0.3.
	if got := tp.CostPerTupleMs(); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("CostPerTupleMs = %v, want 1.0", got)
	}
	if got := tp.OutputSelectivity(); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("OutputSelectivity = %v, want 0.1", got)
	}

	// Fan-out then reduce: second stage runs 3 tuples per input.
	fan := Topology{Name: "f", Stages: []Stage{
		{Name: "split", CostMs: 1, Selectivity: 3},
		{Name: "count", CostMs: 2, Selectivity: 0.5},
	}}
	if got := fan.CostPerTupleMs(); math.Abs(got-7) > 1e-12 { // 1 + 3*2
		t.Fatalf("fan cost = %v, want 7", got)
	}
	if got := fan.OutputSelectivity(); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("fan selectivity = %v, want 1.5", got)
	}
}

func TestNewClusterValidation(t *testing.T) {
	c := cfg()
	c.VMCapacityMsPerSec = 0
	if _, err := NewCluster(c, nil, nil, nil); err == nil {
		t.Fatal("zero capacity accepted")
	}
	c = cfg()
	c.InitialVMs = 0
	if _, err := NewCluster(c, nil, nil, nil); err == nil {
		t.Fatal("zero VMs accepted")
	}
	c = cfg()
	c.MinVMs, c.MaxVMs = 5, 2
	if _, err := NewCluster(c, nil, nil, nil); err == nil {
		t.Fatal("min>max accepted")
	}
	c = cfg()
	c.InitialVMs = 30 // above MaxVMs
	if _, err := NewCluster(c, nil, nil, nil); err == nil {
		t.Fatal("InitialVMs above max accepted")
	}
}

func TestUtilizationProportionalToLoad(t *testing.T) {
	// 2 VMs * 1000 ms/s = 2000 ms budget per 1s tick; cost 1 ms/tuple.
	cl := mustCluster(t, cfg(), nil, nil, nil)
	cl.InjectTuples(500) // 25% of 2000-tuple capacity
	cl.Tick(t0, time.Second)
	if got := cl.LastUtilization(); math.Abs(got-25) > 1e-9 {
		t.Fatalf("util = %v, want 25", got)
	}
	cl.InjectTuples(1000)
	cl.Tick(t0.Add(time.Second), time.Second)
	if got := cl.LastUtilization(); math.Abs(got-50) > 1e-9 {
		t.Fatalf("util = %v, want 50", got)
	}
}

func TestSaturationQueuesAndReports100(t *testing.T) {
	cl := mustCluster(t, cfg(), nil, nil, nil)
	cl.InjectTuples(5000) // capacity 2000/tick
	cl.Tick(t0, time.Second)
	if got := cl.LastUtilization(); got != 100 {
		t.Fatalf("util = %v, want 100", got)
	}
	if got := cl.PendingTuples(); got != 3000 {
		t.Fatalf("pending = %d, want 3000", got)
	}
	// Backlog drains over following quiet ticks.
	cl.Tick(t0.Add(time.Second), time.Second)
	if got := cl.PendingTuples(); got != 1000 {
		t.Fatalf("pending after drain tick = %d, want 1000", got)
	}
}

func TestQueueCapSheds(t *testing.T) {
	c := cfg()
	c.MaxQueue = 100
	cl := mustCluster(t, c, nil, nil, nil)
	cl.InjectTuples(500)
	if cl.PendingTuples() != 100 {
		t.Fatalf("pending = %d, want 100", cl.PendingTuples())
	}
	if cl.ShedTuples() != 400 {
		t.Fatalf("shed = %d, want 400", cl.ShedTuples())
	}
}

func TestSetVMCountClampsAndScalesCapacity(t *testing.T) {
	cl := mustCluster(t, cfg(), nil, nil, nil)
	if err := cl.SetVMCount(t0, 100); err != nil {
		t.Fatal(err)
	}
	if cl.VMCount() != 20 {
		t.Fatalf("VMCount = %d, want clamp to 20", cl.VMCount())
	}
	if err := cl.SetVMCount(t0, 0); err != nil {
		t.Fatal(err)
	}
	if cl.VMCount() != 1 {
		t.Fatalf("VMCount = %d, want clamp to 1", cl.VMCount())
	}
	cl.SetVMCount(t0, 4)
	cl.InjectTuples(2000) // 4 VMs → 4000 ms budget → all processed
	cl.Tick(t0, time.Second)
	if got := cl.LastUtilization(); math.Abs(got-50) > 1e-9 {
		t.Fatalf("util with 4 VMs = %v, want 50", got)
	}
}

func TestProvisionDelayDefersResize(t *testing.T) {
	c := cfg()
	c.ProvisionDelay = 2 * time.Minute
	cl := mustCluster(t, c, nil, nil, nil)
	cl.SetVMCount(t0, 10)
	if cl.VMCount() != 2 {
		t.Fatalf("VMCount = %d immediately after delayed resize, want 2", cl.VMCount())
	}
	cl.Tick(t0.Add(time.Minute), time.Minute)
	if cl.VMCount() != 2 {
		t.Fatalf("VMCount = %d before delay elapsed, want 2", cl.VMCount())
	}
	cl.Tick(t0.Add(2*time.Minute), time.Minute)
	if cl.VMCount() != 10 {
		t.Fatalf("VMCount = %d after delay elapsed, want 10", cl.VMCount())
	}
}

func TestSinkReceivesSelectedOutput(t *testing.T) {
	var emitted int
	sink := SinkFunc(func(_ time.Time, n, _ int) { emitted += n })
	cl := mustCluster(t, cfg(), nil, sink, nil)
	cl.InjectTuples(1000)
	cl.Tick(t0, time.Second)
	if emitted != 100 { // selectivity 0.1
		t.Fatalf("emitted = %d, want 100", emitted)
	}
}

func TestStreamSourceIntegration(t *testing.T) {
	ms := metricstore.NewStore()
	st, err := stream.New("clicks", 2, ms)
	if err != nil {
		t.Fatal(err)
	}
	cl := mustCluster(t, cfg(), StreamSource{Stream: st}, nil, ms)
	for i := 0; i < 600; i++ {
		if _, err := st.PutRecord(t0, string(rune('a'+i%26))+"-key", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	cl.Tick(t0, time.Second)
	if st.BacklogRecords() != 0 {
		t.Fatalf("stream backlog = %d after cluster tick, want 0", st.BacklogRecords())
	}
	if got := cl.LastUtilization(); math.Abs(got-30) > 1e-9 { // 600/2000
		t.Fatalf("util = %v, want 30", got)
	}
}

func TestMetricsPublished(t *testing.T) {
	ms := metricstore.NewStore()
	cl := mustCluster(t, cfg(), nil, nil, ms)
	cl.InjectTuples(1000)
	cl.Tick(t0, time.Second)
	d := map[string]string{"Topology": "clickstream"}
	cpu, ok := storeLatest(ms, Namespace, MetricCPUUtilization, d)
	if !ok || math.Abs(cpu.V-50) > 1e-9 {
		t.Fatalf("CPU metric = %+v ok=%v, want 50", cpu, ok)
	}
	proc, _ := storeLatest(ms, Namespace, MetricProcessedTuples, d)
	if proc.V != 1000 {
		t.Fatalf("ProcessedTuples = %v, want 1000", proc.V)
	}
	vm, _ := storeLatest(ms, Namespace, MetricVMCount, d)
	if vm.V != 2 {
		t.Fatalf("VMCount metric = %v, want 2", vm.V)
	}
	lat, _ := storeLatest(ms, Namespace, MetricLatencyMs, d)
	if lat.V <= 0 {
		t.Fatalf("latency = %v, want positive", lat.V)
	}
}

func TestCPUNoiseIsBoundedAndDeterministic(t *testing.T) {
	run := func(seed int64) []float64 {
		ms := metricstore.NewStore()
		c := cfg()
		c.CPUNoiseStd = 2
		c.Seed = seed
		cl := mustCluster(t, c, nil, nil, ms)
		var out []float64
		for i := 0; i < 50; i++ {
			cl.InjectTuples(1000)
			cl.Tick(t0.Add(time.Duration(i)*time.Second), time.Second)
			p, _ := storeLatest(ms, Namespace, MetricCPUUtilization, map[string]string{"Topology": "clickstream"})
			out = append(out, p.V)
		}
		return out
	}
	a := run(7)
	b := run(7)
	differs := false
	for i := range a {
		if a[i] < 0 || a[i] > 100 {
			t.Fatalf("noisy CPU %v out of [0,100]", a[i])
		}
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
		if math.Abs(a[i]-50) > 1e-9 {
			differs = true
		}
	}
	if !differs {
		t.Fatal("noise had no effect")
	}
}

func TestLatencyGrowsWithLoad(t *testing.T) {
	cl := mustCluster(t, cfg(), nil, nil, metricstore.NewStore())
	getLatency := func(load int) float64 {
		ms := metricstore.NewStore()
		cl = mustCluster(t, cfg(), nil, nil, ms)
		cl.InjectTuples(load)
		cl.Tick(t0, time.Second)
		p, _ := storeLatest(ms, Namespace, MetricLatencyMs, map[string]string{"Topology": "clickstream"})
		return p.V
	}
	low := getLatency(200)
	mid := getLatency(1500)
	high := getLatency(4000)
	if !(low < mid && mid < high) {
		t.Fatalf("latency not increasing with load: %v %v %v", low, mid, high)
	}
}

func TestBaseCPUFloor(t *testing.T) {
	c := cfg()
	c.BaseCPUPct = 4.8
	cl := mustCluster(t, c, nil, nil, nil)
	// Idle tick: utilisation is the floor, not zero.
	cl.Tick(t0, time.Second)
	if got := cl.LastUtilization(); math.Abs(got-4.8) > 1e-9 {
		t.Fatalf("idle util = %v, want 4.8 floor", got)
	}
	// Load adds on top of the floor.
	cl.InjectTuples(500) // 25% of capacity
	cl.Tick(t0.Add(time.Second), time.Second)
	if got := cl.LastUtilization(); math.Abs(got-29.8) > 1e-9 {
		t.Fatalf("loaded util = %v, want 29.8", got)
	}
	// Saturation still reports 100.
	cl.InjectTuples(50000)
	cl.Tick(t0.Add(2*time.Second), time.Second)
	if got := cl.LastUtilization(); got != 100 {
		t.Fatalf("saturated util = %v, want 100", got)
	}
}
