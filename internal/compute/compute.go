// Package compute implements the analytics-layer substrate: a stream
// processing topology executed on a simulated VM cluster, modelled on
// Apache Storm deployed on EC2 — the analytics layer of the paper's
// click-stream flow (Fig. 1).
//
// The model captures what Flower observes and actuates at this layer:
//
//   - a Topology is a spout followed by bolt stages, each with a CPU cost
//     per tuple and a selectivity (output tuples per input tuple);
//   - a Cluster executes the topology with an aggregate CPU budget
//     proportional to its VM count; tuples beyond the budget queue up;
//   - measured cluster CPU utilisation is the sensor (the paper's Fig. 2
//     plots exactly this signal against the ingestion arrival rate);
//   - the VM count is the actuator ("adding or removing VMs", §2), with an
//     optional provisioning delay to model instance boot time.
//
// Because per-tick CPU demand is (arrival rate × per-tuple cost), measured
// utilisation is linear in the ingestion rate as long as the cluster is not
// saturated — which is what makes the paper's linear dependency model
// (Eq. 1–2) a good fit, and what experiment E1/E2 reproduces.
package compute

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/metricstore"
	"repro/internal/stream"
)

// Namespace is the metric namespace the cluster publishes under.
const Namespace = "Analytics/Compute"

// Metric names published each tick.
const (
	MetricCPUUtilization  = "CPUUtilization"
	MetricProcessedTuples = "ProcessedTuples"
	MetricPendingTuples   = "PendingTuples"
	MetricVMCount         = "VMCount"
	MetricLatencyMs       = "ExecuteLatencyMs"
	MetricEmittedTuples   = "EmittedTuples"
)

// Stage is one bolt in a topology.
type Stage struct {
	Name        string
	CostMs      float64 // CPU milliseconds consumed per input tuple
	Selectivity float64 // output tuples per input tuple (>= 0)
}

// Topology is a linear spout→bolt chain. (The paper's click-stream demo
// uses Amazon's reference sliding-window topology, which is linear:
// parse → sessionize → aggregate.)
type Topology struct {
	Name   string
	Stages []Stage
}

// Validate checks topology invariants.
func (t Topology) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("compute: topology name is required")
	}
	if len(t.Stages) == 0 {
		return fmt.Errorf("compute: topology %q has no stages", t.Name)
	}
	for _, st := range t.Stages {
		if st.CostMs < 0 {
			return fmt.Errorf("compute: stage %q has negative cost", st.Name)
		}
		if st.Selectivity < 0 {
			return fmt.Errorf("compute: stage %q has negative selectivity", st.Name)
		}
	}
	return nil
}

// CostPerTupleMs returns the total CPU milliseconds one spout tuple costs
// across all stages, accounting for selectivity fan-in/fan-out: a stage
// processing k tuples per original input contributes k times its cost.
func (t Topology) CostPerTupleMs() float64 {
	mult := 1.0
	total := 0.0
	for _, st := range t.Stages {
		total += mult * st.CostMs
		mult *= st.Selectivity
	}
	return total
}

// OutputSelectivity returns final output tuples per spout tuple.
func (t Topology) OutputSelectivity() float64 {
	mult := 1.0
	for _, st := range t.Stages {
		mult *= st.Selectivity
	}
	return mult
}

// Source supplies input tuples each tick. *stream.Stream is adapted via
// StreamSource.
type Source interface {
	// Poll removes and returns up to max pending records.
	Poll(max int) []stream.Record
}

// CountSource is an optional fast-path refinement of Source: the analytics
// topology only needs tuple counts (payloads never affect the CPU model),
// so a source that can report a drained count without materialising records
// avoids the per-record cost entirely. Cluster.Tick prefers this interface
// when the source implements it.
type CountSource interface {
	// PollCount removes up to max pending records and returns how many.
	PollCount(max int) int
}

// StreamSource adapts a stream.Stream into a Source.
type StreamSource struct{ Stream *stream.Stream }

// Poll drains up to max records from all shards.
func (s StreamSource) Poll(max int) []stream.Record { return s.Stream.DrainAll(max) }

// PollCount drains up to max backlog records (counted and materialised)
// and returns the count, implementing CountSource.
func (s StreamSource) PollCount(max int) int { return s.Stream.DrainCount(max) }

// Sink receives the topology's output tuples. The storage layer adapts its
// table writer into this.
type Sink interface {
	// Emit delivers n output tuples of approximately avgBytes each.
	Emit(now time.Time, n int, avgBytes int)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(now time.Time, n int, avgBytes int)

// Emit calls f.
func (f SinkFunc) Emit(now time.Time, n int, avgBytes int) { f(now, n, avgBytes) }

// Config parameterises a Cluster.
type Config struct {
	Topology Topology
	// VMCapacityMsPerSec is the CPU milliseconds one VM delivers per wall
	// second (e.g. 4 cores × 1000ms × 0.8 efficiency = 3200).
	VMCapacityMsPerSec float64
	// InitialVMs is the starting cluster size.
	InitialVMs int
	// MinVMs / MaxVMs clamp the actuator range.
	MinVMs, MaxVMs int
	// ProvisionDelay is how long a VM-count change takes to become
	// effective (instance boot / Storm rebalance). Zero applies instantly.
	ProvisionDelay time.Duration
	// MaxQueue bounds the pending-tuple queue; beyond it tuples are shed
	// and counted as failed. Zero means unbounded.
	MaxQueue int
	// CPUNoiseStd is the standard deviation (in percentage points) of the
	// Gaussian measurement noise added to the published CPU metric, making
	// Fig. 2's correlation realistically just-below 1. Zero disables noise.
	CPUNoiseStd float64
	// BaseCPUPct is the idle CPU floor (OS daemons, supervisor, heartbeat
	// traffic) added to the load-proportional utilisation. The paper's
	// Eq. 2 intercept (CPU ≈ 0.0002·WriteCapacity + 4.8) is exactly this
	// floor: ~4.8% CPU at zero ingest.
	BaseCPUPct float64
	// BaseLatencyMs is the no-load execute latency.
	BaseLatencyMs float64
	// OutputBytes is the approximate size of one emitted tuple.
	OutputBytes int
	// Seed drives the measurement-noise RNG.
	Seed int64
}

// Cluster is the simulated analytics cluster.
type Cluster struct {
	cfg   Config
	vms   int
	queue int
	shed  int // tuples dropped due to MaxQueue, cumulative

	pendingVMs    int       // target of an in-flight resize
	pendingAt     time.Time // when the resize completes
	resizePending bool

	source Source
	sink   Sink

	store *metricstore.Store
	dims  map[string]string
	rng   *rand.Rand

	// Per-tick publish handles, resolved once at construction so Tick's
	// metric writes are allocation-free (nil when store is nil).
	mCPU       *metricstore.Handle
	mProcessed *metricstore.Handle
	mPending   *metricstore.Handle
	mVMs       *metricstore.Handle
	mLatency   *metricstore.Handle
	mEmitted   *metricstore.Handle

	lastUtil float64 // last published CPU utilisation (pre-noise)
}

// NewCluster builds a cluster. source and sink may be nil (useful in unit
// tests that inject tuples directly).
func NewCluster(cfg Config, source Source, sink Sink, store *metricstore.Store) (*Cluster, error) {
	if err := cfg.Topology.Validate(); err != nil {
		return nil, err
	}
	if cfg.VMCapacityMsPerSec <= 0 {
		return nil, fmt.Errorf("compute: VMCapacityMsPerSec must be positive")
	}
	if cfg.InitialVMs <= 0 {
		return nil, fmt.Errorf("compute: InitialVMs must be positive")
	}
	if cfg.MinVMs <= 0 {
		cfg.MinVMs = 1
	}
	if cfg.MaxVMs <= 0 {
		cfg.MaxVMs = 1 << 20
	}
	if cfg.MinVMs > cfg.MaxVMs {
		return nil, fmt.Errorf("compute: MinVMs %d > MaxVMs %d", cfg.MinVMs, cfg.MaxVMs)
	}
	if cfg.InitialVMs < cfg.MinVMs || cfg.InitialVMs > cfg.MaxVMs {
		return nil, fmt.Errorf("compute: InitialVMs %d outside [%d,%d]", cfg.InitialVMs, cfg.MinVMs, cfg.MaxVMs)
	}
	if cfg.BaseLatencyMs <= 0 {
		cfg.BaseLatencyMs = 5
	}
	if cfg.OutputBytes <= 0 {
		cfg.OutputBytes = 256
	}
	c := &Cluster{
		cfg:    cfg,
		vms:    cfg.InitialVMs,
		source: source,
		sink:   sink,
		store:  store,
		dims:   map[string]string{"Topology": cfg.Topology.Name},
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
	if store != nil {
		c.mCPU = store.MustHandle(Namespace, MetricCPUUtilization, c.dims)
		c.mProcessed = store.MustHandle(Namespace, MetricProcessedTuples, c.dims)
		c.mPending = store.MustHandle(Namespace, MetricPendingTuples, c.dims)
		c.mVMs = store.MustHandle(Namespace, MetricVMCount, c.dims)
		c.mLatency = store.MustHandle(Namespace, MetricLatencyMs, c.dims)
		c.mEmitted = store.MustHandle(Namespace, MetricEmittedTuples, c.dims)
	}
	return c, nil
}

// VMCount reports the currently effective VM count.
func (c *Cluster) VMCount() int { return c.vms }

// MinVMs returns the actuator's lower bound.
func (c *Cluster) MinVMs() int { return c.cfg.MinVMs }

// MaxVMs returns the actuator's upper bound.
func (c *Cluster) MaxVMs() int { return c.cfg.MaxVMs }

// PendingTuples reports the queued, unprocessed tuple count.
func (c *Cluster) PendingTuples() int { return c.queue }

// ShedTuples reports the cumulative count of tuples dropped at MaxQueue.
func (c *Cluster) ShedTuples() int { return c.shed }

// LastUtilization reports the most recent true (pre-noise) CPU utilisation.
func (c *Cluster) LastUtilization() float64 { return c.lastUtil }

// SetVMCount requests a cluster resize, clamped to [MinVMs, MaxVMs]. With
// a ProvisionDelay the change takes effect that much later. A newer request
// while a resize is in flight retargets it but keeps the original
// completion time — instances already booting are not cancelled and
// re-ordered, so a steady stream of commands cannot starve the resize
// (which is how real provider control planes converge on the latest
// desired capacity).
func (c *Cluster) SetVMCount(now time.Time, n int) error {
	if n < c.cfg.MinVMs {
		n = c.cfg.MinVMs
	}
	if n > c.cfg.MaxVMs {
		n = c.cfg.MaxVMs
	}
	if c.cfg.ProvisionDelay <= 0 {
		c.vms = n
		c.resizePending = false
		return nil
	}
	c.pendingVMs = n
	if !c.resizePending {
		c.pendingAt = now.Add(c.cfg.ProvisionDelay)
		c.resizePending = true
	}
	return nil
}

// InjectTuples queues n tuples directly, bypassing the source. Tests and
// standalone examples use this.
func (c *Cluster) InjectTuples(n int) {
	c.queue += n
	c.capQueue()
}

func (c *Cluster) capQueue() {
	if c.cfg.MaxQueue > 0 && c.queue > c.cfg.MaxQueue {
		c.shed += c.queue - c.cfg.MaxQueue
		c.queue = c.cfg.MaxQueue
	}
}

// Tick runs one simulation step: applies due resizes, pulls input, spends
// the CPU budget, emits output downstream, and publishes metrics.
func (c *Cluster) Tick(now time.Time, step time.Duration) {
	if c.resizePending && !now.Before(c.pendingAt) {
		c.vms = c.pendingVMs
		c.resizePending = false
	}

	costMs := c.cfg.Topology.CostPerTupleMs()
	capacityMs := float64(c.vms) * c.cfg.VMCapacityMsPerSec * step.Seconds()

	// Pull everything the source has; admission control is the queue cap.
	pulled := 0
	if c.source != nil {
		if cs, ok := c.source.(CountSource); ok {
			pulled = cs.PollCount(1 << 30)
		} else {
			pulled = len(c.source.Poll(1 << 30))
		}
		c.queue += pulled
		c.capQueue()
	}

	// Process as much of the queue as the CPU budget allows.
	canProcess := c.queue
	if costMs > 0 {
		if byCPU := int(capacityMs / costMs); byCPU < canProcess {
			canProcess = byCPU
		}
	}
	processed := canProcess
	c.queue -= processed

	demandMs := float64(processed) * costMs
	util := c.cfg.BaseCPUPct
	if capacityMs > 0 {
		util += demandMs / capacityMs * 100
	}
	if util > 100 {
		util = 100
	}
	// A standing queue means the cluster is saturated regardless of
	// integer-rounding slack in the budget.
	if c.queue > 0 {
		util = 100
	}
	c.lastUtil = util

	// Output.
	emitted := int(float64(processed) * c.cfg.Topology.OutputSelectivity())
	if c.sink != nil && emitted > 0 {
		c.sink.Emit(now, emitted, c.cfg.OutputBytes)
	}

	// Latency from an M/M/1-style load amplification, growing with queue.
	rho := util / 100
	latency := c.cfg.BaseLatencyMs
	if rho < 0.99 {
		latency = c.cfg.BaseLatencyMs / (1 - rho)
	} else {
		procRate := capacityMs / math.Max(costMs, 1e-9) / step.Seconds() // tuples per second
		latency = c.cfg.BaseLatencyMs*100 + float64(c.queue)/math.Max(procRate, 1e-9)*1000
	}

	if c.store != nil {
		measured := util
		if c.cfg.CPUNoiseStd > 0 {
			measured += c.rng.NormFloat64() * c.cfg.CPUNoiseStd
			if measured < 0 {
				measured = 0
			}
			if measured > 100 {
				measured = 100
			}
		}
		c.mCPU.MustAppend(now, measured)
		c.mProcessed.MustAppend(now, float64(processed))
		c.mPending.MustAppend(now, float64(c.queue))
		c.mVMs.MustAppend(now, float64(c.vms))
		c.mLatency.MustAppend(now, latency)
		c.mEmitted.MustAppend(now, float64(emitted))
	}
}
