package workload

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"time"

	"repro/internal/metricstore"
	"repro/internal/randx"
	"repro/internal/stream"
)

// Namespace is the metric namespace the generator publishes under.
const Namespace = "Workload/Generator"

// Metric names published each tick.
const (
	MetricTargetRate     = "TargetRate"     // pattern rate, records/s
	MetricOfferedRecords = "OfferedRecords" // records offered this tick
	MetricRejected       = "RejectedRecords"
)

// ClickEvent is one synthetic click-stream record.
type ClickEvent struct {
	UserID    string
	Page      string
	Referrer  string
	UserAgent string
	At        time.Time
}

// Encode renders the event as a compact wire representation (CSV-ish); the
// simulated pipeline only cares about its size and partition key, so the
// encoding avoids fmt and time formatting — experiments push tens of
// millions of events through this path.
func (e ClickEvent) Encode() []byte {
	b := make([]byte, 0, len(e.UserID)+len(e.Page)+len(e.Referrer)+len(e.UserAgent)+16)
	b = append(b, e.UserID...)
	b = append(b, ',')
	b = append(b, e.Page...)
	b = append(b, ',')
	b = append(b, e.Referrer...)
	b = append(b, ',')
	b = append(b, e.UserAgent...)
	b = append(b, ',')
	b = strconv.AppendInt(b, e.At.Unix(), 10)
	return b
}

// GeneratorConfig parameterises a Generator.
type GeneratorConfig struct {
	Pattern Pattern
	// Users and Pages bound the synthetic population. Users are uniform
	// (spreading partition keys across shards); pages are Zipf-skewed.
	Users, Pages int
	// ZipfS is the Zipf skew parameter (>1); default 1.2.
	ZipfS float64
	// Poisson selects stochastic arrivals: the per-tick count is drawn
	// from Poisson(rate·step). When false the count is the deterministic
	// rounded mean — useful for controller experiments that need clean
	// step inputs.
	Poisson bool
	// Seed drives all randomness in the generator.
	Seed int64
	// Start is subtracted from tick times to compute pattern-elapsed time.
	Start time.Time
	// Aggregate selects the count-based fast path: instead of synthesising
	// every click event, each tick's arrival count is distributed over the
	// destination stream's shards by sampling the multinomial the
	// per-record path induces (uniform user keys → shard weights from the
	// key population). The stream sees identical statistics at O(shards)
	// instead of O(records) cost per tick. Ignored when there is no
	// destination stream.
	Aggregate bool
}

// Generator produces click events each tick and offers them to a stream.
// User IDs are uniform over the population (a website has many independent
// visitors, so partition keys spread evenly over shards); pages follow a
// Zipf distribution (a few pages get most of the traffic).
type Generator struct {
	cfg      GeneratorConfig
	rng      *rand.Rand
	pageZipf *rand.Zipf

	dest *stream.Stream
	ms   *metricstore.Store
	dims map[string]string

	// Per-tick publish handles, resolved once at construction (nil when ms
	// is nil).
	mTargetRate *metricstore.Handle
	mOffered    *metricstore.Handle
	mRejected   *metricstore.Handle

	offered  int64
	rejected int64

	// Aggregate-path state: the user-key population and its per-shard
	// weights, recomputed when the destination reshards.
	pop        *stream.KeyPopulation
	weights    []float64
	weightsGen int // dest.ReshardEvents() the weights were computed at
	eventBytes int // average encoded event size for byte accounting
}

// NewGenerator builds a generator writing into dest (which may be nil; use
// Events to pull events manually).
func NewGenerator(cfg GeneratorConfig, dest *stream.Stream, ms *metricstore.Store) (*Generator, error) {
	if cfg.Pattern == nil {
		return nil, fmt.Errorf("workload: pattern is required")
	}
	if cfg.Users <= 0 {
		cfg.Users = 10000
	}
	if cfg.Pages <= 0 {
		cfg.Pages = 500
	}
	if cfg.ZipfS <= 1 {
		cfg.ZipfS = 1.2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &Generator{
		cfg:      cfg,
		rng:      rng,
		pageZipf: rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Pages-1)),
		dest:     dest,
		ms:       ms,
		dims:     map[string]string{"Generator": "clickstream"},
	}
	if ms != nil {
		g.mTargetRate = ms.MustHandle(Namespace, MetricTargetRate, g.dims)
		g.mOffered = ms.MustHandle(Namespace, MetricOfferedRecords, g.dims)
		g.mRejected = ms.MustHandle(Namespace, MetricRejected, g.dims)
	}
	return g, nil
}

// Offered reports the cumulative records offered to the stream.
func (g *Generator) Offered() int64 { return g.offered }

// Rejected reports the cumulative records the stream throttled.
func (g *Generator) Rejected() int64 { return g.rejected }

// count returns the number of arrivals for a tick at the given mean.
func (g *Generator) count(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if !g.cfg.Poisson {
		return int(math.Round(mean))
	}
	return poisson(g.rng, mean)
}

// poisson draws from Poisson(mean). Knuth's method for small means; a
// normal approximation for large ones (mean > 64) keeps it O(1).
func poisson(rng *rand.Rand, mean float64) int {
	if mean > 64 {
		n := int(math.Round(mean + math.Sqrt(mean)*rng.NormFloat64()))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Event synthesises one click event at the given instant.
func (g *Generator) Event(now time.Time) ClickEvent {
	return ClickEvent{
		UserID:    "user-" + strconv.Itoa(g.rng.Intn(g.cfg.Users)),
		Page:      "/page/" + strconv.FormatUint(g.pageZipf.Uint64(), 10),
		Referrer:  "https://example.com",
		UserAgent: "flower-loadgen/1.0",
		At:        now,
	}
}

// Events returns the batch of events for a tick ending at now with the
// given step, without offering them anywhere.
func (g *Generator) Events(now time.Time, step time.Duration) []ClickEvent {
	elapsed := now.Sub(g.cfg.Start)
	mean := g.cfg.Pattern.Rate(elapsed) * step.Seconds()
	n := g.count(mean)
	out := make([]ClickEvent, n)
	for i := range out {
		out[i] = g.Event(now)
	}
	return out
}

// Tick generates this step's events and offers them to the destination
// stream, recording offered/rejected metrics. Events are partitioned by
// user ID, as the reference click-stream architecture does. In Aggregate
// mode the tick's count is offered through the stream's batch API with the
// same shard distribution, without materialising events.
func (g *Generator) Tick(now time.Time, step time.Duration) {
	if g.cfg.Aggregate && g.dest != nil {
		g.tickAggregate(now, step)
		return
	}
	events := g.Events(now, step)
	rejected := 0
	if g.dest != nil {
		for _, e := range events {
			if _, err := g.dest.PutRecord(now, e.UserID, e.Encode()); err != nil {
				rejected++
			}
		}
	}
	g.offered += int64(len(events))
	g.rejected += int64(rejected)
	g.publishTick(now, len(events), rejected)
}

// tickAggregate is the count-based fast path of Tick.
func (g *Generator) tickAggregate(now time.Time, step time.Duration) {
	elapsed := now.Sub(g.cfg.Start)
	mean := g.cfg.Pattern.Rate(elapsed) * step.Seconds()
	n := g.count(mean)

	if g.pop == nil {
		g.pop = stream.UniformUserPopulation(g.cfg.Users)
		g.eventBytes = len(g.Event(now).Encode())
	}
	if gen := g.dest.ReshardEvents(); g.weights == nil || gen != g.weightsGen {
		g.weights = g.pop.Weights(g.dest.Shards())
		g.weightsGen = gen
	}

	rejected := 0
	if n > 0 {
		counts := randx.Multinomial(g.rng, n, g.weights)
		_, rej, err := g.dest.PutCounts(now, counts, g.eventBytes)
		if err != nil {
			// Shard layout changed underneath us mid-tick (cannot happen
			// with the tick scheduler, but keep the invariant anyway).
			g.weights = nil
			counts = randx.MultinomialEven(g.rng, n, g.dest.ShardCount())
			_, rej, _ = g.dest.PutCounts(now, counts, g.eventBytes)
		}
		rejected = rej
	}
	g.offered += int64(n)
	g.rejected += int64(rejected)
	g.publishTick(now, n, rejected)
}

// publishTick records the per-tick generator metrics.
func (g *Generator) publishTick(now time.Time, offered, rejected int) {
	if g.ms == nil {
		return
	}
	elapsed := now.Sub(g.cfg.Start)
	g.mTargetRate.MustAppend(now, g.cfg.Pattern.Rate(elapsed))
	g.mOffered.MustAppend(now, float64(offered))
	g.mRejected.MustAppend(now, float64(rejected))
}
