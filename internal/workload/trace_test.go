package workload

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestTraceCSVRoundTrip(t *testing.T) {
	orig := Trace{Rates: []float64{100, 250.5, 400, 0}, Resolution: 30 * time.Second}
	var buf bytes.Buffer
	if err := SaveTraceCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := LoadTraceCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Resolution != orig.Resolution {
		t.Fatalf("resolution = %v, want %v", back.Resolution, orig.Resolution)
	}
	if len(back.Rates) != len(orig.Rates) {
		t.Fatalf("rates len = %d, want %d", len(back.Rates), len(orig.Rates))
	}
	for i := range orig.Rates {
		if back.Rates[i] != orig.Rates[i] {
			t.Fatalf("rate[%d] = %v, want %v", i, back.Rates[i], orig.Rates[i])
		}
	}
	// The loaded trace drives a generator identically to the original.
	if a, b := orig.Rate(45*time.Second), back.Rate(45*time.Second); a != b {
		t.Fatalf("pattern mismatch: %v vs %v", a, b)
	}
}

func TestSaveTraceCSVValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveTraceCSV(&buf, Trace{Rates: []float64{1}}); err == nil {
		t.Fatal("zero resolution accepted")
	}
}

func TestLoadTraceCSVErrors(t *testing.T) {
	cases := map[string]string{
		"too short":      "offset_seconds,rate_per_second\n0,100\n",
		"bad offset":     "h,r\nx,100\n30,200\n",
		"bad rate":       "h,r\n0,x\n30,200\n",
		"negative rate":  "h,r\n0,-5\n30,200\n",
		"uneven spacing": "h,r\n0,100\n30,200\n90,300\n",
		"non-increasing": "h,r\n0,100\n0,200\n",
		"wrong columns":  "h,r\n0\n30\n",
	}
	for name, data := range cases {
		if _, err := LoadTraceCSV(strings.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestLoadedTraceDrivesGenerator(t *testing.T) {
	csv := "offset_seconds,rate_per_second\n0,100\n60,200\n120,300\n"
	tr, err := LoadTraceCSV(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(GeneratorConfig{Pattern: tr, Start: t0, Seed: 1}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(g.Events(t0.Add(30*time.Second), time.Second)); n != 100 {
		t.Fatalf("events at 30s = %d, want 100", n)
	}
	if n := len(g.Events(t0.Add(90*time.Second), time.Second)); n != 200 {
		t.Fatalf("events at 90s = %d, want 200", n)
	}
}
