// Package workload implements the click-stream traffic generator that
// drives the simulated flow — the stand-in for the paper's "random
// multi-threaded click stream generator deployed on several EC2 instances
// to emulate the real website traffics" (§4).
//
// A Pattern maps elapsed simulation time to a target arrival rate
// (records/second); a Generator draws per-tick arrival counts from a
// Poisson distribution around that rate and synthesises click events with
// Zipf-distributed users and pages, feeding them to the ingestion layer.
package workload

import (
	"fmt"
	"math"
	"time"
)

// Pattern describes a deterministic target arrival-rate profile.
type Pattern interface {
	// Rate returns the target arrival rate in records/second at elapsed
	// time since the start of the run. Implementations must be pure.
	Rate(elapsed time.Duration) float64
}

// Constant is a flat rate.
type Constant float64

// Rate returns the constant rate.
func (c Constant) Rate(time.Duration) float64 { return float64(c) }

// Step jumps from Before to After at At — the canonical controller test
// input (experiment E4 uses it to measure settling time).
type Step struct {
	Before, After float64
	At            time.Duration
}

// Rate implements Pattern.
func (s Step) Rate(elapsed time.Duration) float64 {
	if elapsed < s.At {
		return s.Before
	}
	return s.After
}

// Ramp rises linearly from From to To between Start and Start+Length and
// holds To afterwards.
type Ramp struct {
	From, To      float64
	Start, Length time.Duration
}

// Rate implements Pattern.
func (r Ramp) Rate(elapsed time.Duration) float64 {
	switch {
	case elapsed <= r.Start:
		return r.From
	case elapsed >= r.Start+r.Length:
		return r.To
	default:
		frac := float64(elapsed-r.Start) / float64(r.Length)
		return r.From + (r.To-r.From)*frac
	}
}

// Sine oscillates around Base with the given Amplitude and Period —
// a smooth stand-in for periodic workload dynamics.
type Sine struct {
	Base, Amplitude float64
	Period          time.Duration
}

// Rate implements Pattern. The rate never goes below zero.
func (s Sine) Rate(elapsed time.Duration) float64 {
	if s.Period <= 0 {
		return s.Base
	}
	v := s.Base + s.Amplitude*math.Sin(2*math.Pi*float64(elapsed)/float64(s.Period))
	if v < 0 {
		v = 0
	}
	return v
}

// Diurnal models a day-night website traffic cycle: a low overnight floor
// rising to a peak in the afternoon, repeating every Day. This is the
// workload shape behind Fig. 2's 550-minute trace.
type Diurnal struct {
	Floor, Peak float64
	Day         time.Duration
}

// Rate implements Pattern using a raised-cosine day shape with its minimum
// at elapsed=0.
func (d Diurnal) Rate(elapsed time.Duration) float64 {
	if d.Day <= 0 {
		return d.Floor
	}
	phase := math.Mod(float64(elapsed)/float64(d.Day), 1)
	shape := (1 - math.Cos(2*math.Pi*phase)) / 2 // 0 at midnight, 1 at midday
	return d.Floor + (d.Peak-d.Floor)*shape
}

// Spike superimposes a flash crowd on a Base pattern: the rate is
// multiplied by Factor during [At, At+Length) — the "unplanned or
// unforeseen changes in demand" that rule-based autoscaling handles poorly
// (§1, experiment E6).
type Spike struct {
	Base       Pattern
	At, Length time.Duration
	Factor     float64
}

// Rate implements Pattern.
func (s Spike) Rate(elapsed time.Duration) float64 {
	r := s.Base.Rate(elapsed)
	if elapsed >= s.At && elapsed < s.At+s.Length {
		return r * s.Factor
	}
	return r
}

// Composite sums several patterns.
type Composite []Pattern

// Rate implements Pattern.
func (c Composite) Rate(elapsed time.Duration) float64 {
	var total float64
	for _, p := range c {
		total += p.Rate(elapsed)
	}
	return total
}

// Trace replays a recorded rate profile with the given resolution,
// holding the last value beyond the end.
type Trace struct {
	Rates      []float64
	Resolution time.Duration
}

// Rate implements Pattern.
func (t Trace) Rate(elapsed time.Duration) float64 {
	if len(t.Rates) == 0 || t.Resolution <= 0 {
		return 0
	}
	i := int(elapsed / t.Resolution)
	if i >= len(t.Rates) {
		i = len(t.Rates) - 1
	}
	if i < 0 {
		i = 0
	}
	return t.Rates[i]
}

// Validate sanity-checks a pattern over a horizon: rates must be finite
// and non-negative at a sampling of instants.
func Validate(p Pattern, horizon time.Duration) error {
	if p == nil {
		return fmt.Errorf("workload: nil pattern")
	}
	samples := 100
	for i := 0; i <= samples; i++ {
		at := time.Duration(float64(horizon) * float64(i) / float64(samples))
		r := p.Rate(at)
		if math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
			return fmt.Errorf("workload: pattern rate %v at %v is invalid", r, at)
		}
	}
	return nil
}
