package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// Trace persistence. Production deployments of elasticity managers are
// evaluated against recorded arrival-rate traces (the paper's demo uses a
// live generator; its companion work replays workload logs). SaveTraceCSV
// and LoadTraceCSV round-trip a Trace through the two-column CSV format
//
//	offset_seconds,rate_per_second
//
// so recorded or hand-crafted rate profiles can drive the generator via
// the Trace pattern.

// SaveTraceCSV writes the trace with one row per resolution step.
func SaveTraceCSV(w io.Writer, t Trace) error {
	if t.Resolution <= 0 {
		return fmt.Errorf("workload: trace resolution must be positive")
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"offset_seconds", "rate_per_second"}); err != nil {
		return err
	}
	for i, r := range t.Rates {
		off := time.Duration(i) * t.Resolution
		if err := cw.Write([]string{
			strconv.FormatFloat(off.Seconds(), 'f', -1, 64),
			strconv.FormatFloat(r, 'f', -1, 64),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// LoadTraceCSV parses a trace written by SaveTraceCSV (or by hand). Rows
// must be evenly spaced; the spacing becomes the trace resolution.
func LoadTraceCSV(r io.Reader) (Trace, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return Trace{}, fmt.Errorf("workload: trace csv: %w", err)
	}
	if len(rows) < 3 { // header + at least two rows to infer resolution
		return Trace{}, fmt.Errorf("workload: trace csv needs a header and at least two rows")
	}
	rows = rows[1:] // drop header
	var offsets []float64
	var rates []float64
	for i, row := range rows {
		if len(row) != 2 {
			return Trace{}, fmt.Errorf("workload: trace csv row %d has %d columns, want 2", i+2, len(row))
		}
		off, err := strconv.ParseFloat(row[0], 64)
		if err != nil {
			return Trace{}, fmt.Errorf("workload: trace csv row %d offset: %w", i+2, err)
		}
		rate, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return Trace{}, fmt.Errorf("workload: trace csv row %d rate: %w", i+2, err)
		}
		if rate < 0 {
			return Trace{}, fmt.Errorf("workload: trace csv row %d has negative rate", i+2)
		}
		offsets = append(offsets, off)
		rates = append(rates, rate)
	}
	res := offsets[1] - offsets[0]
	if res <= 0 {
		return Trace{}, fmt.Errorf("workload: trace offsets must be increasing")
	}
	for i := 1; i < len(offsets); i++ {
		if d := offsets[i] - offsets[i-1]; d < res*0.999 || d > res*1.001 {
			return Trace{}, fmt.Errorf("workload: trace offsets not evenly spaced at row %d", i+2)
		}
	}
	return Trace{Rates: rates, Resolution: time.Duration(res * float64(time.Second))}, nil
}
