package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/kvstore"
	"repro/internal/metricstore"
)

// QueryNamespace is the metric namespace the dashboard query generator
// publishes under.
const QueryNamespace = "Workload/Dashboard"

// Query metric names published each tick.
const (
	MetricTargetQPS        = "TargetQueriesPerSecond"
	MetricOfferedQueries   = "OfferedQueries"
	MetricThrottledQueries = "ThrottledQueries"
)

// QueryConfig parameterises a QueryGenerator.
type QueryConfig struct {
	// Pattern is the query rate (queries/second) over time.
	Pattern Pattern
	// ItemBytes is the average read size (default 1024).
	ItemBytes int
	// Poisson selects stochastic arrival counts (see GeneratorConfig).
	Poisson bool
	// Seed drives the arrival randomness.
	Seed int64
	// Start anchors pattern-elapsed time.
	Start time.Time
}

// QueryGenerator models the read side of the reference architecture [7]:
// a real-time dashboard polling the storage layer's aggregated results.
// Each tick it issues the pattern's query volume against the table,
// consuming read capacity; throttled reads are the dashboard's SLO signal.
type QueryGenerator struct {
	cfg   QueryConfig
	rng   *rand.Rand
	table *kvstore.Table
	ms    *metricstore.Store
	dims  map[string]string

	// Per-tick publish handles, resolved once at construction (nil when ms
	// is nil).
	mTargetQPS *metricstore.Handle
	mOffered   *metricstore.Handle
	mThrottled *metricstore.Handle

	offered   int64
	throttled int64
}

// NewQueryGenerator builds a query generator reading from table.
func NewQueryGenerator(cfg QueryConfig, table *kvstore.Table, ms *metricstore.Store) (*QueryGenerator, error) {
	if cfg.Pattern == nil {
		return nil, fmt.Errorf("workload: query pattern is required")
	}
	if table == nil {
		return nil, fmt.Errorf("workload: query generator needs a table")
	}
	if cfg.ItemBytes <= 0 {
		cfg.ItemBytes = 1024
	}
	g := &QueryGenerator{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		table: table,
		ms:    ms,
		dims:  map[string]string{"Generator": "dashboard"},
	}
	if ms != nil {
		g.mTargetQPS = ms.MustHandle(QueryNamespace, MetricTargetQPS, g.dims)
		g.mOffered = ms.MustHandle(QueryNamespace, MetricOfferedQueries, g.dims)
		g.mThrottled = ms.MustHandle(QueryNamespace, MetricThrottledQueries, g.dims)
	}
	return g, nil
}

// Offered reports the cumulative queries issued.
func (g *QueryGenerator) Offered() int64 { return g.offered }

// Throttled reports the cumulative queries the table rejected.
func (g *QueryGenerator) Throttled() int64 { return g.throttled }

// Tick issues this step's queries and records metrics.
func (g *QueryGenerator) Tick(now time.Time, step time.Duration) {
	elapsed := now.Sub(g.cfg.Start)
	mean := g.cfg.Pattern.Rate(elapsed) * step.Seconds()
	n := 0
	if mean > 0 {
		if g.cfg.Poisson {
			n = poisson(g.rng, mean)
		} else {
			n = int(math.Round(mean))
		}
	}
	rejected := 0
	if n > 0 {
		_, rejected = g.table.ReadItemsUniform(now, n, g.cfg.ItemBytes)
	}
	g.offered += int64(n)
	g.throttled += int64(rejected)
	if g.ms != nil {
		g.mTargetQPS.MustAppend(now, g.cfg.Pattern.Rate(elapsed))
		g.mOffered.MustAppend(now, float64(n))
		g.mThrottled.MustAppend(now, float64(rejected))
	}
}
