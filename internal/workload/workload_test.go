package workload

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/kvstore"
	"repro/internal/metricstore"
	"repro/internal/stream"
)

var t0 = time.Date(2017, 8, 28, 0, 0, 0, 0, time.UTC)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestConstantAndStep(t *testing.T) {
	if got := Constant(500).Rate(time.Hour); got != 500 {
		t.Fatalf("Constant = %v", got)
	}
	s := Step{Before: 100, After: 900, At: 10 * time.Minute}
	if got := s.Rate(9 * time.Minute); got != 100 {
		t.Fatalf("Step before = %v", got)
	}
	if got := s.Rate(10 * time.Minute); got != 900 {
		t.Fatalf("Step at = %v", got)
	}
}

func TestRamp(t *testing.T) {
	r := Ramp{From: 100, To: 500, Start: 10 * time.Minute, Length: 20 * time.Minute}
	if got := r.Rate(0); got != 100 {
		t.Fatalf("ramp at 0 = %v", got)
	}
	if got := r.Rate(20 * time.Minute); !approx(got, 300, 1e-9) {
		t.Fatalf("ramp midpoint = %v, want 300", got)
	}
	if got := r.Rate(time.Hour); got != 500 {
		t.Fatalf("ramp after = %v", got)
	}
}

func TestSine(t *testing.T) {
	s := Sine{Base: 100, Amplitude: 50, Period: time.Hour}
	if got := s.Rate(0); !approx(got, 100, 1e-9) {
		t.Fatalf("sine at 0 = %v", got)
	}
	if got := s.Rate(15 * time.Minute); !approx(got, 150, 1e-9) {
		t.Fatalf("sine at quarter = %v", got)
	}
	// Amplitude larger than base must clamp at zero.
	neg := Sine{Base: 10, Amplitude: 100, Period: time.Hour}
	if got := neg.Rate(45 * time.Minute); got != 0 {
		t.Fatalf("sine clamp = %v, want 0", got)
	}
}

func TestDiurnal(t *testing.T) {
	d := Diurnal{Floor: 100, Peak: 1000, Day: 24 * time.Hour}
	if got := d.Rate(0); !approx(got, 100, 1e-9) {
		t.Fatalf("diurnal midnight = %v, want 100", got)
	}
	if got := d.Rate(12 * time.Hour); !approx(got, 1000, 1e-9) {
		t.Fatalf("diurnal midday = %v, want 1000", got)
	}
	// Periodic.
	if a, b := d.Rate(6*time.Hour), d.Rate(30*time.Hour); !approx(a, b, 1e-6) {
		t.Fatalf("diurnal not periodic: %v vs %v", a, b)
	}
}

func TestSpike(t *testing.T) {
	s := Spike{Base: Constant(100), At: 10 * time.Minute, Length: 5 * time.Minute, Factor: 5}
	if got := s.Rate(9 * time.Minute); got != 100 {
		t.Fatalf("pre-spike = %v", got)
	}
	if got := s.Rate(12 * time.Minute); got != 500 {
		t.Fatalf("in-spike = %v", got)
	}
	if got := s.Rate(15 * time.Minute); got != 100 {
		t.Fatalf("post-spike = %v", got)
	}
}

func TestCompositeAndTrace(t *testing.T) {
	c := Composite{Constant(100), Constant(50)}
	if got := c.Rate(0); got != 150 {
		t.Fatalf("composite = %v", got)
	}
	tr := Trace{Rates: []float64{10, 20, 30}, Resolution: time.Minute}
	if got := tr.Rate(90 * time.Second); got != 20 {
		t.Fatalf("trace mid = %v", got)
	}
	if got := tr.Rate(time.Hour); got != 30 {
		t.Fatalf("trace beyond end = %v", got)
	}
	if got := (Trace{}).Rate(0); got != 0 {
		t.Fatalf("empty trace = %v", got)
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(nil, time.Hour); err == nil {
		t.Fatal("nil pattern accepted")
	}
	if err := Validate(Constant(100), time.Hour); err != nil {
		t.Fatal(err)
	}
	bad := Trace{Rates: []float64{math.NaN()}, Resolution: time.Minute}
	if err := Validate(bad, time.Hour); err == nil {
		t.Fatal("NaN pattern accepted")
	}
}

// Property: every built-in pattern yields finite non-negative rates.
func TestPatternNonNegativeProperty(t *testing.T) {
	f := func(base, amp float64, minutes uint16) bool {
		base = math.Mod(math.Abs(base), 1e5)
		amp = math.Mod(math.Abs(amp), 1e5)
		at := time.Duration(minutes) * time.Minute
		pats := []Pattern{
			Constant(base),
			Step{Before: base, After: amp, At: time.Hour},
			Ramp{From: base, To: amp, Start: time.Hour, Length: time.Hour},
			Sine{Base: base, Amplitude: amp, Period: time.Hour},
			Diurnal{Floor: base, Peak: base + amp, Day: 24 * time.Hour},
			Spike{Base: Constant(base), At: time.Hour, Length: time.Hour, Factor: 3},
		}
		for _, p := range pats {
			r := p.Rate(at)
			if math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorDeterministicMode(t *testing.T) {
	g, err := NewGenerator(GeneratorConfig{
		Pattern: Constant(100), Start: t0, Seed: 1,
	}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ev := g.Events(t0.Add(time.Second), time.Second)
	if len(ev) != 100 {
		t.Fatalf("deterministic mode produced %d events, want 100", len(ev))
	}
	for _, e := range ev {
		if e.UserID == "" || e.Page == "" {
			t.Fatalf("event missing fields: %+v", e)
		}
		if len(e.Encode()) == 0 {
			t.Fatal("empty encoding")
		}
	}
}

func TestGeneratorPoissonMeanConverges(t *testing.T) {
	g, err := NewGenerator(GeneratorConfig{
		Pattern: Constant(50), Poisson: true, Start: t0, Seed: 42,
	}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	ticks := 400
	for i := 0; i < ticks; i++ {
		total += len(g.Events(t0.Add(time.Duration(i)*time.Second), time.Second))
	}
	mean := float64(total) / float64(ticks)
	if mean < 45 || mean > 55 {
		t.Fatalf("empirical mean = %v, want ≈50", mean)
	}
}

func TestGeneratorLargeMeanNormalApprox(t *testing.T) {
	g, err := NewGenerator(GeneratorConfig{
		Pattern: Constant(5000), Poisson: true, Start: t0, Seed: 7,
	}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i := 0; i < 50; i++ {
		total += len(g.Events(t0.Add(time.Duration(i)*time.Second), time.Second))
	}
	mean := float64(total) / 50
	if mean < 4800 || mean > 5200 {
		t.Fatalf("empirical mean = %v, want ≈5000", mean)
	}
}

func TestGeneratorSeedReproducibility(t *testing.T) {
	mk := func() []int {
		g, _ := NewGenerator(GeneratorConfig{Pattern: Constant(80), Poisson: true, Start: t0, Seed: 99}, nil, nil)
		var counts []int
		for i := 0; i < 20; i++ {
			counts = append(counts, len(g.Events(t0.Add(time.Duration(i)*time.Second), time.Second)))
		}
		return counts
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed runs diverged at tick %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestGeneratorFeedsStreamAndRecordsMetrics(t *testing.T) {
	ms := metricstore.NewStore()
	st, err := stream.New("clicks", 1, ms)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(GeneratorConfig{Pattern: Constant(200), Start: t0, Seed: 3}, st, ms)
	if err != nil {
		t.Fatal(err)
	}
	g.Tick(t0.Add(time.Second), time.Second)
	if st.BacklogRecords() == 0 {
		t.Fatal("stream received no records")
	}
	if g.Offered() != 200 {
		t.Fatalf("Offered = %d, want 200", g.Offered())
	}
	rate, ok := storeLatest(ms, Namespace, MetricTargetRate, map[string]string{"Generator": "clickstream"})
	if !ok || rate.V != 200 {
		t.Fatalf("TargetRate metric = %+v ok=%v", rate, ok)
	}
}

func TestGeneratorCountsRejects(t *testing.T) {
	st, err := stream.New("clicks", 1, nil) // capacity 1000/s
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(GeneratorConfig{Pattern: Constant(1500), Start: t0, Seed: 3}, st, nil)
	if err != nil {
		t.Fatal(err)
	}
	g.Tick(t0.Add(time.Second), time.Second)
	if g.Rejected() == 0 {
		t.Fatal("expected rejects at 1500 rec/s against 1000 rec/s capacity")
	}
	if g.Offered() != 1500 {
		t.Fatalf("Offered = %d, want 1500", g.Offered())
	}
}

func TestGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(GeneratorConfig{}, nil, nil); err == nil {
		t.Fatal("nil pattern accepted")
	}
}

func TestZipfSkew(t *testing.T) {
	g, err := NewGenerator(GeneratorConfig{Pattern: Constant(1), Users: 1000, Pages: 100, Start: t0, Seed: 5}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	for i := 0; i < 5000; i++ {
		counts[g.Event(t0).Page]++
	}
	// Zipf: the single hottest page should dwarf the average page.
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	if maxC < 5000/len(counts)*5 {
		t.Fatalf("hottest page count %d not skewed vs %d pages", maxC, len(counts))
	}
}

func TestQueryGeneratorIssuesReads(t *testing.T) {
	table, err := kvstore.NewTable(kvstore.Config{Name: "t", WCU: 10, RCU: 1000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewQueryGenerator(QueryConfig{
		Pattern: Constant(100), Seed: 1, Start: time.Unix(0, 0),
	}, table, nil)
	if err != nil {
		t.Fatal(err)
	}
	g.Tick(time.Unix(10, 0), 10*time.Second)
	if g.Offered() != 1000 {
		t.Errorf("offered = %d, want 1000 (100 q/s x 10s, deterministic)", g.Offered())
	}
	if g.Throttled() != 0 {
		t.Errorf("throttled = %d on an over-provisioned table", g.Throttled())
	}
	if got := table.TickWCUConsumed(); got != 0 {
		t.Errorf("reads consumed WCU: %v", got)
	}
}

func TestQueryGeneratorThrottledReadsCounted(t *testing.T) {
	table, err := kvstore.NewTable(kvstore.Config{Name: "t", WCU: 10, RCU: 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewQueryGenerator(QueryConfig{
		Pattern: Constant(100), Seed: 1, Start: time.Unix(0, 0),
	}, table, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Prime the table's step length (the sim scheduler ticks the table
	// every step; standalone tables default to a 1-second budget).
	table.Tick(time.Unix(0, 0), 10*time.Second)
	g.Tick(time.Unix(10, 0), 10*time.Second)
	// 1000 offered against the 100-unit tick budget plus the 100 units of
	// burst the idle priming tick banked: 200 accepted, 800 throttled.
	if g.Throttled() != 800 {
		t.Errorf("throttled = %d, want 800", g.Throttled())
	}
}

func TestQueryGeneratorValidation(t *testing.T) {
	table, err := kvstore.NewTable(kvstore.Config{Name: "t", WCU: 10, RCU: 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewQueryGenerator(QueryConfig{}, table, nil); err == nil {
		t.Error("missing pattern accepted")
	}
	if _, err := NewQueryGenerator(QueryConfig{Pattern: Constant(1)}, nil, nil); err == nil {
		t.Error("nil table accepted")
	}
}

func TestQueryGeneratorPoissonDeterministicPerSeed(t *testing.T) {
	run := func() int64 {
		table, err := kvstore.NewTable(kvstore.Config{Name: "t", WCU: 10, RCU: 100000}, nil)
		if err != nil {
			t.Fatal(err)
		}
		g, err := NewQueryGenerator(QueryConfig{
			Pattern: Constant(50), Poisson: true, Seed: 9, Start: time.Unix(0, 0),
		}, table, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= 20; i++ {
			g.Tick(time.Unix(int64(i*10), 0), 10*time.Second)
		}
		return g.Offered()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed produced %d and %d offered queries", a, b)
	}
	if a == 20*500 {
		t.Error("Poisson counts exactly equal the deterministic mean; sampler suspect")
	}
}
