package perfbench

import "testing"

// The suite's entries are exposed as ordinary Go benchmarks so the CI
// benchmark-smoke step (and any `go test -bench` run) exercises exactly
// what cmd/flowerbench's perf suite measures.

func BenchmarkPutLegacy(b *testing.B)          { Run(b, "put_legacy") }
func BenchmarkPutCompat(b *testing.B)          { Run(b, "put_compat") }
func BenchmarkHandleAppend(b *testing.B)       { Run(b, "handle_append") }
func BenchmarkPutRetentionLegacy(b *testing.B) { Run(b, "put_retention_legacy") }
func BenchmarkHandleAppendRetention(b *testing.B) {
	Run(b, "handle_append_retention")
}
func BenchmarkWindowStatLegacy(b *testing.B)    { Run(b, "window_stat_legacy") }
func BenchmarkHandleStat(b *testing.B)          { Run(b, "handle_stat") }
func BenchmarkWindowStatP99Legacy(b *testing.B) { Run(b, "window_stat_p99_legacy") }
func BenchmarkHandleStatP99(b *testing.B)       { Run(b, "handle_stat_p99") }
func BenchmarkGetStatisticsResampleLegacy(b *testing.B) {
	Run(b, "get_statistics_resample_legacy")
}
func BenchmarkGetStatisticsResample(b *testing.B) { Run(b, "get_statistics_resample") }
func BenchmarkHandleWindowResample(b *testing.B)  { Run(b, "handle_window_resample") }
func BenchmarkSimTick(b *testing.B)               { Run(b, "sim_tick") }
func BenchmarkSingleQueriesX16(b *testing.B)      { Run(b, "single_query_x16") }
func BenchmarkBatchQueryX16(b *testing.B)         { Run(b, "batch_query_x16") }
