package perfbench

import (
	"fmt"
	"io"
	"testing"
	"time"

	"repro/internal/metricstore"
	"repro/internal/telemetry"
)

// Observability suite: the cost of the self-telemetry plane itself. The
// plane instruments every hot path in the process, so its own overhead is
// a first-class perf artefact: counter updates and reads must be
// allocation-free (the budget below), and a full scrape (snapshot +
// Prometheus rendering) must stay cheap enough to run on a tight interval.

// ObsBench is one observability micro-benchmark. MaxAllocs is the
// allocs/op budget the measurement is asserted against (-1: unbudgeted).
type ObsBench struct {
	Name      string
	MaxAllocs int64
	F         func(b *testing.B)
}

// ObsSuite returns the observability benchmarks in report order.
func ObsSuite() []ObsBench {
	return []ObsBench{
		// The write side rides inside Handle.Append, scheduler ticks and the
		// HTTP middleware: zero allocations, no exceptions.
		{Name: "counter_inc", MaxAllocs: 0, F: benchCounterInc},
		{Name: "vec_with_inc", MaxAllocs: 0, F: benchVecWithInc},
		{Name: "histogram_observe", MaxAllocs: 0, F: benchHistogramObserve},
		{Name: "tracer_begin_unsampled", MaxAllocs: 0, F: benchTracerBeginUnsampled},
		// The full hot write — Handle.Append on a warmed ring under
		// retention, instruments included. Query-plane reads share the
		// entry lock with this path, so the budget doubles as a guard
		// that read-side changes never push allocations into the writer.
		{Name: "handle_append_hot", MaxAllocs: 0, F: benchHandleAppendHot},
		// The scheduler's worker drain loop — pop batch, execute, flush,
		// re-queue — must also stay allocation-free: it runs once per batch
		// for every paced flow in the process.
		{Name: "sched_drain_hot", MaxAllocs: 0, F: BenchSchedDrainHot},
		// The read side: one counter read may spend at most one allocation
		// (the acceptance budget; the implementation spends none).
		{Name: "counter_read", MaxAllocs: 1, F: benchCounterRead},
		// Scrape cost: snapshotting a realistically sized registry and
		// rendering the Prometheus text. Unbudgeted on allocations — a
		// scrape allocates its snapshot by design — but tracked in the
		// report so regressions surface.
		{Name: "scrape_snapshot", MaxAllocs: -1, F: benchScrapeSnapshot},
		{Name: "scrape_prom_text", MaxAllocs: -1, F: benchScrapeProm},
	}
}

// RunObs executes the named observability benchmark; it reports failure on
// an unknown name.
func RunObs(b *testing.B, name string) {
	b.Helper()
	for _, bench := range ObsSuite() {
		if bench.Name == name {
			bench.F(b)
			return
		}
	}
	b.Fatalf("perfbench: no observability benchmark named %q", name)
}

func benchCounterInc(b *testing.B) {
	r := telemetry.NewRegistry()
	c := r.Counter("bench_total", "")
	b.ReportAllocs()
	for b.Loop() {
		c.Inc()
	}
}

func benchCounterRead(b *testing.B) {
	r := telemetry.NewRegistry()
	c := r.Counter("bench_total", "")
	c.Add(42)
	var sink uint64
	b.ReportAllocs()
	for b.Loop() {
		sink += c.Value()
	}
	if sink == 0 {
		b.Fatal("counter read zero")
	}
}

func benchVecWithInc(b *testing.B) {
	r := telemetry.NewRegistry()
	v := r.CounterVec("bench_labeled_total", "", "route", "method", "code")
	// Steady state: children exist, every With is a read-locked map hit.
	v.With("/v1/flows/{id}/metrics", "GET", "200").Inc()
	b.ReportAllocs()
	for b.Loop() {
		v.With("/v1/flows/{id}/metrics", "GET", "200").Inc()
	}
}

func benchHistogramObserve(b *testing.B) {
	r := telemetry.NewRegistry()
	h := r.Histogram("bench_seconds", "", nil)
	b.ReportAllocs()
	for i := 0; b.Loop(); i++ {
		h.Observe(time.Duration(i%1000) * time.Microsecond)
	}
}

// benchTracerBeginUnsampled measures the common case every flow advance
// pays: the sampling counter says no.
func benchTracerBeginUnsampled(b *testing.B) {
	tr := telemetry.NewTracer()
	tr.SetEvery(1 << 30) // effectively never sample
	b.ReportAllocs()
	for b.Loop() {
		if t := tr.Begin("bench"); t != nil {
			telemetry.Traces.Abandon(t)
		}
	}
}

// benchHandleAppendHot measures the steady-state hot write: a ring warmed
// past its growth phase under a 10-minute retention window, so every
// iteration is lock + ring write + telemetry and nothing else.
func benchHandleAppendHot(b *testing.B) {
	s := metricstore.NewStore()
	s.SetRetention(10 * time.Minute)
	h := s.MustHandle("Ingestion/Stream", "IncomingRecords", benchDims)
	const warm = 2048 // > retention at 1 Hz: the ring has wrapped
	for i := 0; i < warm; i++ {
		if err := h.Append(benchTime(i), float64(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	for i := warm; b.Loop(); i++ {
		if err := h.Append(benchTime(i), float64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// obsRegistry builds a registry shaped like a live flowerd's: a few dozen
// families, labeled vecs with several children, latency histograms with
// real observations.
func obsRegistry() *telemetry.Registry {
	r := telemetry.NewRegistry()
	for i := 0; i < 12; i++ {
		c := r.Counter(fmt.Sprintf("bench_counter_%d_total", i), "synthetic counter")
		c.Add(uint64(i * 1000))
	}
	for i := 0; i < 6; i++ {
		g := r.Gauge(fmt.Sprintf("bench_gauge_%d", i), "synthetic gauge")
		g.Set(int64(i))
	}
	for i := 0; i < 4; i++ {
		v := r.CounterVec(fmt.Sprintf("bench_routes_%d_total", i), "synthetic vec", "route", "code")
		for j := 0; j < 8; j++ {
			v.With(fmt.Sprintf("/v1/route/%d", j), "200").Add(uint64(j))
		}
	}
	for i := 0; i < 4; i++ {
		h := r.HistogramVec(fmt.Sprintf("bench_latency_%d_seconds", i), "synthetic histogram", nil, "route")
		for j := 0; j < 4; j++ {
			child := h.With(fmt.Sprintf("/v1/route/%d", j))
			for k := 0; k < 100; k++ {
				child.Observe(time.Duration(k) * 37 * time.Microsecond)
			}
		}
	}
	return r
}

func benchScrapeSnapshot(b *testing.B) {
	r := obsRegistry()
	b.ReportAllocs()
	for b.Loop() {
		if snap := r.Snapshot(); len(snap.Families) == 0 {
			b.Fatal("empty snapshot")
		}
	}
}

func benchScrapeProm(b *testing.B) {
	r := obsRegistry()
	b.ReportAllocs()
	for b.Loop() {
		snap := r.Snapshot()
		if err := snap.WriteProm(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
