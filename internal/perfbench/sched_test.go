package perfbench

import (
	"testing"
	"time"
)

// TestPaceBenchSmoke runs both pacing benchmarks at toy scale so the
// measurement harness cannot rot: both paths must advance flows, and the
// scheduler path must not grow goroutines with the flow count.
func TestPaceBenchSmoke(t *testing.T) {
	cfg := PaceBenchConfig{
		Flows:    32,
		Pace:     1200, // 12 sim-seconds per 10ms tick: >1 step per tick
		WallTick: 10 * time.Millisecond,
		Wall:     250 * time.Millisecond,
		Shards:   2,
		Workers:  1,
	}
	unified, err := RunSchedPaceBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := RunLegacyPaceBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []PaceBenchResult{unified, legacy} {
		if r.Advances == 0 {
			t.Fatalf("%s: no simulation steps executed", r.Name)
		}
		if r.Goroutines <= 0 || r.WallSeconds <= 0 {
			t.Fatalf("%s: degenerate measurement %+v", r.Name, r)
		}
	}
	// The legacy design spends one goroutine per flow; the scheduler must
	// stay well under that even at this toy scale.
	if unified.Goroutines >= legacy.Goroutines {
		t.Logf("goroutines: sched %d vs legacy %d (flows %d) — expected sched < legacy",
			unified.Goroutines, legacy.Goroutines, cfg.Flows)
	}
	if unified.Goroutines > cfg.Flows {
		t.Fatalf("scheduler path used %d goroutines for %d flows: O(flows) again?",
			unified.Goroutines, cfg.Flows)
	}
}
