package perfbench

import (
	"math"
	"testing"

	"repro/internal/query"
)

// The query suite doubles as go-test benchmarks.
func BenchmarkQueryScanAggNaive(b *testing.B)  { RunQuery(b, "query_scan_agg_x16_naive") }
func BenchmarkQueryScanAggEngine(b *testing.B) { RunQuery(b, "query_scan_agg_x16") }
func BenchmarkQueryJoinAggNaive(b *testing.B)  { RunQuery(b, "query_join_agg_x16_naive") }
func BenchmarkQueryJoinAggEngine(b *testing.B) { RunQuery(b, "query_join_agg_x16") }

// TestQueryEngineMatchesNaive is the equivalence proof behind the speedup
// columns: for both benchmark shapes, the streaming engine and the
// materialize-everything evaluator must produce bit-for-bit identical
// series — same flows, same timestamps, same float64 bit patterns.
func TestQueryEngineMatchesNaive(t *testing.T) {
	src, err := getQuerySource()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name  string
		q     string
		naive func(query.StaticSource) []NaiveSeries
	}{
		{"scan_agg", queryScanAggQ, NaiveScanAgg},
		{"join_agg", queryJoinAggQ, NaiveJoinAgg},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pl, err := query.Prepare(src, tc.q, nil)
			if err != nil {
				t.Fatal(err)
			}
			res, err := pl.Run()
			if err != nil {
				t.Fatal(err)
			}
			want := tc.naive(src)
			if len(res.Series) != len(want) {
				t.Fatalf("engine %d series, naive %d", len(res.Series), len(want))
			}
			for i, ser := range res.Series {
				ns := want[i]
				if ser.Flow != ns.Flow {
					t.Fatalf("series %d: engine flow %q, naive %q", i, ser.Flow, ns.Flow)
				}
				if len(ser.Ts) != len(ns.Ts) {
					t.Fatalf("series %s: engine %d points, naive %d", ser.Flow, len(ser.Ts), len(ns.Ts))
				}
				for j := range ser.Ts {
					if ser.Ts[j] != ns.Ts[j] {
						t.Errorf("series %s point %d: engine ts %d, naive %d", ser.Flow, j, ser.Ts[j], ns.Ts[j])
					}
					if math.Float64bits(ser.Vs[j]) != math.Float64bits(ns.Vs[j]) {
						t.Errorf("series %s point %d: engine %v (%x), naive %v (%x)",
							ser.Flow, j, ser.Vs[j], math.Float64bits(ser.Vs[j]), ns.Vs[j], math.Float64bits(ns.Vs[j]))
					}
				}
			}
		})
	}
}
