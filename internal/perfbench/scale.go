package perfbench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sched"
)

// Scale benchmarks: the scheduler driven far past what registry-backed
// flows can reach on one box. Each synthetic job is a paced tick callback
// doing the minimum credible work (an atomic add, optionally a CPU burn
// for the skew grids), so the measurement isolates the execution plane
// itself — wheel advancement, batching, queue locking, stealing — from
// simulation cost. Three lab grids ride on one config:
//
//   - scale: N paced jobs sustained for a wall window; the score is tick
//     fidelity (delivered intervals / demanded intervals).
//   - thundering herd: all N jobs register in one burst; SetupSeconds is
//     the burst cost and the fidelity window starts immediately after, so
//     a scheduler that melts under simultaneous arrivals fails the grid.
//   - skewed durations: a fraction of jobs burn CPU every fire, creating
//     hot shards; run with stealing on and off to price the imbalance.

// ScaleBenchConfig sizes one synthetic scale measurement.
type ScaleBenchConfig struct {
	// Jobs is how many periodic jobs pace concurrently.
	Jobs int
	// Interval is each job's firing interval.
	Interval time.Duration
	// Wall is the measurement window (after registration completes).
	Wall time.Duration
	// Shards/Workers size the scheduler (zero: defaults).
	Shards  int
	Workers int
	// NoSteal disables work stealing (A/B knob for the skew grid).
	NoSteal bool
	// HeavyFrac of the jobs burn HeavyWork of CPU on every fire; the rest
	// are a single atomic add. Zero means a uniform light load.
	HeavyFrac float64
	HeavyWork time.Duration
}

func (c ScaleBenchConfig) withDefaults() ScaleBenchConfig {
	if c.Jobs <= 0 {
		c.Jobs = 10000
	}
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Wall <= 0 {
		c.Wall = 2 * time.Second
	}
	return c
}

// ScaleBenchResult is one synthetic scale measurement.
type ScaleBenchResult struct {
	Name string `json:"name"`
	Jobs int    `json:"jobs"`
	// IntervalMS restates the per-job firing interval.
	IntervalMS float64 `json:"interval_ms"`
	// SetupSeconds is the thundering-herd cost: registering every job in
	// one tight burst.
	SetupSeconds float64 `json:"setup_seconds"`
	WallSeconds  float64 `json:"wall_seconds"`
	// Ticks counts intervals delivered to callbacks during the window
	// (catch-up batches count every interval they carry).
	Ticks       uint64  `json:"ticks"`
	TicksPerSec float64 `json:"ticks_per_sec"`
	// DemandPerSec is Jobs/Interval: the tick rate a perfect scheduler
	// would deliver; Fidelity is the achieved fraction of it (1.0 = every
	// job fired on schedule all window).
	DemandPerSec float64 `json:"demand_per_sec"`
	Fidelity     float64 `json:"fidelity"`
	LateRuns     uint64  `json:"late_runs"`
	SkippedTicks uint64  `json:"skipped_ticks"`
	// Steals counts batches taken by idle workers from sibling shards;
	// MeanBatch/MaxBatch describe how much lock amortisation batching won.
	Steals     uint64  `json:"steals"`
	MeanBatch  float64 `json:"mean_batch"`
	MaxBatch   int     `json:"max_batch"`
	Goroutines int     `json:"goroutines"`
}

// BenchSchedDrainHot measures one traversal of the worker drain loop —
// pop batch → execute → flush stats → re-queue — via a chunked job that
// hands control back every chunk. The loop is budgeted at 0 allocs/op in
// the obs suite: at 100k paced flows even one allocation per execution
// would put the garbage collector on the hot path.
func BenchSchedDrainHot(b *testing.B) {
	plane := sched.New(sched.Config{Shards: 1, Workers: 1})
	defer plane.Close()
	ch := make(chan struct{})
	tk, err := plane.Submit("drain-hot", sched.ClassBatch, func() bool {
		ch <- struct{}{}
		return false
	}, nil)
	if err != nil {
		b.Fatal(err)
	}
	// Warm the freelists past their growth phase before measuring.
	for i := 0; i < 64; i++ {
		<-ch
	}
	b.ReportAllocs()
	for b.Loop() {
		<-ch
	}
	// The job is mid-send when the loop stops: keep draining until Stop
	// has seen the in-flight chunk return.
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-ch:
			case <-done:
				return
			}
		}
	}()
	tk.Stop()
	close(done)
}

// spin burns roughly d of CPU without sleeping, imitating a trial chunk
// that computes instead of waits.
func spin(d time.Duration) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}

// RunSchedScaleBench registers cfg.Jobs periodic jobs in one burst and
// measures delivered tick fidelity over cfg.Wall.
func RunSchedScaleBench(name string, cfg ScaleBenchConfig) (ScaleBenchResult, error) {
	cfg = cfg.withDefaults()
	plane := sched.New(sched.Config{
		Shards: cfg.Shards, Workers: cfg.Workers, NoSteal: cfg.NoSteal,
	})
	defer plane.Close()

	var ticks atomic.Uint64
	heavyEvery := 0
	if cfg.HeavyFrac > 0 {
		heavyEvery = int(1 / cfg.HeavyFrac)
	}
	light := func(n int) error { ticks.Add(uint64(n)); return nil }
	heavy := func(n int) error {
		ticks.Add(uint64(n))
		spin(cfg.HeavyWork)
		return nil
	}

	setupStart := time.Now()
	tickets := make([]*sched.Ticket, 0, cfg.Jobs)
	for i := 0; i < cfg.Jobs; i++ {
		tick := light
		if heavyEvery > 0 && i%heavyEvery == 0 {
			tick = heavy
		}
		tk, err := plane.Periodic(fmt.Sprintf("scale-%06d", i), sched.ClassFlow, cfg.Interval, tick, nil)
		if err != nil {
			return ScaleBenchResult{}, err
		}
		tickets = append(tickets, tk)
	}
	setup := time.Since(setupStart)

	stop := make(chan struct{})
	var peak int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); sampleGoroutines(stop, &peak) }()

	before := ticks.Load()
	start := time.Now()
	time.Sleep(cfg.Wall)
	delivered := ticks.Load() - before
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()
	st := plane.Stats()
	for _, tk := range tickets {
		tk.Stop()
	}

	demand := float64(cfg.Jobs) / cfg.Interval.Seconds()
	perSec := float64(delivered) / elapsed.Seconds()
	return ScaleBenchResult{
		Name:         name,
		Jobs:         cfg.Jobs,
		IntervalMS:   float64(cfg.Interval) / float64(time.Millisecond),
		SetupSeconds: setup.Seconds(),
		WallSeconds:  elapsed.Seconds(),
		Ticks:        delivered,
		TicksPerSec:  perSec,
		DemandPerSec: demand,
		Fidelity:     perSec / demand,
		LateRuns:     st.LateRuns,
		SkippedTicks: st.SkippedTicks,
		Steals:       st.Steals,
		MeanBatch:    st.MeanBatch(),
		MaxBatch:     st.MaxBatch,
		Goroutines:   peak,
	}, nil
}
