// Package perfbench holds the metric-pipeline micro-benchmarks and the
// frozen pre-columnar reference implementation they compare against.
//
// The reference (LegacyStore / LegacySeries) is a faithful copy of the
// metric pipeline as it stood before the columnar, handle-based rebuild:
// one []Point slice per series, a canonical key string rebuilt on every
// Put, retention pruning that re-copies the surviving window on each
// append, window queries that materialise a copy of the window, and
// percentile statistics that copy-and-sort per call. It exists for two
// jobs: the equivalence property tests prove the new pipeline returns
// bit-for-bit identical answers, and the benchmarks quantify the speedup
// instead of asserting it. It must not grow features — it is a measuring
// stick, not a second implementation.
package perfbench

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/timeseries"
)

// LegacyPoint mirrors the pre-rebuild row-oriented point.
type LegacyPoint struct {
	T time.Time
	V float64
}

// LegacySeries is the pre-columnar row-store series.
type LegacySeries struct {
	points []LegacyPoint
}

// Append adds an observation with the old ordering check.
func (s *LegacySeries) Append(t time.Time, v float64) error {
	if n := len(s.points); n > 0 && t.Before(s.points[n-1].T) {
		return fmt.Errorf("timeseries: append at %v precedes last point %v", t, s.points[n-1].T)
	}
	s.points = append(s.points, LegacyPoint{T: t, V: v})
	return nil
}

// Len reports the number of points.
func (s *LegacySeries) Len() int { return len(s.points) }

// At returns the i-th point.
func (s *LegacySeries) At(i int) LegacyPoint { return s.points[i] }

// Last returns the newest point.
func (s *LegacySeries) Last() (LegacyPoint, bool) {
	if len(s.points) == 0 {
		return LegacyPoint{}, false
	}
	return s.points[len(s.points)-1], true
}

// Values returns a copy of the values, as the old Series.Values did.
func (s *LegacySeries) Values() []float64 {
	out := make([]float64, len(s.points))
	for i, p := range s.points {
		out[i] = p.V
	}
	return out
}

// Between returns a copied sub-series, the old windowing primitive.
func (s *LegacySeries) Between(from, to time.Time) *LegacySeries {
	lo := sort.Search(len(s.points), func(i int) bool { return !s.points[i].T.Before(from) })
	hi := sort.Search(len(s.points), func(i int) bool { return !s.points[i].T.Before(to) })
	out := &LegacySeries{points: make([]LegacyPoint, 0, hi-lo)}
	out.points = append(out.points, s.points[lo:hi]...)
	return out
}

// TailN returns a copy of the last n points.
func (s *LegacySeries) TailN(n int) *LegacySeries {
	if n > len(s.points) {
		n = len(s.points)
	}
	out := &LegacySeries{points: make([]LegacyPoint, 0, n)}
	out.points = append(out.points, s.points[len(s.points)-n:]...)
	return out
}

// legacyApply is the old Agg.Apply: copy+sort percentiles, no scratch.
func legacyApply(a timeseries.Agg, vs []float64) float64 {
	switch a {
	case timeseries.AggCount:
		return float64(len(vs))
	case timeseries.AggSum:
		return timeseries.Sum(vs)
	}
	if len(vs) == 0 {
		return math.NaN()
	}
	switch a {
	case timeseries.AggMean:
		return timeseries.Mean(vs)
	case timeseries.AggMin:
		return timeseries.Min(vs)
	case timeseries.AggMax:
		return timeseries.Max(vs)
	case timeseries.AggP50:
		return LegacyPercentile(vs, 50)
	case timeseries.AggP90:
		return LegacyPercentile(vs, 90)
	case timeseries.AggP99:
		return LegacyPercentile(vs, 99)
	default:
		return math.NaN()
	}
}

// LegacyPercentile is the old copy-and-sort-per-call percentile.
func LegacyPercentile(vs []float64, p float64) float64 {
	if len(vs) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return timeseries.Min(vs)
	}
	if p >= 100 {
		return timeseries.Max(vs)
	}
	sorted := make([]float64, len(vs))
	copy(sorted, vs)
	sort.Float64s(sorted)
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Resample is the old bucket-slice resampler.
func (s *LegacySeries) Resample(period time.Duration, agg timeseries.Agg) *LegacySeries {
	if period <= 0 {
		panic("timeseries: resample period must be positive")
	}
	out := &LegacySeries{}
	if len(s.points) == 0 {
		return out
	}
	anchor := s.points[0].T
	var bucket []float64
	bucketIdx := 0
	flush := func() {
		if len(bucket) == 0 {
			return
		}
		out.points = append(out.points, LegacyPoint{
			T: anchor.Add(time.Duration(bucketIdx) * period),
			V: legacyApply(agg, bucket),
		})
		bucket = bucket[:0]
	}
	for _, p := range s.points {
		idx := int(p.T.Sub(anchor) / period)
		if idx != bucketIdx {
			flush()
			bucketIdx = idx
		}
		bucket = append(bucket, p.V)
	}
	flush()
	return out
}

// legacyEntry pairs the old per-metric identity with its row series.
type legacyEntry struct {
	ns, name string
	dims     map[string]string
	ts       *LegacySeries
}

// LegacyQuery mirrors the old metricstore.Query.
type LegacyQuery struct {
	Namespace  string
	Name       string
	Dimensions map[string]string
	From, To   time.Time
	Period     time.Duration
	Stat       timeseries.Agg
}

// LegacyStore is the pre-rebuild metric store: one global lock, a key
// string rebuilt per operation, copy-based retention pruning.
type LegacyStore struct {
	mu        sync.RWMutex
	series    map[string]*legacyEntry
	retention time.Duration
}

// NewLegacyStore returns an empty reference store.
func NewLegacyStore() *LegacyStore {
	return &LegacyStore{series: make(map[string]*legacyEntry)}
}

// SetRetention mirrors the old lazy-on-insert pruning window.
func (s *LegacyStore) SetRetention(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.retention = d
}

// legacyKey is the old MetricID.Key: fresh allocations per call.
func legacyKey(ns, name string, dims map[string]string) string {
	var b strings.Builder
	b.WriteString(ns)
	b.WriteByte('|')
	b.WriteString(name)
	b.WriteByte('|')
	keys := make([]string, 0, len(dims))
	for k := range dims {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(dims[k])
	}
	return b.String()
}

// Put is the old write path: key build, global lock, append, and — once
// history exceeds the retention window — a full copy of the surviving
// points on every insert.
func (s *LegacyStore) Put(ns, name string, dims map[string]string, t time.Time, v float64) error {
	if ns == "" || name == "" {
		return fmt.Errorf("metricstore: namespace and name are required")
	}
	key := legacyKey(ns, name, dims)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.series[key]
	if !ok {
		cp := make(map[string]string, len(dims))
		for k, v := range dims {
			cp[k] = v
		}
		e = &legacyEntry{ns: ns, name: name, dims: cp, ts: &LegacySeries{points: make([]LegacyPoint, 0, 1024)}}
		s.series[key] = e
	}
	if err := e.ts.Append(t, v); err != nil {
		return fmt.Errorf("metricstore: put %s %s: %w", ns, name, err)
	}
	if s.retention > 0 {
		cutoff := t.Add(-s.retention)
		if first := e.ts.At(0).T; first.Before(cutoff) {
			e.ts = e.ts.Between(cutoff, t.Add(time.Nanosecond))
		}
	}
	return nil
}

// GetStatistics is the old read path: key build, window copy, bucket-slice
// resample.
func (s *LegacyStore) GetStatistics(q LegacyQuery) (*LegacySeries, error) {
	key := legacyKey(q.Namespace, q.Name, q.Dimensions)
	s.mu.RLock()
	e, ok := s.series[key]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("metricstore: no such metric %s %s", q.Namespace, q.Name)
	}
	to := q.To
	if to.IsZero() {
		if last, ok := e.ts.Last(); ok {
			to = last.T.Add(time.Nanosecond)
		}
	}
	raw := e.ts.Between(q.From, to)
	if q.Period <= 0 {
		return raw, nil
	}
	return raw.Resample(q.Period, q.Stat), nil
}

// Latest is the old newest-datapoint read.
func (s *LegacyStore) Latest(ns, name string, dims map[string]string) (LegacyPoint, bool) {
	key := legacyKey(ns, name, dims)
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.series[key]
	if !ok {
		return LegacyPoint{}, false
	}
	return e.ts.Last()
}

// WindowStat replicates the old sensor measurement: GetStatistics (window
// copy), Values (second copy), then the statistic.
func (s *LegacyStore) WindowStat(q LegacyQuery) (float64, int, error) {
	series, err := s.GetStatistics(LegacyQuery{
		Namespace: q.Namespace, Name: q.Name, Dimensions: q.Dimensions,
		From: q.From, To: q.To,
	})
	if err != nil {
		return 0, 0, err
	}
	vals := series.Values()
	return legacyApply(q.Stat, vals), len(vals), nil
}
