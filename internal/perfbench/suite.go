package perfbench

import (
	"testing"
	"time"

	"repro/internal/flow"
	"repro/internal/metricstore"
	"repro/internal/sim"
	"repro/internal/simtime"
	"repro/internal/timeseries"
)

// Bench is one named micro-benchmark. Baseline, when set, names the
// legacy-implementation benchmark this one is measured against: the perf
// report divides the baseline's ns/op and allocs/op by this benchmark's to
// produce the speedup columns.
type Bench struct {
	Name     string
	Baseline string
	F        func(b *testing.B)
}

// Benchmark query shape: seriesPoints of 1 Hz history, windowed stats over
// the trailing windowPoints.
const (
	seriesPoints = 10_000
	windowPoints = 600
)

var benchDims = map[string]string{"StreamName": "bench", "Shard": "s-01"}

// Suite returns the metric-pipeline micro-benchmarks in report order. Each
// entry is runnable both through `go test -bench` (see suite_test.go) and
// through testing.Benchmark from cmd/flowerbench's perf suite.
func Suite() []Bench {
	return []Bench{
		{Name: "put_legacy", F: benchLegacyPut},
		{Name: "put_compat", Baseline: "put_legacy", F: benchPutCompat},
		{Name: "handle_append", Baseline: "put_legacy", F: benchHandleAppend},
		{Name: "put_retention_legacy", F: benchLegacyPutRetention},
		{Name: "handle_append_retention", Baseline: "put_retention_legacy", F: benchHandleAppendRetention},
		{Name: "window_stat_legacy", F: benchLegacyWindowStat},
		{Name: "handle_stat", Baseline: "window_stat_legacy", F: benchHandleStat},
		{Name: "window_stat_p99_legacy", F: benchLegacyWindowStatP99},
		{Name: "handle_stat_p99", Baseline: "window_stat_p99_legacy", F: benchHandleStatP99},
		{Name: "get_statistics_resample_legacy", F: benchLegacyGetStatisticsResample},
		{Name: "get_statistics_resample", Baseline: "get_statistics_resample_legacy", F: benchGetStatisticsResample},
		{Name: "handle_window_resample", Baseline: "get_statistics_resample_legacy", F: benchHandleWindowResample},
		{Name: "sim_tick", F: benchSimTick},
		{Name: "single_query_x16", F: benchSingleQueries16},
		{Name: "batch_query_x16", Baseline: "single_query_x16", F: benchBatchQuery16},
	}
}

// Run executes the named benchmark from the suite; it reports failure on an
// unknown name.
func Run(b *testing.B, name string) {
	b.Helper()
	for _, bench := range Suite() {
		if bench.Name == name {
			bench.F(b)
			return
		}
	}
	b.Fatalf("perfbench: no benchmark named %q", name)
}

func benchTime(i int) time.Time {
	return simtime.Epoch.Add(time.Duration(i) * time.Second)
}

// --- write path -----------------------------------------------------------

func benchLegacyPut(b *testing.B) {
	s := NewLegacyStore()
	b.ReportAllocs()
	for i := 0; b.Loop(); i++ {
		if err := s.Put("Ingestion/Stream", "IncomingRecords", benchDims, benchTime(i), float64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func benchPutCompat(b *testing.B) {
	s := metricstore.NewStore()
	b.ReportAllocs()
	for i := 0; b.Loop(); i++ {
		if err := s.Put("Ingestion/Stream", "IncomingRecords", benchDims, benchTime(i), float64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func benchHandleAppend(b *testing.B) {
	s := metricstore.NewStore()
	h := s.MustHandle("Ingestion/Stream", "IncomingRecords", benchDims)
	b.ReportAllocs()
	for i := 0; b.Loop(); i++ {
		if err := h.Append(benchTime(i), float64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// Retention variants keep a 10-minute window over 1 Hz appends, so the
// legacy path's copy-per-insert pruning is on for nearly every iteration.
func benchLegacyPutRetention(b *testing.B) {
	s := NewLegacyStore()
	s.SetRetention(10 * time.Minute)
	b.ReportAllocs()
	for i := 0; b.Loop(); i++ {
		if err := s.Put("Ingestion/Stream", "IncomingRecords", benchDims, benchTime(i), float64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func benchHandleAppendRetention(b *testing.B) {
	s := metricstore.NewStore()
	s.SetRetention(10 * time.Minute)
	h := s.MustHandle("Ingestion/Stream", "IncomingRecords", benchDims)
	b.ReportAllocs()
	for i := 0; b.Loop(); i++ {
		if err := h.Append(benchTime(i), float64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- read path ------------------------------------------------------------

// fillLegacy / fillStore prepopulate one metric with seriesPoints of 1 Hz
// history and return the window bounds of the trailing windowPoints.
func fillLegacy(b *testing.B) (*LegacyStore, time.Time, time.Time) {
	b.Helper()
	s := NewLegacyStore()
	for i := 0; i < seriesPoints; i++ {
		if err := s.Put("Ingestion/Stream", "IncomingRecords", benchDims, benchTime(i), float64(i%97)); err != nil {
			b.Fatal(err)
		}
	}
	return s, benchTime(seriesPoints - windowPoints), benchTime(seriesPoints - 1).Add(time.Nanosecond)
}

func fillStore(b *testing.B) (*metricstore.Store, *metricstore.Handle, time.Time, time.Time) {
	b.Helper()
	s := metricstore.NewStore()
	h := s.MustHandle("Ingestion/Stream", "IncomingRecords", benchDims)
	for i := 0; i < seriesPoints; i++ {
		if err := h.Append(benchTime(i), float64(i%97)); err != nil {
			b.Fatal(err)
		}
	}
	return s, h, benchTime(seriesPoints - windowPoints), benchTime(seriesPoints - 1).Add(time.Nanosecond)
}

func benchLegacyWindowStat(b *testing.B) {
	s, from, to := fillLegacy(b)
	q := LegacyQuery{
		Namespace: "Ingestion/Stream", Name: "IncomingRecords", Dimensions: benchDims,
		From: from, To: to, Stat: timeseries.AggMean,
	}
	b.ReportAllocs()
	for b.Loop() {
		if _, n, err := s.WindowStat(q); err != nil || n != windowPoints {
			b.Fatalf("window stat: n=%d err=%v", n, err)
		}
	}
}

func benchHandleStat(b *testing.B) {
	_, h, from, to := fillStore(b)
	b.ReportAllocs()
	for b.Loop() {
		if _, n := h.Stat(from, to, timeseries.AggMean); n != windowPoints {
			b.Fatalf("window stat: n=%d", n)
		}
	}
}

func benchLegacyWindowStatP99(b *testing.B) {
	s, from, to := fillLegacy(b)
	q := LegacyQuery{
		Namespace: "Ingestion/Stream", Name: "IncomingRecords", Dimensions: benchDims,
		From: from, To: to, Stat: timeseries.AggP99,
	}
	b.ReportAllocs()
	for b.Loop() {
		if _, n, err := s.WindowStat(q); err != nil || n != windowPoints {
			b.Fatalf("window stat: n=%d err=%v", n, err)
		}
	}
}

func benchHandleStatP99(b *testing.B) {
	_, h, from, to := fillStore(b)
	b.ReportAllocs()
	for b.Loop() {
		if _, n := h.Stat(from, to, timeseries.AggP99); n != windowPoints {
			b.Fatalf("window stat: n=%d", n)
		}
	}
}

func benchLegacyGetStatisticsResample(b *testing.B) {
	s, _, _ := fillLegacy(b)
	q := LegacyQuery{
		Namespace: "Ingestion/Stream", Name: "IncomingRecords", Dimensions: benchDims,
		Period: time.Minute, Stat: timeseries.AggMean,
	}
	b.ReportAllocs()
	for b.Loop() {
		series, err := s.GetStatistics(q)
		if err != nil || series.Len() == 0 {
			b.Fatalf("resample: len=%d err=%v", series.Len(), err)
		}
	}
}

func benchGetStatisticsResample(b *testing.B) {
	s, _, _, _ := fillStore(b)
	q := metricstore.Query{
		Namespace: "Ingestion/Stream", Name: "IncomingRecords", Dimensions: benchDims,
		Period: time.Minute, Stat: timeseries.AggMean,
	}
	b.ReportAllocs()
	for b.Loop() {
		series, err := s.GetStatistics(q)
		if err != nil || series.Len() == 0 {
			b.Fatalf("resample: err=%v", err)
		}
	}
}

func benchHandleWindowResample(b *testing.B) {
	_, h, _, _ := fillStore(b)
	q := metricstore.WindowQuery{Period: time.Minute, Stat: timeseries.AggMean}
	b.ReportAllocs()
	for b.Loop() {
		if series := h.Window(q); series.Len() == 0 {
			b.Fatal("resample: empty")
		}
	}
}

// --- whole-system ---------------------------------------------------------

// benchSimTick advances a fully wired flow (generator → stream → cluster →
// table, with three adaptive control loops, billing and SLO accounting) by
// one 10-second simulation step per iteration — the end-to-end per-tick
// cost the metric pipeline sits inside.
func benchSimTick(b *testing.B) {
	window := 2 * time.Minute
	spec, err := flow.NewBuilder("bench").
		WithWorkload(flow.WorkloadSpec{Pattern: "constant", Base: 2000}).
		WithIngestion(2, 1, 50, flow.DefaultAdaptive(60, window, 4)).
		WithAnalytics(2, 1, 50, flow.DefaultAdaptive(60, window, 4)).
		WithStorage(200, 50, 20000, flow.DefaultAdaptive(60, window, 400)).
		Build()
	if err != nil {
		b.Fatal(err)
	}
	h, err := sim.New(spec, sim.Options{Step: 10 * time.Second})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for b.Loop() {
		if _, err := h.Run(10 * time.Second); err != nil {
			b.Fatal(err)
		}
	}
}
