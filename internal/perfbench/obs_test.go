package perfbench

import "testing"

// The observability suite doubles as go-test benchmarks; `go test -bench
// Obs ./internal/perfbench` runs them all.
func BenchmarkObsCounterInc(b *testing.B)           { RunObs(b, "counter_inc") }
func BenchmarkObsCounterRead(b *testing.B)          { RunObs(b, "counter_read") }
func BenchmarkObsVecWithInc(b *testing.B)           { RunObs(b, "vec_with_inc") }
func BenchmarkObsHistogramObserve(b *testing.B)     { RunObs(b, "histogram_observe") }
func BenchmarkObsTracerBeginUnsampled(b *testing.B) { RunObs(b, "tracer_begin_unsampled") }
func BenchmarkObsHandleAppendHot(b *testing.B)      { RunObs(b, "handle_append_hot") }
func BenchmarkObsScrapeSnapshot(b *testing.B)       { RunObs(b, "scrape_snapshot") }
func BenchmarkObsScrapeProm(b *testing.B)           { RunObs(b, "scrape_prom_text") }

// TestObsBudgets asserts the allocation budgets the report enforces: the
// write side and the counter read must not allocate in steady state.
func TestObsBudgets(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed; skipped in -short")
	}
	for _, bench := range ObsSuite() {
		if bench.MaxAllocs < 0 {
			continue
		}
		r := testing.Benchmark(bench.F)
		if got := r.AllocsPerOp(); got > bench.MaxAllocs {
			t.Errorf("%s: %d allocs/op, budget %d", bench.Name, got, bench.MaxAllocs)
		}
	}
}
