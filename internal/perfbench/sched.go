package perfbench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/registry"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Pacing-throughput benchmarks: N flows paced for a fixed wall-clock
// window, measured as executed simulation steps per second and process
// goroutine count — on the unified execution plane (internal/sched via
// the registry) versus the retired goroutine-per-flow design, frozen
// below as the baseline. The goroutine column is the headline: the
// scheduler paces any number of flows with O(shards) goroutines, the
// legacy design needed one per flow.

// PaceBenchConfig sizes one pacing-throughput measurement.
type PaceBenchConfig struct {
	// Flows is how many flows pace concurrently.
	Flows int
	// Pace is simulated seconds advanced per wall second per flow;
	// WallTick is the pacer granularity.
	Pace     float64
	WallTick time.Duration
	// Wall is the wall-clock measurement window.
	Wall time.Duration
	// Shards/Workers size the scheduler (scheduler mode only; zero values
	// select the defaults).
	Shards  int
	Workers int
}

func (c PaceBenchConfig) withDefaults() PaceBenchConfig {
	if c.Flows <= 0 {
		c.Flows = 1000
	}
	if c.Pace <= 0 {
		c.Pace = 800 // four 10s sim steps per 50ms tick
	}
	if c.WallTick <= 0 {
		c.WallTick = 50 * time.Millisecond
	}
	if c.Wall <= 0 {
		c.Wall = 2 * time.Second
	}
	return c
}

// PaceBenchResult is one pacing-throughput measurement. An "advance" is
// one simulation step executed by the pacing plane — the common unit both
// designs can be measured in.
type PaceBenchResult struct {
	Name  string `json:"name"`
	Flows int    `json:"flows"`
	// Goroutines is the peak process goroutine count sampled during the
	// run: O(shards) for the scheduler, O(flows) for the legacy design.
	Goroutines     int     `json:"goroutines"`
	Advances       int     `json:"advances"`
	AdvancesPerSec float64 `json:"advances_per_sec"`
	WallSeconds    float64 `json:"wall_seconds"`
	// LateRuns / SkippedTicks are the scheduler's bounded-catch-up
	// counters (scheduler mode only; the legacy design has no equivalent
	// observability, which is part of the point).
	LateRuns     uint64 `json:"late_runs,omitempty"`
	SkippedTicks uint64 `json:"skipped_ticks,omitempty"`
}

// paceBenchSpec is the flow the pacing benchmarks advance: the
// benchSimTick wiring — three layers under adaptive control, constant
// workload — cheap enough to materialise a thousand times.
func paceBenchSpec(name string) (flow.Spec, error) {
	window := 2 * time.Minute
	return flow.NewBuilder(name).
		WithWorkload(flow.WorkloadSpec{Pattern: "constant", Base: 2000}).
		WithIngestion(2, 1, 50, flow.DefaultAdaptive(60, window, 4)).
		WithAnalytics(2, 1, 50, flow.DefaultAdaptive(60, window, 4)).
		WithStorage(200, 50, 20000, flow.DefaultAdaptive(60, window, 400)).
		Build()
}

// sampleGoroutines polls the goroutine count until stop closes and
// reports the peak.
func sampleGoroutines(stop <-chan struct{}, out *int) {
	peak := runtime.NumGoroutine()
	t := time.NewTicker(25 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-stop:
			*out = peak
			return
		case <-t.C:
			if g := runtime.NumGoroutine(); g > peak {
				peak = g
			}
		}
	}
}

// RunSchedPaceBench paces cfg.Flows flows on the unified execution plane
// — the real registry path: Create + StartPacing — and measures executed
// sim steps over cfg.Wall.
func RunSchedPaceBench(cfg PaceBenchConfig) (PaceBenchResult, error) {
	cfg = cfg.withDefaults()
	plane := sched.New(sched.Config{Shards: cfg.Shards, Workers: cfg.Workers})
	defer plane.Close()
	reg := registry.New(registry.WithScheduler(plane))
	defer reg.Close()

	base, err := paceBenchSpec("pace")
	if err != nil {
		return PaceBenchResult{}, err
	}
	warmed := 0
	for i := 0; i < cfg.Flows; i++ {
		id := fmt.Sprintf("pace-%04d", i)
		spec := base
		spec.Name = id
		f, err := reg.Create(id, spec, sim.Options{Step: 10 * time.Second, Seed: int64(i)})
		if err != nil {
			return PaceBenchResult{}, err
		}
		// Warm the flow: its first step pays one-time lazy initialisation
		// orders of magnitude above the steady-state step cost, which
		// would otherwise be all the measurement window sees.
		if _, err := f.Advance(10 * time.Second); err != nil {
			return PaceBenchResult{}, err
		}
		warmed++
	}
	for _, f := range reg.List() {
		if err := f.StartPacing(cfg.Pace, cfg.WallTick); err != nil {
			return PaceBenchResult{}, err
		}
	}

	stop := make(chan struct{})
	var peak int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); sampleGoroutines(stop, &peak) }()
	start := time.Now()
	time.Sleep(cfg.Wall)
	reg.Close() // stop pacing before counting, so the count is stable
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()

	ticks := -warmed // exclude the warm-up step each flow ran
	for _, f := range reg.List() {
		f.View(func(m *core.Manager) { ticks += m.Harness().Result().Ticks })
	}
	st := plane.Stats()
	return PaceBenchResult{
		Name:           "pace_flows_sched",
		Flows:          cfg.Flows,
		Goroutines:     peak,
		Advances:       ticks,
		AdvancesPerSec: float64(ticks) / elapsed.Seconds(),
		WallSeconds:    elapsed.Seconds(),
		LateRuns:       st.LateRuns,
		SkippedTicks:   st.SkippedTicks,
	}, nil
}

// legacyPacer is the retired per-flow pacing design, frozen as the
// benchmark baseline: one manager behind one mutex, advanced by its own
// goroutine and time.Ticker — exactly the loop internal/registry used
// before the scheduler refactor.
type legacyPacer struct {
	mu   sync.Mutex
	mgr  *core.Manager
	stop chan struct{}
	done chan struct{}
}

func (p *legacyPacer) start(pace float64, wallTick time.Duration) {
	simStep := p.mgr.Harness().Scheduler.Step()
	perWallTick := time.Duration(pace * float64(wallTick))
	p.stop, p.done = make(chan struct{}), make(chan struct{})
	go func() {
		defer close(p.done)
		t := time.NewTicker(wallTick)
		defer t.Stop()
		var debt time.Duration // simulated time owed but not yet advanced
		for {
			select {
			case <-p.stop:
				return
			case <-t.C:
				debt += perWallTick
				if due := debt / simStep * simStep; due > 0 {
					debt -= due
					p.mu.Lock()
					_, err := p.mgr.Run(due)
					p.mu.Unlock()
					if err != nil {
						return
					}
				}
			}
		}
	}()
}

func (p *legacyPacer) halt() {
	close(p.stop)
	<-p.done
}

// RunLegacyPaceBench is RunSchedPaceBench's baseline: the same flows
// paced the pre-scheduler way, one goroutine plus ticker per flow.
func RunLegacyPaceBench(cfg PaceBenchConfig) (PaceBenchResult, error) {
	cfg = cfg.withDefaults()
	base, err := paceBenchSpec("pace")
	if err != nil {
		return PaceBenchResult{}, err
	}
	pacers := make([]*legacyPacer, cfg.Flows)
	for i := range pacers {
		spec := base
		spec.Name = fmt.Sprintf("pace-%04d", i)
		mgr, err := core.NewManager(spec, sim.Options{Step: 10 * time.Second, Seed: int64(i)})
		if err != nil {
			return PaceBenchResult{}, err
		}
		// Same warm-up as the scheduler path: pay the first step's lazy
		// initialisation outside the measurement window.
		if _, err := mgr.Run(10 * time.Second); err != nil {
			return PaceBenchResult{}, err
		}
		pacers[i] = &legacyPacer{mgr: mgr}
	}
	for _, p := range pacers {
		p.start(cfg.Pace, cfg.WallTick)
	}

	stop := make(chan struct{})
	var peak int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); sampleGoroutines(stop, &peak) }()
	start := time.Now()
	time.Sleep(cfg.Wall)
	for _, p := range pacers {
		p.halt()
	}
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()

	ticks := -len(pacers) // exclude the warm-up step each flow ran
	for _, p := range pacers {
		ticks += p.mgr.Harness().Result().Ticks
	}
	return PaceBenchResult{
		Name:           "pace_flows_legacy",
		Flows:          cfg.Flows,
		Goroutines:     peak,
		Advances:       ticks,
		AdvancesPerSec: float64(ticks) / elapsed.Seconds(),
		WallSeconds:    elapsed.Seconds(),
	}, nil
}
