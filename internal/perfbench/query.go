package perfbench

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/metricstore"
	"repro/internal/query"
	"repro/internal/simtime"
	"repro/internal/timeseries"
)

// Query-plane benchmarks: the streaming iterator engine (internal/query)
// versus a frozen materialize-everything evaluator — the style every
// read-path caller used before the engine existed: materialise the whole
// raw window per series, materialise every resample bucket, materialise
// both join sides, then aggregate. Both evaluators answer the same
// 16-series queries over the same stores, and TestQueryEngineMatchesNaive
// asserts their outputs are bit-for-bit identical, so the speedup columns
// compare two provably equivalent implementations.

const (
	queryFlows  = 16
	queryPoints = 600 // 1 Hz history per series
	queryNS     = "Analytics/Cluster"
	queryLeft   = "RequestLatencyMs"
	queryRight  = "AllocatedVMs"
)

// The two benchmark shapes. Scan+agg is the cheapest useful query (the
// engine streams it without materialising anything); join+agg is the
// acceptance-bar query: 16 series resampled, joined per flow and fused
// into one aggregate point each.
const (
	queryScanAggQ = "select flow=qb-* ns=" + queryNS + " name=" + queryLeft +
		" | window 10m | agg avg"
	queryJoinAggQ = "select flow=qb-* ns=" + queryNS + " name=" + queryLeft +
		" | window 10m | resample 1m avg" +
		" | join 1m l/r (select flow=qb-* ns=" + queryNS + " name=" + queryRight +
		" | window 10m | resample 1m avg)" +
		" | agg max"
)

var (
	querySrcOnce sync.Once
	querySrcInst query.StaticSource
	querySrcErr  error
)

// getQuerySource builds (once) the 16-flow static source both evaluators
// read: per flow, queryPoints of 1 Hz latency history plus a small
// step-shaped VM count, all ending at the shared "now".
func getQuerySource() (query.StaticSource, error) {
	querySrcOnce.Do(func() { querySrcInst, querySrcErr = buildQuerySource() })
	return querySrcInst, querySrcErr
}

func buildQuerySource() (query.StaticSource, error) {
	base := simtime.Epoch
	now := base.Add((queryPoints - 1) * time.Second)
	src := make(query.StaticSource, queryFlows)
	for f := 0; f < queryFlows; f++ {
		s := metricstore.NewStore()
		lat := s.MustHandle(queryNS, queryLeft, nil)
		vms := s.MustHandle(queryNS, queryRight, nil)
		for i := 0; i < queryPoints; i++ {
			t := base.Add(time.Duration(i) * time.Second)
			if err := lat.Append(t, 100+float64(f)+float64(i%60)); err != nil {
				return nil, err
			}
			if err := vms.Append(t, float64(2+(f+i/200)%3)); err != nil {
				return nil, err
			}
		}
		src[fmt.Sprintf("qb-%02d", f)] = query.StaticFlow{Store: s, Now: now}
	}
	return src, nil
}

// NaiveSeries is one series of a naive evaluation, in the engine's
// column shape so equivalence checks compare directly.
type NaiveSeries struct {
	Flow string
	Ts   []int64
	Vs   []float64
}

// naiveWindow materialises the raw [now-window, now] datapoints of one
// metric as an independent series — the legacy read pattern.
func naiveWindow(h *metricstore.Handle, now time.Time, window time.Duration) *timeseries.Series {
	return h.Window(metricstore.WindowQuery{
		From: now.Add(-window),
		To:   now.Add(time.Nanosecond),
	})
}

// naiveResample buckets a materialised series into epoch-aligned periods
// the materialising way: one []float64 per bucket, then one Apply per
// bucket.
func naiveResample(s *timeseries.Series, period time.Duration, stat timeseries.Agg) (ts []int64, vs []float64) {
	buckets := make(map[int64][]float64)
	var order []int64
	for i := 0; i < s.Len(); i++ {
		p := s.At(i)
		b := timeseries.BucketStart(p.T.UnixNano(), period)
		if _, ok := buckets[b]; !ok {
			order = append(order, b) // points arrive in time order
		}
		buckets[b] = append(buckets[b], p.V)
	}
	for _, b := range order {
		ts = append(ts, b)
		vs = append(vs, stat.Apply(buckets[b]))
	}
	return ts, vs
}

// NaiveScanAgg evaluates queryScanAggQ by materialisation: the full raw
// window per flow, copied again into a values slice, one aggregate point
// at the window's last timestamp.
func NaiveScanAgg(src query.StaticSource) []NaiveSeries {
	var out []NaiveSeries
	for _, id := range src.FlowIDs() {
		src.WithFlow(id, func(store *metricstore.Store, now time.Time) {
			h, ok := store.Lookup(queryNS, queryLeft, nil)
			if !ok {
				return
			}
			raw := naiveWindow(h, now, 10*time.Minute)
			if raw.Len() == 0 {
				return
			}
			vals := make([]float64, raw.Len())
			for i := range vals {
				vals[i] = raw.At(i).V
			}
			out = append(out, NaiveSeries{
				Flow: id,
				Ts:   []int64{raw.At(raw.Len() - 1).T.UnixNano()},
				Vs:   []float64{timeseries.AggMean.Apply(vals)},
			})
		})
	}
	return out
}

// NaiveJoinAgg evaluates queryJoinAggQ by materialisation: both raw
// windows, both resampled bucket sets, a map-backed join, and one final
// aggregate per flow.
func NaiveJoinAgg(src query.StaticSource) []NaiveSeries {
	var out []NaiveSeries
	for _, id := range src.FlowIDs() {
		src.WithFlow(id, func(store *metricstore.Store, now time.Time) {
			left, lok := store.Lookup(queryNS, queryLeft, nil)
			right, rok := store.Lookup(queryNS, queryRight, nil)
			if !lok || !rok {
				return
			}
			lts, lvs := naiveResample(naiveWindow(left, now, 10*time.Minute), time.Minute, timeseries.AggMean)
			rts, rvs := naiveResample(naiveWindow(right, now, 10*time.Minute), time.Minute, timeseries.AggMean)
			byBucket := make(map[int64]float64, len(rts))
			for i, t := range rts {
				byBucket[t] = rvs[i]
			}
			var joined []float64
			var lastT int64
			for i, t := range lts {
				if rv, ok := byBucket[t]; ok {
					joined = append(joined, lvs[i]/rv)
					lastT = t
				}
			}
			if len(joined) == 0 {
				return
			}
			out = append(out, NaiveSeries{
				Flow: id,
				Ts:   []int64{lastT},
				Vs:   []float64{timeseries.AggMax.Apply(joined)},
			})
		})
	}
	return out
}

// QuerySuite returns the query-plane benchmarks in report order: each
// engine benchmark against its materialize-everything baseline.
func QuerySuite() []Bench {
	return []Bench{
		{Name: "query_scan_agg_x16_naive", F: benchQueryScanAggNaive},
		{Name: "query_scan_agg_x16", Baseline: "query_scan_agg_x16_naive", F: benchQueryScanAggEngine},
		{Name: "query_join_agg_x16_naive", F: benchQueryJoinAggNaive},
		{Name: "query_join_agg_x16", Baseline: "query_join_agg_x16_naive", F: benchQueryJoinAggEngine},
	}
}

// RunQuery executes the named query benchmark; it reports failure on an
// unknown name.
func RunQuery(b *testing.B, name string) {
	b.Helper()
	for _, bench := range QuerySuite() {
		if bench.Name == name {
			bench.F(b)
			return
		}
	}
	b.Fatalf("perfbench: no query benchmark named %q", name)
}

func benchQuerySource(b *testing.B) query.StaticSource {
	b.Helper()
	src, err := getQuerySource()
	if err != nil {
		b.Fatal(err)
	}
	return src
}

func benchEngineQuery(b *testing.B, q string, wantSeries int) {
	src := benchQuerySource(b)
	b.ReportAllocs()
	for b.Loop() {
		pl, err := query.Prepare(src, q, nil)
		if err != nil {
			b.Fatal(err)
		}
		res, err := pl.Run()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Series) != wantSeries {
			b.Fatalf("%d series, want %d", len(res.Series), wantSeries)
		}
	}
}

func benchQueryScanAggEngine(b *testing.B) { benchEngineQuery(b, queryScanAggQ, queryFlows) }
func benchQueryJoinAggEngine(b *testing.B) { benchEngineQuery(b, queryJoinAggQ, queryFlows) }

func benchQueryScanAggNaive(b *testing.B) {
	src := benchQuerySource(b)
	b.ReportAllocs()
	for b.Loop() {
		if out := NaiveScanAgg(src); len(out) != queryFlows {
			b.Fatalf("%d series, want %d", len(out), queryFlows)
		}
	}
}

func benchQueryJoinAggNaive(b *testing.B) {
	src := benchQuerySource(b)
	b.ReportAllocs()
	for b.Loop() {
		if out := NaiveJoinAgg(src); len(out) != queryFlows {
			b.Fatalf("%d series, want %d", len(out), queryFlows)
		}
	}
}
