package perfbench

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	apiv1 "repro/api/v1"
	"repro/client"
	"repro/internal/flow"
	"repro/internal/httpapi"
	"repro/internal/registry"
	"repro/internal/sim"
)

// Read-plane benchmarks: the cost of fetching batchSeries aggregated
// series from a live control plane, the old way (one /metrics/query round
// trip per series, per-point JSON) versus the redesigned way (one
// /v1/metrics:batchQuery round trip, columnar ts/vs arrays). Both sides
// include the full client-to-server path — request encoding, HTTP,
// handler, JSON decode — because that is what a dashboard render pays.

// batchSeries is the fan-in of the benchmark: how many series one
// dashboard render fetches.
const batchSeries = 16

// readPlane is the shared live control plane the read benchmarks query.
type readPlane struct {
	ts      *httptest.Server
	c       *client.Client
	singles []client.MetricQuery
	batch   []client.BatchQuery
}

var (
	readPlaneOnce sync.Once
	readPlaneInst *readPlane
	readPlaneErr  error
)

// getReadPlane builds (once) a control plane with one warmed-up flow and
// the 16-series selector set: every listed metric of the flow, cycled
// with different statistics until 16 distinct queries exist.
func getReadPlane() (*readPlane, error) {
	readPlaneOnce.Do(func() { readPlaneInst, readPlaneErr = buildReadPlane() })
	return readPlaneInst, readPlaneErr
}

func buildReadPlane() (*readPlane, error) {
	reg := registry.New()
	spec, err := flow.DefaultClickstream(2000)
	if err != nil {
		return nil, err
	}
	spec.Name = "bench"
	f, err := reg.Create("bench", spec, sim.Options{Step: 10 * time.Second, Seed: 7})
	if err != nil {
		return nil, err
	}
	if _, err := f.Advance(45 * time.Minute); err != nil {
		return nil, err
	}
	ts := httptest.NewServer(httpapi.NewServer(reg))
	c := client.New(ts.URL)

	byNS, err := c.Metrics(context.Background(), "bench")
	if err != nil {
		ts.Close()
		return nil, err
	}
	// Flatten the listing deterministically (namespaces sorted, ids in the
	// store's sorted order), then cycle metrics — varying the statistic on
	// each full cycle — until 16 distinct queries exist.
	type target struct {
		ns string
		id apiv1.MetricID
	}
	var pairs []target
	namespaces := make([]string, 0, len(byNS))
	for ns := range byNS {
		namespaces = append(namespaces, ns)
	}
	sort.Strings(namespaces)
	for _, ns := range namespaces {
		for _, id := range byNS[ns] {
			pairs = append(pairs, target{ns: ns, id: id})
		}
	}
	if len(pairs) == 0 {
		ts.Close()
		return nil, fmt.Errorf("perfbench: flow lists no metrics to query")
	}
	stats := []string{"avg", "max", "min", "sum", "p90"}
	rp := &readPlane{ts: ts, c: c}
	for i := 0; len(rp.singles) < batchSeries; i++ {
		p := pairs[i%len(pairs)]
		stat := stats[(i/len(pairs))%len(stats)]
		rp.singles = append(rp.singles, client.MetricQuery{
			Namespace: p.ns, Name: p.id.Name, Dimensions: p.id.Dimensions,
			Stat: stat, Window: 30 * time.Minute, Period: 30 * time.Second,
		})
		rp.batch = append(rp.batch, client.BatchQuery{
			Flow: "bench", Namespace: p.ns, Name: p.id.Name, Dimensions: p.id.Dimensions,
			Stat: stat, Window: 30 * time.Minute, Period: 30 * time.Second,
		})
	}
	return rp, nil
}

// benchSingleQueries16 is the pre-redesign read path: 16 sequential
// per-point queries per dashboard render.
func benchSingleQueries16(b *testing.B) {
	rp, err := getReadPlane()
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range rp.singles {
			series, err := rp.c.QueryMetrics(ctx, "bench", q)
			if err != nil {
				b.Fatal(err)
			}
			if len(series.Points) == 0 {
				b.Fatalf("empty series for %s/%s", q.Namespace, q.Name)
			}
		}
	}
}

// benchBatchQuery16 is the redesigned read path: the same 16 series in
// one columnar batch round trip.
func benchBatchQuery16(b *testing.B) {
	rp, err := getReadPlane()
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := rp.c.BatchQueryMetrics(ctx, rp.batch)
		if err != nil {
			b.Fatal(err)
		}
		for j := range results {
			if results[j].Error != nil {
				b.Fatalf("selector %d: %+v", j, results[j].Error)
			}
			if len(results[j].Vs) == 0 {
				b.Fatalf("selector %d: empty columns", j)
			}
		}
	}
}
