package nsga2

import (
	"math"
	"testing"
	"time"
)

// schaffer is the classic single-variable bi-objective problem: minimise
// f1 = x², f2 = (x−2)². The Pareto set is x ∈ [0, 2].
func schaffer() Problem {
	return Problem{
		NumVars:       1,
		NumObjectives: 2,
		Lower:         []float64{-10},
		Upper:         []float64{10},
		Evaluate: func(x []float64) ([]float64, float64) {
			return []float64{x[0] * x[0], (x[0] - 2) * (x[0] - 2)}, 0
		},
	}
}

// zdt1 with n variables: a standard NSGA-II benchmark whose Pareto front
// is f2 = 1 − sqrt(f1) at g(x)=1.
func zdt1(n int) Problem {
	lower := make([]float64, n)
	upper := make([]float64, n)
	for i := range upper {
		upper[i] = 1
	}
	return Problem{
		NumVars:       n,
		NumObjectives: 2,
		Lower:         lower,
		Upper:         upper,
		Evaluate: func(x []float64) ([]float64, float64) {
			f1 := x[0]
			g := 0.0
			for _, v := range x[1:] {
				g += v
			}
			g = 1 + 9*g/float64(n-1)
			f2 := g * (1 - math.Sqrt(f1/g))
			return []float64{f1, f2}, 0
		},
	}
}

func TestValidate(t *testing.T) {
	p := schaffer()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := p
	bad.NumVars = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero vars accepted")
	}
	bad = p
	bad.Lower = []float64{5}
	bad.Upper = []float64{-5}
	if err := bad.Validate(); err == nil {
		t.Fatal("inverted bounds accepted")
	}
	bad = p
	bad.Evaluate = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("nil Evaluate accepted")
	}
	bad = p
	bad.Lower = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("missing bounds accepted")
	}
}

func TestSchafferFront(t *testing.T) {
	front, err := Run(schaffer(), Config{PopSize: 60, Generations: 80, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(front) < 10 {
		t.Fatalf("front size = %d, want a populated front", len(front))
	}
	for _, s := range front {
		if s.X[0] < -0.1 || s.X[0] > 2.1 {
			t.Fatalf("solution x=%v outside Pareto set [0,2]", s.X[0])
		}
		// On the true front, sqrt(f1) + sqrt(f2) = 2.
		sum := math.Sqrt(s.Objectives[0]) + math.Sqrt(s.Objectives[1])
		if math.Abs(sum-2) > 0.15 {
			t.Fatalf("solution (%v,%v) off the Schaffer front (sum=%v)", s.Objectives[0], s.Objectives[1], sum)
		}
	}
}

func TestZDT1Convergence(t *testing.T) {
	front, err := Run(zdt1(10), Config{PopSize: 100, Generations: 200, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Measure mean distance to the analytic front f2 = 1 − sqrt(f1).
	var total float64
	for _, s := range front {
		want := 1 - math.Sqrt(s.Objectives[0])
		total += math.Abs(s.Objectives[1] - want)
	}
	mean := total / float64(len(front))
	if mean > 0.05 {
		t.Fatalf("mean deviation from ZDT1 front = %v, want < 0.05", mean)
	}
	// Diversity: front should span most of f1 ∈ [0,1].
	minF1, maxF1 := math.Inf(1), math.Inf(-1)
	for _, s := range front {
		minF1 = math.Min(minF1, s.Objectives[0])
		maxF1 = math.Max(maxF1, s.Objectives[0])
	}
	if maxF1-minF1 < 0.5 {
		t.Fatalf("front span = %v, want > 0.5 (crowding should preserve diversity)", maxF1-minF1)
	}
}

func TestFrontIsMutuallyNonDominated(t *testing.T) {
	front, err := Run(zdt1(5), Config{PopSize: 60, Generations: 60, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range front {
		for j := range front {
			if i == j {
				continue
			}
			a, b := front[i], front[j]
			dominated := true
			strictly := false
			for k := range a.Objectives {
				if a.Objectives[k] > b.Objectives[k] {
					dominated = false
					break
				}
				if a.Objectives[k] < b.Objectives[k] {
					strictly = true
				}
			}
			if dominated && strictly {
				t.Fatalf("front member %v dominates member %v", a.Objectives, b.Objectives)
			}
		}
	}
}

func TestConstrainedProblemYieldsFeasibleFront(t *testing.T) {
	// Minimise (-x, -y) (i.e. maximise both) subject to x + y <= 10.
	p := Problem{
		NumVars:       2,
		NumObjectives: 2,
		Lower:         []float64{0, 0},
		Upper:         []float64{10, 10},
		Evaluate: func(x []float64) ([]float64, float64) {
			violation := 0.0
			if sum := x[0] + x[1]; sum > 10 {
				violation = sum - 10
			}
			return []float64{-x[0], -x[1]}, violation
		},
	}
	front, err := Run(p, Config{PopSize: 80, Generations: 100, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range front {
		if s.Violation > 1e-9 {
			t.Fatalf("infeasible solution on final front: %+v", s)
		}
		// The constrained Pareto front is the line x + y = 10.
		if sum := s.X[0] + s.X[1]; sum < 9.5 {
			t.Fatalf("solution (%v,%v) far inside the budget line", s.X[0], s.X[1])
		}
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	a, err := Run(schaffer(), Config{PopSize: 40, Generations: 30, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(schaffer(), Config{PopSize: 40, Generations: 30, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("front sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		for k := range a[i].X {
			if a[i].X[k] != b[i].X[k] {
				t.Fatalf("same-seed solutions differ at %d", i)
			}
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, _ := Run(schaffer(), Config{PopSize: 40, Generations: 10, Seed: 1})
	b, _ := Run(schaffer(), Config{PopSize: 40, Generations: 10, Seed: 2})
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i].X[0] != b[i].X[0] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical fronts")
	}
}

func TestOddPopSizeRoundsUp(t *testing.T) {
	front, err := Run(schaffer(), Config{PopSize: 31, Generations: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(front) == 0 {
		t.Fatal("empty front")
	}
}

func TestDominates(t *testing.T) {
	mk := func(objs []float64, v float64) *individual {
		return &individual{objs: objs, violation: v}
	}
	cases := []struct {
		a, b *individual
		want bool
	}{
		{mk([]float64{1, 1}, 0), mk([]float64{2, 2}, 0), true},
		{mk([]float64{2, 2}, 0), mk([]float64{1, 1}, 0), false},
		{mk([]float64{1, 2}, 0), mk([]float64{2, 1}, 0), false}, // incomparable
		{mk([]float64{1, 1}, 0), mk([]float64{1, 1}, 0), false}, // equal
		{mk([]float64{9, 9}, 0), mk([]float64{1, 1}, 1), true},  // feasible beats infeasible
		{mk([]float64{1, 1}, 2), mk([]float64{9, 9}, 1), false}, // higher violation loses
		{mk([]float64{9, 9}, 1), mk([]float64{1, 1}, 2), true},  // lower violation wins
	}
	for i, c := range cases {
		if got := dominates(c.a, c.b); got != c.want {
			t.Errorf("case %d: dominates = %v, want %v", i, got, c.want)
		}
	}
}

func TestSortFrontsRanks(t *testing.T) {
	// Three points on distinct ranks for a 2-objective min problem.
	pop := []*individual{
		{objs: []float64{1, 1}}, // rank 0
		{objs: []float64{2, 2}}, // rank 1 (dominated by first)
		{objs: []float64{3, 3}}, // rank 2
		{objs: []float64{0, 5}}, // rank 0 (incomparable with {1,1})
	}
	fronts := sortFronts(pop)
	if len(fronts) != 3 {
		t.Fatalf("fronts = %d, want 3", len(fronts))
	}
	if len(fronts[0]) != 2 {
		t.Fatalf("first front size = %d, want 2", len(fronts[0]))
	}
	if pop[0].rank != 0 || pop[3].rank != 0 || pop[1].rank != 1 || pop[2].rank != 2 {
		t.Fatalf("ranks = %d %d %d %d", pop[0].rank, pop[1].rank, pop[2].rank, pop[3].rank)
	}
}

func TestCrowdingBoundaryIsInfinite(t *testing.T) {
	front := []*individual{
		{objs: []float64{0, 3}},
		{objs: []float64{1, 2}},
		{objs: []float64{2, 1}},
		{objs: []float64{3, 0}},
	}
	assignCrowding([][]*individual{front})
	infinite := 0
	for _, ind := range front {
		if math.IsInf(ind.crowding, 1) {
			infinite++
		}
	}
	if infinite != 2 {
		t.Fatalf("infinite-crowding members = %d, want the 2 extremes", infinite)
	}
}

func TestRunRejectsInvalidProblem(t *testing.T) {
	if _, err := Run(Problem{}, Config{}); err == nil {
		t.Fatal("invalid problem accepted")
	}
}

func TestRunIsFastEnoughForInteractiveUse(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	start := time.Now()
	if _, err := Run(zdt1(10), Config{PopSize: 100, Generations: 100, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("run took %v; too slow for the demo's interactive share analysis", d)
	}
}

func TestNonDominatedExtractsMinimisationFront(t *testing.T) {
	objs := [][]float64{
		{1, 5}, // on the front
		{5, 1}, // on the front
		{3, 3}, // on the front
		{4, 4}, // dominated by {3,3}
		{3, 3}, // duplicate of the front point: not dominated
	}
	got := NonDominated(objs)
	want := []int{0, 1, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("front = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("front = %v, want %v", got, want)
		}
	}
	if out := NonDominated(nil); len(out) != 0 {
		t.Fatalf("empty input yielded %v", out)
	}
	if out := NonDominated([][]float64{{2}}); len(out) != 1 || out[0] != 0 {
		t.Fatalf("singleton input yielded %v", out)
	}
}
