// Package nsga2 implements the NSGA-II multi-objective genetic algorithm
// of Deb, Pratap, Agarwal and Meyarivan (IEEE TEVC 6(2), 2002) — the
// search procedure Flower's Resource Share Analyzer uses to "efficiently
// search the provisioning plan space" (§3.2, reference [8]).
//
// The implementation is the canonical one: fast non-dominated sorting,
// crowding-distance diversity preservation, binary tournament selection
// under Deb's constrained-domination rule, simulated binary crossover
// (SBX) and polynomial mutation on real-coded variables.
//
// Objectives are minimised; callers with maximisation objectives (as in
// Eq. 3 of the paper) negate them. Constraints are expressed as a single
// aggregate violation value (0 = feasible, larger = worse), which the
// resource-share layer builds from the paper's budget and dependency
// constraints (Eq. 4–5).
package nsga2

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Problem defines a real-coded multi-objective optimisation problem.
type Problem struct {
	// NumVars is the decision-vector length.
	NumVars int
	// NumObjectives is the number of objectives to minimise.
	NumObjectives int
	// Lower and Upper bound each decision variable.
	Lower, Upper []float64
	// Evaluate returns the objective vector (length NumObjectives) and
	// the aggregate constraint violation (0 when feasible). It must be
	// deterministic.
	Evaluate func(x []float64) (objs []float64, violation float64)
}

// Validate checks problem invariants.
func (p Problem) Validate() error {
	if p.NumVars <= 0 {
		return fmt.Errorf("nsga2: NumVars must be positive")
	}
	if p.NumObjectives <= 0 {
		return fmt.Errorf("nsga2: NumObjectives must be positive")
	}
	if len(p.Lower) != p.NumVars || len(p.Upper) != p.NumVars {
		return fmt.Errorf("nsga2: bounds length %d/%d != NumVars %d", len(p.Lower), len(p.Upper), p.NumVars)
	}
	for i := range p.Lower {
		if !(p.Lower[i] <= p.Upper[i]) {
			return fmt.Errorf("nsga2: lower[%d]=%v > upper[%d]=%v", i, p.Lower[i], i, p.Upper[i])
		}
	}
	if p.Evaluate == nil {
		return fmt.Errorf("nsga2: Evaluate is required")
	}
	return nil
}

// Config tunes the genetic algorithm. Zero values select the defaults Deb
// et al. recommend.
type Config struct {
	PopSize       int     // population size (default 100)
	Generations   int     // generations to run (default 250)
	CrossoverProb float64 // SBX probability per pair (default 0.9)
	MutationProb  float64 // mutation probability per variable (default 1/NumVars)
	EtaCrossover  float64 // SBX distribution index (default 15)
	EtaMutation   float64 // polynomial-mutation distribution index (default 20)
	Seed          int64   // RNG seed
}

func (c Config) withDefaults(numVars int) Config {
	if c.PopSize <= 0 {
		c.PopSize = 100
	}
	if c.PopSize%2 != 0 {
		c.PopSize++ // pairing requires an even population
	}
	if c.Generations <= 0 {
		c.Generations = 250
	}
	if c.CrossoverProb <= 0 {
		c.CrossoverProb = 0.9
	}
	if c.MutationProb <= 0 {
		c.MutationProb = 1 / float64(numVars)
	}
	if c.EtaCrossover <= 0 {
		c.EtaCrossover = 15
	}
	if c.EtaMutation <= 0 {
		c.EtaMutation = 20
	}
	return c
}

// Solution is one member of the final non-dominated front.
type Solution struct {
	X          []float64
	Objectives []float64
	Violation  float64
}

// individual is the internal population member.
type individual struct {
	x         []float64
	objs      []float64
	violation float64

	rank     int
	crowding float64
}

// Run executes NSGA-II and returns the first non-dominated front of the
// final population, sorted lexicographically by objectives for
// deterministic output.
func Run(p Problem, cfg Config) ([]Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults(p.NumVars)
	rng := rand.New(rand.NewSource(cfg.Seed))

	pop := make([]*individual, cfg.PopSize)
	for i := range pop {
		x := make([]float64, p.NumVars)
		for j := range x {
			x[j] = p.Lower[j] + rng.Float64()*(p.Upper[j]-p.Lower[j])
		}
		pop[i] = newIndividual(p, x)
	}
	fronts := sortFronts(pop)
	assignCrowding(fronts)

	for gen := 0; gen < cfg.Generations; gen++ {
		offspring := makeOffspring(p, cfg, rng, pop)
		combined := append(pop, offspring...)
		fronts = sortFronts(combined)
		assignCrowding(fronts)
		pop = selectNext(fronts, cfg.PopSize)
	}

	fronts = sortFronts(pop)
	assignCrowding(fronts)
	first := fronts[0]
	out := make([]Solution, 0, len(first))
	for _, ind := range first {
		out = append(out, Solution{
			X:          append([]float64(nil), ind.x...),
			Objectives: append([]float64(nil), ind.objs...),
			Violation:  ind.violation,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i].Objectives {
			if out[i].Objectives[k] != out[j].Objectives[k] {
				return out[i].Objectives[k] < out[j].Objectives[k]
			}
		}
		return false
	})
	return out, nil
}

// NonDominated returns the indices of the points whose objective vectors
// are not Pareto-dominated by any other point, minimising every
// objective, in input order. It is the front-extraction primitive behind
// both the share analyzer's plan filter and the Scenario Lab's
// cross-trial aggregates (internal/lab), applied to already-evaluated
// outcomes rather than an evolving population. Points with mismatched
// lengths are compared over the shorter prefix; an empty input yields an
// empty front.
func NonDominated(objs [][]float64) []int {
	var front []int
	for i, a := range objs {
		dominated := false
		for j, b := range objs {
			if i == j {
				continue
			}
			if dominatesMin(b, a) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, i)
		}
	}
	return front
}

// dominatesMin reports whether a Pareto-dominates b when minimising all
// components: a is no worse everywhere and strictly better somewhere.
func dominatesMin(a, b []float64) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	better := false
	for i := 0; i < n; i++ {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			better = true
		}
	}
	return better
}

func newIndividual(p Problem, x []float64) *individual {
	objs, violation := p.Evaluate(x)
	if len(objs) != p.NumObjectives {
		panic(fmt.Sprintf("nsga2: Evaluate returned %d objectives, want %d", len(objs), p.NumObjectives))
	}
	return &individual{x: x, objs: objs, violation: violation}
}

// dominates implements Deb's constrained-domination: feasible beats
// infeasible; among infeasible, smaller violation wins; among feasible,
// standard Pareto dominance.
func dominates(a, b *individual) bool {
	aFeasible := a.violation <= 0
	bFeasible := b.violation <= 0
	switch {
	case aFeasible && !bFeasible:
		return true
	case !aFeasible && bFeasible:
		return false
	case !aFeasible && !bFeasible:
		return a.violation < b.violation
	}
	better := false
	for i := range a.objs {
		if a.objs[i] > b.objs[i] {
			return false
		}
		if a.objs[i] < b.objs[i] {
			better = true
		}
	}
	return better
}

// sortFronts performs fast non-dominated sorting, returning fronts in rank
// order and recording each individual's rank.
func sortFronts(pop []*individual) [][]*individual {
	n := len(pop)
	dominatedBy := make([][]int, n) // indices this individual dominates
	domCount := make([]int, n)      // how many dominate this individual

	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			switch {
			case dominates(pop[i], pop[j]):
				dominatedBy[i] = append(dominatedBy[i], j)
				domCount[j]++
			case dominates(pop[j], pop[i]):
				dominatedBy[j] = append(dominatedBy[j], i)
				domCount[i]++
			}
		}
	}

	var fronts [][]*individual
	var current []int
	for i := 0; i < n; i++ {
		if domCount[i] == 0 {
			pop[i].rank = 0
			current = append(current, i)
		}
	}
	rank := 0
	for len(current) > 0 {
		front := make([]*individual, 0, len(current))
		var next []int
		for _, i := range current {
			front = append(front, pop[i])
			for _, j := range dominatedBy[i] {
				domCount[j]--
				if domCount[j] == 0 {
					pop[j].rank = rank + 1
					next = append(next, j)
				}
			}
		}
		fronts = append(fronts, front)
		current = next
		rank++
	}
	return fronts
}

// assignCrowding computes the crowding distance within each front.
func assignCrowding(fronts [][]*individual) {
	for _, front := range fronts {
		for _, ind := range front {
			ind.crowding = 0
		}
		if len(front) == 0 {
			continue
		}
		numObjs := len(front[0].objs)
		for m := 0; m < numObjs; m++ {
			sort.Slice(front, func(i, j int) bool { return front[i].objs[m] < front[j].objs[m] })
			front[0].crowding = math.Inf(1)
			front[len(front)-1].crowding = math.Inf(1)
			span := front[len(front)-1].objs[m] - front[0].objs[m]
			if span == 0 {
				continue
			}
			for i := 1; i < len(front)-1; i++ {
				front[i].crowding += (front[i+1].objs[m] - front[i-1].objs[m]) / span
			}
		}
	}
}

// crowdedLess is NSGA-II's crowded-comparison operator ≺n.
func crowdedLess(a, b *individual) bool {
	if a.rank != b.rank {
		return a.rank < b.rank
	}
	return a.crowding > b.crowding
}

// tournament picks the better of two random individuals.
func tournament(rng *rand.Rand, pop []*individual) *individual {
	a := pop[rng.Intn(len(pop))]
	b := pop[rng.Intn(len(pop))]
	if dominates(a, b) {
		return a
	}
	if dominates(b, a) {
		return b
	}
	if crowdedLess(a, b) {
		return a
	}
	return b
}

// makeOffspring produces PopSize children via tournament selection, SBX
// and polynomial mutation.
func makeOffspring(p Problem, cfg Config, rng *rand.Rand, pop []*individual) []*individual {
	out := make([]*individual, 0, cfg.PopSize)
	for len(out) < cfg.PopSize {
		p1 := tournament(rng, pop)
		p2 := tournament(rng, pop)
		c1 := append([]float64(nil), p1.x...)
		c2 := append([]float64(nil), p2.x...)
		if rng.Float64() < cfg.CrossoverProb {
			sbx(rng, cfg.EtaCrossover, p.Lower, p.Upper, c1, c2)
		}
		mutate(rng, cfg.MutationProb, cfg.EtaMutation, p.Lower, p.Upper, c1)
		mutate(rng, cfg.MutationProb, cfg.EtaMutation, p.Lower, p.Upper, c2)
		out = append(out, newIndividual(p, c1))
		if len(out) < cfg.PopSize {
			out = append(out, newIndividual(p, c2))
		}
	}
	return out
}

// sbx performs simulated binary crossover in place.
func sbx(rng *rand.Rand, eta float64, lower, upper, c1, c2 []float64) {
	for i := range c1 {
		if rng.Float64() > 0.5 {
			continue
		}
		x1, x2 := c1[i], c2[i]
		if math.Abs(x1-x2) < 1e-14 {
			continue
		}
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		lo, hi := lower[i], upper[i]
		u := rng.Float64()

		beta := 1 + 2*(x1-lo)/(x2-x1)
		alpha := 2 - math.Pow(beta, -(eta+1))
		var betaq float64
		if u <= 1/alpha {
			betaq = math.Pow(u*alpha, 1/(eta+1))
		} else {
			betaq = math.Pow(1/(2-u*alpha), 1/(eta+1))
		}
		y1 := 0.5 * ((x1 + x2) - betaq*(x2-x1))

		beta = 1 + 2*(hi-x2)/(x2-x1)
		alpha = 2 - math.Pow(beta, -(eta+1))
		if u <= 1/alpha {
			betaq = math.Pow(u*alpha, 1/(eta+1))
		} else {
			betaq = math.Pow(1/(2-u*alpha), 1/(eta+1))
		}
		y2 := 0.5 * ((x1 + x2) + betaq*(x2-x1))

		y1 = clamp(y1, lo, hi)
		y2 = clamp(y2, lo, hi)
		if rng.Float64() < 0.5 {
			c1[i], c2[i] = y2, y1
		} else {
			c1[i], c2[i] = y1, y2
		}
	}
}

// mutate applies polynomial mutation in place.
func mutate(rng *rand.Rand, prob, eta float64, lower, upper, x []float64) {
	for i := range x {
		if rng.Float64() >= prob {
			continue
		}
		lo, hi := lower[i], upper[i]
		span := hi - lo
		if span <= 0 {
			continue
		}
		v := x[i]
		d1 := (v - lo) / span
		d2 := (hi - v) / span
		u := rng.Float64()
		mutPow := 1 / (eta + 1)
		var deltaq float64
		if u < 0.5 {
			xy := 1 - d1
			val := 2*u + (1-2*u)*math.Pow(xy, eta+1)
			deltaq = math.Pow(val, mutPow) - 1
		} else {
			xy := 1 - d2
			val := 2*(1-u) + 2*(u-0.5)*math.Pow(xy, eta+1)
			deltaq = 1 - math.Pow(val, mutPow)
		}
		x[i] = clamp(v+deltaq*span, lo, hi)
	}
}

// selectNext fills the next generation front-by-front, truncating the last
// partially fitting front by crowding distance.
func selectNext(fronts [][]*individual, popSize int) []*individual {
	next := make([]*individual, 0, popSize)
	for _, front := range fronts {
		if len(next)+len(front) <= popSize {
			next = append(next, front...)
			continue
		}
		sorted := append([]*individual(nil), front...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].crowding > sorted[j].crowding })
		next = append(next, sorted[:popSize-len(next)]...)
		break
	}
	return next
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
