package nsga2

// Property-based tests of the NSGA-II invariants, complementing the unit
// tests in nsga2_test.go: whatever random (bounded, feasible-or-not)
// problem the search is given, its output front must be internally
// non-dominated, inside bounds, and deterministic per seed.

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomProblem builds a small two-objective problem from raw fuzz bytes:
// minimise (Σ w1·x, Σ w2·(U−x)) under a random linear budget constraint.
func randomProblem(raw []uint8) Problem {
	n := int(raw[0]%3) + 2 // 2..4 variables
	lower := make([]float64, n)
	upper := make([]float64, n)
	w1 := make([]float64, n)
	w2 := make([]float64, n)
	budget := 1.0
	for i := 0; i < n; i++ {
		b := func(j int) float64 {
			if idx := 1 + i*4 + j; idx < len(raw) {
				return float64(raw[idx])
			}
			return float64(i + j + 1)
		}
		lower[i] = b(0) / 16
		upper[i] = lower[i] + b(1)/4 + 1
		w1[i] = b(2)/32 + 0.1
		w2[i] = b(3)/32 + 0.1
		budget += upper[i] * w1[i] / 2
	}
	return Problem{
		NumVars:       n,
		NumObjectives: 2,
		Lower:         lower,
		Upper:         upper,
		Evaluate: func(x []float64) ([]float64, float64) {
			var o1, o2, spend float64
			for i, xi := range x {
				o1 += w1[i] * xi
				o2 += w2[i] * (upper[i] - xi)
				spend += w1[i] * xi
			}
			violation := 0.0
			if spend > budget {
				violation = spend - budget
			}
			return []float64{o1, o2}, violation
		},
	}
}

func smallConfig(seed int64) Config {
	return Config{PopSize: 24, Generations: 30, Seed: seed}
}

func TestFrontWithinBoundsProperty(t *testing.T) {
	f := func(raw []uint8, seed int64) bool {
		if len(raw) == 0 {
			return true
		}
		p := randomProblem(raw)
		sols, err := Run(p, smallConfig(seed))
		if err != nil || len(sols) == 0 {
			return false
		}
		for _, s := range sols {
			if len(s.X) != p.NumVars || len(s.Objectives) != p.NumObjectives {
				return false
			}
			for i, xi := range s.X {
				if xi < p.Lower[i]-1e-9 || xi > p.Upper[i]+1e-9 {
					return false
				}
			}
			if s.Violation < 0 || math.IsNaN(s.Violation) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// frontDominates reports whether a dominates b in minimisation with
// constraint-domination (feasible beats infeasible; less violation beats
// more).
func frontDominates(a, b Solution) bool {
	switch {
	case a.Violation == 0 && b.Violation > 0:
		return true
	case a.Violation > 0 && b.Violation == 0:
		return false
	case a.Violation > 0 && b.Violation > 0:
		return a.Violation < b.Violation
	}
	// Exact comparisons, matching the algorithm's own dominance test: an
	// epsilon-tolerant check would manufacture false dominations between
	// continuous solutions that legitimately differ by less than any
	// fixed epsilon in one objective and more in another.
	better := false
	for i := range a.Objectives {
		if a.Objectives[i] > b.Objectives[i] {
			return false
		}
		if a.Objectives[i] < b.Objectives[i] {
			better = true
		}
	}
	return better
}

func TestFrontMutuallyNonDominatedProperty(t *testing.T) {
	f := func(raw []uint8, seed int64) bool {
		if len(raw) == 0 {
			return true
		}
		sols, err := Run(randomProblem(raw), smallConfig(seed))
		if err != nil {
			return false
		}
		for i := range sols {
			for j := range sols {
				if i != j && frontDominates(sols[i], sols[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	f := func(raw []uint8, seed int64) bool {
		if len(raw) == 0 {
			return true
		}
		p := randomProblem(raw)
		a, errA := Run(p, smallConfig(seed))
		b, errB := Run(p, smallConfig(seed))
		if (errA == nil) != (errB == nil) || len(a) != len(b) {
			return false
		}
		for i := range a {
			for j := range a[i].X {
				if a[i].X[j] != b[i].X[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestFrontImprovesOnRandomSampling sanity-checks optimisation pressure:
// the front's best first objective should not lose to the best of an
// equal-budget random sample.
func TestFrontImprovesOnRandomSampling(t *testing.T) {
	raw := []uint8{2, 8, 16, 9, 7, 4, 20, 11, 6, 3, 12, 10, 5}
	p := randomProblem(raw)
	cfg := smallConfig(99)
	sols, err := Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bestFront := math.Inf(1)
	for _, s := range sols {
		if s.Violation == 0 && s.Objectives[0] < bestFront {
			bestFront = s.Objectives[0]
		}
	}

	rng := rand.New(rand.NewSource(99))
	bestRand := math.Inf(1)
	for i := 0; i < cfg.PopSize*cfg.Generations; i++ {
		x := make([]float64, p.NumVars)
		for j := range x {
			x[j] = p.Lower[j] + rng.Float64()*(p.Upper[j]-p.Lower[j])
		}
		objs, viol := p.Evaluate(x)
		if viol == 0 && objs[0] < bestRand {
			bestRand = objs[0]
		}
	}
	if bestFront > bestRand*1.05 {
		t.Errorf("NSGA-II best %.4f worse than random sampling best %.4f", bestFront, bestRand)
	}
}
