// Package timeseries provides the time-series container and the descriptive
// statistics used throughout the reproduction: by the metric store to answer
// period-statistic queries, by the dependency analyzer to align layer
// measurements, and by the experiment harness to summarise runs.
package timeseries

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Point is a single timestamped observation.
type Point struct {
	T time.Time
	V float64
}

// Series is an append-only, time-ordered sequence of points. Appending out
// of order is an error at insert time rather than a silent reorder, because
// the simulation produces observations in clock order by construction and a
// violation indicates a wiring bug.
type Series struct {
	points []Point
}

// New returns an empty series with capacity hint n.
func New(n int) *Series {
	return &Series{points: make([]Point, 0, n)}
}

// FromValues builds a series from evenly spaced values starting at start
// with the given step. It is primarily a test and analysis convenience.
func FromValues(start time.Time, step time.Duration, values []float64) *Series {
	s := New(len(values))
	for i, v := range values {
		s.points = append(s.points, Point{T: start.Add(time.Duration(i) * step), V: v})
	}
	return s
}

// Append adds an observation. The timestamp must not precede the last
// appended timestamp.
func (s *Series) Append(t time.Time, v float64) error {
	if n := len(s.points); n > 0 && t.Before(s.points[n-1].T) {
		return fmt.Errorf("timeseries: append at %v precedes last point %v", t, s.points[n-1].T)
	}
	s.points = append(s.points, Point{T: t, V: v})
	return nil
}

// MustAppend is Append for callers that control the clock and treat
// out-of-order appends as programmer error.
func (s *Series) MustAppend(t time.Time, v float64) {
	if err := s.Append(t, v); err != nil {
		panic(err)
	}
}

// Len reports the number of points.
func (s *Series) Len() int { return len(s.points) }

// At returns the i-th point.
func (s *Series) At(i int) Point { return s.points[i] }

// Last returns the most recent point and true, or a zero point and false if
// the series is empty.
func (s *Series) Last() (Point, bool) {
	if len(s.points) == 0 {
		return Point{}, false
	}
	return s.points[len(s.points)-1], true
}

// Values returns a copy of the observation values in time order.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.points))
	for i, p := range s.points {
		out[i] = p.V
	}
	return out
}

// Times returns a copy of the timestamps in order.
func (s *Series) Times() []time.Time {
	out := make([]time.Time, len(s.points))
	for i, p := range s.points {
		out[i] = p.T
	}
	return out
}

// Between returns the sub-series of points p with from <= p.T < to. The
// returned series shares no storage with s.
func (s *Series) Between(from, to time.Time) *Series {
	lo := sort.Search(len(s.points), func(i int) bool { return !s.points[i].T.Before(from) })
	hi := sort.Search(len(s.points), func(i int) bool { return !s.points[i].T.Before(to) })
	out := New(hi - lo)
	out.points = append(out.points, s.points[lo:hi]...)
	return out
}

// TailN returns a copy of the last n points (or all of them if fewer).
func (s *Series) TailN(n int) *Series {
	if n > len(s.points) {
		n = len(s.points)
	}
	out := New(n)
	out.points = append(out.points, s.points[len(s.points)-n:]...)
	return out
}

// Agg identifies an aggregation function for Resample and period statistics.
type Agg int

// Supported aggregations.
const (
	AggMean Agg = iota
	AggSum
	AggMin
	AggMax
	AggCount
	AggP50
	AggP90
	AggP99
)

// String returns the CloudWatch-style statistic name.
func (a Agg) String() string {
	switch a {
	case AggMean:
		return "Average"
	case AggSum:
		return "Sum"
	case AggMin:
		return "Minimum"
	case AggMax:
		return "Maximum"
	case AggCount:
		return "SampleCount"
	case AggP50:
		return "p50"
	case AggP90:
		return "p90"
	case AggP99:
		return "p99"
	default:
		return fmt.Sprintf("Agg(%d)", int(a))
	}
}

// Apply computes the aggregation over vs. It returns NaN for an empty input
// except AggCount and AggSum, which are 0.
func (a Agg) Apply(vs []float64) float64 {
	switch a {
	case AggCount:
		return float64(len(vs))
	case AggSum:
		return Sum(vs)
	}
	if len(vs) == 0 {
		return math.NaN()
	}
	switch a {
	case AggMean:
		return Mean(vs)
	case AggMin:
		return Min(vs)
	case AggMax:
		return Max(vs)
	case AggP50:
		return Percentile(vs, 50)
	case AggP90:
		return Percentile(vs, 90)
	case AggP99:
		return Percentile(vs, 99)
	default:
		return math.NaN()
	}
}

// Resample buckets the series into consecutive windows of length period
// anchored at the first point's timestamp and aggregates each bucket. Empty
// buckets are skipped. The resulting point carries the bucket start time.
func (s *Series) Resample(period time.Duration, agg Agg) *Series {
	if period <= 0 {
		panic("timeseries: resample period must be positive")
	}
	out := New(0)
	if len(s.points) == 0 {
		return out
	}
	anchor := s.points[0].T
	var bucket []float64
	bucketIdx := 0
	flush := func() {
		if len(bucket) == 0 {
			return
		}
		out.points = append(out.points, Point{
			T: anchor.Add(time.Duration(bucketIdx) * period),
			V: agg.Apply(bucket),
		})
		bucket = bucket[:0]
	}
	for _, p := range s.points {
		idx := int(p.T.Sub(anchor) / period)
		if idx != bucketIdx {
			flush()
			bucketIdx = idx
		}
		bucket = append(bucket, p.V)
	}
	flush()
	return out
}

// EWMA returns the exponentially weighted moving average of the series with
// smoothing factor alpha in (0, 1]; larger alpha weights recent points more.
func (s *Series) EWMA(alpha float64) *Series {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("timeseries: EWMA alpha %v out of (0,1]", alpha))
	}
	out := New(len(s.points))
	var acc float64
	for i, p := range s.points {
		if i == 0 {
			acc = p.V
		} else {
			acc = alpha*p.V + (1-alpha)*acc
		}
		out.points = append(out.points, Point{T: p.T, V: acc})
	}
	return out
}

// Mean returns the arithmetic mean of vs, or NaN if empty.
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return math.NaN()
	}
	return Sum(vs) / float64(len(vs))
}

// Sum returns the sum of vs (0 for empty input).
func Sum(vs []float64) float64 {
	var t float64
	for _, v := range vs {
		t += v
	}
	return t
}

// Min returns the smallest value, or NaN if empty.
func Min(vs []float64) float64 {
	if len(vs) == 0 {
		return math.NaN()
	}
	m := vs[0]
	for _, v := range vs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest value, or NaN if empty.
func Max(vs []float64) float64 {
	if len(vs) == 0 {
		return math.NaN()
	}
	m := vs[0]
	for _, v := range vs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Variance returns the population variance of vs, or NaN for fewer than one
// point.
func Variance(vs []float64) float64 {
	if len(vs) == 0 {
		return math.NaN()
	}
	mu := Mean(vs)
	var ss float64
	for _, v := range vs {
		d := v - mu
		ss += d * d
	}
	return ss / float64(len(vs))
}

// StdDev returns the population standard deviation of vs.
func StdDev(vs []float64) float64 { return math.Sqrt(Variance(vs)) }

// Percentile returns the p-th percentile (0..100) of vs using linear
// interpolation between closest ranks. It copies vs before sorting.
func Percentile(vs []float64, p float64) float64 {
	if len(vs) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return Min(vs)
	}
	if p >= 100 {
		return Max(vs)
	}
	sorted := make([]float64, len(vs))
	copy(sorted, vs)
	sort.Float64s(sorted)
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Correlation returns the Pearson correlation coefficient between x and y,
// which must have equal length. It returns NaN when either input has zero
// variance or fewer than two points.
func Correlation(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("timeseries: correlation length mismatch %d vs %d", len(x), len(y)))
	}
	n := len(x)
	if n < 2 {
		return math.NaN()
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// AlignedValues trims x and y to their overlapping time range, resamples both
// onto period buckets with the mean aggregate, and returns equal-length value
// slices ready for Correlation or regression. It returns nil slices when the
// series do not overlap.
func AlignedValues(x, y *Series, period time.Duration) (xs, ys []float64) {
	if x.Len() == 0 || y.Len() == 0 {
		return nil, nil
	}
	from := maxTime(x.points[0].T, y.points[0].T)
	to := minTime(x.points[x.Len()-1].T, y.points[y.Len()-1].T).Add(time.Nanosecond)
	xr := x.Between(from, to).Resample(period, AggMean)
	yr := y.Between(from, to).Resample(period, AggMean)
	n := xr.Len()
	if yr.Len() < n {
		n = yr.Len()
	}
	if n == 0 {
		return nil, nil
	}
	return xr.TailN(n).Values(), yr.TailN(n).Values()
}

func maxTime(a, b time.Time) time.Time {
	if a.After(b) {
		return a
	}
	return b
}

func minTime(a, b time.Time) time.Time {
	if a.Before(b) {
		return a
	}
	return b
}
