// Package timeseries provides the time-series container and the descriptive
// statistics used throughout the reproduction: by the metric store to answer
// period-statistic queries, by the dependency analyzer to align layer
// measurements, and by the experiment harness to summarise runs.
//
// Storage is columnar — one int64 slice of unix-nano timestamps and one
// float64 slice of values — so the per-tick append path writes two machine
// words, window lookups are a binary search over a flat int64 slice, and
// retention pruning is an amortised-O(1) head drop instead of a copy of the
// surviving points. Read paths that do not need an owned copy use View, a
// zero-copy window over the columns.
package timeseries

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Point is a single timestamped observation.
type Point struct {
	T time.Time
	V float64
}

// Series is an append-only, time-ordered sequence of points. Appending out
// of order is an error at insert time rather than a silent reorder, because
// the simulation produces observations in clock order by construction and a
// violation indicates a wiring bug.
//
// Internally the series is columnar: timestamps as unix nanoseconds and
// values as float64s, with a head offset so DropBefore can discard old
// points without copying the survivors on every call.
type Series struct {
	times []int64 // unix nanos, ascending; live region is [head:len]
	vals  []float64
	head  int
	// copied counts points moved by compaction; the amortised-truncation
	// regression test reads it to assert bounded total copy work.
	copied int64
}

// compactMin is the head size below which DropBefore never compacts, so
// short series are not shuffled for a handful of dropped points.
const compactMin = 32

// New returns an empty series with capacity hint n.
func New(n int) *Series {
	return &Series{times: make([]int64, 0, n), vals: make([]float64, 0, n)}
}

// FromValues builds a series from evenly spaced values starting at start
// with the given step. It is primarily a test and analysis convenience.
func FromValues(start time.Time, step time.Duration, values []float64) *Series {
	s := New(len(values))
	base := start.UnixNano()
	for i, v := range values {
		s.times = append(s.times, base+int64(i)*int64(step))
		s.vals = append(s.vals, v)
	}
	return s
}

// nanoTime reconstructs the time.Time for a stored nanosecond timestamp.
// The simulation clock runs in UTC, so reconstructed times render and
// compare identically to the originals.
func nanoTime(n int64) time.Time { return time.Unix(0, n).UTC() }

// unixNano converts t for storage and window comparisons. time.Time values
// outside the int64-nanosecond range (the zero Time used as an open query
// bound, or distant futures) clamp to the extremes so window selection
// still behaves as "everything before/after".
func unixNano(t time.Time) int64 {
	if y := t.Year(); y < 1679 {
		return math.MinInt64
	} else if y > 2261 {
		return math.MaxInt64
	}
	return t.UnixNano()
}

// Append adds an observation. The timestamp must not precede the last
// appended timestamp.
func (s *Series) Append(t time.Time, v float64) error {
	tn := t.UnixNano()
	if n := len(s.times); n > s.head && tn < s.times[n-1] {
		return fmt.Errorf("timeseries: append at %v precedes last point %v", t, nanoTime(s.times[n-1]))
	}
	s.times = append(s.times, tn)
	s.vals = append(s.vals, v)
	return nil
}

// MustAppend is Append for callers that control the clock and treat
// out-of-order appends as programmer error.
func (s *Series) MustAppend(t time.Time, v float64) {
	if err := s.Append(t, v); err != nil {
		panic(err)
	}
}

// Len reports the number of points.
func (s *Series) Len() int { return len(s.times) - s.head }

// At returns the i-th point.
func (s *Series) At(i int) Point {
	return Point{T: nanoTime(s.times[s.head+i]), V: s.vals[s.head+i]}
}

// Last returns the most recent point and true, or a zero point and false if
// the series is empty.
func (s *Series) Last() (Point, bool) {
	if s.Len() == 0 {
		return Point{}, false
	}
	n := len(s.times) - 1
	return Point{T: nanoTime(s.times[n]), V: s.vals[n]}, true
}

// Values returns a copy of the observation values in time order.
func (s *Series) Values() []float64 {
	out := make([]float64, s.Len())
	copy(out, s.vals[s.head:])
	return out
}

// Times returns a copy of the timestamps in order.
func (s *Series) Times() []time.Time {
	out := make([]time.Time, s.Len())
	for i, n := range s.times[s.head:] {
		out[i] = nanoTime(n)
	}
	return out
}

// Columns exposes the series' backing columns — unix-nano timestamps and
// values, live region only — without copying. Callers must treat both
// slices as read-only and must not retain them across a mutation of s;
// the batch query wire path serializes them directly.
func (s *Series) Columns() (ts []int64, vs []float64) {
	return s.times[s.head:], s.vals[s.head:]
}

// Reset empties the series in place, keeping its capacity for reuse.
func (s *Series) Reset() {
	s.times = s.times[:0]
	s.vals = s.vals[:0]
	s.head = 0
}

// search returns the absolute index of the first live point with
// timestamp >= tn.
func (s *Series) search(tn int64) int {
	return s.head + searchNanos(s.times[s.head:], tn)
}

// View returns a zero-copy window over the points p with from <= p.T < to.
// The view shares storage with s: it is valid only until the next Append or
// DropBefore, and callers that outlive the series must Materialize it.
func (s *Series) View(from, to time.Time) View {
	lo := s.search(unixNano(from))
	hi := s.search(unixNano(to))
	if hi < lo { // inverted window selects nothing
		hi = lo
	}
	return View{times: s.times[lo:hi], vals: s.vals[lo:hi]}
}

// ViewAll returns a zero-copy view of the whole series (same validity
// caveats as View).
func (s *Series) ViewAll() View {
	return View{times: s.times[s.head:], vals: s.vals[s.head:]}
}

// Between returns the sub-series of points p with from <= p.T < to. The
// returned series shares no storage with s.
func (s *Series) Between(from, to time.Time) *Series {
	return s.View(from, to).Materialize()
}

// TailN returns a copy of the last n points (or all of them if fewer).
func (s *Series) TailN(n int) *Series {
	if n > s.Len() {
		n = s.Len()
	}
	lo := len(s.times) - n
	return View{times: s.times[lo:], vals: s.vals[lo:]}.Materialize()
}

// DropBefore discards every point with timestamp earlier than t and reports
// how many were dropped. The cost is amortised O(1) per dropped point:
// points are logically dropped by advancing a head offset, and the
// surviving region is compacted to the front only once the dead prefix is
// at least as large as the live region, so the total copy work over the
// series' lifetime is bounded by the total number of appends.
func (s *Series) DropBefore(t time.Time) int {
	lo := s.search(unixNano(t))
	dropped := lo - s.head
	if dropped <= 0 {
		return 0
	}
	s.head = lo
	if s.head >= compactMin && 2*s.head >= len(s.times) {
		live := len(s.times) - s.head
		copy(s.times, s.times[s.head:])
		copy(s.vals, s.vals[s.head:])
		s.times = s.times[:live]
		s.vals = s.vals[:live]
		s.copied += int64(live)
		s.head = 0
	}
	return dropped
}

// Copied returns the lifetime count of points moved by compaction — the
// observable cost of the amortised-truncation scheme.
func (s *Series) Copied() int64 { return s.copied }

// Agg identifies an aggregation function for Resample and period statistics.
type Agg int

// Supported aggregations.
const (
	AggMean Agg = iota
	AggSum
	AggMin
	AggMax
	AggCount
	AggP50
	AggP90
	AggP99
)

// String returns the CloudWatch-style statistic name.
func (a Agg) String() string {
	switch a {
	case AggMean:
		return "Average"
	case AggSum:
		return "Sum"
	case AggMin:
		return "Minimum"
	case AggMax:
		return "Maximum"
	case AggCount:
		return "SampleCount"
	case AggP50:
		return "p50"
	case AggP90:
		return "p90"
	case AggP99:
		return "p99"
	default:
		return fmt.Sprintf("Agg(%d)", int(a))
	}
}

// percentile reports whether the aggregation needs a sorted bucket.
func (a Agg) percentile() (p float64, ok bool) {
	switch a {
	case AggP50:
		return 50, true
	case AggP90:
		return 90, true
	case AggP99:
		return 99, true
	}
	return 0, false
}

// Apply computes the aggregation over vs. It returns NaN for an empty input
// except AggCount and AggSum, which are 0.
func (a Agg) Apply(vs []float64) float64 { return a.ApplyWith(vs, nil) }

// ApplyWith is Apply with a reusable scratch buffer: percentile
// aggregations sort a copy of vs into sc instead of allocating a fresh
// slice per call. A nil sc falls back to a one-shot allocation.
func (a Agg) ApplyWith(vs []float64, sc *AggScratch) float64 {
	switch a {
	case AggCount:
		return float64(len(vs))
	case AggSum:
		return Sum(vs)
	}
	if len(vs) == 0 {
		return math.NaN()
	}
	switch a {
	case AggMean:
		return Mean(vs)
	case AggMin:
		return Min(vs)
	case AggMax:
		return Max(vs)
	case AggP50, AggP90, AggP99:
		p, _ := a.percentile()
		return sc.percentile(vs, p)
	default:
		return math.NaN()
	}
}

// Resample buckets the series into consecutive windows of length period
// anchored at the first point's timestamp and aggregates each bucket. Empty
// buckets are skipped. The resulting point carries the bucket start time.
func (s *Series) Resample(period time.Duration, agg Agg) *Series {
	return s.ViewAll().Resample(period, agg)
}

// EWMA returns the exponentially weighted moving average of the series with
// smoothing factor alpha in (0, 1]; larger alpha weights recent points more.
func (s *Series) EWMA(alpha float64) *Series {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("timeseries: EWMA alpha %v out of (0,1]", alpha))
	}
	out := New(s.Len())
	var acc float64
	for i, n := range s.times[s.head:] {
		v := s.vals[s.head+i]
		if i == 0 {
			acc = v
		} else {
			acc = alpha*v + (1-alpha)*acc
		}
		out.times = append(out.times, n)
		out.vals = append(out.vals, acc)
	}
	return out
}

// Mean returns the arithmetic mean of vs, or NaN if empty.
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return math.NaN()
	}
	return Sum(vs) / float64(len(vs))
}

// Sum returns the sum of vs (0 for empty input).
func Sum(vs []float64) float64 {
	var t float64
	for _, v := range vs {
		t += v
	}
	return t
}

// Min returns the smallest value, or NaN if empty.
func Min(vs []float64) float64 {
	if len(vs) == 0 {
		return math.NaN()
	}
	m := vs[0]
	for _, v := range vs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest value, or NaN if empty.
func Max(vs []float64) float64 {
	if len(vs) == 0 {
		return math.NaN()
	}
	m := vs[0]
	for _, v := range vs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Variance returns the population variance of vs, or NaN for fewer than one
// point.
func Variance(vs []float64) float64 {
	if len(vs) == 0 {
		return math.NaN()
	}
	mu := Mean(vs)
	var ss float64
	for _, v := range vs {
		d := v - mu
		ss += d * d
	}
	return ss / float64(len(vs))
}

// StdDev returns the population standard deviation of vs.
func StdDev(vs []float64) float64 { return math.Sqrt(Variance(vs)) }

// Percentile returns the p-th percentile (0..100) of vs using linear
// interpolation between closest ranks. It copies vs before sorting.
func Percentile(vs []float64, p float64) float64 {
	return (*AggScratch)(nil).percentile(vs, p)
}

// AggScratch is a reusable sort buffer for percentile aggregations. The
// zero value is ready to use; it grows to the largest bucket it has seen
// and is reused across calls, so steady-state percentile queries allocate
// nothing. It is not safe for concurrent use.
type AggScratch struct {
	buf []float64
}

// percentile computes the p-th percentile of vs, sorting a copy held in the
// scratch buffer (or a throwaway slice when sc is nil).
func (sc *AggScratch) percentile(vs []float64, p float64) float64 {
	if len(vs) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return Min(vs)
	}
	if p >= 100 {
		return Max(vs)
	}
	var sorted []float64
	if sc == nil {
		sorted = make([]float64, len(vs))
	} else {
		if cap(sc.buf) < len(vs) {
			sc.buf = make([]float64, len(vs))
		}
		sorted = sc.buf[:len(vs)]
	}
	copy(sorted, vs)
	sort.Float64s(sorted)
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Correlation returns the Pearson correlation coefficient between x and y,
// which must have equal length. It returns NaN when either input has zero
// variance or fewer than two points.
func Correlation(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("timeseries: correlation length mismatch %d vs %d", len(x), len(y)))
	}
	n := len(x)
	if n < 2 {
		return math.NaN()
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// AlignedValues trims x and y to their overlapping time range, resamples both
// onto period buckets with the mean aggregate, and returns equal-length value
// slices ready for Correlation or regression. It returns nil slices when the
// series do not overlap.
func AlignedValues(x, y *Series, period time.Duration) (xs, ys []float64) {
	if x.Len() == 0 || y.Len() == 0 {
		return nil, nil
	}
	from := maxTime(x.At(0).T, y.At(0).T)
	to := minTime(x.At(x.Len()-1).T, y.At(y.Len()-1).T).Add(time.Nanosecond)
	xr := x.View(from, to).Resample(period, AggMean)
	yr := y.View(from, to).Resample(period, AggMean)
	n := xr.Len()
	if yr.Len() < n {
		n = yr.Len()
	}
	if n == 0 {
		return nil, nil
	}
	return xr.TailN(n).Values(), yr.TailN(n).Values()
}

func maxTime(a, b time.Time) time.Time {
	if a.After(b) {
		return a
	}
	return b
}

func minTime(a, b time.Time) time.Time {
	if a.Before(b) {
		return a
	}
	return b
}
