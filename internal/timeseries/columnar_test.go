package timeseries

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

var columnarEpoch = time.Date(2017, time.August, 28, 0, 0, 0, 0, time.UTC)

// TestDropBeforeSemantics: DropBefore removes exactly the points older
// than the cutoff and leaves index-based access consistent.
func TestDropBeforeSemantics(t *testing.T) {
	s := New(0)
	for i := 0; i < 100; i++ {
		s.MustAppend(columnarEpoch.Add(time.Duration(i)*time.Second), float64(i))
	}
	cutoff := columnarEpoch.Add(40 * time.Second)
	if dropped := s.DropBefore(cutoff); dropped != 40 {
		t.Fatalf("dropped %d, want 40", dropped)
	}
	if s.Len() != 60 {
		t.Fatalf("len %d, want 60", s.Len())
	}
	if got := s.At(0); !got.T.Equal(cutoff) || got.V != 40 {
		t.Fatalf("At(0) = %v/%v, want %v/40", got.T, got.V, cutoff)
	}
	if last, _ := s.Last(); last.V != 99 {
		t.Fatalf("last %v, want 99", last.V)
	}
	// A second drop with an older cutoff is a no-op.
	if dropped := s.DropBefore(cutoff.Add(-time.Minute)); dropped != 0 {
		t.Fatalf("re-drop dropped %d, want 0", dropped)
	}
	// Appends after a drop continue the series.
	s.MustAppend(columnarEpoch.Add(200*time.Second), 200)
	if last, _ := s.Last(); last.V != 200 {
		t.Fatalf("append after drop: last %v, want 200", last.V)
	}
}

// TestDropBeforeAmortisedCopyWork is the retention-pruning regression
// test: a sliding-window workload (append one, drop expired) over n
// appends must do at most O(n) total copy work, where the pre-rebuild
// implementation re-copied the whole surviving window on every insert
// (O(n·w)). The compaction counter measures points physically moved.
func TestDropBeforeAmortisedCopyWork(t *testing.T) {
	const n = 50_000
	const window = 1000 * time.Second
	s := New(0)
	for i := 0; i < n; i++ {
		now := columnarEpoch.Add(time.Duration(i) * time.Second)
		s.MustAppend(now, float64(i))
		s.DropBefore(now.Add(-window))
	}
	copied := CopiedPoints(s)
	if copied > int64(2*n) {
		t.Fatalf("compaction copied %d points over %d appends; amortised bound is %d", copied, n, 2*n)
	}
	// Sanity: the window is actually being enforced.
	if got := s.Len(); got != 1001 {
		t.Fatalf("window holds %d points, want 1001", got)
	}
	// And compaction does trigger (head returns to a bounded offset).
	if h := Head(s); h >= s.Len() {
		t.Fatalf("head %d grew past live region %d — compaction never ran", h, s.Len())
	}
}

// legacyPercentileRef is the pre-rebuild copy-and-sort-per-call
// implementation, kept verbatim as the property-test oracle.
func legacyPercentileRef(vs []float64, p float64) float64 {
	if len(vs) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return Min(vs)
	}
	if p >= 100 {
		return Max(vs)
	}
	sorted := make([]float64, len(vs))
	copy(sorted, vs)
	sort.Float64s(sorted)
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// TestPercentileScratchMatchesLegacy property-tests the reused-scratch
// percentile path (and the public Percentile) against the pre-rebuild
// implementation to 1e-12 over randomised inputs, and confirms the input
// slice is never mutated.
func TestPercentileScratchMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var sc AggScratch
	aggs := []Agg{AggP50, AggP90, AggP99}
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(200)
		vs := make([]float64, n)
		for i := range vs {
			vs[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(7)-3))
		}
		orig := append([]float64(nil), vs...)
		p := rng.Float64() * 110 // exercise the <=0 / >=100 clamps too
		if trial%10 == 0 {
			p = -5
		}

		want := legacyPercentileRef(vs, p)
		got := Percentile(vs, p)
		gotScratch := sc.percentile(vs, p)
		if diff := math.Abs(got - want); diff > 1e-12 {
			t.Fatalf("trial %d: Percentile(p=%v) = %v, legacy %v (diff %g)", trial, p, got, want, diff)
		}
		if diff := math.Abs(gotScratch - want); diff > 1e-12 {
			t.Fatalf("trial %d: scratch percentile(p=%v) = %v, legacy %v (diff %g)", trial, p, gotScratch, want, diff)
		}

		// The percentile Aggs route through the same scratch path.
		a := aggs[rng.Intn(len(aggs))]
		ap := map[Agg]float64{AggP50: 50, AggP90: 90, AggP99: 99}[a]
		if diff := math.Abs(a.ApplyWith(vs, &sc) - legacyPercentileRef(vs, ap)); diff > 1e-12 {
			t.Fatalf("trial %d: %v.ApplyWith diff %g", trial, a, diff)
		}

		for i := range vs {
			if vs[i] != orig[i] {
				t.Fatalf("trial %d: input mutated at %d", trial, i)
			}
		}
	}
}

// TestViewResampleMatchesSeriesResample: the zero-copy streaming resampler
// and the legacy-shaped Series.Resample agree bit-for-bit, including the
// reused-destination path.
func TestViewResampleMatchesSeriesResample(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		s := New(0)
		now := columnarEpoch
		n := 1 + rng.Intn(500)
		for i := 0; i < n; i++ {
			now = now.Add(time.Duration(1+rng.Intn(30)) * time.Second)
			s.MustAppend(now, rng.NormFloat64()*100)
		}
		period := time.Duration(1+rng.Intn(120)) * time.Second
		for _, agg := range []Agg{AggMean, AggSum, AggMin, AggMax, AggCount, AggP50, AggP90, AggP99} {
			want := s.Resample(period, agg)
			var sc AggScratch
			dst := New(0)
			got := s.ViewAll().ResampleInto(dst, period, agg, &sc)
			if got.Len() != want.Len() {
				t.Fatalf("trial %d %v: len %d vs %d", trial, agg, got.Len(), want.Len())
			}
			for i := 0; i < got.Len(); i++ {
				g, w := got.At(i), want.At(i)
				if !g.T.Equal(w.T) || math.Float64bits(g.V) != math.Float64bits(w.V) {
					t.Fatalf("trial %d %v [%d]: %v/%v vs %v/%v", trial, agg, i, g.T, g.V, w.T, w.V)
				}
			}
		}
	}
}

// TestViewZeroCopyWindow: views found by binary search agree with Between.
func TestViewZeroCopyWindow(t *testing.T) {
	s := New(0)
	for i := 0; i < 500; i++ {
		s.MustAppend(columnarEpoch.Add(time.Duration(2*i)*time.Second), float64(i))
	}
	from := columnarEpoch.Add(101 * time.Second)
	to := columnarEpoch.Add(700 * time.Second)
	v := s.View(from, to)
	w := s.Between(from, to)
	if v.Len() != w.Len() {
		t.Fatalf("view len %d != between len %d", v.Len(), w.Len())
	}
	for i := 0; i < v.Len(); i++ {
		if v.At(i) != w.At(i) {
			t.Fatalf("[%d] view %v != between %v", i, v.At(i), w.At(i))
		}
	}
	// Open-ended and empty windows.
	if got := s.View(time.Time{}, to).Len(); got != s.Between(time.Time{}, to).Len() {
		t.Fatalf("zero-from view len %d mismatch", got)
	}
	if got := s.View(to, from).Len(); got != 0 {
		t.Fatalf("inverted window view len %d, want 0", got)
	}
}
