package timeseries

import (
	"math"
	"time"
)

// View is a zero-copy window over a Series' columns. It shares storage with
// the series it was taken from and is valid only until that series is next
// mutated (Append, DropBefore, Reset); the metric store therefore only
// exposes views under the owning entry's lock. A View is a value — slicing
// and passing it copies two slice headers, never the data.
type View struct {
	times []int64
	vals  []float64
}

// Len reports the number of points in the view.
func (v View) Len() int { return len(v.times) }

// At returns the i-th point.
func (v View) At(i int) Point { return Point{T: nanoTime(v.times[i]), V: v.vals[i]} }

// NanoAt returns the i-th timestamp in unix nanoseconds without
// reconstructing a time.Time.
func (v View) NanoAt(i int) int64 { return v.times[i] }

// ValueAt returns the i-th value.
func (v View) ValueAt(i int) float64 { return v.vals[i] }

// Last returns the most recent point and true, or a zero point and false
// for an empty view.
func (v View) Last() (Point, bool) {
	if len(v.times) == 0 {
		return Point{}, false
	}
	return v.At(len(v.times) - 1), true
}

// Values exposes the underlying value column. The slice is shared with the
// series — callers must treat it as read-only and must not retain it past
// the view's validity window; use CopyValues or Materialize for an owned
// copy.
func (v View) Values() []float64 { return v.vals }

// CopyValues appends the view's values to dst and returns the extended
// slice, so a caller-held buffer is reused across windows.
func (v View) CopyValues(dst []float64) []float64 { return append(dst, v.vals...) }

// CopyColumns appends the view's raw columns to ts and vs and returns the
// extended slices — the allocation-light export path used by snapshots.
func (v View) CopyColumns(ts []int64, vs []float64) ([]int64, []float64) {
	return append(ts, v.times...), append(vs, v.vals...)
}

// Slice narrows the view to points p with from <= p.T < to by binary
// search, still without copying.
func (v View) Slice(from, to time.Time) View {
	lo := searchNanos(v.times, unixNano(from))
	hi := searchNanos(v.times, unixNano(to))
	if hi < lo { // inverted window selects nothing
		hi = lo
	}
	return View{times: v.times[lo:hi], vals: v.vals[lo:hi]}
}

func searchNanos(times []int64, tn int64) int {
	lo, hi := 0, len(times)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if times[mid] < tn {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Materialize copies the view into an independent Series.
func (v View) Materialize() *Series {
	s := New(len(v.times))
	s.times = append(s.times, v.times...)
	s.vals = append(s.vals, v.vals...)
	return s
}

// Aggregate computes the statistic over the view's values in one pass,
// allocation-free for the streaming aggregations; percentiles sort into sc
// (nil sc allocates a throwaway buffer). Semantics match Agg.Apply: NaN for
// an empty view except AggCount and AggSum, which are 0.
func (v View) Aggregate(a Agg, sc *AggScratch) float64 {
	return a.ApplyWith(v.vals, sc)
}

// bucketAcc accumulates one resample bucket without materialising it, for
// the streaming (non-percentile) aggregations.
type bucketAcc struct {
	n        int
	sum      float64
	min, max float64
}

func (b *bucketAcc) add(v float64) {
	if b.n == 0 {
		b.min, b.max = v, v
	} else {
		if v < b.min {
			b.min = v
		}
		if v > b.max {
			b.max = v
		}
	}
	b.n++
	b.sum += v
}

func (b *bucketAcc) result(a Agg) float64 {
	switch a {
	case AggCount:
		return float64(b.n)
	case AggSum:
		return b.sum
	}
	if b.n == 0 {
		return math.NaN()
	}
	switch a {
	case AggMean:
		return b.sum / float64(b.n)
	case AggMin:
		return b.min
	case AggMax:
		return b.max
	default:
		return math.NaN()
	}
}

// Resample buckets the view into consecutive windows of length period
// anchored at the first point's timestamp and aggregates each bucket,
// skipping empty buckets; the resulting point carries the bucket start
// time. It allocates only the output series.
func (v View) Resample(period time.Duration, agg Agg) *Series {
	return v.ResampleInto(New(0), period, agg, nil)
}

// ResampleInto is Resample writing into dst (which is Reset first and
// returned), with sc reused for percentile buckets — the allocation-free
// aggregation path for callers that hold both across queries. The
// streaming aggregations (mean, sum, min, max, count) never touch sc;
// percentile buckets are gathered into sc and sorted in place.
func (v View) ResampleInto(dst *Series, period time.Duration, agg Agg, sc *AggScratch) *Series {
	if period <= 0 {
		panic("timeseries: resample period must be positive")
	}
	dst.Reset()
	if len(v.times) == 0 {
		return dst
	}
	p, isPct := agg.percentile()
	anchor := v.times[0]
	per := int64(period)
	bucketIdx := int64(0)
	var acc bucketAcc
	start := 0 // first index of the current bucket (percentile path)
	flushAt := func(i int) {
		if isPct {
			if i == start {
				return
			}
			dst.times = append(dst.times, anchor+bucketIdx*per)
			dst.vals = append(dst.vals, sc.percentile(v.vals[start:i], p))
			start = i
			return
		}
		if acc.n == 0 {
			return
		}
		dst.times = append(dst.times, anchor+bucketIdx*per)
		dst.vals = append(dst.vals, acc.result(agg))
		acc = bucketAcc{}
	}
	for i, tn := range v.times {
		idx := (tn - anchor) / per
		if idx != bucketIdx {
			flushAt(i)
			bucketIdx = idx
		}
		if !isPct {
			acc.add(v.vals[i])
		}
	}
	flushAt(len(v.times))
	return dst
}
