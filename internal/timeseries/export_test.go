package timeseries

// CopiedPoints exposes the compaction copy counter to the
// amortised-truncation regression test.
func CopiedPoints(s *Series) int64 { return s.copied }

// Head exposes the live-region offset for white-box assertions.
func Head(s *Series) int { return s.head }
