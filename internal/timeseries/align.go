package timeseries

import "time"

// Bucket alignment for cross-series joins. Resample anchors buckets at a
// view's first point, which is right for single-series statistics but
// useless for joining two series: each side's anchor differs, so "the
// 10:00:00–10:00:10 bucket" is not the same interval on both sides. Align
// anchors buckets at the unix epoch instead — bucket k covers
// [k*period, (k+1)*period) — so any two series bucketed at the same period
// agree on bucket boundaries and can be merge-joined on bucket start
// times. The query engine's resample operator and join operator are built
// on it.

// floorDivInt64 is floor(a/b) for b > 0 — ordinary Go division truncates
// toward zero, which would shift pre-1970 timestamps into the wrong
// bucket.
func floorDivInt64(a, b int64) int64 {
	q := a / b
	if a%b != 0 && a < 0 {
		q--
	}
	return q
}

// BucketStart returns the epoch-aligned start (unix nanoseconds) of the
// period bucket containing the unix-nano timestamp tn.
func BucketStart(tn int64, period time.Duration) int64 {
	if period <= 0 {
		panic("timeseries: align period must be positive")
	}
	return floorDivInt64(tn, int64(period)) * int64(period)
}

// AlignIter walks a view's epoch-aligned period buckets in time order,
// yielding each non-empty bucket as a zero-copy sub-view. It shares the
// view's storage and validity window (use it only under the owning
// entry's lock, like the view itself) and allocates nothing.
type AlignIter struct {
	v   View
	per int64
	i   int // index of the first point not yet yielded
}

// Align returns an iterator over v's non-empty epoch-aligned buckets of
// length period. Points are assumed time-ordered (the store guarantees
// it), so each bucket is a contiguous sub-view.
func (v View) Align(period time.Duration) AlignIter {
	if period <= 0 {
		panic("timeseries: align period must be positive")
	}
	return AlignIter{v: v, per: int64(period)}
}

// Next returns the next non-empty bucket: its epoch-aligned start time in
// unix nanoseconds and the zero-copy sub-view of its points. ok is false
// when the view is exhausted.
func (it *AlignIter) Next() (start int64, sub View, ok bool) {
	n := it.v.Len()
	if it.i >= n {
		return 0, View{}, false
	}
	bucket := floorDivInt64(it.v.times[it.i], it.per)
	j := it.i + 1
	for j < n && floorDivInt64(it.v.times[j], it.per) == bucket {
		j++
	}
	sub = View{times: it.v.times[it.i:j], vals: it.v.vals[it.i:j]}
	it.i = j
	return bucket * it.per, sub, true
}
