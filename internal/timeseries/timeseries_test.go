package timeseries

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2017, 8, 28, 0, 0, 0, 0, time.UTC)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestAppendOrdering(t *testing.T) {
	s := New(0)
	if err := s.Append(t0, 1); err != nil {
		t.Fatalf("first append: %v", err)
	}
	if err := s.Append(t0.Add(time.Second), 2); err != nil {
		t.Fatalf("ordered append: %v", err)
	}
	if err := s.Append(t0, 3); err == nil {
		t.Fatal("out-of-order append did not error")
	}
	// Equal timestamps are allowed (multiple observations in one tick).
	if err := s.Append(t0.Add(time.Second), 4); err != nil {
		t.Fatalf("equal-timestamp append: %v", err)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
}

func TestLastAndValues(t *testing.T) {
	s := FromValues(t0, time.Second, []float64{1, 2, 3})
	p, ok := s.Last()
	if !ok || p.V != 3 {
		t.Fatalf("Last = %+v ok=%v, want V=3", p, ok)
	}
	vs := s.Values()
	if len(vs) != 3 || vs[0] != 1 || vs[2] != 3 {
		t.Fatalf("Values = %v", vs)
	}
	if _, ok := New(0).Last(); ok {
		t.Fatal("Last on empty series reported ok")
	}
}

func TestBetween(t *testing.T) {
	s := FromValues(t0, time.Minute, []float64{0, 1, 2, 3, 4, 5})
	sub := s.Between(t0.Add(time.Minute), t0.Add(4*time.Minute))
	want := []float64{1, 2, 3}
	got := sub.Values()
	if len(got) != len(want) {
		t.Fatalf("Between returned %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Between returned %v, want %v", got, want)
		}
	}
}

func TestTailN(t *testing.T) {
	s := FromValues(t0, time.Second, []float64{1, 2, 3, 4})
	if got := s.TailN(2).Values(); len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Fatalf("TailN(2) = %v", got)
	}
	if got := s.TailN(10).Values(); len(got) != 4 {
		t.Fatalf("TailN(10) len = %d, want 4", len(got))
	}
}

func TestResampleMeanAndSum(t *testing.T) {
	// Two points per minute.
	s := New(0)
	for i := 0; i < 6; i++ {
		s.MustAppend(t0.Add(time.Duration(i)*30*time.Second), float64(i))
	}
	mean := s.Resample(time.Minute, AggMean)
	if mean.Len() != 3 {
		t.Fatalf("resample mean len = %d, want 3", mean.Len())
	}
	if got := mean.At(0).V; !approx(got, 0.5, 1e-12) {
		t.Fatalf("bucket 0 mean = %v, want 0.5", got)
	}
	sum := s.Resample(time.Minute, AggSum)
	if got := sum.At(2).V; !approx(got, 9, 1e-12) {
		t.Fatalf("bucket 2 sum = %v, want 9", got)
	}
}

func TestResampleSkipsEmptyBuckets(t *testing.T) {
	s := New(0)
	s.MustAppend(t0, 1)
	s.MustAppend(t0.Add(5*time.Minute), 2)
	r := s.Resample(time.Minute, AggMean)
	if r.Len() != 2 {
		t.Fatalf("resample len = %d, want 2 (empty buckets skipped)", r.Len())
	}
	if !r.At(1).T.Equal(t0.Add(5 * time.Minute)) {
		t.Fatalf("second bucket time = %v, want %v", r.At(1).T, t0.Add(5*time.Minute))
	}
}

func TestEWMA(t *testing.T) {
	s := FromValues(t0, time.Second, []float64{10, 0, 0, 0})
	e := s.EWMA(0.5)
	want := []float64{10, 5, 2.5, 1.25}
	for i, w := range want {
		if got := e.At(i).V; !approx(got, w, 1e-12) {
			t.Fatalf("EWMA[%d] = %v, want %v", i, got, w)
		}
	}
}

func TestStats(t *testing.T) {
	vs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(vs); !approx(got, 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", got)
	}
	if got := StdDev(vs); !approx(got, 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", got)
	}
	if got := Min(vs); got != 2 {
		t.Fatalf("Min = %v", got)
	}
	if got := Max(vs); got != 9 {
		t.Fatalf("Max = %v", got)
	}
	if got := Percentile(vs, 50); !approx(got, 4.5, 1e-12) {
		t.Fatalf("p50 = %v, want 4.5", got)
	}
	if got := Percentile(vs, 0); got != 2 {
		t.Fatalf("p0 = %v, want 2", got)
	}
	if got := Percentile(vs, 100); got != 9 {
		t.Fatalf("p100 = %v, want 9", got)
	}
}

func TestStatsEmpty(t *testing.T) {
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Fatal("empty-slice stats should be NaN")
	}
	if Sum(nil) != 0 {
		t.Fatal("Sum(nil) != 0")
	}
	if AggCount.Apply(nil) != 0 {
		t.Fatal("AggCount on empty != 0")
	}
}

func TestCorrelationPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if got := Correlation(x, y); !approx(got, 1, 1e-12) {
		t.Fatalf("Correlation = %v, want 1", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Correlation(x, neg); !approx(got, -1, 1e-12) {
		t.Fatalf("Correlation = %v, want -1", got)
	}
}

func TestCorrelationDegenerate(t *testing.T) {
	if !math.IsNaN(Correlation([]float64{1, 1, 1}, []float64{1, 2, 3})) {
		t.Fatal("zero-variance correlation should be NaN")
	}
	if !math.IsNaN(Correlation([]float64{1}, []float64{2})) {
		t.Fatal("single-point correlation should be NaN")
	}
}

func TestAggNames(t *testing.T) {
	cases := map[Agg]string{
		AggMean: "Average", AggSum: "Sum", AggMin: "Minimum",
		AggMax: "Maximum", AggCount: "SampleCount", AggP90: "p90",
	}
	for a, want := range cases {
		if a.String() != want {
			t.Errorf("%v.String() = %q, want %q", int(a), a.String(), want)
		}
	}
}

func TestAlignedValues(t *testing.T) {
	x := FromValues(t0, time.Minute, []float64{1, 2, 3, 4, 5, 6})
	y := FromValues(t0.Add(2*time.Minute), time.Minute, []float64{30, 40, 50, 60, 70, 80})
	xs, ys := AlignedValues(x, y, time.Minute)
	if len(xs) != len(ys) {
		t.Fatalf("aligned lengths differ: %d vs %d", len(xs), len(ys))
	}
	if len(xs) != 4 {
		t.Fatalf("aligned length = %d, want 4 (overlap minutes 2..5)", len(xs))
	}
	if got := Correlation(xs, ys); !approx(got, 1, 1e-9) {
		t.Fatalf("aligned correlation = %v, want 1", got)
	}
}

func TestAlignedValuesNoOverlap(t *testing.T) {
	x := FromValues(t0, time.Minute, []float64{1, 2})
	y := FromValues(t0.Add(time.Hour), time.Minute, []float64{3, 4})
	xs, ys := AlignedValues(x, y, time.Minute)
	if xs != nil || ys != nil {
		t.Fatalf("non-overlapping align = %v %v, want nil nil", xs, ys)
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		vs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vs = append(vs, math.Mod(v, 1e6))
			}
		}
		if len(vs) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			cur := Percentile(vs, p)
			if cur < prev-1e-9 {
				return false
			}
			if cur < Min(vs)-1e-9 || cur > Max(vs)+1e-9 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: correlation is symmetric and within [-1, 1].
func TestCorrelationBoundsProperty(t *testing.T) {
	f := func(pairs []struct{ X, Y int16 }) bool {
		if len(pairs) < 3 {
			return true
		}
		xs := make([]float64, len(pairs))
		ys := make([]float64, len(pairs))
		for i, p := range pairs {
			xs[i] = float64(p.X)
			ys[i] = float64(p.Y)
		}
		r := Correlation(xs, ys)
		if math.IsNaN(r) {
			return true // degenerate variance
		}
		if r < -1-1e-9 || r > 1+1e-9 {
			return false
		}
		return approx(r, Correlation(ys, xs), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: EWMA output stays within the min/max envelope of its input.
func TestEWMAEnvelopeProperty(t *testing.T) {
	f := func(raw []int8, alphaRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		alpha := 0.01 + float64(alphaRaw%100)/100.0 // (0,1]
		vs := make([]float64, len(raw))
		for i, v := range raw {
			vs[i] = float64(v)
		}
		s := FromValues(t0, time.Second, vs)
		e := s.EWMA(alpha)
		lo, hi := Min(vs), Max(vs)
		for i := 0; i < e.Len(); i++ {
			v := e.At(i).V
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
