package timeseries

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// naiveAlign is the obviously-correct materializing reference: bucket
// every point through BucketStart into fresh slices, preserving order.
type naiveBucket struct {
	start int64
	times []int64
	vals  []float64
}

func naiveAlign(v View, period time.Duration) []naiveBucket {
	var out []naiveBucket
	for i := 0; i < v.Len(); i++ {
		start := BucketStart(v.NanoAt(i), period)
		if len(out) == 0 || out[len(out)-1].start != start {
			out = append(out, naiveBucket{start: start})
		}
		b := &out[len(out)-1]
		b.times = append(b.times, v.NanoAt(i))
		b.vals = append(b.vals, v.ValueAt(i))
	}
	return out
}

// TestAlignMatchesNaive is the property test for the Align iterator:
// across random series (including pre-epoch timestamps, duplicates, and
// sparse gaps) and random periods, the zero-copy iterator must yield
// bit-for-bit the buckets the naive materializing implementation builds.
func TestAlignMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(300)
		period := time.Duration(1+rng.Intn(50)) * time.Second
		// Start some trials before the epoch to exercise floor division.
		tn := int64(rng.Intn(2_000_000)-1_000_000) * int64(time.Second)
		s := New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(4) > 0 { // duplicates stay in one bucket
				tn += int64(rng.Intn(30)) * int64(time.Second)
			}
			s.MustAppend(time.Unix(0, tn).UTC(), rng.NormFloat64()*1e3)
		}
		v := s.ViewAll()

		want := naiveAlign(v, period)
		it := v.Align(period)
		got := 0
		for {
			start, sub, ok := it.Next()
			if !ok {
				break
			}
			if got >= len(want) {
				t.Fatalf("trial %d: iterator yielded more than %d buckets", trial, len(want))
			}
			w := want[got]
			if start != w.start {
				t.Fatalf("trial %d bucket %d: start %d, want %d", trial, got, start, w.start)
			}
			if sub.Len() != len(w.times) {
				t.Fatalf("trial %d bucket %d: %d points, want %d", trial, got, sub.Len(), len(w.times))
			}
			for i := 0; i < sub.Len(); i++ {
				if sub.NanoAt(i) != w.times[i] {
					t.Fatalf("trial %d bucket %d point %d: ts %d, want %d", trial, got, i, sub.NanoAt(i), w.times[i])
				}
				if math.Float64bits(sub.ValueAt(i)) != math.Float64bits(w.vals[i]) {
					t.Fatalf("trial %d bucket %d point %d: value %x, want %x",
						trial, got, i, math.Float64bits(sub.ValueAt(i)), math.Float64bits(w.vals[i]))
				}
			}
			got++
		}
		if got != len(want) {
			t.Fatalf("trial %d: iterator yielded %d buckets, want %d", trial, got, len(want))
		}
	}
}

// TestAlignBucketBoundaries pins the epoch anchoring: two series with
// different first-point offsets must land their overlapping points in
// identical buckets — the invariant Resample (first-point anchored)
// does not provide and the join operator needs.
func TestAlignBucketBoundaries(t *testing.T) {
	base := time.Unix(1000, 0).UTC()
	a := FromValues(base.Add(3*time.Second), time.Second, []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	b := FromValues(base.Add(5*time.Second), time.Second, []float64{10, 20, 30, 40, 50, 60, 70, 80})

	starts := func(s *Series) []int64 {
		var out []int64
		it := s.ViewAll().Align(10 * time.Second)
		for {
			start, _, ok := it.Next()
			if !ok {
				return out
			}
			out = append(out, start)
		}
	}
	sa, sb := starts(a), starts(b)
	if len(sa) != 2 || len(sb) != 2 {
		t.Fatalf("bucket counts %d/%d, want 2/2", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("bucket %d: %d vs %d — alignment is not shared", i, sa[i], sb[i])
		}
		if sa[i]%int64(10*time.Second) != 0 {
			t.Fatalf("bucket %d start %d not epoch-aligned", i, sa[i])
		}
	}
}

func TestAlignEmptyView(t *testing.T) {
	it := New(0).ViewAll().Align(time.Second)
	if _, _, ok := it.Next(); ok {
		t.Fatal("empty view yielded a bucket")
	}
}
