package analysis

import (
	"os/exec"
	"testing"
)

// TestRepositoryIsClean runs the whole flowervet suite over the
// repository's own source. The repo must stay flowervet-clean at HEAD:
// every wall-clock read carries a reasoned pragma, the per-tick packages
// stay on the metric handle tier, the lock graph is acyclic and respects
// the documented orders, no goroutine-owning resource is silently
// dropped, and the wire surface is fully tagged. A failure here is a
// regression of one of those contracts, not a flaky test.
func TestRepositoryIsClean(t *testing.T) {
	requireGoTool(t)
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatalf("ModuleRoot: %v", err)
	}
	pkgs, err := Load(root, "./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("Load returned no packages")
	}
	findings := Run(pkgs, Analyzers())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// requireGoTool skips driver-backed tests when the go command is not on
// PATH (the driver shells out to `go list`).
func requireGoTool(t *testing.T) {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not available:", err)
	}
}
