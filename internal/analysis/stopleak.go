package analysis

import (
	"go/ast"
	"go/types"
)

// stopLeak checks that every created goroutine-owning resource reaches
// its terminal call. PR 5's review caught two instances of this exact
// class by hand — a pacer ticket orphaned by a racing Delete and a
// privately-created scheduler never drained by Close — so the rule is
// now mechanical: a Scheduler, periodic Ticket, event-bus Subscription,
// lab Engine or flow Registry constructed into a local variable must
// either have Stop/Close called somewhere in the function (directly,
// deferred, or inside a closure it is captured by) or visibly escape —
// returned, stored into a field/global/container, or passed to another
// function that takes over ownership. Discarding one with `_`, or a bare
// constructor call whose result nobody keeps, is always a leak.
//
// The check is intentionally flow-insensitive about *which* paths reach
// the cleanup: its target is the resource nobody ever stops, not the
// early-return that skips a defer (the race detector and leak tests own
// that half).
type stopLeak struct{}

func newStopLeak() *stopLeak { return &stopLeak{} }

func (*stopLeak) Name() string { return "stopleak" }

func (*stopLeak) Doc() string {
	return "a created Scheduler/Ticket/Subscription/Engine/Registry must reach Stop/Close or escape (returned, stored, handed off) — never be silently dropped"
}

// tracked maps constructor → the terminal method its result must reach.
// Keys are the constructor's types.Func full name.
var tracked = map[string]trackedResource{
	"repro/internal/sched.New":                   {kind: "sched.Scheduler", cleanup: "Close"},
	"(*repro/internal/sched.Scheduler).Periodic": {kind: "periodic sched.Ticket", cleanup: "Stop"},
	"(*repro/internal/eventbus.Bus).Subscribe":   {kind: "eventbus.Subscription", cleanup: "Close"},
	"repro/internal/lab.NewEngine":               {kind: "lab.Engine", cleanup: "Close"},
	"repro/internal/lab.NewEngineOn":             {kind: "lab.Engine", cleanup: "Close"},
	"repro/internal/registry.New":                {kind: "registry.Registry", cleanup: "Close"},
	// The WAL handles hold open file descriptors with unsynced state; a
	// dropped handle is acknowledged-but-maybe-not-durable mutations.
	"repro/internal/persist.NewWAL":         {kind: "persist.WAL", cleanup: "Close"},
	"repro/internal/persist.OpenFileWAL":    {kind: "persist.WAL", cleanup: "Close"},
	"repro/internal/persist.OpenControlLog": {kind: "persist.ControlLog", cleanup: "Close"},
}

type trackedResource struct {
	kind    string
	cleanup string
}

func (a *stopLeak) Run(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			a.checkFunc(p, fd)
			return true
		})
	}
}

// trackedCall resolves a call expression to a tracked constructor.
func (a *stopLeak) trackedCall(p *Pass, call *ast.CallExpr) (trackedResource, bool) {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		obj = p.Info.Uses[fun.Sel]
	case *ast.Ident:
		obj = p.Info.Uses[fun]
	default:
		return trackedResource{}, false
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return trackedResource{}, false
	}
	r, ok := tracked[fn.FullName()]
	if !ok || r.cleanup == "" {
		return trackedResource{}, false
	}
	return r, true
}

func (a *stopLeak) checkFunc(p *Pass, fd *ast.FuncDecl) {
	// Pass 1: find creations bound to local identifiers (or discarded).
	type binding struct {
		obj types.Object
		res trackedResource
		pos ast.Node
	}
	var bindings []binding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			// A bare constructor call: the result is dropped on the floor.
			if call, ok := n.X.(*ast.CallExpr); ok {
				if r, ok := a.trackedCall(p, call); ok {
					p.Reportf(call.Pos(), "result of %s constructor discarded — it owns goroutines/bus state; call %s, or keep the handle", r.kind, r.cleanup)
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				r, ok := a.trackedCall(p, call)
				if !ok {
					continue
				}
				// With a multi-value RHS (t, err := ...), the resource is
				// the first LHS; with parallel assignment, position i.
				idx := i
				if len(n.Rhs) == 1 {
					idx = 0
				}
				if idx >= len(n.Lhs) {
					continue
				}
				id, ok := n.Lhs[idx].(*ast.Ident)
				if !ok {
					continue // field/index destination: stored, escapes
				}
				if id.Name == "_" {
					p.Reportf(call.Pos(), "%s assigned to _ — it owns goroutines/bus state and can now never be stopped; keep the handle and call %s", r.kind, r.cleanup)
					continue
				}
				obj := p.Info.Defs[id]
				if obj == nil {
					obj = p.Info.Uses[id]
				}
				if obj == nil {
					continue
				}
				bindings = append(bindings, binding{obj: obj, res: r, pos: call})
			}
		case *ast.ValueSpec:
			for i, rhs := range n.Values {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				r, ok := a.trackedCall(p, call)
				if !ok || i >= len(n.Names) {
					continue
				}
				id := n.Names[i]
				if id.Name == "_" {
					p.Reportf(call.Pos(), "%s assigned to _ — it owns goroutines/bus state and can now never be stopped; keep the handle and call %s", r.kind, r.cleanup)
					continue
				}
				if obj := p.Info.Defs[id]; obj != nil {
					bindings = append(bindings, binding{obj: obj, res: r, pos: call})
				}
			}
		}
		return true
	})

	// Pass 2: for each binding, scan the whole function for a cleanup
	// call or an escape of the variable.
	for _, b := range bindings {
		if !a.cleanedOrEscapes(p, fd.Body, b.obj, b.res) {
			p.Reportf(b.pos.Pos(), "%s is created here but %s is never reached and it never escapes this function — stop it on every path or hand it off", b.res.kind, b.res.cleanup)
		}
	}
}

// cleanedOrEscapes reports whether obj's resource reaches cleanup or
// escapes the function.
func (a *stopLeak) cleanedOrEscapes(p *Pass, body *ast.BlockStmt, obj types.Object, res trackedResource) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			// v.Cleanup(...) — directly, deferred, or in a goroutine or
			// captured closure (ast.Inspect reaches all of them).
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == res.cleanup {
				if id, ok := sel.X.(*ast.Ident); ok && p.Info.Uses[id] == obj {
					found = true
					return false
				}
			}
			// v passed as an argument: ownership handed off.
			for _, arg := range n.Args {
				if a.mentions(p, arg, obj) {
					found = true
					return false
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if a.mentions(p, r, obj) {
					found = true
					return false
				}
			}
		case *ast.AssignStmt:
			// v on the RHS of any assignment: stored into a field, global,
			// or container that outlives the function, or rebound to
			// another name (aliasing — conservatively an escape).
			for _, rhs := range n.Rhs {
				if _, isCall := rhs.(*ast.CallExpr); isCall {
					continue // the creating assignment itself
				}
				if a.mentions(p, rhs, obj) {
					found = true
					return false
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				if a.mentions(p, elt, obj) {
					found = true
					return false
				}
			}
		case *ast.SendStmt:
			if a.mentions(p, n.Value, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// mentions reports whether expr references obj.
func (a *stopLeak) mentions(p *Pass, expr ast.Expr, obj types.Object) bool {
	hit := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.Info.Uses[id] == obj {
			hit = true
			return false
		}
		return !hit
	})
	return hit
}
