package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// listPackage is the subset of `go list -json` output the driver consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Export     string
	Error      *struct{ Err string }
}

// Load resolves patterns with `go list -json -deps -export` run in dir,
// then parses and type-checks every matched module package (dependencies —
// including the standard library — are imported from the gc export data
// the go command produced, so no package is ever type-checked twice and
// the engine needs nothing beyond the standard toolchain). Test files are
// not loaded: the invariants govern shipped code, and *_test.go is exempt
// by design.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-json", "-deps", "-export", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}

	exports := map[string]string{}
	var targets []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decode go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			cp := p
			targets = append(targets, &cp)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, t := range targets {
		pkg, err := check(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// check parses and type-checks one module package.
func check(fset *token.FileSet, imp types.Importer, lp *listPackage) (*Package, error) {
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck %s: %w", lp.ImportPath, err)
	}
	pkg := &Package{Path: lp.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info}
	for _, f := range files {
		pkg.scanPragmas(f)
	}
	return pkg, nil
}

// ModuleRoot walks up from dir to the enclosing go.mod, the directory Load
// patterns resolve against.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod at or above %s", dir)
		}
		dir = parent
	}
}
