// Package lockok is flowervet testdata: two locks always nested in the
// same order, including through a call — acyclic, so no findings.
package lockok

import "sync"

// Tree holds a parent lock that is always taken before the child lock.
type Tree struct {
	parent sync.Mutex
	child  sync.Mutex
}

// Both takes parent, then child through a call.
func (t *Tree) Both() {
	t.parent.Lock()
	defer t.parent.Unlock()
	t.touch()
}

func (t *Tree) touch() {
	t.child.Lock()
	defer t.child.Unlock()
}

// ChildOnly takes the child lock alone, which imposes no order.
func (t *Tree) ChildOnly() {
	t.child.Lock()
	t.child.Unlock()
}
