// Package wallclockok is flowervet testdata: pure time arithmetic is
// fine anywhere, and a wall-clock read with a stated reason is allowed.
package wallclockok

import "time"

// Epoch is constructed, not read — allowed anywhere.
func Epoch() time.Time {
	return time.Date(2017, 8, 28, 0, 0, 0, 0, time.UTC).Add(time.Minute)
}

// Stamp documents why it wants wall time.
func Stamp() time.Time {
	return time.Now() //flowervet:allow wallclock(testdata: journal timestamps are wall time by design)
}
