// Package hotpathbad is flowervet testdata: a package opted onto the
// per-tick path that calls the map-keyed store wrappers and resolves
// metric identities inside loops.
//
//flowervet:hotpath
package hotpathbad

import (
	"fmt"
	"time"

	"repro/internal/metricstore"
)

// PublishTick publishes through the map-keyed wrapper.
func PublishTick(s *metricstore.Store, at time.Time, v float64) error {
	return s.Put("Ingestion/Stream", "IncomingRecords", nil, at, v) // want "map-keyed Store.Put"
}

// ReadLoop resolves a handle per iteration, building the key with
// fmt.Sprintf each time.
func ReadLoop(s *metricstore.Store, names []string) int {
	n := 0
	for _, name := range names {
		if _, ok := s.Lookup("Ingestion/Stream", fmt.Sprintf("m-%s", name), nil); ok { // want "Store.Lookup inside a loop" "fmt.Sprintf builds part of a metric identity"
			n++
		}
	}
	return n
}

// IDsPerTick builds metric identities per iteration by concatenation.
func IDsPerTick(keys []string) []metricstore.MetricID {
	var out []metricstore.MetricID
	for _, k := range keys {
		out = append(out, metricstore.MetricID{Namespace: "ns", Name: "m-" + k}) // want "MetricID built inside a loop" "string concatenation"
	}
	return out
}
