// Telemetry-shaped wire structs done wrong: an exposition type with an
// untagged field leaks Go identifier casing onto the wire, and an
// interface-typed stage value makes the schema unknowable.
//
//flowervet:wire
package wirejsonbad

// TickTrace mirrors the trace exposition shape.
type TickTrace struct {
	ID         uint64       `json:"id"`
	FlowID     string       // want "has no json tag"
	TotalNanos int64        `json:"total_nanos"`
	Stages     []TraceStage `json:"stages"`
}

// TraceStage is one timed segment of a tick trace.
type TraceStage struct {
	Name  string `json:"name"`
	Nanos any    `json:"nanos"` // want "interface-typed"
}
