// Package wirejsonbad is flowervet testdata: a wire-marked file with an
// untagged exported field and an interface-typed field.
//
//flowervet:wire
package wirejsonbad

// Event crosses the wire.
type Event struct {
	Seq  uint64 `json:"seq"`
	Kind string // want "has no json tag"
	Data any    `json:"data"` // want "interface-typed"
}
