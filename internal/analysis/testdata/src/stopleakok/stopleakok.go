// Package stopleakok is flowervet testdata: every created resource either
// reaches its terminal call or visibly escapes to a new owner.
package stopleakok

import (
	"time"

	"repro/internal/eventbus"
	"repro/internal/sched"
)

// DeferStop stops the ticket on scope exit.
func DeferStop(s *sched.Scheduler) error {
	tk, err := s.Periodic("job", sched.ClassFlow, time.Second, func(int) error { return nil }, nil)
	if err != nil {
		return err
	}
	defer tk.Stop()
	return nil
}

// Handoff returns the subscription: the caller owns it now.
func Handoff(b *eventbus.Bus) *eventbus.Subscription {
	return b.Subscribe(16, 0, nil)
}

// Keep stores the scheduler into a struct that outlives the call.
type Keep struct {
	s *sched.Scheduler
}

// NewKeep escapes the scheduler into the returned struct.
func NewKeep() *Keep {
	s := sched.New(sched.Config{})
	return &Keep{s: s}
}
