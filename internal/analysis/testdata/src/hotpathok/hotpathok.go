// Package hotpathok is flowervet testdata: a per-tick package doing it
// right — the handle is resolved once at build time and the loop appends
// through it.
//
//flowervet:hotpath
package hotpathok

import (
	"time"

	"repro/internal/metricstore"
)

// Publisher owns its handle; the identity was interned at build time.
type Publisher struct {
	h *metricstore.Handle
}

// NewPublisher resolves the handle once, outside any loop.
func NewPublisher(s *metricstore.Store) (*Publisher, error) {
	h, err := s.Handle("Ingestion/Stream", "IncomingRecords", nil)
	if err != nil {
		return nil, err
	}
	return &Publisher{h: h}, nil
}

// Tick appends per tick through the prebuilt handle — no keys, no maps.
func (p *Publisher) Tick(at time.Time, vs []float64) {
	for _, v := range vs {
		p.h.MustAppend(at, v)
		at = at.Add(time.Second)
	}
}
