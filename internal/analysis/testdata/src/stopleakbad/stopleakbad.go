// Package stopleakbad is flowervet testdata: goroutine-owning resources
// created and never stopped — discarded outright, dropped into _, or
// bound but never cleaned up and never handed off.
package stopleakbad

import (
	"time"

	"repro/internal/eventbus"
	"repro/internal/sched"
)

// Discard drops a subscription on the floor.
func Discard(b *eventbus.Bus) {
	b.Subscribe(16, 0, nil) // want "discarded"
}

// Underscore can never stop what it created.
func Underscore(b *eventbus.Bus) {
	_ = b.Subscribe(16, 0, nil) // want "assigned to _"
}

// NeverStopped keeps the ticket, polls it, and never stops it.
func NeverStopped(s *sched.Scheduler) bool {
	tk, err := s.Periodic("job", sched.ClassFlow, time.Second, func(int) error { return nil }, nil) // want "Stop is never reached"
	if err != nil {
		return false
	}
	tk.Stopped()
	return true
}
