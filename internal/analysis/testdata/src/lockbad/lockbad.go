// Package lockbad is flowervet testdata: the same two locks taken in
// opposite orders — once directly and once through a call — the canonical
// deadlock the lockorder analyzer exists to catch.
package lockbad

import "sync"

// Pair holds two locks with no consistent order.
type Pair struct {
	a sync.Mutex
	b sync.Mutex
}

// AB nests b directly under a.
func (p *Pair) AB() {
	p.a.Lock()
	defer p.a.Unlock()
	p.b.Lock()
	defer p.b.Unlock()
}

// HoldALockB creates the same a→b edge through a static call, exercising
// the cross-function held-set propagation.
func (p *Pair) HoldALockB() {
	p.a.Lock()
	defer p.a.Unlock()
	p.lockB()
}

func (p *Pair) lockB() {
	p.b.Lock()
	p.b.Unlock()
}

// BA nests a under b: with AB above, the order graph now has a cycle.
func (p *Pair) BA() {
	p.b.Lock()
	defer p.b.Unlock()
	p.a.Lock() // want "lock-order cycle"
	defer p.a.Unlock()
}
