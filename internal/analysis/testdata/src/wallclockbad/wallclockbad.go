// Package wallclockbad is flowervet testdata: wall-clock reads in a
// package that is neither simtime, perfbench, cmd/* nor examples/*.
package wallclockbad

import "time"

// Stamp reads the wall clock from scheduler-driven code.
func Stamp() time.Time {
	return time.Now() // want "time.Now outside simtime"
}

// Nap blocks on the wall clock.
func Nap() {
	time.Sleep(time.Millisecond) // want "time.Sleep outside simtime"
}
