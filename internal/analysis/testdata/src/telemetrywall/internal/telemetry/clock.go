// Package telemetry is flowervet testdata: a mirror of the real
// internal/telemetry package, which owns wall-time measurement and is
// therefore exempt from the wallclock analyzer (matched by the
// "/internal/telemetry" import-path suffix — the import path here is
// testdata-prefixed, so the exact-match arm cannot apply). Every call
// below would be a finding in any other package; none carries an allow
// pragma and none may be reported.
package telemetry

import "time"

// Now reads the wall clock, pragma-free: instrument timestamps are real
// time by design.
func Now() time.Time {
	return time.Now()
}

// SinceNanos measures a real elapsed duration.
func SinceNanos(start time.Time) int64 {
	return int64(time.Since(start))
}

// Ticker schedules on the wall clock — also the telemetry plane's
// prerogative (self-scrape intervals are real seconds).
func Ticker(d time.Duration) *time.Ticker {
	return time.NewTicker(d)
}
