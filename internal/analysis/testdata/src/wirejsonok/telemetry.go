// Telemetry-shaped wire structs: the /v1/telemetry exposition types are
// wire contracts like any other — every exported field pinned by a json
// tag, histograms nested by pointer, no interface-typed fields.
//
//flowervet:wire
package wirejsonok

// MetricFamily mirrors the telemetry exposition's family shape.
type MetricFamily struct {
	Name    string   `json:"name"`
	Kind    string   `json:"kind"`
	Help    string   `json:"help,omitempty"`
	Labels  []string `json:"labels,omitempty"`
	Metrics []Metric `json:"metrics"`
}

// Metric is one series: label values plus a value or a histogram.
type Metric struct {
	LabelValues []string          `json:"label_values,omitempty"`
	Value       float64           `json:"value"`
	Histogram   *LatencyHistogram `json:"histogram,omitempty"`
}

// LatencyHistogram carries fixed-bucket latency counts in microseconds.
type LatencyHistogram struct {
	Count    uint64    `json:"count"`
	MeanUS   float64   `json:"mean_us"`
	MaxUS    float64   `json:"max_us"`
	BoundsUS []float64 `json:"bounds_us"`
	Buckets  []uint64  `json:"buckets"`
}
