// Package wirejsonok is flowervet testdata: a fully pinned wire struct —
// every exported field tagged, payload as json.RawMessage, unexported and
// opted-out fields fine.
//
//flowervet:wire
package wirejsonok

import "encoding/json"

// Event crosses the wire with its names pinned.
type Event struct {
	Seq     uint64          `json:"seq"`
	Kind    string          `json:"kind,omitempty"`
	Payload json.RawMessage `json:"payload"`
	Hidden  bool            `json:"-"`
	local   int
}

// keep the unexported field from tripping unused-vet heuristics.
func (e *Event) bump() { e.local++ }
