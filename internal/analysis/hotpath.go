package analysis

import (
	"go/ast"
	"go/types"
)

// hotPath enforces the metric plane's two-tier API split on the packages
// that publish or read metrics every simulation tick. The handle tier
// (Store.Handle/Lookup once at build time, Handle.Append/Stat/... per
// tick) is allocation-free; the map-keyed compatibility wrappers rebuild
// the canonical key from the dimension map on every call. One wrapper
// call inside a tick is invisible in tests and a steady allocation+lock
// tax at a million flows — the exact hot/cold separation Polynesia
// argues must be enforced, not hoped for.
type hotPath struct{}

func newHotPath() *hotPath { return &hotPath{} }

func (*hotPath) Name() string { return "hotpath" }

func (*hotPath) Doc() string {
	return "per-tick packages may not call map-keyed metricstore wrappers nor resolve handles / build MetricIDs inside loops — Handle/Lookup at build time only"
}

// hotPathPackages are the packages on the per-tick path: every simulated
// platform publisher plus the control loop and the simulation harness
// that drives them — and the query engine, whose executor runs under
// entry locks while pacers append, so per-row resolution or map-keyed
// reads there would stall every writer.
var hotPathPackages = map[string]bool{
	"repro/internal/stream":   true,
	"repro/internal/compute":  true,
	"repro/internal/kvstore":  true,
	"repro/internal/workload": true,
	"repro/internal/billing":  true,
	"repro/internal/control":  true,
	"repro/internal/sim":      true,
	"repro/internal/query":    true,
}

// storeWrappers are the map-keyed compatibility methods of
// metricstore.Store, banned on the hot path outright.
var storeWrappers = map[string]bool{
	"Put": true, "MustPut": true, "GetStatistics": true,
	"Latest": true, "Raw": true,
}

// storeResolvers intern a metric identity; legal on the hot path only
// outside loops (resolve once, then append/read through the handle).
var storeResolvers = map[string]bool{
	"Handle": true, "MustHandle": true, "Lookup": true,
}

const metricstorePath = "repro/internal/metricstore"

func (a *hotPath) Run(p *Pass) {
	if !hotPathPackages[p.Path] && !p.hotpathMarked {
		return
	}
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			a.walk(p, fd.Body, 0)
		}
	}
}

// walk visits n tracking loop nesting depth.
func (a *hotPath) walk(p *Pass, n ast.Node, loopDepth int) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			if n.Init != nil {
				a.walk(p, n.Init, loopDepth)
			}
			if n.Cond != nil {
				a.walk(p, n.Cond, loopDepth)
			}
			a.walk(p, n.Body, loopDepth+1)
			return false
		case *ast.RangeStmt:
			a.walk(p, n.X, loopDepth)
			a.walk(p, n.Body, loopDepth+1)
			return false
		case *ast.CallExpr:
			a.checkCall(p, n, loopDepth)
		case *ast.CompositeLit:
			if loopDepth > 0 && a.isMetricID(p, n) {
				p.Reportf(n.Pos(), "metricstore.MetricID built inside a loop on the per-tick path — intern the identity once at build time with Store.Handle")
				a.flagKeyBuilding(p, n.Elts)
			}
		}
		return true
	})
}

func (a *hotPath) checkCall(p *Pass, call *ast.CallExpr, loopDepth int) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name
	if !storeWrappers[name] && !storeResolvers[name] {
		return
	}
	if !a.isStoreMethod(p, sel) {
		return
	}
	switch {
	case storeWrappers[name]:
		p.Reportf(call.Pos(), "map-keyed Store.%s on the per-tick path rebuilds the metric key every call — resolve a Handle at build time and use Handle.Append/Stat/Window instead", name)
	case loopDepth > 0:
		p.Reportf(call.Pos(), "Store.%s inside a loop on the per-tick path — handles are build-time references; resolve once outside the loop and reuse", name)
		a.flagKeyBuilding(p, call.Args)
	}
}

// flagKeyBuilding reports fmt.Sprintf calls and string concatenation used
// to assemble the metric identity being built per iteration — the classic
// per-tick key-construction allocation the handle tier exists to remove.
func (a *hotPath) flagKeyBuilding(p *Pass, exprs []ast.Expr) {
	for _, e := range exprs {
		ast.Inspect(e, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Sprintf" {
					if id, ok := sel.X.(*ast.Ident); ok {
						if pn, ok := p.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
							p.Reportf(n.Pos(), "fmt.Sprintf builds part of a metric identity inside a loop on the per-tick path — precompute the key outside the loop")
						}
					}
				}
			case *ast.BinaryExpr:
				// a + b on strings per iteration allocates just like Sprintf.
				if n.Op.String() == "+" {
					if t, ok := p.Info.Types[n].Type.(*types.Basic); ok && t.Kind() == types.String {
						p.Reportf(n.Pos(), "string concatenation builds part of a metric identity inside a loop on the per-tick path — precompute the key outside the loop")
						return false
					}
				}
			}
			return true
		})
	}
}

// isStoreMethod reports whether sel resolves to a method with receiver
// metricstore.Store (the handle type's methods share names like Latest;
// only the Store-keyed tier is banned).
func (a *hotPath) isStoreMethod(p *Pass, sel *ast.SelectorExpr) bool {
	s, ok := p.Info.Selections[sel]
	if !ok {
		return false
	}
	recv := s.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Store" && obj.Pkg() != nil && obj.Pkg().Path() == metricstorePath
}

// isMetricID reports whether lit constructs metricstore.MetricID.
func (a *hotPath) isMetricID(p *Pass, lit *ast.CompositeLit) bool {
	named, ok := p.Info.Types[lit].Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "MetricID" && obj.Pkg() != nil && obj.Pkg().Path() == metricstorePath
}
