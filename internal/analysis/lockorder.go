package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockOrder derives the control plane's acquired-while-held lock graph
// from Lock/RLock/defer Unlock patterns and fails on cycles or on
// violations of the documented order. The repo's real discipline, spelled
// out in struct comments until now:
//
//   - metricstore: the store lock is only ever taken to create or look up
//     entries, never while a metric's entry lock is held (SetOnPut
//     observers run under the entry lock and must not call back into the
//     store).
//   - registry: pacerMu is acquired before the flow lock when both are
//     needed — pacer lifecycle calls wait on scheduler tickets whose tick
//     functions take the flow lock through Advance, so the reverse
//     nesting is a deadlock.
//   - sched: shard and job locks are leaves with respect to the registry;
//     scheduler callbacks (pacer ticks, onStop hooks) take registry
//     locks, so a registry lock acquired under a shard or job lock closes
//     a wait cycle.
//
// The analysis is a per-function abstract interpretation of the held-lock
// set (branch-merging by intersection, loop bodies entered once), with
// acquisitions propagated through module-internal static calls. Function
// values, interface dispatch and goroutines are deliberately not
// followed: callbacks run on other goroutines with an empty held set, and
// tracing them would manufacture edges that cannot deadlock. The result
// is conservative in the useful direction — an edge it reports comes from
// a real synchronous acquire-under-hold chain in the source.
type lockOrder struct {
	summaries map[string]*loSummary
	anon      []*loSummary
}

func newLockOrder() *lockOrder {
	return &lockOrder{summaries: map[string]*loSummary{}}
}

func (*lockOrder) Name() string { return "lockorder" }

func (*lockOrder) Doc() string {
	return "derives the acquired-while-held lock graph (propagated through static calls) and fails on cycles or violations of the documented order"
}

// lockKey canonically identifies one lock: "pkgpath.Type.field" for
// struct-field mutexes, "pkgpath.name" for package-level ones,
// "pkgpath.name#pos" for function-locals.
type lockKey string

// disp renders a key for findings: repro/internal/registry.Flow.mu →
// registry.Flow.mu.
func (k lockKey) disp() string {
	s := string(k)
	s = strings.TrimPrefix(s, "repro/internal/")
	s = strings.TrimPrefix(s, "repro/")
	if i := strings.IndexByte(s, '#'); i >= 0 {
		s = s[:i] + " (local)"
	}
	return s
}

type loCall struct {
	callee string
	held   []lockKey
	pos    token.Pos
}

type loEdge struct {
	from, to lockKey
	pos      token.Pos
	via      string // "" for a direct acquire, callee name for a propagated one
}

// loSummary is what one function scope contributes to the whole-program
// graph.
type loSummary struct {
	acquires map[lockKey]token.Pos
	calls    []loCall
	edges    []loEdge
}

// loState is the abstract interpreter's per-path state.
type loState struct {
	held       []lockKey
	terminated bool
}

func (st *loState) clone() *loState {
	return &loState{held: append([]lockKey(nil), st.held...), terminated: st.terminated}
}

func (st *loState) holds(k lockKey) bool {
	for _, h := range st.held {
		if h == k {
			return true
		}
	}
	return false
}

func (st *loState) acquire(k lockKey) {
	if !st.holds(k) {
		st.held = append(st.held, k)
	}
}

func (st *loState) release(k lockKey) {
	for i, h := range st.held {
		if h == k {
			st.held = append(st.held[:i], st.held[i+1:]...)
			return
		}
	}
}

func intersectHeld(a, b []lockKey) []lockKey {
	var out []lockKey
	for _, k := range a {
		for _, j := range b {
			if k == j {
				out = append(out, k)
				break
			}
		}
	}
	return out
}

func (a *lockOrder) Run(p *Pass) {
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := ""
			if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				name = fn.FullName()
			}
			sum := &loSummary{acquires: map[lockKey]token.Pos{}}
			sc := &loScope{a: a, p: p, sum: sum}
			sc.stmt(fd.Body, &loState{})
			if name != "" {
				a.summaries[name] = sum
			} else {
				a.anon = append(a.anon, sum)
			}
		}
	}
}

// loScope interprets one function (or function literal) body.
type loScope struct {
	a   *lockOrder
	p   *Pass
	sum *loSummary
}

// subScope analyzes a function literal's body as its own scope, seeded
// with the given held set, contributing to the whole-program pool as an
// anonymous summary.
func (s *loScope) subScope(body *ast.BlockStmt, held []lockKey) {
	sum := &loSummary{acquires: map[lockKey]token.Pos{}}
	sc := &loScope{a: s.a, p: s.p, sum: sum}
	sc.stmt(body, &loState{held: append([]lockKey(nil), held...)})
	s.a.anon = append(s.a.anon, sum)
}

func (s *loScope) stmt(n ast.Stmt, st *loState) {
	if n == nil || st.terminated {
		return
	}
	switch n := n.(type) {
	case *ast.BlockStmt:
		for _, inner := range n.List {
			if st.terminated {
				return
			}
			s.stmt(inner, st)
		}
	case *ast.ExprStmt:
		s.expr(n.X, st)
	case *ast.AssignStmt:
		for _, e := range n.Rhs {
			s.expr(e, st)
		}
		for _, e := range n.Lhs {
			s.expr(e, st)
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						s.expr(v, st)
					}
				}
			}
		}
	case *ast.IfStmt:
		s.stmt(n.Init, st)
		s.expr(n.Cond, st)
		thenSt := st.clone()
		s.stmt(n.Body, thenSt)
		elseSt := st.clone()
		if n.Else != nil {
			s.stmt(n.Else, elseSt)
		}
		switch {
		case thenSt.terminated && elseSt.terminated:
			st.terminated = true
		case thenSt.terminated:
			st.held = elseSt.held
		case elseSt.terminated:
			st.held = thenSt.held
		default:
			st.held = intersectHeld(thenSt.held, elseSt.held)
		}
	case *ast.ForStmt:
		s.stmt(n.Init, st)
		s.expr(n.Cond, st)
		body := st.clone()
		s.stmt(n.Body, body)
		s.stmt(n.Post, body)
		// Loop bodies are assumed lock-balanced; the held set at the
		// statement after the loop is the one at entry.
	case *ast.RangeStmt:
		s.expr(n.X, st)
		body := st.clone()
		s.stmt(n.Body, body)
	case *ast.SwitchStmt:
		s.stmt(n.Init, st)
		s.expr(n.Tag, st)
		s.caseBodies(bodyList(n.Body), st, hasDefaultClause(n.Body))
	case *ast.TypeSwitchStmt:
		s.stmt(n.Init, st)
		s.stmt(n.Assign, st)
		s.caseBodies(bodyList(n.Body), st, hasDefaultClause(n.Body))
	case *ast.SelectStmt:
		// A select always executes exactly one case.
		s.caseBodies(bodyList(n.Body), st, true)
	case *ast.ReturnStmt:
		for _, e := range n.Results {
			s.expr(e, st)
		}
		st.terminated = true
	case *ast.BranchStmt:
		// break/continue/goto leave this straight-line path.
		st.terminated = true
	case *ast.DeferStmt:
		s.deferCall(n.Call, st)
	case *ast.GoStmt:
		// The spawned goroutine starts with no locks held; its work is
		// asynchronous, so it contributes no synchronous edges here.
		if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
			s.subScope(lit.Body, nil)
		}
		for _, arg := range n.Call.Args {
			s.expr(arg, st)
		}
	case *ast.LabeledStmt:
		s.stmt(n.Stmt, st)
	case *ast.IncDecStmt:
		s.expr(n.X, st)
	case *ast.SendStmt:
		s.expr(n.Chan, st)
		s.expr(n.Value, st)
	}
}

func bodyList(b *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, c := range b.List {
		switch c := c.(type) {
		case *ast.CaseClause:
			out = append(out, c.Body)
		case *ast.CommClause:
			body := c.Body
			if c.Comm != nil {
				body = append([]ast.Stmt{c.Comm}, body...)
			}
			out = append(out, body)
		}
	}
	return out
}

func hasDefaultClause(b *ast.BlockStmt) bool {
	for _, c := range b.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// caseBodies interprets each case with its own copy of the state and
// merges: the post-state is the intersection of every non-terminated
// case (plus the fall-past-all-cases path when no case is guaranteed to
// run).
func (s *loScope) caseBodies(bodies [][]ast.Stmt, st *loState, exhaustive bool) {
	var survivors [][]lockKey
	if !exhaustive {
		survivors = append(survivors, append([]lockKey(nil), st.held...))
	}
	for _, body := range bodies {
		cs := st.clone()
		for _, inner := range body {
			if cs.terminated {
				break
			}
			s.stmt(inner, cs)
		}
		if !cs.terminated {
			survivors = append(survivors, cs.held)
		}
	}
	if len(survivors) == 0 {
		if len(bodies) > 0 {
			st.terminated = true
		}
		return
	}
	held := survivors[0]
	for _, sv := range survivors[1:] {
		held = intersectHeld(held, sv)
	}
	st.held = held
}

// deferCall handles `defer x()`: a deferred Unlock keeps the lock held
// for the rest of the scope (which is exactly what the edge derivation
// wants); a deferred module call or closure is approximated as running
// with the currently-held set.
func (s *loScope) deferCall(call *ast.CallExpr, st *loState) {
	for _, arg := range call.Args {
		s.expr(arg, st)
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		s.subScope(lit.Body, st.held)
		return
	}
	if key, op, ok := s.mutexOp(call); ok {
		_ = key
		_ = op
		// Deferred Unlock: the lock stays held to scope end. Deferred
		// Lock: nonsensical, ignored.
		return
	}
	if callee := s.staticModuleCallee(call); callee != "" {
		s.sum.calls = append(s.sum.calls, loCall{callee: callee, held: append([]lockKey(nil), st.held...), pos: call.Pos()})
	}
}

func (s *loScope) expr(e ast.Expr, st *loState) {
	if e == nil {
		return
	}
	switch n := e.(type) {
	case *ast.CallExpr:
		for _, arg := range n.Args {
			s.expr(arg, st)
		}
		if lit, ok := n.Fun.(*ast.FuncLit); ok {
			// Immediately-invoked literal: runs inline on this path.
			s.stmt(lit.Body, st)
			return
		}
		if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
			s.expr(sel.X, st)
		}
		if key, op, ok := s.mutexOp(n); ok {
			switch op {
			case "Lock", "RLock", "TryLock", "TryRLock":
				for _, h := range st.held {
					if h != key {
						s.sum.edges = append(s.sum.edges, loEdge{from: h, to: key, pos: n.Pos()})
					}
				}
				st.acquire(key)
				if _, seen := s.sum.acquires[key]; !seen {
					s.sum.acquires[key] = n.Pos()
				}
			case "Unlock", "RUnlock":
				st.release(key)
			}
			return
		}
		if callee := s.staticModuleCallee(n); callee != "" {
			s.sum.calls = append(s.sum.calls, loCall{callee: callee, held: append([]lockKey(nil), st.held...), pos: n.Pos()})
		}
	case *ast.FuncLit:
		// A literal not invoked here runs later, on some goroutine, with
		// nothing held.
		s.subScope(n.Body, nil)
	case *ast.ParenExpr:
		s.expr(n.X, st)
	case *ast.SelectorExpr:
		s.expr(n.X, st)
	case *ast.StarExpr:
		s.expr(n.X, st)
	case *ast.UnaryExpr:
		s.expr(n.X, st)
	case *ast.BinaryExpr:
		s.expr(n.X, st)
		s.expr(n.Y, st)
	case *ast.IndexExpr:
		s.expr(n.X, st)
		s.expr(n.Index, st)
	case *ast.SliceExpr:
		s.expr(n.X, st)
		s.expr(n.Low, st)
		s.expr(n.High, st)
		s.expr(n.Max, st)
	case *ast.TypeAssertExpr:
		s.expr(n.X, st)
	case *ast.CompositeLit:
		for _, elt := range n.Elts {
			s.expr(elt, st)
		}
	case *ast.KeyValueExpr:
		s.expr(n.Value, st)
	}
}

// mutexOp resolves call to a sync.Mutex / sync.RWMutex method and the
// canonical key of the lock it operates on.
func (s *loScope) mutexOp(call *ast.CallExpr) (lockKey, string, bool) {
	fun, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	op := fun.Sel.Name
	switch op {
	case "Lock", "RLock", "TryLock", "TryRLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	selInfo, ok := s.p.Info.Selections[fun]
	if !ok {
		return "", "", false
	}
	fn, ok := selInfo.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	return s.lockKeyOf(fun, selInfo), op, true
}

// lockKeyOf names the lock a mutex-method selection operates on.
func (s *loScope) lockKeyOf(fun *ast.SelectorExpr, selInfo *types.Selection) lockKey {
	if idx := selInfo.Index(); len(idx) > 1 {
		// Promoted through an embedded field: t.Lock() where the receiver
		// type embeds the mutex. Name it after the receiver type and the
		// embedded field.
		recv := deref(selInfo.Recv())
		if named, ok := recv.(*types.Named); ok {
			if stru, ok := named.Underlying().(*types.Struct); ok && idx[0] < stru.NumFields() {
				return lockKey(typeKeyOf(named) + "." + stru.Field(idx[0]).Name())
			}
		}
	}
	// Direct method on a mutex-typed expression: x.mu.Lock() or mu.Lock().
	switch recv := fun.X.(type) {
	case *ast.SelectorExpr:
		if named, ok := deref(typeOf(s.p, recv.X)).(*types.Named); ok {
			return lockKey(typeKeyOf(named) + "." + recv.Sel.Name)
		}
	case *ast.Ident:
		if v, ok := s.p.Info.Uses[recv].(*types.Var); ok {
			if v.Parent() == s.p.Types.Scope() {
				return lockKey(s.p.Path + "." + v.Name())
			}
			return lockKey(fmt.Sprintf("%s.%s#%d", s.p.Path, v.Name(), v.Pos()))
		}
	}
	return lockKey(s.p.Path + "." + types.ExprString(fun.X))
}

func typeOf(p *Pass, e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func deref(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		return ptr.Elem()
	}
	return t
}

func typeKeyOf(named *types.Named) string {
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// staticModuleCallee resolves a call to a module function's summary key,
// or "" when the callee is not statically known module code.
func (s *loScope) staticModuleCallee(call *ast.CallExpr) string {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		obj = s.p.Info.Uses[fun.Sel]
	case *ast.Ident:
		obj = s.p.Info.Uses[fun]
	default:
		return ""
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || !strings.HasPrefix(fn.Pkg().Path(), "repro") {
		return ""
	}
	return fn.FullName()
}

// Finish assembles the whole-program edge graph — direct edges plus
// held-sets propagated through static calls — and reports forbidden
// orders and cycles.
func (a *lockOrder) Finish(fset *token.FileSet, report func(pos token.Pos, format string, args ...any)) {
	// Transitive lock acquisitions per function, to a fixed point.
	memo := map[string]map[lockKey]bool{}
	var transAcq func(name string, seen map[string]bool) map[lockKey]bool
	transAcq = func(name string, seen map[string]bool) map[lockKey]bool {
		if m, ok := memo[name]; ok {
			return m
		}
		if seen[name] {
			return nil
		}
		seen[name] = true
		sum := a.summaries[name]
		if sum == nil {
			return nil
		}
		out := map[lockKey]bool{}
		for k := range sum.acquires {
			out[k] = true
		}
		for _, c := range sum.calls {
			for k := range transAcq(c.callee, seen) {
				out[k] = true
			}
		}
		memo[name] = out
		return out
	}

	type edgeID struct{ from, to lockKey }
	edges := map[edgeID]loEdge{}
	addEdge := func(e loEdge) {
		id := edgeID{e.from, e.to}
		if _, ok := edges[id]; !ok {
			edges[id] = e
		}
	}
	all := make([]*loSummary, 0, len(a.summaries)+len(a.anon))
	names := make([]string, 0, len(a.summaries))
	for n := range a.summaries {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		all = append(all, a.summaries[n])
	}
	all = append(all, a.anon...)
	for _, sum := range all {
		for _, e := range sum.edges {
			addEdge(e)
		}
		for _, c := range sum.calls {
			if len(c.held) == 0 {
				continue
			}
			for to := range transAcq(c.callee, map[string]bool{}) {
				for _, from := range c.held {
					if from != to {
						addEdge(loEdge{from: from, to: to, pos: c.pos, via: c.callee})
					}
				}
			}
		}
	}

	// Documented-order rules.
	type rule struct {
		from, to lockKey
		why      string
	}
	var rules []rule
	rules = append(rules,
		rule{"repro/internal/metricstore.entry.mu", "repro/internal/metricstore.Store.mu",
			"the metric store's order is store-lock before entry-lock; code under an entry lock (including SetOnPut observers) must never call back into the store"},
		rule{"repro/internal/registry.Flow.mu", "repro/internal/registry.Flow.pacerMu",
			"the registry's order is pacerMu before the flow lock; pacer lifecycle calls wait on scheduler tickets whose tick functions take the flow lock through Advance"},
	)
	for _, from := range []lockKey{"repro/internal/sched.shard.mu", "repro/internal/sched.job.mu"} {
		for _, to := range []lockKey{"repro/internal/registry.Flow.mu", "repro/internal/registry.Flow.pacerMu", "repro/internal/registry.Registry.mu"} {
			rules = append(rules, rule{from, to,
				"scheduler shard/job locks are leaves with respect to the registry; its callbacks take registry locks, so the reverse nesting closes a deadlock cycle"})
		}
	}
	ids := make([]edgeID, 0, len(edges))
	for id := range edges {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].from != ids[j].from {
			return ids[i].from < ids[j].from
		}
		return ids[i].to < ids[j].to
	})
	for _, id := range ids {
		for _, r := range rules {
			if id.from == r.from && id.to == r.to {
				e := edges[id]
				via := ""
				if e.via != "" {
					via = fmt.Sprintf(" (via call to %s)", strings.TrimPrefix(e.via, "repro/internal/"))
				}
				report(e.pos, "%s acquired while holding %s%s — %s", id.to.disp(), id.from.disp(), via, r.why)
			}
		}
	}

	// Cycle detection over the full graph.
	adj := map[lockKey][]lockKey{}
	for _, id := range ids {
		adj[id.from] = append(adj[id.from], id.to)
	}
	reported := map[string]bool{}
	var stack []lockKey
	onStack := map[lockKey]int{}
	done := map[lockKey]bool{}
	var dfs func(k lockKey)
	dfs = func(k lockKey) {
		onStack[k] = len(stack)
		stack = append(stack, k)
		for _, next := range adj[k] {
			if i, ok := onStack[next]; ok {
				cycle := append([]lockKey(nil), stack[i:]...)
				a.reportCycle(cycle, edges[edgeID{k, next}], reported, report)
				continue
			}
			if !done[next] {
				dfs(next)
			}
		}
		stack = stack[:len(stack)-1]
		delete(onStack, k)
		done[k] = true
	}
	roots := make([]lockKey, 0, len(adj))
	for k := range adj {
		roots = append(roots, k)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	for _, k := range roots {
		if !done[k] {
			dfs(k)
		}
	}
}

// reportCycle emits one finding per distinct cycle (normalised so
// rotations dedupe), positioned at the closing edge.
func (a *lockOrder) reportCycle(cycle []lockKey, closing loEdge, reported map[string]bool, report func(pos token.Pos, format string, args ...any)) {
	min := 0
	for i := range cycle {
		if cycle[i] < cycle[min] {
			min = i
		}
	}
	norm := make([]string, 0, len(cycle))
	for i := range cycle {
		norm = append(norm, string(cycle[(min+i)%len(cycle)]))
	}
	key := strings.Join(norm, "→")
	if reported[key] {
		return
	}
	reported[key] = true
	parts := make([]string, 0, len(cycle)+1)
	for _, k := range cycle {
		parts = append(parts, k.disp())
	}
	parts = append(parts, cycle[0].disp())
	report(closing.pos, "lock-order cycle: %s — two goroutines taking these locks in different orders deadlock", strings.Join(parts, " → "))
}
