// Package analysis is flowervet: a stdlib-only static-analysis engine
// that machine-checks this repository's concurrency and hot-path
// contracts. Five PRs in, the control plane is genuinely concurrent —
// per-flow locks, a sharded tick scheduler, an event bus publishing under
// locks, an allocation-free handle-based metric hot path — and every one
// of those contracts used to live in doc comments and reviewer memory.
// This package makes them self-enforcing.
//
// The driver (Load) resolves packages with `go list -json -deps -export`,
// parses them with go/parser and type-checks them with go/types, importing
// dependencies from the gc export data the go command already produced —
// so the module stays zero-dependency. Each registered Analyzer then walks
// the typed syntax of every module package; whole-program analyzers (lock
// order) additionally get a Finish call once every package has been seen.
//
// The analyzers and the invariants they encode:
//
//   - lockorder: derives the acquired-while-held lock graph from
//     Lock/RLock/Unlock patterns (propagated through module-internal
//     static calls) and fails on cycles or violations of the documented
//     order — metricstore store-lock before entry-lock, registry pacerMu
//     before the flow lock, and never a registry lock while holding a
//     scheduler shard or job lock.
//   - hotpath: packages on the per-tick path may not call the map-keyed
//     metricstore compatibility wrappers (Put/MustPut/GetStatistics/
//     Latest/Raw) nor resolve handles or build metric identities inside
//     loops — Handle/Lookup at build time only.
//   - wallclock: bans time.Now/Sleep/After/Since/... outside simtime,
//     perfbench, cmd/*, examples/* and test files — scheduler-driven code
//     takes time from the virtual clock or its tick callback.
//   - stopleak: a created Scheduler, periodic Ticket, event-bus
//     Subscription, lab Engine or flow Registry must have its
//     Stop/Close reached, or be returned/stored/handed off — the orphan
//     goroutine-owner bug class.
//   - wirejson: every exported field of an api/v1 wire struct (and of
//     structs in files marked //flowervet:wire) carries a json tag and no
//     field is interface-typed, so the wire surface cannot drift silently.
//
// Escape hatch: a finding is suppressed by a pragma comment on the same
// line or the line above:
//
//	//flowervet:allow wallclock(journal timestamps are wall time)
//
// The analyzer name is mandatory and so is the parenthesised reason — an
// allow without a stated reason is itself reported. Two marker pragmas
// extend coverage: //flowervet:hotpath (any file) opts its whole package
// into the hot-path rules, //flowervet:wire opts one file into the wire
// rules.
//
// Run it as `go run ./cmd/flowervet ./...`, or let `go test ./...` do it:
// selfcheck_test.go runs the suite over the repository's own source.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Finding is one rule violation at one source position.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the canonical `file:line: analyzer:
// message` form the flowervet binary prints and the testdata harness
// matches on.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Package is one loaded, parsed and type-checked module package.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// allows indexes //flowervet:allow pragmas: filename → line → set of
	// analyzer names allowed at that line.
	allows map[string]map[int]map[string]bool
	// hotpathMarked reports a //flowervet:hotpath marker anywhere in the
	// package; wireFiles holds the filenames carrying //flowervet:wire.
	hotpathMarked bool
	wireFiles     map[string]bool
	// badPragmas are malformed //flowervet: comments, reported as
	// findings of the engine itself.
	badPragmas []Finding
}

// Pass is the per-package view handed to one analyzer's Run.
type Pass struct {
	*Package
	analyzer string
	sink     *[]Finding
}

// Reportf records a finding at pos. Suppression by //flowervet:allow
// pragmas is applied centrally after every analyzer has run.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.sink = append(*p.sink, Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one pluggable invariant checker.
type Analyzer interface {
	// Name is the identifier used in findings and allow pragmas.
	Name() string
	// Doc is the one-line description `flowervet -list` prints.
	Doc() string
	// Run checks one package.
	Run(p *Pass)
}

// wholeProgram is implemented by analyzers that accumulate state across
// Run calls and report only once every package has been seen.
type wholeProgram interface {
	Finish(fset *token.FileSet, report func(pos token.Pos, format string, args ...any))
}

// Analyzers returns the full registered suite, in reporting order.
func Analyzers() []Analyzer {
	return []Analyzer{
		newLockOrder(),
		newHotPath(),
		newWallClock(),
		newStopLeak(),
		newWireJSON(),
	}
}

// Run executes every analyzer over the loaded packages and returns the
// surviving findings sorted by position. Pragma-suppressed findings are
// dropped; malformed pragmas are reported as findings of the "flowervet"
// pseudo-analyzer (and cannot be suppressed).
func Run(pkgs []*Package, analyzers []Analyzer) []Finding {
	var raw []Finding
	for _, a := range analyzers {
		for _, pkg := range pkgs {
			a.Run(&Pass{Package: pkg, analyzer: a.Name(), sink: &raw})
		}
		if wp, ok := a.(wholeProgram); ok && len(pkgs) > 0 {
			fset := pkgs[0].Fset
			name := a.Name()
			wp.Finish(fset, func(pos token.Pos, format string, args ...any) {
				raw = append(raw, Finding{
					Pos:      fset.Position(pos),
					Analyzer: name,
					Message:  fmt.Sprintf(format, args...),
				})
			})
		}
	}

	allow := func(f Finding) bool {
		for _, pkg := range pkgs {
			lines, ok := pkg.allows[f.Pos.Filename]
			if !ok {
				continue
			}
			for _, ln := range [2]int{f.Pos.Line, f.Pos.Line - 1} {
				if lines[ln][f.Analyzer] {
					return true
				}
			}
		}
		return false
	}
	var out []Finding
	for _, f := range raw {
		if !allow(f) {
			out = append(out, f)
		}
	}
	for _, pkg := range pkgs {
		out = append(out, pkg.badPragmas...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out
}

// pragma parsing -----------------------------------------------------------

var (
	allowRe = regexp.MustCompile(`^//flowervet:allow\s+([a-z]+)\((.+)\)\s*$`)
)

// scanPragmas indexes every //flowervet: comment of the file into the
// package's allow/marker tables. Malformed pragmas become findings.
func (pkg *Package) scanPragmas(file *ast.File) {
	fname := pkg.Fset.Position(file.Pos()).Filename
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, "//flowervet:") {
				continue
			}
			directive := strings.TrimPrefix(text, "//flowervet:")
			switch {
			case directive == "hotpath":
				pkg.hotpathMarked = true
			case directive == "wire":
				if pkg.wireFiles == nil {
					pkg.wireFiles = map[string]bool{}
				}
				pkg.wireFiles[fname] = true
			case strings.HasPrefix(directive, "allow"):
				m := allowRe.FindStringSubmatch(text)
				if m == nil {
					pkg.badPragmas = append(pkg.badPragmas, Finding{
						Pos:      pkg.Fset.Position(c.Pos()),
						Analyzer: "flowervet",
						Message:  "malformed allow pragma: want //flowervet:allow <analyzer>(<reason>) with a non-empty reason",
					})
					continue
				}
				if pkg.allows == nil {
					pkg.allows = map[string]map[int]map[string]bool{}
				}
				lines := pkg.allows[fname]
				if lines == nil {
					lines = map[int]map[string]bool{}
					pkg.allows[fname] = lines
				}
				ln := pkg.Fset.Position(c.Pos()).Line
				if lines[ln] == nil {
					lines[ln] = map[string]bool{}
				}
				lines[ln][m[1]] = true
			default:
				pkg.badPragmas = append(pkg.badPragmas, Finding{
					Pos:      pkg.Fset.Position(c.Pos()),
					Analyzer: "flowervet",
					Message:  fmt.Sprintf("unknown flowervet pragma %q (known: allow, hotpath, wire)", directive),
				})
			}
		}
	}
}
