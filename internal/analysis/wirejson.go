package analysis

import (
	"go/ast"
	"go/types"
	"reflect"
	"strings"
)

// wireJSON pins the wire surface: every exported field of an api/v1
// struct (and of structs in files marked //flowervet:wire — the event
// payload structs that travel through the watch stream live next to
// their emitters in internal/registry and internal/lab) must carry an
// explicit json tag, and no field may be interface-typed. An untagged
// field silently renames the wire format when someone renames the Go
// field; an interface field marshals as whatever happens to be inside it
// and cannot round-trip.
type wireJSON struct{}

func newWireJSON() *wireJSON { return &wireJSON{} }

func (*wireJSON) Name() string { return "wirejson" }

func (*wireJSON) Doc() string {
	return "every exported field of api/v1 wire structs (and //flowervet:wire files) carries a json tag and no field is interface-typed"
}

func (a *wireJSON) Run(p *Pass) {
	wholePkg := p.Path == "repro/api/v1"
	if !wholePkg && len(p.wireFiles) == 0 {
		return
	}
	for _, file := range p.Files {
		if !wholePkg && !p.wireFiles[p.Fset.Position(file.Pos()).Filename] {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || !ts.Name.IsExported() {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				a.checkField(p, ts.Name.Name, field)
			}
			return true
		})
	}
}

func (a *wireJSON) checkField(p *Pass, typeName string, field *ast.Field) {
	ftype := p.Info.Types[field.Type].Type
	ifaceTyped := ftype != nil && types.IsInterface(ftype)

	if len(field.Names) == 0 {
		// Embedded field: its own struct's fields are checked where that
		// struct is declared; here only the interface ban applies.
		if ifaceTyped {
			p.Reportf(field.Pos(), "wire struct %s embeds interface type %s — wire structs must be concrete", typeName, ftype)
		}
		return
	}
	for _, name := range field.Names {
		if !name.IsExported() {
			continue
		}
		if ifaceTyped {
			p.Reportf(name.Pos(), "wire field %s.%s is interface-typed (%s) — it cannot round-trip through JSON; use a concrete type or json.RawMessage", typeName, name.Name, ftype)
			continue
		}
		if !hasJSONTag(field) {
			p.Reportf(name.Pos(), "exported wire field %s.%s has no json tag — the wire name must be explicit, not derived from the Go identifier", typeName, name.Name)
		}
	}
}

// hasJSONTag reports whether the field's tag names its JSON key (or
// explicitly opts out with json:"-").
func hasJSONTag(field *ast.Field) bool {
	if field.Tag == nil {
		return false
	}
	tag := reflect.StructTag(strings.Trim(field.Tag.Value, "`"))
	v, ok := tag.Lookup("json")
	return ok && v != ""
}
