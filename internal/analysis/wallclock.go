package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// wallClock bans reading or scheduling on the wall clock outside the
// packages that own it. The whole simulation is tick-driven from
// simtime's virtual clock; a stray time.Now in scheduler-driven code
// silently breaks reproducibility (same seed, different trace) and is
// exactly the class of bug no test catches, because tests run fast enough
// for the wall clock to look deterministic.
type wallClock struct{}

func newWallClock() *wallClock { return &wallClock{} }

func (*wallClock) Name() string { return "wallclock" }

func (*wallClock) Doc() string {
	return "bans time.Now/Sleep/After/Since/... outside simtime, perfbench, telemetry, cmd/* and examples/* — scheduler-driven code takes time from the virtual clock or its tick callback"
}

// wallClockBanned is the set of time-package functions that read or
// schedule on the wall clock. Constructors like time.Date and pure
// arithmetic (Add, Sub, Duration) are fine anywhere.
var wallClockBanned = map[string]bool{
	"Now": true, "Sleep": true, "Since": true, "Until": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

// wallClockExempt lists the package paths that legitimately own wall
// time: the virtual clock itself (whose Epoch doc explains why it is NOT
// time.Now), the wall-clock benchmark harness, the telemetry plane
// (which exists to measure real durations and hands them out via
// telemetry.Now/SinceNanos), and process entry points. The suffix match
// covers telemetry's golden-testdata mirror, which loads under a
// testdata-prefixed import path.
func wallClockExempt(path string) bool {
	switch path {
	case "repro/internal/simtime", "repro/internal/perfbench", "repro/internal/telemetry":
		return true
	}
	if strings.HasSuffix(path, "/internal/telemetry") {
		return true
	}
	return strings.HasPrefix(path, "repro/cmd/") || strings.HasPrefix(path, "repro/examples/")
}

func (a *wallClock) Run(p *Pass) {
	if wallClockExempt(p.Path) {
		return
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !wallClockBanned[sel.Sel.Name] {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := p.Info.Uses[id].(*types.PkgName)
			if !ok || pn.Imported().Path() != "time" {
				return true
			}
			p.Reportf(call.Pos(), "time.%s outside simtime/perfbench/cmd — scheduler-driven code must take time from the virtual clock or its tick callback (or state why wall time is wanted: //flowervet:allow wallclock(reason))", sel.Sel.Name)
			return true
		})
	}
}
