package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// testdataPackages are the golden packages under testdata/src: one
// violating and one clean package per analyzer. `go list ./...` skips
// testdata directories, so these compile only here and never pollute the
// repo-wide suite run.
var testdataPackages = []string{
	"lockbad", "lockok",
	"hotpathbad", "hotpathok",
	"wallclockbad", "wallclockok",
	"stopleakbad", "stopleakok",
	"wirejsonbad", "wirejsonok",
	// The telemetry mirror exercises the wallclock analyzer's
	// import-path-suffix exemption: bare time.Now/NewTicker, no pragmas,
	// zero findings expected.
	"telemetrywall/internal/telemetry",
}

var quoted = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// TestAnalyzersOnTestdata loads every golden package in one Load call,
// runs the full suite, and reconciles the findings against the `// want
// "substring"` comments in the sources — both directions: every want must
// be produced, every finding must be wanted.
func TestAnalyzersOnTestdata(t *testing.T) {
	requireGoTool(t)
	patterns := make([]string, len(testdataPackages))
	for i, name := range testdataPackages {
		patterns[i] = "./testdata/src/" + name
	}
	pkgs, err := Load(".", patterns...)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != len(testdataPackages) {
		t.Fatalf("loaded %d packages, want %d", len(pkgs), len(testdataPackages))
	}
	findings := Run(pkgs, Analyzers())

	// Index wants: file base + line → expected message substrings.
	type key struct {
		file string
		line int
	}
	wants := map[key][]string{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			base := filepath.Base(pkg.Fset.Position(file.Pos()).Filename)
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "// want ")
					if !ok {
						continue
					}
					k := key{base, pkg.Fset.Position(c.Pos()).Line}
					for _, m := range quoted.FindAllStringSubmatch(rest, -1) {
						wants[k] = append(wants[k], m[1])
					}
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatal("no want comments found in testdata — harness is broken")
	}

	unmatched := map[key][]string{}
	for k, subs := range wants {
		unmatched[k] = append([]string(nil), subs...)
	}
	for _, f := range findings {
		k := key{filepath.Base(f.Pos.Filename), f.Pos.Line}
		text := f.Analyzer + ": " + f.Message
		matched := false
		rest := unmatched[k][:0]
		for _, sub := range unmatched[k] {
			if !matched && strings.Contains(text, sub) {
				matched = true
				continue
			}
			rest = append(rest, sub)
		}
		unmatched[k] = rest
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for k, subs := range unmatched {
		for _, sub := range subs {
			t.Errorf("%s:%d: expected a finding containing %q, got none", k.file, k.line, sub)
		}
	}
}

// TestWantCommentsOnlyInBadPackages pins the corpus shape: every ok
// package is finding-free by construction, so a want comment there is a
// corpus bug.
func TestWantCommentsOnlyInBadPackages(t *testing.T) {
	requireGoTool(t)
	for _, name := range testdataPackages {
		if !strings.HasSuffix(name, "ok") {
			continue
		}
		pkgs, err := Load(".", "./testdata/src/"+name)
		if err != nil {
			t.Fatalf("Load %s: %v", name, err)
		}
		for _, pkg := range pkgs {
			for _, file := range pkg.Files {
				for _, cg := range file.Comments {
					for _, c := range cg.List {
						if strings.HasPrefix(c.Text, "// want ") {
							t.Errorf("%s: want comment in an ok package: %s",
								pkg.Fset.Position(c.Pos()), c.Text)
						}
					}
				}
			}
		}
	}
}

// TestMalformedPragmaIsReported checks the engine reports broken allow
// pragmas instead of silently honouring or ignoring them.
func TestMalformedPragmaIsReported(t *testing.T) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go",
		"package x\n\n//flowervet:allow wallclock\n//flowervet:bogus\n", parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{Fset: fset, Files: []*ast.File{file}}
	pkg.scanPragmas(file)
	if len(pkg.badPragmas) != 2 {
		t.Fatalf("got %d bad-pragma findings, want 2: %v", len(pkg.badPragmas), pkg.badPragmas)
	}
	if !strings.Contains(pkg.badPragmas[0].Message, "malformed allow pragma") {
		t.Errorf("first finding = %q, want malformed-allow report", pkg.badPragmas[0].Message)
	}
	if !strings.Contains(pkg.badPragmas[1].Message, "unknown flowervet pragma") {
		t.Errorf("second finding = %q, want unknown-pragma report", pkg.badPragmas[1].Message)
	}
}
