package metricstore

import (
	"math"
	"testing"
	"time"

	"repro/internal/timeseries"
)

var t0 = time.Date(2017, 8, 28, 0, 0, 0, 0, time.UTC)

func dims(kv ...string) map[string]string {
	m := make(map[string]string)
	for i := 0; i+1 < len(kv); i += 2 {
		m[kv[i]] = kv[i+1]
	}
	return m
}

func TestMetricIDKeyCanonical(t *testing.T) {
	a := MetricID{Namespace: "ns", Name: "m", Dimensions: map[string]string{"b": "2", "a": "1"}}
	b := MetricID{Namespace: "ns", Name: "m", Dimensions: map[string]string{"a": "1", "b": "2"}}
	if a.Key() != b.Key() {
		t.Fatalf("keys differ for equal dimension sets: %q vs %q", a.Key(), b.Key())
	}
	c := MetricID{Namespace: "ns", Name: "m", Dimensions: map[string]string{"a": "1"}}
	if a.Key() == c.Key() {
		t.Fatal("keys collide for different dimension sets")
	}
}

func TestPutAndLatest(t *testing.T) {
	s := NewStore()
	d := dims("StreamName", "clicks")
	s.MustPut("Ingestion", "IncomingRecords", d, t0, 100)
	s.MustPut("Ingestion", "IncomingRecords", d, t0.Add(time.Minute), 200)
	p, ok := storeLatest(s, "Ingestion", "IncomingRecords", d)
	if !ok || p.V != 200 {
		t.Fatalf("Latest = %+v ok=%v, want 200", p, ok)
	}
	if _, ok := storeLatest(s, "Ingestion", "IncomingRecords", dims("StreamName", "other")); ok {
		t.Fatal("Latest found metric under wrong dimensions")
	}
}

func TestPutValidation(t *testing.T) {
	s := NewStore()
	if err := s.Put("", "x", nil, t0, 1); err == nil {
		t.Fatal("empty namespace accepted")
	}
	if err := s.Put("ns", "", nil, t0, 1); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := s.Put("ns", "m", nil, t0, 1); err != nil {
		t.Fatalf("valid put failed: %v", err)
	}
	if err := s.Put("ns", "m", nil, t0.Add(-time.Second), 2); err == nil {
		t.Fatal("out-of-order put accepted")
	}
}

func TestPutCopiesDimensions(t *testing.T) {
	s := NewStore()
	d := dims("k", "v")
	s.MustPut("ns", "m", d, t0, 1)
	d["k"] = "mutated"
	if _, ok := storeLatest(s, "ns", "m", dims("k", "v")); !ok {
		t.Fatal("store was affected by caller mutating the dimension map")
	}
}

func TestGetStatisticsPeriods(t *testing.T) {
	s := NewStore()
	for i := 0; i < 10; i++ {
		s.MustPut("ns", "cpu", nil, t0.Add(time.Duration(i)*30*time.Second), float64(i))
	}
	got, err := s.GetStatistics(Query{
		Namespace: "ns", Name: "cpu",
		From: t0, To: t0.Add(5 * time.Minute),
		Period: time.Minute, Stat: timeseries.AggMean,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 5 {
		t.Fatalf("stats len = %d, want 5", got.Len())
	}
	if v := got.At(0).V; math.Abs(v-0.5) > 1e-12 {
		t.Fatalf("first bucket mean = %v, want 0.5", v)
	}
}

func TestGetStatisticsRawAndDefaults(t *testing.T) {
	s := NewStore()
	s.MustPut("ns", "m", nil, t0, 1)
	s.MustPut("ns", "m", nil, t0.Add(time.Minute), 2)
	got, err := s.GetStatistics(Query{Namespace: "ns", Name: "m"})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("raw len = %d, want 2 (zero To should include newest)", got.Len())
	}
	if _, err := s.GetStatistics(Query{Namespace: "ns", Name: "absent"}); err == nil {
		t.Fatal("missing metric did not error")
	}
}

func TestRetention(t *testing.T) {
	s := NewStore()
	s.SetRetention(2 * time.Minute)
	for i := 0; i < 10; i++ {
		s.MustPut("ns", "m", nil, t0.Add(time.Duration(i)*time.Minute), float64(i))
	}
	raw := storeRaw(s, "ns", "m", nil)
	if raw.Len() != 3 { // minutes 7, 8, 9 (cutoff is inclusive of t-2m)
		t.Fatalf("retained %d points, want 3", raw.Len())
	}
	if raw.At(0).V != 7 {
		t.Fatalf("oldest retained value = %v, want 7", raw.At(0).V)
	}
}

func TestListMetricsAndNamespaces(t *testing.T) {
	s := NewStore()
	s.MustPut("B", "m2", nil, t0, 1)
	s.MustPut("A", "m1", dims("d", "1"), t0, 1)
	s.MustPut("A", "m1", dims("d", "2"), t0, 1)
	all := s.ListMetrics("")
	if len(all) != 3 {
		t.Fatalf("ListMetrics(\"\") len = %d, want 3", len(all))
	}
	onlyA := s.ListMetrics("A")
	if len(onlyA) != 2 {
		t.Fatalf("ListMetrics(A) len = %d, want 2", len(onlyA))
	}
	ns := s.Namespaces()
	if len(ns) != 2 || ns[0] != "A" || ns[1] != "B" {
		t.Fatalf("Namespaces = %v", ns)
	}
}

func TestRawIsACopy(t *testing.T) {
	s := NewStore()
	s.MustPut("ns", "m", nil, t0, 1)
	raw := storeRaw(s, "ns", "m", nil)
	raw.MustAppend(t0.Add(time.Hour), 99)
	if got := storeRaw(s, "ns", "m", nil).Len(); got != 1 {
		t.Fatalf("store series length changed to %d after mutating Raw copy", got)
	}
	if storeRaw(s, "ns", "absent", nil) != nil {
		t.Fatal("Raw for absent metric should be nil")
	}
}

func TestAlarmLifecycle(t *testing.T) {
	s := NewStore()
	a := &Alarm{
		Name: "high-cpu", Namespace: "ns", Metric: "cpu",
		Period: time.Minute, Stat: timeseries.AggMean,
		Threshold: 70, Compare: GreaterThan, EvalPeriods: 2,
	}
	if err := s.PutAlarm(a); err != nil {
		t.Fatal(err)
	}

	// No data yet: insufficient.
	if st := s.EvaluateAlarm(a, t0); st != StateInsufficient {
		t.Fatalf("state = %v, want INSUFFICIENT", st)
	}

	// Two minutes below threshold: OK.
	s.MustPut("ns", "cpu", nil, t0.Add(30*time.Second), 50)
	s.MustPut("ns", "cpu", nil, t0.Add(90*time.Second), 55)
	if st := s.EvaluateAlarm(a, t0.Add(2*time.Minute)); st != StateOK {
		t.Fatalf("state = %v, want OK", st)
	}

	// One breaching minute is not enough (EvalPeriods=2).
	s.MustPut("ns", "cpu", nil, t0.Add(150*time.Second), 90)
	if st := s.EvaluateAlarm(a, t0.Add(3*time.Minute)); st != StateOK {
		t.Fatalf("state = %v, want OK after single breach", st)
	}

	// Two consecutive breaching minutes: ALARM.
	s.MustPut("ns", "cpu", nil, t0.Add(210*time.Second), 95)
	if st := s.EvaluateAlarm(a, t0.Add(4*time.Minute)); st != StateAlarm {
		t.Fatalf("state = %v, want ALARM", st)
	}
	if a.State() != StateAlarm {
		t.Fatalf("State() = %v, want ALARM", a.State())
	}
	if a.Transitions() < 2 {
		t.Fatalf("Transitions() = %d, want >= 2", a.Transitions())
	}
}

func TestEvaluateAlarms(t *testing.T) {
	s := NewStore()
	mk := func(name string, threshold float64) *Alarm {
		return &Alarm{
			Name: name, Namespace: "ns", Metric: "m",
			Period: time.Minute, Stat: timeseries.AggMean,
			Threshold: threshold, Compare: GreaterThan, EvalPeriods: 1,
		}
	}
	if err := s.PutAlarm(mk("b-high", 100)); err != nil {
		t.Fatal(err)
	}
	if err := s.PutAlarm(mk("a-low", 10)); err != nil {
		t.Fatal(err)
	}
	s.MustPut("ns", "m", nil, t0.Add(30*time.Second), 50)
	firing := s.EvaluateAlarms(t0.Add(time.Minute))
	if len(firing) != 1 || firing[0] != "a-low" {
		t.Fatalf("firing = %v, want [a-low]", firing)
	}
}

func TestPutAlarmValidation(t *testing.T) {
	s := NewStore()
	if err := s.PutAlarm(&Alarm{Name: "", Period: time.Minute}); err == nil {
		t.Fatal("nameless alarm accepted")
	}
	if err := s.PutAlarm(&Alarm{Name: "x"}); err == nil {
		t.Fatal("zero-period alarm accepted")
	}
	a := &Alarm{Name: "x", Namespace: "ns", Metric: "m", Period: time.Minute}
	if err := s.PutAlarm(a); err != nil {
		t.Fatal(err)
	}
	if a.EvalPeriods != 1 {
		t.Fatalf("EvalPeriods defaulted to %d, want 1", a.EvalPeriods)
	}
	got, ok := s.Alarm("x")
	if !ok || got != a {
		t.Fatal("Alarm lookup failed")
	}
}

func TestComparisonOperators(t *testing.T) {
	cases := []struct {
		c    Comparison
		v    float64
		want bool
	}{
		{GreaterThan, 71, true}, {GreaterThan, 70, false},
		{GreaterOrEqual, 70, true}, {GreaterOrEqual, 69, false},
		{LessThan, 69, true}, {LessThan, 70, false},
		{LessOrEqual, 70, true}, {LessOrEqual, 71, false},
	}
	for _, tc := range cases {
		if got := tc.c.breaches(tc.v, 70); got != tc.want {
			t.Errorf("%v %v 70: got %v, want %v", tc.v, tc.c, got, tc.want)
		}
	}
	if GreaterThan.String() != ">" || LessOrEqual.String() != "<=" {
		t.Error("Comparison.String mismatch")
	}
	if StateAlarm.String() != "ALARM" || StateOK.String() != "OK" {
		t.Error("AlarmState.String mismatch")
	}
}
