package metricstore

import (
	"fmt"
	"time"

	"repro/internal/telemetry"
)

// Process-wide store telemetry. All Store instances aggregate: the plane
// view cares about total append traffic and total resident series, not
// which store they live in. The append-path instruments are chosen to
// preserve Handle.Append's 0 allocs/op: one atomic counter add, one atomic
// trace-pointer load, and — only while a sampled tick trace is active — a
// pair of wall-clock reads.
var (
	telAppends = telemetry.Default().Counter("flower_store_appends_total",
		"Datapoints appended across all metric stores.")
	telEntries = telemetry.Default().Gauge("flower_store_entries",
		"Metric series resident across all metric stores.")
	telCompactionCopied = telemetry.Default().Counter("flower_store_compaction_copied_points_total",
		"Points moved by retention compaction across all metric stores.")
	telRetentionDropped = telemetry.Default().Counter("flower_store_retention_dropped_total",
		"Datapoints discarded by the retention window across all metric stores.")
)

// SelfScrapeNamespace is the reserved metric namespace the self-scrape
// bridge publishes flowerd's own telemetry under. User flows must not
// publish into it.
const SelfScrapeNamespace = "Flower/Telemetry"

// IngestSnapshot publishes one telemetry snapshot into the store under
// SelfScrapeNamespace, making the plane's own signals first-class metrics
// that forecasting and regression can watch. Counters and gauges become
// one series per metric (labels folded into dimensions); histograms become
// a _count/_sum series pair (buckets would multiply cardinality for little
// forecasting value). Timestamps are the snapshot's capture time, so the
// per-metric monotonicity the store requires holds as long as snapshots
// are ingested in order.
func IngestSnapshot(s *Store, snap telemetry.Snapshot) error {
	at := snap.At
	for _, fam := range snap.Families {
		for _, m := range fam.Metrics {
			var dims map[string]string
			if len(fam.Labels) > 0 {
				dims = make(map[string]string, len(fam.Labels))
				for i, l := range fam.Labels {
					if i < len(m.LabelValues) {
						dims[l] = m.LabelValues[i]
					}
				}
			}
			if fam.Kind == telemetry.KindHistogram && m.Histogram != nil {
				if err := s.Put(SelfScrapeNamespace, fam.Name+"_count", dims, at, float64(m.Histogram.Count)); err != nil {
					return fmt.Errorf("metricstore: self-scrape %s: %w", fam.Name, err)
				}
				if err := s.Put(SelfScrapeNamespace, fam.Name+"_sum", dims, at, float64(m.Histogram.SumNanos)/float64(time.Second)); err != nil {
					return fmt.Errorf("metricstore: self-scrape %s: %w", fam.Name, err)
				}
				continue
			}
			if err := s.Put(SelfScrapeNamespace, fam.Name, dims, at, m.Value); err != nil {
				return fmt.Errorf("metricstore: self-scrape %s: %w", fam.Name, err)
			}
		}
	}
	return nil
}
