package metricstore

import (
	"fmt"
	"math"
	"time"

	"repro/internal/timeseries"
)

// Comparison is an alarm threshold comparison operator.
type Comparison int

// Supported comparisons, mirroring CloudWatch's operators.
const (
	GreaterThan Comparison = iota
	GreaterOrEqual
	LessThan
	LessOrEqual
)

// String returns the operator's symbolic form.
func (c Comparison) String() string {
	switch c {
	case GreaterThan:
		return ">"
	case GreaterOrEqual:
		return ">="
	case LessThan:
		return "<"
	case LessOrEqual:
		return "<="
	default:
		return "?"
	}
}

// breaches reports whether v violates the threshold under c.
func (c Comparison) breaches(v, threshold float64) bool {
	switch c {
	case GreaterThan:
		return v > threshold
	case GreaterOrEqual:
		return v >= threshold
	case LessThan:
		return v < threshold
	case LessOrEqual:
		return v <= threshold
	default:
		return false
	}
}

// AlarmState is the evaluation outcome of an alarm.
type AlarmState int

// Alarm states, mirroring CloudWatch's.
const (
	StateInsufficient AlarmState = iota
	StateOK
	StateAlarm
)

// String names the state.
func (s AlarmState) String() string {
	switch s {
	case StateOK:
		return "OK"
	case StateAlarm:
		return "ALARM"
	default:
		return "INSUFFICIENT_DATA"
	}
}

// Alarm is a CloudWatch-style threshold alarm: it enters ALARM when the
// chosen statistic of the chosen metric breaches the threshold for
// EvalPeriods consecutive periods. Rule-based autoscaling (the baseline the
// paper's introduction critiques) is built on these.
type Alarm struct {
	Name        string
	Namespace   string
	Metric      string
	Dimensions  map[string]string
	Period      time.Duration
	Stat        timeseries.Agg
	Threshold   float64
	Compare     Comparison
	EvalPeriods int

	state       AlarmState
	transitions int
}

// PutAlarm registers (or replaces) an alarm by name.
func (s *Store) PutAlarm(a *Alarm) error {
	if a.Name == "" {
		return fmt.Errorf("metricstore: alarm name is required")
	}
	if a.Period <= 0 {
		return fmt.Errorf("metricstore: alarm %q period must be positive", a.Name)
	}
	if a.EvalPeriods <= 0 {
		a.EvalPeriods = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.alarms[a.Name] = a
	return nil
}

// Alarm returns the named alarm, if registered.
func (s *Store) Alarm(name string) (*Alarm, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	a, ok := s.alarms[name]
	return a, ok
}

// EvaluateAlarms re-evaluates every alarm as of now and returns the names
// of alarms currently in ALARM state, sorted by registration key order.
func (s *Store) EvaluateAlarms(now time.Time) []string {
	s.mu.RLock()
	names := make([]string, 0, len(s.alarms))
	for n := range s.alarms {
		names = append(names, n)
	}
	s.mu.RUnlock()
	sortStrings(names)

	var firing []string
	for _, n := range names {
		a, _ := s.Alarm(n)
		st := s.EvaluateAlarm(a, now)
		if st == StateAlarm {
			firing = append(firing, n)
		}
	}
	return firing
}

// EvaluateAlarm computes the alarm's state as of now and records
// state-transition counts on the alarm.
func (s *Store) EvaluateAlarm(a *Alarm, now time.Time) AlarmState {
	window := time.Duration(a.EvalPeriods) * a.Period
	stats, err := s.GetStatistics(Query{
		Namespace:  a.Namespace,
		Name:       a.Metric,
		Dimensions: a.Dimensions,
		From:       now.Add(-window),
		To:         now.Add(time.Nanosecond),
		Period:     a.Period,
		Stat:       a.Stat,
	})
	newState := StateInsufficient
	if err == nil && stats.Len() >= a.EvalPeriods {
		newState = StateOK
		breachedAll := true
		vals := stats.TailN(a.EvalPeriods).Values()
		for _, v := range vals {
			if math.IsNaN(v) || !a.Compare.breaches(v, a.Threshold) {
				breachedAll = false
				break
			}
		}
		if breachedAll {
			newState = StateAlarm
		}
	}
	if newState != a.state {
		a.transitions++
		a.state = newState
	}
	return newState
}

// State reports the alarm's last evaluated state.
func (a *Alarm) State() AlarmState { return a.state }

// Transitions reports how many state changes the alarm has undergone; the
// rule-vs-adaptive experiment uses this as an oscillation measure.
func (a *Alarm) Transitions() int { return a.transitions }

func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}
