package metricstore_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/metricstore"
	"repro/internal/perfbench"
	"repro/internal/simtime"
	"repro/internal/timeseries"
)

// The equivalence property: the columnar, handle-based store answers every
// query bit-for-bit identically to the frozen pre-rebuild implementation
// (perfbench.LegacyStore), on randomised workloads, through both the
// compatibility wrappers and the handle API, with and without retention.

// equivMetric is one randomly generated metric identity.
type equivMetric struct {
	ns, name string
	dims     map[string]string
}

func genMetrics(rng *rand.Rand) []equivMetric {
	nss := []string{"Ingestion/Stream", "Analytics/Compute", "Storage/KVStore"}
	names := []string{"IncomingRecords", "CPUUtilization", "WriteUtilization", "ThrottleEvents"}
	n := 3 + rng.Intn(5)
	out := make([]equivMetric, 0, n)
	for i := 0; i < n; i++ {
		dims := map[string]string{}
		for d := 0; d < rng.Intn(3); d++ {
			dims[fmt.Sprintf("dim%d", d)] = fmt.Sprintf("v%d", rng.Intn(3))
		}
		out = append(out, equivMetric{
			ns:   nss[rng.Intn(len(nss))],
			name: fmt.Sprintf("%s-%d", names[rng.Intn(len(names))], i),
			dims: dims,
		})
	}
	return out
}

// driveBoth feeds an identical randomised workload into both stores,
// appending through Put on the legacy side and through a mix of Put and
// Handle.Append on the new side.
func driveBoth(t *testing.T, rng *rand.Rand, st *metricstore.Store, legacy *perfbench.LegacyStore, metrics []equivMetric, points int) time.Time {
	t.Helper()
	now := simtime.Epoch
	handles := make([]*metricstore.Handle, len(metrics))
	for i, m := range metrics {
		h, err := st.Handle(m.ns, m.name, m.dims)
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	for i := 0; i < points; i++ {
		now = now.Add(time.Duration(1+rng.Intn(20)) * time.Second)
		mi := rng.Intn(len(metrics))
		m := metrics[mi]
		v := math.Round(rng.NormFloat64()*1e6) / 1e3 // finite, varied, exact
		if err := legacy.Put(m.ns, m.name, m.dims, now, v); err != nil {
			t.Fatal(err)
		}
		if rng.Intn(2) == 0 {
			if err := st.Put(m.ns, m.name, m.dims, now, v); err != nil {
				t.Fatal(err)
			}
		} else if err := handles[mi].Append(now, v); err != nil {
			t.Fatal(err)
		}
	}
	return now
}

// assertSeriesEqual requires the new series to match the legacy one
// bit-for-bit in timestamps and values.
func assertSeriesEqual(t *testing.T, tag string, got *timeseries.Series, want *perfbench.LegacySeries) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: len %d != legacy %d", tag, got.Len(), want.Len())
	}
	for i := 0; i < got.Len(); i++ {
		g, w := got.At(i), want.At(i)
		if !g.T.Equal(w.T) {
			t.Fatalf("%s[%d]: time %v != legacy %v", tag, i, g.T, w.T)
		}
		gb, wb := math.Float64bits(g.V), math.Float64bits(w.V)
		if gb != wb {
			t.Fatalf("%s[%d]: value %v (bits %x) != legacy %v (bits %x)", tag, i, g.V, gb, w.V, wb)
		}
	}
}

func statsList() []timeseries.Agg {
	return []timeseries.Agg{
		timeseries.AggMean, timeseries.AggSum, timeseries.AggMin, timeseries.AggMax,
		timeseries.AggCount, timeseries.AggP50, timeseries.AggP90, timeseries.AggP99,
	}
}

func TestColumnarStoreMatchesLegacyRandomised(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			st := metricstore.NewStore()
			legacy := perfbench.NewLegacyStore()
			if seed%2 == 1 {
				// Half the seeds prune: retention must not change answers
				// inside the retained window relative to the same-pruned
				// legacy store.
				st.SetRetention(30 * time.Minute)
				legacy.SetRetention(30 * time.Minute)
			}
			metrics := genMetrics(rng)
			end := driveBoth(t, rng, st, legacy, metrics, 2000)

			for qi := 0; qi < 50; qi++ {
				m := metrics[rng.Intn(len(metrics))]
				// Random window, sometimes open-ended.
				var from, to time.Time
				if rng.Intn(4) > 0 {
					from = simtime.Epoch.Add(time.Duration(rng.Intn(40000)) * time.Second)
				}
				if rng.Intn(4) > 0 {
					to = from.Add(time.Duration(rng.Intn(40000)) * time.Second)
				}
				var period time.Duration
				if rng.Intn(2) == 0 {
					period = time.Duration(1+rng.Intn(600)) * time.Second
				}
				stat := statsList()[rng.Intn(8)]
				tag := fmt.Sprintf("q%d %s/%s period=%v stat=%v", qi, m.ns, m.name, period, stat)

				want, wantErr := legacy.GetStatistics(perfbench.LegacyQuery{
					Namespace: m.ns, Name: m.name, Dimensions: m.dims,
					From: from, To: to, Period: period, Stat: stat,
				})
				got, gotErr := st.GetStatistics(metricstore.Query{
					Namespace: m.ns, Name: m.name, Dimensions: m.dims,
					From: from, To: to, Period: period, Stat: stat,
				})
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("%s: err %v vs legacy %v", tag, gotErr, wantErr)
				}
				if wantErr != nil {
					continue
				}
				assertSeriesEqual(t, tag, got, want)

				// The handle Window path must agree with the wrapper.
				h, ok := st.Lookup(m.ns, m.name, m.dims)
				if !ok {
					t.Fatalf("%s: lookup failed for existing metric", tag)
				}
				assertSeriesEqual(t, tag+" (handle)", h.Window(metricstore.WindowQuery{
					From: from, To: to, Period: period, Stat: stat,
				}), want)

				// Raw single-pass Stat must match computing the legacy
				// statistic over the legacy window copy.
				if period == 0 {
					gotV, gotN := h.Stat(from, to, stat)
					wantV, wantN, err := legacy.WindowStat(perfbench.LegacyQuery{
						Namespace: m.ns, Name: m.name, Dimensions: m.dims,
						From: from, To: to, Stat: stat,
					})
					if err != nil {
						t.Fatal(err)
					}
					if gotN != wantN {
						t.Fatalf("%s: stat n %d != legacy %d", tag, gotN, wantN)
					}
					if math.Float64bits(gotV) != math.Float64bits(wantV) &&
						!(math.IsNaN(gotV) && math.IsNaN(wantV)) {
						t.Fatalf("%s: stat %v != legacy %v", tag, gotV, wantV)
					}
				}
			}

			// Latest agrees for every metric.
			for _, m := range metrics {
				want, wok := legacy.Latest(m.ns, m.name, m.dims)
				got, gok := storeLatest(st, m.ns, m.name, m.dims)
				if wok != gok {
					t.Fatalf("latest %s/%s: ok %v vs legacy %v", m.ns, m.name, gok, wok)
				}
				if wok && (!got.T.Equal(want.T) || math.Float64bits(got.V) != math.Float64bits(want.V)) {
					t.Fatalf("latest %s/%s: %v/%v vs legacy %v/%v", m.ns, m.name, got.T, got.V, want.T, want.V)
				}
			}
			_ = end
		})
	}
}

// TestHandleAndPutShareSeries confirms the wrapper and the handle write to
// the same interned series.
func TestHandleAndPutShareSeries(t *testing.T) {
	st := metricstore.NewStore()
	dims := map[string]string{"StreamName": "clicks"}
	h, err := st.Handle("Ingestion/Stream", "IncomingRecords", dims)
	if err != nil {
		t.Fatal(err)
	}
	t0 := simtime.Epoch
	if err := st.Put("Ingestion/Stream", "IncomingRecords", dims, t0, 1); err != nil {
		t.Fatal(err)
	}
	if err := h.Append(t0.Add(time.Second), 2); err != nil {
		t.Fatal(err)
	}
	if h.Len() != 2 {
		t.Fatalf("handle sees %d points, want 2", h.Len())
	}
	raw := storeRaw(st, "Ingestion/Stream", "IncomingRecords", dims)
	if raw.Len() != 2 {
		t.Fatalf("raw sees %d points, want 2", raw.Len())
	}
	if p, ok := h.Latest(); !ok || p.V != 2 {
		t.Fatalf("latest = %v,%v want 2", p, ok)
	}
	// Out-of-order appends stay rejected through both paths.
	if err := h.Append(t0, 3); err == nil {
		t.Fatal("out-of-order handle append accepted")
	}
	if err := st.Put("Ingestion/Stream", "IncomingRecords", dims, t0, 3); err == nil {
		t.Fatal("out-of-order put accepted")
	}
}

// TestInternedUnpublishedMetricIsInvisible: resolving a handle at build
// time must not make the metric observable before its first datapoint —
// pre-first-tick queries, listings and lookups behave exactly as when
// entries were only created on first Put.
func TestInternedUnpublishedMetricIsInvisible(t *testing.T) {
	st := metricstore.NewStore()
	dims := map[string]string{"StreamName": "clicks"}
	h := st.MustHandle("Ingestion/Stream", "IncomingRecords", dims)

	if got := st.ListMetrics(""); len(got) != 0 {
		t.Fatalf("unpublished metric listed: %v", got)
	}
	if got := st.Namespaces(); len(got) != 0 {
		t.Fatalf("unpublished namespace listed: %v", got)
	}
	if _, ok := st.Lookup("Ingestion/Stream", "IncomingRecords", dims); ok {
		t.Fatal("Lookup found unpublished metric")
	}
	if _, err := st.GetStatistics(metricstore.Query{
		Namespace: "Ingestion/Stream", Name: "IncomingRecords", Dimensions: dims,
	}); err == nil {
		t.Fatal("GetStatistics answered for unpublished metric")
	}
	if raw := storeRaw(st, "Ingestion/Stream", "IncomingRecords", dims); raw != nil {
		t.Fatalf("Raw returned %v for unpublished metric", raw)
	}
	visited := 0
	st.Each(func(metricstore.MetricID, timeseries.View) { visited++ })
	if visited != 0 {
		t.Fatalf("Each visited %d unpublished metrics", visited)
	}

	// First datapoint makes it visible everywhere.
	h.MustAppend(simtime.Epoch, 1)
	if got := st.ListMetrics(""); len(got) != 1 {
		t.Fatalf("published metric not listed: %v", got)
	}
	if _, ok := st.Lookup("Ingestion/Stream", "IncomingRecords", dims); !ok {
		t.Fatal("Lookup missed published metric")
	}
	if _, err := st.GetStatistics(metricstore.Query{
		Namespace: "Ingestion/Stream", Name: "IncomingRecords", Dimensions: dims,
	}); err != nil {
		t.Fatal(err)
	}
}

// TestHandleRetentionPrunes confirms the amortised pruning drops exactly
// the datapoints outside the window.
func TestHandleRetentionPrunes(t *testing.T) {
	st := metricstore.NewStore()
	st.SetRetention(100 * time.Second)
	h := st.MustHandle("NS", "M", nil)
	t0 := simtime.Epoch
	for i := 0; i < 1000; i++ {
		h.MustAppend(t0.Add(time.Duration(i)*time.Second), float64(i))
	}
	got := h.Window(metricstore.WindowQuery{})
	if got.Len() != 101 { // points at t-100 .. t inclusive
		t.Fatalf("retained %d points, want 101", got.Len())
	}
	if got.At(0).V != 899 {
		t.Fatalf("oldest retained value %v, want 899", got.At(0).V)
	}
}
