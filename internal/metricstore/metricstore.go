// Package metricstore implements the CloudWatch analogue of the
// reproduction: a namespaced repository of timestamped metrics with
// dimension filtering, period statistics, retention, and threshold alarms.
//
// Every simulated subsystem (stream, compute, kvstore, workload, billing)
// publishes its per-tick measurements here, and every Flower component
// (sensors, the dependency analyzer, the cross-platform monitor) reads them
// back — exactly the role CloudWatch plays in the paper's architecture
// (Fig. 3): "Flower's sensor module periodically collects live data from
// multiple sources such as CloudWatch".
package metricstore

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/timeseries"
)

// MetricID identifies one metric stream: a namespace (one per simulated
// platform, e.g. "Ingestion/Stream"), a metric name, and a dimension set
// (e.g. StreamName=clicks).
type MetricID struct {
	Namespace  string
	Name       string
	Dimensions map[string]string
}

// Key returns the canonical map key for the metric: namespace, name, and
// the dimension pairs sorted by dimension name.
func (id MetricID) Key() string {
	var b strings.Builder
	b.WriteString(id.Namespace)
	b.WriteByte('|')
	b.WriteString(id.Name)
	b.WriteByte('|')
	keys := make([]string, 0, len(id.Dimensions))
	for k := range id.Dimensions {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(id.Dimensions[k])
	}
	return b.String()
}

// String renders the ID in a human-readable form for dashboards and errors.
func (id MetricID) String() string {
	key := id.Key()
	return strings.ReplaceAll(key, "|", " ")
}

// Query selects datapoints for GetStatistics.
type Query struct {
	Namespace  string
	Name       string
	Dimensions map[string]string
	From, To   time.Time // half-open interval [From, To)
	Period     time.Duration
	Stat       timeseries.Agg
}

// Store is the metric repository. It is safe for concurrent use; the
// simulation itself is single-goroutine, but cmd/ tools and the monitor may
// read while a run is in flight.
type Store struct {
	mu        sync.RWMutex
	series    map[string]*entry
	retention time.Duration // 0 means keep everything
	alarms    map[string]*Alarm
	onPut     func(id MetricID, t time.Time, v float64)
}

type entry struct {
	id MetricID
	ts *timeseries.Series
}

// NewStore returns an empty store that retains all datapoints.
func NewStore() *Store {
	return &Store{
		series: make(map[string]*entry),
		alarms: make(map[string]*Alarm),
	}
}

// SetRetention bounds how much history Put keeps per metric; datapoints
// older than d relative to the newest datapoint of the same metric are
// dropped lazily on insert. Zero disables pruning.
func (s *Store) SetRetention(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.retention = d
}

// Put records one observation. Timestamps per metric must be non-decreasing
// (the simulation has one clock, so this holds by construction).
func (s *Store) Put(namespace, name string, dims map[string]string, t time.Time, v float64) error {
	if namespace == "" || name == "" {
		return fmt.Errorf("metricstore: namespace and name are required")
	}
	id := MetricID{Namespace: namespace, Name: name, Dimensions: dims}
	key := id.Key()

	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.series[key]
	if !ok {
		// Copy dims so callers can reuse their map.
		cp := make(map[string]string, len(dims))
		for k, v := range dims {
			cp[k] = v
		}
		id.Dimensions = cp
		e = &entry{id: id, ts: timeseries.New(1024)}
		s.series[key] = e
	}
	if err := e.ts.Append(t, v); err != nil {
		return fmt.Errorf("metricstore: put %s: %w", id, err)
	}
	if s.retention > 0 {
		cutoff := t.Add(-s.retention)
		if first := e.ts.At(0).T; first.Before(cutoff) {
			e.ts = e.ts.Between(cutoff, t.Add(time.Nanosecond))
		}
	}
	if s.onPut != nil {
		s.onPut(e.id, t, v)
	}
	return nil
}

// SetOnPut installs an observer invoked after every successful Put with the
// stored metric's canonical ID — the hook internal/persist uses to journal
// the metric stream durably. The observer runs under the store lock (Puts
// are ordered), so it must not call back into the store; pass nil to
// remove it.
func (s *Store) SetOnPut(fn func(id MetricID, t time.Time, v float64)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onPut = fn
}

// MustPut is Put for simulation components that own the clock; a failure is
// a wiring bug.
func (s *Store) MustPut(namespace, name string, dims map[string]string, t time.Time, v float64) {
	if err := s.Put(namespace, name, dims, t, v); err != nil {
		panic(err)
	}
}

// GetStatistics aggregates the selected metric into Period buckets using
// q.Stat, CloudWatch-style. A zero Period returns the raw points between
// From and To.
func (s *Store) GetStatistics(q Query) (*timeseries.Series, error) {
	id := MetricID{Namespace: q.Namespace, Name: q.Name, Dimensions: q.Dimensions}
	s.mu.RLock()
	e, ok := s.series[id.Key()]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("metricstore: no such metric %s", id)
	}
	to := q.To
	if to.IsZero() {
		if last, ok := e.ts.Last(); ok {
			to = last.T.Add(time.Nanosecond)
		}
	}
	from := q.From
	raw := e.ts.Between(from, to)
	if q.Period <= 0 {
		return raw, nil
	}
	return raw.Resample(q.Period, q.Stat), nil
}

// Latest returns the most recent datapoint of the metric.
func (s *Store) Latest(namespace, name string, dims map[string]string) (timeseries.Point, bool) {
	id := MetricID{Namespace: namespace, Name: name, Dimensions: dims}
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.series[id.Key()]
	if !ok {
		return timeseries.Point{}, false
	}
	return e.ts.Last()
}

// Raw returns a copy of the full stored series for the metric, or nil if
// the metric does not exist.
func (s *Store) Raw(namespace, name string, dims map[string]string) *timeseries.Series {
	id := MetricID{Namespace: namespace, Name: name, Dimensions: dims}
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.series[id.Key()]
	if !ok {
		return nil
	}
	if e.ts.Len() == 0 {
		return timeseries.New(0)
	}
	last, _ := e.ts.Last()
	return e.ts.Between(e.ts.At(0).T, last.T.Add(time.Nanosecond))
}

// ListMetrics returns the IDs of all metrics in the namespace (all
// namespaces if ns is empty), sorted by key for deterministic output.
func (s *Store) ListMetrics(ns string) []MetricID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.series))
	for k, e := range s.series {
		if ns == "" || e.id.Namespace == ns {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	out := make([]MetricID, 0, len(keys))
	for _, k := range keys {
		out = append(out, s.series[k].id)
	}
	return out
}

// Namespaces returns the distinct namespaces present, sorted.
func (s *Store) Namespaces() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set := make(map[string]bool)
	for _, e := range s.series {
		set[e.id.Namespace] = true
	}
	out := make([]string, 0, len(set))
	for ns := range set {
		out = append(out, ns)
	}
	sort.Strings(out)
	return out
}
