// Package metricstore implements the CloudWatch analogue of the
// reproduction: a namespaced repository of timestamped metrics with
// dimension filtering, period statistics, retention, and threshold alarms.
//
// Every simulated subsystem (stream, compute, kvstore, workload, billing)
// publishes its per-tick measurements here, and every Flower component
// (sensors, the dependency analyzer, the cross-platform monitor) reads them
// back — exactly the role CloudWatch plays in the paper's architecture
// (Fig. 3): "Flower's sensor module periodically collects live data from
// multiple sources such as CloudWatch".
//
// The store has two API tiers. The hot path is handle-based: Store.Handle
// interns a metric's identity once and returns a *Handle whose Append,
// Latest, Stat and Window operate under that metric's own lock with no
// per-call key construction — per-tick publishers and sensors resolve their
// handles at build time and stay allocation-free afterwards. The map-keyed
// Put/GetStatistics calls remain as compatibility wrappers that rebuild the
// key per call (into a pooled scratch buffer) and then take the same
// per-entry path (the Latest/Raw wrappers are gone: readers go through
// Lookup); the store-level lock is only ever held to create or look up
// entries, never while touching series data. The hotpath analyzer in
// internal/analysis machine-checks that per-tick packages stay on the
// handle tier.
package metricstore

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
	"repro/internal/timeseries"
)

// MetricID identifies one metric stream: a namespace (one per simulated
// platform, e.g. "Ingestion/Stream"), a metric name, and a dimension set
// (e.g. StreamName=clicks).
type MetricID struct {
	Namespace  string
	Name       string
	Dimensions map[string]string
}

// Key returns the canonical map key for the metric: namespace, name, and
// the dimension pairs sorted by dimension name.
func (id MetricID) Key() string {
	var sc keyScratch
	return string(sc.appendKey(id.Namespace, id.Name, id.Dimensions))
}

// String renders the ID in a human-readable form for dashboards and errors.
func (id MetricID) String() string {
	key := id.Key()
	return strings.ReplaceAll(key, "|", " ")
}

// keyScratch holds the reusable buffers the compatibility wrappers build
// canonical keys into, so a steady-state Put or query allocates nothing for
// key construction.
type keyScratch struct {
	buf  []byte
	keys []string
}

// appendKey renders the canonical key into the scratch buffer and returns
// it; the result is only valid until the scratch is reused.
func (sc *keyScratch) appendKey(ns, name string, dims map[string]string) []byte {
	b := append(sc.buf[:0], ns...)
	b = append(b, '|')
	b = append(b, name...)
	b = append(b, '|')
	keys := sc.keys[:0]
	for k := range dims {
		keys = append(keys, k)
	}
	// Insertion sort: dimension sets have a handful of keys at most, and
	// sort.Strings would force keys to escape.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	for i, k := range keys {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, k...)
		b = append(b, '=')
		b = append(b, dims[k]...)
	}
	sc.buf = b
	sc.keys = keys
	return b
}

// Query selects datapoints for GetStatistics.
type Query struct {
	Namespace  string
	Name       string
	Dimensions map[string]string
	From, To   time.Time // half-open interval [From, To)
	Period     time.Duration
	Stat       timeseries.Agg
}

// Store is the metric repository. It is safe for concurrent use: entry
// creation takes the store lock, while appends and queries synchronise on
// the individual metric's lock, so writers of different metrics never
// contend.
type Store struct {
	mu     sync.RWMutex
	series map[string]*entry
	alarms map[string]*Alarm

	// retention is the pruning window in nanoseconds (0 keeps everything);
	// atomic so the per-append read does not touch the store lock.
	retention atomic.Int64
	// onPut is the journal observer; atomic for the same reason.
	onPut atomic.Pointer[func(id MetricID, t time.Time, v float64)]

	keyPool sync.Pool // *keyScratch
}

// entry is one metric's series plus its lock and reusable query scratch.
type entry struct {
	id MetricID

	mu      sync.Mutex
	ts      *timeseries.Series
	scratch timeseries.AggScratch // percentile sort buffer, guarded by mu
}

// published reports whether the metric has any datapoints yet. Handles
// intern a metric's identity at build time, before its publisher has
// ticked; the read surface (queries, listings, lookups) treats such
// not-yet-published entries as absent, exactly as when entries were only
// created on first Put.
func (e *entry) published() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ts.Len() > 0
}

// NewStore returns an empty store that retains all datapoints.
func NewStore() *Store {
	s := &Store{
		series: make(map[string]*entry),
		alarms: make(map[string]*Alarm),
	}
	s.keyPool.New = func() any { return new(keyScratch) }
	return s
}

// SetRetention bounds how much history appends keep per metric; datapoints
// older than d relative to the newest datapoint of the same metric are
// dropped lazily on insert. Zero disables pruning.
func (s *Store) SetRetention(d time.Duration) {
	s.retention.Store(int64(d))
}

// SetOnPut installs an observer invoked after every successful append with
// the stored metric's canonical ID — the hook internal/persist uses to
// journal the metric stream durably. The observer runs under the metric's
// entry lock, so appends of one metric reach it in order; it must not call
// back into the store. Pass nil to remove it.
func (s *Store) SetOnPut(fn func(id MetricID, t time.Time, v float64)) {
	if fn == nil {
		s.onPut.Store(nil)
		return
	}
	s.onPut.Store(&fn)
}

// lookup finds the entry for the metric without creating it, building the
// key in pooled scratch so the steady state allocates nothing.
func (s *Store) lookup(ns, name string, dims map[string]string) *entry {
	sc := s.keyPool.Get().(*keyScratch)
	key := sc.appendKey(ns, name, dims)
	s.mu.RLock()
	e := s.series[string(key)]
	s.mu.RUnlock()
	s.keyPool.Put(sc)
	return e
}

// entryFor finds or creates the entry for the metric. Only a first-time
// creation allocates (the interned key string and a defensive copy of the
// dimension map) or takes the store's write lock.
func (s *Store) entryFor(ns, name string, dims map[string]string) (*entry, error) {
	if ns == "" || name == "" {
		return nil, fmt.Errorf("metricstore: namespace and name are required")
	}
	if e := s.lookup(ns, name, dims); e != nil {
		return e, nil
	}
	// Copy dims so callers can reuse their map.
	cp := make(map[string]string, len(dims))
	for k, v := range dims {
		cp[k] = v
	}
	id := MetricID{Namespace: ns, Name: name, Dimensions: cp}
	key := id.Key()
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.series[key]; ok {
		return e, nil
	}
	e := &entry{id: id, ts: timeseries.New(1024)}
	s.series[key] = e
	telEntries.Inc()
	return e, nil
}

// append records one observation under the entry's lock: ordered append,
// amortised retention pruning, and the journal hook. The telemetry at the
// bottom is hot-path safe: an atomic counter add, and trace timing only
// when a sampled tick trace is live (one atomic pointer load otherwise).
func (s *Store) append(e *entry, t time.Time, v float64) error {
	var traceStart time.Time
	tr := telemetry.Traces.Active()
	if tr != nil {
		traceStart = telemetry.Now()
	}
	e.mu.Lock()
	if err := e.ts.Append(t, v); err != nil {
		e.mu.Unlock()
		return fmt.Errorf("metricstore: put %s: %w", e.id, err)
	}
	if ret := s.retention.Load(); ret > 0 {
		copiedBefore := e.ts.Copied()
		if dropped := e.ts.DropBefore(t.Add(-time.Duration(ret))); dropped > 0 {
			telRetentionDropped.Add(uint64(dropped))
			if d := e.ts.Copied() - copiedBefore; d > 0 {
				telCompactionCopied.Add(uint64(d))
			}
		}
	}
	if fn := s.onPut.Load(); fn != nil {
		(*fn)(e.id, t, v)
	}
	e.mu.Unlock()
	telAppends.Inc()
	if tr != nil {
		tr.AddAppend(telemetry.SinceNanos(traceStart))
	}
	return nil
}

// resolveTo implements the shared open-ended-window rule — a zero to
// means "through the newest datapoint" — for every windowed read (window,
// Handle.Stat, Handle.WindowValues). It must be called under e.mu.
func (e *entry) resolveTo(to time.Time) time.Time {
	if to.IsZero() {
		if last, ok := e.ts.Last(); ok {
			return last.T.Add(time.Nanosecond)
		}
	}
	return to
}

// window answers a statistics query against one entry: the raw points in
// [from, to) when period is zero, otherwise the period-bucketed statistic.
// A zero to means "through the newest datapoint".
func (s *Store) window(e *entry, from, to time.Time, period time.Duration, stat timeseries.Agg) *timeseries.Series {
	e.mu.Lock()
	defer e.mu.Unlock()
	v := e.ts.View(from, e.resolveTo(to))
	if period <= 0 {
		return v.Materialize()
	}
	// Presize the output to the bucket count the window implies: resampling
	// can only shrink the point count, and growing the columns append by
	// append is the read path's dominant allocation source.
	buckets := v.Len()
	if v.Len() > 1 {
		if span := v.NanoAt(v.Len()-1) - v.NanoAt(0); span >= 0 {
			if n := int(span/int64(period)) + 1; n < buckets {
				buckets = n
			}
		}
	}
	return v.ResampleInto(timeseries.New(buckets), period, stat, &e.scratch)
}

// Put records one observation. Timestamps per metric must be non-decreasing
// (the simulation has one clock, so this holds by construction). Callers on
// a per-tick path should resolve a Handle once instead and Append through
// it; Put re-derives the metric key from the dimension map on every call.
func (s *Store) Put(namespace, name string, dims map[string]string, t time.Time, v float64) error {
	e, err := s.entryFor(namespace, name, dims)
	if err != nil {
		return err
	}
	return s.append(e, t, v)
}

// MustPut is Put for simulation components that own the clock; a failure is
// a wiring bug.
func (s *Store) MustPut(namespace, name string, dims map[string]string, t time.Time, v float64) {
	if err := s.Put(namespace, name, dims, t, v); err != nil {
		panic(err)
	}
}

// GetStatistics aggregates the selected metric into Period buckets using
// q.Stat, CloudWatch-style. A zero Period returns the raw points between
// From and To.
func (s *Store) GetStatistics(q Query) (*timeseries.Series, error) {
	e := s.lookup(q.Namespace, q.Name, q.Dimensions)
	if e == nil || !e.published() {
		id := MetricID{Namespace: q.Namespace, Name: q.Name, Dimensions: q.Dimensions}
		return nil, fmt.Errorf("metricstore: no such metric %s", id)
	}
	return s.window(e, q.From, q.To, q.Period, q.Stat), nil
}

// sortedEntries snapshots the published entry set sorted by canonical key.
func (s *Store) sortedEntries(ns string) []*entry {
	s.mu.RLock()
	keys := make([]string, 0, len(s.series))
	for k, e := range s.series {
		if ns == "" || e.id.Namespace == ns {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	entries := make([]*entry, len(keys))
	for i, k := range keys {
		entries[i] = s.series[k]
	}
	s.mu.RUnlock()
	out := entries[:0]
	for _, e := range entries {
		if e.published() {
			out = append(out, e)
		}
	}
	return out
}

// Each visits every published metric sorted by canonical key, passing a
// zero-copy view of its series taken under the metric's lock. The view is
// only valid during the callback; the callback must not call back into the
// store for the same metric.
func (s *Store) Each(fn func(id MetricID, v timeseries.View)) {
	for _, e := range s.sortedEntries("") {
		e.mu.Lock()
		fn(e.id, e.ts.ViewAll())
		e.mu.Unlock()
	}
}

// ListMetrics returns the IDs of all published metrics in the namespace
// (all namespaces if ns is empty), sorted by key for deterministic output.
func (s *Store) ListMetrics(ns string) []MetricID {
	entries := s.sortedEntries(ns)
	out := make([]MetricID, len(entries))
	for i, e := range entries {
		out[i] = e.id
	}
	return out
}

// Namespaces returns the distinct namespaces with published metrics,
// sorted.
func (s *Store) Namespaces() []string {
	set := make(map[string]bool)
	for _, e := range s.sortedEntries("") {
		set[e.id.Namespace] = true
	}
	out := make([]string, 0, len(set))
	for ns := range set {
		out = append(out, ns)
	}
	sort.Strings(out)
	return out
}
