package metricstore

import (
	"time"

	"repro/internal/timeseries"
)

// Handle is an interned reference to one metric's series. Resolving a
// handle pays the key construction and map lookup once; every operation on
// the handle afterwards synchronises only on that metric's lock and
// performs no per-call key work or allocation, which is what keeps the
// per-tick publish/sense path flat no matter how many metrics the store
// holds. Handles are safe for concurrent use and remain valid for the life
// of the store.
type Handle struct {
	s *Store
	e *entry
}

// Handle interns the metric (creating its series if absent) and returns
// the hot-path reference to it. Components that publish or read the same
// metric every tick should call this once at build time.
func (s *Store) Handle(namespace, name string, dims map[string]string) (*Handle, error) {
	e, err := s.entryFor(namespace, name, dims)
	if err != nil {
		return nil, err
	}
	return &Handle{s: s, e: e}, nil
}

// MustHandle is Handle for wiring code where failure is a bug.
func (s *Store) MustHandle(namespace, name string, dims map[string]string) *Handle {
	h, err := s.Handle(namespace, name, dims)
	if err != nil {
		panic(err)
	}
	return h
}

// Lookup returns a handle to a metric that has published at least one
// datapoint, without creating anything — the resolution path for sensors
// and monitors that must not register metrics the simulation has not
// published yet (an interned-but-unpublished handle target is still
// reported as absent).
func (s *Store) Lookup(namespace, name string, dims map[string]string) (*Handle, bool) {
	e := s.lookup(namespace, name, dims)
	if e == nil || !e.published() {
		return nil, false
	}
	return &Handle{s: s, e: e}, true
}

// ID returns the metric's canonical identity. The dimension map is the
// store's interned copy and must not be mutated.
func (h *Handle) ID() MetricID { return h.e.id }

// Append records one observation; the timestamp must not precede the
// metric's newest datapoint. Retention pruning and the journal hook run
// exactly as for Store.Put.
func (h *Handle) Append(t time.Time, v float64) error {
	return h.s.append(h.e, t, v)
}

// MustAppend is Append for publishers that own the clock.
func (h *Handle) MustAppend(t time.Time, v float64) {
	if err := h.Append(t, v); err != nil {
		panic(err)
	}
}

// Latest returns the metric's most recent datapoint.
func (h *Handle) Latest() (timeseries.Point, bool) {
	h.e.mu.Lock()
	defer h.e.mu.Unlock()
	return h.e.ts.Last()
}

// Len reports the number of retained datapoints.
func (h *Handle) Len() int {
	h.e.mu.Lock()
	defer h.e.mu.Unlock()
	return h.e.ts.Len()
}

// Stat computes one statistic over the raw datapoints in [from, to) in a
// single pass, without materialising the window; a zero to means "through
// the newest datapoint". n reports how many points the window held (the
// statistic is NaN when n is 0, except count and sum). Percentile
// statistics sort into the entry's reusable scratch, so the steady state
// allocates nothing.
func (h *Handle) Stat(from, to time.Time, stat timeseries.Agg) (v float64, n int) {
	e := h.e
	e.mu.Lock()
	defer e.mu.Unlock()
	w := e.ts.View(from, e.resolveTo(to))
	return w.Aggregate(stat, &e.scratch), w.Len()
}

// WindowQuery selects datapoints for Handle.Window: the half-open interval
// [From, To) — a zero To meaning "through the newest datapoint" — bucketed
// by Period with Stat (zero Period returns the raw points).
type WindowQuery struct {
	From, To time.Time
	Period   time.Duration
	Stat     timeseries.Agg
}

// Window returns the queried window as an independent series, like
// Store.GetStatistics without the per-call metric resolution.
func (h *Handle) Window(q WindowQuery) *timeseries.Series {
	return h.s.window(h.e, q.From, q.To, q.Period, q.Stat)
}

// ViewWindow runs fn with a zero-copy view of the datapoints in [from, to)
// — a zero to means "through the newest datapoint" — plus the entry's
// reusable percentile scratch, all under the metric's lock. This is the
// query engine's evaluation hook: an operator chain streams over the view
// in place and materialises only its (usually much smaller) output. fn
// must not retain the view or the scratch past the call, and must not call
// back into the store for the same metric.
func (h *Handle) ViewWindow(from, to time.Time, fn func(v timeseries.View, sc *timeseries.AggScratch)) {
	e := h.e
	e.mu.Lock()
	defer e.mu.Unlock()
	fn(e.ts.View(from, e.resolveTo(to)), &e.scratch)
}

// WindowValues appends the raw values in [from, to) to dst and returns the
// extended slice — a zero To means "through the newest datapoint", as for
// Stat and Window — so repeat pollers reuse one buffer instead of
// materialising Raw/Between/Values chains per poll.
func (h *Handle) WindowValues(from, to time.Time, dst []float64) []float64 {
	e := h.e
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ts.View(from, e.resolveTo(to)).CopyValues(dst)
}
