package metricstore_test

import (
	"repro/internal/metricstore"
	"repro/internal/timeseries"
)

// storeLatest reads a metric's newest datapoint through the handle tier
// (the map-keyed Store.Latest wrapper was removed once callers moved to
// handles).
func storeLatest(s *metricstore.Store, ns, name string, dims map[string]string) (timeseries.Point, bool) {
	h, ok := s.Lookup(ns, name, dims)
	if !ok {
		return timeseries.Point{}, false
	}
	return h.Latest()
}

// storeRaw reads a copy of a metric's full stored series through the
// handle tier, or nil when the metric has never been published.
func storeRaw(s *metricstore.Store, ns, name string, dims map[string]string) *timeseries.Series {
	h, ok := s.Lookup(ns, name, dims)
	if !ok {
		return nil
	}
	return h.Window(metricstore.WindowQuery{})
}
