package share

import (
	"math"
	"testing"

	"repro/internal/deps"
	"repro/internal/nsga2"
)

func validProblem() Problem {
	return Problem{
		Resources: []Resource{
			{Layer: deps.Ingestion, Name: "shards", CostPerUnit: 0.015, Min: 1, Max: 20, Integer: true},
			{Layer: deps.Analytics, Name: "vms", CostPerUnit: 0.10, Min: 1, Max: 20, Integer: true},
		},
		Budget: 1.0,
	}
}

func TestValidate(t *testing.T) {
	if err := validProblem().Validate(); err != nil {
		t.Fatal(err)
	}
	p := validProblem()
	p.Resources = nil
	if err := p.Validate(); err == nil {
		t.Fatal("no resources accepted")
	}
	p = validProblem()
	p.Budget = 0
	if err := p.Validate(); err == nil {
		t.Fatal("zero budget accepted")
	}
	p = validProblem()
	p.Resources[0].CostPerUnit = 0
	if err := p.Validate(); err == nil {
		t.Fatal("zero cost accepted")
	}
	p = validProblem()
	p.Resources[0].Min = 30 // > Max
	if err := p.Validate(); err == nil {
		t.Fatal("min>max accepted")
	}
	p = validProblem()
	p.Constraints = []Constraint{{Coeffs: []float64{1}, Bound: 0}}
	if err := p.Validate(); err == nil {
		t.Fatal("wrong-arity constraint accepted")
	}
}

func TestConstraintViolation(t *testing.T) {
	c := Constraint{Coeffs: []float64{1, -5}, Bound: 0} // r0 − 5·r1 ≤ 0
	if v := c.Violation([]float64{10, 3}); v != 0 {
		t.Fatalf("satisfied constraint violation = %v", v)
	}
	if v := c.Violation([]float64{20, 3}); math.Abs(v-5) > 1e-12 {
		t.Fatalf("violated constraint violation = %v, want 5", v)
	}
}

func TestCostAndQuantize(t *testing.T) {
	p := validProblem()
	if got := p.Cost([]float64{10, 5}); math.Abs(got-(10*0.015+5*0.10)) > 1e-12 {
		t.Fatalf("Cost = %v", got)
	}
	q := p.quantize([]float64{3.7, 25.2})
	if q[0] != 4 || q[1] != 20 {
		t.Fatalf("quantize = %v, want [4 20]", q)
	}
}

func TestAnalyzeRespectsBudgetAndConstraints(t *testing.T) {
	p := validProblem()
	p.Constraints = []Constraint{
		{Coeffs: []float64{1, -2}, Bound: 0, Label: "shards ≤ 2·vms"},
	}
	plans, err := Analyze(p, nsga2.Config{PopSize: 80, Generations: 120, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) == 0 {
		t.Fatal("no feasible plans")
	}
	for _, plan := range plans {
		if plan.HourlyCost > p.Budget+1e-9 {
			t.Fatalf("plan %v exceeds budget: %v", plan.Amounts, plan.HourlyCost)
		}
		if plan.Amounts[0] > 2*plan.Amounts[1]+1e-9 {
			t.Fatalf("plan %v violates constraint", plan.Amounts)
		}
		for i, r := range p.Resources {
			v := plan.Amounts[i]
			if v < r.Min || v > r.Max || v != math.Round(v) {
				t.Fatalf("plan amount %v outside integral range of %s", v, r.Name)
			}
		}
	}
}

// dominatesMax is the test's independent oracle for maximisation
// dominance (the production path goes through nsga2.NonDominated).
func dominatesMax(a, b []float64) bool {
	better := false
	for i := range a {
		if a[i] < b[i] {
			return false
		}
		if a[i] > b[i] {
			better = true
		}
	}
	return better
}

func TestAnalyzeFrontIsMutuallyNonDominated(t *testing.T) {
	p := validProblem()
	plans, err := Analyze(p, nsga2.Config{PopSize: 60, Generations: 80, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plans {
		for j := range plans {
			if i != j && dominatesMax(plans[i].Amounts, plans[j].Amounts) {
				t.Fatalf("plan %v dominates plan %v on the returned front",
					plans[i].Amounts, plans[j].Amounts)
			}
		}
	}
	// Dedup: no identical allocation twice.
	seen := map[string]bool{}
	for _, plan := range plans {
		k := ""
		for _, v := range plan.Amounts {
			k += "|"
			k += string(rune(int(v)))
		}
		if seen[k] {
			t.Fatalf("duplicate plan %v", plan.Amounts)
		}
		seen[k] = true
	}
}

func TestAnalyzeDeterminism(t *testing.T) {
	p := validProblem()
	a, err := Analyze(p, nsga2.Config{PopSize: 40, Generations: 40, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Analyze(p, nsga2.Config{PopSize: 40, Generations: 40, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("plan counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		for k := range a[i].Amounts {
			if a[i].Amounts[k] != b[i].Amounts[k] {
				t.Fatal("same-seed plans differ")
			}
		}
	}
}

func TestPaperExampleProblem(t *testing.T) {
	// With 2017 prices and a 0.29 $/h budget the analytic Pareto front of
	// the paper's constraint set has exactly six integer plans —
	// (shards, vms) ∈ {(2,1),(3,1),(4,1),(5,1),(4,2),(5,2)} with the
	// budget-maximal WCU each — matching Fig. 4's six solutions.
	p := PaperExampleProblem(0.29, 0.015, 0.10, 0.00065)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	plans, err := Analyze(p, nsga2.Config{PopSize: 120, Generations: 250, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) == 0 {
		t.Fatal("no feasible plans for the paper example")
	}
	if len(plans) > 6 {
		t.Fatalf("front has %d plans, analytic front has 6", len(plans))
	}
	allowed := map[[2]float64]bool{
		{2, 1}: true, {3, 1}: true, {4, 1}: true, {5, 1}: true,
		{4, 2}: true, {5, 2}: true,
	}
	for _, plan := range plans {
		key := [2]float64{plan.Amounts[0], plan.Amounts[1]}
		if !allowed[key] {
			t.Fatalf("plan %v has (shards, vms) outside the analytic front", plan.Amounts)
		}
	}
	for _, plan := range plans {
		rI, rA, rS := plan.Amounts[0], plan.Amounts[1], plan.Amounts[2]
		if rI > 5*rA+1e-9 {
			t.Fatalf("plan %v violates 5·vms ≥ shards", plan.Amounts)
		}
		if 2*rA > rI+1e-9 {
			t.Fatalf("plan %v violates 2·vms ≤ shards", plan.Amounts)
		}
		if 2*rI > rS+1e-9 {
			t.Fatalf("plan %v violates 2·shards ≤ wcu", plan.Amounts)
		}
		if plan.HourlyCost > 0.9+1e-9 {
			t.Fatalf("plan %v exceeds budget", plan.Amounts)
		}
	}
}

func TestFromDependency(t *testing.T) {
	cs := FromDependency(4.8, 0.0002, 0, 1, 2, 1.0)
	if len(cs) != 2 {
		t.Fatalf("got %d constraints, want 2", len(cs))
	}
	// A point on the line r1 = 4.8 + 0.0002·r0 must satisfy both.
	onLine := []float64{10000, 4.8 + 0.0002*10000}
	for _, c := range cs {
		if v := c.Violation(onLine); v > 1e-9 {
			t.Fatalf("on-line point violates %q by %v", c.Label, v)
		}
	}
	// A point far above the line violates the upper constraint.
	above := []float64{10000, 100}
	if cs[0].Violation(above) == 0 {
		t.Fatal("far-above point does not violate upper sandwich")
	}
	// A point far below violates the lower constraint.
	below := []float64{10000, 0}
	if cs[1].Violation(below) == 0 {
		t.Fatal("far-below point does not violate lower sandwich")
	}
}

func TestAnalyzeInvalidProblem(t *testing.T) {
	if _, err := Analyze(Problem{}, nsga2.Config{}); err == nil {
		t.Fatal("invalid problem accepted")
	}
}
