// Package share implements Flower's Resource Share Analyzer (§3.2): given
// a budget and (learned or asserted) dependency constraints between
// layers, it determines the maximum share of resources for each layer by
// solving the paper's multi-objective program
//
//	max (r(I), r(A), r(S))                                  (Eq. 3)
//	s.t. Σ_d r(I)·c_d + Σ_d r(A)·c_d + Σ_d r(S)·c_d ≤ Bud_t  (Eq. 4)
//	     r(L1) = β0 + β1·r(L2) + ε                           (Eq. 5)
//
// with NSGA-II (reference [8]), returning the Pareto-optimal provisioning
// plans (Fig. 4 shows six such solutions for the paper's example).
package share

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/deps"
	"repro/internal/nsga2"
)

// Resource is one decision variable of the share problem: a resource type
// in one layer with its cost dimension and allocation range.
type Resource struct {
	// Layer the resource belongs to.
	Layer deps.Layer
	// Name of the resource, e.g. "shards", "vms", "wcu".
	Name string
	// CostPerUnit is the cost dimension c_d (dollars per unit-hour).
	CostPerUnit float64
	// Min and Max bound the allocation.
	Min, Max float64
	// Integer marks resources allocated in whole units (shards, VMs).
	Integer bool
}

// Constraint is a linear inequality Σ Coeffs[i]·r_i ≤ Bound over the
// problem's resources — the normal form for both the paper's assumptive
// dependency constraints (e.g. 5·r(A) ≥ r(I) becomes r(I) − 5·r(A) ≤ 0)
// and regression-learned dependencies.
type Constraint struct {
	Coeffs []float64
	Bound  float64
	Label  string
}

// Violation returns by how much x violates the constraint (0 if satisfied).
func (c Constraint) Violation(x []float64) float64 {
	sum := 0.0
	for i, coef := range c.Coeffs {
		sum += coef * x[i]
	}
	if sum > c.Bound {
		return sum - c.Bound
	}
	return 0
}

// FromDependency converts a learned dependency r_to = β0 + β1·r_from ± tol
// (Eq. 5, as fitted by internal/deps) into the two inequalities that
// sandwich the regression line, for the resources at the given indices of
// an n-variable problem.
func FromDependency(b0, b1 float64, fromIdx, toIdx, n int, tol float64) []Constraint {
	up := make([]float64, n)
	lo := make([]float64, n)
	// r_to − β1·r_from ≤ β0 + tol
	up[toIdx] = 1
	up[fromIdx] = -b1
	// β1·r_from − r_to ≤ −β0 + tol
	lo[toIdx] = -1
	lo[fromIdx] = b1
	return []Constraint{
		{Coeffs: up, Bound: b0 + tol, Label: "dependency-upper"},
		{Coeffs: lo, Bound: -b0 + tol, Label: "dependency-lower"},
	}
}

// Problem is the Eq. 3–5 program.
type Problem struct {
	Resources   []Resource
	Budget      float64 // Bud_t: total allowed cost per hour
	Constraints []Constraint
}

// Validate checks problem invariants.
func (p Problem) Validate() error {
	if len(p.Resources) == 0 {
		return fmt.Errorf("share: at least one resource is required")
	}
	if p.Budget <= 0 {
		return fmt.Errorf("share: budget must be positive, got %v", p.Budget)
	}
	for i, r := range p.Resources {
		if r.Name == "" {
			return fmt.Errorf("share: resource %d has no name", i)
		}
		if r.CostPerUnit <= 0 {
			return fmt.Errorf("share: resource %s has non-positive cost", r.Name)
		}
		if r.Min < 0 || r.Min > r.Max {
			return fmt.Errorf("share: resource %s has invalid range [%v, %v]", r.Name, r.Min, r.Max)
		}
		if r.Integer && math.Ceil(r.Min) > math.Floor(r.Max) {
			return fmt.Errorf("share: integer resource %s has no whole unit in [%v, %v]", r.Name, r.Min, r.Max)
		}
	}
	for _, c := range p.Constraints {
		if len(c.Coeffs) != len(p.Resources) {
			return fmt.Errorf("share: constraint %q has %d coefficients for %d resources",
				c.Label, len(c.Coeffs), len(p.Resources))
		}
	}
	return nil
}

// Cost prices an allocation per hour (the left side of Eq. 4).
func (p Problem) Cost(x []float64) float64 {
	total := 0.0
	for i, r := range p.Resources {
		total += x[i] * r.CostPerUnit
	}
	return total
}

// quantize rounds integer resources to whole units, clamped into range.
func (p Problem) quantize(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, r := range p.Resources {
		v := x[i]
		lo, hi := r.Min, r.Max
		if r.Integer {
			// Clamp into the integer-feasible sub-range: rounding first and
			// clamping to fractional bounds after would let an integer
			// resource land on a fractional bound (e.g. Round(2.9)=3
			// clamped back to Max=2.875).
			v = math.Round(v)
			lo, hi = math.Ceil(lo), math.Floor(hi)
		}
		if v < lo {
			v = lo
		}
		if v > hi {
			v = hi
		}
		out[i] = v
	}
	return out
}

// Plan is one Pareto-optimal provisioning plan.
type Plan struct {
	// Amounts holds one allocation per problem resource.
	Amounts []float64
	// HourlyCost is the plan's Eq. 4 left side.
	HourlyCost float64
}

// Analyze solves the program with NSGA-II and returns the de-duplicated
// feasible Pareto front, sorted by allocation vector for deterministic
// output. For problems with integer resources the continuous NSGA-II
// population collapses onto a small set of integer plans — the paper's
// example yields six (Fig. 4).
func Analyze(p Problem, cfg nsga2.Config) ([]Plan, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(p.Resources)
	lower := make([]float64, n)
	upper := make([]float64, n)
	for i, r := range p.Resources {
		lower[i] = r.Min
		upper[i] = r.Max
	}
	prob := nsga2.Problem{
		NumVars:       n,
		NumObjectives: n,
		Lower:         lower,
		Upper:         upper,
		Evaluate: func(x []float64) ([]float64, float64) {
			q := p.quantize(x)
			objs := make([]float64, n)
			for i := range q {
				objs[i] = -q[i] // NSGA-II minimises; Eq. 3 maximises
			}
			violation := 0.0
			if cost := p.Cost(q); cost > p.Budget {
				violation += (cost - p.Budget) / p.Budget
			}
			for _, c := range p.Constraints {
				violation += c.Violation(q)
			}
			return objs, violation
		},
	}
	front, err := nsga2.Run(prob, cfg)
	if err != nil {
		return nil, err
	}

	seen := make(map[string]bool)
	var plans []Plan
	for _, s := range front {
		if s.Violation > 1e-9 {
			continue
		}
		q := p.quantize(s.X)
		key := fmt.Sprint(q)
		if seen[key] {
			continue
		}
		seen[key] = true
		plans = append(plans, Plan{Amounts: q, HourlyCost: p.Cost(q)})
	}
	plans = paretoFilter(plans)
	sort.Slice(plans, func(i, j int) bool {
		for k := range plans[i].Amounts {
			if plans[i].Amounts[k] != plans[j].Amounts[k] {
				return plans[i].Amounts[k] < plans[j].Amounts[k]
			}
		}
		return false
	})
	return plans, nil
}

// paretoFilter removes plans dominated in the maximisation sense after
// quantisation (rounding can introduce dominated duplicates), reusing
// the shared front-extraction primitive over negated amounts.
func paretoFilter(plans []Plan) []Plan {
	objs := make([][]float64, len(plans))
	for i, p := range plans {
		neg := make([]float64, len(p.Amounts))
		for j, v := range p.Amounts {
			neg[j] = -v
		}
		objs[i] = neg
	}
	var out []Plan
	for _, i := range nsga2.NonDominated(objs) {
		out = append(out, plans[i])
	}
	return out
}

// PaperExampleProblem builds the exact example of §3.2 / Fig. 4: shards in
// ingestion, VMs in analytics, write-capacity units in storage, subject to
//
//	5·r(A) ≥ r(I),  2·r(A) ≤ r(I),  2·r(I) ≤ r(S)
//
// and an hourly budget. Prices default to the 2017-era ones in
// internal/billing.
func PaperExampleProblem(budget float64, shardPrice, vmPrice, wcuPrice float64) Problem {
	return Problem{
		Resources: []Resource{
			{Layer: deps.Ingestion, Name: "shards", CostPerUnit: shardPrice, Min: 1, Max: 50, Integer: true},
			{Layer: deps.Analytics, Name: "vms", CostPerUnit: vmPrice, Min: 1, Max: 50, Integer: true},
			{Layer: deps.Storage, Name: "wcu", CostPerUnit: wcuPrice, Min: 1, Max: 2000, Integer: true},
		},
		Budget: budget,
		Constraints: []Constraint{
			// 5·r(A) ≥ r(I)  ⇔  r(I) − 5·r(A) ≤ 0
			{Coeffs: []float64{1, -5, 0}, Bound: 0, Label: "5·vms ≥ shards"},
			// 2·r(A) ≤ r(I)  ⇔  2·r(A) − r(I) ≤ 0
			{Coeffs: []float64{-1, 2, 0}, Bound: 0, Label: "2·vms ≤ shards"},
			// 2·r(I) ≤ r(S)  ⇔  2·r(I) − r(S) ≤ 0
			{Coeffs: []float64{2, 0, -1}, Bound: 0, Label: "2·shards ≤ wcu"},
		},
	}
}
