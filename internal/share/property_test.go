package share

// Property-based tests of the share analyzer: whatever (solvable) random
// program it is handed, every returned plan must respect the budget (Eq. 4)
// and every constraint (Eq. 5), sit inside the resource bounds, quantise
// integer resources, and form a mutually non-dominated set.

import (
	"testing"
	"testing/quick"

	"repro/internal/deps"
	"repro/internal/nsga2"
)

// randomProgram builds a 2–3 resource problem from fuzz bytes, constructed
// so that the all-minimum allocation is always feasible.
func randomProgram(raw []uint8) Problem {
	n := int(raw[0]%2) + 2
	res := make([]Resource, n)
	layers := []deps.Layer{deps.Ingestion, deps.Analytics, deps.Storage}
	minCost := 0.0
	for i := 0; i < n; i++ {
		b := func(j int) float64 {
			if idx := 1 + i*3 + j; idx < len(raw) {
				return float64(raw[idx])
			}
			return float64(2*i + j + 1)
		}
		res[i] = Resource{
			Layer:       layers[i%len(layers)],
			Name:        string(rune('a' + i)),
			CostPerUnit: b(0)/256 + 0.01,
			Min:         1,
			Max:         b(1)/8 + 2,
			Integer:     int(b(2))%2 == 0,
		}
		minCost += res[i].CostPerUnit * res[i].Min
	}
	return Problem{
		Resources: res,
		Budget:    minCost * 1.5, // all-minimums always affordable
	}
}

func analyzeCfg(seed int64) nsga2.Config {
	return nsga2.Config{PopSize: 32, Generations: 40, Seed: seed}
}

func TestPlansRespectBudgetAndBoundsProperty(t *testing.T) {
	f := func(raw []uint8, seed int64) bool {
		if len(raw) == 0 {
			return true
		}
		p := randomProgram(raw)
		plans, err := Analyze(p, analyzeCfg(seed))
		if err != nil || len(plans) == 0 {
			return false
		}
		for _, plan := range plans {
			if len(plan.Amounts) != len(p.Resources) {
				return false
			}
			if p.Cost(plan.Amounts) > p.Budget+1e-9 {
				return false
			}
			for i, r := range p.Resources {
				v := plan.Amounts[i]
				if v < r.Min-1e-9 || v > r.Max+1e-9 {
					return false
				}
				if r.Integer && v != float64(int64(v)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPlansSatisfyDependencyConstraintsProperty(t *testing.T) {
	f := func(raw []uint8, seed int64) bool {
		if len(raw) < 4 {
			return true
		}
		p := randomProgram(raw)
		// One paper-style ratio constraint between the first two
		// resources: r0 ≤ k·r1, with k large enough that the all-minimum
		// point stays feasible.
		k := float64(raw[1]%5) + 1
		coeffs := make([]float64, len(p.Resources))
		coeffs[0] = 1
		coeffs[1] = -k
		p.Constraints = append(p.Constraints, Constraint{Coeffs: coeffs, Bound: 0, Label: "ratio"})

		plans, err := Analyze(p, analyzeCfg(seed))
		if err != nil {
			return false
		}
		for _, plan := range plans {
			for _, c := range p.Constraints {
				if c.Violation(plan.Amounts) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPlansMutuallyNonDominatedProperty(t *testing.T) {
	// Exact dominance, matching the analyzer's own Pareto filter: with
	// continuous resources the front legitimately contains solutions that
	// differ by less than any fixed epsilon, so a tolerant comparison
	// would manufacture false dominations between distinct points.
	dominatesAll := func(a, b Plan) bool {
		better := false
		for i := range a.Amounts {
			if a.Amounts[i] < b.Amounts[i] {
				return false
			}
			if a.Amounts[i] > b.Amounts[i] {
				better = true
			}
		}
		return better
	}
	f := func(raw []uint8, seed int64) bool {
		if len(raw) == 0 {
			return true
		}
		plans, err := Analyze(randomProgram(raw), analyzeCfg(seed))
		if err != nil {
			return false
		}
		for i := range plans {
			for j := range plans {
				if i != j && dominatesAll(plans[i], plans[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFromDependencySandwichesLine(t *testing.T) {
	// The two generated constraints must accept points on the regression
	// line (within tol) and reject points far off it.
	cs := FromDependency(4.8, 0.0002, 0, 1, 2, 0.5)
	if len(cs) != 2 {
		t.Fatalf("constraints = %d, want 2", len(cs))
	}
	on := []float64{10000, 4.8 + 0.0002*10000} // exactly on the line
	for _, c := range cs {
		if v := c.Violation(on); v > 1e-9 {
			t.Errorf("%s: on-line point violates by %v", c.Label, v)
		}
	}
	above := []float64{10000, 4.8 + 0.0002*10000 + 1.0} // 1 > tol above
	below := []float64{10000, 4.8 + 0.0002*10000 - 1.0}
	if cs[0].Violation(above) == 0 {
		t.Error("upper constraint accepted a point above the band")
	}
	if cs[1].Violation(below) == 0 {
		t.Error("lower constraint accepted a point below the band")
	}
}

// TestQuantizeIntegerWithFractionalBounds is the regression test for a bug
// the fuzz suite found: an integer resource with a fractional Max (e.g.
// 2.875) could be rounded up and then clamped back onto the fractional
// bound, yielding a non-integer "integer" allocation.
func TestQuantizeIntegerWithFractionalBounds(t *testing.T) {
	p := Problem{
		Resources: []Resource{
			{Layer: deps.Ingestion, Name: "a", CostPerUnit: 0.01, Min: 1.25, Max: 2.875, Integer: true},
			{Layer: deps.Analytics, Name: "b", CostPerUnit: 0.01, Min: 1, Max: 10, Integer: false},
		},
		Budget: 10,
	}
	plans, err := Analyze(p, analyzeCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	for _, plan := range plans {
		v := plan.Amounts[0]
		if v != float64(int64(v)) {
			t.Fatalf("integer resource allocated fractional amount %v", v)
		}
		if v < 2 || v > 2 { // ceil(1.25)=2, floor(2.875)=2
			t.Errorf("allocation %v outside integer-feasible {2}", v)
		}
	}
}

func TestValidateRejectsIntegerRangeWithoutWholeUnit(t *testing.T) {
	p := Problem{
		Resources: []Resource{
			{Layer: deps.Ingestion, Name: "a", CostPerUnit: 0.01, Min: 2.1, Max: 2.9, Integer: true},
		},
		Budget: 10,
	}
	if err := p.Validate(); err == nil {
		t.Fatal("integer resource with no whole unit in range accepted")
	}
}
