package forecast

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSES(t *testing.T) {
	if _, err := NewSES(0); err == nil {
		t.Fatal("alpha 0 accepted")
	}
	if _, err := NewSES(1.5); err == nil {
		t.Fatal("alpha > 1 accepted")
	}
	s, err := NewSES(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Ready() {
		t.Fatal("ready before data")
	}
	s.Observe(10)
	if !s.Ready() || s.Forecast(1) != 10 {
		t.Fatalf("first forecast = %v, want 10", s.Forecast(1))
	}
	s.Observe(20)
	if got := s.Forecast(5); !approx(got, 15, 1e-12) {
		t.Fatalf("forecast = %v, want 15 (flat)", got)
	}
}

func TestSESConvergesToConstant(t *testing.T) {
	s, _ := NewSES(0.3)
	for i := 0; i < 100; i++ {
		s.Observe(42)
	}
	if got := s.Forecast(1); !approx(got, 42, 1e-9) {
		t.Fatalf("forecast = %v, want 42", got)
	}
}

func TestHoltTracksLinearTrend(t *testing.T) {
	if _, err := NewHolt(0.5, 0); err == nil {
		t.Fatal("beta 0 accepted")
	}
	h, err := NewHolt(0.8, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	// Perfect ramp: x(t) = 100 + 5t.
	for i := 0; i < 50; i++ {
		h.Observe(100 + 5*float64(i))
	}
	// One step ahead: 100 + 5·50 = 350.
	if got := h.Forecast(1); !approx(got, 350, 2) {
		t.Fatalf("1-step forecast = %v, want ≈350", got)
	}
	// Ten steps ahead: 100 + 5·59 = 395.
	if got := h.Forecast(10); !approx(got, 395, 5) {
		t.Fatalf("10-step forecast = %v, want ≈395", got)
	}
}

func TestHoltWintersLearnsSeasonality(t *testing.T) {
	if _, err := NewHoltWinters(0.5, 0.5, 0.5, 1); err == nil {
		t.Fatal("period 1 accepted")
	}
	hw, err := NewHoltWinters(0.4, 0.1, 0.4, 24)
	if err != nil {
		t.Fatal(err)
	}
	season := func(i int) float64 {
		return 500 + 300*math.Sin(2*math.Pi*float64(i%24)/24)
	}
	for i := 0; i < 24*6; i++ { // six "days"
		hw.Observe(season(i))
	}
	if !hw.Ready() {
		t.Fatal("not ready after six periods")
	}
	// Forecast the next half period and compare with the true seasonal
	// value.
	n := 24 * 6
	var worst float64
	for steps := 1; steps <= 12; steps++ {
		got := hw.Forecast(steps)
		want := season(n + steps - 1)
		if d := math.Abs(got - want); d > worst {
			worst = d
		}
	}
	if worst > 60 { // 60 of a 600-wide swing = 10%
		t.Fatalf("worst seasonal forecast error = %v, want <= 60", worst)
	}
}

func TestHoltWintersNotReadyFallsBack(t *testing.T) {
	hw, _ := NewHoltWinters(0.4, 0.1, 0.4, 10)
	if hw.Forecast(1) != 0 {
		t.Fatal("empty fallback not 0")
	}
	hw.Observe(7)
	if hw.Forecast(3) != 7 {
		t.Fatal("pre-season fallback should be last observation")
	}
}

func TestAR1RecoversCoefficients(t *testing.T) {
	if _, err := NewAR1(2); err == nil {
		t.Fatal("window 2 accepted")
	}
	a, err := NewAR1(512)
	if err != nil {
		t.Fatal(err)
	}
	// x(t) = 10 + 0.8·x(t−1) + noise.
	rng := rand.New(rand.NewSource(1))
	x := 50.0
	for i := 0; i < 400; i++ {
		x = 10 + 0.8*x + rng.NormFloat64()*0.5
		a.Observe(x)
	}
	c, phi, err := a.Fit()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(phi, 0.8, 0.1) {
		t.Fatalf("phi = %v, want ≈0.8", phi)
	}
	if !approx(c, 10, 5) {
		t.Fatalf("c = %v, want ≈10", c)
	}
	// Long-horizon forecast approaches the stationary mean c/(1−φ) = 50.
	if got := a.Forecast(200); !approx(got, 50, 5) {
		t.Fatalf("long forecast = %v, want ≈50", got)
	}
}

func TestAR1ConstantSeries(t *testing.T) {
	a, _ := NewAR1(64)
	for i := 0; i < 10; i++ {
		a.Observe(5)
	}
	c, phi, err := a.Fit()
	if err != nil {
		t.Fatal(err)
	}
	if phi != 0 || !approx(c, 5, 1e-9) {
		t.Fatalf("constant fit = (%v, %v), want (5, 0)", c, phi)
	}
	if got := a.Forecast(3); !approx(got, 5, 1e-9) {
		t.Fatalf("forecast = %v, want 5", got)
	}
}

func TestAR1WindowSlides(t *testing.T) {
	a, _ := NewAR1(8)
	for i := 0; i < 100; i++ {
		a.Observe(float64(i))
	}
	if len(a.hist) != 8 {
		t.Fatalf("window length = %d, want 8", len(a.hist))
	}
}

func TestEvaluateRanksModelsOnSeasonalData(t *testing.T) {
	series := make([]float64, 24*8)
	for i := range series {
		series[i] = 500 + 300*math.Sin(2*math.Pi*float64(i%24)/24)
	}
	mapeHW := Evaluate(func() Predictor {
		hw, _ := NewHoltWinters(0.4, 0.1, 0.4, 24)
		return hw
	}, series)
	mapeSES := Evaluate(func() Predictor {
		s, _ := NewSES(0.5)
		return s
	}, series)
	if math.IsNaN(mapeHW) || math.IsNaN(mapeSES) {
		t.Fatal("MAPE NaN")
	}
	if mapeHW >= mapeSES {
		t.Fatalf("Holt-Winters MAPE %v not better than SES %v on seasonal data", mapeHW, mapeSES)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	if !math.IsNaN(Evaluate(func() Predictor { s, _ := NewSES(0.5); return s }, nil)) {
		t.Fatal("empty series should be NaN")
	}
}

func TestPredictiveSizer(t *testing.T) {
	s := PredictiveSizer{UnitCapacity: 1000, TargetUtil: 60, Headroom: 1.1, Min: 1, Max: 50}
	// 3000 rec/s at 60% target = 5 units, ×1.1 headroom = 5.5 → ceil 6.
	if got := s.Size(3000); got != 6 {
		t.Fatalf("Size(3000) = %v, want 6", got)
	}
	if got := s.Size(-100); got != 1 {
		t.Fatalf("negative forecast = %v, want Min", got)
	}
	if got := s.Size(1e9); got != 50 {
		t.Fatalf("huge forecast = %v, want Max", got)
	}
	// Defaults: headroom 1, target 60.
	d := PredictiveSizer{UnitCapacity: 1000, Min: 1}
	if got := d.Size(600); got != 1 {
		t.Fatalf("default Size(600) = %v, want 1", got)
	}
}

// Property: all predictors produce finite forecasts for finite inputs.
func TestPredictorsFiniteProperty(t *testing.T) {
	f := func(raw []int16, steps uint8) bool {
		if len(raw) == 0 {
			return true
		}
		mks := []func() Predictor{
			func() Predictor { p, _ := NewSES(0.5); return p },
			func() Predictor { p, _ := NewHolt(0.5, 0.3); return p },
			func() Predictor { p, _ := NewHoltWinters(0.4, 0.2, 0.3, 12); return p },
			func() Predictor { p, _ := NewAR1(64); return p },
		}
		for _, mk := range mks {
			p := mk()
			for _, v := range raw {
				p.Observe(float64(v))
			}
			got := p.Forecast(int(steps%20) + 1)
			if math.IsNaN(got) || math.IsInf(got, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
