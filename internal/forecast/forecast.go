// Package forecast implements workload prediction for proactive
// elasticity. The paper motivates Flower with workloads whose "uncertain
// velocity ... leads to changing resource consumption patterns" and with
// rule-based systems that "fail to adapt to unplanned or unforeseen
// changes in demand" (§1); the companion line of work behind reference [9]
// pairs the reactive adaptive controller with workload prediction. This
// package provides the classical predictors that pairing needs —
// single/double/triple exponential smoothing and a first-order
// autoregressive model — plus a PredictiveSizer that converts a rate
// forecast into a resource allocation, enabling the predictive-vs-reactive
// ablation (experiment E8).
package forecast

import (
	"fmt"
	"math"
)

// Predictor consumes a series one observation at a time and extrapolates.
type Predictor interface {
	// Observe feeds the next observation.
	Observe(v float64)
	// Forecast extrapolates `steps` observations ahead (steps >= 1).
	Forecast(steps int) float64
	// Ready reports whether enough data has been observed to forecast.
	Ready() bool
}

// SES is single exponential smoothing: a flat forecast of the smoothed
// level. Good for stationary load.
type SES struct {
	// Alpha is the smoothing factor in (0, 1].
	Alpha float64

	level float64
	n     int
}

// NewSES validates and constructs the predictor.
func NewSES(alpha float64) (*SES, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("forecast: SES alpha %v outside (0, 1]", alpha)
	}
	return &SES{Alpha: alpha}, nil
}

// Observe implements Predictor.
func (s *SES) Observe(v float64) {
	if s.n == 0 {
		s.level = v
	} else {
		s.level = s.Alpha*v + (1-s.Alpha)*s.level
	}
	s.n++
}

// Ready implements Predictor.
func (s *SES) Ready() bool { return s.n >= 1 }

// Forecast implements Predictor: SES forecasts are flat.
func (s *SES) Forecast(int) float64 { return s.level }

// Holt is double exponential smoothing (level + linear trend) — Holt's
// linear method. Good for ramps.
type Holt struct {
	// Alpha smooths the level; Beta smooths the trend. Both in (0, 1].
	Alpha, Beta float64

	level, trend float64
	n            int
}

// NewHolt validates and constructs the predictor.
func NewHolt(alpha, beta float64) (*Holt, error) {
	if alpha <= 0 || alpha > 1 || beta <= 0 || beta > 1 {
		return nil, fmt.Errorf("forecast: Holt alpha/beta (%v, %v) outside (0, 1]", alpha, beta)
	}
	return &Holt{Alpha: alpha, Beta: beta}, nil
}

// Observe implements Predictor.
func (h *Holt) Observe(v float64) {
	switch h.n {
	case 0:
		h.level = v
	case 1:
		h.trend = v - h.level
		h.level = v
	default:
		prevLevel := h.level
		h.level = h.Alpha*v + (1-h.Alpha)*(h.level+h.trend)
		h.trend = h.Beta*(h.level-prevLevel) + (1-h.Beta)*h.trend
	}
	h.n++
}

// Ready implements Predictor.
func (h *Holt) Ready() bool { return h.n >= 2 }

// Forecast implements Predictor: level plus extrapolated trend.
func (h *Holt) Forecast(steps int) float64 {
	if steps < 1 {
		steps = 1
	}
	return h.level + float64(steps)*h.trend
}

// HoltWinters is triple exponential smoothing with an additive seasonal
// component of the given period — the classical model for diurnal website
// traffic like the demo's click-stream.
type HoltWinters struct {
	// Alpha, Beta, Gamma smooth level, trend and season. All in (0, 1].
	Alpha, Beta, Gamma float64
	// Period is the season length in observations (e.g. 144 ten-minute
	// buckets per day).
	Period int

	level, trend float64
	season       []float64
	history      []float64 // first Period observations, for initialisation
	n            int
}

// NewHoltWinters validates and constructs the predictor.
func NewHoltWinters(alpha, beta, gamma float64, period int) (*HoltWinters, error) {
	if alpha <= 0 || alpha > 1 || beta <= 0 || beta > 1 || gamma <= 0 || gamma > 1 {
		return nil, fmt.Errorf("forecast: Holt-Winters smoothing factors outside (0, 1]")
	}
	if period < 2 {
		return nil, fmt.Errorf("forecast: Holt-Winters period %d < 2", period)
	}
	return &HoltWinters{Alpha: alpha, Beta: beta, Gamma: gamma, Period: period}, nil
}

// Observe implements Predictor. The first full period initialises the
// seasonal indices; smoothing starts from the second period.
func (hw *HoltWinters) Observe(v float64) {
	hw.n++
	if hw.season == nil {
		hw.history = append(hw.history, v)
		if len(hw.history) < hw.Period {
			return
		}
		// Initialise: level = mean of first season, trend = 0, seasonal
		// index = deviation from that mean.
		var sum float64
		for _, x := range hw.history {
			sum += x
		}
		hw.level = sum / float64(hw.Period)
		hw.trend = 0
		hw.season = make([]float64, hw.Period)
		for i, x := range hw.history {
			hw.season[i] = x - hw.level
		}
		hw.history = nil
		return
	}
	i := (hw.n - 1) % hw.Period
	prevLevel := hw.level
	hw.level = hw.Alpha*(v-hw.season[i]) + (1-hw.Alpha)*(hw.level+hw.trend)
	hw.trend = hw.Beta*(hw.level-prevLevel) + (1-hw.Beta)*hw.trend
	hw.season[i] = hw.Gamma*(v-hw.level) + (1-hw.Gamma)*hw.season[i]
}

// Ready implements Predictor.
func (hw *HoltWinters) Ready() bool { return hw.season != nil }

// Forecast implements Predictor: level + trend·steps + seasonal index of
// the target slot.
func (hw *HoltWinters) Forecast(steps int) float64 {
	if !hw.Ready() {
		return hw.lastKnown()
	}
	if steps < 1 {
		steps = 1
	}
	idx := (hw.n - 1 + steps) % hw.Period
	return hw.level + float64(steps)*hw.trend + hw.season[idx]
}

func (hw *HoltWinters) lastKnown() float64 {
	if len(hw.history) == 0 {
		return 0
	}
	return hw.history[len(hw.history)-1]
}

// AR1 is a first-order autoregressive model x(t) = c + φ·x(t−1) fitted by
// least squares over a sliding window.
type AR1 struct {
	// Window bounds the history used for fitting (default 256).
	Window int

	hist []float64
}

// NewAR1 constructs the model with the given window.
func NewAR1(window int) (*AR1, error) {
	if window < 3 {
		return nil, fmt.Errorf("forecast: AR1 window %d < 3", window)
	}
	return &AR1{Window: window}, nil
}

// Observe implements Predictor.
func (a *AR1) Observe(v float64) {
	a.hist = append(a.hist, v)
	if len(a.hist) > a.Window {
		a.hist = a.hist[len(a.hist)-a.Window:]
	}
}

// Ready implements Predictor.
func (a *AR1) Ready() bool { return len(a.hist) >= 3 }

// Fit returns the current (c, φ) estimates.
func (a *AR1) Fit() (c, phi float64, err error) {
	n := len(a.hist) - 1
	if n < 2 {
		return 0, 0, fmt.Errorf("forecast: AR1 needs at least 3 observations")
	}
	var mx, my float64
	for i := 0; i < n; i++ {
		mx += a.hist[i]
		my += a.hist[i+1]
	}
	mx /= float64(n)
	my /= float64(n)
	var sxx, sxy float64
	for i := 0; i < n; i++ {
		dx := a.hist[i] - mx
		sxx += dx * dx
		sxy += dx * (a.hist[i+1] - my)
	}
	if sxx == 0 {
		// Constant series: φ=0, c=mean.
		return my, 0, nil
	}
	phi = sxy / sxx
	c = my - phi*mx
	return c, phi, nil
}

// Forecast implements Predictor by iterating the fitted recurrence.
func (a *AR1) Forecast(steps int) float64 {
	last := 0.0
	if len(a.hist) > 0 {
		last = a.hist[len(a.hist)-1]
	}
	c, phi, err := a.Fit()
	if err != nil {
		return last
	}
	if steps < 1 {
		steps = 1
	}
	x := last
	for s := 0; s < steps; s++ {
		x = c + phi*x
	}
	return x
}

// Evaluate replays a series through a fresh predictor one step ahead and
// returns the mean absolute percentage error (MAPE, in percent) over the
// observations where the predictor was ready. It is the model-selection
// helper.
func Evaluate(mk func() Predictor, series []float64) float64 {
	p := mk()
	var sum float64
	var count int
	for i, v := range series {
		if i > 0 && p.Ready() {
			pred := p.Forecast(1)
			if v != 0 {
				sum += math.Abs(pred-v) / math.Abs(v) * 100
				count++
			}
		}
		p.Observe(v)
	}
	if count == 0 {
		return math.NaN()
	}
	return sum / float64(count)
}

// PredictiveSizer converts a rate forecast into a resource allocation:
// enough units that the forecast load runs the layer at TargetUtil, plus
// the safety Headroom factor.
type PredictiveSizer struct {
	// UnitCapacity is the load one allocation unit serves per second
	// (1000 records/s for a shard; ~1000 for one VM of the reference
	// topology; 1 write/s for one WCU).
	UnitCapacity float64
	// TargetUtil is the desired utilisation in percent (e.g. 60).
	TargetUtil float64
	// Headroom multiplies the result (e.g. 1.1 for 10% safety margin).
	Headroom float64
	// Min and Max clamp the recommendation.
	Min, Max float64
}

// Size recommends an allocation for the forecast rate.
func (s PredictiveSizer) Size(forecastRate float64) float64 {
	if forecastRate < 0 {
		forecastRate = 0
	}
	headroom := s.Headroom
	if headroom <= 0 {
		headroom = 1
	}
	target := s.TargetUtil
	if target <= 0 {
		target = 60
	}
	units := forecastRate / (s.UnitCapacity * target / 100) * headroom
	units = math.Ceil(units)
	if units < s.Min {
		units = s.Min
	}
	if s.Max > 0 && units > s.Max {
		units = s.Max
	}
	return units
}
