// Package simtime provides the deterministic virtual clock and the
// discrete-time tick scheduler that every simulated subsystem shares.
//
// The whole reproduction is tick-driven: a single Clock owns "now", and a
// Scheduler advances it in fixed steps, invoking every registered Ticker
// once per step. Components never consult the wall clock, which makes runs
// fully reproducible for a given seed and step size.
package simtime

import (
	"fmt"
	"time"
)

// Epoch is the instant at which every simulation starts. Using a fixed,
// arbitrary epoch (rather than time.Now) keeps metric timestamps stable
// across runs and machines.
var Epoch = time.Date(2017, time.August, 28, 0, 0, 0, 0, time.UTC)

// Clock is a virtual clock. The zero value is not usable; construct with
// NewClock.
type Clock struct {
	now time.Time
}

// NewClock returns a clock positioned at Epoch.
func NewClock() *Clock {
	return &Clock{now: Epoch}
}

// NewClockAt returns a clock positioned at the given instant.
func NewClockAt(t time.Time) *Clock {
	return &Clock{now: t}
}

// Now reports the current virtual time.
func (c *Clock) Now() time.Time { return c.now }

// Advance moves the clock forward by d. Advancing by a negative duration
// panics: simulated time is monotone by construction.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("simtime: cannot advance clock by negative duration %v", d))
	}
	c.now = c.now.Add(d)
}

// Elapsed reports how much virtual time has passed since Epoch.
func (c *Clock) Elapsed() time.Duration { return c.now.Sub(Epoch) }

// Ticker is the hook a simulated component implements to receive time.
// Tick is called once per scheduler step with the time at the *end* of the
// step and the step length. Implementations must be deterministic.
type Ticker interface {
	Tick(now time.Time, step time.Duration)
}

// TickerFunc adapts a plain function to the Ticker interface.
type TickerFunc func(now time.Time, step time.Duration)

// Tick calls f(now, step).
func (f TickerFunc) Tick(now time.Time, step time.Duration) { f(now, step) }

// Scheduler drives a Clock in fixed steps and fans each step out to its
// tickers in registration order. Registration order is the dataflow order
// of the simulation (workload before stream before compute before storage),
// so a record generated in step k is observable downstream within the same
// step.
type Scheduler struct {
	clock   *Clock
	step    time.Duration
	tickers []Ticker
	steps   int
}

// NewScheduler returns a scheduler that advances clock by step on each
// tick. Step must be positive.
func NewScheduler(clock *Clock, step time.Duration) *Scheduler {
	if step <= 0 {
		panic(fmt.Sprintf("simtime: scheduler step must be positive, got %v", step))
	}
	return &Scheduler{clock: clock, step: step}
}

// Step reports the scheduler's step size.
func (s *Scheduler) Step() time.Duration { return s.step }

// Clock returns the clock the scheduler drives.
func (s *Scheduler) Clock() *Clock { return s.clock }

// Steps reports how many steps have been executed so far.
func (s *Scheduler) Steps() int { return s.steps }

// Register appends t to the tick order. Registering the same ticker twice
// makes it tick twice per step; callers are expected not to.
func (s *Scheduler) Register(t Ticker) {
	if t == nil {
		panic("simtime: cannot register nil ticker")
	}
	s.tickers = append(s.tickers, t)
}

// RegisterFunc is shorthand for Register(TickerFunc(f)).
func (s *Scheduler) RegisterFunc(f func(now time.Time, step time.Duration)) {
	s.Register(TickerFunc(f))
}

// RunSteps executes n steps. Each step advances the clock first, then
// invokes the tickers with the post-advance time, so a component observing
// Now() during its Tick sees the same instant it was handed.
func (s *Scheduler) RunSteps(n int) {
	for i := 0; i < n; i++ {
		s.clock.Advance(s.step)
		now := s.clock.Now()
		for _, t := range s.tickers {
			t.Tick(now, s.step)
		}
		s.steps++
	}
}

// RunFor executes enough whole steps to cover d (rounding down). Running
// for less than one step executes nothing.
func (s *Scheduler) RunFor(d time.Duration) {
	s.RunSteps(int(d / s.step))
}
