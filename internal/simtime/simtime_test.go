package simtime

import (
	"testing"
	"time"
)

func TestClockStartsAtEpoch(t *testing.T) {
	c := NewClock()
	if !c.Now().Equal(Epoch) {
		t.Fatalf("Now() = %v, want %v", c.Now(), Epoch)
	}
	if c.Elapsed() != 0 {
		t.Fatalf("Elapsed() = %v, want 0", c.Elapsed())
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	c.Advance(90 * time.Second)
	if got := c.Elapsed(); got != 90*time.Second {
		t.Fatalf("Elapsed() = %v, want 90s", got)
	}
	c.Advance(30 * time.Second)
	if got := c.Elapsed(); got != 2*time.Minute {
		t.Fatalf("Elapsed() = %v, want 2m", got)
	}
}

func TestClockAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	NewClock().Advance(-time.Second)
}

func TestNewClockAt(t *testing.T) {
	at := Epoch.Add(time.Hour)
	c := NewClockAt(at)
	if !c.Now().Equal(at) {
		t.Fatalf("Now() = %v, want %v", c.Now(), at)
	}
}

func TestSchedulerRunSteps(t *testing.T) {
	c := NewClock()
	s := NewScheduler(c, time.Second)
	var calls int
	var lastNow time.Time
	s.RegisterFunc(func(now time.Time, step time.Duration) {
		calls++
		lastNow = now
		if step != time.Second {
			t.Errorf("step = %v, want 1s", step)
		}
	})
	s.RunSteps(10)
	if calls != 10 {
		t.Fatalf("ticker called %d times, want 10", calls)
	}
	if want := Epoch.Add(10 * time.Second); !lastNow.Equal(want) {
		t.Fatalf("last tick time = %v, want %v", lastNow, want)
	}
	if s.Steps() != 10 {
		t.Fatalf("Steps() = %d, want 10", s.Steps())
	}
}

func TestSchedulerTickOrder(t *testing.T) {
	s := NewScheduler(NewClock(), time.Second)
	var order []string
	s.RegisterFunc(func(time.Time, time.Duration) { order = append(order, "a") })
	s.RegisterFunc(func(time.Time, time.Duration) { order = append(order, "b") })
	s.RegisterFunc(func(time.Time, time.Duration) { order = append(order, "c") })
	s.RunSteps(2)
	want := []string{"a", "b", "c", "a", "b", "c"}
	if len(order) != len(want) {
		t.Fatalf("got %d calls, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order[%d] = %q, want %q", i, order[i], want[i])
		}
	}
}

func TestSchedulerRunFor(t *testing.T) {
	s := NewScheduler(NewClock(), time.Minute)
	var calls int
	s.RegisterFunc(func(time.Time, time.Duration) { calls++ })
	s.RunFor(10 * time.Minute)
	if calls != 10 {
		t.Fatalf("ticker called %d times, want 10", calls)
	}
	s.RunFor(30 * time.Second) // less than one step: no tick
	if calls != 10 {
		t.Fatalf("ticker called %d times after sub-step RunFor, want 10", calls)
	}
}

func TestSchedulerClockVisibleDuringTick(t *testing.T) {
	c := NewClock()
	s := NewScheduler(c, time.Second)
	s.RegisterFunc(func(now time.Time, _ time.Duration) {
		if !c.Now().Equal(now) {
			t.Errorf("clock.Now() = %v inside tick, want %v", c.Now(), now)
		}
	})
	s.RunSteps(3)
}

func TestSchedulerRejectsBadInputs(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewScheduler with zero step did not panic")
			}
		}()
		NewScheduler(NewClock(), 0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Register(nil) did not panic")
			}
		}()
		NewScheduler(NewClock(), time.Second).Register(nil)
	}()
}
