// Package sched is the control plane's unified execution plane: a sharded
// tick scheduler that runs every kind of recurring or queued work — flow
// pacer ticks, experiment trial chunks — on one bounded, observable pool.
//
// Before this package, execution capacity was fragmented: every paced flow
// owned a goroutine plus a timer, and the Scenario Lab kept a completely
// separate bounded worker pool, so the process's concurrency was neither
// shared, bounded, nor visible anywhere. The scheduler consolidates both
// onto N shards. Each shard owns
//
//   - a hashed timer wheel — periodic jobs hash to a shard by id and wait
//     in coarse-grained slots, so arming, firing and re-arming are O(1)
//     regardless of how many timers are pending;
//   - a per-shard run queue of *batches*, segregated by Class and drained
//     under a weighted-fairness policy (FlowWeight flow-class jobs per
//     batch-class job, work-conserving in both directions), so a big
//     experiment grid cannot starve live flow pacing and pacers cannot
//     starve the lab;
//   - per-shard statistics: queue depths, armed timers, executed jobs,
//     late and skipped ticks, steal counts, batch sizes, and a run-latency
//     histogram.
//
// Execution is batched: one wheel advance drains every due job into a
// per-class run batch handed to a worker in a single lock acquisition, so
// the fire path costs O(advances) lock work instead of O(fired jobs). A
// worker executes a whole batch back to back, accumulating stats on its
// stack and flushing them — shard counters, latency buckets, process
// telemetry, and the batch's periodic re-arms — once per batch. Batches
// are capped at MaxBatch jobs so a thundering herd splits into units that
// sibling workers can run in parallel.
//
// Idle workers steal: a worker whose own shard is dry scans the sibling
// shards' queue depths (a lock-free atomic per shard), locks only the
// hottest victim, and takes one queued batch — closing the imbalance
// window that skewed job durations open between shards. Stolen periodic
// jobs re-arm on their home shard, so timer placement never drifts.
//
// The total goroutine count is O(shards): one timer loop plus Workers
// workers per shard, independent of how many flows are paced or trials
// queued — the property that lets one daemon pace thousands of flows.
//
// Periodic jobs fire on a fixed-rate schedule with a bounded catch-up
// policy: a job that falls behind wall time (slow callback, saturated
// workers) is delivered the elapsed intervals in one batched call — capped
// at MaxCatchUp, with the excess counted in SkippedTicks and permanently
// dropped — so an overloaded scheduler degrades into a slower tick rate
// instead of an unbounded backlog.
package sched

import (
	"errors"
	"fmt"
	"hash/maphash"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Class labels the kind of work a job does. Run queues are segregated by
// class so the drain policy can keep latency-sensitive work ahead of
// throughput work without starving either.
type Class int

const (
	// ClassFlow is latency-sensitive periodic work: flow pacer ticks.
	ClassFlow Class = iota
	// ClassBatch is throughput work: experiment trial chunks.
	ClassBatch

	numClasses = 2
)

// String names the class for stats and logs.
func (c Class) String() string {
	switch c {
	case ClassFlow:
		return "flow"
	case ClassBatch:
		return "batch"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Defaults used by Config.withDefaults.
const (
	// DefaultWheelTick is the timer-wheel granularity: periodic intervals
	// round up to the next multiple of it.
	DefaultWheelTick = 2 * time.Millisecond
	// DefaultWheelSlots is the number of wheel slots per shard.
	DefaultWheelSlots = 512
	// DefaultMaxCatchUp bounds how many owed intervals a late periodic job
	// is delivered in one call; intervals beyond it are dropped and counted.
	DefaultMaxCatchUp = 4
	// DefaultFlowWeight is how many flow-class jobs a shard drains per
	// batch-class job when both queues are non-empty.
	DefaultFlowWeight = 4
	// DefaultMaxBatch caps how many fired jobs one run batch may carry:
	// beyond it the timer loop splits the herd into multiple batches so
	// sibling workers (and steals) can drain it in parallel.
	DefaultMaxBatch = 256
	// maxShards caps the shard count even on very wide machines; beyond
	// this the per-shard structures stop paying for themselves.
	maxShards = 64
)

// Config sizes a Scheduler. The zero value selects sensible defaults
// (GOMAXPROCS shards, one worker per shard).
type Config struct {
	// Shards is the number of timer wheels / run queues (default
	// GOMAXPROCS, capped at 64).
	Shards int
	// Workers is the number of worker goroutines per shard (default 1).
	// Shards × Workers is the process's whole execution capacity: the
	// maximum number of advances and trial chunks running at any instant.
	Workers int
	// WheelTick is the timer-wheel granularity (default DefaultWheelTick).
	WheelTick time.Duration
	// WheelSlots is the wheel size per shard (default DefaultWheelSlots).
	WheelSlots int
	// MaxCatchUp bounds periodic catch-up (default DefaultMaxCatchUp).
	MaxCatchUp int
	// FlowWeight tunes the weighted-fairness drain (default
	// DefaultFlowWeight).
	FlowWeight int
	// MaxBatch caps the jobs per run batch (default DefaultMaxBatch).
	MaxBatch int
	// NoSteal disables work stealing between shards — an A/B knob for
	// benchmarks; production keeps stealing on.
	NoSteal bool
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.Shards > maxShards {
		c.Shards = maxShards
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.WheelTick <= 0 {
		c.WheelTick = DefaultWheelTick
	}
	if c.WheelSlots <= 0 {
		c.WheelSlots = DefaultWheelSlots
	}
	if c.MaxCatchUp <= 0 {
		c.MaxCatchUp = DefaultMaxCatchUp
	}
	if c.FlowWeight <= 0 {
		c.FlowWeight = DefaultFlowWeight
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	return c
}

// ErrClosed is returned by Periodic and Submit after Close.
var ErrClosed = errors.New("sched: scheduler closed")

// TickFunc runs one periodic firing. n >= 1 is the number of intervals
// being delivered: 1 when the job is on schedule, more when it fell behind
// and the scheduler is catching it up (bounded by Config.MaxCatchUp).
// Returning an error stops the job permanently; the registration's onStop
// callback is then invoked exactly once with that error.
type TickFunc func(n int) error

// ChunkFunc runs one chunk of a queued job. Returning true finishes the
// job; returning false re-queues it (on the least-loaded shard), which is
// what interleaves long jobs fairly.
type ChunkFunc func() (done bool)

// Scheduler is a sharded tick scheduler; construct with New.
type Scheduler struct {
	cfg       Config
	shards    []*shard
	seed      maphash.Seed
	rr        atomic.Uint64 // rotates the least-loaded scan's start shard
	closed    atomic.Bool
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// New starts a scheduler: Shards timer loops plus Shards × Workers worker
// goroutines, all idle until work arrives. Close releases them.
func New(cfg Config) *Scheduler {
	cfg = cfg.withDefaults()
	s := &Scheduler{cfg: cfg, seed: maphash.MakeSeed()}
	for i := 0; i < cfg.Shards; i++ {
		s.shards = append(s.shards, newShard(s, i))
	}
	// All shards exist before any goroutine starts: workers scan the whole
	// s.shards slice when stealing.
	for _, sh := range s.shards {
		s.wg.Add(1 + cfg.Workers)
		go sh.timerLoop()
		for w := 0; w < cfg.Workers; w++ {
			go sh.workerLoop()
		}
	}
	registerScheduler(s)
	return s
}

// Shards returns the shard count.
func (s *Scheduler) Shards() int { return s.cfg.Shards }

// Workers returns the worker count per shard.
func (s *Scheduler) Workers() int { return s.cfg.Workers }

// Capacity returns Shards × Workers: the maximum number of jobs executing
// at any instant — the one capacity knob of the whole process.
func (s *Scheduler) Capacity() int { return s.cfg.Shards * s.cfg.Workers }

// Periodic registers tick to run every interval, starting one interval
// from now. The job is pinned to the shard its id hashes to. onStop, when
// non-nil, is called exactly once if the job stops itself by returning an
// error — never on Ticket.Stop. It runs on a worker goroutine after the
// failing tick has fully returned, so it may take the same locks the
// caller of Stop holds.
func (s *Scheduler) Periodic(id string, class Class, interval time.Duration, tick TickFunc, onStop func(error)) (*Ticket, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("sched: interval %v must be positive", interval)
	}
	if tick == nil {
		return nil, errors.New("sched: nil tick function")
	}
	if s.closed.Load() {
		return nil, ErrClosed
	}
	j := &job{id: id, class: class, periodic: true, interval: interval, tick: tick, onStop: onStop}
	j.home = s.shardFor(id)
	// Spread the first fire across the interval by id hash: 100k flows
	// registered in one burst then land across the whole wheel instead of
	// detonating out of a single slot every interval forever. Subsequent
	// fires run at the fixed rate from wherever the first one landed.
	spread := time.Duration(maphash.String(s.seed, id) % uint64(interval))
	j.nextAt = time.Now().Add(interval - spread/2) //flowervet:allow wallclock(the scheduler is the wall-time executor that paces virtual ticks against real time)
	if !j.home.insertTimer(j) {
		// The shard closed between the closed check above and the arm: a
		// nil-error return here would hand the caller a ticket for a job
		// that will never fire.
		return nil, ErrClosed
	}
	return &Ticket{j: j}, nil
}

// Submit queues run for execution. The job goes to the least-loaded shard
// and, while it keeps returning false, is re-queued there after every
// chunk — long jobs therefore migrate toward idle shards on their own.
// onStop, when non-nil, is called exactly once if the scheduler abandons
// the job before run ever returned true (a Close landing between chunks),
// with ErrClosed — never after normal completion or Ticket.Stop — so the
// submitter can settle whatever the job was driving.
func (s *Scheduler) Submit(id string, class Class, run ChunkFunc, onStop func(error)) (*Ticket, error) {
	if run == nil {
		return nil, errors.New("sched: nil chunk function")
	}
	if s.closed.Load() {
		return nil, ErrClosed
	}
	j := &job{id: id, class: class, run: run, onStop: onStop}
	if !s.enqueueBatch(j) {
		return nil, ErrClosed
	}
	return &Ticket{j: j}, nil
}

// shardFor hashes a job id onto a shard.
func (s *Scheduler) shardFor(id string) *shard {
	return s.shards[maphash.String(s.seed, id)%uint64(len(s.shards))]
}

// enqueueBatch places a queued job on the least-loaded shard (queue length
// plus chunks executing right now), scanning from a rotating start so ties
// spread instead of piling onto shard 0.
func (s *Scheduler) enqueueBatch(j *job) bool {
	start := int(s.rr.Add(1)) % len(s.shards)
	best, bestLoad := -1, int(^uint(0)>>1)
	for i := range s.shards {
		sh := s.shards[(start+i)%len(s.shards)]
		sh.mu.Lock()
		load := sh.queued[j.class] + sh.execBatch
		closed := sh.closed
		sh.mu.Unlock()
		if closed {
			continue
		}
		if load < bestLoad {
			best, bestLoad = (start+i)%len(s.shards), load
			if load == 0 {
				break
			}
		}
	}
	if best < 0 {
		return false
	}
	return s.shards[best].enqueue(j)
}

// steal takes one queued batch from the hottest sibling of thief. The scan
// reads each shard's lock-free depth mirror and locks only the chosen
// victim — the thief's own lock is never held here, so no two shard locks
// are ever held at once.
func (s *Scheduler) steal(thief *shard) *batch {
	if s.cfg.NoSteal || len(s.shards) < 2 {
		return nil
	}
	var victim *shard
	var hottest int64
	for _, sh := range s.shards {
		if sh == thief {
			continue
		}
		if d := sh.qdepth.Load(); d > hottest {
			victim, hottest = sh, d
		}
	}
	if victim == nil {
		return nil
	}
	victim.mu.Lock()
	if victim.closed {
		victim.mu.Unlock()
		return nil
	}
	b := victim.popLocked()
	if b != nil {
		victim.stolen++
	}
	victim.mu.Unlock()
	return b
}

// wakeSibling nudges one sibling shard's workers so an idle one can come
// steal the backlog building on shard from. Best-effort: TryLock only —
// a sibling busy enough to hold its own lock has no idle workers to wake.
func (s *Scheduler) wakeSibling(from int) {
	if s.cfg.NoSteal || len(s.shards) < 2 {
		return
	}
	for i := 1; i < len(s.shards); i++ {
		sh := s.shards[(from+i)%len(s.shards)]
		if sh.qdepth.Load() > 0 {
			continue // its own workers have work; they won't steal
		}
		if sh.mu.TryLock() {
			sh.cond.Signal()
			sh.mu.Unlock()
			return
		}
	}
}

// Close stops the scheduler: no new work is accepted, every worker
// finishes the job it is executing and exits, and queued-but-unstarted
// work is abandoned — each abandoned chunked job's onStop is invoked with
// ErrClosed so its submitter can settle. Drain producers first (stop
// pacers, settle experiments) — Close is the last step of a shutdown, and
// it blocks until every scheduler goroutine has exited. Idempotent.
func (s *Scheduler) Close() {
	s.closeOnce.Do(func() {
		s.closed.Store(true)
		for _, sh := range s.shards {
			sh.mu.Lock()
			sh.closed = true
			sh.cond.Broadcast()
			sh.mu.Unlock()
			select {
			case sh.timerWake <- struct{}{}:
			default:
			}
		}
		s.wg.Wait()
		// All workers have exited; whatever is still queued will never
		// run. Tell chunked jobs so (periodic jobs are lifecycle-managed
		// through Ticket.Stop and are simply discarded).
		for _, sh := range s.shards {
			var abandoned []*job
			sh.mu.Lock()
			for c := 0; c < numClasses; c++ {
				for {
					b := sh.queues[c].pop()
					if b == nil {
						break
					}
					for _, j := range b.jobs {
						if !j.periodic {
							abandoned = append(abandoned, j)
						}
					}
				}
			}
			sh.mu.Unlock()
			for _, j := range abandoned {
				j.mu.Lock()
				already := j.stopped
				j.stopped = true
				j.mu.Unlock()
				if !already && j.onStop != nil {
					j.onStop(ErrClosed)
				}
			}
		}
		unregisterScheduler(s)
	})
}

// Ticket is a handle on one registered job.
type Ticket struct {
	j *job
}

// ID returns the id the job was registered under.
func (t *Ticket) ID() string { return t.j.id }

// Stop permanently deactivates the job and waits for any in-flight
// execution to return: after Stop, the job's function will never be
// running. Safe to call repeatedly and concurrently. Must not be called
// from inside the job's own function (it would wait for itself).
func (t *Ticket) Stop() {
	j := t.j
	j.mu.Lock()
	j.stopped = true
	if !j.running {
		j.mu.Unlock()
		return
	}
	ch := make(chan struct{})
	j.waiters = append(j.waiters, ch)
	j.mu.Unlock()
	<-ch
}

// Stopped reports whether the job has been stopped (by Stop, by finishing,
// or by a tick error).
func (t *Ticket) Stopped() bool {
	t.j.mu.Lock()
	defer t.j.mu.Unlock()
	return t.j.stopped
}
