package sched

import (
	"math/rand"
	"testing"
)

// checkFifoInvariants asserts the structural invariants pop's compaction
// must preserve: the dead prefix stays bounded relative to the live
// region, every popped slot is nil'd (no *batch pinned past its pop), and
// len() agrees with the live region.
func checkFifoInvariants(t *testing.T, q *fifo, live int) {
	t.Helper()
	if got := q.len(); got != live {
		t.Fatalf("len() = %d, want %d", got, live)
	}
	if q.head < 0 || q.head > len(q.items) {
		t.Fatalf("head %d out of range [0,%d]", q.head, len(q.items))
	}
	if q.head > 64 && q.head*2 >= len(q.items) {
		t.Fatalf("dead prefix not compacted: head %d, backing %d", q.head, len(q.items))
	}
	for i := 0; i < q.head; i++ {
		if q.items[i] != nil {
			t.Fatalf("popped slot %d still holds a batch (leak)", i)
		}
	}
}

// TestFifoOrderAcrossCompaction drives enough traffic through one fifo to
// force many compactions and checks strict FIFO order throughout.
func TestFifoOrderAcrossCompaction(t *testing.T) {
	var q fifo
	next, popped := 0, 0
	for round := 0; round < 200; round++ {
		for i := 0; i < 100; i++ {
			q.push(&batch{jobs: make([]*job, 0, next)}) // cap encodes push order
			next++
		}
		for i := 0; i < 99; i++ { // drain almost all: head crosses 64 repeatedly
			b := q.pop()
			if b == nil {
				t.Fatalf("pop %d returned nil with %d live", popped, next-popped)
			}
			if cap(b.jobs) != popped {
				t.Fatalf("pop %d returned batch pushed at %d: FIFO order broken", popped, cap(b.jobs))
			}
			popped++
			checkFifoInvariants(t, &q, next-popped)
		}
	}
	for q.len() > 0 {
		if cap(q.pop().jobs) != popped {
			t.Fatal("FIFO order broken in final drain")
		}
		popped++
	}
	if q.pop() != nil {
		t.Fatal("pop on empty fifo must return nil")
	}
	checkFifoInvariants(t, &q, 0)
}

// TestFifoRandomizedAgainstModel runs a randomized push/pop interleaving
// against a plain-slice model queue.
func TestFifoRandomizedAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var q fifo
	var model []*batch
	for op := 0; op < 100_000; op++ {
		if rng.Intn(2) == 0 {
			b := &batch{}
			q.push(b)
			model = append(model, b)
		} else {
			got := q.pop()
			if len(model) == 0 {
				if got != nil {
					t.Fatalf("op %d: pop on empty returned %p", op, got)
				}
			} else {
				if got != model[0] {
					t.Fatalf("op %d: pop returned wrong batch", op)
				}
				model = model[1:]
			}
		}
		checkFifoInvariants(t, &q, len(model))
	}
}

// fairnessShard builds a detached shard (no scheduler goroutines) so
// popLocked can be driven deterministically.
func fairnessShard(weight int) *shard {
	sc := &Scheduler{cfg: Config{Shards: 1, FlowWeight: weight}.withDefaults()}
	return newShard(sc, 0)
}

// pushJobs queues one batch of n jobs of class c.
func pushJobs(sh *shard, c Class, n int) {
	b := &batch{class: c}
	for i := 0; i < n; i++ {
		b.jobs = append(b.jobs, &job{class: c})
	}
	sh.mu.Lock()
	sh.pushLocked(b)
	sh.mu.Unlock()
}

// TestPopLockedFairnessProperty drives popLocked under randomized
// push/pop interleavings with randomized batch sizes and checks the
// FlowWeight contract: whenever both classes are queued, batch-class work
// is dispatched only after at least FlowWeight flow-class jobs ran since
// the previous batch-class dispatch — and never starved beyond that by
// more than one flow batch of overshoot.
func TestPopLockedFairnessProperty(t *testing.T) {
	const weight = 16
	const maxBatchJobs = 8
	rng := rand.New(rand.NewSource(7))
	sh := fairnessShard(weight)

	flowSinceBatch := 0 // flow-class jobs popped since the last batch-class pop
	contested := true   // both queues non-empty for the whole interval so far
	var popFlow, popBatch int

	for op := 0; op < 200_000; op++ {
		if rng.Intn(3) > 0 { // keep the queues mostly non-empty
			if rng.Intn(2) == 0 {
				pushJobs(sh, ClassFlow, 1+rng.Intn(maxBatchJobs))
			} else {
				pushJobs(sh, ClassBatch, 1+rng.Intn(maxBatchJobs))
			}
		}
		sh.mu.Lock()
		nf, nb := sh.queued[ClassFlow], sh.queued[ClassBatch]
		b := sh.popLocked()
		sh.mu.Unlock()
		if b == nil {
			if nf+nb != 0 {
				t.Fatalf("op %d: popLocked returned nil with %d+%d jobs queued (not work-conserving)", op, nf, nb)
			}
			// Empty queues change nothing: credit is reset only by a
			// batch-class dispatch, so the measurement carries over.
			continue
		}
		if nf == 0 || nb == 0 {
			// Uncontested interval: the weighted contract only binds while
			// both classes compete, so restart the measurement.
			contested = false
		}
		switch b.class {
		case ClassFlow:
			popFlow += len(b.jobs)
			flowSinceBatch += len(b.jobs)
		case ClassBatch:
			popBatch += len(b.jobs)
			if contested && flowSinceBatch < weight {
				t.Fatalf("op %d: batch class dispatched after only %d flow jobs (weight %d)",
					op, flowSinceBatch, weight)
			}
			// Overshoot is bounded: credit goes negative by at most one
			// flow batch beyond the weight.
			if contested && flowSinceBatch >= weight+maxBatchJobs {
				t.Fatalf("op %d: batch class waited for %d flow jobs (weight %d, max overshoot %d)",
					op, flowSinceBatch, weight, maxBatchJobs-1)
			}
			flowSinceBatch = 0
			contested = true
		}
	}
	if popFlow == 0 || popBatch == 0 {
		t.Fatalf("degenerate run: %d flow, %d batch jobs popped", popFlow, popBatch)
	}
}

// TestPopLockedWorkConserving pins the uncontested cases: with only one
// class queued it drains regardless of credit state.
func TestPopLockedWorkConserving(t *testing.T) {
	sh := fairnessShard(4)
	sh.mu.Lock()
	sh.flowCredit = 0 // exhausted credit must not block a lone flow queue
	sh.mu.Unlock()
	pushJobs(sh, ClassFlow, 3)
	sh.mu.Lock()
	b := sh.popLocked()
	sh.mu.Unlock()
	if b == nil || b.class != ClassFlow {
		t.Fatalf("lone flow queue did not drain: %+v", b)
	}

	pushJobs(sh, ClassBatch, 2)
	sh.mu.Lock()
	sh.flowCredit = 100
	b = sh.popLocked()
	qd := sh.qdepth.Load()
	sh.mu.Unlock()
	if b == nil || b.class != ClassBatch {
		t.Fatalf("lone batch queue did not drain: %+v", b)
	}
	if qd != 0 {
		t.Fatalf("qdepth = %d after draining everything, want 0", qd)
	}
}
