package sched

import (
	"sync"
	"sync/atomic"
	"time"
)

// job is one schedulable unit: a periodic timer job (pacer tick) or a
// queued chunked job (experiment trial). Its lifecycle invariant is that a
// periodic job is in exactly one place at a time — armed in the wheel,
// waiting in a run queue, or executing — so one job can never fire twice
// concurrently; catch-up after delays is handled by delivering batched
// intervals, not parallel runs.
type job struct {
	id       string
	class    Class
	periodic bool
	interval time.Duration
	tick     TickFunc
	run      ChunkFunc
	onStop   func(error)
	// home is the shard the periodic job's id hashes to: the wheel it
	// always re-arms into, even when a steal executed it elsewhere — so
	// timer placement stays stable under work stealing. Nil for chunked
	// jobs, which re-queue by load instead.
	home *shard

	mu      sync.Mutex
	stopped bool
	running bool
	waiters []chan struct{} // Stop callers awaiting the in-flight run
	// nextAt is the periodic job's scheduled fire time. It is written by
	// the worker that just ran the job (under j.mu) and read by the wheel
	// insert that re-arms it — a strict hand-off, never concurrent.
	nextAt time.Time
}

// batch is the unit the run queues hold and workers execute: one or more
// same-class jobs drained from a single wheel advance (or a single
// submitted chunk). Executing per batch instead of per job amortises the
// shard lock — one pop, one stats flush, one re-arm pass per batch — from
// O(fired jobs) down to O(advances). Batches are recycled through a
// per-shard freelist so the steady-state drain loop never allocates.
type batch struct {
	class Class
	jobs  []*job
}

// wheelEntry is one armed timer: rounds counts full wheel revolutions
// still to wait before the entry is due.
type wheelEntry struct {
	j      *job
	rounds int
}

// fifo is a slice-backed queue of run batches with an amortised-O(1) pop.
type fifo struct {
	head  int
	items []*batch
}

func (q *fifo) len() int { return len(q.items) - q.head }

func (q *fifo) push(b *batch) { q.items = append(q.items, b) }

func (q *fifo) pop() *batch {
	if q.head == len(q.items) {
		return nil
	}
	b := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	// Compact once the dead prefix dominates, so the backing array does
	// not grow without bound under sustained traffic.
	if q.head > 64 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	return b
}

// batchStats is the per-batch accumulator a worker fills while executing a
// batch's jobs, flushed into the shard stats and process telemetry in one
// lock acquisition and a handful of atomic adds — instead of a shard lock
// and two atomics per execution. A batch is single-class by construction,
// so one accumulator covers it.
type batchStats struct {
	executed     uint64
	lateRuns     uint64
	skippedTicks uint64
	latCounts    [numLatencyBuckets]uint64
	latSum       time.Duration
	latMax       time.Duration
}

func (bs *batchStats) observe(d time.Duration) {
	bs.executed++
	bs.latCounts[latencyBucket(d)]++
	bs.latSum += d
	if d > bs.latMax {
		bs.latMax = d
	}
}

// batchRun is a worker's reusable scratch for one batch execution: the
// stats accumulator plus the periodic re-arms and chunk re-queues the
// batch produced. Reused across iterations so the drain loop stays
// allocation-free at steady state.
type batchRun struct {
	stats   batchStats
	rearm   []*job
	requeue []*job
}

func (br *batchRun) reset() {
	br.stats = batchStats{}
	for i := range br.rearm {
		br.rearm[i] = nil
	}
	br.rearm = br.rearm[:0]
	for i := range br.requeue {
		br.requeue[i] = nil
	}
	br.requeue = br.requeue[:0]
}

// shard is one slice of the execution plane: a hashed timer wheel, class
// run queues of batches, and the stats its workers accumulate.
type shard struct {
	idx int
	sc  *Scheduler

	// qdepth mirrors the total queued job count (both classes) so the
	// steal scan can find the hottest shard without touching any lock.
	qdepth atomic.Int64

	mu         sync.Mutex
	cond       *sync.Cond
	queues     [numClasses]fifo
	queued     [numClasses]int // jobs queued per class (batches hold many)
	flowCredit int             // weighted-fairness credit left for the flow class, in jobs
	execBatch  int             // batch-class jobs executing right now (load metric)
	free       []*batch        // recycled batch headers + job slices
	closed     bool

	// Timer wheel, also guarded by mu. cur/curAt track the cursor slot and
	// the wall time of its boundary; timers counts armed entries.
	slots     [][]wheelEntry
	cur       int
	curAt     time.Time
	timers    int
	timerWake chan struct{} // pokes the timer loop after an insert / on close

	// Stats, guarded by mu.
	executed     [numClasses]uint64
	lateRuns     uint64
	skippedTicks uint64
	steals       uint64 // batches this shard's workers stole from siblings
	stolen       uint64 // batches siblings' workers took from this shard
	batches      uint64 // batches executed by this shard's workers
	batchJobs    uint64 // jobs across those batches
	maxBatch     int    // largest batch executed here
	latCounts    [numLatencyBuckets]uint64
	latSum       time.Duration
	latMax       time.Duration
}

func newShard(sc *Scheduler, idx int) *shard {
	sh := &shard{
		idx:        idx,
		sc:         sc,
		flowCredit: sc.cfg.FlowWeight,
		slots:      make([][]wheelEntry, sc.cfg.WheelSlots),
		curAt:      time.Now(), //flowervet:allow wallclock(the timing wheel cursor tracks real time; sched is the wall-time executor)
		timerWake:  make(chan struct{}, 1),
	}
	sh.cond = sync.NewCond(&sh.mu)
	return sh
}

// maxFreeBatches bounds the per-shard batch freelist; maxFreeBatchCap
// bounds the job-slice capacity a recycled batch may retain, so one
// 100k-flow herd does not pin megabytes per shard forever.
const (
	maxFreeBatches   = 8
	maxFreeBatchCap  = 16384
	initialBatchJobs = 64
)

// getBatchLocked takes a recycled batch (or makes one) for class c.
func (sh *shard) getBatchLocked(c Class) *batch {
	if n := len(sh.free); n > 0 {
		b := sh.free[n-1]
		sh.free[n-1] = nil
		sh.free = sh.free[:n-1]
		b.class = c
		return b
	}
	return &batch{class: c, jobs: make([]*job, 0, initialBatchJobs)}
}

// putBatchLocked recycles a drained batch.
func (sh *shard) putBatchLocked(b *batch) {
	if len(sh.free) >= maxFreeBatches || cap(b.jobs) > maxFreeBatchCap {
		return
	}
	for i := range b.jobs {
		b.jobs[i] = nil
	}
	b.jobs = b.jobs[:0]
	sh.free = append(sh.free, b)
}

// pushLocked queues a batch and maintains the job-depth accounting.
func (sh *shard) pushLocked(b *batch) {
	sh.queues[b.class].push(b)
	sh.queued[b.class] += len(b.jobs)
	sh.qdepth.Add(int64(len(b.jobs)))
}

// insertTimerLocked arms a periodic job at j.nextAt; sh.mu must be held.
// Due and past times land in the next slot: the wheel never fires early,
// and a behind-schedule job fires on the next advance.
func (sh *shard) insertTimerLocked(j *job) {
	tick := sh.sc.cfg.WheelTick
	if sh.timers == 0 {
		// The wheel was idle, so the cursor stopped tracking wall time;
		// re-anchor it at now before placing the first entry.
		sh.curAt = time.Now() //flowervet:allow wallclock(re-anchoring the wheel cursor is real-time pacing)
	}
	offset := int((j.nextAt.Sub(sh.curAt) + tick - 1) / tick)
	if offset < 1 {
		offset = 1
	}
	slot := (sh.cur + offset) % len(sh.slots)
	sh.slots[slot] = append(sh.slots[slot], wheelEntry{j: j, rounds: (offset - 1) / len(sh.slots)})
	sh.timers++
}

// insertTimer arms one periodic job, reporting false on a closed shard.
func (sh *shard) insertTimer(j *job) bool {
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return false
	}
	sh.insertTimerLocked(j)
	sh.mu.Unlock()
	sh.wakeTimerLoop()
	return true
}

// insertTimers re-arms a whole batch's periodic jobs in one lock
// acquisition. On a closed shard the re-arms are dropped: the scheduler is
// shutting down and periodic jobs are lifecycle-managed via Ticket.Stop.
func (sh *shard) insertTimers(jobs []*job) {
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return
	}
	for _, j := range jobs {
		sh.insertTimerLocked(j)
	}
	sh.mu.Unlock()
	sh.wakeTimerLoop()
}

func (sh *shard) wakeTimerLoop() {
	select {
	case sh.timerWake <- struct{}{}:
	default:
	}
}

// timerLoop advances the wheel: it sleeps to the next slot boundary while
// timers are armed (and parks on timerWake when none are), draining each
// advance's due entries into per-class run batches pushed in the same lock
// acquisition the advance already holds — the fire path costs O(advances)
// lock work, not O(fired jobs).
func (sh *shard) timerLoop() {
	defer sh.sc.wg.Done()
	tick := sh.sc.cfg.WheelTick
	maxBatch := sh.sc.cfg.MaxBatch
	timer := time.NewTimer(time.Hour) //flowervet:allow wallclock(the timer loop is the wall-time heart of the scheduler)
	timer.Stop()
	for {
		sh.mu.Lock()
		if sh.closed {
			sh.mu.Unlock()
			return
		}
		now := time.Now() //flowervet:allow wallclock(wheel advancement measures real elapsed time)
		backlog := sh.queued[ClassFlow]+sh.queued[ClassBatch] > 0
		var fired [numClasses]*batch
		pushed := 0
		for sh.timers > 0 && !sh.curAt.Add(tick).After(now) {
			sh.cur = (sh.cur + 1) % len(sh.slots)
			sh.curAt = sh.curAt.Add(tick)
			slot := sh.slots[sh.cur]
			keep := slot[:0]
			for _, e := range slot {
				if e.rounds > 0 {
					e.rounds--
					keep = append(keep, e)
					continue
				}
				sh.timers--
				c := e.j.class
				if fired[c] == nil {
					fired[c] = sh.getBatchLocked(c)
				}
				fired[c].jobs = append(fired[c].jobs, e.j)
				if len(fired[c].jobs) >= maxBatch {
					// Cap batch granularity: sibling workers (and steals)
					// can then pick up the rest of a huge herd in parallel
					// instead of serialising behind one mega-batch.
					sh.pushLocked(fired[c])
					pushed++
					fired[c] = nil
				}
			}
			for i := len(keep); i < len(slot); i++ {
				slot[i] = wheelEntry{}
			}
			sh.slots[sh.cur] = keep
		}
		for c := range fired {
			if fired[c] != nil {
				sh.pushLocked(fired[c])
				pushed++
			}
		}
		if pushed == 1 {
			sh.cond.Signal()
		} else if pushed > 1 {
			sh.cond.Broadcast()
		}
		armed := sh.timers > 0
		var wait time.Duration
		if armed {
			wait = time.Until(sh.curAt.Add(tick)) //flowervet:allow wallclock(timer arming against the next real-time wheel edge)
		}
		sh.mu.Unlock()

		if pushed > 0 && backlog {
			// This advance queued behind work the local workers have not
			// drained yet: give an idle sibling a chance to steal it.
			sh.sc.wakeSibling(sh.idx)
		}
		if !armed {
			<-sh.timerWake
			continue
		}
		if wait < 100*time.Microsecond {
			wait = 100 * time.Microsecond
		}
		timer.Reset(wait)
		select {
		case <-timer.C:
		case <-sh.timerWake:
			timer.Stop()
		}
	}
}

// enqueue wraps a submitted job into a single-job batch on the shard's run
// queue and wakes one worker.
func (sh *shard) enqueue(j *job) bool {
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return false
	}
	backlog := sh.queued[ClassFlow]+sh.queued[ClassBatch] > 0
	b := sh.getBatchLocked(j.class)
	b.jobs = append(b.jobs, j)
	sh.pushLocked(b)
	sh.cond.Signal()
	sh.mu.Unlock()
	if backlog {
		sh.sc.wakeSibling(sh.idx)
	}
	return true
}

// popLocked applies the weighted-fairness drain: with both queues
// non-empty, FlowWeight flow-class jobs run per batch-class job (credit is
// spent per job, so a many-job flow batch consumes that much credit); with
// one queue empty, the other drains freely (work-conserving).
func (sh *shard) popLocked() *batch {
	nf, nb := sh.queued[ClassFlow], sh.queued[ClassBatch]
	var c Class
	switch {
	case nf == 0 && nb == 0:
		return nil
	case nb == 0:
		c = ClassFlow
	case nf == 0:
		c = ClassBatch
	case sh.flowCredit > 0:
		c = ClassFlow
	default:
		c = ClassBatch
		sh.flowCredit = sh.sc.cfg.FlowWeight
	}
	b := sh.queues[c].pop()
	if b == nil {
		return nil
	}
	if c == ClassFlow && nb > 0 {
		sh.flowCredit -= len(b.jobs)
	}
	sh.queued[c] -= len(b.jobs)
	sh.qdepth.Add(int64(-len(b.jobs)))
	return b
}

// workerLoop drains the shard's run queues batch by batch and, when its
// own shard is dry, steals a queued batch from the hottest sibling before
// going to sleep — closing the imbalance window skewed job durations open
// between shards.
func (sh *shard) workerLoop() {
	defer sh.sc.wg.Done()
	var br batchRun
	sh.mu.Lock()
	for {
		if sh.closed {
			sh.mu.Unlock()
			return
		}
		b := sh.popLocked()
		stolen := false
		if b == nil {
			sh.mu.Unlock()
			if b = sh.sc.steal(sh); b == nil {
				sh.mu.Lock()
				// Re-check under the lock: work may have arrived (or the
				// shard closed) between the failed steal and here.
				if !sh.closed && sh.queued[ClassFlow]+sh.queued[ClassBatch] == 0 {
					sh.cond.Wait()
				}
				continue
			}
			stolen = true
			sh.mu.Lock()
		}
		if b.class == ClassBatch {
			sh.execBatch += len(b.jobs)
		}
		sh.mu.Unlock()

		sh.runBatch(b, &br)

		class := b.class
		size := len(b.jobs)
		rearmSame := len(br.rearm) > 0 && br.rearm[0].home == sh
		sh.mu.Lock()
		if class == ClassBatch {
			sh.execBatch -= size
		}
		sh.flushStatsLocked(class, &br.stats, size, stolen)
		if rearmSame && !sh.closed {
			// The common, unstolen case: the whole batch re-arms into this
			// shard's own wheel under the lock the flush already holds.
			for _, j := range br.rearm {
				sh.insertTimerLocked(j)
			}
		}
		sh.putBatchLocked(b)
		sh.mu.Unlock()

		if rearmSame {
			sh.wakeTimerLoop()
		} else if len(br.rearm) > 0 {
			// A stolen batch re-arms on its home shard (all jobs of one
			// timer batch share it), keeping wheel placement stable.
			br.rearm[0].home.insertTimers(br.rearm)
		}
		sh.flushTelemetry(class, &br.stats, size, stolen)
		for _, j := range br.requeue {
			// Chunked jobs re-queue through the least-loaded scan so long
			// jobs drift toward idle shards instead of pinning where they
			// started. A false return means the scheduler is closing: the
			// job is abandoned, and its onStop (if any) is told so the
			// submitter can settle whatever the job was driving instead of
			// waiting forever.
			if !sh.sc.enqueueBatch(j) {
				j.mu.Lock()
				already := j.stopped
				j.stopped = true
				j.mu.Unlock()
				if !already && j.onStop != nil {
					j.onStop(ErrClosed)
				}
			}
		}
		sh.mu.Lock()
	}
}

// runBatch executes every runnable job of one dequeued batch, accumulating
// stats, periodic re-arms and chunk re-queues into br for the caller to
// flush. The clock is read once per job boundary (the end of one run is
// the start of the next), halving hot-loop clock reads.
func (sh *shard) runBatch(b *batch, br *batchRun) {
	br.reset()
	maxCatchUp := sh.sc.cfg.MaxCatchUp
	prev := time.Now() //flowervet:allow wallclock(per-class tick-duration histograms measure real execution cost)
	for _, j := range b.jobs {
		j.mu.Lock()
		if j.stopped {
			j.mu.Unlock()
			continue
		}
		j.running = true
		n := 0
		if j.periodic {
			// Fixed-rate catch-up, bounded: deliver every interval owed since
			// nextAt in this one call, but never more than MaxCatchUp — the
			// excess is dropped (and counted), so overload degrades the tick
			// rate instead of growing a backlog.
			owed := 1
			if behind := prev.Sub(j.nextAt); behind > 0 {
				owed += int(behind / j.interval)
			}
			n = owed
			if n > maxCatchUp {
				br.stats.skippedTicks += uint64(n - maxCatchUp)
				n = maxCatchUp
			}
			if owed > 1 {
				br.stats.lateRuns++
			}
			j.nextAt = j.nextAt.Add(time.Duration(owed) * j.interval)
			j.mu.Unlock()
		} else {
			j.mu.Unlock()
		}

		var err error
		done := false
		if j.periodic {
			err = j.tick(n)
		} else {
			done = j.run()
		}
		now := time.Now() //flowervet:allow wallclock(per-class tick-duration histograms measure real execution cost)
		br.stats.observe(now.Sub(prev))
		prev = now

		j.mu.Lock()
		j.running = false
		ws := j.waiters
		j.waiters = nil
		errExit := false
		if !j.stopped && (err != nil || (!j.periodic && done)) {
			j.stopped = true
			errExit = err != nil
		}
		alive := !j.stopped
		j.mu.Unlock()
		for _, ch := range ws {
			close(ch)
		}
		if errExit && j.onStop != nil {
			// After the waiters are released: a Stop racing the failing tick
			// has already returned, so onStop can take the locks Stop's caller
			// held without deadlocking.
			j.onStop(err)
		}
		if !alive {
			continue
		}
		if j.periodic {
			br.rearm = append(br.rearm, j)
		} else {
			br.requeue = append(br.requeue, j)
		}
	}
}

// flushStatsLocked folds one batch's accumulated stats into the shard;
// sh.mu must be held. Executed counts land on the shard whose worker ran
// the batch, so per-shard rows show where work actually happened under
// stealing.
func (sh *shard) flushStatsLocked(c Class, bs *batchStats, size int, stolen bool) {
	sh.executed[c] += bs.executed
	sh.lateRuns += bs.lateRuns
	sh.skippedTicks += bs.skippedTicks
	sh.latSum += bs.latSum
	if bs.latMax > sh.latMax {
		sh.latMax = bs.latMax
	}
	for i, n := range bs.latCounts {
		sh.latCounts[i] += n
	}
	sh.batches++
	sh.batchJobs += uint64(size)
	if size > sh.maxBatch {
		sh.maxBatch = size
	}
	if stolen {
		sh.steals++
	}
}

// flushTelemetry mirrors one batch's stats into the process-wide
// instruments — a handful of atomic adds per batch, outside any lock.
func (sh *shard) flushTelemetry(c Class, bs *batchStats, size int, stolen bool) {
	if bs.executed > 0 {
		telExecutedByClass[c].Add(bs.executed)
		telRunSecondsByClass[c].Merge(bs.latCounts[:], bs.latSum, bs.latMax)
	}
	if bs.lateRuns > 0 {
		telLateRuns.Add(bs.lateRuns)
	}
	if bs.skippedTicks > 0 {
		telSkippedTicks.Add(bs.skippedTicks)
	}
	telBatchesByClass[c].Inc()
	telBatchJobsByClass[c].Observe(time.Duration(size) * batchJobUnit)
	if stolen {
		telSteals.Inc()
	}
}
