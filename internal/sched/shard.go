package sched

import (
	"sync"
	"time"
)

// job is one schedulable unit: a periodic timer job (pacer tick) or a
// queued chunked job (experiment trial). Its lifecycle invariant is that a
// periodic job is in exactly one place at a time — armed in the wheel,
// waiting in a run queue, or executing — so one job can never fire twice
// concurrently; catch-up after delays is handled by delivering batched
// intervals, not parallel runs.
type job struct {
	id       string
	class    Class
	periodic bool
	interval time.Duration
	tick     TickFunc
	run      ChunkFunc
	onStop   func(error)

	mu      sync.Mutex
	stopped bool
	running bool
	waiters []chan struct{} // Stop callers awaiting the in-flight run
	// nextAt is the periodic job's scheduled fire time. It is written by
	// the worker that just ran the job (under j.mu) and read by the wheel
	// insert that re-arms it — a strict hand-off, never concurrent.
	nextAt time.Time
}

// wheelEntry is one armed timer: rounds counts full wheel revolutions
// still to wait before the entry is due.
type wheelEntry struct {
	j      *job
	rounds int
}

// fifo is a slice-backed queue of jobs with an amortised-O(1) pop.
type fifo struct {
	head  int
	items []*job
}

func (q *fifo) len() int { return len(q.items) - q.head }

func (q *fifo) push(j *job) { q.items = append(q.items, j) }

func (q *fifo) pop() *job {
	if q.head == len(q.items) {
		return nil
	}
	j := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	// Compact once the dead prefix dominates, so the backing array does
	// not grow without bound under sustained traffic.
	if q.head > 64 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	return j
}

// shard is one slice of the execution plane: a hashed timer wheel, class
// run queues, and the stats its workers accumulate.
type shard struct {
	idx int
	sc  *Scheduler

	mu         sync.Mutex
	cond       *sync.Cond
	queues     [numClasses]fifo
	flowCredit int // weighted-fairness credit left for the flow class
	execBatch  int // batch chunks executing right now (load metric)
	closed     bool

	// Timer wheel, also guarded by mu. cur/curAt track the cursor slot and
	// the wall time of its boundary; timers counts armed entries.
	slots     [][]wheelEntry
	cur       int
	curAt     time.Time
	timers    int
	timerWake chan struct{} // pokes the timer loop after an insert / on close

	// Stats, guarded by mu.
	executed     [numClasses]uint64
	lateRuns     uint64
	skippedTicks uint64
	latCounts    [numLatencyBuckets]uint64
	latSum       time.Duration
	latMax       time.Duration
}

func newShard(sc *Scheduler, idx int) *shard {
	sh := &shard{
		idx:        idx,
		sc:         sc,
		flowCredit: sc.cfg.FlowWeight,
		slots:      make([][]wheelEntry, sc.cfg.WheelSlots),
		curAt:      time.Now(), //flowervet:allow wallclock(the timing wheel cursor tracks real time; sched is the wall-time executor)
		timerWake:  make(chan struct{}, 1),
	}
	sh.cond = sync.NewCond(&sh.mu)
	return sh
}

// insertTimer arms a periodic job at j.nextAt, reporting false on a
// closed shard. Due and past times land in the next slot: the wheel
// never fires early, and a behind-schedule job fires on the next
// advance.
func (sh *shard) insertTimer(j *job) bool {
	tick := sh.sc.cfg.WheelTick
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return false
	}
	if sh.timers == 0 {
		// The wheel was idle, so the cursor stopped tracking wall time;
		// re-anchor it at now before placing the first entry.
		sh.curAt = time.Now() //flowervet:allow wallclock(re-anchoring the wheel cursor is real-time pacing)
	}
	offset := int((j.nextAt.Sub(sh.curAt) + tick - 1) / tick)
	if offset < 1 {
		offset = 1
	}
	slot := (sh.cur + offset) % len(sh.slots)
	sh.slots[slot] = append(sh.slots[slot], wheelEntry{j: j, rounds: (offset - 1) / len(sh.slots)})
	sh.timers++
	sh.mu.Unlock()
	select {
	case sh.timerWake <- struct{}{}:
	default:
	}
	return true
}

// timerLoop advances the wheel: it sleeps to the next slot boundary while
// timers are armed (and parks on timerWake when none are), moving due
// entries onto the run queues.
func (sh *shard) timerLoop() {
	defer sh.sc.wg.Done()
	tick := sh.sc.cfg.WheelTick
	timer := time.NewTimer(time.Hour) //flowervet:allow wallclock(the timer loop is the wall-time heart of the scheduler)
	timer.Stop()
	for {
		sh.mu.Lock()
		if sh.closed {
			sh.mu.Unlock()
			return
		}
		now := time.Now() //flowervet:allow wallclock(wheel advancement measures real elapsed time)
		fired := 0
		for sh.timers > 0 && !sh.curAt.Add(tick).After(now) {
			sh.cur = (sh.cur + 1) % len(sh.slots)
			sh.curAt = sh.curAt.Add(tick)
			slot := sh.slots[sh.cur]
			keep := slot[:0]
			for _, e := range slot {
				if e.rounds > 0 {
					e.rounds--
					keep = append(keep, e)
					continue
				}
				sh.timers--
				sh.queues[e.j.class].push(e.j)
				fired++
			}
			for i := len(keep); i < len(slot); i++ {
				slot[i] = wheelEntry{}
			}
			sh.slots[sh.cur] = keep
		}
		if fired == 1 {
			sh.cond.Signal()
		} else if fired > 1 {
			sh.cond.Broadcast()
		}
		armed := sh.timers > 0
		var wait time.Duration
		if armed {
			wait = time.Until(sh.curAt.Add(tick)) //flowervet:allow wallclock(timer arming against the next real-time wheel edge)
		}
		sh.mu.Unlock()

		if !armed {
			<-sh.timerWake
			continue
		}
		if wait < 100*time.Microsecond {
			wait = 100 * time.Microsecond
		}
		timer.Reset(wait)
		select {
		case <-timer.C:
		case <-sh.timerWake:
			timer.Stop()
		}
	}
}

// enqueue appends a job to the shard's run queue and wakes one worker.
func (sh *shard) enqueue(j *job) bool {
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return false
	}
	sh.queues[j.class].push(j)
	sh.cond.Signal()
	sh.mu.Unlock()
	return true
}

// popLocked applies the weighted-fairness drain: with both queues
// non-empty, FlowWeight flow jobs run per batch job; with one queue empty,
// the other drains freely (work-conserving).
func (sh *shard) popLocked() *job {
	nf, nb := sh.queues[ClassFlow].len(), sh.queues[ClassBatch].len()
	var c Class
	switch {
	case nf == 0 && nb == 0:
		return nil
	case nb == 0:
		c = ClassFlow
	case nf == 0:
		c = ClassBatch
	case sh.flowCredit > 0:
		c = ClassFlow
		sh.flowCredit--
	default:
		c = ClassBatch
		sh.flowCredit = sh.sc.cfg.FlowWeight
	}
	return sh.queues[c].pop()
}

// workerLoop drains the shard's run queues.
func (sh *shard) workerLoop() {
	defer sh.sc.wg.Done()
	sh.mu.Lock()
	for {
		if sh.closed {
			sh.mu.Unlock()
			return
		}
		j := sh.popLocked()
		if j == nil {
			sh.cond.Wait()
			continue
		}
		if j.class == ClassBatch {
			sh.execBatch++
		}
		sh.mu.Unlock()

		requeue := sh.runJob(j)

		sh.mu.Lock()
		if j.class == ClassBatch {
			sh.execBatch--
		}
		if requeue {
			sh.mu.Unlock()
			// Chunked jobs re-queue through the least-loaded scan so long
			// jobs drift toward idle shards instead of pinning where they
			// started. A false return means the scheduler is closing: the
			// job is abandoned, and its onStop (if any) is told so the
			// submitter can settle whatever the job was driving instead
			// of waiting forever.
			if !sh.sc.enqueueBatch(j) {
				j.mu.Lock()
				j.stopped = true
				j.mu.Unlock()
				if j.onStop != nil {
					j.onStop(ErrClosed)
				}
			}
			sh.mu.Lock()
		}
	}
}

// runJob executes one dequeued job and reports whether a chunked job wants
// re-queueing. Periodic jobs re-arm themselves into the wheel here.
func (sh *shard) runJob(j *job) (requeue bool) {
	j.mu.Lock()
	if j.stopped {
		j.mu.Unlock()
		return false
	}
	j.running = true
	n := 0
	if j.periodic {
		// Fixed-rate catch-up, bounded: deliver every interval owed since
		// nextAt in this one call, but never more than MaxCatchUp — the
		// excess is dropped (and counted), so overload degrades the tick
		// rate instead of growing a backlog.
		owed := 1
		if behind := time.Since(j.nextAt); behind > 0 { //flowervet:allow wallclock(catch-up accounting measures real schedule slip)
			owed += int(behind / j.interval)
		}
		n = owed
		skipped := 0
		if m := sh.sc.cfg.MaxCatchUp; n > m {
			skipped = n - m
			n = m
		}
		j.nextAt = j.nextAt.Add(time.Duration(owed) * j.interval)
		j.mu.Unlock()
		if owed > 1 || skipped > 0 {
			sh.mu.Lock()
			if owed > 1 {
				sh.lateRuns++
			}
			sh.skippedTicks += uint64(skipped)
			sh.mu.Unlock()
			if owed > 1 {
				telLateRuns.Inc()
			}
			telSkippedTicks.Add(uint64(skipped))
		}
	} else {
		j.mu.Unlock()
	}

	start := time.Now() //flowervet:allow wallclock(per-class tick-duration histograms measure real execution cost)
	var err error
	done := false
	if j.periodic {
		err = j.tick(n)
	} else {
		done = j.run()
	}
	sh.observe(j.class, time.Since(start)) //flowervet:allow wallclock(per-class tick-duration histograms measure real execution cost)

	j.mu.Lock()
	j.running = false
	ws := j.waiters
	j.waiters = nil
	errExit := false
	if !j.stopped && (err != nil || (!j.periodic && done)) {
		j.stopped = true
		errExit = err != nil
	}
	alive := !j.stopped
	j.mu.Unlock()
	for _, ch := range ws {
		close(ch)
	}
	if errExit && j.onStop != nil {
		// After the waiters are released: a Stop racing the failing tick
		// has already returned, so onStop can take the locks Stop's caller
		// held without deadlocking.
		j.onStop(err)
	}
	if !alive {
		return false
	}
	if j.periodic {
		sh.insertTimer(j)
		return false
	}
	return true
}

// observe records one execution into the shard's latency stats and the
// process-wide telemetry (atomic adds, outside the shard lock).
func (sh *shard) observe(c Class, d time.Duration) {
	sh.mu.Lock()
	sh.executed[c]++
	sh.latSum += d
	if d > sh.latMax {
		sh.latMax = d
	}
	sh.latCounts[latencyBucket(d)]++
	sh.mu.Unlock()
	telExecutedByClass[c].Inc()
	telRunSecondsByClass[c].Observe(d)
}
