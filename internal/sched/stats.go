package sched

import "time"

// latencyBounds are the histogram bucket upper bounds; executions slower
// than the last bound land in the overflow bucket. The range spans "pacer
// tick that did nothing" (tens of microseconds) to "trial chunk simulating
// many steps" (hundreds of milliseconds).
var latencyBounds = [...]time.Duration{
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	1 * time.Millisecond,
	2500 * time.Microsecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	1 * time.Second,
}

const numLatencyBuckets = len(latencyBounds) + 1 // + overflow

func latencyBucket(d time.Duration) int {
	for i, b := range latencyBounds {
		if d <= b {
			return i
		}
	}
	return len(latencyBounds)
}

// Histogram is a frozen run-latency distribution: Counts[i] executions
// took at most Bounds[i] (the last bucket is unbounded).
type Histogram struct {
	Bounds []time.Duration
	Counts []uint64
	Count  uint64
	Sum    time.Duration
	Max    time.Duration
}

// Mean returns the average execution duration (0 with no samples).
func (h Histogram) Mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / time.Duration(h.Count)
}

// ShardStats is one shard's view at a point in time.
type ShardStats struct {
	// Shard is the shard index.
	Shard int
	// Timers is the number of armed periodic jobs (wheel entries).
	Timers int
	// FlowQueue / BatchQueue are the run-queue depths per class;
	// QueueDepth is their sum.
	FlowQueue  int
	BatchQueue int
	QueueDepth int
	// ExecutedFlow / ExecutedBatch count completed executions per class.
	ExecutedFlow  uint64
	ExecutedBatch uint64
	// LateRuns counts periodic executions that started at least one full
	// interval behind schedule; SkippedTicks counts the intervals the
	// bounded catch-up policy dropped.
	LateRuns     uint64
	SkippedTicks uint64
	// Steals counts batches this shard's workers took from siblings;
	// Stolen counts batches siblings took from this shard's queues.
	Steals uint64
	Stolen uint64
	// Batches / BatchJobs count run batches executed by this shard's
	// workers and the jobs they carried; MaxBatch is the largest batch.
	Batches   uint64
	BatchJobs uint64
	MaxBatch  int
	// Latency is the shard's run-latency histogram (for pacer jobs, the
	// duration of the flow advance each tick performed).
	Latency Histogram
}

// Stats is a point-in-time snapshot of the whole execution plane.
type Stats struct {
	// Shards / WorkersPerShard / Capacity restate the scheduler's size
	// (Capacity = Shards × WorkersPerShard).
	Shards          int
	WorkersPerShard int
	Capacity        int
	// FlowWeight, MaxCatchUp and WheelTick restate the policy knobs.
	FlowWeight int
	MaxCatchUp int
	WheelTick  time.Duration
	// Totals over all shards.
	Timers        int
	QueueDepth    int
	ExecutedFlow  uint64
	ExecutedBatch uint64
	LateRuns      uint64
	SkippedTicks  uint64
	Steals        uint64
	Batches       uint64
	BatchJobs     uint64
	MaxBatch      int
	// PerShard holds each shard's row.
	PerShard []ShardStats
}

// MeanBatch returns the average jobs per executed run batch (0 with none)
// — the direct measure of how much lock amortisation batching is buying.
func (s Stats) MeanBatch() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.BatchJobs) / float64(s.Batches)
}

// Stats snapshots every shard. Shards are locked one at a time, so the
// snapshot is per-shard consistent, not globally atomic — fine for
// observability, which is its only purpose.
func (s *Scheduler) Stats() Stats {
	out := Stats{
		Shards:          s.cfg.Shards,
		WorkersPerShard: s.cfg.Workers,
		Capacity:        s.Capacity(),
		FlowWeight:      s.cfg.FlowWeight,
		MaxCatchUp:      s.cfg.MaxCatchUp,
		WheelTick:       s.cfg.WheelTick,
		PerShard:        make([]ShardStats, 0, len(s.shards)),
	}
	bounds := append([]time.Duration(nil), latencyBounds[:]...)
	for _, sh := range s.shards {
		sh.mu.Lock()
		row := ShardStats{
			Shard:         sh.idx,
			Timers:        sh.timers,
			FlowQueue:     sh.queued[ClassFlow],
			BatchQueue:    sh.queued[ClassBatch],
			ExecutedFlow:  sh.executed[ClassFlow],
			ExecutedBatch: sh.executed[ClassBatch],
			LateRuns:      sh.lateRuns,
			SkippedTicks:  sh.skippedTicks,
			Steals:        sh.steals,
			Stolen:        sh.stolen,
			Batches:       sh.batches,
			BatchJobs:     sh.batchJobs,
			MaxBatch:      sh.maxBatch,
			Latency: Histogram{
				Bounds: bounds,
				Counts: append([]uint64(nil), sh.latCounts[:]...),
				Sum:    sh.latSum,
				Max:    sh.latMax,
			},
		}
		sh.mu.Unlock()
		row.QueueDepth = row.FlowQueue + row.BatchQueue
		for _, c := range row.Latency.Counts {
			row.Latency.Count += c
		}
		out.Timers += row.Timers
		out.QueueDepth += row.QueueDepth
		out.ExecutedFlow += row.ExecutedFlow
		out.ExecutedBatch += row.ExecutedBatch
		out.LateRuns += row.LateRuns
		out.SkippedTicks += row.SkippedTicks
		out.Steals += row.Steals
		out.Batches += row.Batches
		out.BatchJobs += row.BatchJobs
		if row.MaxBatch > out.MaxBatch {
			out.MaxBatch = row.MaxBatch
		}
		out.PerShard = append(out.PerShard, row)
	}
	return out
}
