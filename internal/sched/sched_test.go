package sched

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPeriodicFires(t *testing.T) {
	s := New(Config{Shards: 2})
	defer s.Close()
	var ticks atomic.Int64
	tk, err := s.Periodic("p", ClassFlow, 5*time.Millisecond, func(n int) error {
		ticks.Add(int64(n))
		return nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return ticks.Load() >= 5 }, "periodic job never accumulated 5 intervals")
	tk.Stop()
	after := ticks.Load()
	time.Sleep(30 * time.Millisecond)
	if got := ticks.Load(); got != after {
		t.Fatalf("job ran after Stop: %d -> %d", after, got)
	}
	if !tk.Stopped() {
		t.Fatal("ticket not reported stopped")
	}
}

func TestPeriodicValidation(t *testing.T) {
	s := New(Config{Shards: 1})
	defer s.Close()
	if _, err := s.Periodic("x", ClassFlow, 0, func(int) error { return nil }, nil); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := s.Periodic("x", ClassFlow, time.Millisecond, nil, nil); err == nil {
		t.Error("nil tick accepted")
	}
	if _, err := s.Submit("x", ClassBatch, nil, nil); err == nil {
		t.Error("nil chunk accepted")
	}
}

// TestPeriodicErrorStopsJobAndCallsOnStop: a tick error permanently stops
// the job and invokes onStop exactly once with that error.
func TestPeriodicErrorStopsJobAndCallsOnStop(t *testing.T) {
	s := New(Config{Shards: 1})
	defer s.Close()
	boom := errors.New("boom")
	var runs atomic.Int64
	stopped := make(chan error, 4)
	tk, err := s.Periodic("p", ClassFlow, 2*time.Millisecond, func(n int) error {
		if runs.Add(1) == 3 {
			return boom
		}
		return nil
	}, func(err error) { stopped <- err })
	if err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-stopped:
		if !errors.Is(got, boom) {
			t.Fatalf("onStop error = %v, want boom", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("onStop never called")
	}
	if !tk.Stopped() {
		t.Fatal("job not stopped after tick error")
	}
	after := runs.Load()
	time.Sleep(20 * time.Millisecond)
	if got := runs.Load(); got != after {
		t.Fatalf("job ran after error exit: %d -> %d", after, got)
	}
	select {
	case <-stopped:
		t.Fatal("onStop called more than once")
	default:
	}
}

// TestStopWaitsForInFlightRun: Stop must not return while the job's
// function is executing.
func TestStopWaitsForInFlightRun(t *testing.T) {
	s := New(Config{Shards: 1})
	defer s.Close()
	started := make(chan struct{})
	release := make(chan struct{})
	var inFlight atomic.Bool
	tk, err := s.Periodic("slow", ClassFlow, time.Millisecond, func(n int) error {
		inFlight.Store(true)
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
		inFlight.Store(false)
		return nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	done := make(chan struct{})
	go func() {
		tk.Stop()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Stop returned while the tick was still executing")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop never returned after the tick finished")
	}
	if inFlight.Load() {
		t.Fatal("tick still in flight after Stop returned")
	}
}

// TestBoundedCatchUp: a tick function slower than its interval receives
// batched intervals bounded by MaxCatchUp, and the shard records late runs
// (and, once saturated, skipped ticks).
func TestBoundedCatchUp(t *testing.T) {
	s := New(Config{Shards: 1, MaxCatchUp: 3})
	defer s.Close()
	var maxN atomic.Int64
	var runs atomic.Int64
	tk, err := s.Periodic("lag", ClassFlow, time.Millisecond, func(n int) error {
		if int64(n) > maxN.Load() {
			maxN.Store(int64(n))
		}
		runs.Add(1)
		time.Sleep(10 * time.Millisecond) // 10x the interval: always behind
		return nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return runs.Load() >= 5 }, "laggy job never ran 5 times")
	tk.Stop()
	if got := maxN.Load(); got > 3 {
		t.Fatalf("tick received %d intervals, cap is 3", got)
	}
	st := s.Stats()
	if st.LateRuns == 0 {
		t.Error("no late runs recorded for a job 10x slower than its interval")
	}
	if st.SkippedTicks == 0 {
		t.Error("no skipped ticks recorded despite the catch-up cap binding every run")
	}
	if got := maxN.Load(); got < 2 {
		t.Errorf("catch-up never batched intervals: max n = %d", got)
	}
}

func TestChunkedJobRunsToCompletion(t *testing.T) {
	s := New(Config{Shards: 2, Workers: 1})
	defer s.Close()
	var chunks atomic.Int64
	done := make(chan struct{})
	if _, err := s.Submit("trial", ClassBatch, func() bool {
		if chunks.Add(1) == 7 {
			close(done)
			return true
		}
		return false
	}, nil); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("chunked job never completed")
	}
	time.Sleep(10 * time.Millisecond)
	if got := chunks.Load(); got != 7 {
		t.Fatalf("chunks = %d, want exactly 7 (no run after done)", got)
	}
}

// TestChunkedJobsInterleave: with one worker, two chunked jobs must make
// progress in turns, not run-to-completion serially.
func TestChunkedJobsInterleave(t *testing.T) {
	s := New(Config{Shards: 1, Workers: 1})
	defer s.Close()
	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	wg.Add(2)
	for _, name := range []string{"a", "b"} {
		count := 0
		if _, err := s.Submit(name, ClassBatch, func() bool {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			count++
			if count == 3 {
				wg.Done()
				return true
			}
			return false
		}, nil); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	// Serial execution would be aaabbb (or bbbaaa); any alternation proves
	// the re-queue-after-chunk policy interleaves.
	interleaved := false
	for i := 1; i < len(order)-1; i++ {
		if order[i] != order[i-1] && i < len(order)-1 && order[i+1] == order[i-1] {
			interleaved = true
		}
	}
	if !interleaved {
		t.Fatalf("jobs did not interleave: %v", order)
	}
}

// TestFlowsNotStarvedByBatchFlood: pacer-class periodic jobs keep firing
// while a flood of batch chunks saturates the only worker.
func TestFlowsNotStarvedByBatchFlood(t *testing.T) {
	s := New(Config{Shards: 1, Workers: 1, FlowWeight: 4})
	defer s.Close()
	stop := make(chan struct{})
	// An endless batch job: each chunk burns ~1ms and re-queues.
	if _, err := s.Submit("grid", ClassBatch, func() bool {
		select {
		case <-stop:
			return true
		default:
			time.Sleep(time.Millisecond)
			return false
		}
	}, nil); err != nil {
		t.Fatal(err)
	}
	var ticks atomic.Int64
	tk, err := s.Periodic("pacer", ClassFlow, 2*time.Millisecond, func(n int) error {
		ticks.Add(int64(n))
		return nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return ticks.Load() >= 10 },
		"pacer starved by batch flood: no 10 intervals delivered")
	tk.Stop()
	close(stop)
}

func TestStatsAndGoroutineBound(t *testing.T) {
	before := runtime.NumGoroutine()
	s := New(Config{Shards: 4, Workers: 2})
	var ticks atomic.Int64
	var tks []*Ticket
	for _, id := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		tk, err := s.Periodic("flow/"+id, ClassFlow, 3*time.Millisecond, func(n int) error {
			ticks.Add(int64(n))
			return nil
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		tks = append(tks, tk)
	}
	waitFor(t, 2*time.Second, func() bool { return ticks.Load() >= 16 }, "jobs never ticked")

	st := s.Stats()
	if st.Shards != 4 || st.WorkersPerShard != 2 || st.Capacity != 8 {
		t.Fatalf("stats sizing: %+v", st)
	}
	if len(st.PerShard) != 4 {
		t.Fatalf("per-shard rows = %d, want 4", len(st.PerShard))
	}
	if st.ExecutedFlow == 0 {
		t.Error("no flow executions counted")
	}
	var hist uint64
	for _, row := range st.PerShard {
		hist += row.Latency.Count
	}
	if hist != st.ExecutedFlow+st.ExecutedBatch {
		t.Errorf("histogram samples %d != executions %d", hist, st.ExecutedFlow+st.ExecutedBatch)
	}
	// 8 periodic jobs armed or in flight; timers is a live gauge so allow
	// any value 0..8, but after stopping everything it must settle to 0.
	for _, tk := range tks {
		tk.Stop()
	}

	s.Close()
	waitFor(t, 2*time.Second, func() bool { return runtime.NumGoroutine() <= before+2 },
		"scheduler goroutines leaked after Close")

	// Closed scheduler rejects new work.
	if _, err := s.Periodic("late", ClassFlow, time.Millisecond, func(int) error { return nil }, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Periodic after Close = %v, want ErrClosed", err)
	}
	if _, err := s.Submit("late", ClassBatch, func() bool { return true }, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close = %v, want ErrClosed", err)
	}
	s.Close() // idempotent
}

// TestManyPeriodicJobsRace arms 1000 periodic jobs across the shards and
// hammers Stop/Stats concurrently; run with -race. Goroutine count must
// stay O(shards), not O(jobs).
func TestManyPeriodicJobsRace(t *testing.T) {
	s := New(Config{Shards: 4, Workers: 1})
	defer s.Close()
	base := runtime.NumGoroutine()
	var ticks atomic.Int64
	tks := make([]*Ticket, 1000)
	for i := range tks {
		tk, err := s.Periodic(string(rune('a'+i%26))+"/"+string(rune('0'+i%10)), ClassFlow, 10*time.Millisecond,
			func(n int) error { ticks.Add(int64(n)); return nil }, nil)
		if err != nil {
			t.Fatal(err)
		}
		tks[i] = tk
	}
	if g := runtime.NumGoroutine(); g > base+8 {
		t.Fatalf("goroutines grew with job count: %d -> %d for 1000 jobs", base, g)
	}
	waitFor(t, 5*time.Second, func() bool { return ticks.Load() >= 1000 }, "1000 periodic jobs made no progress")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(tks); i += 8 {
				tks[i].Stop()
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			s.Stats()
		}
	}()
	wg.Wait()
	after := ticks.Load()
	time.Sleep(25 * time.Millisecond)
	if got := ticks.Load(); got != after {
		t.Fatalf("ticks after all jobs stopped: %d -> %d", after, got)
	}
}

// TestCloseSettlesAbandonedChunkedJobs: a Close landing while chunked
// jobs are mid-flight (between chunks) or still queued must invoke each
// job's onStop with ErrClosed exactly once, so submitters (the lab's
// trial WaitGroups) never hang on work that will never run.
func TestCloseSettlesAbandonedChunkedJobs(t *testing.T) {
	s := New(Config{Shards: 1, Workers: 1})
	settled := make(chan error, 8)
	firstChunk := make(chan struct{})
	var once sync.Once
	// An endless job that signals once it has run a chunk — Close will
	// catch it either queued or between chunks.
	if _, err := s.Submit("endless", ClassBatch, func() bool {
		once.Do(func() { close(firstChunk) })
		time.Sleep(time.Millisecond)
		return false
	}, func(err error) { settled <- err }); err != nil {
		t.Fatal(err)
	}
	// A second job that may never get to run at all behind the first.
	if _, err := s.Submit("starved", ClassBatch, func() bool {
		time.Sleep(time.Millisecond)
		return false
	}, func(err error) { settled <- err }); err != nil {
		t.Fatal(err)
	}
	<-firstChunk
	s.Close()
	for i := 0; i < 2; i++ {
		select {
		case err := <-settled:
			if !errors.Is(err, ErrClosed) {
				t.Fatalf("onStop error = %v, want ErrClosed", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("job %d never settled after Close", i)
		}
	}
	select {
	case <-settled:
		t.Fatal("onStop called more than once for a job")
	case <-time.After(20 * time.Millisecond):
	}
}
