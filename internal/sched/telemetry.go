package sched

import (
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Process-wide scheduler telemetry. Counters are incremented on the hot
// path (single atomic adds next to the per-shard stats they mirror);
// occupancy gauges are evaluated lazily at snapshot time over the set of
// live schedulers, so they can never drift from the authoritative per-shard
// state and closed schedulers drop out automatically.
var (
	telExecuted = telemetry.Default().CounterVec("flower_sched_executed_total",
		"Job executions completed, by class.", "class")
	telExecutedByClass [numClasses]*telemetry.Counter

	telLateRuns = telemetry.Default().Counter("flower_sched_late_runs_total",
		"Periodic executions that started at least one full interval behind schedule.")
	telSkippedTicks = telemetry.Default().Counter("flower_sched_skipped_ticks_total",
		"Intervals dropped by the bounded catch-up policy.")

	telRunSeconds = telemetry.Default().HistogramVec("flower_sched_run_seconds",
		"Run latency of executed jobs, by class.", latencyBounds[:], "class")
	telRunSecondsByClass [numClasses]*telemetry.Histogram

	telSteals = telemetry.Default().Counter("flower_sched_steals_total",
		"Run batches idle workers stole from sibling shards.")

	telBatches = telemetry.Default().CounterVec("flower_sched_batches_total",
		"Run batches executed, by class.", "class")
	telBatchesByClass [numClasses]*telemetry.Counter

	telBatchJobs = telemetry.Default().HistogramVec("flower_sched_batch_jobs",
		"Jobs carried per executed run batch, by class (bucket bounds are job counts).",
		batchSizeBounds[:], "class")
	telBatchJobsByClass [numClasses]*telemetry.Histogram
)

// batchJobUnit encodes one job as one second in the batch-size histogram,
// so the exposition's `le` bounds render as whole job counts (1, 4, 16, …)
// instead of nanosecond fractions.
const batchJobUnit = time.Second

var batchSizeBounds = [...]time.Duration{
	1 * batchJobUnit,
	4 * batchJobUnit,
	16 * batchJobUnit,
	64 * batchJobUnit,
	256 * batchJobUnit,
	1024 * batchJobUnit,
}

func init() {
	for c := Class(0); c < numClasses; c++ {
		telExecutedByClass[c] = telExecuted.With(c.String())
		telRunSecondsByClass[c] = telRunSeconds.With(c.String())
		telBatchesByClass[c] = telBatches.With(c.String())
		telBatchJobsByClass[c] = telBatchJobs.With(c.String())
	}
	telemetry.Default().GaugeFunc("flower_sched_timers",
		"Armed periodic jobs across all live schedulers.",
		func() int64 { return sumShards(func(sh *shard) int { return sh.timers }) })
	telemetry.Default().GaugeFunc("flower_sched_queue_depth",
		"Queued runnable jobs across all live schedulers.",
		func() int64 {
			return sumShards(func(sh *shard) int {
				return sh.queued[ClassFlow] + sh.queued[ClassBatch]
			})
		})
}

// liveSchedulers is the set the occupancy gauges range over; New adds,
// Close removes.
var (
	liveMu         sync.Mutex
	liveSchedulers = map[*Scheduler]struct{}{}
)

func registerScheduler(s *Scheduler) {
	liveMu.Lock()
	liveSchedulers[s] = struct{}{}
	liveMu.Unlock()
}

func unregisterScheduler(s *Scheduler) {
	liveMu.Lock()
	delete(liveSchedulers, s)
	liveMu.Unlock()
}

// sumShards folds fn over every shard of every live scheduler, taking each
// shard's lock in turn. Snapshot-time only.
func sumShards(fn func(sh *shard) int) int64 {
	liveMu.Lock()
	scs := make([]*Scheduler, 0, len(liveSchedulers))
	for s := range liveSchedulers {
		scs = append(scs, s)
	}
	liveMu.Unlock()
	var total int64
	for _, s := range scs {
		for _, sh := range s.shards {
			sh.mu.Lock()
			total += int64(fn(sh))
			sh.mu.Unlock()
		}
	}
	return total
}
