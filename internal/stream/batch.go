package stream

import (
	"fmt"
	"sort"
	"time"
)

// Aggregate (count-based) ingest. The per-record API (PutRecord/GetRecords)
// models Kinesis faithfully but costs O(records) per tick; experiment runs
// push 10^8 records, which dominates the whole benchmark suite. The batch
// API below carries the same per-shard accounting — record and byte budgets,
// throttle counts, utilisation metrics, backlog — while representing the
// records themselves only as counts. Per-shard arrival counts are supplied
// by the caller (the workload generator samples them multinomially from the
// key-population weights, which is exactly the distribution the per-record
// path induces; see internal/randx). Both paths can be mixed freely on one
// stream: counted and materialised backlog are drained together.

// PutCounts offers counts[i] records of avgBytes each to shard i. Each
// shard accepts records up to its per-tick record and byte budgets; the
// excess is throttled. It returns the totals accepted and throttled, and an
// error only if the counts vector does not match the shard layout.
func (s *Stream) PutCounts(now time.Time, counts []int, avgBytes int) (accepted, throttled int, err error) {
	if len(counts) != len(s.shards) {
		return 0, 0, fmt.Errorf("stream: PutCounts got %d shard counts for %d shards", len(counts), len(s.shards))
	}
	if avgBytes < 0 {
		avgBytes = 0
	}
	recBudget := int(MaxRecordsPerShardPerSecond * s.stepSeconds)
	byteBudget := int(MaxBytesPerShardPerSecond * s.stepSeconds)
	for i, n := range counts {
		if n <= 0 {
			continue
		}
		sh := s.shards[i]
		s.tickIncoming += n
		s.tickBytes += n * avgBytes
		ok := recBudget - sh.tickRecords
		if avgBytes > 0 {
			if byBytes := (byteBudget - sh.tickBytes) / avgBytes; byBytes < ok {
				ok = byBytes
			}
		}
		if ok < 0 {
			ok = 0
		}
		if ok > n {
			ok = n
		}
		sh.tickRecords += ok
		sh.tickBytes += ok * avgBytes
		sh.countBuffer += ok
		s.nextSeq += uint64(ok)
		accepted += ok
		rej := n - ok
		s.tickThrottled += rej
		throttled += rej
	}
	return accepted, throttled, nil
}

// DrainCount consumes up to max backlog records across all shards —
// counted backlog first, then materialised records — returning only how
// many were consumed. It is the consumption path for count-based pipelines
// (the analytics layer's spout does not inspect record payloads).
func (s *Stream) DrainCount(max int) int {
	drained := 0
	remaining := max
	for _, sh := range s.shards {
		if remaining <= 0 {
			break
		}
		if n := sh.countBuffer; n > 0 {
			if n > remaining {
				n = remaining
			}
			sh.countBuffer -= n
			remaining -= n
			drained += n
		}
		if remaining <= 0 {
			break
		}
		if n := len(sh.buffer); n > 0 {
			if n > remaining {
				n = remaining
			}
			sh.buffer = sh.buffer[n:]
			remaining -= n
			drained += n
		}
	}
	return drained
}

// CountedBacklog reports only the counted (non-materialised) backlog.
func (s *Stream) CountedBacklog() int {
	total := 0
	for _, sh := range s.shards {
		total += sh.countBuffer
	}
	return total
}

// KeyPopulation is a precomputed set of partition-key hashes used to derive
// per-shard arrival weights: with keys drawn uniformly from the population,
// the probability a record lands on a shard equals the fraction of the
// population hashing into that shard's range.
type KeyPopulation struct {
	hashes []uint64 // sorted
}

// NewKeyPopulation hashes the given keys.
func NewKeyPopulation(keys []string) *KeyPopulation {
	h := make([]uint64, len(keys))
	for i, k := range keys {
		h[i] = hashKey(k)
	}
	sort.Slice(h, func(i, j int) bool { return h[i] < h[j] })
	return &KeyPopulation{hashes: h}
}

// UniformUserPopulation builds the population of the click-stream
// generator's user IDs ("user-0" … "user-{n−1}").
func UniformUserPopulation(n int) *KeyPopulation {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("user-%d", i)
	}
	return NewKeyPopulation(keys)
}

// Size reports the population size.
func (p *KeyPopulation) Size() int { return len(p.hashes) }

// Weights returns, for each shard, the fraction of the population hashing
// into its range. The weights sum to 1 when the population is non-empty
// (shard ranges tile the hash space).
func (p *KeyPopulation) Weights(shards []*Shard) []float64 {
	w := make([]float64, len(shards))
	if len(p.hashes) == 0 {
		return w
	}
	total := float64(len(p.hashes))
	for i, sh := range shards {
		lo := sort.Search(len(p.hashes), func(j int) bool { return p.hashes[j] >= sh.HashStart })
		hi := len(p.hashes)
		if sh.HashEnd < ^uint64(0) {
			hi = sort.Search(len(p.hashes), func(j int) bool { return p.hashes[j] > sh.HashEnd })
		}
		w[i] = float64(hi-lo) / total
	}
	return w
}
